// f4tbench regenerates the tables and figures of the F4T paper's
// evaluation (§5, §6) from simulation.
//
// Usage:
//
//	f4tbench -exp fig8            # one experiment
//	f4tbench -exp all -quick      # everything, reduced sweeps
//
// Experiments: table1 table2 fig1 fig2 fig7b fig8 fig9 fig10 fig11
// fig12 fig13 fig14 fig15 fig16a fig16b alg, the abl-* ablations, the
// topology scenarios incast fanio mixed wan fairness, the stdlib-facade demo
// httpload (-pcap <file> additionally writes its link capture), and the
// churn flow-scale stress (2^20 concurrent connections)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"f4t/internal/exp"
)

var runners = map[string]func(quick bool) *exp.Table{
	"table1": func(bool) *exp.Table { return exp.Table1() },
	"table2": func(bool) *exp.Table { return exp.Table2() },
	"fig1":   exp.Fig1,
	"fig2":   exp.Fig2,
	"fig7b":  func(bool) *exp.Table { return exp.Fig7b() },
	"fig8":   exp.Fig8,
	"fig9":   exp.Fig9,
	"fig10":  exp.Fig10,
	"fig11":  func(bool) *exp.Table { return exp.Fig11() },
	"fig12":  func(bool) *exp.Table { return exp.Fig12() },
	"fig13":  exp.Fig13,
	"fig14":  exp.Fig14,
	"fig15":  exp.Fig15,
	"fig16a": exp.Fig16a,
	"fig16b": exp.Fig16b,
	"alg":    exp.AlgorithmTable,

	// Ablations of the design choices DESIGN.md calls out (not paper
	// figures; they isolate each mechanism's contribution).
	"abl-fpcs":     exp.AblationFPCScaling,
	"abl-coalesce": exp.AblationCoalescing,
	"abl-cache":    exp.AblationTCBCache,

	// Multi-node topology scenarios (not paper figures; they exercise
	// the router/AQM subsystem under datacenter traffic patterns).
	"incast":   exp.ScenarioIncast,
	"fanio":    exp.ScenarioFanio,
	"mixed":    exp.ScenarioMixed,
	"wan":      exp.ScenarioWAN,
	"fairness": exp.ScenarioFairness,

	// Stdlib-compatibility demo: an unmodified net/http server/client
	// pair over the netapi socket facade (DESIGN.md §14).
	"httpload": exp.HTTPLoad,

	// Flow-scale stress: ramp to 2^20 concurrent connections (2^17 with
	// -quick) and sustain the plateau under heavy-tailed
	// departure/replacement churn (DESIGN.md §15).
	"churn": exp.Churn,
}

// order fixes the presentation sequence for -exp all.
var order = []string{
	"table1", "table2", "fig1", "fig2", "fig7b", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16a",
	"fig16b", "alg", "abl-fpcs", "abl-coalesce", "abl-cache",
	"incast", "fanio", "mixed", "wan", "fairness", "httpload", "churn",
}

func main() {
	expFlag := flag.String("exp", "all", "experiment to run (or 'all', or 'list')")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast pass")
	workers := flag.Int("workers", 1, "distribute a sweep's independent rigs over N goroutines (fig9, fig13, fig16a); results are identical for any N")
	aqm := flag.String("aqm", "", "restrict the topology scenarios to one queue discipline ("+strings.Join(exp.ScenarioAQMNames(), ", ")+"); default sweeps all")
	pcapPath := flag.String("pcap", "", "write the httpload link capture to this pcapng file")
	flag.Parse()

	exp.SetHTTPLoadPCAP(*pcapPath)

	// Fail fast on a bad discipline name instead of burning a sweep.
	if err := exp.SetScenarioAQM(*aqm); err != nil {
		fmt.Fprintf(os.Stderr, "f4tbench: %v\n", err)
		os.Exit(2)
	}

	if w := *workers; w > 1 {
		runners["fig9"] = func(q bool) *exp.Table { return exp.Fig9Workers(q, w) }
		runners["fig13"] = func(q bool) *exp.Table { return exp.Fig13Workers(q, w) }
		runners["fig16a"] = func(q bool) *exp.Table { return exp.Fig16aWorkers(q, w) }
	}

	if *expFlag == "list" {
		names := make([]string, 0, len(runners))
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	run := func(name string) {
		r, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "f4tbench: unknown experiment %q (try -exp list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		tab := r(*quick)
		fmt.Print(tab.String())
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	if *expFlag == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*expFlag)
}
