// Command f4tconform runs the deterministic TCP conformance and chaos
// harness from the command line: a seed sweep over one rig pairing (or
// all of them), with automatic failure minimization.
//
// Every run is a pure function of (rig, alg, seed, phases, conns,
// chunk), so the command printed on failure reproduces it exactly:
//
//	go run ./cmd/f4tconform -rig engine-soft -seed 17 -phases 3 -conns 4 -chunk 4096
//
// -alg loads any registered congestion-control program into both
// endpoints (or 'all' to sweep every one); the CC state invariants —
// cwnd floor, ssthresh clamp and sentinel rules, CCVars arena aliasing
// — adapt per program.
//
// CI runs a bounded sweep (-rig all -seeds N) as a smoke test; exit
// status is nonzero iff any seed fails, after shrinking the failure to
// the shortest reproducing schedule prefix.
//
// The extra rig "facade" sweeps the netapi socket facade instead: byte
// exact echo streams verified through the stdlib net.Conn surface, with
// -bytes/-shards shaping the run. -pcap writes any rig's link capture
// for Wireshark forensics, and failure replay commands carry the flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"f4t/internal/cc"
	"f4t/internal/conformance"
)

func main() {
	var (
		rigName = flag.String("rig", "all", "rig pairing: soft-soft, engine-soft, engine-engine, facade, or all")
		seed    = flag.Uint64("seed", 1, "first seed of the sweep")
		seeds   = flag.Int("seeds", 1, "number of consecutive seeds to run")
		phases  = flag.Int("phases", 6, "fault phases per run")
		conns   = flag.Int("conns", 4, "concurrent connections per run")
		chunk   = flag.Int("chunk", 4096, "application write size in bytes")
		algName = flag.String("alg", "newreno", "congestion-control program both endpoints run ("+strings.Join(cc.Names(), ", ")+"), or 'all' to sweep every registered one")
		bytes   = flag.Int("bytes", 20000, "facade rig: payload bytes per connection")
		shards  = flag.Int("shards", 0, "facade rig: run on a sharded fabric with this many shards")
		pcap    = flag.String("pcap", "", "write the run's link capture to this pcapng file")
		verbose = flag.Bool("v", false, "print per-run schedules and stats")
	)
	flag.Parse()

	algs := []string{*algName}
	if *algName == "all" {
		algs = cc.Names()
	} else if _, err := cc.New(*algName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// The facade rig verifies the netapi net.Conn surface instead of the
	// raw socket API; it has its own sweep (no phase schedule).
	if *rigName == "facade" {
		failures := 0
		for s := *seed; s < *seed+uint64(*seeds); s++ {
			cfg := conformance.FacadeConfig{
				Seed: s, Conns: *conns, Bytes: *bytes,
				Shards: *shards, PCAPPath: *pcap,
			}
			res := conformance.RunFacade(cfg)
			if !res.Failed() {
				fmt.Printf("%-13s seed=%-6d PASS (%d conns x %d B, end cycle %d)\n",
					"facade", s, *conns, *bytes, res.EndCycle)
				continue
			}
			failures++
			fmt.Printf("%-13s seed=%-6d FAIL (%d violations)\n", "facade", s, len(res.Violations))
			for _, v := range res.Violations {
				fmt.Printf("  %s\n", v)
			}
			fmt.Printf("  replay: %s\n", conformance.FacadeReplayCommand(cfg))
		}
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "\n%d run(s) FAILED\n", failures)
			os.Exit(1)
		}
		return
	}

	rigs := conformance.AllRigs
	if *rigName != "all" {
		r, err := conformance.ParseRig(*rigName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		rigs = []conformance.RigKind{r}
	}

	failures := 0
	for _, rig := range rigs {
		for _, alg := range algs {
			for s := *seed; s < *seed+uint64(*seeds); s++ {
				cfg := conformance.Config{
					Rig: rig, Seed: s, Phases: *phases, Conns: *conns, Chunk: *chunk,
					Alg: alg, PCAPPath: *pcap,
				}
				res := conformance.Run(cfg)
				if *verbose {
					fmt.Printf("%-13s %s: forged=%d dropped=%d end=%dcyc\n",
						rig, res.Sched, res.ForgedRSTs, res.OowRstDrops, res.EndCycle)
				}
				if !res.Failed() {
					fmt.Printf("%-13s %-8s seed=%-6d PASS (%d phases, drained at cycle %d)\n",
						rig, alg, s, *phases, res.EndCycle)
					continue
				}
				failures++
				report(cfg, res)
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "\n%d run(s) FAILED\n", failures)
		os.Exit(1)
	}
}

// report prints a failure and shrinks it to the shortest schedule prefix
// that still reproduces, then prints the exact replay command.
func report(cfg conformance.Config, res conformance.Result) {
	fmt.Printf("%-13s %-8s seed=%-6d FAIL (%d violations)\n", cfg.Rig, cfg.Alg, cfg.Seed, len(res.Violations))

	min, minRes, ok := conformance.Minimize(cfg, conformance.Run)
	if !ok {
		// Shouldn't happen for a deterministic harness, but never hide
		// the original failure behind a minimizer bug.
		fmt.Println("  (failure did not reproduce under minimization; original run:)")
		min, minRes = cfg, res
	} else if min.Phases < cfg.Phases {
		fmt.Printf("  minimized: %d phases -> %d\n", cfg.Phases, min.Phases)
	}

	fmt.Printf("  schedule: %s\n", minRes.Sched)
	for _, v := range minRes.Violations {
		fmt.Printf("  %s\n", v.String())
	}
	fmt.Printf("  replay: %s\n", conformance.ReplayCommand(min))
}
