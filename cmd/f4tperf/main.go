// f4tperf is the iPerf of the simulated testbed: run one data-transfer
// workload on either stack and print its goodput and request rate.
//
// Usage:
//
//	f4tperf -stack f4t -pattern bulk -size 128 -cores 2
//	f4tperf -stack linux -pattern rr -size 64 -cores 8
//	f4tperf -stack f4t -pattern echo -flows 4096
//	f4tperf -bench                  # kernel perf harness -> BENCH_kernel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"f4t/internal/exp"
)

func main() {
	stack := flag.String("stack", "f4t", "stack under test: f4t or linux")
	pattern := flag.String("pattern", "bulk", "workload: bulk, rr (round-robin), echo")
	size := flag.Int("size", 128, "request size in bytes")
	cores := flag.Int("cores", 2, "sender CPU cores")
	flows := flag.Int("flows", 1024, "concurrent flows (echo pattern)")
	bench := flag.Bool("bench", false, "run the kernel perf-regression harness (skip vs always-step)")
	benchOut := flag.String("benchout", "BENCH_kernel.json", "output path for -bench results")
	quick := flag.Bool("quick", false, "shorter -bench measurement windows (CI smoke)")
	flag.Parse()

	if *bench {
		runKernelBench(*quick, *benchOut)
		return
	}

	switch *pattern {
	case "bulk", "rr":
		res := exp.TransferPoint(*stack, *pattern == "rr", *size, *cores, nil)
		fmt.Printf("%s %s: %d B requests, %d cores -> %.1f Gbps goodput, %.1f Mrps\n",
			*stack, *pattern, *size, *cores, res.GoodputGbps, res.Mrps)
	case "echo":
		kind := *stack
		if kind == "f4t" {
			kind = "f4t-hbm"
		}
		mrps, frac := exp.EchoPoint(kind, *flows)
		fmt.Printf("%s echo: %d flows (%.0f%% established) -> %.2f Mrps round trips\n",
			kind, *flows, frac*100, mrps)
	default:
		fmt.Fprintf(os.Stderr, "f4tperf: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
}

// runKernelBench times the standard rigs with and without quiescence
// skipping and writes the machine-readable comparison.
func runKernelBench(quick bool, out string) {
	res := exp.RunKernelBench(quick)
	for _, e := range res.Entries {
		fmt.Printf("%-22s %6.2f sim ms  skip %5.1f%%  %8.2f ms wall (was %8.2f ms)  %5.2fx\n",
			e.Name, e.SimMS, e.SkippedPct,
			float64(e.WallNSSkip)/1e6, float64(e.WallNSNoSkip)/1e6, e.Speedup)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "f4tperf: encode bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "f4tperf: write %s: %v\n", out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}
