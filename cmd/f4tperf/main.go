// f4tperf is the iPerf of the simulated testbed: run one data-transfer
// workload on either stack and print its goodput and request rate.
//
// Usage:
//
//	f4tperf -stack f4t -pattern bulk -size 128 -cores 2
//	f4tperf -stack linux -pattern rr -size 64 -cores 8
//	f4tperf -stack f4t -pattern echo -flows 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"f4t/internal/exp"
)

func main() {
	stack := flag.String("stack", "f4t", "stack under test: f4t or linux")
	pattern := flag.String("pattern", "bulk", "workload: bulk, rr (round-robin), echo")
	size := flag.Int("size", 128, "request size in bytes")
	cores := flag.Int("cores", 2, "sender CPU cores")
	flows := flag.Int("flows", 1024, "concurrent flows (echo pattern)")
	flag.Parse()

	switch *pattern {
	case "bulk", "rr":
		res := exp.TransferPoint(*stack, *pattern == "rr", *size, *cores, nil)
		fmt.Printf("%s %s: %d B requests, %d cores -> %.1f Gbps goodput, %.1f Mrps\n",
			*stack, *pattern, *size, *cores, res.GoodputGbps, res.Mrps)
	case "echo":
		kind := *stack
		if kind == "f4t" {
			kind = "f4t-hbm"
		}
		mrps, frac := exp.EchoPoint(kind, *flows)
		fmt.Printf("%s echo: %d flows (%.0f%% established) -> %.2f Mrps round trips\n",
			kind, *flows, frac*100, mrps)
	default:
		fmt.Fprintf(os.Stderr, "f4tperf: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
}
