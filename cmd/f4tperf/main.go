// f4tperf is the iPerf of the simulated testbed: run one data-transfer
// workload on either stack and print its goodput and request rate.
//
// Usage:
//
//	f4tperf -stack f4t -pattern bulk -size 128 -cores 2
//	f4tperf -stack linux -pattern rr -size 64 -cores 8
//	f4tperf -stack f4t -pattern echo -flows 4096
//	f4tperf -bench                  # kernel perf harness -> BENCH_kernel.json
//	f4tperf -bench -guard           # also fail if the skip fast path regressed
//	f4tperf -trace out.json         # Perfetto trace of the standard echo rig
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"f4t/internal/exp"
)

func main() {
	stack := flag.String("stack", "f4t", "stack under test: f4t or linux")
	pattern := flag.String("pattern", "bulk", "workload: bulk, rr (round-robin), echo")
	size := flag.Int("size", 128, "request size in bytes")
	cores := flag.Int("cores", 2, "sender CPU cores")
	flows := flag.Int("flows", 1024, "concurrent flows (echo pattern)")
	bench := flag.Bool("bench", false, "run the kernel perf-regression harness (skip vs always-step)")
	benchOut := flag.String("benchout", "BENCH_kernel.json", "output path for -bench results")
	quick := flag.Bool("quick", false, "shorter -bench measurement windows (CI smoke)")
	guard := flag.Bool("guard", false, "with -bench: exit non-zero if the skip fast path regressed")
	shards := flag.Int("shards", 4, "with -bench: sweep worker count for the sharded sweep benchmark (0 disables)")
	trace := flag.String("trace", "", "run the standard echo rig with telemetry and write a Perfetto trace to this path")
	traceCycles := flag.Int64("tracecycles", 400_000, "simulated cycles to trace after connection setup")
	flag.Parse()

	if *trace != "" {
		runTrace(*trace, *traceCycles)
		return
	}
	if *bench {
		runKernelBench(*quick, *guard, *shards, *benchOut)
		return
	}

	switch *pattern {
	case "bulk", "rr":
		res := exp.TransferPoint(*stack, *pattern == "rr", *size, *cores, nil)
		fmt.Printf("%s %s: %d B requests, %d cores -> %.1f Gbps goodput, %.1f Mrps\n",
			*stack, *pattern, *size, *cores, res.GoodputGbps, res.Mrps)
	case "echo":
		kind := *stack
		if kind == "f4t" {
			kind = "f4t-hbm"
		}
		mrps, frac := exp.EchoPoint(kind, *flows)
		fmt.Printf("%s echo: %d flows (%.0f%% established) -> %.2f Mrps round trips\n",
			kind, *flows, frac*100, mrps)
	default:
		fmt.Fprintf(os.Stderr, "f4tperf: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
}

// runTrace produces a Perfetto-loadable trace of the standard echo rig.
func runTrace(out string, cycles int64) {
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f4tperf: %v\n", err)
		os.Exit(1)
	}
	r, err := exp.RunTracedEcho(f, cycles)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "f4tperf: trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d trace events (%d dropped), %d metrics, %d samples, %d round trips\n",
		out, r.Tel.Trace.Total(), r.Tel.Trace.Dropped(), r.Tel.Reg.Len(),
		r.Tel.Sampler.Points(), r.Requests)
	fmt.Println("open in https://ui.perfetto.dev or chrome://tracing")
}

// runKernelBench times the standard rigs with and without quiescence
// skipping and writes the machine-readable comparison. With guard, the
// process fails if the skip fast path stopped engaging — a
// machine-independent floor (PR 1 recorded ~9.5x on the echo rig, so 2x
// leaves generous noise headroom) — if the saturated bulk path starts
// allocating per cycle or slows past a loose wall ceiling, if enabled
// telemetry more than doubles the echo run, or if the per-flow memory
// footprint of the flow-scale points regresses (schema/5).
func runKernelBench(quick, guard bool, shards int, out string) {
	res := exp.RunKernelBench(quick, shards)
	for _, e := range res.Entries {
		fmt.Printf("%-22s %6.2f sim ms  skip %5.1f%%  %8.2f ms wall (was %8.2f ms)  %5.2fx  %6.0f ns/cyc %6.3f allocs/cyc\n",
			e.Name, e.SimMS, e.SkippedPct,
			float64(e.WallNSSkip)/1e6, float64(e.WallNSNoSkip)/1e6, e.Speedup,
			e.NSPerSteppedCycle, e.AllocsPerSteppedCycle)
	}
	if t := res.Telemetry; t != nil {
		fmt.Printf("%-22s telemetry on: %8.2f ms wall (off %8.2f ms)  %+.1f%%  %d metrics, %d events\n",
			t.Workload, float64(t.WallNSOn)/1e6, float64(t.WallNSOff)/1e6,
			t.OverheadPct, t.Metrics, t.TraceEvents)
	}
	if s := res.Sharded; s != nil {
		fmt.Printf("%-22s %d workers on %d CPUs: %8.2f ms wall (serial %8.2f ms)  %5.2fx  identical=%v\n",
			s.Workload, s.Workers, s.HostCPUs,
			float64(s.WallNSSharded)/1e6, float64(s.WallNSSerial)/1e6, s.Speedup, s.Identical)
	}
	for _, p := range res.FlowScale {
		fmt.Printf("flow-scale %8d flows  reached=%-5v ramp %8d cyc  %4.0f B/flow accounted (%5.0f heap)  %6.0f ns/cyc  table %d slots/%d resizes\n",
			p.Flows, p.Reached, p.RampCycles,
			p.BytesPerFlowAccounted, p.BytesPerFlowHeap,
			p.NSPerSteppedCycle, p.TableSlots, p.TableResizes)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "f4tperf: encode bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "f4tperf: write %s: %v\n", out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)

	if guard {
		failed := false
		for _, e := range res.Entries {
			if e.Name == "echo-idle-fig13" {
				if e.Speedup < 2.0 {
					fmt.Fprintf(os.Stderr, "guard: %s speedup %.2fx < 2.0x — skip fast path regressed\n", e.Name, e.Speedup)
					failed = true
				}
				if e.SkippedPct < 50 {
					fmt.Fprintf(os.Stderr, "guard: %s skipped %.1f%% < 50%% — quiescence detection regressed\n", e.Name, e.SkippedPct)
					failed = true
				}
			}
			if e.Name == "bulk-saturated-fig8a" {
				// Allocation rate is machine-independent: the zero-alloc
				// packet path measures ~0.04 objects per stepped cycle
				// (timer-wheel ring warm-up; the steady state is zero), so
				// 0.5 means a per-segment allocation came back. The wall
				// ceiling is deliberately loose — it only catches
				// catastrophic slowdowns, not host-speed variation.
				if e.AllocsPerSteppedCycle > 0.5 {
					fmt.Fprintf(os.Stderr, "guard: %s allocates %.2f objects per stepped cycle > 0.5 — zero-alloc path regressed\n", e.Name, e.AllocsPerSteppedCycle)
					failed = true
				}
				if e.NSPerSteppedCycle > 20_000 {
					fmt.Fprintf(os.Stderr, "guard: %s costs %.0f ns per stepped cycle > 20000 — saturated path regressed\n", e.Name, e.NSPerSteppedCycle)
					failed = true
				}
			}
		}
		if t := res.Telemetry; t != nil && t.OverheadPct > 100 {
			fmt.Fprintf(os.Stderr, "guard: telemetry overhead %.1f%% > 100%%\n", t.OverheadPct)
			failed = true
		}
		if s := res.Sharded; s != nil {
			if !s.Identical {
				fmt.Fprintf(os.Stderr, "guard: sharded sweep diverged from the serial sweep\n")
				failed = true
			}
			// The speedup bound only applies where the host can deliver
			// it: parallelism is capped by cores, GOMAXPROCS, workers and
			// the number of independent rigs in the sweep.
			par := s.HostCPUs
			if s.GoMaxProcs < par {
				par = s.GoMaxProcs
			}
			if s.Workers < par {
				par = s.Workers
			}
			if s.Points < par {
				par = s.Points
			}
			if par >= 3 && s.Speedup < 2.0 {
				fmt.Fprintf(os.Stderr, "guard: sharded sweep speedup %.2fx < 2.0x on %d-way host\n", s.Speedup, par)
				failed = true
			}
		}
		for _, p := range res.FlowScale {
			if !p.Reached {
				fmt.Fprintf(os.Stderr, "guard: flow-scale %d never reached its target within the ramp budget\n", p.Flows)
				failed = true
				continue
			}
			// Per-flow control state is machine-independent: the accounted
			// footprint (TCB + flow-table entry + reassembler) measures
			// ~650 B/flow, so 1300 B means a per-flow structure doubled or
			// an arena stopped being shared. The whole-rig heap number
			// includes both sides plus bookkeeping (~4x the accounted
			// server state); past 16 KB/flow something is leaking
			// per-connection.
			if p.BytesPerFlowAccounted > 1300 {
				fmt.Fprintf(os.Stderr, "guard: flow-scale %d flows: %.0f accounted bytes/flow > 1300 — per-flow footprint regressed\n", p.Flows, p.BytesPerFlowAccounted)
				failed = true
			}
			if p.BytesPerFlowHeap > 16384 {
				fmt.Fprintf(os.Stderr, "guard: flow-scale %d flows: %.0f heap bytes/flow > 16384 — per-connection leak\n", p.Flows, p.BytesPerFlowHeap)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("guard: ok")
	}
}
