// f4tinfo prints the design-summary artifacts that need no simulation:
// the resource model (Figure 7b), the qualitative comparison tables
// (Tables 1 and 2), and the registries of runnable names — congestion
// control algorithms, conformance rigs, topology scenarios, and queue
// disciplines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"f4t/internal/cc"
	"f4t/internal/conformance"
	"f4t/internal/exp"
	"f4t/internal/netsim"
)

var shows = []string{"fig7b", "table1", "table2", "names", "all"}

// names prints every registry a command-line flag validates against, so
// "what can I pass to -alg / -rig / -exp / -aqm" has one answer.
func names() {
	rigs := make([]string, len(conformance.AllRigs))
	for i, r := range conformance.AllRigs {
		rigs[i] = r.String()
	}
	fmt.Printf("cc algorithms (f4ttrace -alg):      %s\n", strings.Join(cc.Names(), ", "))
	fmt.Printf("conformance rigs (f4tconform -rig): %s\n", strings.Join(rigs, ", "))
	fmt.Printf("topology scenarios (f4tbench -exp): %s\n", strings.Join(exp.ScenarioNames(), ", "))
	fmt.Printf("queue disciplines (f4tbench -aqm):  %s\n", strings.Join(exp.ScenarioAQMNames(), ", "))
	fmt.Printf("router AQM kinds (netsim):          %s\n", strings.Join(netsim.AQMNames(), ", "))
}

func main() {
	which := flag.String("show", "all", "what to print: "+strings.Join(shows, ", "))
	flag.Parse()

	switch *which {
	case "fig7b":
		fmt.Print(exp.Fig7b().String())
	case "table1":
		fmt.Print(exp.Table1().String())
	case "table2":
		fmt.Print(exp.Table2().String())
	case "names":
		names()
	case "all":
		fmt.Print(exp.Table1().String())
		fmt.Println()
		fmt.Print(exp.Table2().String())
		fmt.Println()
		fmt.Print(exp.Fig7b().String())
		fmt.Println()
		names()
	default:
		fmt.Fprintf(os.Stderr, "f4tinfo: unknown -show %q (want %s)\n", *which, strings.Join(shows, ", "))
		os.Exit(2)
	}
}
