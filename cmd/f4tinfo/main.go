// f4tinfo prints the design-summary artifacts that need no simulation:
// the resource model (Figure 7b) and the qualitative comparison tables
// (Tables 1 and 2).
package main

import (
	"flag"
	"fmt"

	"f4t/internal/exp"
)

func main() {
	which := flag.String("show", "all", "what to print: fig7b, table1, table2, all")
	flag.Parse()

	switch *which {
	case "fig7b":
		fmt.Print(exp.Fig7b().String())
	case "table1":
		fmt.Print(exp.Table1().String())
	case "table2":
		fmt.Print(exp.Table2().String())
	default:
		fmt.Print(exp.Table1().String())
		fmt.Println()
		fmt.Print(exp.Table2().String())
		fmt.Println()
		fmt.Print(exp.Fig7b().String())
	}
}
