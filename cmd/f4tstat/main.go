// f4tstat runs an instrumented standard rig and dumps the telemetry
// registry: a point-in-time snapshot of every metric, the sampled time
// series, or the per-flow statistics table, as CSV or JSON.
//
// Usage:
//
//	f4tstat                          # echo rig snapshot, CSV on stdout
//	f4tstat -rig bulk -format json
//	f4tstat -mode series -sample 10000
//	f4tstat -mode flows -format json
//	f4tstat -o stats.csv
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"f4t/internal/exp"
)

func main() {
	rig := flag.String("rig", "echo", "workload rig: echo or bulk")
	mode := flag.String("mode", "snapshot", "what to dump: snapshot, series, flows")
	format := flag.String("format", "csv", "output format: csv or json")
	cycles := flag.Int64("cycles", 400_000, "simulated cycles to run after connection setup")
	sample := flag.Int64("sample", 0, "sampling period in cycles (0 = default 25000)")
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	r, err := exp.RunStatRig(*rig, *cycles, *sample)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f4tstat: %v\n", err)
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "f4tstat: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	switch *mode {
	case "snapshot":
		err = dumpSnapshot(w, r, *format)
	case "series":
		err = dumpSeries(w, r, *format)
	case "flows":
		err = dumpFlows(w, r, *format)
	default:
		err = fmt.Errorf("unknown mode %q (snapshot, series, flows)", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "f4tstat: %v\n", err)
		os.Exit(1)
	}
}

func writeJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// dumpSnapshot emits one row per registered metric.
func dumpSnapshot(w io.Writer, r *exp.StatRig, format string) error {
	snap := r.Tel.Reg.Snapshot()
	if format == "json" {
		return writeJSON(w, snap)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "kind", "value", "p50", "p99", "max", "mean"}); err != nil {
		return err
	}
	for _, s := range snap {
		rec := []string{
			s.Name, s.Kind, strconv.FormatInt(s.Value, 10),
			strconv.FormatInt(s.P50, 10), strconv.FormatInt(s.P99, 10),
			strconv.FormatInt(s.Max, 10), strconv.FormatFloat(s.Mean, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// dumpSeries emits the sampled time series in long form: one row per
// (metric, sample point).
func dumpSeries(w io.Writer, r *exp.StatRig, format string) error {
	series := r.Tel.Sampler.Series()
	if format == "json" {
		return writeJSON(w, series)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "kind", "t_ns", "value"}); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.AtNS {
			rec := []string{
				s.Name, s.Kind,
				strconv.FormatInt(s.AtNS[i], 10), strconv.FormatInt(s.Val[i], 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// dumpFlows emits both engines' per-flow statistics.
func dumpFlows(w io.Writer, r *exp.StatRig, format string) error {
	type engFlows struct {
		Engine string      `json:"engine"`
		Flows  interface{} `json:"flows"`
	}
	if format == "json" {
		return writeJSON(w, []engFlows{
			{Engine: "eng_a", Flows: r.Tel.FlowsA.Flows()},
			{Engine: "eng_b", Flows: r.Tel.FlowsB.Flows()},
		})
	}
	cw := csv.NewWriter(w)
	header := []string{"engine", "flow_id", "state", "cwnd", "ssthresh", "srtt_ns", "rto_ns",
		"bytes_acked", "bytes_rcvd", "retransmits", "rtt_samples", "goodput_bps"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, side := range []struct {
		name string
	}{{"eng_a"}, {"eng_b"}} {
		flows := r.Tel.FlowsA.Flows()
		if side.name == "eng_b" {
			flows = r.Tel.FlowsB.Flows()
		}
		for _, f := range flows {
			rec := []string{
				side.name,
				strconv.FormatUint(uint64(f.FlowID), 10), f.State,
				strconv.FormatUint(uint64(f.CwndB), 10), strconv.FormatUint(uint64(f.Ssthresh), 10),
				strconv.FormatInt(f.SRTTNS, 10), strconv.FormatInt(f.RTONS, 10),
				strconv.FormatInt(f.BytesAcked, 10), strconv.FormatInt(f.BytesRcvd, 10),
				strconv.FormatInt(f.Retransmits, 10), strconv.FormatInt(f.RTTSamples, 10),
				strconv.FormatFloat(f.GoodputBps(), 'f', 0, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
