// f4ttrace emits congestion-window traces (Figure 14) as CSV: the F4T
// engine under cycle-level simulation and the independent reference
// simulator, side by side.
//
// Usage:
//
//	f4ttrace -alg cubic -drop 2000 -ms 32 > cwnd.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"f4t/internal/cc"
	"f4t/internal/exp"
)

func main() {
	alg := flag.String("alg", "newreno",
		"congestion control algorithm ("+strings.Join(cc.Names(), ", ")+")")
	drop := flag.Int64("drop", 2000, "drop every Nth data packet")
	ms := flag.Int64("ms", 32, "trace duration in simulated milliseconds")
	flag.Parse()

	// Fail fast on unknown algorithms instead of burning a multi-second
	// simulation that would panic deep inside engine construction.
	if _, err := cc.New(*alg); err != nil {
		fmt.Fprintf(os.Stderr, "f4ttrace: %v\n", err)
		os.Exit(2)
	}

	cycles := *ms * 250_000 // 250 cycles per microsecond at 250 MHz
	f4tTrace := exp.F4TCwndTrace(*alg, *drop, cycles, 25_000)

	fmt.Println("impl,time_us,cwnd_bytes")
	for i := range f4tTrace.AtNS {
		fmt.Printf("f4t,%.1f,%d\n", float64(f4tTrace.AtNS[i])/1e3, f4tTrace.Cwnd[i])
	}

	// The independent reference simulator models most of the registry
	// (newreno, cubic, vegas, dctcp, bbr); for anything it lacks the F4T
	// trace stands alone.
	refTrace, err := exp.RefCwndTrace(*alg, *drop, *ms*1_000_000, 100_000)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f4ttrace: note: %v; emitting f4t trace alone\n", err)
		return
	}
	for i := range refTrace.AtNS {
		fmt.Printf("reference,%.1f,%d\n", float64(refTrace.AtNS[i])/1e3, refTrace.Cwnd[i])
	}
}
