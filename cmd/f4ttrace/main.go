// f4ttrace emits congestion-window traces (Figure 14) as CSV: the F4T
// engine under cycle-level simulation and the independent reference
// simulator, side by side.
//
// Usage:
//
//	f4ttrace -alg cubic -drop 2000 -ms 32 > cwnd.csv
package main

import (
	"flag"
	"fmt"

	"f4t/internal/exp"
)

func main() {
	alg := flag.String("alg", "newreno", "congestion control algorithm (newreno, cubic, vegas)")
	drop := flag.Int64("drop", 2000, "drop every Nth data packet")
	ms := flag.Int64("ms", 32, "trace duration in simulated milliseconds")
	flag.Parse()

	cycles := *ms * 250_000 // 250 cycles per microsecond at 250 MHz
	f4tTrace := exp.F4TCwndTrace(*alg, *drop, cycles, 25_000)
	refTrace := exp.RefCwndTrace(*alg, *drop, *ms*1_000_000, 100_000)

	fmt.Println("impl,time_us,cwnd_bytes")
	for i := range f4tTrace.AtNS {
		fmt.Printf("f4t,%.1f,%d\n", float64(f4tTrace.AtNS[i])/1e3, f4tTrace.Cwnd[i])
	}
	for i := range refTrace.AtNS {
		fmt.Printf("reference,%.1f,%d\n", float64(refTrace.AtNS[i])/1e3, refTrace.Cwnd[i])
	}
}
