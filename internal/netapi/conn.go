package netapi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"time"

	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

// Facade-level errors. Reset and refusal surface as *net.OpError so
// callers (net/http) see familiar shapes.
var (
	errRefused   = &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connection refused")}
	errReset     = errors.New("connection reset by peer")
	errAddrInUse = errors.New("address already in use")
)

// Addr is the net.Addr of a simulated TCP endpoint.
type Addr struct {
	IP   wire.Addr
	Port uint16
}

// Network implements net.Addr.
func (a Addr) Network() string { return "tcp" }

// String implements net.Addr.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// parseAddr parses "a.b.c.d:port" (the only address family the
// simulated network speaks).
func parseAddr(addr string) (wire.Addr, uint16, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return 0, 0, err
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return 0, 0, fmt.Errorf("netapi: unresolvable host %q (use a dotted-quad address)", host)
	}
	v4 := ip.To4()
	if v4 == nil {
		return 0, 0, fmt.Errorf("netapi: %q is not IPv4; the simulated network is IPv4-only", host)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("netapi: bad port %q: %v", portStr, err)
	}
	return wire.MakeAddr(v4[0], v4[1], v4[2], v4[3]), uint16(port), nil
}

// Listen starts a TCP listener on the given local port.
func (st *Stack) Listen(port uint16) (net.Listener, error) {
	o := &op{kind: opListen, rport: port}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, net.ErrClosed
	}
	st.nextID++
	o.id = st.nextID
	st.mu.Unlock()
	if err := st.submit(o); err != nil {
		return nil, err
	}
	return o.ln, nil
}

// DialAddr opens a connection to raddr:port, blocking through the
// simulated three-way handshake.
func (st *Stack) DialAddr(raddr wire.Addr, port uint16) (net.Conn, error) {
	o := &op{kind: opDial, raddr: raddr, rport: port}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, net.ErrClosed
	}
	st.nextID++
	o.id = st.nextID
	st.mu.Unlock()
	if err := st.submit(o); err != nil {
		return nil, err
	}
	return o.conn, nil
}

// Dial implements the net.Dial shape for "tcp" addresses.
func (st *Stack) Dial(network, addr string) (net.Conn, error) {
	return st.DialContext(context.Background(), network, addr)
}

// DialContext matches http.Transport.DialContext. Cancellation
// abandons the wait; the connection, if it later completes, is closed.
func (st *Stack) DialContext(ctx context.Context, network string, addr string) (net.Conn, error) {
	switch network {
	case "tcp", "tcp4":
	default:
		return nil, fmt.Errorf("netapi: unsupported network %q", network)
	}
	raddr, port, err := parseAddr(addr)
	if err != nil {
		return nil, err
	}
	o := &op{kind: opDial, raddr: raddr, rport: port}
	o.done = make(chan struct{})
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, net.ErrClosed
	}
	st.nextID++
	o.id = st.nextID
	st.seq++
	o.seq = st.seq
	if st.credits > 0 {
		st.credits--
	}
	st.inbox = append(st.inbox, o)
	st.inboxN.Add(1)
	st.mu.Unlock()
	select {
	case st.signal <- struct{}{}:
	default:
	}
	select {
	case <-o.done:
		if o.err != nil {
			return nil, o.err
		}
		return o.conn, nil
	case <-ctx.Done():
		go func() {
			<-o.done
			if o.err == nil {
				o.conn.Close()
			}
		}()
		return nil, ctx.Err()
	}
}

// Conn is a simulated TCP connection implementing net.Conn. The
// exported methods are safe for concurrent use; per the package
// determinism contract, racing multiple Reads (or Writes) against each
// other on one Conn is allowed but their relative order is as
// undefined as it would be on a real socket.
type Conn struct {
	st           *Stack
	id           int64
	bc           connBackend
	laddr, raddr Addr

	// Everything below is settle-side state: guarded by st.mu where
	// application goroutines write it (deadlines), island-only
	// otherwise.
	rdPtr, wrPtr seqnum.Value
	wantSend     bool
	wantRecv     bool
	wantClose    bool
	wantAbort    bool
	localClosed  bool
	dialOp       *op
	readQ        []*op
	writeQ       []*op
	rdDeadline   time.Time
	wrDeadline   time.Time
}

// anchor fixes the facade-local pointers once the handshake completed.
// Caller holds mu.
func (c *Conn) anchor() {
	c.rdPtr = c.bc.readPtr()
	c.wrPtr = c.bc.writePtr()
	c.laddr.Port = c.bc.localPort()
	raddr, rport := c.bc.remote()
	c.raddr = Addr{IP: raddr, Port: rport}
}

// dead reports whether the conn can leave the live list. Caller holds mu.
func (c *Conn) dead() bool {
	if c.dialOp != nil || len(c.readQ) > 0 || len(c.writeQ) > 0 {
		return false
	}
	if c.wantSend || c.wantRecv || c.wantClose || c.wantAbort {
		return false
	}
	return c.bc.closed() || c.bc.wasReset()
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	o := &op{kind: opRead, c: c, buf: p}
	err := c.st.submit(o)
	return o.n, err
}

// Write implements net.Conn. It blocks until every byte is accepted by
// the send buffer (or fails reporting partial progress).
func (c *Conn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	o := &op{kind: opWrite, c: c, buf: p}
	err := c.st.submit(o)
	return o.n, err
}

// Close implements net.Conn: an orderly shutdown (FIN after queued
// data). Parked Reads and Writes fail with net.ErrClosed.
func (c *Conn) Close() error {
	return c.st.submit(&op{kind: opConnClose, c: c})
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.laddr }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.raddr }

// SetDeadline implements net.Conn. Deadlines are wall-clock and
// therefore best-effort with respect to determinism (see the package
// doc); a deadline already in the past reliably fails parked ops at
// the next settle, which is the idiom net/http's abortPendingRead
// depends on.
func (c *Conn) SetDeadline(t time.Time) error {
	c.st.mu.Lock()
	c.rdDeadline, c.wrDeadline = t, t
	c.st.mu.Unlock()
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.st.mu.Lock()
	c.rdDeadline = t
	c.st.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.st.mu.Lock()
	c.wrDeadline = t
	c.st.mu.Unlock()
	return nil
}

func deadlineExpired(t time.Time) bool {
	return !t.IsZero() && !time.Now().Before(t)
}

// tryRead attempts to complete a read op against the current mirrors;
// reports whether it completed. Caller holds mu.
func (st *Stack) tryRead(o *op) bool {
	c := o.c
	if c.localClosed {
		st.finish(o, net.ErrClosed)
		return true
	}
	if deadlineExpired(c.rdDeadline) {
		st.finish(o, os.ErrDeadlineExceeded)
		return true
	}
	if c.bc.wasReset() {
		st.finish(o, &net.OpError{Op: "read", Net: "tcp", Err: errReset})
		return true
	}
	if avail := int(c.bc.delivered().DistanceFrom(c.rdPtr)); avail > 0 {
		n := len(o.buf)
		if n > avail {
			n = avail
		}
		c.bc.readAt(c.rdPtr, o.buf[:n])
		c.rdPtr = c.rdPtr.Add(seqnum.Size(n))
		c.wantRecv = true
		o.n = n
		st.finish(o, nil)
		return true
	}
	if c.bc.peerClosed() || c.bc.closed() {
		st.finish(o, io.EOF)
		return true
	}
	return false
}

// tryWrite stages what fits and reports whether the op fully completed.
// Partial progress stays parked — net.Conn's Write contract is
// all-or-error. Caller holds mu.
func (st *Stack) tryWrite(o *op) bool {
	c := o.c
	if c.localClosed {
		st.finish(o, net.ErrClosed)
		return true
	}
	if c.bc.wasReset() || c.bc.closed() {
		st.finish(o, &net.OpError{Op: "write", Net: "tcp", Err: errReset})
		return true
	}
	if deadlineExpired(c.wrDeadline) {
		st.finish(o, os.ErrDeadlineExceeded)
		return true
	}
	if !c.bc.established() {
		return false
	}
	space := c.bc.sendCap() - int(c.wrPtr.DistanceFrom(c.bc.acked()))
	rem := len(o.buf) - o.n
	if space > 0 && rem > 0 {
		m := rem
		if m > space {
			m = space
		}
		c.bc.writeAt(c.wrPtr, o.buf[o.n:o.n+m])
		c.wrPtr = c.wrPtr.Add(seqnum.Size(m))
		c.wantSend = true
		o.n += m
	}
	if o.n == len(o.buf) {
		st.finish(o, nil)
		return true
	}
	return false
}

// Listener is a simulated TCP listener implementing net.Listener.
type Listener struct {
	st   *Stack
	id   int64
	port uint16

	// Settle-side state (same locking discipline as Conn's).
	backlog    []connBackend
	acceptQ    []*op
	wantListen bool
	closedLn   bool
}

// Accept implements net.Listener.
func (ln *Listener) Accept() (net.Conn, error) {
	o := &op{kind: opAccept, ln: ln}
	if err := ln.st.submit(o); err != nil {
		return nil, err
	}
	return o.conn, nil
}

// Close implements net.Listener: parked Accepts fail with
// net.ErrClosed and queued not-yet-accepted connections are reset.
func (ln *Listener) Close() error {
	return ln.st.submit(&op{kind: opLnClose, ln: ln})
}

// Addr implements net.Listener.
func (ln *Listener) Addr() net.Addr {
	return Addr{IP: ln.st.opt.LocalIP, Port: ln.port}
}
