package netapi

import (
	"errors"

	"f4t/internal/engine"
	"f4t/internal/seqnum"
	"f4t/internal/sim"
	"f4t/internal/softstack"
	"f4t/internal/stack"
	"f4t/internal/wire"
)

// connBackend is one connection's substrate: the engine-backed
// softstack.Socket or the software stack.Conn, reduced to the mirror
// reads, sim-invisible ring copies, and deferred effect posts the
// settle loop needs. All methods run island-side (or from the driver
// while the fabric is idle).
type connBackend interface {
	established() bool
	peerClosed() bool
	closed() bool
	wasReset() bool

	readPtr() seqnum.Value
	writePtr() seqnum.Value
	delivered() seqnum.Value
	acked() seqnum.Value
	sendCap() int

	readAt(ptr seqnum.Value, buf []byte)
	writeAt(ptr seqnum.Value, data []byte)
	postSend(ptr seqnum.Value) bool
	postRecv(ptr seqnum.Value) bool
	close() bool
	abort()

	localPort() uint16
	remote() (wire.Addr, uint16)
}

// stackBackend is one host's substrate behind a Stack.
type stackBackend interface {
	// pump drains backend events (completions, readiness callbacks)
	// into listener backlogs and socket mirrors; reports whether
	// anything was processed.
	pump(st *Stack) bool
	// pending reports undrained backend events — a NextWork input, so
	// it must read simulation-side state only.
	pending() bool
	// dial starts an active open. retry means "no capacity now, retry
	// next tick"; err is a hard failure.
	dial(raddr wire.Addr, rport uint16) (bc connBackend, retry bool, err error)
	// listen registers a listener; false means "retry next tick".
	listen(port uint16, ln *Listener) bool
}

// --- Engine-backed stack (softstack.Lib over an FtEngine channel) ---

// libConn adapts softstack.Socket.
type libConn struct {
	s     *softstack.Socket
	eng   *engine.Engine
	raddr wire.Addr
	rport uint16
}

func (b *libConn) established() bool        { return b.s.Established }
func (b *libConn) peerClosed() bool         { return b.s.PeerClosed }
func (b *libConn) closed() bool             { return b.s.Closed }
func (b *libConn) wasReset() bool           { return b.s.WasReset }
func (b *libConn) readPtr() seqnum.Value    { return b.s.ReadPtr() }
func (b *libConn) writePtr() seqnum.Value   { return b.s.WritePtr() }
func (b *libConn) delivered() seqnum.Value  { return b.s.DeliveredTo() }
func (b *libConn) acked() seqnum.Value      { return b.s.AckedTo() }
func (b *libConn) sendCap() int             { return int(b.eng.TxRingSize()) }
func (b *libConn) readAt(p seqnum.Value, buf []byte)  { b.s.ReadAt(p, buf) }
func (b *libConn) writeAt(p seqnum.Value, d []byte)   { b.s.WriteAt(p, d) }
func (b *libConn) postSend(p seqnum.Value) bool       { return b.s.PostSend(p) }
func (b *libConn) postRecv(p seqnum.Value) bool       { return b.s.PostRecv(p) }
func (b *libConn) close() bool              { return b.s.Close() }
func (b *libConn) abort()                   { b.s.Abort() }
func (b *libConn) localPort() uint16        { return b.s.LocalPort() }
func (b *libConn) remote() (wire.Addr, uint16) {
	if b.raddr == 0 {
		if t := b.eng.TCB(b.s.ID); t != nil {
			b.raddr, b.rport = t.Tuple.RemoteAddr, t.Tuple.RemotePort
		}
	}
	return b.raddr, b.rport
}

// libBackend is the engine-backed stackBackend: one softstack.Lib on
// one engine channel, owned exclusively by the facade (no F4TMachine
// may share the channel — both would race for its completions).
type libBackend struct {
	lib *softstack.Lib
	eng *engine.Engine
	lns map[uint16]*Listener
}

func (b *libBackend) pending() bool {
	return b.lib.PendingCompletions() > 0 || b.lib.PendingEvents() > 0
}

func (b *libBackend) pump(st *Stack) bool {
	n := 0
	for b.lib.PollOne() {
		n++
	}
	evs := b.lib.TakeEvents()
	for i := range evs {
		ev := &evs[i]
		if ev.Kind != softstack.EvAccepted {
			continue // state changes are read off the Socket mirrors
		}
		bc := &libConn{s: ev.Sock, eng: b.eng}
		if ln := b.lns[ev.Sock.LocalPort()]; ln != nil && !ln.closedLn {
			ln.backlog = append(ln.backlog, bc)
		} else {
			st.orphans = append(st.orphans, bc)
		}
	}
	return n > 0 || len(evs) > 0
}

func (b *libBackend) dial(raddr wire.Addr, rport uint16) (connBackend, bool, error) {
	s := b.lib.Dial(raddr, rport)
	if s == nil {
		return nil, true, nil // command queue full: retry
	}
	return &libConn{s: s, eng: b.eng, raddr: raddr, rport: rport}, false, nil
}

func (b *libBackend) listen(port uint16, ln *Listener) bool {
	b.lns[port] = ln
	return b.lib.Listen(port)
}

// enginePump is the Stack's sim.Sleeper for the engine backend.
type enginePump struct{ st *Stack }

func (p enginePump) Tick(cycle int64)          { p.st.pumpTick(cycle) }
func (p enginePump) NextWork(now int64) int64  { return p.st.nextWork(now) }

// NewEngineStack builds a facade over channel chIdx of an FtEngine and
// registers its pump on the island. The engine must carry real payload
// bytes (Config.CarryBytes) and the channel must not be driven by any
// other component. Register order matters for determinism: call this
// at the same point of rig construction on every fabric.
func NewEngineStack(f sim.Fabric, island int, eng *engine.Engine, chIdx int, opt Options) *Stack {
	k := f.IslandKernel(island)
	st := newStack(k, opt)
	st.be = &libBackend{
		lib: softstack.NewLib(k, eng, chIdx),
		eng: eng,
		lns: make(map[uint16]*Listener),
	}
	f.RegisterOn(island, enginePump{st})
	return st
}

// --- Software-host stack (stack.Endpoint, the soft/Linux substrate) ---

// epConn adapts stack.Conn.
type epConn struct {
	c   *stack.Conn
	cap int
}

func (b *epConn) established() bool        { return b.c.Established }
func (b *epConn) peerClosed() bool         { return b.c.PeerClosed }
func (b *epConn) closed() bool             { return b.c.Closed }
func (b *epConn) wasReset() bool           { return b.c.WasReset }
func (b *epConn) readPtr() seqnum.Value    { return b.c.ReadPtr() }
func (b *epConn) writePtr() seqnum.Value   { return b.c.WritePtr() }
func (b *epConn) delivered() seqnum.Value  { return b.c.DeliveredTo }
func (b *epConn) acked() seqnum.Value      { return b.c.AckedTo }
func (b *epConn) sendCap() int             { return b.cap }
func (b *epConn) readAt(p seqnum.Value, buf []byte) { b.c.ReadAt(p, buf) }
func (b *epConn) writeAt(p seqnum.Value, d []byte)  { b.c.WriteAt(p, d) }
func (b *epConn) postSend(p seqnum.Value) bool      { return b.c.PostSend(p) }
func (b *epConn) postRecv(p seqnum.Value) bool      { return b.c.PostRecv(p) }
func (b *epConn) close() bool              { b.c.Close(); return true }
func (b *epConn) abort()                   { b.c.Abort() }
func (b *epConn) localPort() uint16        { return b.c.TCB.Tuple.LocalPort }
func (b *epConn) remote() (wire.Addr, uint16) {
	return b.c.TCB.Tuple.RemoteAddr, b.c.TCB.Tuple.RemotePort
}

// hostBackend is the soft-host stackBackend over a stack.Endpoint.
type hostBackend struct {
	ep    *stack.Endpoint
	cap   int
	dirty bool // a conn callback fired since the last pump
}

func (b *hostBackend) markDirty() { b.dirty = true }

// hook installs the dirty-marking callbacks on a conn so pump ticks
// know a settle is worthwhile.
func (b *hostBackend) hook(c *stack.Conn) {
	c.OnEstablished = b.markDirty
	c.OnData = b.markDirty
	c.OnAcked = b.markDirty
	c.OnPeerClosed = b.markDirty
	c.OnClosed = b.markDirty
}

func (b *hostBackend) pending() bool { return b.dirty }

func (b *hostBackend) pump(st *Stack) bool {
	d := b.dirty
	b.dirty = false
	return d
}

func (b *hostBackend) dial(raddr wire.Addr, rport uint16) (connBackend, bool, error) {
	c := b.ep.Dial(raddr, rport)
	if c == nil {
		return nil, false, errors.New("netapi: ephemeral ports exhausted")
	}
	b.hook(c)
	return &epConn{c: c, cap: b.cap}, false, nil
}

func (b *hostBackend) listen(port uint16, ln *Listener) bool {
	b.ep.Listen(port, func(c *stack.Conn) {
		b.hook(c)
		b.markDirty()
		if ln.closedLn {
			c.Abort()
			return
		}
		ln.backlog = append(ln.backlog, &epConn{c: c, cap: b.cap})
	})
	return true
}

// hostPump drives the endpoint (RX queue, timers) and the facade from
// one Sleeper so their per-cycle order is fixed.
type hostPump struct {
	st  *Stack
	ep  *stack.Endpoint
	k   *sim.Kernel
	rxq []*wire.Packet
}

// deliver queues one received frame and wakes the pump. It is safe
// from cross-shard mailbox deliveries (queue-then-tick: no local
// timers are scheduled here).
func (p *hostPump) deliver(pkt *wire.Packet) {
	p.rxq = append(p.rxq, pkt)
	p.k.Wake(p)
}

func (p *hostPump) Tick(cycle int64) {
	if len(p.rxq) > 0 {
		q := p.rxq
		p.rxq = nil
		for _, pkt := range q {
			p.ep.HandlePacket(pkt)
		}
		if p.rxq == nil {
			p.rxq = q[:0] // recycle the queue buffer
		}
	}
	p.ep.ExpireTimers()
	p.st.pumpTick(cycle)
}

func (p *hostPump) NextWork(now int64) int64 {
	if len(p.rxq) > 0 {
		return now + 1
	}
	next := p.st.nextWork(now)
	if ns := p.ep.NextTimerNS(); ns > 0 {
		c := sim.NSToCycles(ns)
		if c <= now {
			c = now + 1
		}
		if c < next {
			next = c
		}
	}
	return next
}

// HostStack is a Stack over a software TCP endpoint, plus the wiring
// surface rigs need (attach TX to a pipe, attach Deliver as the sink).
type HostStack struct {
	*Stack
	ep   *stack.Endpoint
	pump *hostPump
}

// Endpoint exposes the underlying software stack (for LearnPeer etc.).
func (h *HostStack) Endpoint() *stack.Endpoint { return h.ep }

// DeliverPacket is the link sink: frames enter the endpoint through
// the pump's queue so processing happens under the pump's slot.
func (h *HostStack) DeliverPacket(pkt *wire.Packet) { h.pump.deliver(pkt) }

// SetTx attaches the endpoint's transmit path (a pipe's Send).
func (h *HostStack) SetTx(tx func(*wire.Packet)) { h.ep.SetTx(tx) }

// NewHostStack builds a facade over a fresh software endpoint on the
// island. CarryBytes is forced on — the facade moves real payload. The
// caller wires SetTx and DeliverPacket to a link, mirroring how bare
// endpoints attach.
func NewHostStack(f sim.Fabric, island int, sopt stack.Options, opt Options) *HostStack {
	k := f.IslandKernel(island)
	sopt.CarryBytes = true
	if opt.LocalIP == 0 {
		opt.LocalIP = sopt.IP
	}
	ep := stack.New(k, sopt, nil)
	st := newStack(k, opt)
	st.be = &hostBackend{ep: ep, cap: int(sopt.Cfg.RcvBuf)}
	p := &hostPump{st: st, ep: ep, k: k}
	f.RegisterOn(island, p)
	return &HostStack{Stack: st, ep: ep, pump: p}
}
