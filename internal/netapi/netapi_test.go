package netapi

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"f4t/internal/engine"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/stack"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

var (
	addrA = wire.MakeAddr(10, 0, 0, 1)
	addrB = wire.MakeAddr(10, 0, 0, 2)
	macA  = wire.MAC{2, 0, 0, 0, 0, 1}
	macB  = wire.MAC{2, 0, 0, 0, 0, 2}
)

// testOptions widens the settle windows: the differential tests assert
// bit-identical digests, so a goroutine descheduled by a loaded CI
// machine must not slip an op past its settle.
func testOptions() Options {
	return Options{
		SettleQuantum:     200 * time.Microsecond,
		SettleQuietRounds: 5,
		SettleBusyWait:    5 * time.Millisecond,
	}
}

// engRig is two engine-backed facades over one link, island 0/1.
type engRig struct {
	r          sim.Runner
	stA, stB   *Stack
	link       *netsim.Link
	engA, engB *engine.Engine
}

// newEngRig builds the rig in a fixed construction order on any fabric
// (the determinism contract of NewF4TPairOn, minus the machines — the
// facade owns the channels).
func newEngRig(f sim.Fabric, opt Options) *engRig {
	kA, kB := f.IslandKernel(0), f.IslandKernel(1)
	link := netsim.NewLinkOn(f, 0, 1, 100, 600, 1234)
	cfg := engine.DefaultConfig()
	cfg.Channels = 1
	cfg.CarryBytes = true
	cfgA := cfg
	cfgA.IP, cfgA.MAC, cfgA.Seed = addrA, macA, 101
	cfgB := cfg
	cfgB.IP, cfgB.MAC, cfgB.Seed = addrB, macB, 202
	engA := engine.New(kA, cfgA, link.AtoB.Send)
	engB := engine.New(kB, cfgB, link.BtoA.Send)
	link.AtoB.SetSink(engB.DeliverPacket)
	link.BtoA.SetSink(engA.DeliverPacket)
	engA.LearnPeer(addrB, macB)
	engB.LearnPeer(addrA, macA)
	f.RegisterOn(0, engA)
	f.RegisterOn(1, engB)
	optA := opt
	optA.LocalIP = addrA
	optB := opt
	optB.LocalIP = addrB
	stA := NewEngineStack(f, 0, engA, 0, optA)
	stB := NewEngineStack(f, 1, engB, 0, optB)
	return &engRig{r: f, stA: stA, stB: stB, link: link, engA: engA, engB: engB}
}

func (r *engRig) teardown() {
	r.stA.Shutdown()
	r.stB.Shutdown()
	r.stA.Wait()
	r.stB.Wait()
}

// hostRig is two soft-host facades (stack.Endpoint substrate).
type hostRig struct {
	r        sim.Runner
	stA, stB *HostStack
}

func newHostRig(f sim.Fabric, opt Options) *hostRig {
	link := netsim.NewLinkOn(f, 0, 1, 100, 600, 77)
	soA := stack.Options{IP: addrA, MAC: macA, Cfg: tcpproc.DefaultConfig(), Alg: "newreno", Seed: 11}
	soB := stack.Options{IP: addrB, MAC: macB, Cfg: tcpproc.DefaultConfig(), Alg: "newreno", Seed: 22}
	a := NewHostStack(f, 0, soA, opt)
	b := NewHostStack(f, 1, soB, opt)
	a.SetTx(link.AtoB.Send)
	b.SetTx(link.BtoA.Send)
	link.AtoB.SetSink(b.DeliverPacket)
	link.BtoA.SetSink(a.DeliverPacket)
	a.Endpoint().LearnPeer(addrB, macB)
	b.Endpoint().LearnPeer(addrA, macA)
	return &hostRig{r: f, stA: a, stB: b}
}

func (r *hostRig) teardown() {
	r.stA.Shutdown()
	r.stB.Shutdown()
	r.stA.Wait()
	r.stB.Wait()
}

// runUntil drives the fabric on a coarse observation grid until the
// flag is set (the settled workloads advance only at pump settles, so
// fine-grained stepping buys nothing).
func runUntil(t *testing.T, r sim.Runner, done *atomic.Bool, budget int64, what string) {
	t.Helper()
	end := r.Now() + budget
	for !done.Load() {
		if r.Now() >= end {
			t.Fatalf("timed out waiting for %s after %d cycles", what, budget)
		}
		r.Run(20_000)
	}
}

// payload is a deterministic test pattern.
func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*31 + seed
	}
	return b
}

// echoServer accepts conns and echoes each until EOF, on tracked
// goroutines.
func echoServer(st *Stack, ln net.Listener) {
	st.Go(func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			st.Go(func() {
				io.Copy(c, c)
				c.Close()
			})
		}
	})
}

func TestEngineEchoRoundTrip(t *testing.T) {
	rig := newEngRig(sim.New(), testOptions())
	defer rig.teardown()

	var done atomic.Bool
	var clientErr error
	var got []byte
	msg := payload(8000, 3)

	rig.stB.Go(func() {
		ln, err := rig.stB.Listen(80)
		if err != nil {
			clientErr = fmt.Errorf("listen: %w", err)
			done.Store(true)
			return
		}
		echoServer(rig.stB, ln)
	})
	rig.stA.Go(func() {
		defer done.Store(true)
		c, err := rig.stA.Dial("tcp", "10.0.0.2:80")
		if err != nil {
			clientErr = fmt.Errorf("dial: %w", err)
			return
		}
		if _, err := c.Write(msg); err != nil {
			clientErr = fmt.Errorf("write: %w", err)
			return
		}
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(c, buf); err != nil {
			clientErr = fmt.Errorf("read: %w", err)
			return
		}
		got = buf
		c.Close()
	})

	rig.stB.Settle()
	rig.stA.Settle()
	runUntil(t, rig.r, &done, 50_000_000, "echo round trip")
	if clientErr != nil {
		t.Fatal(clientErr)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo corrupted: got %d bytes, want %d", len(got), len(msg))
	}
	// Sanity: the conns carried addresses.
	if la := rig.stA.opt.LocalIP; la != addrA {
		t.Fatalf("local IP = %v", la)
	}
}

func TestHostEchoRoundTrip(t *testing.T) {
	rig := newHostRig(sim.New(), testOptions())
	defer rig.teardown()

	var done atomic.Bool
	var clientErr error
	var got []byte
	msg := payload(5000, 9)

	rig.stB.Go(func() {
		ln, err := rig.stB.Listen(80)
		if err != nil {
			clientErr = fmt.Errorf("listen: %w", err)
			done.Store(true)
			return
		}
		echoServer(rig.stB.Stack, ln)
	})
	rig.stA.Go(func() {
		defer done.Store(true)
		c, err := rig.stA.Dial("tcp", "10.0.0.2:80")
		if err != nil {
			clientErr = fmt.Errorf("dial: %w", err)
			return
		}
		if _, err := c.Write(msg); err != nil {
			clientErr = fmt.Errorf("write: %w", err)
			return
		}
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(c, buf); err != nil {
			clientErr = fmt.Errorf("read: %w", err)
			return
		}
		got = buf
		c.Close()
	})

	rig.stB.Settle()
	rig.stA.Settle()
	runUntil(t, rig.r, &done, 50_000_000, "host echo round trip")
	if clientErr != nil {
		t.Fatal(clientErr)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo corrupted: got %d bytes, want %d", len(got), len(msg))
	}
}

// TestNetHTTPRoundTrip runs an UNMODIFIED net/http server and client
// over the simulated network — the facade's headline acceptance test.
func TestNetHTTPRoundTrip(t *testing.T) {
	rig := newEngRig(sim.New(), testOptions())
	defer rig.teardown()

	body := payload(4096, 7)
	mux := http.NewServeMux()
	mux.HandleFunc("/data", func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	})

	var done atomic.Bool
	var clientErr error
	var got []byte

	rig.stB.Go(func() {
		ln, err := rig.stB.Listen(80)
		if err != nil {
			clientErr = fmt.Errorf("listen: %w", err)
			done.Store(true)
			return
		}
		http.Serve(ln, mux)
	})
	rig.stA.Go(func() {
		defer done.Store(true)
		client := &http.Client{Transport: &http.Transport{DialContext: rig.stA.DialContext}}
		resp, err := client.Get("http://10.0.0.2:80/data")
		if err != nil {
			clientErr = fmt.Errorf("get: %w", err)
			return
		}
		got, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			clientErr = fmt.Errorf("body: %w", err)
		}
	})

	rig.stB.Settle()
	rig.stA.Settle()
	runUntil(t, rig.r, &done, 80_000_000, "HTTP round trip")
	if clientErr != nil {
		t.Fatal(clientErr)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("HTTP body corrupted: got %d bytes, want %d", len(got), len(body))
	}
}

func TestDialRefused(t *testing.T) {
	rig := newEngRig(sim.New(), testOptions())
	defer rig.teardown()

	var done atomic.Bool
	var dialErr error
	rig.stA.Go(func() {
		defer done.Store(true)
		_, dialErr = rig.stA.Dial("tcp", "10.0.0.2:9999") // nobody listens
	})
	rig.stA.Settle()
	runUntil(t, rig.r, &done, 50_000_000, "dial refusal")
	if dialErr == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	var opErr *net.OpError
	if !errors.As(dialErr, &opErr) {
		t.Fatalf("dial error = %v (%T), want *net.OpError", dialErr, dialErr)
	}
}

func TestReadDeadline(t *testing.T) {
	rig := newEngRig(sim.New(), testOptions())
	defer rig.teardown()

	var done atomic.Bool
	var readErr error
	var isNetErr, isTimeout bool

	rig.stB.Go(func() {
		ln, err := rig.stB.Listen(80)
		if err != nil {
			return
		}
		c, err := ln.Accept()
		if err != nil {
			return
		}
		_ = c // hold open, send nothing
	})
	rig.stA.Go(func() {
		defer done.Store(true)
		c, err := rig.stA.Dial("tcp", "10.0.0.2:80")
		if err != nil {
			readErr = err
			return
		}
		c.SetReadDeadline(time.Now().Add(-time.Second))
		_, readErr = c.Read(make([]byte, 16))
		var ne net.Error
		if errors.As(readErr, &ne) {
			isNetErr = true
			isTimeout = ne.Timeout()
		}
	})

	rig.stB.Settle()
	rig.stA.Settle()
	runUntil(t, rig.r, &done, 50_000_000, "deadline read")
	if !errors.Is(readErr, os.ErrDeadlineExceeded) {
		t.Fatalf("read error = %v, want os.ErrDeadlineExceeded", readErr)
	}
	if !isNetErr || !isTimeout {
		t.Fatalf("deadline error is not a net.Error timeout (netErr=%v timeout=%v)", isNetErr, isTimeout)
	}
}

// TestDeadlineUnblocksParkedRead covers net/http's abortPendingRead
// idiom: a Read parks first, then another goroutine moves the deadline
// into the past and the parked Read must fail.
func TestDeadlineUnblocksParkedRead(t *testing.T) {
	rig := newEngRig(sim.New(), testOptions())
	defer rig.teardown()

	var done atomic.Bool
	var readErr error
	dialed := make(chan net.Conn, 1)

	rig.stB.Go(func() {
		ln, err := rig.stB.Listen(80)
		if err != nil {
			return
		}
		ln.Accept()
	})
	rig.stA.Go(func() {
		defer done.Store(true)
		c, err := rig.stA.Dial("tcp", "10.0.0.2:80")
		if err != nil {
			readErr = err
			return
		}
		dialed <- c
		_, readErr = c.Read(make([]byte, 16)) // parks: peer sends nothing
	})
	rig.stA.Go(func() {
		c := <-dialed
		// Let the Read park (at least one settle), then abort it.
		time.Sleep(2 * time.Millisecond)
		c.SetReadDeadline(time.Now().Add(-time.Hour))
	})

	rig.stB.Settle()
	rig.stA.Settle()
	runUntil(t, rig.r, &done, 200_000_000, "aborted read")
	if !errors.Is(readErr, os.ErrDeadlineExceeded) {
		t.Fatalf("read error = %v, want os.ErrDeadlineExceeded", readErr)
	}
}

func TestCloseUnblocksRead(t *testing.T) {
	rig := newEngRig(sim.New(), testOptions())
	defer rig.teardown()

	var done atomic.Bool
	var readErr error
	dialed := make(chan net.Conn, 1)

	rig.stB.Go(func() {
		ln, err := rig.stB.Listen(80)
		if err != nil {
			return
		}
		ln.Accept()
	})
	rig.stA.Go(func() {
		defer done.Store(true)
		c, err := rig.stA.Dial("tcp", "10.0.0.2:80")
		if err != nil {
			readErr = err
			return
		}
		dialed <- c
		_, readErr = c.Read(make([]byte, 16))
	})
	rig.stA.Go(func() {
		c := <-dialed
		time.Sleep(2 * time.Millisecond)
		c.Close()
	})

	rig.stB.Settle()
	rig.stA.Settle()
	runUntil(t, rig.r, &done, 200_000_000, "close-aborted read")
	if !errors.Is(readErr, net.ErrClosed) {
		t.Fatalf("read error = %v, want net.ErrClosed", readErr)
	}
}

// echoDigest runs a fixed multi-connection echo workload on the given
// fabric and digests the run's simulation-side state at a fixed end
// cycle. Identical digests across fabrics are the facade's determinism
// acceptance criterion.
func echoDigest(t *testing.T, f sim.Fabric) string {
	t.Helper()
	const endCycle = 3_000_000
	rig := newEngRig(f, testOptions())
	defer rig.teardown()

	var done atomic.Bool
	var clientErr error
	sum := sha256.New()

	rig.stB.Go(func() {
		ln, err := rig.stB.Listen(80)
		if err != nil {
			clientErr = err
			done.Store(true)
			return
		}
		echoServer(rig.stB, ln)
	})
	rig.stA.Go(func() {
		defer done.Store(true)
		for i := 0; i < 3; i++ {
			c, err := rig.stA.Dial("tcp", "10.0.0.2:80")
			if err != nil {
				clientErr = fmt.Errorf("dial %d: %w", i, err)
				return
			}
			msg := payload(2000*(i+1), byte(i))
			if _, err := c.Write(msg); err != nil {
				clientErr = fmt.Errorf("write %d: %w", i, err)
				return
			}
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(c, buf); err != nil {
				clientErr = fmt.Errorf("read %d: %w", i, err)
				return
			}
			sum.Write(buf)
			c.Close()
		}
	})

	rig.stB.Settle()
	rig.stA.Settle()
	runUntil(t, rig.r, &done, endCycle, "echo workload")
	if clientErr != nil {
		t.Fatal(clientErr)
	}
	// Normalize every fabric to the same end cycle so the digest
	// compares like with like.
	if rem := endCycle - rig.r.Now(); rem > 0 {
		rig.r.Run(rem)
	}
	return fmt.Sprintf("end=%d ab=%d/%dB ba=%d/%dB drops=%d/%d sha=%s",
		rig.r.Now(),
		rig.link.AtoB.SentPkts, rig.link.AtoB.SentBytes,
		rig.link.BtoA.SentPkts, rig.link.BtoA.SentBytes,
		rig.link.AtoB.DroppedPkts, rig.link.BtoA.DroppedPkts,
		hex.EncodeToString(sum.Sum(nil)))
}

// TestEchoDifferential asserts bit-identical execution of the same
// facade workload across serial, noskip, and sharded fabrics.
func TestEchoDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery is not short")
	}
	digests := map[string]string{
		"serial":   echoDigest(t, sim.New()),
		"noskip":   echoDigest(t, sim.NewShadow()),
		"sharded2": echoDigest(t, sim.NewSharded(2)),
	}
	want := digests["serial"]
	for name, d := range digests {
		if d != want {
			t.Errorf("digest mismatch:\n  serial: %s\n  %s: %s", want, name, d)
		}
	}
}
