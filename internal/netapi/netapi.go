// Package netapi is a stdlib-compatible socket facade over the F4T
// simulation: Dial/Listen return real net.Conn / net.Listener
// implementations whose blocking Read/Write/Accept calls are served by
// the deterministic simulation kernel. It bridges two worlds with
// incompatible execution models:
//
//   - Application goroutines (net/http servers, any Go protocol
//     library) block on socket calls at arbitrary real times.
//   - The simulation is single-driver and cycle-deterministic: all
//     socket state may only advance at well-defined simulated cycles,
//     identically across serial, noskip, and sharded fabrics.
//
// The bridge is cooperative. A blocked caller parks its op on a channel
// inside the Stack's inbox; a kernel-side pump component (a sim.Sleeper
// registered on the stack's island) drains the inbox at deterministic
// cycles, executes ops against facade-local mirrors of the socket
// pointers while simulated time is frozen, wakes completed callers, and
// waits — in real time, with simulated time still frozen — for the
// woken goroutines to either submit their next op or go silent (the
// settle loop). Only then does it apply the accumulated sim-visible
// effects (send/recv pointer posts, closes, dials) in one pass sorted
// by connection id, and let simulated time move again.
//
// Determinism model (see DESIGN.md §14 for the full argument):
//
//   - Effect/observe split: ring byte copies are invisible to the
//     simulation (the engine never reads TX bytes beyond the posted REQ
//     pointer, never rewrites RX bytes below the delivered pointer), so
//     ops copy immediately but defer every pointer-advancing command to
//     the end-of-settle effect pass. Batch splits across settle rounds
//     therefore cannot change what the simulation observes.
//   - Deterministic pickup cycles: the pump's NextWork is a function of
//     simulation-side state only (pending completions, effect retries)
//     plus a fixed poll grid — never of the racy inbox — so the cycles
//     at which ops can enter the simulation are identical across runs
//     and fabrics.
//   - Within one settle, ops are executed in (owner id, kind, submit
//     seq) order, and effects are applied in connection-id order.
//
// The guarantee holds for applications whose blocking all flows through
// netapi calls (channel handoffs between goroutines in between are
// fine — the settle loop waits them out). An application that gates
// behaviour on wall-clock time (time.Sleep, real deadlines) ties its
// ops to real time and trades determinism away; deadlines are
// supported but documented as best-effort. A goroutine descheduled for
// longer than the settle grace window slips its op to the next poll
// grid cycle; the window defaults are generous and tests that assert
// bit-identical digests widen them further.
package netapi

import (
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"f4t/internal/sim"
	"f4t/internal/wire"
)

// Options tunes a Stack. The zero value gets usable defaults.
type Options struct {
	// LocalIP is the address reported by LocalAddr (the engine's or
	// endpoint's IP).
	LocalIP wire.Addr

	// GridCycles is the fixed poll grid: ops submitted outside any
	// settle window enter the simulation at the next multiple of this
	// many cycles (default 1024 ≈ 4 µs). Smaller grids pick up
	// spontaneous ops sooner but bound cycle skipping tighter.
	GridCycles int64

	// SettleQuantum is the real-time wait slice of the settle loop
	// (default 150 µs).
	SettleQuantum time.Duration

	// SettleQuietRounds is how many consecutive empty quanta end a
	// settle once no woken goroutine is outstanding (default 4).
	SettleQuietRounds int

	// SettleBusyWait caps how long a settle waits for an already-woken
	// goroutine to submit its next op before treating it as gone
	// (default 1.5 ms).
	SettleBusyWait time.Duration
}

func (o *Options) fill() {
	if o.GridCycles <= 0 {
		o.GridCycles = 1024
	}
	if o.SettleQuantum <= 0 {
		o.SettleQuantum = 150 * time.Microsecond
	}
	if o.SettleQuietRounds <= 0 {
		o.SettleQuietRounds = 4
	}
	if o.SettleBusyWait <= 0 {
		o.SettleBusyWait = 1500 * time.Microsecond
	}
}

// opKind discriminates facade operations. The numeric order is the
// deterministic execution rank within one batch.
type opKind uint8

const (
	opListen opKind = iota
	opDial
	opAccept
	opRead
	opWrite
	opConnClose
	opLnClose
)

// op is one blocking facade call in flight.
type op struct {
	kind opKind
	seq  int64 // submission ticket (total order tie-break)
	done chan struct{}
	err  error

	id    int64 // preassigned owner id (dial, listen)
	raddr wire.Addr
	rport uint16

	c    *Conn
	ln   *Listener
	buf  []byte
	n    int // bytes transferred so far (read result / write progress)
	conn *Conn // result (dial, accept)
}

// owner returns the id the batch sort groups by.
func (o *op) owner() int64 {
	switch o.kind {
	case opListen, opDial:
		return o.id
	case opAccept, opLnClose:
		return o.ln.id
	default:
		return o.c.id
	}
}

// Stack is one host's facade instance: the bridge between application
// goroutines and that host's socket backend (an engine-backed
// softstack.Lib or a software stack.Endpoint).
type Stack struct {
	k   *sim.Kernel
	be  stackBackend
	opt Options

	nowNS  atomic.Int64
	inboxN atomic.Int32

	// mu guards the fields shared with application goroutines: inbox,
	// credits, seq, nextID, deadlines, and the parked-op queues hanging
	// off conns/listeners. The island-only fields below it (effect
	// flags, retry lists, grid bookkeeping) are touched exclusively by
	// the pump on the island goroutine — or by Settle/Shutdown from the
	// driver while every island is provably idle — so they need no lock
	// and, crucially, NextWork may read them without one.
	mu      sync.Mutex
	signal  chan struct{}
	seq     int64
	nextID  int64
	inbox   []*op
	credits int
	closed  bool

	conns     []*Conn // live conns in ascending id order
	listeners []*Listener

	dialRetry   []*op         // backend had no capacity; retried per tick
	orphans     []connBackend // accepted conns with no listener: abort
	effectRetry bool
	nextGridAt  int64
	down        bool // Shutdown called: pump stands down

	wg sync.WaitGroup
}

func newStack(k *sim.Kernel, opt Options) *Stack {
	opt.fill()
	return &Stack{k: k, opt: opt, signal: make(chan struct{}, 1)}
}

// NowNS returns the current simulated time in nanoseconds, readable
// from any goroutine (updated by the pump each tick).
func (st *Stack) NowNS() int64 { return st.nowNS.Load() }

// Go runs fn on a tracked goroutine; Wait joins all of them. Workload
// goroutines should start here so rigs can drain them at teardown.
func (st *Stack) Go(fn func()) {
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		fn()
	}()
}

// Wait blocks until every Go-started goroutine has returned.
func (st *Stack) Wait() { st.wg.Wait() }

// submit parks the calling goroutine on o until the pump completes it.
func (st *Stack) submit(o *op) error {
	o.done = make(chan struct{})
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return net.ErrClosed
	}
	st.seq++
	o.seq = st.seq
	if st.credits > 0 {
		st.credits--
	}
	st.inbox = append(st.inbox, o)
	st.inboxN.Add(1)
	st.mu.Unlock()
	select {
	case st.signal <- struct{}{}:
	default:
	}
	<-o.done
	return o.err
}

// finish completes a parked op and wakes its goroutine. Caller holds mu.
func (st *Stack) finish(o *op, err error) {
	o.err = err
	st.credits++
	close(o.done)
}

// pumpTick is the per-cycle entry point on the island goroutine.
func (st *Stack) pumpTick(cycle int64) {
	st.nowNS.Store(cycle * sim.CycleNS)
	if st.down {
		return
	}
	pending := st.be.pump(st)
	// Settle only at deterministic cycles: backend activity, pending
	// retries, or the fixed poll grid. The inbox is deliberately NOT
	// consulted here — its fill level is real-time racy, and gating on
	// it would make the settle cycle depend on goroutine scheduling.
	if !pending && !st.effectRetry && len(st.dialRetry) == 0 && cycle < st.nextGridAt {
		return
	}
	st.nextGridAt = (cycle/st.opt.GridCycles + 1) * st.opt.GridCycles
	st.settle()
	// Yield after every settle: on GOMAXPROCS=1 a driver that never
	// blocks can otherwise starve freshly spawned application
	// goroutines of the CPU they need to submit their first op (the
	// settle loop's own waits only cover goroutines it woke itself).
	runtime.Gosched()
}

// nextWork is the pump's sim.Sleeper hint. It must be a function of
// island-side simulation state only — never of the inbox.
func (st *Stack) nextWork(now int64) int64 {
	if st.down {
		return sim.Dormant
	}
	if st.be.pending() || st.effectRetry || len(st.dialRetry) > 0 {
		return now + 1
	}
	if st.nextGridAt <= now {
		return now + 1
	}
	return st.nextGridAt
}

// Settle runs one settle pass from the driver goroutine. Call it only
// while the fabric is idle (before the first Run, or between Run
// calls — both serial and sharded Run return with every island
// goroutine joined). It exists so setup-time Listen/Dial/Accept ops
// issued by freshly started workload goroutines are picked up at a
// deterministic point before simulated time first advances.
func (st *Stack) Settle() {
	st.nowNS.Store(st.k.NowNS())
	if st.down {
		return
	}
	// Freshly started workload goroutines race the driver to this call;
	// grant them one busy-wait window to submit their first ops before
	// settling (a settle on an empty inbox would return immediately and
	// leave those ops to a racy grid-cycle pickup).
	deadline := time.Now().Add(st.opt.SettleBusyWait)
	for st.inboxN.Load() == 0 && time.Now().Before(deadline) {
		select {
		case <-st.signal:
		case <-time.After(st.opt.SettleQuantum):
		}
	}
	st.be.pump(st)
	st.settle()
}

// settle executes ops at frozen simulated time until the application
// goes quiet, then applies the accumulated effects.
func (st *Stack) settle() {
	st.mu.Lock()
	if n := len(st.dialRetry); n > 0 {
		pend := st.dialRetry
		st.dialRetry = nil
		for _, o := range pend {
			st.execDial(o)
		}
	}
	for {
		if len(st.inbox) > 0 {
			batch := st.inbox
			st.inbox = nil
			st.inboxN.Store(0)
			sort.Slice(batch, func(i, j int) bool {
				a, b := batch[i], batch[j]
				if ao, bo := a.owner(), b.owner(); ao != bo {
					return ao < bo
				}
				if a.kind != b.kind {
					return a.kind < b.kind
				}
				return a.seq < b.seq
			})
			for _, o := range batch {
				st.exec(o)
			}
		}
		st.sweep()
		if st.credits == 0 && len(st.inbox) == 0 {
			break
		}
		if !st.waitQuiet() {
			// Silence: any outstanding credit belongs to a goroutine
			// that exited or blocked outside netapi; stop waiting on it.
			st.credits = 0
			if len(st.inbox) == 0 {
				break
			}
		}
	}
	st.applyEffects()
	st.mu.Unlock()
}

// waitQuiet drops the lock and waits for new submissions. It returns
// true when ops arrived, false when the application went silent.
func (st *Stack) waitQuiet() bool {
	busyUntil := time.Now().Add(st.opt.SettleBusyWait)
	quietLeft := st.opt.SettleQuietRounds
	for {
		if len(st.inbox) > 0 {
			return true
		}
		hadCredits := st.credits > 0
		st.mu.Unlock()
		select {
		case <-st.signal:
		case <-time.After(st.opt.SettleQuantum):
		}
		st.mu.Lock()
		if len(st.inbox) > 0 {
			return true
		}
		if hadCredits && st.credits > 0 && time.Now().Before(busyUntil) {
			continue
		}
		quietLeft--
		if quietLeft <= 0 {
			return false
		}
	}
}

// exec runs one op at frozen simulated time, completing it or parking
// it on its owner's queue. Caller holds mu.
func (st *Stack) exec(o *op) {
	switch o.kind {
	case opListen:
		st.execListen(o)
	case opDial:
		st.execDial(o)
	case opAccept:
		ln := o.ln
		if ln.closedLn {
			st.finish(o, net.ErrClosed)
			return
		}
		if !st.tryAccept(ln, o) {
			ln.acceptQ = append(ln.acceptQ, o)
		}
	case opRead:
		if len(o.c.readQ) > 0 || !st.tryRead(o) {
			o.c.readQ = append(o.c.readQ, o)
		}
	case opWrite:
		if len(o.c.writeQ) > 0 || !st.tryWrite(o) {
			o.c.writeQ = append(o.c.writeQ, o)
		}
	case opConnClose:
		st.execConnClose(o)
	case opLnClose:
		st.execLnClose(o)
	}
}

func (st *Stack) execListen(o *op) {
	for _, ln := range st.listeners {
		if ln.port == o.rport && !ln.closedLn {
			st.finish(o, errAddrInUse)
			return
		}
	}
	ln := &Listener{st: st, id: o.id, port: o.rport, wantListen: true}
	st.listeners = append(st.listeners, ln)
	o.ln = ln
	st.finish(o, nil)
}

func (st *Stack) execDial(o *op) {
	bc, retry, err := st.be.dial(o.raddr, o.rport)
	if retry {
		st.dialRetry = append(st.dialRetry, o)
		return
	}
	if err != nil {
		st.finish(o, err)
		return
	}
	c := st.newConn(o.id, bc)
	c.dialOp = o
}

func (st *Stack) execConnClose(o *op) {
	c := o.c
	if !c.localClosed {
		c.localClosed = true
		if c.dialOp != nil {
			st.finish(c.dialOp, net.ErrClosed)
			c.dialOp = nil
			c.wantAbort = true
		} else {
			c.wantClose = true
		}
		st.failParked(c, net.ErrClosed)
	}
	st.finish(o, nil)
}

func (st *Stack) execLnClose(o *op) {
	ln := o.ln
	if !ln.closedLn {
		ln.closedLn = true
		for _, a := range ln.acceptQ {
			st.finish(a, net.ErrClosed)
		}
		ln.acceptQ = nil
		st.orphans = append(st.orphans, ln.backlog...)
		ln.backlog = nil
	}
	st.finish(o, nil)
}

// failParked completes every parked op on c with err. Caller holds mu.
func (st *Stack) failParked(c *Conn, err error) {
	for _, o := range c.readQ {
		st.finish(o, err)
	}
	c.readQ = nil
	for _, o := range c.writeQ {
		st.finish(o, err)
	}
	c.writeQ = nil
}

// newConn wraps a backend conn, inserting it into the id-ordered live
// list. Caller holds mu.
func (st *Stack) newConn(id int64, bc connBackend) *Conn {
	c := &Conn{st: st, id: id, bc: bc}
	raddr, rport := bc.remote()
	c.laddr = Addr{IP: st.opt.LocalIP, Port: bc.localPort()}
	c.raddr = Addr{IP: raddr, Port: rport}
	i := sort.Search(len(st.conns), func(i int) bool { return st.conns[i].id >= id })
	st.conns = append(st.conns, nil)
	copy(st.conns[i+1:], st.conns[i:])
	st.conns[i] = c
	return c
}

// sweep revisits every parked op in deterministic (id) order against
// the current backend state. Caller holds mu.
func (st *Stack) sweep() {
	for _, ln := range st.listeners {
		for len(ln.acceptQ) > 0 {
			o := ln.acceptQ[0]
			if ln.closedLn {
				st.finish(o, net.ErrClosed)
			} else if !st.tryAccept(ln, o) {
				break
			}
			copy(ln.acceptQ, ln.acceptQ[1:])
			ln.acceptQ = ln.acceptQ[:len(ln.acceptQ)-1]
		}
	}
	// Index loop: accepts above and dial completions below may append
	// conns (always with larger ids, hence past the cursor).
	for i := 0; i < len(st.conns); i++ {
		c := st.conns[i]
		if o := c.dialOp; o != nil {
			if c.bc.wasReset() || c.bc.closed() {
				c.dialOp = nil
				st.finish(o, errRefused)
			} else if c.bc.established() {
				c.dialOp = nil
				c.anchor()
				o.conn = c
				st.finish(o, nil)
			}
		}
		for len(c.readQ) > 0 && st.tryRead(c.readQ[0]) {
			copy(c.readQ, c.readQ[1:])
			c.readQ = c.readQ[:len(c.readQ)-1]
		}
		for len(c.writeQ) > 0 && st.tryWrite(c.writeQ[0]) {
			copy(c.writeQ, c.writeQ[1:])
			c.writeQ = c.writeQ[:len(c.writeQ)-1]
		}
	}
}

func (st *Stack) tryAccept(ln *Listener, o *op) bool {
	if len(ln.backlog) == 0 {
		return false
	}
	bc := ln.backlog[0]
	copy(ln.backlog, ln.backlog[1:])
	ln.backlog = ln.backlog[:len(ln.backlog)-1]
	st.nextID++
	c := st.newConn(st.nextID, bc)
	c.anchor()
	o.conn = c
	st.finish(o, nil)
	return true
}

// applyEffects performs the deferred sim-visible actions in one pass
// ordered by connection id, then prunes dead conns. Caller holds mu.
func (st *Stack) applyEffects() {
	retry := false
	for _, bc := range st.orphans {
		bc.abort()
	}
	st.orphans = st.orphans[:0]
	live := st.conns[:0]
	for _, c := range st.conns {
		bc := c.bc
		if c.wantRecv {
			if bc.postRecv(c.rdPtr) {
				c.wantRecv = false
			} else {
				retry = true
			}
		}
		if c.wantSend {
			if bc.postSend(c.wrPtr) {
				c.wantSend = false
			} else {
				retry = true
			}
		}
		if c.wantAbort {
			bc.abort()
			c.wantAbort, c.wantClose = false, false
		}
		if c.wantClose {
			if bc.close() {
				c.wantClose = false
			} else {
				retry = true
			}
		}
		if c.dead() {
			continue
		}
		live = append(live, c)
	}
	// Zero the pruned tail so dropped conns are collectable.
	for i := len(live); i < len(st.conns); i++ {
		st.conns[i] = nil
	}
	st.conns = live
	for _, ln := range st.listeners {
		if ln.wantListen && !ln.closedLn {
			if st.be.listen(ln.port, ln) {
				ln.wantListen = false
			} else {
				retry = true
			}
		}
	}
	st.effectRetry = retry
}

// Shutdown fails every parked and future op with net.ErrClosed and
// stands the pump down. Call from the driver while the fabric is idle,
// after the workload is done (pair with Wait to join goroutines).
func (st *Stack) Shutdown() {
	st.mu.Lock()
	st.closed = true
	for _, o := range st.inbox {
		st.finish(o, net.ErrClosed)
	}
	st.inbox = nil
	st.inboxN.Store(0)
	for _, o := range st.dialRetry {
		st.finish(o, net.ErrClosed)
	}
	st.dialRetry = nil
	for _, c := range st.conns {
		if c.dialOp != nil {
			st.finish(c.dialOp, net.ErrClosed)
			c.dialOp = nil
		}
		st.failParked(c, net.ErrClosed)
	}
	for _, ln := range st.listeners {
		for _, o := range ln.acceptQ {
			st.finish(o, net.ErrClosed)
		}
		ln.acceptQ = nil
		ln.closedLn = true
	}
	st.down = true
	st.mu.Unlock()
}
