package tcpproc

import (
	"testing"

	"f4t/internal/cc"
	"f4t/internal/flow"
	"f4t/internal/wire"
)

type harness struct {
	t   *flow.TCB
	alg cc.Algorithm
	cfg Config
	out Actions
	now int64
}

func newHarness() *harness {
	h := &harness{
		alg: cc.MustNew("newreno"),
		cfg: DefaultConfig(),
		now: 1_000_000,
	}
	h.t = &flow.TCB{
		FlowID: 1,
		State:  flow.StateClosed,
		ISS:    1000,
		SndUna: 1000, SndNxt: 1000, Req: 1000,
		RcvBuf: h.cfg.RcvBuf,
	}
	h.t.AckedToHost = 1001
	return h
}

// feed merges one event and runs a pass.
func (h *harness) feed(ev flow.Event) *Actions {
	var row flow.EventRow
	row.Accumulate(&ev)
	row.MergeInto(h.t)
	h.out.Reset()
	h.now += 1000
	Process(h.t, h.alg, &h.cfg, h.now, &h.out)
	return &h.out
}

func (h *harness) segs() []SendOp { return h.out.Segs }

func hasFlag(ops []SendOp, f uint8) *SendOp {
	for i := range ops {
		if ops[i].Flags&f == f {
			return &ops[i]
		}
	}
	return nil
}

func hasNote(notes []Note, k NoteKind) *Note {
	for i := range notes {
		if notes[i].Kind == k {
			return &notes[i]
		}
	}
	return nil
}

// establish drives the active-open handshake to ESTABLISHED.
func (h *harness) establish(t *testing.T) {
	t.Helper()
	out := h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, Ctl: flow.CtlOpen})
	if hasFlag(out.Segs, wire.FlagSYN) == nil || h.t.State != flow.StateSynSent {
		t.Fatalf("open: %+v state=%v", out.Segs, h.t.State)
	}
	out = h.feed(flow.Event{
		Kind: flow.EvRx, Flow: 1,
		RxFlags: flow.RxSYN, SynSeq: 7000,
		HasAck: true, Ack: 1001, HasWnd: true, Wnd: 65535,
	})
	if h.t.State != flow.StateEstablished {
		t.Fatalf("after SYN-ACK: state=%v", h.t.State)
	}
	if hasNote(out.Notes, NoteEstablished) == nil {
		t.Fatal("no established notification")
	}
	if hasFlag(out.Segs, wire.FlagACK) == nil {
		t.Fatal("handshake third ACK missing")
	}
}

func TestActiveOpenHandshake(t *testing.T) {
	h := newHarness()
	h.establish(t)
	if h.t.RcvNxt != 7001 || h.t.SndUna != 1001 {
		t.Fatalf("stream anchors: rcv=%d snd=%d", h.t.RcvNxt, h.t.SndUna)
	}
}

func TestPassiveOpenHandshake(t *testing.T) {
	h := newHarness()
	h.t.State = flow.StateListen
	out := h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, RxFlags: flow.RxSYN, SynSeq: 9000})
	sa := hasFlag(out.Segs, wire.FlagSYN|wire.FlagACK)
	if sa == nil || sa.Ack != 9001 || h.t.State != flow.StateSynRcvd {
		t.Fatalf("SYN-ACK: %+v state=%v", out.Segs, h.t.State)
	}
	out = h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasAck: true, Ack: 1001, HasWnd: true, Wnd: 4096})
	if h.t.State != flow.StateEstablished || hasNote(out.Notes, NoteEstablished) == nil {
		t.Fatalf("final ack: state=%v", h.t.State)
	}
}

func TestSendWithinWindows(t *testing.T) {
	h := newHarness()
	h.establish(t)
	out := h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: h.t.SndNxt.Add(500)})
	op := hasFlag(out.Segs, wire.FlagACK)
	if op == nil || op.Len != 500 {
		t.Fatalf("send: %+v", out.Segs)
	}
	if h.t.SndNxt != h.t.SndUna.Add(500) {
		t.Fatalf("SndNxt = %d", h.t.SndNxt)
	}
	if h.t.RetransAt == 0 {
		t.Fatal("RTO not armed with data in flight")
	}
}

func TestSendRespectsCongestionWindow(t *testing.T) {
	h := newHarness()
	h.establish(t)
	h.t.Cwnd = 1000
	out := h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: h.t.SndNxt.Add(5000)})
	op := hasFlag(out.Segs, wire.FlagACK)
	if op == nil || op.Len != 1000 {
		t.Fatalf("cwnd-clipped send: %+v", out.Segs)
	}
}

func TestSendRespectsPeerWindow(t *testing.T) {
	h := newHarness()
	h.establish(t)
	h.t.SndWnd = 300
	h.t.Cwnd = 1 << 20
	out := h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: h.t.SndNxt.Add(5000)})
	op := hasFlag(out.Segs, wire.FlagACK)
	if op == nil || op.Len != 300 {
		t.Fatalf("peer-window-clipped send: %+v", out.Segs)
	}
	// The window is small but nonzero: no persist timer yet (ACKs for
	// the in-flight bytes will clock further sends).
	if h.t.ProbeAt != 0 {
		t.Fatal("persist timer armed on a nonzero window")
	}
	// The peer now advertises a zero window: persist arms.
	h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasAck: true, Ack: h.t.SndNxt, HasWnd: true, Wnd: 0})
	if h.t.ProbeAt == 0 {
		t.Fatal("persist timer not armed on zero window")
	}
}

func TestAckReleasesAndNotifies(t *testing.T) {
	h := newHarness()
	h.establish(t)
	h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: h.t.SndNxt.Add(500)})
	out := h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasAck: true, Ack: h.t.SndNxt, HasWnd: true, Wnd: 65535})
	n := hasNote(out.Notes, NoteDataAcked)
	if n == nil || n.Seq != h.t.SndUna {
		t.Fatalf("acked note: %+v", out.Notes)
	}
	if h.t.RetransAt != 0 {
		t.Fatal("RTO still armed with nothing outstanding")
	}
}

func TestReceiveDeliversAndAcks(t *testing.T) {
	h := newHarness()
	h.establish(t)
	out := h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasData: true, RcvData: h.t.RcvNxt.Add(3000)})
	if n := hasNote(out.Notes, NoteDataDelivered); n == nil || n.Seq != h.t.RcvNxt {
		t.Fatalf("deliver note: %+v", out.Notes)
	}
	// 3000 B ≥ 2 MSS: the delayed-ACK rule sends the ACK immediately.
	if hasFlag(out.Segs, wire.FlagACK) == nil {
		t.Fatalf("no ack for 2+ MSS of data: %+v", out.Segs)
	}
}

func TestDelayedAckSmallData(t *testing.T) {
	h := newHarness()
	h.establish(t)
	out := h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasData: true, RcvData: h.t.RcvNxt.Add(100)})
	if len(out.Segs) != 0 {
		t.Fatalf("small data acked immediately despite delack: %+v", out.Segs)
	}
	if h.t.DelAckAt == 0 {
		t.Fatal("delack timer not armed")
	}
	// The timer fires: the ACK goes out.
	out = h.feed(flow.Event{Kind: flow.EvTimeout, Flow: 1, Timeouts: flow.TODelAck})
	if hasFlag(out.Segs, wire.FlagACK) == nil {
		t.Fatal("delack timer did not flush the ack")
	}
}

func TestFastRetransmitOnTripleDup(t *testing.T) {
	h := newHarness()
	h.establish(t)
	h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: h.t.SndNxt.Add(5000)})
	first := h.t.SndUna
	// Two dups: nothing yet.
	out := h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, IsDupAck: true})
	out = h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, IsDupAck: true})
	if len(out.Segs) != 0 {
		t.Fatalf("retransmit before 3 dups: %+v", out.Segs)
	}
	// Third dup: retransmit the first unacked segment, enter recovery.
	out = h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, IsDupAck: true})
	op := hasFlag(out.Segs, wire.FlagACK)
	if op == nil || !op.Retransmit || op.Seq != first {
		t.Fatalf("fast retransmit: %+v", out.Segs)
	}
	if !h.t.InRecovery {
		t.Fatal("not in recovery")
	}
	// A partial ACK retransmits the next hole.
	out = h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasAck: true, Ack: first.Add(1460), HasWnd: true, Wnd: 65535})
	op = hasFlag(out.Segs, wire.FlagACK)
	if op == nil || !op.Retransmit || op.Seq != first.Add(1460) {
		t.Fatalf("partial-ack retransmit: %+v", out.Segs)
	}
	// Full ACK exits recovery.
	h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasAck: true, Ack: h.t.RecoverSeq, HasWnd: true, Wnd: 65535})
	if h.t.InRecovery {
		t.Fatal("recovery did not end at the recovery point")
	}
}

func TestRTORetransmitsAndBacksOff(t *testing.T) {
	h := newHarness()
	h.establish(t)
	h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: h.t.SndNxt.Add(500)})
	out := h.feed(flow.Event{Kind: flow.EvTimeout, Flow: 1, Timeouts: flow.TORetrans})
	op := hasFlag(out.Segs, wire.FlagACK)
	if op == nil || !op.Retransmit || op.Seq != h.t.SndUna {
		t.Fatalf("RTO retransmit: %+v", out.Segs)
	}
	if h.t.Backoff != 1 {
		t.Fatalf("backoff = %d", h.t.Backoff)
	}
	d1 := h.t.RetransAt - h.now
	h.feed(flow.Event{Kind: flow.EvTimeout, Flow: 1, Timeouts: flow.TORetrans})
	d2 := h.t.RetransAt - h.now
	if d2 <= d1 {
		t.Fatalf("RTO did not back off: %d then %d", d1, d2)
	}
}

func TestZeroWindowProbe(t *testing.T) {
	h := newHarness()
	h.establish(t)
	h.t.SndWnd = 0
	h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: h.t.SndNxt.Add(500)})
	out := h.feed(flow.Event{Kind: flow.EvTimeout, Flow: 1, Timeouts: flow.TOProbe})
	op := hasFlag(out.Segs, wire.FlagACK)
	if op == nil || op.Len != 1 {
		t.Fatalf("persist probe: %+v", out.Segs)
	}
}

func TestCloseHandshakeInitiator(t *testing.T) {
	h := newHarness()
	h.establish(t)
	out := h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, Ctl: flow.CtlClose})
	fin := hasFlag(out.Segs, wire.FlagFIN)
	if fin == nil || h.t.State != flow.StateFinWait1 {
		t.Fatalf("FIN: %+v state=%v", out.Segs, h.t.State)
	}
	// FIN acked → FIN_WAIT_2.
	h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasAck: true, Ack: h.t.SndNxt, HasWnd: true, Wnd: 65535})
	if h.t.State != flow.StateFinWait2 {
		t.Fatalf("state after FIN ack: %v", h.t.State)
	}
	// Peer FIN → TIME_WAIT + notify.
	out = h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, RxFlags: flow.RxFIN, FinSeq: h.t.RcvNxt})
	if h.t.State != flow.StateTimeWait || hasNote(out.Notes, NotePeerClosed) == nil {
		t.Fatalf("peer FIN: state=%v", h.t.State)
	}
	if h.t.TimeWaitAt == 0 {
		t.Fatal("TIME_WAIT timer not armed")
	}
	// 2MSL expiry frees the flow.
	out = h.feed(flow.Event{Kind: flow.EvTimeout, Flow: 1, Timeouts: flow.TOTimeWait})
	if !out.FreeFlow || hasNote(out.Notes, NoteClosed) == nil {
		t.Fatal("TIME_WAIT expiry did not free the flow")
	}
}

func TestCloseResponderPath(t *testing.T) {
	h := newHarness()
	h.establish(t)
	// Peer closes first.
	h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, RxFlags: flow.RxFIN, FinSeq: h.t.RcvNxt})
	if h.t.State != flow.StateCloseWait {
		t.Fatalf("state = %v", h.t.State)
	}
	// We close: LAST_ACK, then the final ack frees.
	out := h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, Ctl: flow.CtlClose})
	if hasFlag(out.Segs, wire.FlagFIN) == nil || h.t.State != flow.StateLastAck {
		t.Fatalf("LAST_ACK: %v", h.t.State)
	}
	out = h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasAck: true, Ack: h.t.SndNxt, HasWnd: true, Wnd: 65535})
	if !out.FreeFlow || h.t.State != flow.StateClosed {
		t.Fatalf("final state = %v free=%v", h.t.State, out.FreeFlow)
	}
}

func TestOutOfOrderFINWaitsForData(t *testing.T) {
	h := newHarness()
	h.establish(t)
	// FIN arrives with a data gap: it must wait.
	finSeq := h.t.RcvNxt.Add(1000)
	h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, RxFlags: flow.RxFIN, FinSeq: finSeq})
	if h.t.State != flow.StateEstablished || h.t.RcvFin {
		t.Fatalf("premature FIN consumption: %v", h.t.State)
	}
	// The gap fills: now the FIN is consumed.
	out := h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasData: true, RcvData: finSeq})
	if h.t.State != flow.StateCloseWait || hasNote(out.Notes, NotePeerClosed) == nil {
		t.Fatalf("FIN after gap fill: %v", h.t.State)
	}
}

func TestRSTTearsDown(t *testing.T) {
	h := newHarness()
	h.establish(t)
	out := h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, RxFlags: flow.RxRST, RstSeq: h.t.RcvNxt})
	if !out.FreeFlow || hasNote(out.Notes, NoteReset) == nil || h.t.State != flow.StateClosed {
		t.Fatalf("RST handling: %+v", out.Notes)
	}
}

func TestAbortEmitsRST(t *testing.T) {
	h := newHarness()
	h.establish(t)
	out := h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, Ctl: flow.CtlAbort})
	if hasFlag(out.Segs, wire.FlagRST) == nil || !out.FreeFlow {
		t.Fatalf("abort: %+v", out.Segs)
	}
}

func TestAccumulatedEventsProcessAtomically(t *testing.T) {
	// The headline §4.2 property: many accumulated send requests process
	// as one pass, emitting one coalesced transfer.
	h := newHarness()
	h.establish(t)
	var row flow.EventRow
	req := h.t.SndNxt
	for i := 0; i < 8; i++ {
		req = req.Add(100)
		ev := flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: req}
		row.Accumulate(&ev)
	}
	row.MergeInto(h.t)
	h.out.Reset()
	Process(h.t, h.alg, &h.cfg, h.now+5000, &h.out)
	op := hasFlag(h.out.Segs, wire.FlagACK)
	if op == nil || op.Len != 800 {
		t.Fatalf("accumulated send = %+v, want one 800 B op", h.out.Segs)
	}
}

func TestRTTEstimatorUpdates(t *testing.T) {
	h := newHarness()
	h.establish(t)
	h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: h.t.SndNxt.Add(500)})
	if !h.t.RTTTiming {
		t.Fatal("no RTT sample in flight")
	}
	h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, HasAck: true, Ack: h.t.SndNxt, HasWnd: true, Wnd: 65535})
	if h.t.SRTT == 0 || h.t.RTO < h.cfg.MinRTO {
		t.Fatalf("SRTT=%d RTO=%d", h.t.SRTT, h.t.RTO)
	}
}

func TestActionableChecks(t *testing.T) {
	h := newHarness()
	h.establish(t)
	base := *h.t

	// Idle flow: not actionable.
	tcb := base
	if Actionable(&tcb) {
		t.Fatal("idle flow actionable")
	}
	// Pending send within window: actionable.
	tcb = base
	tcb.In.Req = tcb.SndNxt.Add(100)
	tcb.In.Valid = flow.VReq
	if !Actionable(&tcb) {
		t.Fatal("sendable flow not actionable")
	}
	// Pending send with closed windows: not actionable (wait in DRAM).
	tcb = base
	tcb.SndWnd = 0
	tcb.In.Req = tcb.SndNxt.Add(100)
	tcb.In.Valid = flow.VReq
	if Actionable(&tcb) {
		t.Fatal("window-blocked flow actionable")
	}
	// Timeout: always actionable.
	tcb = base
	tcb.In.Timeouts = flow.TORetrans
	tcb.In.Valid = flow.VTimeouts
	if !Actionable(&tcb) {
		t.Fatal("timeout not actionable")
	}
	// New in-order data: actionable (ack + delivery owed).
	tcb = base
	tcb.In.RcvData = tcb.RcvNxt.Add(10)
	tcb.In.Valid = flow.VData
	if !Actionable(&tcb) {
		t.Fatal("received data not actionable")
	}
	// Window update with nothing to send: not actionable.
	tcb = base
	tcb.In.Wnd = tcb.SndWnd + 1000
	tcb.In.Valid = flow.VWnd
	if Actionable(&tcb) {
		t.Fatal("irrelevant window update actionable")
	}
}

func TestKeepaliveProbesAndReset(t *testing.T) {
	h := newHarness()
	h.cfg.KeepaliveIdle = 5_000_000 // 5 ms
	h.cfg.KeepaliveIvl = 1_000_000  // 1 ms
	h.cfg.KeepaliveCnt = 3
	h.establish(t)
	if h.t.KeepaliveAt == 0 {
		t.Fatal("keepalive timer not armed on an idle established flow")
	}

	// First expiry: a one-byte probe at SndUna−1.
	out := h.feed(flow.Event{Kind: flow.EvTimeout, Flow: 1, Timeouts: flow.TOKeepalive})
	op := hasFlag(out.Segs, wire.FlagACK)
	if op == nil || op.Len != 1 || op.Seq != h.t.SndUna.Sub(1) {
		t.Fatalf("keepalive probe: %+v", out.Segs)
	}
	if h.t.KeepaliveMisses != 1 {
		t.Fatalf("misses = %d", h.t.KeepaliveMisses)
	}

	// A response (duplicate ACK) resets the count.
	h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, IsDupAck: true})
	if h.t.KeepaliveMisses != 0 {
		t.Fatalf("misses after peer response = %d", h.t.KeepaliveMisses)
	}

	// Silence through the full probe budget resets the connection.
	var last *Actions
	for i := 0; i < 4; i++ {
		last = h.feed(flow.Event{Kind: flow.EvTimeout, Flow: 1, Timeouts: flow.TOKeepalive})
	}
	if hasFlag(last.Segs, wire.FlagRST) == nil || !last.FreeFlow {
		t.Fatalf("dead peer not reset: %+v", last.Segs)
	}
	if hasNote(last.Notes, NoteReset) == nil {
		t.Fatal("no reset notification")
	}
}

func TestKeepaliveDisabledByDefault(t *testing.T) {
	h := newHarness()
	h.establish(t)
	if h.t.KeepaliveAt != 0 {
		t.Fatal("keepalive armed despite being disabled")
	}
}
