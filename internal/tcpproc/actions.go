// Package tcpproc is the stateless TCP processing function — the body of
// the flow processing unit (§4.2.2). Given a TCB whose event-input group
// has been merged by the TCB manager, Process reacts to everything that
// accumulated (acks, received data, window updates, user requests,
// timeouts) in one pass and emits segments, host notifications and timer
// deadlines. It holds no state of its own: all inputs and outputs live in
// the TCB, which is what lets the hardware FPU pipeline it fully.
//
// The same function drives both substrates: the FtEngine FPU model calls
// it once per merged TCB, and the software baseline stack calls it once
// per event (no accumulation), charging CPU cycles for each call.
package tcpproc

import (
	"f4t/internal/flow"
	"f4t/internal/seqnum"
)

// NoteKind discriminates host notifications emitted by processing.
type NoteKind uint8

// Host notification kinds (delivered as 16 B completion commands, §4.1.1).
const (
	// NoteEstablished: the connection reached ESTABLISHED (connect done,
	// or a passive connection is ready to accept).
	NoteEstablished NoteKind = iota
	// NoteDataAcked: the peer has acknowledged bytes up to Seq; the host
	// may release send-buffer space.
	NoteDataAcked
	// NoteDataDelivered: in-order data up to Seq is available to recv().
	NoteDataDelivered
	// NotePeerClosed: the peer's FIN arrived in order (EOF after Seq).
	NotePeerClosed
	// NoteClosed: the connection fully terminated; flow state may be freed.
	NoteClosed
	// NoteReset: the connection was reset by the peer.
	NoteReset
)

// Note is one host notification.
type Note struct {
	Kind NoteKind
	Flow flow.ID
	Seq  seqnum.Value // meaning depends on Kind (ack/deliver boundary)
}

// SendOp asks the packet generator (§4.1.2 TX data path) to emit one
// logical transfer; the generator splits payloads larger than the MSS.
type SendOp struct {
	Flow       flow.ID
	Seq        seqnum.Value
	Len        uint32 // payload bytes; 0 for pure control segments
	Flags      uint8  // wire.Flag* bits
	Ack        seqnum.Value
	Wnd        uint32 // advertised window in bytes (generator encodes/scales)
	Retransmit bool
}

// Actions collects everything one processing pass produced. The caller
// owns the value and resets it between passes; slices are reused.
type Actions struct {
	Segs     []SendOp
	Notes    []Note
	FreeFlow bool // the flow reached CLOSED and its state can be released
	// OowRstDropped reports that an inbound RST failed sequence
	// validation (RFC 793 §3.4 / RFC 5961) and was discarded instead of
	// aborting the flow. Callers count it in telemetry.
	OowRstDropped bool
}

// Reset clears the action lists without releasing capacity.
func (a *Actions) Reset() {
	a.Segs = a.Segs[:0]
	a.Notes = a.Notes[:0]
	a.FreeFlow = false
	a.OowRstDropped = false
}

func (a *Actions) note(k NoteKind, f flow.ID, s seqnum.Value) {
	a.Notes = append(a.Notes, Note{Kind: k, Flow: f, Seq: s})
}

// Config carries the protocol parameters of one endpoint's TCP stack.
type Config struct {
	MSS         uint32 // maximum segment size (payload bytes), paper: 1460
	RcvBuf      uint32 // receive buffer bytes, paper: 512 KB
	WndScale    uint8  // window scale shift applied to the 16-bit field
	InitialRTO  int64  // ns, before the first RTT sample
	MinRTO      int64  // ns floor for the computed RTO
	MaxRTO      int64  // ns ceiling
	ProbeIvl    int64  // ns between zero-window persist probes
	DelAckTO    int64  // ns delayed-ACK flush bound
	TimeWaitDur int64  // ns spent in TIME_WAIT (2*MSL)

	// Keepalive (RFC 1122 §4.2.3.6): after KeepaliveIdle ns of silence an
	// established connection sends probes every KeepaliveIvl; after
	// KeepaliveCnt unanswered probes it is reset. KeepaliveIdle = 0
	// disables the mechanism (the default, as on most datacenter setups).
	KeepaliveIdle int64
	KeepaliveIvl  int64
	KeepaliveCnt  uint8

	// ECN enables RFC 3168 negotiation-free ECN handling: data packets
	// are sent ECT-capable, CE marks are echoed on acks, and the echo
	// fraction is accumulated per window for ECN-aware congestion
	// control (DCTCP). Off by default.
	ECN bool
}

// DefaultConfig returns datacenter-tuned protocol parameters matching the
// paper's evaluation setup (MSS 1460, 512 KB buffers, §5).
func DefaultConfig() Config {
	return Config{
		MSS:         1460,
		RcvBuf:      512 * 1024,
		WndScale:    5, // up to 2 MB advertised
		InitialRTO:  10_000_000,  // 10 ms
		MinRTO:      5_000_000,   // 5 ms (datacenter-tuned)
		MaxRTO:      500_000_000, // 500 ms
		ProbeIvl:    10_000_000,  // 10 ms
		DelAckTO:    500_000,     // 500 us
		TimeWaitDur: 10_000_000,  // 10 ms (scaled-down 2*MSL for simulation)
	}
}
