package tcpproc

import (
	"f4t/internal/cc"
	"f4t/internal/flow"
	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

// Process is the FPU program: it consumes the TCB's merged event inputs
// (t.In) and reacts to all of them in one pass — connection management,
// ACK/loss processing, received data, user requests, timeouts, and new
// transmission — appending outputs to out. It is a pure function of
// (TCB, now): no package state, which is what makes the hardware FPU
// fully pipelineable (§4.2.2).
func Process(t *flow.TCB, alg cc.Algorithm, cfg *Config, nowNS int64, out *Actions) {
	p := pass{t: t, alg: alg, cfg: cfg, now: nowNS, out: out}
	p.run()
	t.In.Clear()
}

// pass bundles the per-invocation context so the steps read naturally.
type pass struct {
	t   *flow.TCB
	alg cc.Algorithm
	cfg *Config
	now int64
	out *Actions

	sentSomething bool // a segment carrying our current ACK was emitted
	progressed    bool // SndUna advanced or new data was (re)transmitted
	forceAck      bool // bypass delayed-ACK coalescing this pass
	peerSpoke     bool // any packet from the peer arrived this pass
}

func (p *pass) run() {
	t := p.t
	in := &t.In

	// 1. RST from the peer aborts the connection — but only after
	// sequence validation (RFC 793 §3.4, RFC 5961 spirit): a reset whose
	// sequence number is outside the receive window (or, in SYN-SENT,
	// whose ACK does not cover our SYN) is a stale or forged reset and
	// is dropped, leaving the rest of the pass to proceed.
	if in.Valid&flow.VRxFlags != 0 && in.RxFlags&flow.RxRST != 0 {
		if p.rstAcceptable() {
			p.abort(NoteReset)
			return
		}
		in.RxFlags &^= flow.RxRST
		p.out.OowRstDropped = true
	}
	// 2. Local abort request.
	if in.Valid&flow.VCtl != 0 && in.Ctl&flow.CtlAbort != 0 {
		p.emit(SendOp{Seq: t.SndNxt, Flags: wire.FlagRST | wire.FlagACK})
		p.abort(NoteClosed)
		return
	}

	p.peerSpoke = in.Valid&(flow.VAck|flow.VWnd|flow.VData|flow.VRxFlags|flow.VDupAck|flow.VAckNow) != 0

	p.connectionManagement()
	if t.State == flow.StateClosed {
		return
	}

	// Peer window update (latest value wins, §4.2.1).
	if in.Valid&flow.VWnd != 0 {
		t.SndWnd = in.Wnd
	}

	p.processAcks()
	p.processRxData()
	p.processUserRequests()
	p.processTimeouts()
	p.transmit()
	p.flushAcks()
	p.armTimers()
}

// rstAcceptable implements the RST sequence-validation rules: in
// SYN-SENT the reset must acknowledge our SYN (RFC 793 p.67); in every
// synchronized state its sequence number must fall inside the receive
// window (with a zero window, it must equal RcvNxt exactly). LISTEN
// ignores resets, and a flow that never left CLOSED has no sequence
// space a reset could legitimately name.
func (p *pass) rstAcceptable() bool {
	t := p.t
	in := &t.In
	switch t.State {
	case flow.StateClosed, flow.StateListen:
		return false
	case flow.StateSynSent:
		return in.RstHasAck && in.RstAck == t.SndNxt
	default:
		wnd := seqnum.Size(t.AdvertisedWindow())
		if wnd == 0 {
			return in.RstSeq == t.RcvNxt
		}
		return in.RstSeq.InWindow(t.RcvNxt, wnd)
	}
}

// connectionManagement handles open requests and the three-way handshake.
func (p *pass) connectionManagement() {
	t := p.t
	in := &t.In

	switch t.State {
	case flow.StateClosed:
		if in.Valid&flow.VCtl != 0 && in.Ctl&flow.CtlOpen != 0 {
			// Active open: SYN consumes sequence ISS.
			t.SndUna = t.ISS
			t.SndNxt = t.ISS.Add(1)
			t.Req = t.ISS.Add(1)
			t.State = flow.StateSynSent
			p.alg.Init(t, p.cfg.MSS)
			t.RcvBuf = p.cfg.RcvBuf
			p.emit(SendOp{Seq: t.ISS, Flags: wire.FlagSYN})
			p.progressed = true
		}
	case flow.StateListen:
		if in.Valid&flow.VRxFlags != 0 && in.RxFlags&flow.RxSYN != 0 {
			// Passive open: record the peer's ISN and answer SYN-ACK.
			p.acceptSyn(in.SynSeq)
			t.SndUna = t.ISS
			t.SndNxt = t.ISS.Add(1)
			t.Req = t.ISS.Add(1)
			t.State = flow.StateSynRcvd
			p.alg.Init(t, p.cfg.MSS)
			p.emit(SendOp{Seq: t.ISS, Flags: wire.FlagSYN | wire.FlagACK, Ack: t.RcvNxt, Wnd: t.AdvertisedWindow()})
			p.progressed = true
		}
	case flow.StateSynSent:
		if in.Valid&flow.VAck != 0 && in.Ack != t.SndNxt {
			// RFC 793 p.66: an unacceptable ACK in SYN-SENT draws
			// <SEQ=SEG.ACK><CTL=RST> and the segment is discarded.
			// Before this check a stray SYN-ACK was misread as a
			// simultaneous open.
			p.emit(SendOp{Seq: in.Ack, Flags: wire.FlagRST})
			break
		}
		if in.Valid&flow.VRxFlags != 0 && in.RxFlags&flow.RxSYN != 0 {
			p.acceptSyn(in.SynSeq)
			if in.Valid&flow.VAck != 0 {
				// SYN-ACK (the ACK is acceptable — checked above):
				// established. The handshake RTT seeds the estimator.
				t.SndUna = in.Ack
				p.establish()
				p.sendPureAck()
			} else {
				// Simultaneous open.
				t.State = flow.StateSynRcvd
				p.emit(SendOp{Seq: t.ISS, Flags: wire.FlagSYN | wire.FlagACK, Ack: t.RcvNxt, Wnd: t.AdvertisedWindow()})
			}
			p.progressed = true
		}
	case flow.StateSynRcvd:
		if in.Valid&flow.VAck != 0 && in.Ack == t.SndNxt {
			t.SndUna = in.Ack
			p.establish()
			p.progressed = true
		}
	}
}

// acceptSyn records the peer's initial sequence number.
func (p *pass) acceptSyn(isn seqnum.Value) {
	t := p.t
	t.IRS = isn
	t.RcvNxt = isn.Add(1)
	t.AppRead = t.RcvNxt
	t.DeliveredTo = t.RcvNxt
	t.LastAckSent = t.RcvNxt
	if t.RcvBuf == 0 {
		t.RcvBuf = p.cfg.RcvBuf
	}
}

func (p *pass) establish() {
	t := p.t
	t.State = flow.StateEstablished
	t.Backoff = 0
	if !t.EstablishedSent {
		t.EstablishedSent = true
		p.out.note(NoteEstablished, t.FlowID, t.RcvNxt)
	}
	t.AckedToHost = t.SndUna
}

// processAcks applies cumulative acknowledgments, RTT samples, duplicate
// ACK counting, fast retransmit and recovery (RFC 5681/6582).
func (p *pass) processAcks() {
	t := p.t
	in := &t.In
	if t.State < flow.StateEstablished {
		return
	}

	if in.Valid&flow.VAck != 0 && in.Ack.GreaterThan(t.SndUna) && in.Ack.LessThanEq(t.SndNxt) {
		acked := uint32(in.Ack.DistanceFrom(t.SndUna))
		t.SndUna = in.Ack
		t.Backoff = 0
		t.DupAcks = 0
		p.progressed = true

		// ECN accounting for DCTCP-style programs: attribute this ack's
		// bytes to the ECE-echo bucket when the feedback carried it.
		if p.cfg.ECN {
			t.AckedBytes += uint64(acked)
			if in.Valid&flow.VECE != 0 && in.ECEInc > 0 {
				t.EceBytes += uint64(acked)
			}
		}

		// RTT sample (Karn-safe: RTTTiming is cleared on retransmit).
		var sample int64
		if t.RTTTiming && t.SndUna.GreaterThanEq(t.RTTSeq) {
			sample = p.now - t.RTTSentAt
			t.RTTTiming = false
			p.updateRTO(sample)
		}

		if t.InRecovery {
			if t.SndUna.GreaterThanEq(t.RecoverSeq) {
				// Full acknowledgment: recovery complete.
				t.InRecovery = false
				p.alg.OnRecoveryExit(t, p.cfg.MSS)
			} else {
				// Partial ACK (RFC 6582): the next hole starts at the new
				// SndUna; retransmit it immediately.
				p.retransmitOne()
			}
		} else {
			p.alg.OnAck(t, acked, sample, p.now, p.cfg.MSS)
		}

		// Release send-buffer space to the host. Only data bytes count:
		// clamp the boundary to the data region [ISS+1, FinSeq).
		ackBoundary := t.SndUna
		if t.FinSent && ackBoundary.GreaterThan(t.FinSeq) {
			ackBoundary = t.FinSeq
		}
		if ackBoundary.GreaterThan(t.AckedToHost) {
			t.AckedToHost = ackBoundary
			p.out.note(NoteDataAcked, t.FlowID, ackBoundary)
		}

		// Our FIN was acknowledged: advance the close state machine.
		if t.FinSent && t.SndUna.GreaterThan(t.FinSeq) {
			switch t.State {
			case flow.StateFinWait1:
				t.State = flow.StateFinWait2
			case flow.StateClosing:
				p.enterTimeWait()
			case flow.StateLastAck:
				p.becomeClosed()
			}
		}
	}

	// Duplicate ACKs: the single RMW the event handler performs inline
	// (§4.2.1). Three trigger fast retransmit.
	if in.Valid&flow.VDupAck != 0 && in.DupAckInc > 0 {
		t.DupAcks += in.DupAckInc
		if !t.InRecovery && t.DupAcks >= 3 && t.SndNxt.GreaterThan(t.SndUna) {
			t.InRecovery = true
			t.RecoverSeq = t.SndNxt
			p.alg.OnLoss(t, p.now, p.cfg.MSS)
			p.retransmitOne()
		}
	}
}

// updateRTO runs the RFC 6298 estimator.
func (p *pass) updateRTO(sample int64) {
	t := p.t
	if sample <= 0 {
		sample = 1
	}
	if t.SRTT == 0 {
		t.SRTT = sample
		t.RTTVar = sample / 2
	} else {
		d := t.SRTT - sample
		if d < 0 {
			d = -d
		}
		t.RTTVar = (3*t.RTTVar + d) / 4
		t.SRTT = (7*t.SRTT + sample) / 8
	}
	rto := t.SRTT + 4*t.RTTVar
	if rto < p.cfg.MinRTO {
		rto = p.cfg.MinRTO
	}
	if rto > p.cfg.MaxRTO {
		rto = p.cfg.MaxRTO
	}
	t.RTO = rto
}

// retransmitOne re-sends the first unacknowledged segment.
func (p *pass) retransmitOne() {
	t := p.t
	if t.SndUna == t.SndNxt {
		return
	}
	p.progressed = true
	t.RTTTiming = false // Karn's rule
	if t.FinSent && t.SndUna == t.FinSeq {
		p.emit(SendOp{Seq: t.FinSeq, Flags: wire.FlagFIN | wire.FlagACK, Retransmit: true})
		return
	}
	// Data boundary for retransmission: don't run into the FIN.
	end := t.SndNxt
	if t.FinSent && end.GreaterThan(t.FinSeq) {
		end = t.FinSeq
	}
	n := uint32(end.DistanceFrom(t.SndUna))
	if n > p.cfg.MSS {
		n = p.cfg.MSS
	}
	p.emit(SendOp{Seq: t.SndUna, Len: n, Flags: wire.FlagACK | wire.FlagPSH, Retransmit: true})
}

// processRxData advances the in-order receive boundary and the peer-FIN
// state machine; the actual payload was already DMAed by the RX parser.
func (p *pass) processRxData() {
	t := p.t
	in := &t.In
	if t.State < flow.StateEstablished {
		return
	}

	if in.Valid&flow.VData != 0 && in.RcvData.GreaterThan(t.RcvNxt) {
		t.RcvNxt = in.RcvData
		t.AckPending = true
	}

	// A FIN may arrive out of order; remember it until the byte stream
	// catches up (the event row is cleared after every pass, so the TCB
	// keeps the pending FIN).
	if in.Valid&flow.VRxFlags != 0 && in.RxFlags&flow.RxFIN != 0 && !t.RcvFin {
		t.PeerFinKnown = true
		t.PeerFinSeq = in.FinSeq
	}

	// Peer FIN, only once it is in order (its sequence equals RcvNxt).
	if t.PeerFinKnown && !t.RcvFin && t.PeerFinSeq == t.RcvNxt {
		t.RcvFin = true
		t.RcvNxt = t.RcvNxt.Add(1)
		t.AckPending = true
		p.forceAck = true
		p.out.note(NotePeerClosed, t.FlowID, t.PeerFinSeq)
		switch t.State {
		case flow.StateEstablished:
			t.State = flow.StateCloseWait
		case flow.StateFinWait1:
			if t.FinSent && t.SndUna.GreaterThan(t.FinSeq) {
				p.enterTimeWait()
			} else {
				t.State = flow.StateClosing
			}
		case flow.StateFinWait2:
			p.enterTimeWait()
		}
	}

	// Deliver the new in-order boundary to the host (data bytes only).
	boundary := t.RcvNxt
	if t.RcvFin {
		boundary = boundary.Sub(1)
	}
	if boundary.GreaterThan(t.DeliveredTo) {
		t.DeliveredTo = boundary
		p.out.note(NoteDataDelivered, t.FlowID, boundary)
	}

	// ECN: congestion marks on received data demand a prompt ECE echo
	// (DCTCP's feedback loop lives or dies on its latency).
	if p.cfg.ECN && in.Valid&flow.VCE != 0 && in.CEInc > 0 {
		t.EcnEchoPending = true
		t.AckPending = true
		p.forceAck = true
	}

	// Immediate-ACK requests from the RX parser (out-of-order or
	// out-of-window arrivals): emit duplicate ACKs so the peer's fast
	// retransmit sees every one.
	if in.Valid&flow.VAckNow != 0 {
		n := int(in.AckNowCnt)
		for i := 0; i < n; i++ {
			p.sendPureAck()
		}
	}
}

// processUserRequests applies send/recv pointer updates and close requests.
func (p *pass) processUserRequests() {
	t := p.t
	in := &t.In

	if in.Valid&flow.VReq != 0 && in.Req.GreaterThan(t.Req) {
		t.Req = in.Req
	}
	if in.Valid&flow.VRead != 0 && in.AppRead.GreaterThan(t.AppRead) {
		prevWnd := t.AdvertisedWindow()
		t.AppRead = in.AppRead
		// Window update: if we were pinched shut (or near it), tell the
		// peer promptly so it can resume.
		if prevWnd < p.cfg.MSS && t.AdvertisedWindow() >= p.cfg.MSS {
			t.AckPending = true
			p.forceAck = true
		}
	}
	if in.Valid&flow.VCtl != 0 && in.Ctl&flow.CtlClose != 0 {
		t.ClosePending = true
	}
}

// processTimeouts reacts to timer-module events.
func (p *pass) processTimeouts() {
	t := p.t
	in := &t.In
	if in.Valid&flow.VTimeouts == 0 {
		return
	}

	if in.Timeouts&flow.TORetrans != 0 {
		p.onRetransTimeout()
	}
	if in.Timeouts&flow.TOProbe != 0 && t.SndWnd == 0 && t.Req.GreaterThan(t.SndNxt) {
		// Zero-window persist probe: send one byte of new data (classic
		// BSD behaviour). If the window is still closed the peer drops it
		// and the RTO path recovers; either way we get a window report.
		p.emit(SendOp{Seq: t.SndNxt, Len: 1, Flags: wire.FlagACK | wire.FlagPSH})
		t.SndNxt = t.SndNxt.Add(1)
		p.progressed = true
	}
	if in.Timeouts&flow.TODelAck != 0 && t.AckPending {
		p.sendPureAck()
	}
	if in.Timeouts&flow.TOKeepalive != 0 && t.State == flow.StateEstablished && p.cfg.KeepaliveIdle > 0 {
		if t.KeepaliveMisses >= p.cfg.KeepaliveCnt {
			// The peer is gone: reset the connection (RFC 1122 §4.2.3.6).
			p.emit(SendOp{Seq: t.SndNxt, Flags: wire.FlagRST | wire.FlagACK})
			p.abort(NoteReset)
			return
		}
		t.KeepaliveMisses++
		// Probe with one already-acknowledged byte (seq = SndUna−1): the
		// peer treats it as a duplicate and answers immediately.
		p.emit(SendOp{Seq: t.SndUna.Sub(1), Len: 1, Flags: wire.FlagACK, Retransmit: true})
		t.KeepaliveAt = p.now + p.cfg.KeepaliveIvl
	}
	if in.Timeouts&flow.TOTimeWait != 0 && t.State == flow.StateTimeWait {
		p.becomeClosed()
	}
}

func (p *pass) onRetransTimeout() {
	t := p.t
	switch t.State {
	case flow.StateSynSent:
		p.emit(SendOp{Seq: t.ISS, Flags: wire.FlagSYN, Retransmit: true})
	case flow.StateSynRcvd:
		p.emit(SendOp{Seq: t.ISS, Flags: wire.FlagSYN | wire.FlagACK, Ack: t.RcvNxt, Wnd: t.AdvertisedWindow(), Retransmit: true})
	default:
		if t.SndUna == t.SndNxt {
			return // nothing outstanding; stale timer
		}
		t.InRecovery = false
		t.DupAcks = 0
		p.alg.OnTimeout(t, p.now, p.cfg.MSS)
		p.retransmitOne()
	}
	if t.Backoff < 10 {
		t.Backoff++
	}
	p.progressed = true
}

// transmit sends whatever new data congestion and flow control allow, and
// the FIN once all data is out (§4.2.2: "decides which data to transfer").
func (p *pass) transmit() {
	t := p.t
	switch t.State {
	case flow.StateEstablished, flow.StateCloseWait, flow.StateFinWait1, flow.StateClosing, flow.StateLastAck:
	default:
		return
	}

	if !t.FinSent {
		limit := t.SendLimit()
		end := t.Req
		if limit.LessThan(end) {
			end = limit
		}
		if end.GreaterThan(t.SndNxt) {
			n := uint32(end.DistanceFrom(t.SndNxt))
			p.emit(SendOp{Seq: t.SndNxt, Len: n, Flags: wire.FlagACK | wire.FlagPSH})
			if !t.RTTTiming {
				t.RTTTiming = true
				t.RTTSeq = t.SndNxt.Add(seqnum.Size(n))
				t.RTTSentAt = p.now
			}
			t.SndNxt = end
			p.progressed = true
		}

		// FIN once every queued byte has been transmitted.
		if t.ClosePending && t.SndNxt == t.Req {
			t.FinSent = true
			t.FinSeq = t.SndNxt
			t.SndNxt = t.SndNxt.Add(1)
			p.emit(SendOp{Seq: t.FinSeq, Flags: wire.FlagFIN | wire.FlagACK})
			switch t.State {
			case flow.StateEstablished:
				t.State = flow.StateFinWait1
			case flow.StateCloseWait:
				t.State = flow.StateLastAck
			}
			p.progressed = true
		}
	}
}

// flushAcks emits a pure ACK when data reception obliged one and no
// outgoing segment carried it (outgoing segments all carry ACK).
// Delayed ACK (RFC 1122): a lone ACK goes out immediately once two MSS
// of data are unacknowledged; smaller amounts wait for a piggyback or
// the delayed-ACK timer.
func (p *pass) flushAcks() {
	t := p.t
	if t.AckPending && !p.sentSomething {
		unacked := uint32(t.RcvNxt.DistanceFrom(t.LastAckSent))
		if p.forceAck || unacked >= 2*p.cfg.MSS {
			p.sendPureAck()
		}
	}
	if p.sentSomething {
		t.AckPending = false
	}
}

// armTimers recomputes timer deadlines after the pass (§4.1.2 ③).
func (p *pass) armTimers() {
	t := p.t
	cfg := p.cfg

	outstanding := t.SndNxt != t.SndUna || t.State == flow.StateSynSent || t.State == flow.StateSynRcvd
	if outstanding {
		rto := t.RTO
		if rto == 0 {
			rto = cfg.InitialRTO
		}
		rto <<= t.Backoff
		if rto > cfg.MaxRTO {
			rto = cfg.MaxRTO
		}
		// Restart on forward progress; otherwise keep the running timer so
		// a stream of duplicate ACKs cannot postpone the RTO forever.
		if p.progressed || t.RetransAt == 0 {
			t.RetransAt = p.now + rto
		}
	} else {
		t.RetransAt = 0
	}

	if t.SndWnd == 0 && t.Req.GreaterThan(t.SndNxt) && !t.FinSent {
		if t.ProbeAt == 0 {
			t.ProbeAt = p.now + cfg.ProbeIvl
		}
	} else {
		t.ProbeAt = 0
	}

	if t.AckPending {
		if t.DelAckAt == 0 {
			t.DelAckAt = p.now + cfg.DelAckTO
		}
	} else {
		t.DelAckAt = 0
	}

	// Keepalive: any sign of life from the peer resets the probe count
	// and restarts the idle clock.
	if cfg.KeepaliveIdle > 0 && t.State == flow.StateEstablished {
		if p.peerSpoke {
			t.KeepaliveMisses = 0
			t.KeepaliveAt = p.now + cfg.KeepaliveIdle
		} else if t.KeepaliveAt == 0 {
			t.KeepaliveAt = p.now + cfg.KeepaliveIdle
		}
	} else if t.State != flow.StateEstablished {
		t.KeepaliveAt = 0
	}
}

// enterTimeWait transitions to TIME_WAIT and arms its timer.
func (p *pass) enterTimeWait() {
	t := p.t
	t.State = flow.StateTimeWait
	t.TimeWaitAt = p.now + p.cfg.TimeWaitDur
}

// becomeClosed finishes the connection and tells the host.
func (p *pass) becomeClosed() {
	t := p.t
	t.State = flow.StateClosed
	t.RetransAt, t.ProbeAt, t.DelAckAt, t.TimeWaitAt, t.KeepaliveAt = 0, 0, 0, 0, 0
	if !t.ClosedSent {
		t.ClosedSent = true
		p.out.note(NoteClosed, t.FlowID, t.SndUna)
	}
	p.out.FreeFlow = true
}

// abort tears the connection down without ceremony.
func (p *pass) abort(kind NoteKind) {
	t := p.t
	t.State = flow.StateClosed
	t.RetransAt, t.ProbeAt, t.DelAckAt, t.TimeWaitAt, t.KeepaliveAt = 0, 0, 0, 0, 0
	if kind == NoteReset {
		p.out.note(NoteReset, t.FlowID, t.SndUna)
	}
	if !t.ClosedSent {
		t.ClosedSent = true
		p.out.note(NoteClosed, t.FlowID, t.SndUna)
	}
	p.out.FreeFlow = true
	t.In.Clear()
}

// sendPureAck emits a zero-payload ACK with the current window.
func (p *pass) sendPureAck() {
	t := p.t
	p.emit(SendOp{Seq: t.SndNxt, Flags: wire.FlagACK})
	t.AckPending = false
}

// emit appends a SendOp, filling the ACK and window fields every outgoing
// segment carries.
func (p *pass) emit(op SendOp) {
	t := p.t
	op.Flow = t.FlowID
	if op.Flags&wire.FlagACK != 0 {
		op.Ack = t.RcvNxt
		op.Wnd = t.AdvertisedWindow()
		p.sentSomething = true
		t.LastAckSent = t.RcvNxt
		if p.cfg.ECN && t.EcnEchoPending {
			op.Flags |= wire.FlagECE
			t.EcnEchoPending = false
		}
	}
	p.out.Segs = append(p.out.Segs, op)
}
