package tcpproc

import (
	"testing"

	"f4t/internal/flow"
	"f4t/internal/wire"
)

// An RST whose sequence number falls outside the receive window must be
// discarded (RFC 793 §3.4, hardened per RFC 5961): a blind attacker or a
// stale segment from a prior incarnation must not tear the flow down.
func TestOutOfWindowRSTIgnored(t *testing.T) {
	h := newHarness()
	h.establish(t)
	out := h.feed(flow.Event{
		Kind: flow.EvRx, Flow: 1,
		RxFlags: flow.RxRST, RstSeq: h.t.RcvNxt.Add(1 << 30),
	})
	if h.t.State != flow.StateEstablished {
		t.Fatalf("out-of-window RST killed the flow: state=%v", h.t.State)
	}
	if !out.OowRstDropped {
		t.Fatal("OowRstDropped not reported")
	}
	if out.FreeFlow || hasNote(out.Notes, NoteReset) != nil {
		t.Fatalf("out-of-window RST produced teardown actions: %+v", out.Notes)
	}
}

// An RST anywhere inside the receive window still aborts, even when it is
// not exactly at RcvNxt (e.g. the peer reset mid-burst after loss).
func TestInWindowRSTAborts(t *testing.T) {
	h := newHarness()
	h.establish(t)
	out := h.feed(flow.Event{
		Kind: flow.EvRx, Flow: 1,
		RxFlags: flow.RxRST, RstSeq: h.t.RcvNxt.Add(1000),
	})
	if !out.FreeFlow || h.t.State != flow.StateClosed {
		t.Fatalf("in-window RST did not abort: state=%v", h.t.State)
	}
	if hasNote(out.Notes, NoteReset) == nil {
		t.Fatal("no reset notification")
	}
}

// In SYN-SENT no data has been received, so an RST is validated by its
// ACK field instead: it must acknowledge exactly our SYN (RFC 793 p.67).
func TestSynSentRSTNeedsMatchingAck(t *testing.T) {
	h := newHarness()
	h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, Ctl: flow.CtlOpen})

	// RST without an ACK: unverifiable, must be dropped.
	out := h.feed(flow.Event{Kind: flow.EvRx, Flow: 1, RxFlags: flow.RxRST, RstSeq: 4242})
	if h.t.State != flow.StateSynSent || !out.OowRstDropped {
		t.Fatalf("ackless RST in SYN-SENT: state=%v dropped=%v", h.t.State, out.OowRstDropped)
	}

	// RST acking the wrong sequence: forged or stale, must be dropped.
	out = h.feed(flow.Event{
		Kind: flow.EvRx, Flow: 1,
		RxFlags: flow.RxRST, RstHasAck: true, RstAck: h.t.SndNxt.Add(999),
	})
	if h.t.State != flow.StateSynSent || !out.OowRstDropped {
		t.Fatalf("bad-ack RST in SYN-SENT: state=%v dropped=%v", h.t.State, out.OowRstDropped)
	}

	// RST acking our SYN exactly: genuine connection refusal.
	out = h.feed(flow.Event{
		Kind: flow.EvRx, Flow: 1,
		RxFlags: flow.RxRST, RstHasAck: true, RstAck: h.t.SndNxt,
	})
	if !out.FreeFlow || h.t.State != flow.StateClosed || hasNote(out.Notes, NoteReset) == nil {
		t.Fatalf("valid RST in SYN-SENT not honored: state=%v", h.t.State)
	}
}

// An ACK in SYN-SENT that does not cover our SYN draws <SEQ=SEG.ACK>
// <CTL=RST> and the segment is otherwise ignored (RFC 793 p.66). The
// buggy behaviour treated any SYN+ACK as a valid handshake reply.
func TestSynSentBadAckDrawsRST(t *testing.T) {
	h := newHarness()
	h.feed(flow.Event{Kind: flow.EvUser, Flow: 1, Ctl: flow.CtlOpen})

	badAck := h.t.SndNxt.Add(5000) // acks data we never sent
	out := h.feed(flow.Event{
		Kind: flow.EvRx, Flow: 1,
		RxFlags: flow.RxSYN, SynSeq: 9000,
		HasAck: true, Ack: badAck, HasWnd: true, Wnd: 65535,
	})
	rst := hasFlag(out.Segs, wire.FlagRST)
	if rst == nil {
		t.Fatalf("no RST for unacceptable ACK: %+v", out.Segs)
	}
	if rst.Seq != badAck {
		t.Fatalf("RST seq = %d, want SEG.ACK = %d", rst.Seq, badAck)
	}
	if rst.Flags&wire.FlagACK != 0 {
		t.Fatal("RST answering an ACK-bearing segment must not carry ACK")
	}
	if h.t.State != flow.StateSynSent {
		t.Fatalf("bad ACK moved state to %v; must stay SYN-SENT", h.t.State)
	}

	// The connection is still viable: a correct SYN-ACK completes it.
	out = h.feed(flow.Event{
		Kind: flow.EvRx, Flow: 1,
		RxFlags: flow.RxSYN, SynSeq: 7000,
		HasAck: true, Ack: h.t.SndNxt, HasWnd: true, Wnd: 65535,
	})
	if h.t.State != flow.StateEstablished || hasNote(out.Notes, NoteEstablished) == nil {
		t.Fatalf("recovery SYN-ACK: state=%v", h.t.State)
	}
}

// A zero receive window degrades the in-window check to exact equality
// with RcvNxt (the RFC 793 zero-window acceptance rule).
func TestZeroWindowRSTExactMatch(t *testing.T) {
	h := newHarness()
	h.establish(t)
	h.t.RcvBuf = 0 // advertise zero window

	out := h.feed(flow.Event{
		Kind: flow.EvRx, Flow: 1,
		RxFlags: flow.RxRST, RstSeq: h.t.RcvNxt.Add(1),
	})
	if h.t.State != flow.StateEstablished || !out.OowRstDropped {
		t.Fatalf("zero-window off-by-one RST: state=%v", h.t.State)
	}

	out = h.feed(flow.Event{
		Kind: flow.EvRx, Flow: 1,
		RxFlags: flow.RxRST, RstSeq: h.t.RcvNxt,
	})
	if !out.FreeFlow || h.t.State != flow.StateClosed {
		t.Fatalf("zero-window exact RST not honored: state=%v", h.t.State)
	}
}
