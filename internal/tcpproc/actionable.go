package tcpproc

import "f4t/internal/flow"

// Actionable is the memory manager's check logic (§4.3.1): given a
// DRAM-resident TCB whose events have been handled (accumulated) but not
// processed, decide whether a processing pass would emit packets — i.e.
// whether the flow is worth swapping into an FPC now. Flows that cannot
// act wait in DRAM until they can, which is what keeps cold flows from
// thrashing the FPC slots.
func Actionable(t *flow.TCB) bool {
	in := &t.In
	if in.Valid == 0 {
		return false
	}
	// Control requests, timeouts, connection flags, immediate-ACK
	// obligations and duplicate ACKs always need processing.
	if in.Valid&(flow.VCtl|flow.VTimeouts|flow.VRxFlags|flow.VAckNow) != 0 {
		return true
	}
	if in.Valid&flow.VDupAck != 0 && t.DupAcks+in.DupAckInc >= 3 {
		return true
	}
	// A cumulative ACK advance releases send buffer and may unlock
	// transmission.
	if in.Valid&flow.VAck != 0 && in.Ack.GreaterThan(t.SndUna) {
		return true
	}
	// New in-order data obliges an ACK and a delivery notification.
	if in.Valid&flow.VData != 0 && in.RcvData.GreaterThan(t.RcvNxt) {
		return true
	}
	// A send request matters only if the window lets us transmit.
	if in.Valid&flow.VReq != 0 && in.Req.GreaterThan(t.SndNxt) {
		limit := t.SendLimit()
		if limit.GreaterThan(t.SndNxt) {
			return true
		}
	}
	// A recv() that reopens a pinched window must reach the peer.
	if in.Valid&flow.VRead != 0 && in.AppRead.GreaterThan(t.AppRead) {
		if t.AdvertisedWindow() == 0 {
			return true
		}
	}
	// A window update from the peer matters when data is waiting.
	if in.Valid&flow.VWnd != 0 && in.Wnd > t.SndWnd && t.Req.GreaterThan(t.SndNxt) {
		return true
	}
	return false
}
