package conformance

import (
	"strings"
	"testing"

	"f4t/internal/cc"
	"f4t/internal/flow"
	"f4t/internal/wire"
)

// The minimizer's correctness rests on schedules being prefix-stable:
// truncating the phase count must not change the phases that remain.
func TestSchedulePrefixProperty(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 12345} {
		long := NewSchedule(seed, 10)
		for n := 1; n < 10; n++ {
			short := NewSchedule(seed, n)
			for i := 0; i < n; i++ {
				if short.Phases[i] != long.Phases[i] {
					t.Fatalf("seed %d: phase %d differs between len-%d and len-10 schedules:\n%+v\n%+v",
						seed, i, n, short.Phases[i], long.Phases[i])
				}
			}
		}
	}
}

func TestScheduleCoversFaultMenu(t *testing.T) {
	// Across a modest seed range the generator must exercise every
	// archetype — otherwise CI sweeps silently lose coverage.
	seen := map[string]bool{}
	for seed := uint64(1); seed <= 40; seed++ {
		for _, p := range NewSchedule(seed, 6).Phases {
			seen[p.Name] = true
		}
	}
	for _, want := range phaseMenu {
		if !seen[want] {
			t.Errorf("archetype %q never generated in 40 seeds × 6 phases", want)
		}
	}
}

func TestMinimizeFindsShortestPrefix(t *testing.T) {
	calls := 0
	fails := func(c Config) Result {
		calls++
		if c.Phases >= 4 {
			return Result{Violations: []Violation{{Invariant: "synthetic"}}}
		}
		return Result{}
	}
	cfg := DefaultConfig()
	cfg.Phases = 9
	min, res, ok := Minimize(cfg, fails)
	if !ok || min.Phases != 4 {
		t.Fatalf("minimized to %d phases (ok=%v), want 4", min.Phases, ok)
	}
	if !res.Failed() {
		t.Fatal("minimizer returned a passing result")
	}
	if calls != 4 {
		t.Fatalf("linear scan took %d runs, want 4", calls)
	}

	passes := func(Config) Result { return Result{} }
	if _, _, ok := Minimize(cfg, passes); ok {
		t.Fatal("minimizer claimed success on a passing config")
	}
}

// --- invariant checkers must trip on known-bad traces ---

type sinkT struct{ got []Violation }

func (s *sinkT) sink(v Violation) { s.got = append(s.got, v) }

func (s *sinkT) has(invariant string) bool {
	for _, v := range s.got {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

func goodTCB(id flow.ID) *flow.TCB {
	return &flow.TCB{
		FlowID: id,
		Tuple:  wire.FourTuple{LocalPort: 100, RemotePort: uint16(id)},
		State:  flow.StateEstablished,
		SndUna: 1000, SndNxt: 2000, Req: 2000,
		RcvNxt: 5000, DeliveredTo: 5000,
		Cwnd: 14600, Ssthresh: cc.InitialSsthresh,
	}
}

func TestTrackerAckRegression(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	tr.observe(tcb, 100)
	tcb.SndUna = 900 // the ACK pointer retreats
	tr.observe(tcb, 200)
	if !s.has("ack-regression") {
		t.Fatalf("ack regression not caught: %v", s.got)
	}
}

func TestTrackerSndUnaBeyondNxt(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	tcb.SndUna = 3000 // beyond SndNxt=2000
	tr.observe(tcb, 100)
	if !s.has("snd-una-beyond-nxt") {
		t.Fatalf("SndUna>SndNxt not caught: %v", s.got)
	}
}

func TestTrackerDeliveredBeyondRcvNxt(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	tcb.DeliveredTo = 6000 // announced data that never arrived
	tr.observe(tcb, 100)
	if !s.has("delivered-beyond-rcvnxt") {
		t.Fatalf("DeliveredTo>RcvNxt not caught: %v", s.got)
	}
}

func TestTrackerIllegalTransition(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	tr.observe(tcb, 100)
	tcb.State = flow.StateSynSent // ESTABLISHED cannot go back to SYN-SENT
	tr.observe(tcb, 200)
	if !s.has("illegal-state-transition") {
		t.Fatalf("illegal transition not caught: %v", s.got)
	}
}

func TestTrackerLegalPathsAccepted(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	// A sampled walk with gaps: SYN_SENT → ESTABLISHED → (FIN_WAIT_1
	// skipped) → FIN_WAIT_2 → CLOSED. All legal under the closure.
	for _, st := range []flow.State{
		flow.StateSynSent, flow.StateEstablished, flow.StateFinWait2, flow.StateClosed,
	} {
		tcb.State = st
		tr.observe(tcb, 100)
	}
	if len(s.got) != 0 {
		t.Fatalf("legal trace produced violations: %v", s.got)
	}
}

func TestTrackerFlowIDReuseResetsHistory(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	tr.observe(tcb, 100)
	// Engine slot reuse: same flow ID, brand-new connection with a
	// different tuple and completely unrelated sequence space.
	fresh := goodTCB(1)
	fresh.Tuple.RemotePort = 999
	fresh.State = flow.StateSynSent
	fresh.SndUna, fresh.SndNxt, fresh.Req = 50, 51, 50
	fresh.RcvNxt, fresh.DeliveredTo = 0, 0
	tr.observe(fresh, 200)
	if len(s.got) != 0 {
		t.Fatalf("tuple change should reset tracking, got: %v", s.got)
	}
}

func TestTrackerBackoffRewind(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	tcb.Backoff = 3
	tr.observe(tcb, 100)
	tcb.Backoff = 1 // rewinds while SndUna is pinned
	tr.observe(tcb, 200)
	if !s.has("backoff-rewind") {
		t.Fatalf("backoff rewind not caught: %v", s.got)
	}

	// But a rewind together with an ACK advance is legitimate.
	var s2 sinkT
	tr2 := newTracker("X", "newreno", 1460, s2.sink)
	tcb2 := goodTCB(2)
	tcb2.Backoff = 3
	tr2.observe(tcb2, 100)
	tcb2.Backoff = 0
	tcb2.SndUna = 1500
	tr2.observe(tcb2, 200)
	if s2.has("backoff-rewind") {
		t.Fatal("backoff reset after ACK progress flagged as violation")
	}
}

func TestTrackerTimerArmedOnClosed(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	tcb.State = flow.StateClosed
	tcb.RetransAt = 12345
	tr.observe(tcb, 100)
	if !s.has("timer-armed-on-closed") {
		t.Fatalf("armed timer on closed flow not caught: %v", s.got)
	}
}

// --- congestion-control state invariants ---

func TestTrackerCwndBelowMSS(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	tcb.Cwnd = 1459 // below one segment: the flow can never send again
	tr.observe(tcb, 100)
	if !s.has("cwnd-below-mss") {
		t.Fatalf("sub-MSS cwnd not caught: %v", s.got)
	}

	// The same window on a mid-handshake flow is not a violation: the
	// program's Init may not have run yet.
	var s2 sinkT
	tr2 := newTracker("X", "newreno", 1460, s2.sink)
	tcb2 := goodTCB(2)
	tcb2.State = flow.StateSynSent
	tcb2.Cwnd = 0
	tr2.observe(tcb2, 100)
	if len(s2.got) != 0 {
		t.Fatalf("pre-established cwnd flagged: %v", s2.got)
	}
}

func TestTrackerSsthreshBelowFloor(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "cubic", 1460, s.sink)
	tcb := goodTCB(1)
	tcb.Ssthresh = 2919 // below MinSsthresh(1460) = 2920
	tr.observe(tcb, 100)
	if !s.has("ssthresh-below-floor") {
		t.Fatalf("sub-floor ssthresh not caught: %v", s.got)
	}

	// Exactly the floor, and the untouched sentinel, are both fine.
	var s2 sinkT
	tr2 := newTracker("X", "cubic", 1460, s2.sink)
	tcb2 := goodTCB(2)
	tcb2.Ssthresh = cc.MinSsthresh(1460)
	tr2.observe(tcb2, 100)
	tcb2.Ssthresh = cc.InitialSsthresh // fresh slot would present this…
	tcb2.Tuple.RemotePort = 999        // …under a new identity
	tr2.observe(tcb2, 200)
	if len(s2.got) != 0 {
		t.Fatalf("legal ssthresh values flagged: %v", s2.got)
	}
}

func TestTrackerSsthreshSentinelRevival(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	tcb.Ssthresh = 20000 // lowered by some loss episode
	tr.observe(tcb, 100)
	tcb.Ssthresh = cc.InitialSsthresh // snaps back to "never lost"
	tr.observe(tcb, 200)
	if !s.has("ssthresh-sentinel-revival") {
		t.Fatalf("sentinel revival not caught: %v", s.got)
	}
}

func TestTrackerBBRSsthreshPinned(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "bbr", 1460, s.sink)
	tcb := goodTCB(1)
	tr.observe(tcb, 100) // sentinel: fine
	tcb.Ssthresh = 20000 // a loss-based path ran under bbr
	tr.observe(tcb, 200)
	if !s.has("bbr-ssthresh-mutated") {
		t.Fatalf("bbr ssthresh mutation not caught: %v", s.got)
	}
}

func TestTrackerCCVarsAliasing(t *testing.T) {
	var s sinkT
	tr := newTracker("X", "newreno", 1460, s.sink)
	tcb := goodTCB(1)
	tr.beginPass()
	tr.observe(tcb, 100)
	// The same arena slot surfacing under a second flow ID in the same
	// pass: two connections sharing one CCVars block.
	tcb.FlowID = 2
	tcb.Tuple.RemotePort = 2
	tr.observe(tcb, 100)
	if !s.has("ccvars-aliased") {
		t.Fatalf("CCVars aliasing not caught: %v", s.got)
	}

	// Across passes the same address is expected (it's the same flow's
	// slot being revisited) — no violation.
	var s2 sinkT
	tr2 := newTracker("X", "newreno", 1460, s2.sink)
	tcb2 := goodTCB(3)
	tr2.beginPass()
	tr2.observe(tcb2, 100)
	tr2.beginPass()
	tr2.observe(tcb2, 200)
	if len(s2.got) != 0 {
		t.Fatalf("cross-pass revisit flagged as aliasing: %v", s2.got)
	}
}

// --- full-rig sweeps ---

// smokeConfig keeps in-test sweeps quick; CI's f4tconform run covers the
// larger shapes.
func smokeConfig(rig RigKind, seed uint64) Config {
	return Config{Rig: rig, Seed: seed, Phases: 4, Conns: 3, Chunk: 4096}
}

func TestRigSweepClean(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, rig := range AllRigs {
		for _, seed := range seeds {
			t.Run(rig.String(), func(t *testing.T) {
				res := Run(smokeConfig(rig, seed))
				if res.Failed() {
					var b strings.Builder
					for _, v := range res.Violations {
						b.WriteString("\n  " + v.String())
					}
					t.Fatalf("seed %d violated invariants (%s):%s\n%s",
						seed, res.Sched, b.String(), ReplayCommand(smokeConfig(rig, seed)))
				}
				if !res.Drained {
					t.Fatalf("seed %d failed to drain", seed)
				}
			})
		}
	}
}

// TestAllAlgorithmsConformance drives every registered congestion-
// control program through the same chaos schedule on the engine rigs,
// including the routed one: whatever program is loaded, the protocol
// invariants and the per-program CC invariants must hold and the
// network must drain. This is the registry-driven guarantee that a new
// algorithm can't ship without surviving the chaos battery.
func TestAllAlgorithmsConformance(t *testing.T) {
	rigs := []RigKind{RigEngineEngine, RigEngineEngineRouted}
	if testing.Short() {
		rigs = rigs[:1]
	}
	for _, alg := range cc.Names() {
		for _, rig := range rigs {
			t.Run(alg+"/"+rig.String(), func(t *testing.T) {
				cfg := smokeConfig(rig, 1)
				cfg.Alg = alg
				res := Run(cfg)
				if res.Failed() {
					var b strings.Builder
					for _, v := range res.Violations {
						b.WriteString("\n  " + v.String())
					}
					t.Fatalf("%s on %s violated invariants (%s):%s\n%s",
						alg, rig, res.Sched, b.String(), ReplayCommand(cfg))
				}
				if !res.Drained {
					t.Fatalf("%s on %s failed to drain", alg, rig)
				}
			})
		}
	}
}

// findRSTStormSeed scans for a seed whose schedule arms forged-RST
// injection in phase 1 — directly after the clean warm-up, while the
// streams are still hot. (A storm later in the schedule can land while
// every connection sits in RTO backoff from a preceding loss phase, with
// no traffic to shadow.) Deterministic, so the tests using it are stable.
func findRSTStormSeed(t *testing.T, phases int) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 200; seed++ {
		if NewSchedule(seed, phases).Phases[1].RstEvery > 0 {
			return seed
		}
	}
	t.Fatal("no rst-storm schedule in 200 seeds")
	return 0
}

// Forged out-of-window resets must be injected, must all be discarded by
// sequence validation, and must not kill any connection.
func TestForgedRSTsAreDropped(t *testing.T) {
	seed := findRSTStormSeed(t, 4)
	res := Run(smokeConfig(RigSoftSoft, seed))
	if res.ForgedRSTs == 0 {
		t.Fatal("rst-storm phase forged nothing")
	}
	if res.OowRstDrops == 0 {
		t.Fatal("no forged reset was counted as dropped — validation not exercised")
	}
	if res.Failed() {
		t.Fatalf("forged RSTs caused violations: %v", res.Violations)
	}
}

// The engine↔stack differential rig is the paper's own comparison:
// both substrates run the same tcpproc core, so a chaos run that is
// clean on one and dirty on the other pins a substrate bug.
func TestDifferentialRigMatchesSoftware(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short")
	}
	seed := findRSTStormSeed(t, 4)
	for _, rig := range []RigKind{RigSoftSoft, RigEngineSoft} {
		res := Run(smokeConfig(rig, seed))
		if res.Failed() {
			t.Fatalf("%s: %v", rig, res.Violations)
		}
	}
}
