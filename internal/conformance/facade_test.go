package conformance

import (
	"path/filepath"
	"testing"
)

// TestFacadeSmoke is the default facade shape: concurrent net.Conn echo
// streams, byte-verified, under deterministic loss.
func TestFacadeSmoke(t *testing.T) {
	cfg := FacadeConfig{Seed: 1, Conns: 2, Bytes: 8_000}
	res := RunFacade(cfg)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Logf("replay: %s", FacadeReplayCommand(cfg))
	}
}

// TestFacadePCAP checks the -pcap plumbing: the facade run emits a
// non-empty capture file.
func TestFacadePCAP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facade.pcapng")
	cfg := FacadeConfig{Seed: 3, Conns: 1, Bytes: 4_000, PCAPPath: path}
	res := RunFacade(cfg)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Frames == 0 {
		t.Error("capture recorded no frames")
	}
}

// TestFacadeShardMatrix holds the facade to the repo's determinism bar:
// the same config produces a bit-identical digest on the serial kernel,
// the noskip shadow kernel, and 2/4/8-way sharded fabrics — with real
// goroutines blocking in net.Conn calls throughout.
func TestFacadeShardMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("shard matrix skipped in -short")
	}
	base := FacadeConfig{Seed: 2, Conns: 2, Bytes: 6_000}
	run := func(mutate func(*FacadeConfig)) string {
		cfg := base
		mutate(&cfg)
		res := RunFacade(cfg)
		for _, v := range res.Violations {
			t.Fatalf("violation: %s\nreplay: %s", v, FacadeReplayCommand(cfg))
		}
		return res.Digest
	}
	digests := map[string]string{
		"serial":   run(func(*FacadeConfig) {}),
		"noskip":   run(func(c *FacadeConfig) { c.Noskip = true }),
		"sharded2": run(func(c *FacadeConfig) { c.Shards = 2 }),
		"sharded4": run(func(c *FacadeConfig) { c.Shards = 4 }),
		"sharded8": run(func(c *FacadeConfig) { c.Shards = 8 }),
	}
	want := digests["serial"]
	for name, d := range digests {
		if d != want {
			t.Errorf("digest mismatch:\n  serial: %s\n  %s: %s", want, name, d)
		}
	}
}
