package conformance

import (
	"strings"
	"testing"
)

// FuzzChaosSeed lets the fuzzer drive the seed space directly: every
// input is a complete, deterministic chaos run, and any crash or
// invariant violation it finds is replayable from the corpus entry
// alone. Runs are kept short (two phases) so the fuzzer gets throughput;
// the CI seed sweep covers the longer shapes.
func FuzzChaosSeed(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(7), uint8(1))
	f.Add(uint64(42), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, rigSel uint8) {
		cfg := Config{
			Rig:    AllRigs[int(rigSel)%len(AllRigs)],
			Seed:   seed,
			Phases: 2,
			Conns:  2,
			Chunk:  2048,
		}
		res := Run(cfg)
		if res.Failed() {
			var b strings.Builder
			for _, v := range res.Violations {
				b.WriteString("\n  " + v.String())
			}
			t.Fatalf("seed %d rig %s violated invariants (%s):%s\nreplay: %s",
				seed, cfg.Rig, res.Sched, b.String(), ReplayCommand(cfg))
		}
		if !res.Drained {
			t.Fatalf("seed %d rig %s failed to drain\nreplay: %s",
				seed, cfg.Rig, ReplayCommand(cfg))
		}
	})
}
