package conformance

import (
	"fmt"
	"unsafe"

	"f4t/internal/cc"
	"f4t/internal/flow"
	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

// Violation is one invariant breach, attributed to an endpoint and flow
// at the simulation cycle it was observed.
type Violation struct {
	Invariant string
	Endpoint  string
	Flow      flow.ID
	Cycle     int64
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s flow=%d cycle=%d: %s",
		v.Endpoint, v.Invariant, v.Flow, v.Cycle, v.Detail)
}

// legalNext[prev][cur] reports whether observing state cur after state
// prev is consistent with the RFC 793 transition diagram, allowing for
// sampling gaps: cur must be reachable from prev WITHOUT passing through
// CLOSED, because a flow that reaches CLOSED is freed and cannot
// silently re-emerge under the same identity (identity changes reset the
// tracker instead). Reaching CLOSED itself is always legal — abort tears
// down from any state.
var legalNext [flow.StateLastAck + 1][flow.StateLastAck + 1]bool

func init() {
	direct := map[flow.State][]flow.State{
		flow.StateClosed:      {flow.StateListen, flow.StateSynSent},
		flow.StateListen:      {flow.StateSynRcvd},
		flow.StateSynSent:     {flow.StateSynRcvd, flow.StateEstablished},
		flow.StateSynRcvd:     {flow.StateEstablished, flow.StateFinWait1},
		flow.StateEstablished: {flow.StateFinWait1, flow.StateCloseWait},
		flow.StateFinWait1:    {flow.StateFinWait2, flow.StateClosing, flow.StateTimeWait},
		flow.StateFinWait2:    {flow.StateTimeWait},
		flow.StateClosing:     {flow.StateTimeWait},
		flow.StateTimeWait:    {},
		flow.StateCloseWait:   {flow.StateLastAck},
		flow.StateLastAck:     {},
	}
	for s := flow.StateClosed; s <= flow.StateLastAck; s++ {
		// BFS from s over the non-CLOSED subgraph.
		reach := map[flow.State]bool{s: true}
		queue := []flow.State{s}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur == flow.StateClosed && cur != s {
				continue // don't traverse through a freed flow
			}
			for _, nxt := range direct[cur] {
				if !reach[nxt] {
					reach[nxt] = true
					queue = append(queue, nxt)
				}
			}
		}
		for t := flow.StateClosed; t <= flow.StateLastAck; t++ {
			legalNext[s][t] = reach[t] || t == flow.StateClosed
		}
	}
}

// snap is the per-flow state the tracker compares successive samples
// against.
type snap struct {
	tuple       wire.FourTuple
	state       flow.State
	sndUna      seqnum.Value
	rcvNxt      seqnum.Value
	deliveredTo seqnum.Value
	backoff     uint8
	ssthresh    uint32
}

// ccActive reports whether a flow's congestion state is live: the
// handshake has run the program's Init and the flow still owns its send
// machinery. Pre-established states are excluded (a TCB sampled in
// LISTEN or mid-handshake may predate Init), as are CLOSED and
// TIME_WAIT, whose congestion state is dead weight awaiting release.
func ccActive(st flow.State) bool {
	switch st {
	case flow.StateEstablished, flow.StateFinWait1, flow.StateFinWait2,
		flow.StateClosing, flow.StateCloseWait, flow.StateLastAck:
		return true
	}
	return false
}

// tracker checks protocol invariants over a stream of TCB observations
// from one endpoint. Flow IDs may be reused (the engine recycles slots);
// a tuple change resets that flow's history. alg and mss parameterize
// the congestion-control invariants: which program the endpoint runs
// decides what its Ssthresh is allowed to do.
type tracker struct {
	endpoint string
	alg      string
	mss      uint32
	prev     map[flow.ID]snap
	sink     func(Violation)
	reported map[string]bool // dedup: one report per (flow, invariant)

	// passSeen maps CCVars base addresses to flow IDs within one
	// VisitTCBs pass (beginPass resets it). Two live flows resolving to
	// the same CCVars block means the flat TCB arena handed one
	// congestion state to two connections.
	passSeen map[uintptr]flow.ID
}

func newTracker(endpoint, alg string, mss uint32, sink func(Violation)) *tracker {
	return &tracker{
		endpoint: endpoint,
		alg:      alg,
		mss:      mss,
		prev:     make(map[flow.ID]snap),
		sink:     sink,
		reported: make(map[string]bool),
	}
}

// beginPass starts a new aliasing-detection window. Call once before
// each VisitTCBs sweep; observations between calls must come from
// distinct flows.
func (tr *tracker) beginPass() {
	tr.passSeen = make(map[uintptr]flow.ID, len(tr.passSeen))
}

func (tr *tracker) report(t *flow.TCB, cycle int64, invariant, detail string) {
	key := fmt.Sprintf("%d/%s", t.FlowID, invariant)
	if tr.reported[key] {
		return
	}
	tr.reported[key] = true
	tr.sink(Violation{
		Invariant: invariant, Endpoint: tr.endpoint,
		Flow: t.FlowID, Cycle: cycle, Detail: detail,
	})
}

// observe checks one TCB sample against the intra-sample invariants and
// against the flow's previous sample.
func (tr *tracker) observe(t *flow.TCB, cycle int64) {
	// Intra-sample: the send stream's pointers must stay ordered…
	if t.SndUna.GreaterThan(t.SndNxt) {
		tr.report(t, cycle, "snd-una-beyond-nxt",
			fmt.Sprintf("SndUna=%d > SndNxt=%d", t.SndUna, t.SndNxt))
	}
	// …the host must never be told about bytes not yet received in
	// order…
	if t.DeliveredTo.GreaterThan(t.RcvNxt) {
		tr.report(t, cycle, "delivered-beyond-rcvnxt",
			fmt.Sprintf("DeliveredTo=%d > RcvNxt=%d", t.DeliveredTo, t.RcvNxt))
	}
	// …and a terminated flow must not hold armed timers.
	if t.State == flow.StateClosed &&
		(t.RetransAt != 0 || t.ProbeAt != 0 || t.DelAckAt != 0 || t.KeepaliveAt != 0) {
		tr.report(t, cycle, "timer-armed-on-closed",
			fmt.Sprintf("retrans=%d probe=%d delack=%d keepalive=%d",
				t.RetransAt, t.ProbeAt, t.DelAckAt, t.KeepaliveAt))
	}

	// Congestion-control state invariants, on flows whose program is live.
	if ccActive(t.State) {
		// Every program floors its window at one segment — even the RTO
		// collapse leaves cwnd = 1 MSS. A smaller window deadlocks the
		// flow (nothing is ever eligible to send).
		if t.Cwnd < tr.mss {
			tr.report(t, cycle, "cwnd-below-mss",
				fmt.Sprintf("cwnd=%d < mss=%d", t.Cwnd, tr.mss))
		}
		if tr.alg == "bbr" {
			// BBR is model-based: it regulates through cwnd alone and
			// must never touch the slow-start threshold. A moved
			// ssthresh means a loss-based code path ran under bbr.
			if t.Ssthresh != cc.InitialSsthresh {
				tr.report(t, cycle, "bbr-ssthresh-mutated",
					fmt.Sprintf("ssthresh=%d, want pinned at %d", t.Ssthresh, uint32(cc.InitialSsthresh)))
			}
		} else if t.Ssthresh != cc.InitialSsthresh && t.Ssthresh < cc.MinSsthresh(tr.mss) {
			// Loss-based programs clamp every ssthresh reduction at
			// MinSsthresh; anything between the floor and the initial
			// sentinel escaped the clamp.
			tr.report(t, cycle, "ssthresh-below-floor",
				fmt.Sprintf("ssthresh=%d < floor=%d", t.Ssthresh, cc.MinSsthresh(tr.mss)))
		}
	}

	// CCVars aliasing: within one visiting pass, each live flow must own
	// a distinct congestion-variable block in the flat TCB arena.
	if tr.passSeen != nil && ccActive(t.State) {
		addr := uintptr(unsafe.Pointer(&t.CCVars[0]))
		if other, dup := tr.passSeen[addr]; dup && other != t.FlowID {
			tr.report(t, cycle, "ccvars-aliased",
				fmt.Sprintf("flows %d and %d share CCVars block %#x", other, t.FlowID, addr))
		}
		tr.passSeen[addr] = t.FlowID
	}

	s, known := tr.prev[t.FlowID]
	if known && s.tuple != t.Tuple {
		known = false // slot reused for a different connection
	}
	// The receive-side anchors only exist once the handshake has taught
	// us the peer's ISN: a sample taken in SYN-SENT (or earlier) holds
	// RcvNxt=0, and the jump to IRS+1 on establishment is not a
	// regression.
	rcvAnchored := s.state != flow.StateClosed &&
		s.state != flow.StateListen && s.state != flow.StateSynSent

	if known {
		// Cumulative pointers only move forward: an ACK may not regress,
		// received-in-order data may not un-arrive, and the app-visible
		// delivery boundary may not retreat.
		if t.SndUna.LessThan(s.sndUna) {
			tr.report(t, cycle, "ack-regression",
				fmt.Sprintf("SndUna %d -> %d", s.sndUna, t.SndUna))
		}
		if rcvAnchored && t.RcvNxt.LessThan(s.rcvNxt) {
			tr.report(t, cycle, "rcvnxt-regression",
				fmt.Sprintf("RcvNxt %d -> %d", s.rcvNxt, t.RcvNxt))
		}
		if rcvAnchored && t.DeliveredTo.LessThan(s.deliveredTo) {
			tr.report(t, cycle, "delivered-regression",
				fmt.Sprintf("DeliveredTo %d -> %d", s.deliveredTo, t.DeliveredTo))
		}
		if !legalNext[s.state][t.State] {
			tr.report(t, cycle, "illegal-state-transition",
				fmt.Sprintf("%v -> %v", s.state, t.State))
		}
		// While no progress is acknowledged, RTO backoff may only grow:
		// a rewind without an ACK means a retransmission timer fired
		// from stale state.
		if t.State == s.state && t.State != flow.StateClosed &&
			t.SndUna == s.sndUna && t.Backoff < s.backoff {
			tr.report(t, cycle, "backoff-rewind",
				fmt.Sprintf("backoff %d -> %d with SndUna pinned at %d",
					s.backoff, t.Backoff, t.SndUna))
		}
		// Ssthresh may move both ways once lowered (loss raises and
		// lowers it with cwnd), but it can never return to the initial
		// "unbounded" sentinel: no program assigns that value after
		// Init, so seeing it again means the CC state was reinitialized
		// under a live connection.
		if ccActive(t.State) && ccActive(s.state) &&
			s.ssthresh != cc.InitialSsthresh && t.Ssthresh == cc.InitialSsthresh {
			tr.report(t, cycle, "ssthresh-sentinel-revival",
				fmt.Sprintf("ssthresh %d -> initial sentinel %d", s.ssthresh, t.Ssthresh))
		}
	}
	tr.prev[t.FlowID] = snap{
		tuple: t.Tuple, state: t.State,
		sndUna: t.SndUna, rcvNxt: t.RcvNxt,
		deliveredTo: t.DeliveredTo, backoff: t.Backoff,
		ssthresh: t.Ssthresh,
	}
}
