package conformance

import "fmt"

// Minimize shrinks a failing configuration to the shortest schedule
// prefix that still reproduces a failure. Because NewSchedule(seed, n)
// is an exact prefix of NewSchedule(seed, m) for n < m, truncating the
// phase count replays the identical fault sequence up to the cut — so a
// linear scan from the front finds the minimal reproducer in at most
// cfg.Phases runs. run is injectable for tests; pass Run.
//
// The returned Config reproduces the returned Result exactly; ok is
// false when no prefix (including the full schedule) fails, i.e. the
// original failure did not reproduce.
func Minimize(cfg Config, run func(Config) Result) (Config, Result, bool) {
	for n := 1; n <= cfg.Phases; n++ {
		c := cfg
		c.Phases = n
		res := run(c)
		if res.Failed() {
			return c, res, true
		}
	}
	return cfg, Result{}, false
}

// ReplayCommand renders the exact command that reproduces a
// configuration, for pasting from a failure report.
func ReplayCommand(cfg Config) string {
	s := fmt.Sprintf("go run ./cmd/f4tconform -rig %s -seed %d -phases %d -conns %d -chunk %d",
		cfg.Rig, cfg.Seed, cfg.Phases, cfg.Conns, cfg.Chunk)
	if cfg.Alg != "" && cfg.Alg != "newreno" {
		s += " -alg " + cfg.Alg
	}
	if cfg.PCAPPath != "" {
		s += " -pcap " + cfg.PCAPPath
	}
	return s
}
