// Package conformance is a deterministic, seed-driven TCP chaos and
// differential-testing harness. It drives two endpoints — any pairing of
// the software stack and the FtEngine model — through reproducible fault
// schedules (loss, reordering, duplication, forged resets, zero-window
// stalls, tiny-segment storms, connection churn) while checking protocol
// invariants on every sampled TCB: sequence-space monotonicity, RFC 793
// state-machine legality, timer sanity, byte-stream integrity, and
// drain-to-quiescence liveness. Every run is a pure function of its
// seed, so any failure replays exactly; a failing seed shrinks to the
// shortest reproducing schedule prefix via Minimize.
package conformance

import (
	"fmt"
	"strings"

	"f4t/internal/engine"
	"f4t/internal/flow"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/softstack"
	"f4t/internal/stack"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

// RigKind selects the endpoint pairing under test.
type RigKind int

// The rig pairings: software stack on both ends, the FtEngine model
// against the software stack (differential), FtEngine on both ends, and
// FtEngine on both ends joined through an output-queued router instead
// of a point-to-point link.
const (
	RigSoftSoft RigKind = iota
	RigEngineSoft
	RigEngineEngine
	RigEngineEngineRouted
)

// AllRigs lists every pairing, in sweep order.
var AllRigs = []RigKind{RigSoftSoft, RigEngineSoft, RigEngineEngine, RigEngineEngineRouted}

var rigNames = [...]string{"soft-soft", "engine-soft", "engine-engine", "engine-engine-routed"}

// String returns the rig's command-line name.
func (r RigKind) String() string {
	if int(r) < len(rigNames) {
		return rigNames[r]
	}
	return "unknown"
}

// ParseRig resolves a command-line rig name.
func ParseRig(s string) (RigKind, error) {
	for i, n := range rigNames {
		if s == n {
			return RigKind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown rig %q (want %s)", s, strings.Join(rigNames[:], ", "))
}

// Conn is the substrate-independent view of one connection under test.
type Conn interface {
	Established() bool
	Reset() bool      // the connection was reset
	Done() bool       // fully terminated
	PeerClosed() bool // the peer's FIN was delivered
	LocalPort() uint16
	PeerPort() uint16
	Send(b []byte) int
	Recv(max int) ([]byte, int)
	Available() int
	Close()
	Abort()
}

// Endpoint hides which substrate (software stack, or engine + library)
// one side of the rig runs on.
type Endpoint interface {
	Name() string
	Listen()
	Dial() Conn
	// Poll pumps host-side completions and returns connections accepted
	// since the previous call.
	Poll() []Conn
	VisitTCBs(fn func(*flow.TCB))
	// OowRstDrops returns how many inbound RSTs this side discarded for
	// failing sequence validation.
	OowRstDrops() int64
}

// rigPort is the listening port every rig uses.
const rigPort = 80

// rigRcvBuf keeps receive buffers small so zero-window phases actually
// pinch the window shut within a phase's worth of traffic.
const rigRcvBuf = 64 * 1024

// Islands of a rig on a sim.Fabric: endpoint A (dialer) and endpoint B
// (listener). On a sharded fabric the two endpoints run on separate
// goroutines with the link's latency as the synchronization lookahead.
const (
	islandA = 0
	islandB = 1
	// The routed rig's switch lives on its own island, so a sharded run
	// exercises the router/endpoint barriers too.
	rigRouterIsland = 2
)

// Rig is one two-endpoint test network: A dials, B listens.
type Rig struct {
	Kind RigKind
	R    sim.Runner  // fabric driving the rig (serial kernel or sharded)
	K    *sim.Kernel // the serial kernel; nil when the rig runs sharded
	Link *netsim.Link
	A, B Endpoint

	// Forged-RST injectors, one per direction (toward B, toward A).
	InjToB, InjToA *rstInjector
}

// SetFaults applies one fault profile to both directions.
func (r *Rig) SetFaults(f netsim.Faults) {
	r.Link.AtoB.SetFaults(f)
	r.Link.BtoA.SetFaults(f)
}

// SetRSTEvery arms (or, with 0, disarms) forged-RST injection on both
// directions.
func (r *Rig) SetRSTEvery(n int64) {
	r.InjToB.every = n
	r.InjToA.every = n
}

// ForgedRSTs returns the total resets forged so far, both directions.
func (r *Rig) ForgedRSTs() int64 { return r.InjToB.forged + r.InjToA.forged }

// NewRig builds the requested pairing on a 100 Gbps / 600 ns link over
// a fresh serial kernel. All randomness (ISNs, link fault draws)
// derives from seed, so two rigs with the same kind and seed evolve
// identically.
func NewRig(kind RigKind, seed uint64) *Rig {
	return NewRigOn(sim.New(), kind, seed)
}

// NewRigOn builds the pairing on any fabric with both endpoints running
// newreno, the harness default.
func NewRigOn(f sim.Fabric, kind RigKind, seed uint64) *Rig {
	return NewRigAlgOn(f, kind, seed, "newreno")
}

// NewRigAlgOn builds the pairing on any fabric with both endpoints
// running the named congestion-control program (endpoint A on islandA,
// endpoint B on islandB). Construction and registration order is fixed,
// so a sharded rig reproduces a serial rig's results bit for bit (the
// shard matrix test in shard_test.go holds it to that). A dctcp rig
// enables ECN end to end; with no marking discipline on the rig's link
// the program degrades to its loss response, which is exactly the
// chaos-weather path the sweep wants to exercise.
func NewRigAlgOn(f sim.Fabric, kind RigKind, seed uint64, alg string) *Rig {
	if alg == "" {
		alg = "newreno"
	}
	kA, kB := f.IslandKernel(islandA), f.IslandKernel(islandB)
	ipA, ipB := wire.MakeAddr(10, 9, 0, 1), wire.MakeAddr(10, 9, 0, 2)
	macA, macB := wire.MAC{2, 9, 0, 0, 0, 1}, wire.MAC{2, 9, 0, 0, 0, 2}

	r := &Rig{Kind: kind, R: f}
	if k, ok := f.(*sim.Kernel); ok {
		r.K = k
	}

	// The endpoints either face each other over a point-to-point link or
	// hang off a one-switch star. Either way r.Link names the two pipes
	// faults inject on: for the routed rig those are the uplinks, so the
	// fault schedule hits before the router queues, like a real host NIC.
	var topo *netsim.Topology
	var txA, txB func(*wire.Packet)
	if kind == RigEngineEngineRouted {
		specs := []netsim.NodeSpec{
			{Addr: ipA, MAC: macA, Island: islandA, Gbps: 100, PropNS: 600},
			{Addr: ipB, MAC: macB, Island: islandB, Gbps: 100, PropNS: 600},
		}
		topo = netsim.NewStarOn(f, rigRouterIsland, specs, netsim.DropTail(0), seed*4+1)
		r.Link = &netsim.Link{AtoB: topo.Uplinks[0], BtoA: topo.Uplinks[1]}
		txA, txB = topo.NodeTX(0), topo.NodeTX(1)
	} else {
		r.Link = netsim.NewLinkOn(f, islandA, islandB, 100, 600, seed*4+1)
		txA, txB = r.Link.AtoB.Send, r.Link.BtoA.Send
	}

	var deliverA, deliverB func(*wire.Packet)
	var tickA, tickB sim.Ticker

	switch kind {
	case RigSoftSoft:
		a := newStackEnd(kA, "A", ipA, macA, ipB, seed*4+2, alg, txA)
		b := newStackEnd(kB, "B", ipB, macB, ipA, seed*4+3, alg, txB)
		a.ep.LearnPeer(ipB, macB)
		b.ep.LearnPeer(ipA, macA)
		deliverA, deliverB = a.deliver, b.deliver
		tickA, tickB = a, b
		r.A, r.B = a, b
	case RigEngineSoft:
		a := newEngineEnd(kA, "A", ipA, macA, ipB, seed*4+2, alg, txA)
		b := newStackEnd(kB, "B", ipB, macB, ipA, seed*4+3, alg, txB)
		a.eng.LearnPeer(ipB, macB)
		b.ep.LearnPeer(ipA, macA)
		deliverA, deliverB = a.deliver, b.deliver
		tickA, tickB = a.eng, b
		r.A, r.B = a, b
	case RigEngineEngine, RigEngineEngineRouted:
		a := newEngineEnd(kA, "A", ipA, macA, ipB, seed*4+2, alg, txA)
		b := newEngineEnd(kB, "B", ipB, macB, ipA, seed*4+3, alg, txB)
		a.eng.LearnPeer(ipB, macB)
		b.eng.LearnPeer(ipA, macA)
		deliverA, deliverB = a.deliver, b.deliver
		tickA, tickB = a.eng, b.eng
		r.A, r.B = a, b
	default:
		panic("conformance: unknown rig kind")
	}
	f.RegisterOn(islandA, tickA)
	f.RegisterOn(islandB, tickB)

	r.InjToB = &rstInjector{next: deliverB}
	r.InjToA = &rstInjector{next: deliverA}
	if topo != nil {
		topo.SetNodeSink(0, r.InjToA.deliver)
		topo.SetNodeSink(1, r.InjToB.deliver)
	} else {
		r.Link.AtoB.SetSink(r.InjToB.deliver)
		r.Link.BtoA.SetSink(r.InjToA.deliver)
	}
	return r
}

// --- software-stack endpoint ---

type stackEnd struct {
	name     string
	k        *sim.Kernel
	ep       *stack.Endpoint
	peer     wire.Addr
	rx       []*wire.Packet
	accepted []Conn
}

func newStackEnd(k *sim.Kernel, name string, ip wire.Addr, mac wire.MAC, peer wire.Addr, seed uint64, alg string, tx func(*wire.Packet)) *stackEnd {
	cfg := tcpproc.DefaultConfig()
	cfg.RcvBuf = rigRcvBuf
	cfg.ECN = alg == "dctcp"
	ep := stack.New(k, stack.Options{
		IP: ip, MAC: mac, Cfg: cfg, Alg: alg, CarryBytes: true, Seed: seed,
	}, tx)
	// Registered by NewRigOn so slots are assigned in fabric order.
	return &stackEnd{name: name, k: k, ep: ep, peer: peer}
}

// deliver is the link sink. Packets queue and are processed on the
// endpoint's own tick: a delivery callback may be a cross-shard
// injection running under a foreign slot, which must not synchronously
// schedule local timers (responses transmit from Tick instead).
func (s *stackEnd) deliver(p *wire.Packet) {
	s.rx = append(s.rx, p)
	s.k.Wake(s)
}

// Tick drains queued RX packets (responses, if any, transmit here under
// the endpoint's own slot) and then expires stack timers.
func (s *stackEnd) Tick(cycle int64) {
	for len(s.rx) > 0 {
		p := s.rx[0]
		s.rx = s.rx[1:]
		s.ep.HandlePacket(p)
	}
	s.ep.Tick(cycle)
}

func (s *stackEnd) Name() string { return s.name }

func (s *stackEnd) Listen() {
	s.ep.Listen(rigPort, func(c *stack.Conn) {
		s.accepted = append(s.accepted, &stackConn{c: c})
	})
}

func (s *stackEnd) Dial() Conn {
	c := s.ep.Dial(s.peer, rigPort)
	if c == nil {
		return nil
	}
	return &stackConn{c: c}
}

func (s *stackEnd) Poll() []Conn {
	out := s.accepted
	s.accepted = nil
	return out
}

func (s *stackEnd) VisitTCBs(fn func(*flow.TCB)) {
	s.ep.EachConn(func(c *stack.Conn) { fn(c.TCB) })
}

func (s *stackEnd) OowRstDrops() int64 { return s.ep.RxOowRsts }

type stackConn struct{ c *stack.Conn }

func (c *stackConn) Established() bool          { return c.c.Established }
func (c *stackConn) Reset() bool                { return c.c.WasReset }
func (c *stackConn) Done() bool                 { return c.c.Closed || c.c.WasReset }
func (c *stackConn) PeerClosed() bool           { return c.c.PeerClosed }
func (c *stackConn) LocalPort() uint16          { return c.c.TCB.Tuple.LocalPort }
func (c *stackConn) PeerPort() uint16           { return c.c.TCB.Tuple.RemotePort }
func (c *stackConn) Send(b []byte) int          { return c.c.Send(b) }
func (c *stackConn) Recv(max int) ([]byte, int) { return c.c.Recv(max) }
func (c *stackConn) Available() int             { return c.c.Available() }
func (c *stackConn) Close()                     { c.c.Close() }
func (c *stackConn) Abort()                     { c.c.Abort() }

// --- engine + library endpoint ---

type engineEnd struct {
	name string
	eng  *engine.Engine
	lib  *softstack.Lib
	peer wire.Addr
}

func newEngineEnd(k *sim.Kernel, name string, ip wire.Addr, mac wire.MAC, peer wire.Addr, seed uint64, alg string, tx func(*wire.Packet)) *engineEnd {
	cfg := engine.DefaultConfig()
	cfg.IP, cfg.MAC, cfg.Seed = ip, mac, seed
	cfg.Alg = alg
	cfg.CarryBytes = true
	cfg.Proto.RcvBuf = rigRcvBuf
	cfg.Proto.ECN = alg == "dctcp"
	eng := engine.New(k, cfg, tx)
	// Registered by NewRigOn so slots are assigned in fabric order.
	return &engineEnd{name: name, eng: eng, lib: softstack.NewLib(k, eng, 0), peer: peer}
}

func (e *engineEnd) deliver(p *wire.Packet) { e.eng.DeliverPacket(p) }

func (e *engineEnd) Name() string { return e.name }

func (e *engineEnd) Listen() { e.lib.Listen(rigPort) }

func (e *engineEnd) Dial() Conn {
	s := e.lib.Dial(e.peer, rigPort)
	if s == nil {
		return nil
	}
	return &sockConn{s: s, end: e}
}

func (e *engineEnd) Poll() []Conn {
	var out []Conn
	for _, ev := range e.lib.Poll() {
		if ev.Kind == softstack.EvAccepted {
			out = append(out, &sockConn{s: ev.Sock, end: e})
		}
	}
	return out
}

func (e *engineEnd) VisitTCBs(fn func(*flow.TCB)) { e.eng.VisitTCBs(fn) }

func (e *engineEnd) OowRstDrops() int64 { return e.eng.OowRstDrops.Total() }

type sockConn struct {
	s   *softstack.Socket
	end *engineEnd
}

func (c *sockConn) Established() bool { return c.s.Established }
func (c *sockConn) Reset() bool       { return c.s.WasReset }
func (c *sockConn) Done() bool        { return c.s.Closed || c.s.WasReset }
func (c *sockConn) PeerClosed() bool  { return c.s.PeerClosed }
func (c *sockConn) LocalPort() uint16 { return c.s.LocalPort() }

func (c *sockConn) PeerPort() uint16 {
	if t := c.end.eng.TCB(c.s.ID); t != nil {
		return t.Tuple.RemotePort
	}
	return 0
}

func (c *sockConn) Send(b []byte) int          { return c.s.Send(b) }
func (c *sockConn) Recv(max int) ([]byte, int) { return c.s.Recv(max) }
func (c *sockConn) Available() int             { return c.s.Available() }
func (c *sockConn) Close()                     { c.s.Close() }
func (c *sockConn) Abort()                     { c.s.Abort() }

// --- forged-RST injection ---

// rstInjector sits between a pipe and its sink. While armed, every
// every-th payload-bearing or ACK packet is preceded by a forged RST
// whose sequence number is displaced a deterministic 1 GiB from the
// segment it shadows — far outside any receive window, so RFC-conformant
// sequence validation must discard every single one. SYN and RST
// segments are never shadowed (a forged reset "for" a SYN would need the
// ACK-validation path instead, and resets never answer resets).
type rstInjector struct {
	next   func(*wire.Packet)
	every  int64
	seen   int64
	forged int64
}

// rstDisplacement pushes forged resets out of any plausible window
// (windows top out at 2 MB; this is 1 GiB).
const rstDisplacement = 1 << 30

func (ri *rstInjector) deliver(pkt *wire.Packet) {
	if ri.every > 0 && pkt.Kind == wire.KindTCP &&
		pkt.TCP.Flags&(wire.FlagRST|wire.FlagSYN) == 0 {
		ri.seen++
		if ri.seen%ri.every == 0 {
			forged := pkt.Clone()
			forged.TCP.Flags = wire.FlagRST
			forged.TCP.Seq = pkt.TCP.Seq.Add(rstDisplacement)
			forged.TCP.Ack = 0
			forged.PayloadLen, forged.Payload = 0, nil
			ri.forged++
			ri.next(forged)
		}
	}
	ri.next(pkt)
}
