package conformance

import (
	"fmt"
	"testing"
)

// compareResults requires two runs to be bit-identical in everything a
// Result captures (the schedule is a pure function of the seed, so it
// is omitted).
func compareResults(t *testing.T, name string, got, want Result) {
	t.Helper()
	if got.EndCycle != want.EndCycle {
		t.Errorf("%s: EndCycle %d, want %d", name, got.EndCycle, want.EndCycle)
	}
	if got.Drained != want.Drained {
		t.Errorf("%s: Drained %v, want %v", name, got.Drained, want.Drained)
	}
	if got.ForgedRSTs != want.ForgedRSTs {
		t.Errorf("%s: ForgedRSTs %d, want %d", name, got.ForgedRSTs, want.ForgedRSTs)
	}
	if got.OowRstDrops != want.OowRstDrops {
		t.Errorf("%s: OowRstDrops %d, want %d", name, got.OowRstDrops, want.OowRstDrops)
	}
	if len(got.Violations) != len(want.Violations) {
		t.Fatalf("%s: %d violations, want %d\ngot:  %v\nwant: %v",
			name, len(got.Violations), len(want.Violations), got.Violations, want.Violations)
	}
	for i := range got.Violations {
		if got.Violations[i] != want.Violations[i] {
			t.Errorf("%s: violation %d = %+v, want %+v", name, i, got.Violations[i], want.Violations[i])
		}
	}
}

// TestShardMatrix is the conformance leg of the differential battery:
// every rig kind, several chaos seeds, run serially and on sharded
// kernels — the full Result (violations, drain verdict, forged/dropped
// RST counts, end cycle) must be bit-identical. This is the strongest
// whole-system determinism check in the repo: the chaos schedules
// exercise loss, reordering, duplication, forged RSTs, zero windows and
// churn across the shard boundary.
func TestShardMatrix(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	shardCounts := []int{2, 4, 8}
	kinds := AllRigs
	if testing.Short() {
		seeds = seeds[:3]
		shardCounts = []int{2}
		kinds = []RigKind{RigEngineEngine}
	}
	for _, kind := range kinds {
		for _, seed := range seeds {
			cfg := Config{Rig: kind, Seed: seed, Phases: 4, Conns: 3, Chunk: 2048}
			ref := Run(cfg)
			for _, n := range shardCounts {
				c := cfg
				c.Shards = n
				name := fmt.Sprintf("%s/seed=%d/shards=%d", kind, seed, n)
				compareResults(t, name, Run(c), ref)
			}
		}
	}
}
