package conformance

import (
	"fmt"

	"f4t/internal/flow"
	"f4t/internal/netsim"
	"f4t/internal/pcap"
	"f4t/internal/sim"
	"f4t/internal/tcpproc"
)

// Config parameterizes one harness run. Identical configs produce
// identical runs: every random decision (schedule, ISNs, link fault
// draws) derives from Seed.
type Config struct {
	Rig    RigKind
	Seed   uint64
	Phases int
	Conns  int // concurrent connections (dialed A→B)
	Chunk  int // bytes per application write while pumping

	// Alg names the congestion-control program both endpoints run
	// (empty means newreno). The chaos schedules don't care which
	// program is loaded, so the same seed sweeps every registered
	// algorithm through identical weather — the CC invariants do the
	// per-program checking.
	Alg string

	// Shards > 1 runs the rig on a sharded kernel with the two endpoints
	// on separate shards. Results are bit-identical to the serial run of
	// the same config — the shard matrix test enforces it — so this knob
	// trades nothing but wall-clock shape.
	Shards int

	// PCAPPath, when non-empty, writes the run's link capture there
	// (both directions, drop/mark annotations in packet comments) for
	// replay forensics in Wireshark.
	PCAPPath string
}

// DefaultConfig is the CI smoke shape: long enough to hit every fault
// archetype with a handful of phases, short enough to sweep many seeds.
func DefaultConfig() Config {
	return Config{Rig: RigSoftSoft, Seed: 1, Phases: 6, Conns: 4, Chunk: 4096}
}

// Result is everything one run produced.
type Result struct {
	Violations  []Violation
	Drained     bool  // all connections reached quiescence after the storm
	ForgedRSTs  int64 // resets injected by the chaos layer
	OowRstDrops int64 // resets the endpoints discarded by validation
	EndCycle    int64
	Sched       Schedule
}

// Failed reports whether the run violated any invariant (a liveness
// failure is recorded as a violation too).
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// maxViolations bounds the report; one broken invariant tends to cascade.
const maxViolations = 64

// testConn is the harness's bookkeeping for one connection: both ends'
// views plus per-direction stream progress. Direction 0 is A→B, 1 is
// B→A. Payload bytes are a pure function of (conn index, direction,
// stream offset), so receivers verify without the harness buffering
// anything.
type testConn struct {
	idx     int
	dial    Conn // A side (dialer)
	acc     Conn // B side, nil until accepted
	sent    [2]int
	rcvd    [2]int
	aborted bool

	closedDial, closedAcc bool
}

func (c *testConn) pat(dir, off int) byte {
	return byte(off)*3 + byte(c.idx*31+dir*17+7)
}

// sender/receiver return the Conn on each end of a direction.
func (c *testConn) sender(dir int) Conn {
	if dir == 0 {
		return c.dial
	}
	return c.acc
}
func (c *testConn) receiver(dir int) Conn {
	if dir == 0 {
		return c.acc
	}
	return c.dial
}

type runner struct {
	cfg   Config
	rig   *Rig
	sched Schedule

	conns   []*testConn
	pending map[uint16]*testConn // dialer's local port → awaiting accept
	nextIdx int

	trA, trB *tracker
	viol     []Violation
	closing  bool // drain step 2: close every surviving connection
}

// Run executes one seed-driven chaos run and returns its verdict.
func Run(cfg Config) Result {
	if cfg.Chunk <= 0 {
		cfg.Chunk = 4096
	}
	var fab sim.Fabric
	if cfg.Shards > 1 {
		fab = sim.NewSharded(cfg.Shards)
	} else {
		fab = sim.New()
	}
	alg := cfg.Alg
	if alg == "" {
		alg = "newreno"
	}
	h := &runner{
		cfg:     cfg,
		rig:     NewRigAlgOn(fab, cfg.Rig, cfg.Seed, alg),
		sched:   NewSchedule(cfg.Seed, cfg.Phases),
		pending: make(map[uint16]*testConn),
	}
	var capture *pcap.Capture
	if cfg.PCAPPath != "" {
		capture = pcap.New()
		capture.TapPipe(h.rig.Link.AtoB, "chaos.ab")
		capture.TapPipe(h.rig.Link.BtoA, "chaos.ba")
	}
	sink := func(v Violation) {
		if len(h.viol) < maxViolations {
			h.viol = append(h.viol, v)
		}
	}
	mss := tcpproc.DefaultConfig().MSS
	h.trA = newTracker("A", alg, mss, sink)
	h.trB = newTracker("B", alg, mss, sink)

	h.rig.B.Listen()
	for i := 0; i < cfg.Conns; i++ {
		h.dialOne()
	}
	for _, ph := range h.sched.Phases {
		h.runPhase(ph)
	}
	drained := h.drain()
	h.finalChecks(drained)
	if capture != nil {
		if err := capture.WriteFile(cfg.PCAPPath); err != nil {
			sink(Violation{Invariant: "pcap-write", Endpoint: "harness",
				Cycle: h.rig.R.Now(), Detail: err.Error()})
		}
	}

	return Result{
		Violations:  h.viol,
		Drained:     drained,
		ForgedRSTs:  h.rig.ForgedRSTs(),
		OowRstDrops: h.rig.A.OowRstDrops() + h.rig.B.OowRstDrops(),
		EndCycle:    h.rig.R.Now(),
		Sched:       h.sched,
	}
}

// dialOne opens a fresh connection from A and registers it for accept
// matching by the dialer's ephemeral port.
func (h *runner) dialOne() {
	c := h.rig.A.Dial()
	if c == nil {
		return // command queue full; churn retries next phase
	}
	tc := &testConn{idx: h.nextIdx, dial: c}
	h.nextIdx++
	h.conns = append(h.conns, tc)
	h.pending[c.LocalPort()] = tc
}

// pump advances the application layer one step: drain completions,
// match newly accepted connections, move stream bytes subject to the
// phase's stall/trickle shaping.
func (h *runner) pump(ph *Phase) {
	h.rig.A.Poll() // dialer-side completions (engine libs)
	for _, nc := range h.rig.B.Poll() {
		if tc := h.pending[nc.PeerPort()]; tc != nil && tc.acc == nil {
			tc.acc = nc
			delete(h.pending, nc.PeerPort())
		}
	}
	for _, tc := range h.conns {
		if tc.aborted {
			continue
		}
		if h.closing {
			// Also catches stragglers whose handshake (and accept) only
			// completed during the drain, after the initial close sweep.
			h.closeBoth(tc)
		}
		for dir := 0; dir < 2; dir++ {
			h.pumpSend(tc, dir, ph)
			if ph == nil || !ph.Stall {
				h.pumpRecv(tc, dir)
			}
		}
	}
}

var chunkScratch [8192]byte

func (h *runner) pumpSend(tc *testConn, dir int, ph *Phase) {
	if ph == nil {
		return // draining: no new bytes
	}
	snd := tc.sender(dir)
	if snd == nil || !snd.Established() || snd.Done() {
		return
	}
	n := h.cfg.Chunk
	if ph.Trickle {
		n = 1
	}
	if n > len(chunkScratch) {
		n = len(chunkScratch)
	}
	for i := 0; i < n; i++ {
		chunkScratch[i] = tc.pat(dir, tc.sent[dir]+i)
	}
	tc.sent[dir] += snd.Send(chunkScratch[:n])
}

func (h *runner) pumpRecv(tc *testConn, dir int) {
	rcv := tc.receiver(dir)
	// Touching the stream API before ESTABLISHED would anchor the app
	// pointers before the handshake has fixed the peer's ISN.
	if rcv == nil || !rcv.Established() {
		return
	}
	for rcv.Available() > 0 {
		buf, n := rcv.Recv(8192)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			want := tc.pat(dir, tc.rcvd[dir]+i)
			if buf != nil && buf[i] != want {
				h.violate("byte-stream-corruption", tc,
					fmt.Sprintf("dir=%d offset=%d got=%#x want=%#x",
						dir, tc.rcvd[dir]+i, buf[i], want))
				tc.rcvd[dir] += n
				return
			}
		}
		tc.rcvd[dir] += n
	}
}

func (h *runner) violate(invariant string, tc *testConn, detail string) {
	if len(h.viol) >= maxViolations {
		return
	}
	h.viol = append(h.viol, Violation{
		Invariant: invariant, Endpoint: "harness",
		Flow: 0, Cycle: h.rig.R.Now(),
		Detail: fmt.Sprintf("conn %d: %s", tc.idx, detail),
	})
}

// runPhase applies one phase's fault profile and advances the clock,
// pumping the app and sampling invariants as it goes.
func (h *runner) runPhase(ph Phase) {
	h.rig.SetFaults(ph.Faults)
	h.rig.SetRSTEvery(ph.RstEvery)
	for i := 0; i < ph.Churn; i++ {
		h.churnOne()
	}
	h.advance(ph.Cycles, &ph, nil)
}

// churnOne aborts the longest-lived healthy connection and dials a
// replacement — deliberate state churn under whatever weather the phase
// brings.
func (h *runner) churnOne() {
	for _, tc := range h.conns {
		if tc.aborted || !tc.dial.Established() || tc.dial.Done() {
			continue
		}
		tc.aborted = true
		tc.dial.Abort()
		h.dialOne()
		return
	}
}

// advance steps the simulation `cycles` forward in small slices,
// pumping the application every slice and sampling TCB invariants every
// few slices. A nil phase means draining (no new sends). When pred is
// non-nil, advance returns early once it holds.
func (h *runner) advance(cycles int64, ph *Phase, pred func() bool) bool {
	const slice = 512
	const sampleEvery = 4
	for i := int64(0); i < cycles; i += slice {
		h.pump(ph)
		if i/slice%sampleEvery == 0 {
			now := h.rig.R.Now()
			h.trA.beginPass()
			h.trB.beginPass()
			h.rig.A.VisitTCBs(func(t *flow.TCB) { h.trA.observe(t, now) })
			h.rig.B.VisitTCBs(func(t *flow.TCB) { h.trB.observe(t, now) })
		}
		if pred != nil && pred() {
			return true
		}
		h.rig.R.Run(slice)
	}
	h.pump(ph)
	return pred != nil && pred()
}

// drainBudget bounds the post-storm settling time. Generous: worst case
// is a full RTO backoff chain after a heavy-loss phase (InitialRTO is
// 2.5 M cycles at 4 ns/cycle).
const drainBudget = 120_000_000

// drain clears all faults and requires the network to reach quiescence:
// every surviving connection delivers everything that was sent (in both
// directions, verified byte by byte), then closes cleanly; aborted
// connections' peers must learn of the reset. Returns false on timeout —
// a liveness failure.
func (h *runner) drain() bool {
	h.rig.SetFaults(netsim.Faults{})
	h.rig.SetRSTEvery(0)

	// 1: every in-flight byte arrives.
	settled := h.advance(drainBudget/2, nil, func() bool {
		for _, tc := range h.conns {
			if !h.bytesSettled(tc) {
				return false
			}
		}
		return true
	})
	if !settled {
		return false
	}

	// 2: orderly close drains to CLOSED on both sides.
	h.closing = true
	for _, tc := range h.conns {
		if !tc.aborted {
			h.closeBoth(tc)
		}
	}
	return h.advance(drainBudget/2, nil, func() bool {
		for _, tc := range h.conns {
			if !h.closeSettled(tc) {
				return false
			}
		}
		return true
	})
}

// closeBoth issues Close on each side of a connection at most once.
func (h *runner) closeBoth(tc *testConn) {
	if !tc.closedDial {
		tc.closedDial = true
		tc.dial.Close()
	}
	if tc.acc != nil && !tc.closedAcc {
		tc.closedAcc = true
		tc.acc.Close()
	}
}

// bytesSettled reports whether a connection has no data left in flight.
func (h *runner) bytesSettled(tc *testConn) bool {
	if tc.aborted {
		return true
	}
	if tc.dial.Reset() {
		return true // spurious reset; flagged in finalChecks
	}
	if tc.acc == nil {
		// Never accepted: only tolerable if it never got established
		// (e.g. dialed just before the storm ended and still in
		// handshake — it must finish during the close step instead).
		return !tc.dial.Established()
	}
	return tc.rcvd[0] == tc.sent[0] && tc.rcvd[1] == tc.sent[1]
}

// closeSettled reports whether a connection has fully terminated.
func (h *runner) closeSettled(tc *testConn) bool {
	if tc.aborted {
		// The aborting side freed instantly; the peer must have learned
		// via the RST (or an orphan-RST reply to its retransmissions).
		return tc.acc == nil || tc.acc.Done()
	}
	if !tc.dial.Done() {
		return false
	}
	return tc.acc == nil || tc.acc.Done()
}

// finalChecks turns end-state anomalies into violations: a failed drain
// is a liveness bug; a reset nobody asked for means a forged or stale
// RST got through validation.
func (h *runner) finalChecks(drained bool) {
	if !drained {
		for _, tc := range h.conns {
			if !h.bytesSettled(tc) || !h.closeSettled(tc) {
				h.violate("liveness-drain-timeout", tc, fmt.Sprintf(
					"sent=%v rcvd=%v aborted=%v accepted=%v",
					tc.sent, tc.rcvd, tc.aborted, tc.acc != nil))
			}
		}
		if len(h.viol) == 0 {
			h.viol = append(h.viol, Violation{
				Invariant: "liveness-drain-timeout", Endpoint: "harness",
				Cycle: h.rig.R.Now(), Detail: "network failed to quiesce",
			})
		}
	}
	for _, tc := range h.conns {
		if tc.aborted {
			continue
		}
		if tc.dial.Reset() {
			h.violate("unexpected-reset", tc, "dialer side reset without an abort")
		}
		if tc.acc != nil && tc.acc.Reset() {
			h.violate("unexpected-reset", tc, "acceptor side reset without an abort")
		}
	}
}
