package conformance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"f4t/internal/engine"
	"f4t/internal/netapi"
	"f4t/internal/netsim"
	"f4t/internal/pcap"
	"f4t/internal/sim"
	"f4t/internal/wire"
)

// FacadeConfig parameterizes one facade conformance run: concurrent
// net.Conn streams pushed through the netapi facade over an
// engine-engine rig, every echoed byte verified against its pattern.
// Like the chaos harness, identical configs produce identical runs.
type FacadeConfig struct {
	Seed  uint64
	Conns int // concurrent connections (dialed A→B)
	Bytes int // payload bytes per connection (client → server → back)

	// Shards > 1 runs the rig sharded; Noskip runs the serial
	// no-quiescence-skipping shadow kernel. The shard matrix test holds
	// every fabric to a bit-identical digest.
	Shards int
	Noskip bool

	// PCAPPath, when non-empty, writes the rig's link capture there.
	PCAPPath string

	// EndCycle normalizes the digest: after the workload finishes the
	// clock runs out to this cycle so late timers fire on every fabric.
	// <= 0 selects a default sized for the CI shapes.
	EndCycle int64
}

// DefaultFacadeConfig is the CI smoke shape.
func DefaultFacadeConfig() FacadeConfig {
	return FacadeConfig{Seed: 1, Conns: 3, Bytes: 20_000}
}

// FacadeResult is one facade run's verdict.
type FacadeResult struct {
	Violations []string
	Digest     string // fabric-comparable run fingerprint
	EndCycle   int64
	Frames     int // captured frames (0 without -pcap)
}

// Failed reports whether the run violated byte-exactness or liveness.
func (r FacadeResult) Failed() bool { return len(r.Violations) > 0 }

// facadeNetapiOptions widens the facade settle windows so a goroutine
// descheduled by a loaded machine cannot slip an op past its settle —
// the digests below are compared bit for bit across fabrics.
func facadeNetapiOptions(ip wire.Addr) netapi.Options {
	return netapi.Options{
		LocalIP:           ip,
		SettleQuantum:     200 * time.Microsecond,
		SettleQuietRounds: 5,
		SettleBusyWait:    5 * time.Millisecond,
	}
}

// facadePat is the deterministic payload byte at a stream offset.
func facadePat(conn, off int) byte { return byte(off)*5 + byte(conn*29+3) }

// RunFacade executes one facade conformance run. The workload is
// cfg.Conns concurrent client connections, each writing cfg.Bytes of
// patterned payload to an echo server while a concurrent reader
// verifies every echoed byte — the stream-level contract (ordering,
// no loss, no duplication) checked through the stdlib net.Conn surface
// instead of the raw socket API, under deterministic packet loss.
func RunFacade(cfg FacadeConfig) FacadeResult {
	if cfg.Conns <= 0 {
		cfg.Conns = 3
	}
	if cfg.Bytes <= 0 {
		cfg.Bytes = 20_000
	}
	if cfg.EndCycle <= 0 {
		cfg.EndCycle = 80_000_000
	}

	var fab sim.Fabric
	switch {
	case cfg.Shards > 1:
		fab = sim.NewSharded(cfg.Shards)
	case cfg.Noskip:
		fab = sim.NewShadow()
	default:
		fab = sim.New()
	}

	kA, kB := fab.IslandKernel(islandA), fab.IslandKernel(islandB)
	ipA, ipB := wire.MakeAddr(10, 9, 1, 1), wire.MakeAddr(10, 9, 1, 2)
	macA, macB := wire.MAC{2, 9, 1, 0, 0, 1}, wire.MAC{2, 9, 1, 0, 0, 2}
	link := netsim.NewLinkOn(fab, islandA, islandB, 100, 600, cfg.Seed*4+1)
	// Deterministic loss on the data-bearing direction: byte-exactness
	// must survive retransmission, not just a clean run.
	link.AtoB.SetFaults(netsim.Faults{DropEvery: 37})

	var capture *pcap.Capture
	if cfg.PCAPPath != "" {
		capture = pcap.New()
		capture.TapLink(link, "facade")
	}

	ecfg := engine.DefaultConfig()
	ecfg.Channels = 1
	ecfg.CarryBytes = true
	cfgA := ecfg
	cfgA.IP, cfgA.MAC, cfgA.Seed = ipA, macA, cfg.Seed*4+2
	cfgB := ecfg
	cfgB.IP, cfgB.MAC, cfgB.Seed = ipB, macB, cfg.Seed*4+3
	engA := engine.New(kA, cfgA, link.AtoB.Send)
	engB := engine.New(kB, cfgB, link.BtoA.Send)
	link.AtoB.SetSink(engB.DeliverPacket)
	link.BtoA.SetSink(engA.DeliverPacket)
	engA.LearnPeer(ipB, macB)
	engB.LearnPeer(ipA, macA)
	fab.RegisterOn(islandA, engA)
	fab.RegisterOn(islandB, engB)

	stA := netapi.NewEngineStack(fab, islandA, engA, 0, facadeNetapiOptions(ipA))
	stB := netapi.NewEngineStack(fab, islandB, engB, 0, facadeNetapiOptions(ipB))
	defer func() {
		stA.Shutdown()
		stB.Shutdown()
		stA.Wait()
		stB.Wait()
	}()

	res := FacadeResult{}
	var mu struct {
		viol [maxViolations]string
		n    atomic.Int32
	}
	violate := func(format string, args ...any) {
		if i := mu.n.Add(1) - 1; int(i) < len(mu.viol) {
			mu.viol[i] = fmt.Sprintf(format, args...)
		}
	}

	stB.Go(func() {
		ln, err := stB.Listen(rigPort)
		if err != nil {
			violate("listen: %v", err)
			return
		}
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			stB.Go(func() {
				io.Copy(c, c)
				c.Close()
			})
		}
	})

	sums := make([][]byte, cfg.Conns)
	var finished atomic.Int32
	for i := 0; i < cfg.Conns; i++ {
		idx := i
		stA.Go(func() {
			defer finished.Add(1)
			c, err := stA.DialAddr(ipB, rigPort)
			if err != nil {
				violate("conn %d: dial: %v", idx, err)
				return
			}
			defer c.Close()
			// Writer runs concurrently with the verifying reader: an
			// echo stream longer than the combined buffering would
			// deadlock a write-all-then-read-all client.
			stA.Go(func() {
				buf := make([]byte, 1024)
				for off := 0; off < cfg.Bytes; {
					n := len(buf)
					if cfg.Bytes-off < n {
						n = cfg.Bytes - off
					}
					for j := 0; j < n; j++ {
						buf[j] = facadePat(idx, off+j)
					}
					wn, err := c.Write(buf[:n])
					off += wn
					if err != nil {
						violate("conn %d: write at %d: %v", idx, off, err)
						return
					}
				}
			})
			sum := sha256.New()
			buf := make([]byte, 2048)
			for off := 0; off < cfg.Bytes; {
				n, err := c.Read(buf)
				for j := 0; j < n; j++ {
					if buf[j] != facadePat(idx, off+j) {
						violate("conn %d: byte-stream-corruption at %d: got %#x want %#x",
							idx, off+j, buf[j], facadePat(idx, off+j))
						return
					}
				}
				sum.Write(buf[:n])
				off += n
				if err != nil {
					violate("conn %d: read at %d: %v", idx, off, err)
					return
				}
			}
			sums[idx] = sum.Sum(nil)
		})
	}

	stB.Settle()
	stA.Settle()
	for finished.Load() < int32(cfg.Conns) && fab.Now() < cfg.EndCycle {
		fab.Run(20_000)
	}
	if finished.Load() < int32(cfg.Conns) {
		violate("liveness: %d of %d connections finished by cycle %d",
			finished.Load(), cfg.Conns, cfg.EndCycle)
	}
	// Normalize every fabric to the same end cycle before digesting.
	if rem := cfg.EndCycle - fab.Now(); rem > 0 {
		fab.Run(rem)
	}

	all := sha256.New()
	for _, s := range sums {
		all.Write(s)
	}
	res.EndCycle = fab.Now()
	res.Digest = fmt.Sprintf("end=%d conns=%d ab=%d/%dB ba=%d/%dB drops=%d/%d sha=%s",
		res.EndCycle, cfg.Conns,
		link.AtoB.SentPkts, link.AtoB.SentBytes,
		link.BtoA.SentPkts, link.BtoA.SentBytes,
		link.AtoB.DroppedPkts, link.BtoA.DroppedPkts,
		hex.EncodeToString(all.Sum(nil)))

	n := int(mu.n.Load())
	if n > len(mu.viol) {
		n = len(mu.viol)
	}
	res.Violations = append(res.Violations, mu.viol[:n]...)

	if capture != nil {
		res.Frames = capture.Frames()
		if err := capture.WriteFile(cfg.PCAPPath); err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("write pcap: %v", err))
		}
	}
	return res
}

// FacadeReplayCommand renders the exact command that reproduces a
// facade configuration.
func FacadeReplayCommand(cfg FacadeConfig) string {
	s := fmt.Sprintf("go run ./cmd/f4tconform -rig facade -seed %d -conns %d -bytes %d",
		cfg.Seed, cfg.Conns, cfg.Bytes)
	if cfg.Shards > 1 {
		s += fmt.Sprintf(" -shards %d", cfg.Shards)
	}
	if cfg.PCAPPath != "" {
		s += " -pcap " + cfg.PCAPPath
	}
	return s
}
