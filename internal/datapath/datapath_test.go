package datapath

import (
	"bytes"
	"testing"
	"testing/quick"

	"f4t/internal/flow"
	"f4t/internal/seqnum"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

func tupleN(i int) wire.FourTuple {
	return wire.FourTuple{
		LocalAddr:  wire.MakeAddr(10, 0, 0, 1),
		RemoteAddr: wire.MakeAddr(10, 0, byte(i>>8), byte(i)),
		LocalPort:  uint16(1000 + i),
		RemotePort: 80,
	}
}

func TestCuckooInsertLookupDelete(t *testing.T) {
	c := NewCuckooTable(4096, 1)
	const n = 3000
	for i := 0; i < n; i++ {
		if !c.Insert(tupleN(i), flow.ID(i)) {
			t.Fatalf("insert %d failed at load %d", i, c.Len())
		}
	}
	if c.Len() != n {
		t.Fatalf("len = %d, want %d", c.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := c.Lookup(tupleN(i))
		if !ok || v != flow.ID(i) {
			t.Fatalf("lookup %d = %d,%v", i, v, ok)
		}
	}
	// Delete the even half; odd must survive.
	for i := 0; i < n; i += 2 {
		if !c.Delete(tupleN(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := 0; i < n; i++ {
		_, ok := c.Lookup(tupleN(i))
		if (i%2 == 0) == ok {
			t.Fatalf("after delete: lookup %d = %v", i, ok)
		}
	}
}

func TestCuckooUpdateInPlace(t *testing.T) {
	c := NewCuckooTable(64, 2)
	c.Insert(tupleN(1), 10)
	c.Insert(tupleN(1), 20)
	if v, _ := c.Lookup(tupleN(1)); v != 20 {
		t.Fatalf("update = %d, want 20", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len after update = %d", c.Len())
	}
}

func TestCuckooModelEquivalence(t *testing.T) {
	// Against a map oracle under a random op sequence.
	c := NewCuckooTable(512, 3)
	oracle := map[wire.FourTuple]flow.ID{}
	err := quick.Check(func(ops []uint16) bool {
		for _, op := range ops {
			i := int(op % 300)
			k := tupleN(i)
			switch (op >> 9) % 3 {
			case 0:
				if c.Insert(k, flow.ID(i)) {
					oracle[k] = flow.ID(i)
				} else if _, exists := oracle[k]; exists {
					return false // insert of existing key must not fail
				}
			case 1:
				c.Delete(k)
				delete(oracle, k)
			case 2:
				v, ok := c.Lookup(k)
				want, wantOK := oracle[k]
				if ok != wantOK || (ok && v != want) {
					return false
				}
			}
		}
		return len(oracle) == c.Len()
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

// reassemblyOracle is a byte-level model: a set of received offsets.
type reassemblyOracle struct {
	base     seqnum.Value
	received map[uint32]bool
}

func (o *reassemblyOracle) insert(seq seqnum.Value, n int, wnd uint32) {
	for i := 0; i < n; i++ {
		off := uint32(seq.Add(seqnum.Size(i)).DistanceFrom(o.base))
		cur := o.contig()
		if off >= cur && off < cur+wnd {
			o.received[off] = true
		}
	}
}

func (o *reassemblyOracle) contig() uint32 {
	var n uint32
	for o.received[n] {
		n++
	}
	return n
}

func TestReassemblerMatchesOracle(t *testing.T) {
	err := quick.Check(func(chunks []uint16) bool {
		const base = seqnum.Value(10000)
		const wnd = 512
		r := NewReassembler(base)
		o := &reassemblyOracle{base: base, received: map[uint32]bool{}}
		for _, c := range chunks {
			off := int(c % 600)
			length := int(c>>9)%40 + 1
			seq := base.Add(seqnum.Size(off))
			r.Insert(seq, length, wnd)
			o.insert(seq, length, wnd)
			wantNxt := base.Add(seqnum.Size(o.contig()))
			if r.RcvNxt() != wantNxt {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReassemblerFlags(t *testing.T) {
	r := NewReassembler(1000)
	// In-order arrival advances.
	res := r.Insert(1000, 100, 1<<16)
	if !res.Admitted || !res.Advanced || res.OutOfOrder || res.Duplicate || res.NewRcvNxt != 1100 {
		t.Fatalf("in-order: %+v", res)
	}
	// Gap: stored but not advanced, demands a dup-ack.
	res = r.Insert(1300, 100, 1<<16)
	if !res.Admitted || res.Advanced || !res.OutOfOrder {
		t.Fatalf("gapped: %+v", res)
	}
	// Retransmission of old data: duplicate.
	res = r.Insert(1000, 50, 1<<16)
	if !res.Duplicate {
		t.Fatalf("retransmission: %+v", res)
	}
	// Fill the gap: boundary jumps over the parked chunk.
	res = r.Insert(1100, 200, 1<<16)
	if !res.Advanced || res.NewRcvNxt != 1400 || res.OutOfOrder {
		t.Fatalf("gap fill: %+v", res)
	}
	// Out-of-window data is dropped.
	res = r.Insert(1400+100000, 100, 1024)
	if res.Admitted {
		t.Fatalf("out-of-window admitted: %+v", res)
	}
}

func TestRingRoundTrip(t *testing.T) {
	r := NewRing(1 << 12)
	data := []byte("sequence-indexed ring buffer")
	r.WriteAt(100, data)
	if got := r.ReadAt(100, len(data)); !bytes.Equal(got, data) {
		t.Fatalf("read = %q", got)
	}
	// Wraparound at the ring edge.
	edge := seqnum.Value(1<<12 - 4)
	r.WriteAt(edge, []byte("12345678"))
	if got := r.ReadAt(edge, 8); !bytes.Equal(got, []byte("12345678")) {
		t.Fatalf("wrapped read = %q", got)
	}
	// Nil ring is a no-op (modelled mode).
	var nilRing *Ring
	nilRing.WriteAt(0, data)
	if nilRing.ReadAt(0, 10) != nil {
		t.Fatal("nil ring returned data")
	}
}

func mkParser() *Parser { return NewParser(64, 1<<16, 0, 5) }

func rxPacket(tuple wire.FourTuple, seq seqnum.Value, payload int, flags uint8, ack seqnum.Value, wnd uint16) *wire.Packet {
	return &wire.Packet{
		Kind: wire.KindTCP,
		IP:   wire.IPv4Header{Src: tuple.RemoteAddr, Dst: tuple.LocalAddr},
		TCP: wire.TCPHeader{
			SrcPort: tuple.RemotePort, DstPort: tuple.LocalPort,
			Seq: seq, Ack: ack, Flags: flags, Window: wnd,
		},
		PayloadLen: payload,
	}
}

func TestParserDigestsDataStream(t *testing.T) {
	p := mkParser()
	tup := tupleN(0)
	p.Register(tup, 1, nil)

	// SYN anchors reassembly.
	res := p.Parse(rxPacket(tup, 5000, 0, wire.FlagSYN, 0, 100))
	if res.NoFlow || res.Event.RxFlags&flow.RxSYN == 0 || res.Event.SynSeq != 5000 {
		t.Fatalf("SYN parse: %+v", res)
	}
	// In-order data advances the boundary.
	res = p.Parse(rxPacket(tup, 5001, 100, wire.FlagACK, 900, 100))
	if !res.Event.HasData || res.Event.RcvData != 5101 || res.Event.AckNow {
		t.Fatalf("in-order data: %+v", res.Event)
	}
	if !res.Event.HasAck || res.Event.Ack != 900 {
		t.Fatalf("ack digest: %+v", res.Event)
	}
	// Out-of-order data demands an immediate ACK and blocks coalescing.
	res = p.Parse(rxPacket(tup, 5301, 100, wire.FlagACK, 900, 100))
	if res.Event.HasData || !res.Event.AckNow || res.Event.Coalescable {
		t.Fatalf("ooo data: %+v", res.Event)
	}
	// Note: the second identical ACK above was a dup-ack candidate but it
	// carried payload; a pure repeated ACK is flagged IsDupAck.
	res = p.Parse(rxPacket(tup, 5401, 0, wire.FlagACK, 900, 100))
	if !res.Event.IsDupAck {
		t.Fatalf("pure dup ack not detected: %+v", res.Event)
	}
	// Gap fill merges through the parked chunk.
	res = p.Parse(rxPacket(tup, 5101, 200, wire.FlagACK, 900, 100))
	if !res.Event.HasData || res.Event.RcvData != 5401 {
		t.Fatalf("gap fill: %+v", res.Event)
	}
}

func TestParserFIN(t *testing.T) {
	p := mkParser()
	tup := tupleN(1)
	p.Register(tup, 2, nil)
	p.Parse(rxPacket(tup, 100, 0, wire.FlagSYN, 0, 10))
	res := p.Parse(rxPacket(tup, 101, 20, wire.FlagACK|wire.FlagFIN, 55, 10))
	if res.Event.RxFlags&flow.RxFIN == 0 || res.Event.FinSeq != 121 {
		t.Fatalf("FIN digest: %+v", res.Event)
	}
}

func TestParserUnknownFlow(t *testing.T) {
	p := mkParser()
	res := p.Parse(rxPacket(tupleN(9), 1, 10, wire.FlagACK, 0, 10))
	if !res.NoFlow {
		t.Fatal("unknown flow parsed")
	}
}

func TestParserWindowDrop(t *testing.T) {
	p := NewParser(16, 256, 0, 6) // tiny 256 B window
	tup := tupleN(2)
	p.Register(tup, 3, nil)
	p.Parse(rxPacket(tup, 100, 0, wire.FlagSYN, 0, 10))
	res := p.Parse(rxPacket(tup, 101+1000, 100, wire.FlagACK, 0, 10))
	if !res.Dropped || !res.Event.AckNow {
		t.Fatalf("out-of-window not dropped+acked: %+v", res)
	}
}

func TestGeneratorMSSSplit(t *testing.T) {
	g := NewGenerator(1460, 0)
	meta := FlowMeta{Tuple: tupleN(3), LocalMAC: wire.MAC{1}, PeerMAC: wire.MAC{2}}
	var pkts []*wire.Packet
	n := g.Build(tcpproc.SendOp{
		Seq: 1000, Len: 4000, Flags: wire.FlagACK | wire.FlagPSH, Ack: 500, Wnd: 20000,
	}, meta, nil, func(p *wire.Packet) { cp := *p; pkts = append(pkts, &cp) })
	if n != 3 || len(pkts) != 3 {
		t.Fatalf("split into %d packets, want 3", n)
	}
	wantSeqs := []seqnum.Value{1000, 2460, 3920}
	wantLens := []int{1460, 1460, 1080}
	for i, p := range pkts {
		if p.TCP.Seq != wantSeqs[i] || p.PayloadLen != wantLens[i] {
			t.Fatalf("segment %d: seq=%d len=%d", i, p.TCP.Seq, p.PayloadLen)
		}
		if i < 2 && p.TCP.Flags&wire.FlagPSH != 0 {
			t.Fatalf("PSH on non-final segment %d", i)
		}
	}
	if pkts[2].TCP.Flags&wire.FlagPSH == 0 {
		t.Fatal("final segment lost PSH")
	}
}

func TestGeneratorFINOnlyOnLastSegment(t *testing.T) {
	g := NewGenerator(1000, 0)
	meta := FlowMeta{Tuple: tupleN(4)}
	var flagsSeen []uint8
	g.Build(tcpproc.SendOp{Seq: 0, Len: 2500, Flags: wire.FlagACK | wire.FlagFIN},
		meta, nil, func(p *wire.Packet) { flagsSeen = append(flagsSeen, p.TCP.Flags) })
	for i, f := range flagsSeen {
		isLast := i == len(flagsSeen)-1
		if (f&wire.FlagFIN != 0) != isLast {
			t.Fatalf("FIN placement wrong: %v", flagsSeen)
		}
	}
}

func TestGeneratorWindowScaling(t *testing.T) {
	g := NewGenerator(1460, 5)
	meta := FlowMeta{Tuple: tupleN(5)}
	var got uint16
	g.Build(tcpproc.SendOp{Seq: 0, Len: 0, Flags: wire.FlagACK, Wnd: 512 * 1024},
		meta, nil, func(p *wire.Packet) { got = p.TCP.Window })
	if got != 512*1024>>5 {
		t.Fatalf("scaled window = %d", got)
	}
	// Saturation at the 16-bit field.
	g2 := NewGenerator(1460, 0)
	g2.Build(tcpproc.SendOp{Seq: 0, Len: 0, Flags: wire.FlagACK, Wnd: 1 << 20},
		meta, nil, func(p *wire.Packet) { got = p.TCP.Window })
	if got != 0xFFFF {
		t.Fatalf("unscaled saturation = %d", got)
	}
}

func TestGeneratorPayloadFetch(t *testing.T) {
	g := NewGenerator(8, 0)
	ring := NewRing(64)
	ring.WriteAt(0, []byte("0123456789abcdef"))
	meta := FlowMeta{Tuple: tupleN(6)}
	var payloads [][]byte
	g.Build(tcpproc.SendOp{Seq: 0, Len: 16, Flags: wire.FlagACK},
		meta,
		func(s seqnum.Value, buf []byte) { ring.ReadInto(s, buf) },
		func(p *wire.Packet) { payloads = append(payloads, p.Payload) })
	if len(payloads) != 2 || string(payloads[0]) != "01234567" || string(payloads[1]) != "89abcdef" {
		t.Fatalf("fetched payloads: %q", payloads)
	}
}

func TestARPResolveAndReply(t *testing.T) {
	a := NewARP(wire.MakeAddr(10, 0, 0, 1), wire.MAC{1})
	// Unresolved: emits one request, then holds.
	_, req, ok := a.Resolve(wire.MakeAddr(10, 0, 0, 2))
	if ok || req == nil || req.ARP.Op != wire.ARPRequest || req.Eth.Dst != wire.BroadcastMAC {
		t.Fatalf("first resolve: ok=%v req=%+v", ok, req)
	}
	_, req2, _ := a.Resolve(wire.MakeAddr(10, 0, 0, 2))
	if req2 != nil {
		t.Fatal("duplicate ARP request while one is pending")
	}
	// The peer's reply resolves it.
	reply := &wire.Packet{Kind: wire.KindARP, ARP: wire.ARPPacket{
		Op: wire.ARPReply, SenderMAC: wire.MAC{9}, SenderIP: wire.MakeAddr(10, 0, 0, 2),
	}}
	a.Handle(reply)
	mac, _, ok := a.Resolve(wire.MakeAddr(10, 0, 0, 2))
	if !ok || mac != (wire.MAC{9}) {
		t.Fatalf("post-reply resolve: %v %v", mac, ok)
	}
	// We answer requests for our own address.
	ask := &wire.Packet{Kind: wire.KindARP, ARP: wire.ARPPacket{
		Op: wire.ARPRequest, SenderMAC: wire.MAC{7}, SenderIP: wire.MakeAddr(10, 0, 0, 3),
		TargetIP: wire.MakeAddr(10, 0, 0, 1),
	}}
	ans := a.Handle(ask)
	if ans == nil || ans.ARP.Op != wire.ARPReply || ans.Eth.Dst != (wire.MAC{7}) {
		t.Fatalf("ARP reply: %+v", ans)
	}
	// And we learned the asker's mapping opportunistically.
	if mac, _, ok := a.Resolve(wire.MakeAddr(10, 0, 0, 3)); !ok || mac != (wire.MAC{7}) {
		t.Fatal("did not learn from request")
	}
}

func TestICMPEchoReply(t *testing.T) {
	me := wire.MakeAddr(10, 0, 0, 1)
	req := &wire.Packet{
		Kind: wire.KindICMP,
		Eth:  wire.EthHeader{Src: wire.MAC{5}},
		IP:   wire.IPv4Header{Src: wire.MakeAddr(10, 0, 0, 2), Dst: me},
		ICMP: wire.ICMPEcho{Type: wire.ICMPEchoRequest, ID: 3, Seq: 4},
		PayloadLen: 8, Payload: []byte("payload!"),
	}
	rep := HandleICMP(req, me, wire.MAC{1})
	if rep == nil || rep.ICMP.Type != wire.ICMPEchoReply || rep.ICMP.ID != 3 || rep.IP.Dst != req.IP.Src {
		t.Fatalf("echo reply: %+v", rep)
	}
	// Not addressed to us: ignored.
	req.IP.Dst = wire.MakeAddr(10, 0, 0, 9)
	if HandleICMP(req, me, wire.MAC{1}) != nil {
		t.Fatal("answered an echo not addressed to us")
	}
}
