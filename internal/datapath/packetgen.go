package datapath

import (
	"f4t/internal/seqnum"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

// FlowMeta is what the packet generator must know about a flow to build
// headers: addressing and the resolved destination MAC.
type FlowMeta struct {
	Tuple    wire.FourTuple
	LocalMAC wire.MAC
	PeerMAC  wire.MAC
}

// PayloadFetch copies len(buf) bytes at the given sequence from the
// flow's TX data buffer into buf (the DMA fetch of §4.1.2 ②). The
// generator passes each packet's own payload slot, so the steady-state
// TX path allocates nothing; nil fetch = modelled-only mode.
type PayloadFetch func(seq seqnum.Value, buf []byte)

// Generator is the TX packet generator: it turns FPU send requests into
// wire packets, generating TCP/IP headers and splitting transfers larger
// than the MSS (§4.1.2 TX data path). It is stateless per flow (only a
// running IP ID), so the hardware can pipeline and parallelize it.
type Generator struct {
	mss      uint32
	wndScale uint8
	ipID     uint16
	ecn      bool
}

// EnableECN makes generated data packets ECN-capable (ECT(0)), so
// switches can mark them instead of dropping (RFC 3168 / DCTCP).
func (g *Generator) EnableECN() { g.ecn = true }

// NewGenerator returns a generator with the given segmentation parameters.
func NewGenerator(mss uint32, wndScale uint8) *Generator {
	return &Generator{mss: mss, wndScale: wndScale}
}

// encodeWindow scales a byte window into the 16-bit header field.
func (g *Generator) encodeWindow(wnd uint32) uint16 {
	w := wnd >> g.wndScale
	if w > 0xFFFF {
		w = 0xFFFF
	}
	return uint16(w)
}

// Build expands one send operation into wire packets, invoking emit for
// each. fetch supplies payload bytes (nil fetch = modelled-only). It
// returns the number of packets generated.
func (g *Generator) Build(op tcpproc.SendOp, meta FlowMeta, fetch PayloadFetch, emit func(*wire.Packet)) int {
	base := wire.Packet{
		Kind: wire.KindTCP,
		Eth:  wire.EthHeader{Src: meta.LocalMAC, Dst: meta.PeerMAC, Type: wire.EtherTypeIPv4},
		IP: wire.IPv4Header{
			Src: meta.Tuple.LocalAddr, Dst: meta.Tuple.RemoteAddr,
			TTL: wire.DefaultTTL, Protocol: wire.ProtoTCP,
		},
	}
	count := 0
	remaining := op.Len
	seq := op.Seq
	for {
		segLen := remaining
		if segLen > g.mss {
			segLen = g.mss
		}
		last := remaining == segLen

		// Pooled: passing a stack packet's address to emit would force a
		// heap copy per segment. The engine's RX stage recycles it after
		// the receiver has consumed the frame (see wire.PutPacket).
		pkt := wire.GetPacket()
		pkt.CopyHeaderFrom(&base)
		g.ipID++
		pkt.IP.ID = g.ipID
		if g.ecn && segLen > 0 {
			pkt.IP.ECN = wire.ECNECT0
		}
		flags := op.Flags
		if !last {
			// Only the final split segment carries PSH/FIN semantics.
			flags &^= wire.FlagPSH | wire.FlagFIN
		}
		pkt.TCP = wire.TCPHeader{
			SrcPort: meta.Tuple.LocalPort,
			DstPort: meta.Tuple.RemotePort,
			Seq:     seq,
			Ack:     op.Ack,
			Flags:   flags,
			Window:  g.encodeWindow(op.Wnd),
		}
		pkt.PayloadLen = int(segLen)
		if fetch != nil && segLen > 0 {
			pkt.Payload = pkt.PayloadSlot(int(segLen))
			fetch(seq, pkt.Payload)
		}
		emit(pkt)
		count++

		if last {
			break
		}
		seq = seq.Add(seqnum.Size(segLen))
		remaining -= segLen
	}
	return count
}
