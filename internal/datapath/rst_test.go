package datapath

import (
	"testing"

	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

var (
	rstLocalIP  = wire.MakeAddr(10, 0, 0, 9)
	rstLocalMAC = wire.MAC{2, 0, 0, 0, 0, 9}
	rstPeerMAC  = wire.MAC{2, 0, 0, 0, 0, 8}
)

func orphan(flags uint8, seq, ack uint32, payload int) *wire.Packet {
	return &wire.Packet{
		Kind: wire.KindTCP,
		Eth:  wire.EthHeader{Src: rstPeerMAC, Dst: rstLocalMAC, Type: wire.EtherTypeIPv4},
		IP: wire.IPv4Header{
			Src: wire.MakeAddr(10, 0, 0, 8), Dst: rstLocalIP,
			TTL: 64, Protocol: wire.ProtoTCP,
		},
		TCP: wire.TCPHeader{
			SrcPort: 5555, DstPort: 80,
			Seq: seqnum.Value(seq), Ack: seqnum.Value(ack), Flags: flags,
		},
		PayloadLen: payload,
	}
}

// RFC 793 §3.4: if the orphan has an ACK, the reset takes its sequence
// number from that ACK field and carries no ACK of its own.
func TestOrphanRSTForAckSegment(t *testing.T) {
	rst := OrphanRST(orphan(wire.FlagACK, 1000, 2000, 100), rstLocalIP, rstLocalMAC)
	if rst == nil {
		t.Fatal("no RST for ACK-bearing orphan")
	}
	if rst.TCP.Flags != wire.FlagRST {
		t.Fatalf("flags = %#x, want bare RST", rst.TCP.Flags)
	}
	if got := uint32(rst.TCP.Seq); got != 2000 {
		t.Fatalf("RST seq = %d, want SEG.ACK = 2000", got)
	}
	if rst.TCP.SrcPort != 80 || rst.TCP.DstPort != 5555 {
		t.Fatalf("ports not mirrored: %d→%d", rst.TCP.SrcPort, rst.TCP.DstPort)
	}
}

// Without an ACK the reset sits at sequence zero and acknowledges the
// orphan's whole occupancy: payload plus one for SYN, so a dialer in
// SYN-SENT sees ACK == its SND.NXT and accepts the reset.
func TestOrphanRSTForSynSegment(t *testing.T) {
	rst := OrphanRST(orphan(wire.FlagSYN, 7000, 0, 0), rstLocalIP, rstLocalMAC)
	if rst == nil {
		t.Fatal("no RST for SYN orphan")
	}
	if rst.TCP.Flags != wire.FlagRST|wire.FlagACK {
		t.Fatalf("flags = %#x, want RST|ACK", rst.TCP.Flags)
	}
	if got := uint32(rst.TCP.Seq); got != 0 {
		t.Fatalf("RST seq = %d, want 0", got)
	}
	if got := uint32(rst.TCP.Ack); got != 7001 {
		t.Fatalf("RST ack = %d, want SEG.SEQ+1 = 7001", got)
	}
}

// A FIN-bearing data segment occupies payload + 1 sequence numbers.
func TestOrphanRSTForFinData(t *testing.T) {
	rst := OrphanRST(orphan(wire.FlagFIN, 5000, 0, 40), rstLocalIP, rstLocalMAC)
	if rst == nil {
		t.Fatal("no RST for FIN orphan")
	}
	if got := uint32(rst.TCP.Ack); got != 5041 {
		t.Fatalf("RST ack = %d, want SEG.SEQ+len+1 = 5041", got)
	}
}

// A reset never answers a reset — otherwise two endpoints with stale
// state would volley RSTs forever.
func TestOrphanRSTNeverAnswersRST(t *testing.T) {
	if rst := OrphanRST(orphan(wire.FlagRST, 1000, 0, 0), rstLocalIP, rstLocalMAC); rst != nil {
		t.Fatalf("RST answered with RST: %+v", rst.TCP)
	}
	if rst := OrphanRST(orphan(wire.FlagRST|wire.FlagACK, 1000, 2000, 0), rstLocalIP, rstLocalMAC); rst != nil {
		t.Fatalf("RST|ACK answered with RST: %+v", rst.TCP)
	}
}
