package datapath

import "f4t/internal/wire"

// ARP implements the address-resolution logic FtEngine carries for MAC
// resolution (§4.1.2): a cache, reply generation for requests naming our
// address, and request generation for unresolved destinations.
type ARP struct {
	localIP  wire.Addr
	localMAC wire.MAC
	cache    map[wire.Addr]wire.MAC
	pending  map[wire.Addr]bool
}

// NewARP returns an ARP handler for the given local identity.
func NewARP(ip wire.Addr, mac wire.MAC) *ARP {
	return &ARP{
		localIP:  ip,
		localMAC: mac,
		cache:    make(map[wire.Addr]wire.MAC),
		pending:  make(map[wire.Addr]bool),
	}
}

// Learn installs a static or observed mapping.
func (a *ARP) Learn(ip wire.Addr, mac wire.MAC) {
	a.cache[ip] = mac
	delete(a.pending, ip)
}

// Resolve returns the MAC for ip. When unresolved it returns a request
// packet to transmit (at most one outstanding per address) and ok=false.
func (a *ARP) Resolve(ip wire.Addr) (mac wire.MAC, request *wire.Packet, ok bool) {
	if m, hit := a.cache[ip]; hit {
		return m, nil, true
	}
	if a.pending[ip] {
		return wire.MAC{}, nil, false
	}
	a.pending[ip] = true
	return wire.MAC{}, &wire.Packet{
		Kind: wire.KindARP,
		Eth:  wire.EthHeader{Src: a.localMAC, Dst: wire.BroadcastMAC, Type: wire.EtherTypeARP},
		ARP: wire.ARPPacket{
			Op:        wire.ARPRequest,
			SenderMAC: a.localMAC,
			SenderIP:  a.localIP,
			TargetIP:  ip,
		},
	}, false
}

// Handle processes a received ARP packet, learning the sender's mapping
// and returning a reply packet when the request targets our address.
func (a *ARP) Handle(pkt *wire.Packet) *wire.Packet {
	p := &pkt.ARP
	a.Learn(p.SenderIP, p.SenderMAC)
	if p.Op == wire.ARPRequest && p.TargetIP == a.localIP {
		return &wire.Packet{
			Kind: wire.KindARP,
			Eth:  wire.EthHeader{Src: a.localMAC, Dst: p.SenderMAC, Type: wire.EtherTypeARP},
			ARP: wire.ARPPacket{
				Op:        wire.ARPReply,
				SenderMAC: a.localMAC,
				SenderIP:  a.localIP,
				TargetMAC: p.SenderMAC,
				TargetIP:  p.SenderIP,
			},
		}
	}
	return nil
}
