package datapath

import "f4t/internal/wire"

// HandleICMP answers echo requests addressed to us (FtEngine's ping
// diagnostics, §4.1.2) and returns the reply, or nil when no response is
// required.
func HandleICMP(pkt *wire.Packet, localIP wire.Addr, localMAC wire.MAC) *wire.Packet {
	if pkt.Kind != wire.KindICMP || pkt.ICMP.Type != wire.ICMPEchoRequest || pkt.IP.Dst != localIP {
		return nil
	}
	return &wire.Packet{
		Kind: wire.KindICMP,
		Eth:  wire.EthHeader{Src: localMAC, Dst: pkt.Eth.Src, Type: wire.EtherTypeIPv4},
		IP: wire.IPv4Header{
			Src: localIP, Dst: pkt.IP.Src,
			TTL: wire.DefaultTTL, Protocol: wire.ProtoICMP,
		},
		ICMP:       wire.ICMPEcho{Type: wire.ICMPEchoReply, ID: pkt.ICMP.ID, Seq: pkt.ICMP.Seq},
		PayloadLen: pkt.PayloadLen,
		Payload:    pkt.Payload,
	}
}
