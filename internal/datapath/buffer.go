package datapath

import "f4t/internal/seqnum"

// Ring is a sequence-indexed byte ring: the model of one flow's TCP data
// buffer in host hugepages (§4.1.1). Bytes are addressed by TCP sequence
// number; the ring holds one window's worth (the peer never sends beyond
// the advertised window, so live data always fits).
//
// A nil *Ring is valid and means "modelled-only" mode: throughput
// experiments skip byte copies entirely and only lengths travel.
type Ring struct {
	buf []byte
}

// NewRing allocates a ring of the given power-of-two size.
func NewRing(size int) *Ring {
	if size&(size-1) != 0 || size <= 0 {
		panic("datapath: ring size must be a positive power of two")
	}
	return &Ring{buf: make([]byte, size)}
}

// Size returns the ring capacity in bytes.
func (r *Ring) Size() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// WriteAt stores data at the given sequence position.
func (r *Ring) WriteAt(seq seqnum.Value, data []byte) {
	if r == nil || len(data) == 0 {
		return
	}
	mask := len(r.buf) - 1
	off := int(seq) & mask
	n := copy(r.buf[off:], data)
	if n < len(data) {
		copy(r.buf, data[n:])
	}
}

// ReadAt copies length bytes starting at the sequence position into a new
// slice. Returns nil for a nil ring (modelled-only mode).
func (r *Ring) ReadAt(seq seqnum.Value, length int) []byte {
	if r == nil || length == 0 {
		return nil
	}
	out := make([]byte, length)
	r.ReadInto(seq, out)
	return out
}

// ReadInto copies len(buf) bytes starting at the sequence position into
// the caller's buffer — the allocation-free form of ReadAt for hot read
// paths that own a destination buffer (netapi's net.Conn Read). A nil
// ring (modelled-only mode) leaves buf untouched.
func (r *Ring) ReadInto(seq seqnum.Value, buf []byte) {
	if r == nil || len(buf) == 0 {
		return
	}
	mask := len(r.buf) - 1
	off := int(seq) & mask
	n := copy(buf, r.buf[off:])
	if n < len(buf) {
		copy(buf[n:], r.buf)
	}
}
