package datapath

import (
	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

// OrphanRST builds the RFC 793 §3.4 reset answering a segment that
// matched no connection. When the orphan carries an ACK, the reset
// claims that acknowledged sequence number and needs no ACK of its own;
// otherwise it sits at sequence zero and acknowledges everything the
// orphan occupied — payload plus one for SYN and FIN each — so a peer
// in SYN-SENT recognizes it as covering its SYN. Returns nil for RST
// input (a reset never answers a reset).
func OrphanRST(pkt *wire.Packet, localIP wire.Addr, localMAC wire.MAC) *wire.Packet {
	if pkt.Kind != wire.KindTCP || pkt.TCP.Flags&wire.FlagRST != 0 {
		return nil
	}
	hdr := wire.TCPHeader{SrcPort: pkt.TCP.DstPort, DstPort: pkt.TCP.SrcPort}
	if pkt.TCP.Flags&wire.FlagACK != 0 {
		hdr.Seq = pkt.TCP.Ack
		hdr.Flags = wire.FlagRST
	} else {
		segLen := seqnum.Size(pkt.PayloadLen)
		if pkt.TCP.Flags&wire.FlagSYN != 0 {
			segLen++
		}
		if pkt.TCP.Flags&wire.FlagFIN != 0 {
			segLen++
		}
		hdr.Seq = 0
		hdr.Ack = pkt.TCP.Seq.Add(segLen)
		hdr.Flags = wire.FlagRST | wire.FlagACK
	}
	return &wire.Packet{
		Kind: wire.KindTCP,
		Eth:  wire.EthHeader{Src: localMAC, Dst: pkt.Eth.Src, Type: wire.EtherTypeIPv4},
		IP: wire.IPv4Header{
			Src: localIP, Dst: pkt.IP.Src,
			TTL: wire.DefaultTTL, Protocol: wire.ProtoTCP,
		},
		TCP: hdr,
	}
}
