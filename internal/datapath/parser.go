package datapath

import (
	"unsafe"

	"f4t/internal/flow"
	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

// parserFlow is the RX parser's per-flow shadow state: the reassembler,
// the last ACK/window seen (for duplicate-ACK detection), and the receive
// ring the parser DMAs payloads into (§4.1.2 RX data path). The
// reassembler is embedded (reasmStore) so one arena slot carries the
// whole per-flow footprint; reasm points at it once the SYN anchors the
// in-order boundary, and stays nil before that.
type parserFlow struct {
	id      flow.ID
	reasm   *Reassembler
	ring    *Ring
	lastAck seqnum.Value
	lastWnd uint32
	haveAck bool
	synSeen bool
	rcvBuf  uint32
	finSeen bool
	finSeq  seqnum.Value

	reasmStore Reassembler
}

// pfArenaChunk is the parser-flow arena granularity.
const pfArenaChunk = 256

// pfArena bump-allocates parserFlows in chunks and recycles released
// slots through a free list. Unlike the engine's TCB arena, reuse is
// safe here: nothing outside the parser retains a *parserFlow, and
// Deregister is the single release point. Recycled slots keep their
// reassembler's chunk buffers, so long-lived endpoints stop allocating
// per-connection once the churn working set is warm.
type pfArena struct {
	chunk  []parserFlow
	used   int
	free   []*parserFlow
	chunks int64 // chunks ever allocated (memory accounting)
}

func (a *pfArena) alloc() *parserFlow {
	if n := len(a.free); n > 0 {
		pf := a.free[n-1]
		a.free = a.free[:n-1]
		return pf
	}
	if a.used == len(a.chunk) {
		a.chunk = make([]parserFlow, pfArenaChunk)
		a.used = 0
		a.chunks++
	}
	pf := &a.chunk[a.used]
	a.used++
	return pf
}

func (a *pfArena) release(pf *parserFlow) {
	chunks, scratch := pf.reasmStore.chunks[:0], pf.reasmStore.scratch[:0]
	*pf = parserFlow{}
	pf.reasmStore.chunks, pf.reasmStore.scratch = chunks, scratch
	a.free = append(a.free, pf)
}

// ParseResult is what the RX parser hands the control path for one TCP
// packet: a digested event plus drop accounting.
type ParseResult struct {
	Event   flow.Event
	Dropped bool // payload did not fit the receive window
	NoFlow  bool // 4-tuple matched no registered flow
}

// Parser is the RX parser: cuckoo flow lookup, per-flow reassembly, and
// event digestion. Both the engine (with pipeline timing) and the
// software stack (with CPU costs) drive this same logic.
type Parser struct {
	table    *CuckooTable
	flows    map[flow.ID]*parserFlow
	arena    pfArena
	wndScale uint8
	rcvBuf   uint32
}

// NewParser returns a parser that accepts up to maxFlows concurrent
// connections. Storage (flow table, per-flow arena) starts small and
// grows with registrations, so the bound can be generous.
func NewParser(maxFlows int, rcvBuf uint32, wndScale uint8, seed uint64) *Parser {
	return &Parser{
		table:    NewCuckooTable(maxFlows, seed),
		flows:    make(map[flow.ID]*parserFlow),
		wndScale: wndScale,
		rcvBuf:   rcvBuf,
	}
}

// Register installs a flow in the lookup table. ring may be nil for
// modelled-only transfers. For active opens the in-order boundary is not
// known yet; it is set when the peer's SYN arrives.
func (p *Parser) Register(t wire.FourTuple, id flow.ID, ring *Ring) bool {
	if !p.table.Insert(t, id) {
		return false
	}
	pf := p.arena.alloc()
	pf.id, pf.ring, pf.rcvBuf = id, ring, p.rcvBuf
	p.flows[id] = pf
	return true
}

// Deregister removes a flow from the lookup table and recycles its
// arena slot.
func (p *Parser) Deregister(t wire.FourTuple, id flow.ID) {
	p.table.Delete(t)
	if pf := p.flows[id]; pf != nil {
		p.arena.release(pf)
	}
	delete(p.flows, id)
}

// Lookup exposes the flow table (used by tests and the engine's RSS).
func (p *Parser) Lookup(t wire.FourTuple) (flow.ID, bool) { return p.table.Lookup(t) }

// Flows returns the number of registered flows.
func (p *Parser) Flows() int { return len(p.flows) }

// Ring returns a flow's receive ring (nil in modelled-only mode).
func (p *Parser) Ring(id flow.ID) *Ring {
	if f := p.flows[id]; f != nil {
		return f.ring
	}
	return nil
}

// TableStats exposes the flow table's occupancy counters.
func (p *Parser) TableStats() CuckooStats { return p.table.Stats() }

// ParserMem is the parser's allocated per-flow footprint.
type ParserMem struct {
	TableEntries int64 // resident flow-table entries
	TableBytes   int64 // flow-table slots + stash (allocated, not just used)
	FlowCount    int64 // registered flows
	FlowBytes    int64 // parser-flow arena chunks (embedded reassemblers included)
	ReasmBytes   int64 // out-of-order chunk buffers beyond the embedded structs
}

// Mem reports the parser's memory accounting. The reassembler scan is
// O(flows); call it from snapshots, not per packet.
func (p *Parser) Mem() ParserMem {
	m := ParserMem{
		TableEntries: int64(p.table.Len()),
		TableBytes:   p.table.MemBytes(),
		FlowCount:    int64(len(p.flows)),
		FlowBytes:    p.arena.chunks * pfArenaChunk * int64(unsafe.Sizeof(parserFlow{})),
	}
	for _, pf := range p.flows {
		m.ReasmBytes += pf.reasmStore.MemBytes()
	}
	return m
}

// Parse digests one received TCP packet into a control-path event,
// performing window admission, payload DMA, logical reassembly and
// duplicate-ACK detection. It mirrors §4.1.2: data is written to the
// buffer whether or not it is in order; the application is notified only
// of the in-order boundary.
func (p *Parser) Parse(pkt *wire.Packet) ParseResult {
	tuple := pkt.Tuple()
	id, ok := p.table.Lookup(tuple)
	if !ok {
		return ParseResult{NoFlow: true}
	}
	pf := p.flows[id]
	if pf == nil {
		return ParseResult{NoFlow: true}
	}

	ev := flow.Event{Kind: flow.EvRx, Flow: id, Coalescable: true}
	hdr := &pkt.TCP

	// Connection flags. An RST carries its sequence number (and ack, if
	// present) through the event so the FPU can validate it against the
	// receive window before honouring the abort (RFC 793 §3.4).
	if hdr.Flags&wire.FlagRST != 0 {
		ev.RxFlags |= flow.RxRST
		ev.RstSeq = hdr.Seq
		if hdr.Flags&wire.FlagACK != 0 {
			ev.RstHasAck = true
			ev.RstAck = hdr.Ack
		}
		ev.Coalescable = false
		return ParseResult{Event: ev}
	}
	if hdr.Flags&wire.FlagSYN != 0 {
		ev.RxFlags |= flow.RxSYN
		ev.SynSeq = hdr.Seq
		ev.Coalescable = false
		if !pf.synSeen {
			pf.synSeen = true
			pf.reasmStore.Reset(hdr.Seq.Add(1))
			pf.reasm = &pf.reasmStore
		}
	}

	// ECN: congestion-experienced marks on data and echo flags on acks
	// are conveyed as counters (they must never coalesce away).
	if pkt.IP.ECN == wire.ECNCE && pkt.PayloadLen > 0 {
		ev.CE = true
		ev.Coalescable = false
	}
	if hdr.Flags&wire.FlagECE != 0 && hdr.Flags&wire.FlagACK != 0 {
		ev.ECE = true
		ev.Coalescable = false
	}

	// ACK and window (latest value wins downstream).
	if hdr.Flags&wire.FlagACK != 0 {
		wnd := uint32(hdr.Window) << p.wndScale
		payload := pkt.PayloadLen
		isDup := payload == 0 &&
			hdr.Flags&(wire.FlagSYN|wire.FlagFIN) == 0 &&
			pf.haveAck && hdr.Ack == pf.lastAck && wnd == pf.lastWnd
		if isDup {
			ev.IsDupAck = true
			ev.Coalescable = false // increments must not merge away
		} else {
			ev.HasAck = true
			ev.Ack = hdr.Ack
		}
		ev.HasWnd = true
		ev.Wnd = wnd
		pf.lastAck, pf.lastWnd, pf.haveAck = hdr.Ack, wnd, true
	}

	dropped := false
	if pkt.PayloadLen > 0 {
		if pf.reasm == nil {
			// Data before any SYN: nothing to anchor reassembly to.
			dropped = true
			ev.AckNow = true
			ev.Coalescable = false
		} else {
			res := pf.reasm.Insert(hdr.Seq, pkt.PayloadLen, pf.rcvBuf)
			if res.Admitted {
				// DMA the payload into the receive ring regardless of
				// order (§4.1.2); reassembly is logical.
				if pf.ring != nil && pkt.Payload != nil {
					pf.ring.WriteAt(hdr.Seq, pkt.Payload)
				}
			} else {
				dropped = true
			}
			if res.Advanced {
				ev.HasData = true
				ev.RcvData = res.NewRcvNxt
			}
			if res.OutOfOrder || res.Duplicate || !res.Admitted {
				// Gaps, retransmissions and out-of-window arrivals all
				// demand an immediate (duplicate) ACK.
				ev.AckNow = true
				ev.Coalescable = false
			}
		}
	}

	// FIN: record its sequence (end of payload); deliver the flag only —
	// the FPU consumes it once in order.
	if hdr.Flags&wire.FlagFIN != 0 {
		finSeq := hdr.Seq.Add(seqnum.Size(pkt.PayloadLen))
		if !pf.finSeen {
			pf.finSeen = true
			pf.finSeq = finSeq
		}
		ev.RxFlags |= flow.RxFIN
		ev.FinSeq = finSeq
		ev.Coalescable = false
		if pf.reasm != nil && finSeq == pf.reasm.RcvNxt() {
			pf.reasm.AdvanceTo(finSeq.Add(1))
		}
	}

	return ParseResult{Event: ev, Dropped: dropped}
}
