package datapath

import (
	"testing"

	"f4t/internal/flow"
	"f4t/internal/sim"
	"f4t/internal/wire"
)

// churnTuple spreads keys across addresses and ports so the hash
// functions see realistic variety.
func churnTuple(i uint64) wire.FourTuple {
	return wire.FourTuple{
		LocalAddr:  wire.MakeAddr(10, 3, byte(i>>16), byte(i>>24)),
		RemoteAddr: wire.MakeAddr(10, 4, byte(i>>8), byte(i)),
		LocalPort:  uint16(i*7 + 1),
		RemotePort: uint16(i >> 32),
	}
}

// verifyAll checks every shadow-resident key is findable with the right
// value and that Len matches the shadow exactly.
func verifyAll(t *testing.T, c *CuckooTable, shadow map[wire.FourTuple]flow.ID) {
	t.Helper()
	if c.Len() != len(shadow) {
		t.Fatalf("Len() = %d, shadow has %d (stats %+v)", c.Len(), len(shadow), c.Stats())
	}
	for k, v := range shadow {
		got, ok := c.Lookup(k)
		if !ok {
			t.Fatalf("resident key %v lost (stats %+v)", k, c.Stats())
		}
		if got != v {
			t.Fatalf("key %v = %d, want %d", k, got, v)
		}
	}
}

// TestCuckooNoVictimLoss is the regression test for the silent-eviction
// bug: the old Insert, on a displacement chain that exhausted maxKicks,
// either dropped the chain's victim while reporting success for the new
// key, or re-placed the victim without counting it. Driving the table
// well past its nominal capacity forces those chains; the invariant is
// that every key ever acknowledged with Insert==true stays findable
// until deleted, and Len() never drifts from a shadow map.
func TestCuckooNoVictimLoss(t *testing.T) {
	const cap = 768
	c := NewCuckooTable(cap, 42)
	shadow := map[wire.FourTuple]flow.ID{}
	var refused int
	for i := uint64(0); i < 4*cap; i++ {
		k := churnTuple(i)
		if c.Insert(k, flow.ID(i)) {
			shadow[k] = flow.ID(i)
		} else {
			refused++
			// A refused insert must refuse cleanly: the key absent, no
			// resident casualty.
			if _, ok := c.Lookup(k); ok {
				t.Fatalf("refused insert %d is nevertheless findable", i)
			}
			verifyAll(t, c, shadow)
		}
		if i%64 == 0 {
			verifyAll(t, c, shadow)
		}
	}
	verifyAll(t, c, shadow)
	if refused == 0 {
		t.Fatal("capacity bound never engaged — the test did not stress the table")
	}
	if got := c.Stats().FullDrops; got != int64(refused) {
		t.Fatalf("FullDrops = %d, want %d", got, refused)
	}
	if len(shadow) != cap {
		t.Fatalf("resident = %d, want the capacity bound %d", len(shadow), cap)
	}
}

// TestCuckooHighLoadChurn drives the table to its capacity bound —
// 93.75 % of the slot ceiling by construction — and then churns
// deletions against fresh inserts while every resident key must remain
// findable. This is the ≥90 % load-factor regime a 2^20-flow sweep
// operates the flow table in.
func TestCuckooHighLoadChurn(t *testing.T) {
	// 15360 = 16384 * 15/16: the growth ceiling lands on 16384 slots, so
	// a full table sits at exactly the watermark load factor.
	const cap = 15360
	c := NewCuckooTable(cap, 7)
	shadow := map[wire.FourTuple]flow.ID{}
	keys := make([]wire.FourTuple, 0, cap)
	next := uint64(0)
	for len(shadow) < cap {
		k := churnTuple(next)
		if !c.Insert(k, flow.ID(next)) {
			t.Fatalf("insert refused below capacity at %d resident", len(shadow))
		}
		shadow[k] = flow.ID(next)
		keys = append(keys, k)
		next++
	}
	verifyAll(t, c, shadow)

	st := c.Stats()
	if load := float64(st.Size) / float64(st.Slots); load < 0.9 {
		t.Fatalf("load factor %.3f < 0.9 (size %d, slots %d)", load, st.Size, st.Slots)
	}
	if st.Resizes == 0 {
		t.Fatal("table never grew — amortized resize path untested")
	}

	// Churn at full load: delete a batch, insert replacements, verify.
	rng := sim.NewRand(99)
	for round := 0; round < 20; round++ {
		for b := 0; b < 512; b++ {
			i := rng.Intn(len(keys))
			k := keys[i]
			if _, resident := shadow[k]; !resident {
				continue // already churned out this round
			}
			if !c.Delete(k) {
				t.Fatalf("round %d: delete of resident key failed", round)
			}
			delete(shadow, k)
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		}
		for len(shadow) < cap {
			k := churnTuple(next)
			if !c.Insert(k, flow.ID(next)) {
				t.Fatalf("round %d: refill refused at %d resident", round, len(shadow))
			}
			shadow[k] = flow.ID(next)
			keys = append(keys, k)
			next++
		}
		verifyAll(t, c, shadow)
	}
	if c.Stats().Kicks == 0 {
		t.Fatal("no displacement chains ran — the churn never stressed the table")
	}
}

// TestCuckooGrowthFromSmall checks a table declared for many flows
// starts tiny and pays for slots only as entries arrive.
func TestCuckooGrowthFromSmall(t *testing.T) {
	c := NewCuckooTable(1<<20, 5)
	if s := c.Stats().Slots; s > 256 {
		t.Fatalf("fresh table has %d slots — should start small", s)
	}
	base := c.MemBytes()
	for i := uint64(0); i < 50_000; i++ {
		if !c.Insert(churnTuple(i), flow.ID(i)) {
			t.Fatalf("insert %d refused", i)
		}
	}
	st := c.Stats()
	if st.Resizes == 0 {
		t.Fatal("no resizes recorded")
	}
	if c.MemBytes() <= base {
		t.Fatal("MemBytes did not track growth")
	}
	// Footprint stays proportional: no more than ~2 slots per entry even
	// right after a doubling.
	if st.Slots > 4*st.Size {
		t.Fatalf("slots %d > 4x size %d — growth overshoots", st.Slots, st.Size)
	}
	for i := uint64(0); i < 50_000; i++ {
		if v, ok := c.Lookup(churnTuple(i)); !ok || v != flow.ID(i) {
			t.Fatalf("key %d lost across growth", i)
		}
	}
}

// FuzzCuckoo runs arbitrary insert/delete/lookup sequences against a
// shadow map. Three bytes encode one op: selector, then a 10-bit key
// index (a small key space forces collisions and displacement chains).
func FuzzCuckoo(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 2, 0, 1, 1, 0, 2, 2, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 2, 0, 0, 3, 1, 0, 0, 2, 0, 0})
	seed := make([]byte, 0, 3*300)
	for i := 0; i < 300; i++ {
		seed = append(seed, 0, byte(i), byte(i>>8))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		const cap = 96 // small bound so the fuzzer reaches it quickly
		c := NewCuckooTable(cap, 1234)
		shadow := map[wire.FourTuple]flow.ID{}
		for i := 0; i+2 < len(data); i += 3 {
			idx := uint64(data[i+1]) | uint64(data[i+2]&3)<<8
			k := churnTuple(idx)
			switch data[i] % 3 {
			case 0:
				ok := c.Insert(k, flow.ID(idx))
				_, existed := shadow[k]
				if existed && !ok {
					t.Fatal("insert of resident key refused")
				}
				if !existed && !ok && len(shadow) < cap {
					t.Fatalf("insert refused below capacity (%d resident)", len(shadow))
				}
				if ok {
					shadow[k] = flow.ID(idx)
				}
			case 1:
				got := c.Delete(k)
				_, want := shadow[k]
				if got != want {
					t.Fatalf("delete = %v, shadow says %v", got, want)
				}
				delete(shadow, k)
			case 2:
				v, ok := c.Lookup(k)
				want, wantOK := shadow[k]
				if ok != wantOK || (ok && v != want) {
					t.Fatalf("lookup = %d,%v want %d,%v", v, ok, want, wantOK)
				}
			}
		}
		if c.Len() != len(shadow) {
			t.Fatalf("Len %d != shadow %d", c.Len(), len(shadow))
		}
		for k, v := range shadow {
			if got, ok := c.Lookup(k); !ok || got != v {
				t.Fatalf("resident key lost at end")
			}
		}
	})
}
