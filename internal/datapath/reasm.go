package datapath

import (
	"unsafe"

	"f4t/internal/seqnum"
)

// chunk is a contiguous received byte range [start, end) beyond the
// in-order boundary.
type chunk struct {
	start, end seqnum.Value
}

// Reassembler tracks out-of-sequence data chunks for one flow and merges
// arrivals into their neighbours, advancing the in-order boundary without
// touching payload bytes — the paper's "logical reassembly" (§4.1.2 RX
// data path).
type Reassembler struct {
	rcvNxt  seqnum.Value
	chunks  []chunk // sorted, disjoint, all strictly beyond rcvNxt
	scratch []chunk // Insert's merge buffer, swapped with chunks each merge
}

// InsertResult reports what one segment arrival did.
type InsertResult struct {
	Admitted   bool         // payload stored in the buffer (fully or clipped)
	Advanced   bool         // the in-order boundary moved
	NewRcvNxt  seqnum.Value // boundary after the insert
	OutOfOrder bool         // segment left a gap (stored beyond the boundary)
	Duplicate  bool         // segment contained no new bytes
}

// NewReassembler starts tracking at the given initial in-order boundary
// (peer ISN + 1).
func NewReassembler(rcvNxt seqnum.Value) *Reassembler {
	return &Reassembler{rcvNxt: rcvNxt}
}

// Reset re-anchors the reassembler at a new in-order boundary, keeping
// its chunk buffers for reuse (the parser-flow arena recycles embedded
// reassemblers across connections).
func (r *Reassembler) Reset(rcvNxt seqnum.Value) {
	r.rcvNxt = rcvNxt
	r.chunks = r.chunks[:0]
	r.scratch = r.scratch[:0]
}

// MemBytes returns the out-of-order bookkeeping footprint beyond the
// struct itself: the capacity of both chunk buffers.
func (r *Reassembler) MemBytes() int64 {
	return int64(cap(r.chunks)+cap(r.scratch)) * int64(unsafe.Sizeof(chunk{}))
}

// RcvNxt returns the current in-order boundary.
func (r *Reassembler) RcvNxt() seqnum.Value { return r.rcvNxt }

// Pending returns the number of buffered out-of-order chunks.
func (r *Reassembler) Pending() int { return len(r.chunks) }

// PendingBytes returns the total bytes waiting beyond the boundary.
func (r *Reassembler) PendingBytes() int {
	var n seqnum.Size
	for _, c := range r.chunks {
		n += c.end.DistanceFrom(c.start)
	}
	return int(n)
}

// Insert records the arrival of payload [seq, seq+length) given the
// receive window [rcvNxt, rcvNxt+wnd). Data outside the window is
// clipped; entirely-outside segments are dropped (Admitted=false), which
// is the parser's admission rule (§4.1.2).
func (r *Reassembler) Insert(seq seqnum.Value, length int, wnd uint32) InsertResult {
	res := InsertResult{NewRcvNxt: r.rcvNxt}
	if length <= 0 {
		res.Duplicate = true
		return res
	}
	start, end := seq, seq.Add(seqnum.Size(length))
	winEnd := r.rcvNxt.Add(seqnum.Size(wnd))

	// Clip to [rcvNxt, winEnd).
	if start.LessThan(r.rcvNxt) {
		start = r.rcvNxt
	}
	if end.GreaterThan(winEnd) {
		end = winEnd
	}
	if !end.GreaterThan(start) {
		// Nothing new: retransmission of acked data or beyond the window.
		res.Duplicate = true
		return res
	}
	res.Admitted = true

	// Fast path: an in-order arrival with nothing parked — the steady
	// state of a well-behaved flow — just moves the boundary. The merge
	// machinery below would allocate a one-element list and immediately
	// drain it, and this runs once per received segment.
	if len(r.chunks) == 0 && start == r.rcvNxt {
		r.rcvNxt = end
		res.Advanced = true
		res.NewRcvNxt = end
		return res
	}

	coveredBefore := r.PendingBytes()

	// Merge [start, end) into the chunk list: absorb every chunk that
	// overlaps or touches the new range, keep the rest in order. The
	// output buffer is recycled (swapped with chunks each merge).
	merged := r.scratch[:0]
	placed := false
	for _, c := range r.chunks {
		switch {
		case end.LessThan(c.start): // new range ends strictly before c
			if !placed {
				merged = append(merged, chunk{start, end})
				placed = true
			}
			merged = append(merged, c)
		case c.end.LessThan(start): // c ends strictly before the new range
			merged = append(merged, c)
		default: // overlap or touch: absorb c into the new range
			if c.start.LessThan(start) {
				start = c.start
			}
			if c.end.GreaterThan(end) {
				end = c.end
			}
		}
	}
	if !placed {
		merged = append(merged, chunk{start, end})
	}
	r.scratch = r.chunks[:0]
	r.chunks = merged

	// Advance the boundary through any chunk now touching it.
	var advance seqnum.Size
	for len(r.chunks) > 0 && r.chunks[0].start.LessThanEq(r.rcvNxt) {
		if r.chunks[0].end.GreaterThan(r.rcvNxt) {
			advance += r.chunks[0].end.DistanceFrom(r.rcvNxt)
			r.rcvNxt = r.chunks[0].end
			res.Advanced = true
		}
		r.chunks = r.chunks[1:]
	}

	// Newness: the merge either grew coverage beyond the boundary or
	// moved the boundary itself; otherwise every byte was already held.
	if r.PendingBytes()+int(advance) <= coveredBefore {
		res.Duplicate = true
	}
	res.NewRcvNxt = r.rcvNxt
	res.OutOfOrder = len(r.chunks) > 0
	return res
}

// AdvanceTo force-advances the boundary (used when the FIN consumes a
// sequence number after the data stream ends).
func (r *Reassembler) AdvanceTo(v seqnum.Value) {
	if v.GreaterThan(r.rcvNxt) {
		r.rcvNxt = v
	}
	for len(r.chunks) > 0 && r.chunks[0].end.LessThanEq(r.rcvNxt) {
		r.chunks = r.chunks[1:]
	}
}
