// Package datapath implements the protocol data-path logic FtEngine and
// the software stack share: cuckoo-hash flow lookup, out-of-order
// reassembly bookkeeping, the RX parser that digests packets into TCP
// events, the TX packet generator, ARP resolution and ICMP echo
// (§4.1.2). The hardware engine wraps these in cycle-accurate pipeline
// models; the software stack wraps them in CPU cost accounting.
package datapath

import (
	"fmt"
	"unsafe"

	"f4t/internal/flow"
	"f4t/internal/sim"
	"f4t/internal/wire"
)

// cuckooWays is the bucket associativity, matching the Xilinx HLS packet
// processing library's table the paper references [3].
const cuckooWays = 4

// maxKicks bounds displacement chains before the homeless entry falls
// into the stash.
const maxKicks = 64

// cuckooStashHigh is the stash occupancy that triggers a resize: a
// handful of parked entries is normal near the load watermark, a growing
// pile means the table is genuinely too small.
const cuckooStashHigh = 8

// cuckooInitialBuckets is the starting table size (64 slots). Tables
// declared for millions of flows start this small and double on demand,
// so a mostly-idle endpoint does not pay its worst-case footprint.
const cuckooInitialBuckets = 16

type cuckooEntry struct {
	key   wire.FourTuple
	val   flow.ID
	inUse bool
}

// CuckooStats describes table occupancy and lifetime behaviour.
type CuckooStats struct {
	Size      int   // resident entries (buckets + stash)
	Slots     int   // bucket slots allocated
	Stash     int   // entries currently parked in the stash
	StashPeak int   // high-water stash occupancy
	Kicks     int64 // displacement-chain evictions performed
	Stashed   int64 // displacement chains that ended in the stash
	Resizes   int64 // table doublings
	FullDrops int64 // inserts refused at the capacity bound
}

// CuckooTable maps 4-tuples to flow IDs with two hash functions and
// 4-way buckets — the RX parser's flow lookup structure (§4.1.2). The
// table is growable: it starts small, doubles when occupancy crosses a
// load-factor watermark (15/16 of slots) or the stash fills, and stops
// growing at the size needed for its declared capacity. A displacement
// chain that exhausts maxKicks parks the homeless entry in the stash
// instead of dropping it, so a resident key is never silently lost;
// Insert reports false only at the capacity bound, and counts it.
type CuckooTable struct {
	buckets [][cuckooWays]cuckooEntry
	mask    uint64
	stash   []cuckooEntry
	size    int
	max     int // capacity bound (Insert refuses beyond it)
	capnb   int // bucket-count ceiling derived from max
	rng     *sim.Rand

	stashPeak int
	kicks     int64
	stashed   int64
	resizes   int64
	fullDrops int64
}

// NewCuckooTable returns a table that accepts up to n entries. Storage
// starts small and grows by doubling as flows register; the capacity
// bound n caps both growth and Len().
func NewCuckooTable(n int, seed uint64) *CuckooTable {
	if n < 1 {
		n = 1
	}
	// Bucket ceiling: enough slots that the watermark (15/16 occupancy)
	// is not crossed before n entries are resident.
	capnb := 1
	for capnb*cuckooWays*15 < n*16 {
		capnb <<= 1
	}
	nb := cuckooInitialBuckets
	if nb > capnb {
		nb = capnb
	}
	return &CuckooTable{
		buckets: make([][cuckooWays]cuckooEntry, nb),
		mask:    uint64(nb - 1),
		max:     n,
		capnb:   capnb,
		rng:     sim.NewRand(seed),
	}
}

func (c *CuckooTable) h1(k wire.FourTuple) uint64 { return k.Hash() & c.mask }
func (c *CuckooTable) h2(k wire.FourTuple) uint64 {
	h := k.Hash()
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 29
	return h & c.mask
}

// Len returns the number of stored entries.
func (c *CuckooTable) Len() int { return c.size }

// Cap returns the capacity bound Insert enforces.
func (c *CuckooTable) Cap() int { return c.max }

// Stats returns occupancy and lifetime counters.
func (c *CuckooTable) Stats() CuckooStats {
	return CuckooStats{
		Size:      c.size,
		Slots:     len(c.buckets) * cuckooWays,
		Stash:     len(c.stash),
		StashPeak: c.stashPeak,
		Kicks:     c.kicks,
		Stashed:   c.stashed,
		Resizes:   c.resizes,
		FullDrops: c.fullDrops,
	}
}

// EntryBytes returns the in-memory size of one table entry.
func (c *CuckooTable) EntryBytes() int64 { return int64(unsafe.Sizeof(cuckooEntry{})) }

// MemBytes returns the table's allocated footprint: every bucket slot
// (occupied or not) plus the stash's capacity.
func (c *CuckooTable) MemBytes() int64 {
	return int64(len(c.buckets)*cuckooWays+cap(c.stash)) * c.EntryBytes()
}

// Lookup returns the flow ID for the tuple.
func (c *CuckooTable) Lookup(k wire.FourTuple) (flow.ID, bool) {
	for _, b := range []uint64{c.h1(k), c.h2(k)} {
		for i := range c.buckets[b] {
			e := &c.buckets[b][i]
			if e.inUse && e.key == k {
				return e.val, true
			}
		}
	}
	for i := range c.stash {
		if c.stash[i].key == k {
			return c.stash[i].val, true
		}
	}
	return 0, false
}

// Insert adds or updates a mapping. It reports false only when the table
// is at its capacity bound (counted in Stats().FullDrops); a true return
// guarantees the key — and every previously resident key — is findable.
func (c *CuckooTable) Insert(k wire.FourTuple, v flow.ID) bool {
	// Update in place if present (buckets, then stash).
	for _, b := range []uint64{c.h1(k), c.h2(k)} {
		for i := range c.buckets[b] {
			e := &c.buckets[b][i]
			if e.inUse && e.key == k {
				e.val = v
				return true
			}
		}
	}
	for i := range c.stash {
		if c.stash[i].key == k {
			c.stash[i].val = v
			return true
		}
	}
	if c.size >= c.max {
		c.fullDrops++
		return false
	}
	c.size++
	c.place(cuckooEntry{key: k, val: v, inUse: true})
	if c.size*16 > len(c.buckets)*cuckooWays*15 || len(c.stash) > cuckooStashHigh {
		c.grow()
	}
	return true
}

// place stores one entry, running the displacement chain. The chain's
// final homeless entry — a victim of the kicks, not necessarily the
// argument — parks in the stash rather than being dropped.
func (c *CuckooTable) place(ent cuckooEntry) {
	for kick := 0; kick < maxKicks; kick++ {
		for _, b := range []uint64{c.h1(ent.key), c.h2(ent.key)} {
			for i := range c.buckets[b] {
				e := &c.buckets[b][i]
				if !e.inUse {
					*e = ent
					return
				}
			}
		}
		// Both buckets full: evict a random resident and re-place it.
		b := c.h1(ent.key)
		if c.rng.Bool(0.5) {
			b = c.h2(ent.key)
		}
		slot := c.rng.Intn(cuckooWays)
		ent, c.buckets[b][slot] = c.buckets[b][slot], ent
		c.kicks++
	}
	c.stash = append(c.stash, ent)
	c.stashed++
	if len(c.stash) > c.stashPeak {
		c.stashPeak = len(c.stash)
	}
}

// grow doubles the bucket array (up to the capacity-derived ceiling) and
// rehashes every resident entry, draining the stash back into buckets
// where possible.
func (c *CuckooTable) grow() {
	if len(c.buckets) >= c.capnb {
		return
	}
	old := c.buckets
	oldStash := c.stash
	nb := len(old) * 2
	c.buckets = make([][cuckooWays]cuckooEntry, nb)
	c.mask = uint64(nb - 1)
	c.stash = nil
	c.resizes++
	for bi := range old {
		for i := range old[bi] {
			if old[bi][i].inUse {
				c.place(old[bi][i])
			}
		}
	}
	for _, e := range oldStash {
		c.place(e)
	}
}

// Delete removes a mapping, reporting whether it was present.
func (c *CuckooTable) Delete(k wire.FourTuple) bool {
	for _, b := range []uint64{c.h1(k), c.h2(k)} {
		for i := range c.buckets[b] {
			e := &c.buckets[b][i]
			if e.inUse && e.key == k {
				*e = cuckooEntry{}
				c.size--
				return true
			}
		}
	}
	for i := range c.stash {
		if c.stash[i].key == k {
			last := len(c.stash) - 1
			c.stash[i] = c.stash[last]
			c.stash = c.stash[:last]
			c.size--
			return true
		}
	}
	return false
}

// String describes occupancy for diagnostics.
func (c *CuckooTable) String() string {
	return fmt.Sprintf("cuckoo{%d/%d cap %d stash %d}", c.size, len(c.buckets)*cuckooWays, c.max, len(c.stash))
}
