// Package datapath implements the protocol data-path logic FtEngine and
// the software stack share: cuckoo-hash flow lookup, out-of-order
// reassembly bookkeeping, the RX parser that digests packets into TCP
// events, the TX packet generator, ARP resolution and ICMP echo
// (§4.1.2). The hardware engine wraps these in cycle-accurate pipeline
// models; the software stack wraps them in CPU cost accounting.
package datapath

import (
	"fmt"

	"f4t/internal/flow"
	"f4t/internal/sim"
	"f4t/internal/wire"
)

// cuckooWays is the bucket associativity, matching the Xilinx HLS packet
// processing library's table the paper references [3].
const cuckooWays = 4

// maxKicks bounds displacement chains before declaring the table full.
const maxKicks = 64

type cuckooEntry struct {
	key   wire.FourTuple
	val   flow.ID
	inUse bool
}

// CuckooTable maps 4-tuples to flow IDs with two hash functions and
// 4-way buckets — the RX parser's flow lookup structure (§4.1.2).
type CuckooTable struct {
	buckets [][cuckooWays]cuckooEntry
	mask    uint64
	size    int
	rng     *sim.Rand
}

// NewCuckooTable returns a table with capacity for at least n entries.
// The bucket count rounds up to a power of two sized for ~75 % load.
func NewCuckooTable(n int, seed uint64) *CuckooTable {
	want := n*4/3/cuckooWays + 1
	nb := 1
	for nb < want {
		nb <<= 1
	}
	return &CuckooTable{
		buckets: make([][cuckooWays]cuckooEntry, nb),
		mask:    uint64(nb - 1),
		rng:     sim.NewRand(seed),
	}
}

func (c *CuckooTable) h1(k wire.FourTuple) uint64 { return k.Hash() & c.mask }
func (c *CuckooTable) h2(k wire.FourTuple) uint64 {
	h := k.Hash()
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 29
	return h & c.mask
}

// Len returns the number of stored entries.
func (c *CuckooTable) Len() int { return c.size }

// Lookup returns the flow ID for the tuple.
func (c *CuckooTable) Lookup(k wire.FourTuple) (flow.ID, bool) {
	for _, b := range []uint64{c.h1(k), c.h2(k)} {
		for i := range c.buckets[b] {
			e := &c.buckets[b][i]
			if e.inUse && e.key == k {
				return e.val, true
			}
		}
	}
	return 0, false
}

// Insert adds or updates a mapping. It reports false when the table could
// not place the key after the displacement bound (effectively full).
func (c *CuckooTable) Insert(k wire.FourTuple, v flow.ID) bool {
	// Update in place if present.
	for _, b := range []uint64{c.h1(k), c.h2(k)} {
		for i := range c.buckets[b] {
			e := &c.buckets[b][i]
			if e.inUse && e.key == k {
				e.val = v
				return true
			}
		}
	}
	key, val := k, v
	for kick := 0; kick < maxKicks; kick++ {
		for _, b := range []uint64{c.h1(key), c.h2(key)} {
			for i := range c.buckets[b] {
				e := &c.buckets[b][i]
				if !e.inUse {
					*e = cuckooEntry{key: key, val: val, inUse: true}
					c.size++
					return true
				}
			}
		}
		// Both buckets full: evict a random resident and re-place it.
		b := c.h1(key)
		if c.rng.Bool(0.5) {
			b = c.h2(key)
		}
		slot := c.rng.Intn(cuckooWays)
		victim := c.buckets[b][slot]
		c.buckets[b][slot] = cuckooEntry{key: key, val: val, inUse: true}
		key, val = victim.key, victim.val
	}
	// Could not place the displaced key; undo is not needed because the
	// displaced entry is the one reported lost — restore by best effort:
	// try once more in its two buckets (may still fail).
	for _, b := range []uint64{c.h1(key), c.h2(key)} {
		for i := range c.buckets[b] {
			e := &c.buckets[b][i]
			if !e.inUse {
				*e = cuckooEntry{key: key, val: val, inUse: true}
				return true
			}
		}
	}
	return false
}

// Delete removes a mapping, reporting whether it was present.
func (c *CuckooTable) Delete(k wire.FourTuple) bool {
	for _, b := range []uint64{c.h1(k), c.h2(k)} {
		for i := range c.buckets[b] {
			e := &c.buckets[b][i]
			if e.inUse && e.key == k {
				*e = cuckooEntry{}
				c.size--
				return true
			}
		}
	}
	return false
}

// String describes occupancy for diagnostics.
func (c *CuckooTable) String() string {
	return fmt.Sprintf("cuckoo{%d/%d}", c.size, len(c.buckets)*cuckooWays)
}
