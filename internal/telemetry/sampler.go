package telemetry

import "f4t/internal/sim"

// Series is one metric's sampled time series: parallel slices of
// simulated-time nanosecond stamps and values.
type Series struct {
	Name string  `json:"name"`
	Kind string  `json:"kind"`
	AtNS []int64 `json:"at_ns"`
	Val  []int64 `json:"val"`
}

// Sampler periodically snapshots every registry metric on the simulation
// clock, building bounded time series. It drives itself with a
// self-rechaining kernel timer, so a skipping kernel and a shadow kernel
// sample at identical cycles; the timer only pins cycles that would
// otherwise be provably idle, so sampling never changes simulation
// results — it only bounds how far the kernel may fast-forward at once.
type Sampler struct {
	k       *sim.Kernel
	reg     *Registry
	every   int64 // sampling period in cycles
	max     int   // points per series; sampling stops when reached
	series  []*Series
	hooks   []func(nowNS int64)
	taken   int
	stopped bool
}

// DefaultSamplePoints bounds each series; at the default period that is
// plenty for any standard rig while keeping memory flat.
const DefaultSamplePoints = 4096

// StartSampler begins sampling reg every everyCycles kernel cycles (<= 0
// selects 25_000 cycles = 100 us of simulated time), keeping at most
// maxPoints per series (<= 0 selects DefaultSamplePoints). Returns nil —
// still safe to use — when k or reg is nil.
func StartSampler(k *sim.Kernel, reg *Registry, everyCycles int64, maxPoints int) *Sampler {
	if k == nil || reg == nil {
		return nil
	}
	if everyCycles <= 0 {
		everyCycles = 25_000
	}
	if maxPoints <= 0 {
		maxPoints = DefaultSamplePoints
	}
	s := &Sampler{k: k, reg: reg, every: everyCycles, max: maxPoints}
	reg.each(func(name string, kind Kind, _ int64) {
		s.series = append(s.series, &Series{Name: name, Kind: kind.String()})
	})
	k.After(everyCycles, s.tick)
	return s
}

// tick takes one sample and rechains the timer.
func (s *Sampler) tick() {
	if s.stopped || s.taken >= s.max {
		return
	}
	s.take()
	s.k.After(s.every, s.tick)
}

// take records one sample of every metric at the current simulated time.
func (s *Sampler) take() {
	nowNS := s.k.NowNS()
	i := 0
	s.reg.each(func(_ string, _ Kind, v int64) {
		// Metrics registered after StartSampler are not tracked; the
		// series list is fixed at start so indexes stay aligned.
		if i >= len(s.series) {
			return
		}
		sr := s.series[i]
		sr.AtNS = append(sr.AtNS, nowNS)
		sr.Val = append(sr.Val, v)
		i++
	})
	for _, fn := range s.hooks {
		fn(nowNS)
	}
	s.taken++
}

// AddHook registers fn to run at every sampling tick (flow-table
// sampling, app callbacks). No-op on nil.
func (s *Sampler) AddHook(fn func(nowNS int64)) {
	if s == nil || fn == nil {
		return
	}
	s.hooks = append(s.hooks, fn)
}

// Stop halts sampling; the pending timer becomes a no-op.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopped = true
}

// Points returns how many sampling ticks have run.
func (s *Sampler) Points() int {
	if s == nil {
		return 0
	}
	return s.taken
}

// Series returns the collected time series in registration order.
func (s *Sampler) Series() []*Series {
	if s == nil {
		return nil
	}
	return s.series
}

// SeriesFor returns the series for one metric name, or nil.
func (s *Sampler) SeriesFor(name string) *Series {
	if s == nil {
		return nil
	}
	for _, sr := range s.series {
		if sr.Name == name {
			return sr
		}
	}
	return nil
}
