package telemetry

import (
	"fmt"
	"math/bits"
)

// histBuckets is the number of power-of-two buckets: bucket i holds
// samples v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0
// holds v <= 0). 64 buckets cover the full int64 range, so nanosecond
// latencies, byte counts and queue depths all fit without configuration.
const histBuckets = 64

// Histogram is a log-bucketed distribution: O(1) observe with zero
// allocation (the simulator observes on hot paths), bounded memory
// regardless of sample count, and quantiles accurate to the bucket width
// (a factor of two) — the right trade-off for the RTT/latency/queue-depth
// distributions the experiments care about, where order of magnitude and
// tail shape matter more than the third significant digit.
//
// Unlike sim.Histogram (exact order statistics over stored samples, used
// by experiment runners that need precise medians), telemetry histograms
// never grow, so they can run attached to million-event workloads.
type Histogram struct {
	name    string
	buckets [histBuckets]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Name returns the registered metric name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one sample. No-op on a nil histogram — the disabled
// telemetry path.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns recorded samples (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observed sample (exact, not bucketed).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample (exact, not bucketed).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1): the
// geometric midpoint of the bucket containing the q-th sample, clamped to
// the observed min/max so single-bucket distributions report exactly.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max // tracked exactly
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// bucketMid returns the geometric midpoint of bucket i's value range.
func bucketMid(i int) int64 {
	if i == 0 {
		return 0
	}
	lo := int64(1) << (i - 1) // inclusive
	hi := lo << 1             // exclusive
	if hi <= lo {             // bucket 63 overflow guard
		return lo
	}
	return lo + (hi-lo)/2
}

// Buckets invokes fn for every non-empty bucket with its inclusive lower
// bound, exclusive upper bound and count (export path).
func (h *Histogram) Buckets(fn func(lo, hi, count int64)) {
	if h == nil {
		return
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if i == 0 {
			fn(0, 1, n)
			continue
		}
		lo := int64(1) << (i - 1)
		hi := lo << 1
		if hi <= lo {
			hi = 1<<63 - 1
		}
		fn(lo, hi, n)
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	*h = Histogram{name: h.name}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h == nil {
		return "hist(nil)"
	}
	return fmt.Sprintf("hist{n=%d p50~%d p99~%d max=%d}", h.Count(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}
