package telemetry

import (
	"sort"

	"f4t/internal/flow"
)

// FlowStat is the per-connection view: the congestion/RTT state sampled
// from the TCB plus event counts accumulated by engine hooks. All byte
// counts are derived from sequence-space pointers, so they agree exactly
// with what the protocol machinery itself believes.
type FlowStat struct {
	FlowID   uint32 `json:"flow_id"`
	State    string `json:"state"`
	CwndB    uint32 `json:"cwnd_bytes"`
	Ssthresh uint32 `json:"ssthresh"`
	SRTTNS   int64  `json:"srtt_ns"`
	RTONS    int64  `json:"rto_ns"`

	BytesAcked int64 `json:"bytes_acked"` // SndUna - ISS: goodput delivered to the peer
	BytesRcvd  int64 `json:"bytes_rcvd"`  // RcvNxt - IRS: in-order bytes received

	Retransmits int64 `json:"retransmits"` // segments re-sent (engine hook)
	RTTSamples  int64 `json:"rtt_samples"` // SRTT observations recorded

	firstNS    int64 // first observation time (goodput window start)
	firstAcked int64 // BytesAcked at first observation
	lastNS     int64 // most recent observation time
}

// GoodputBps returns the average acked-byte rate over the observation
// window, in bits per second.
func (f *FlowStat) GoodputBps() float64 {
	if f == nil || f.lastNS <= f.firstNS {
		return 0
	}
	return float64(f.BytesAcked-f.firstAcked) * 8 * 1e9 / float64(f.lastNS-f.firstNS)
}

// FlowTable accumulates per-flow statistics. The engine calls Observe to
// refresh a flow's snapshot (typically from a sampler hook walking live
// TCBs) and OnRetransmit when it re-emits a segment. Nil tables ignore
// everything — the disabled path.
type FlowTable struct {
	flows map[uint32]*FlowStat
	rtt   *Histogram // optional: every SRTT observation across all flows
}

// NewFlowTable returns an empty flow table. rttHist, when non-nil,
// receives every SRTT observation (register it via Registry.NewHistogram
// to get it into snapshots).
func NewFlowTable(rttHist *Histogram) *FlowTable {
	return &FlowTable{flows: make(map[uint32]*FlowStat), rtt: rttHist}
}

// Observe refreshes (or creates) the stat row for tcb at simulated time
// nowNS. No-op on nil table or nil TCB.
func (ft *FlowTable) Observe(nowNS int64, tcb *flow.TCB) {
	if ft == nil || tcb == nil {
		return
	}
	f := ft.flows[uint32(tcb.FlowID)]
	if f == nil {
		f = &FlowStat{FlowID: uint32(tcb.FlowID), firstNS: nowNS}
		ft.flows[uint32(tcb.FlowID)] = f
	}
	acked := int64(tcb.SndUna.DistanceFrom(tcb.ISS))
	if f.lastNS == 0 && f.firstNS == nowNS {
		f.firstAcked = acked
	}
	f.State = tcb.State.String()
	f.CwndB = tcb.Cwnd
	f.Ssthresh = tcb.Ssthresh
	f.RTONS = tcb.RTO
	f.BytesAcked = acked
	f.BytesRcvd = int64(tcb.RcvNxt.DistanceFrom(tcb.IRS))
	f.lastNS = nowNS
	if tcb.SRTT > 0 && tcb.SRTT != f.SRTTNS {
		f.SRTTNS = tcb.SRTT
		f.RTTSamples++
		ft.rtt.Observe(tcb.SRTT)
	}
}

// OnRetransmit counts one retransmitted segment for flowID. No-op on nil.
func (ft *FlowTable) OnRetransmit(flowID uint32) {
	if ft == nil {
		return
	}
	f := ft.flows[flowID]
	if f == nil {
		f = &FlowStat{FlowID: flowID}
		ft.flows[flowID] = f
	}
	f.Retransmits++
}

// Len returns the number of tracked flows.
func (ft *FlowTable) Len() int {
	if ft == nil {
		return 0
	}
	return len(ft.flows)
}

// Get returns the stat row for flowID, or nil.
func (ft *FlowTable) Get(flowID uint32) *FlowStat {
	if ft == nil {
		return nil
	}
	return ft.flows[flowID]
}

// Flows returns all rows sorted by flow ID (deterministic export).
func (ft *FlowTable) Flows() []*FlowStat {
	if ft == nil {
		return nil
	}
	out := make([]*FlowStat, 0, len(ft.flows))
	for _, f := range ft.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FlowID < out[j].FlowID })
	return out
}

// TotalRetransmits sums retransmit counts across all flows.
func (ft *FlowTable) TotalRetransmits() int64 {
	if ft == nil {
		return 0
	}
	var n int64
	for _, f := range ft.flows {
		n += f.Retransmits
	}
	return n
}
