package telemetry

import "sort"

// MergeSamplers combines the series of several samplers — one per shard
// of a sharded rig — into a single deterministic series set. Ordering
// is stable and goroutine-independent: series are sorted by metric
// name, with the argument position breaking name ties, and when the
// same metric name appears on several shards its points are merged by
// timestamp with the earlier-argument sampler winning timestamp ties.
// A serial rig's sampler passed alone therefore comes back byte-
// identical (up to the name sort), which is what lets the differential
// battery compare serial and sharded telemetry dumps directly.
func MergeSamplers(samplers ...*Sampler) []*Series {
	type source struct {
		arg int
		sr  *Series
	}
	groups := map[string][]source{}
	var names []string
	for i, s := range samplers {
		if s == nil {
			continue
		}
		for _, sr := range s.Series() {
			if _, seen := groups[sr.Name]; !seen {
				names = append(names, sr.Name)
			}
			groups[sr.Name] = append(groups[sr.Name], source{arg: i, sr: sr})
		}
	}
	sort.Strings(names)

	out := make([]*Series, 0, len(names))
	for _, name := range names {
		srcs := groups[name]
		m := &Series{Name: name, Kind: srcs[0].sr.Kind}
		if len(srcs) == 1 {
			m.AtNS = append(m.AtNS, srcs[0].sr.AtNS...)
			m.Val = append(m.Val, srcs[0].sr.Val...)
			out = append(out, m)
			continue
		}
		// K-way merge by timestamp; ties go to the lower argument index
		// (sources arrive in argument order, so scanning in order and
		// picking the strictly smallest timestamp keeps the tie-break).
		pos := make([]int, len(srcs))
		for {
			best := -1
			for i, s := range srcs {
				if pos[i] >= len(s.sr.AtNS) {
					continue
				}
				if best < 0 || s.sr.AtNS[pos[i]] < srcs[best].sr.AtNS[pos[best]] {
					best = i
				}
			}
			if best < 0 {
				break
			}
			m.AtNS = append(m.AtNS, srcs[best].sr.AtNS[pos[best]])
			m.Val = append(m.Val, srcs[best].sr.Val[pos[best]])
			pos[best]++
		}
		out = append(out, m)
	}
	return out
}
