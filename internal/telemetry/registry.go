// Package telemetry is the observability layer of the simulator: a
// registry of named counters, gauges and log-bucketed histograms spanning
// every layer of the stack (engine, host interface, network, hosts and
// applications), a periodic time-series sampler driven off the simulation
// clock, a bounded ring of structured trace events exportable as
// Chrome/Perfetto trace JSON, and a per-flow statistics table.
//
// The whole package is built around a nil fast path: every method on a
// nil *Registry, *Histogram, *Trace, *Sampler or *FlowTable is a no-op,
// so instrumented components hold nil pointers by default and pay only a
// predicted branch when telemetry is disabled. Enabling telemetry never
// changes simulation behaviour — collectors only read component state and
// record copies, so an instrumented run is bit-identical to a bare one.
package telemetry

import (
	"fmt"
	"sort"

	"f4t/internal/sim"
)

// Kind discriminates metric flavours in snapshots and exports.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota // monotonic event count (sim.Counter)
	KindGauge               // instantaneous value read through a closure
	KindHist                // log-bucketed distribution
)

// String names the kind for CSV/JSON export.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHist:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered metric. Exactly one of counter/gauge/hist is
// set, matching kind.
type entry struct {
	name    string
	kind    Kind
	counter *sim.Counter
	gauge   func() int64
	hist    *Histogram
}

// value reads the metric's current scalar (histograms report count).
func (e *entry) value() int64 {
	switch e.kind {
	case KindCounter:
		return e.counter.Total()
	case KindGauge:
		return e.gauge()
	case KindHist:
		return e.hist.Count()
	}
	return 0
}

// Registry is a directory of named metrics. Components register their
// existing stat fields by reference — the registry never duplicates a
// counter, it points at the same storage the component already updates —
// so registry snapshots are bit-identical to the ad-hoc fields by
// construction, and registration costs nothing on the simulation path.
type Registry struct {
	entries []entry
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// add installs one entry, panicking on duplicate names (registration is
// static wiring; a duplicate is a bug, not a runtime condition).
func (r *Registry) add(e entry) {
	if _, dup := r.byName[e.name]; dup {
		panic("telemetry: duplicate metric " + e.name)
	}
	r.byName[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Counter registers an existing sim.Counter under name. No-op on a nil
// registry or nil counter.
func (r *Registry) Counter(name string, c *sim.Counter) {
	if r == nil || c == nil {
		return
	}
	r.add(entry{name: name, kind: KindCounter, counter: c})
}

// Gauge registers a closure read at snapshot/sample time — the bridge for
// plain int64 stat fields and computed values (queue depths, occupancy).
// No-op on a nil registry.
func (r *Registry) Gauge(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.add(entry{name: name, kind: KindGauge, gauge: fn})
}

// NewHistogram creates and registers a log-bucketed histogram. On a nil
// registry it returns nil, whose Observe is a no-op — callers keep the
// returned pointer unconditionally.
func (r *Registry) NewHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{name: name}
	r.add(entry{name: name, kind: KindHist, hist: h})
	return h
}

// Len returns the number of registered metrics (0 for nil).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.entries)
}

// Value reads one metric by name; ok is false when absent (or nil
// registry).
func (r *Registry) Value(name string) (v int64, ok bool) {
	if r == nil {
		return 0, false
	}
	i, ok := r.byName[name]
	if !ok {
		return 0, false
	}
	return r.entries[i].value(), true
}

// Hist returns a registered histogram by name, or nil.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	if i, ok := r.byName[name]; ok && r.entries[i].kind == KindHist {
		return r.entries[i].hist
	}
	return nil
}

// Sample is one metric's value in a snapshot. Histogram metrics carry
// their distribution summary alongside the count.
type Sample struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value int64  `json:"value"`

	// Histogram summary (zero for counters/gauges).
	P50  int64   `json:"p50,omitempty"`
	P99  int64   `json:"p99,omitempty"`
	Max  int64   `json:"max,omitempty"`
	Mean float64 `json:"mean,omitempty"`
}

// Snapshot reads every metric once and returns the samples sorted by
// name (deterministic output for diffs and tests). Nil registries return
// nil. Snapshot is cheap: one read per metric, no locking (the simulator
// is single-threaded).
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	out := make([]Sample, 0, len(r.entries))
	for i := range r.entries {
		e := &r.entries[i]
		s := Sample{Name: e.name, Kind: e.kind.String(), Value: e.value()}
		if e.kind == KindHist {
			s.P50 = e.hist.Quantile(0.50)
			s.P99 = e.hist.Quantile(0.99)
			s.Max = e.hist.Max()
			s.Mean = e.hist.Mean()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// each visits entries in registration order (sampler internals).
func (r *Registry) each(fn func(name string, kind Kind, v int64)) {
	if r == nil {
		return
	}
	for i := range r.entries {
		e := &r.entries[i]
		fn(e.name, e.kind, e.value())
	}
}

// String summarizes the registry for debugging.
func (r *Registry) String() string {
	return fmt.Sprintf("telemetry.Registry{metrics=%d}", r.Len())
}
