package telemetry

import "testing"

func TestFootprint(t *testing.T) {
	fp := NewFootprint()
	entries, bytes := int64(10), int64(4096)
	fp.Add("table", func() (int64, int64) { return entries, bytes })
	fp.Add("arena", func() (int64, int64) { return 2, 1024 })

	snap := fp.Snapshot()
	if len(snap) != 2 || snap[0].Name != "table" || snap[0].Bytes != 4096 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := fp.TotalBytes(); got != 5120 {
		t.Fatalf("TotalBytes = %d", got)
	}
	if got := fp.BytesPerFlow(10); got != 512 {
		t.Fatalf("BytesPerFlow = %f", got)
	}
	if got := fp.BytesPerFlow(0); got != 0 {
		t.Fatalf("BytesPerFlow(0) = %f", got)
	}

	// Probes are live: a later snapshot sees updated values.
	entries, bytes = 20, 8192
	if got := fp.TotalBytes(); got != 9216 {
		t.Fatalf("TotalBytes after update = %d", got)
	}

	reg := NewRegistry()
	fp.Instrument(reg, "mem")
	if v, ok := reg.Value("mem.table.bytes"); !ok || v != 8192 {
		t.Fatalf("gauge mem.table.bytes = %d,%v", v, ok)
	}
	if v, ok := reg.Value("mem.total_bytes"); !ok || v != 9216 {
		t.Fatalf("gauge mem.total_bytes = %d,%v", v, ok)
	}
}

func TestFootprintNilFastPath(t *testing.T) {
	var fp *Footprint
	fp.Add("x", func() (int64, int64) { return 1, 1 })
	if fp.Snapshot() != nil || fp.TotalBytes() != 0 || fp.BytesPerFlow(5) != 0 {
		t.Fatal("nil footprint must no-op")
	}
	fp.Instrument(NewRegistry(), "mem")
}
