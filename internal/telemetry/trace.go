package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Event is one structured trace record: a span (DurNS > 0 or a zero-dur
// complete event) or an instant (Instant == true). Name and Cat must be
// static strings — emission never allocates; the ring stores values.
type Event struct {
	StartNS int64  // simulated-time start
	DurNS   int64  // span duration (0 for instants)
	Name    string // event name ("fpu.pass", "cmd.fetch", ...)
	Cat     string // layer category ("engine", "hostif", "net", "app")
	TID     int32  // virtual thread: one per hardware unit / pipe / app
	Arg     int64  // optional numeric payload (bytes, batch size, flow id)
	Instant bool
}

// Trace is a bounded ring buffer of events. When full, the oldest events
// are overwritten — a trace keeps the most recent window, like a flight
// recorder — and Dropped counts what was lost. The zero capacity default
// is DefaultTraceEvents.
type Trace struct {
	ring    []Event
	next    int   // ring write cursor
	total   int64 // events ever emitted
	threads map[int32]string
}

// DefaultTraceEvents is the default ring capacity: enough for several
// simulated milliseconds of a busy two-node rig (~tens of events/us).
const DefaultTraceEvents = 1 << 16

// NewTrace builds a trace ring with the given capacity (<= 0 selects
// DefaultTraceEvents).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Trace{ring: make([]Event, 0, capacity), threads: make(map[int32]string)}
}

// SetThreadName labels a virtual thread for the trace viewer.
func (t *Trace) SetThreadName(tid int32, name string) {
	if t == nil {
		return
	}
	t.threads[tid] = name
}

// emit appends one event, overwriting the oldest when full.
func (t *Trace) emit(e Event) {
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
}

// Span records a duration event covering [startNS, endNS]. No-op on nil.
func (t *Trace) Span(cat, name string, tid int32, startNS, endNS, arg int64) {
	if t == nil {
		return
	}
	d := endNS - startNS
	if d < 0 {
		d = 0
	}
	t.emit(Event{StartNS: startNS, DurNS: d, Name: name, Cat: cat, TID: tid, Arg: arg})
}

// Instant records a point event. No-op on nil.
func (t *Trace) Instant(cat, name string, tid int32, nowNS, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{StartNS: nowNS, Name: name, Cat: cat, TID: tid, Arg: arg, Instant: true})
}

// Len returns events currently held (<= capacity).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Total returns events ever emitted, including overwritten ones.
func (t *Trace) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns events lost to ring overwrite.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.total - int64(len(t.ring))
}

// Events returns the held events in emission order (oldest first).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// tracePID is the single process all events report; the simulator is one
// "process", its hardware units are the threads.
const tracePID = 1

// Export writes the trace in Chrome trace-event JSON ("JSON object
// format"), loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
// Timestamps are microseconds (the format's unit); sub-microsecond
// simulated durations survive as fractions. When sampler is non-nil its
// time series are appended as counter ("ph":"C") tracks, so registry
// metrics plot alongside the spans.
func (t *Trace) Export(w io.Writer, sampler *Sampler) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	if t != nil {
		tids := make([]int32, 0, len(t.threads))
		for tid := range t.threads {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, tid := range tids {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
				tracePID, tid, t.threads[tid])
		}
		for _, e := range t.Events() {
			sep()
			if e.Instant {
				fmt.Fprintf(bw, `{"ph":"i","pid":%d,"tid":%d,"cat":%q,"name":%q,"ts":%s,"s":"t","args":{"v":%d}}`,
					tracePID, e.TID, e.Cat, e.Name, us(e.StartNS), e.Arg)
			} else {
				fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"cat":%q,"name":%q,"ts":%s,"dur":%s,"args":{"v":%d}}`,
					tracePID, e.TID, e.Cat, e.Name, us(e.StartNS), us(e.DurNS), e.Arg)
			}
		}
	}
	if sampler != nil {
		for _, s := range sampler.Series() {
			for i := range s.AtNS {
				sep()
				fmt.Fprintf(bw, `{"ph":"C","pid":%d,"name":%q,"ts":%s,"args":{"value":%d}}`,
					tracePID, s.Name, us(s.AtNS[i]), s.Val[i])
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// us renders nanoseconds as a decimal microsecond literal without
// floating-point round-off (123456 ns -> "123.456").
func us(ns int64) string {
	sign := ""
	if ns < 0 {
		sign, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", sign, ns/1000, ns%1000)
}
