package telemetry

import (
	"testing"

	"f4t/internal/sim"
)

// startTestSampler builds a kernel+registry pair with one gauge and
// samples it every period cycles for span cycles.
func startTestSampler(t *testing.T, name string, period, span int64, val func(now int64) int64) *Sampler {
	t.Helper()
	k := sim.New()
	k.Register(sim.TickerFunc(func(int64) {}))
	reg := NewRegistry()
	reg.Gauge(name, func() int64 { return val(k.Now()) })
	s := StartSampler(k, reg, period, 0)
	k.Run(span)
	return s
}

func TestMergeSamplersSingle(t *testing.T) {
	s := startTestSampler(t, "m.a", 100, 1000, func(now int64) int64 { return now })
	merged := MergeSamplers(s)
	if len(merged) != 1 || merged[0].Name != "m.a" {
		t.Fatalf("merged = %+v", merged)
	}
	orig := s.SeriesFor("m.a")
	if len(merged[0].AtNS) != len(orig.AtNS) {
		t.Fatalf("points %d, want %d", len(merged[0].AtNS), len(orig.AtNS))
	}
	for i := range orig.AtNS {
		if merged[0].AtNS[i] != orig.AtNS[i] || merged[0].Val[i] != orig.Val[i] {
			t.Fatalf("point %d: got (%d,%d) want (%d,%d)", i,
				merged[0].AtNS[i], merged[0].Val[i], orig.AtNS[i], orig.Val[i])
		}
	}
}

func TestMergeSamplersStableOrder(t *testing.T) {
	// Two shards with disjoint metric names plus one shared name: the
	// merged set is name-sorted, and the shared series interleaves by
	// timestamp with ties broken by argument order.
	s0 := startTestSampler(t, "shard.shared", 100, 500, func(int64) int64 { return 0 })
	s1 := startTestSampler(t, "shard.shared", 100, 500, func(int64) int64 { return 1 })
	sa := startTestSampler(t, "a.only", 100, 300, func(int64) int64 { return 7 })
	sz := startTestSampler(t, "z.only", 100, 300, func(int64) int64 { return 9 })

	merged := MergeSamplers(sz, s0, s1, sa)
	wantNames := []string{"a.only", "shard.shared", "z.only"}
	if len(merged) != len(wantNames) {
		t.Fatalf("got %d series, want %d", len(merged), len(wantNames))
	}
	for i, w := range wantNames {
		if merged[i].Name != w {
			t.Errorf("series[%d] = %s, want %s", i, merged[i].Name, w)
		}
	}

	// Both shards sampled the shared metric at identical simulated
	// times; the tie-break must put s0's point (val 0) before s1's at
	// every timestamp, because s0 precedes s1 in the argument list.
	var shared *Series
	for _, m := range merged {
		if m.Name == "shard.shared" {
			shared = m
		}
	}
	if got, want := len(shared.AtNS), 2*s0.Points(); got != want {
		t.Fatalf("shared series has %d points, want %d", got, want)
	}
	for i := 0; i+1 < len(shared.AtNS); i += 2 {
		if shared.AtNS[i] != shared.AtNS[i+1] {
			t.Fatalf("point %d: timestamps %d,%d not paired", i, shared.AtNS[i], shared.AtNS[i+1])
		}
		if shared.Val[i] != 0 || shared.Val[i+1] != 1 {
			t.Fatalf("point %d: tie-break order vals (%d,%d), want (0,1)", i, shared.Val[i], shared.Val[i+1])
		}
	}

	// Determinism: merging again yields the same bytes.
	again := MergeSamplers(sz, s0, s1, sa)
	for i := range merged {
		if merged[i].Name != again[i].Name || len(merged[i].AtNS) != len(again[i].AtNS) {
			t.Fatalf("re-merge diverged on series %d", i)
		}
		for j := range merged[i].AtNS {
			if merged[i].AtNS[j] != again[i].AtNS[j] || merged[i].Val[j] != again[i].Val[j] {
				t.Fatalf("re-merge diverged at %d/%d", i, j)
			}
		}
	}
}
