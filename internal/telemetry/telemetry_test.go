package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"f4t/internal/flow"
	"f4t/internal/sim"
)

func TestRegistryCounterByReference(t *testing.T) {
	var c sim.Counter
	r := NewRegistry()
	r.Counter("eng.tx_pkts", &c)
	c.Add(41)
	c.Inc()
	v, ok := r.Value("eng.tx_pkts")
	if !ok || v != 42 {
		t.Fatalf("Value = %d,%v, want 42,true", v, ok)
	}
	if v != c.Total() {
		t.Fatalf("registry (%d) diverged from counter (%d)", v, c.Total())
	}
}

func TestRegistryGaugeAndSnapshot(t *testing.T) {
	depth := int64(7)
	r := NewRegistry()
	r.Gauge("q.depth", func() int64 { return depth })
	h := r.NewHistogram("rtt_ns")
	h.Observe(1000)
	h.Observe(3000)
	var c sim.Counter
	c.Add(5)
	r.Counter("a.first", &c)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	// Sorted by name.
	if snap[0].Name != "a.first" || snap[1].Name != "q.depth" || snap[2].Name != "rtt_ns" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if snap[1].Value != 7 || snap[2].Value != 2 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
	if snap[2].Max != 3000 {
		t.Fatalf("hist max = %d, want 3000", snap[2].Max)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	var c sim.Counter
	r.Counter("dup", &c)
	r.Counter("dup", &c)
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	var c sim.Counter
	r.Counter("x", &c)
	r.Gauge("y", func() int64 { return 1 })
	h := r.NewHistogram("z")
	if h != nil {
		t.Fatal("nil registry returned non-nil histogram")
	}
	h.Observe(5)
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil registry not inert")
	}
	if _, ok := r.Value("x"); ok {
		t.Fatal("nil registry Value ok")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{name: "t"}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Sum() != 500500 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	p50 := h.Quantile(0.5)
	// Bucket resolution is a factor of two: the median (500) must land
	// within [256, 1000].
	if p50 < 256 || p50 > 1000 {
		t.Fatalf("p50 = %d, outside plausible range", p50)
	}
	if h.Quantile(1.0) != 1000 {
		t.Fatalf("p100 = %d, want 1000 (clamped to max)", h.Quantile(1.0))
	}
	if h.Quantile(0) < 1 {
		t.Fatalf("p0 = %d, want >= min", h.Quantile(0))
	}
}

func TestHistogramSingleValueExact(t *testing.T) {
	h := &Histogram{}
	h.Observe(777)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 777 {
			t.Fatalf("Quantile(%v) = %d, want 777 (clamped)", q, got)
		}
	}
}

func TestHistogramNonPositive(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 2 || h.Min() != -5 {
		t.Fatalf("count=%d min=%d", h.Count(), h.Min())
	}
	var lo, hi, n int64 = -1, -1, -1
	h.Buckets(func(l, h2, c int64) { lo, hi, n = l, h2, c })
	if lo != 0 || hi != 1 || n != 2 {
		t.Fatalf("bucket0 = [%d,%d)=%d, want [0,1)=2", lo, hi, n)
	}
}

func TestTraceRingOverwrite(t *testing.T) {
	tr := NewTrace(4)
	for i := int64(0); i < 10; i++ {
		tr.Instant("t", "ev", 1, i*100, i)
	}
	if tr.Len() != 4 || tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d", tr.Len(), tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	// Oldest-first: the last four emitted (6..9).
	for i, e := range evs {
		if want := int64(6 + i); e.Arg != want {
			t.Fatalf("event %d arg = %d, want %d", i, e.Arg, want)
		}
	}
}

func TestTraceExportParses(t *testing.T) {
	k := sim.New()
	r := NewRegistry()
	var c sim.Counter
	r.Counter("net.sent", &c)
	s := StartSampler(k, r, 100, 0)
	tr := NewTrace(0)
	tr.SetThreadName(1, "engine.A")
	tr.Span("engine", "fpu.pass", 1, 40, 120, 3)
	tr.Instant("net", "pkt.drop", 2, 400, 1)
	k.At(150, func() { c.Inc() })
	k.Run(500)

	var buf bytes.Buffer
	if err := tr.Export(&buf, s); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["M"] != 1 || phases["X"] != 1 || phases["i"] != 1 {
		t.Fatalf("phase counts = %v", phases)
	}
	if phases["C"] == 0 {
		t.Fatalf("no counter events from sampler: %v", phases)
	}
}

func TestNilTraceExportParses(t *testing.T) {
	var tr *Trace
	tr.Span("a", "b", 0, 0, 1, 0)
	var buf bytes.Buffer
	if err := tr.Export(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil export invalid JSON: %v", err)
	}
}

func TestSamplerTicksOnKernelClock(t *testing.T) {
	k := sim.New()
	r := NewRegistry()
	n := int64(0)
	r.Gauge("g", func() int64 { return n })
	s := StartSampler(k, r, 1000, 0)
	k.At(1500, func() { n = 5 })
	k.Run(4500)
	sr := s.SeriesFor("g")
	if sr == nil || len(sr.AtNS) != 4 {
		t.Fatalf("series = %+v, want 4 points", sr)
	}
	// Samples at cycles 1000,2000,3000,4000 → ns stamps ×4.
	wantNS := []int64{4000, 8000, 12000, 16000}
	wantV := []int64{0, 5, 5, 5}
	for i := range wantNS {
		if sr.AtNS[i] != wantNS[i] || sr.Val[i] != wantV[i] {
			t.Fatalf("point %d = (%d,%d), want (%d,%d)", i, sr.AtNS[i], sr.Val[i], wantNS[i], wantV[i])
		}
	}
}

func TestSamplerMaxPointsAndStop(t *testing.T) {
	k := sim.New()
	r := NewRegistry()
	r.Gauge("g", func() int64 { return 0 })
	s := StartSampler(k, r, 100, 3)
	hookRuns := 0
	s.AddHook(func(int64) { hookRuns++ })
	k.Run(1000)
	if s.Points() != 3 || hookRuns != 3 {
		t.Fatalf("points=%d hooks=%d, want 3/3", s.Points(), hookRuns)
	}
}

func TestFlowTableObserve(t *testing.T) {
	ft := NewFlowTable(nil)
	tcb := &flow.TCB{FlowID: 3, State: flow.StateEstablished, Cwnd: 29200, Ssthresh: 65535, SRTT: 12000, RTO: 200_000}
	tcb.ISS = tcb.ISS.Add(0)
	tcb.SndUna = tcb.ISS.Add(1000)
	tcb.RcvNxt = tcb.IRS.Add(500)
	ft.Observe(1_000, tcb)
	tcb.SndUna = tcb.ISS.Add(9000)
	ft.Observe(9_000, tcb)

	f := ft.Get(3)
	if f == nil {
		t.Fatal("flow 3 missing")
	}
	if f.BytesAcked != 9000 || f.BytesRcvd != 500 {
		t.Fatalf("acked=%d rcvd=%d", f.BytesAcked, f.BytesRcvd)
	}
	if f.State != "ESTABLISHED" || f.CwndB != 29200 {
		t.Fatalf("state=%s cwnd=%d", f.State, f.CwndB)
	}
	// 8000 bytes over 8 us → 8 Gbit/s.
	if g := f.GoodputBps(); g < 7.9e9 || g > 8.1e9 {
		t.Fatalf("goodput = %g", g)
	}
	ft.OnRetransmit(3)
	ft.OnRetransmit(3)
	if f.Retransmits != 2 || ft.TotalRetransmits() != 2 {
		t.Fatalf("retransmits = %d", f.Retransmits)
	}
}

func TestFlowTableRTTHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("flow.srtt_ns")
	ft := NewFlowTable(h)
	tcb := &flow.TCB{FlowID: 1, SRTT: 10_000}
	ft.Observe(100, tcb)
	ft.Observe(200, tcb) // unchanged SRTT: no new sample
	tcb.SRTT = 12_000
	ft.Observe(300, tcb)
	if h.Count() != 2 {
		t.Fatalf("rtt samples = %d, want 2", h.Count())
	}
	if ft.Get(1).RTTSamples != 2 {
		t.Fatalf("flow rtt samples = %d", ft.Get(1).RTTSamples)
	}
}

func TestNilFlowTableAndSampler(t *testing.T) {
	var ft *FlowTable
	ft.Observe(0, &flow.TCB{})
	ft.OnRetransmit(1)
	if ft.Len() != 0 || ft.Flows() != nil || ft.Get(1) != nil || ft.TotalRetransmits() != 0 {
		t.Fatal("nil flow table not inert")
	}
	var s *Sampler
	s.AddHook(func(int64) {})
	s.Stop()
	if s.Points() != 0 || s.Series() != nil || s.SeriesFor("x") != nil {
		t.Fatal("nil sampler not inert")
	}
}

// The disabled-path benchmarks: every instrumented call site reduces to a
// nil check. These must be on the order of a nanosecond and allocate
// nothing — the "near-zero cost when disabled" guarantee.

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkNilTraceSpan(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span("cat", "name", 1, int64(i), int64(i+10), 0)
	}
}

func BenchmarkNilFlowTableObserve(b *testing.B) {
	var ft *FlowTable
	tcb := &flow.TCB{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ft.Observe(int64(i), tcb)
	}
}

// Enabled-path costs, for comparison: histogram observe stays O(1) and
// allocation-free; trace emission into a warm ring likewise.

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkTraceSpan(b *testing.B) {
	tr := NewTrace(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span("cat", "name", 1, int64(i), int64(i+10), 0)
	}
}
