package telemetry

import "fmt"

// MemItem is one component's allocated footprint at snapshot time.
type MemItem struct {
	Name    string `json:"name"`
	Entries int64  `json:"entries"` // live objects the bytes are amortized over
	Bytes   int64  `json:"bytes"`   // allocated bytes (capacity, not just occupancy)
}

// Footprint aggregates per-flow memory accounting across components:
// each producer (flow table, TCB arena, parser flows, reassemblers)
// registers a probe, and Snapshot/TotalBytes answer "what does one
// connection cost" with measured numbers instead of folklore. Probes
// run only when asked — registering them costs nothing per packet.
// All methods are safe on a nil Footprint (the usual telemetry
// fast-path convention).
type Footprint struct {
	items []fpItem
}

type fpItem struct {
	name string
	fn   func() (entries, bytes int64)
}

// NewFootprint returns an empty footprint accountant.
func NewFootprint() *Footprint { return &Footprint{} }

// Add registers one probe under name. The probe must return the current
// live-entry count and allocated bytes; it runs at snapshot time on the
// caller's goroutine.
func (f *Footprint) Add(name string, fn func() (entries, bytes int64)) {
	if f == nil || fn == nil {
		return
	}
	f.items = append(f.items, fpItem{name: name, fn: fn})
}

// Snapshot evaluates every probe.
func (f *Footprint) Snapshot() []MemItem {
	if f == nil {
		return nil
	}
	out := make([]MemItem, 0, len(f.items))
	for _, it := range f.items {
		e, b := it.fn()
		out = append(out, MemItem{Name: it.name, Entries: e, Bytes: b})
	}
	return out
}

// TotalBytes sums every probe's allocated bytes.
func (f *Footprint) TotalBytes() int64 {
	if f == nil {
		return 0
	}
	var total int64
	for _, it := range f.items {
		_, b := it.fn()
		total += b
	}
	return total
}

// BytesPerFlow amortizes the total footprint over flows live
// connections (0 when none).
func (f *Footprint) BytesPerFlow(flows int64) float64 {
	if f == nil || flows <= 0 {
		return 0
	}
	return float64(f.TotalBytes()) / float64(flows)
}

// Instrument registers two gauges per probe (<prefix>.<name>.entries
// and .bytes) plus <prefix>.total_bytes on the registry.
func (f *Footprint) Instrument(reg *Registry, prefix string) {
	if f == nil || reg == nil {
		return
	}
	for _, it := range f.items {
		fn := it.fn
		reg.Gauge(prefix+"."+it.name+".entries", func() int64 { e, _ := fn(); return e })
		reg.Gauge(prefix+"."+it.name+".bytes", func() int64 { _, b := fn(); return b })
	}
	reg.Gauge(prefix+".total_bytes", f.TotalBytes)
}

// String renders the snapshot for diagnostics.
func (f *Footprint) String() string {
	if f == nil {
		return "footprint{}"
	}
	s := "footprint{"
	for i, it := range f.Snapshot() {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d/%dB", it.Name, it.Entries, it.Bytes)
	}
	return s + "}"
}
