package softstack

import (
	"testing"

	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

// TestPollSteadyStateAllocs guards the library's hot path against
// per-operation garbage: once a connection is established and the
// event double-buffer and rings have reached their high-water marks, a
// full poll→read→repost cycle (the netapi facade's pump shape, using
// the split-effect ReadAt/ReadInto + PostRecv surface) must not
// allocate.
func TestPollSteadyStateAllocs(t *testing.T) {
	r := newRig(t, 1)
	r.lb.Listen(80)
	var srv *Socket
	cli := r.la.Dial(wire.MakeAddr(10, 1, 0, 2), 80)
	if cli == nil {
		t.Fatal("dial failed")
	}
	ok := r.pump(1_000_000, func() bool {
		for _, ev := range r.lb.Poll() {
			if ev.Kind == EvAccepted {
				srv = ev.Sock
			}
		}
		return cli.Established && srv != nil
	})
	if !ok {
		t.Fatal("handshake timed out")
	}

	chunk := make([]byte, 1024)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	rbuf := make([]byte, 4096)
	moved := 0
	step := func() {
		// Client: stage one chunk into the TX ring and post the send.
		if cli.SendSpace() >= len(chunk) {
			ptr := cli.WritePtr()
			cli.WriteAt(ptr, chunk)
			cli.PostSend(ptr.Add(seqnum.Size(len(chunk))))
		}
		r.k.Run(4_000)
		// Both sides: drain completions one by one and take the events
		// (the double-buffer hands the same storage back and forth).
		for r.la.PollOne() {
		}
		for range r.la.TakeEvents() {
		}
		for r.lb.PollOne() {
		}
		for range r.lb.TakeEvents() {
		}
		// Server: copy out whatever arrived with the allocation-free
		// read, then re-open the window.
		if n := srv.Available(); n > 0 {
			if n > len(rbuf) {
				n = len(rbuf)
			}
			p := srv.ReadPtr()
			srv.ReadAt(p, rbuf[:n])
			srv.PostRecv(p.Add(seqnum.Size(n)))
			moved += n
		}
	}
	// Warm up: grow the event buffers, rings and timer structures to
	// their steady-state sizes before measuring.
	for i := 0; i < 100; i++ {
		step()
	}
	if moved == 0 {
		t.Fatal("warmup moved no bytes; rig is not in steady state")
	}
	avg := testing.AllocsPerRun(200, step)
	if avg > 0.1 {
		t.Fatalf("steady-state poll cycle allocates %.2f objects/op, want 0", avg)
	}
}
