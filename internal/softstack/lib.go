// Package softstack models the F4T library and runtime (§4.1.1, §4.6):
// the userspace layer that turns POSIX-style socket calls into 16 B
// commands on per-thread queues, polls completion queues (the software
// doorbell), maintains the small amount of host-side metadata (window
// pointers), and surfaces epoll-style readiness events.
//
// One Lib instance corresponds to one application thread and owns one
// command/completion queue pair, so the stack shares nothing across
// threads and needs no locks (§4.6).
package softstack

import (
	"f4t/internal/engine"
	"f4t/internal/flow"
	"f4t/internal/hostif"
	"f4t/internal/seqnum"
	"f4t/internal/sim"
	"f4t/internal/wire"
)

// EventKind is an epoll-style readiness event.
type EventKind uint8

// Readiness events surfaced by Poll.
const (
	EvReadable EventKind = iota // new in-order data available
	EvWritable                  // send-buffer space released
	EvAccepted                  // new passive connection established
	EvConnected                 // active connect finished
	EvHangup                    // peer closed or reset
)

// Event is one epoll entry (the library's internal linked list of
// events, §4.1.1).
type Event struct {
	Kind EventKind
	Sock *Socket
}

// Lib is one thread's F4T library instance.
type Lib struct {
	k     *sim.Kernel
	eng   *engine.Engine
	ch    *hostif.Channel
	chIdx int

	socks     map[flow.ID]*Socket
	dialWait  map[uint16]*Socket // local port → socket awaiting CompAccepted
	listeners map[uint16]bool
	nextPort  uint16

	events []Event
	spare  []Event // double-buffer recycled by TakeEvents

	// Stats.
	CmdsPosted     int64
	CompsProcessed int64
	PostFailures   int64 // full command queue (blocking-API path)
}

// NewLib binds a library instance to channel chIdx of the engine.
func NewLib(k *sim.Kernel, eng *engine.Engine, chIdx int) *Lib {
	return &Lib{
		k:         k,
		eng:       eng,
		ch:        eng.Channels[chIdx],
		chIdx:     chIdx,
		socks:     make(map[flow.ID]*Socket),
		dialWait:  make(map[uint16]*Socket),
		listeners: make(map[uint16]bool),
		nextPort:  uint16(10000 + chIdx*2000),
	}
}

// post sends one command, tracking queue-full back-offs.
func (l *Lib) post(cmd hostif.Command) bool {
	if !l.ch.Post(cmd) {
		l.PostFailures++
		return false
	}
	l.CmdsPosted++
	return true
}

// Listen registers this thread as an acceptor for the port
// (SO_REUSEPORT: several threads may listen on the same port, §4.6).
// It reports whether the listen command was posted (false = command
// queue full; the caller retries, as netapi's effect pass does).
func (l *Lib) Listen(port uint16) bool {
	l.listeners[port] = true
	return l.post(hostif.Command{Op: hostif.OpListen, LocalPort: port})
}

// Dial starts an active open and returns the socket (not yet
// established; poll for EvConnected). It returns nil when the command
// queue is full — the caller retries, as a blocking connect() would.
func (l *Lib) Dial(remote wire.Addr, remotePort uint16) *Socket {
	l.nextPort++
	s := &Socket{lib: l, localPort: l.nextPort}
	if !l.post(hostif.Command{
		Op:         hostif.OpConnect,
		LocalPort:  l.nextPort,
		RemoteAddr: remote,
		RemotePort: remotePort,
	}) {
		return nil
	}
	l.dialWait[l.nextPort] = s
	return s
}

// Poll drains the completion queue (polling the software doorbell,
// §4.1.1), updates socket state, and returns every readiness event
// accumulated since the previous take (including those drained earlier
// via PollOne).
func (l *Lib) Poll() []Event {
	for {
		comp, ok := l.ch.PopCompletion()
		if !ok {
			break
		}
		l.CompsProcessed++
		l.apply(comp)
	}
	return l.TakeEvents()
}

// PollOne consumes a single completion; used by CPU-costed drivers that
// charge per completion. It reports whether one was available.
func (l *Lib) PollOne() bool {
	comp, ok := l.ch.PopCompletion()
	if !ok {
		return false
	}
	l.CompsProcessed++
	l.apply(comp)
	return true
}

// PendingCompletions exposes the completion backlog.
func (l *Lib) PendingCompletions() int { return l.ch.PendingCompletions() }

// PendingEvents returns readiness events already drained from the
// completion queue but not yet taken by the application.
func (l *Lib) PendingEvents() int { return len(l.events) }

// TakeEvents returns the readiness events accumulated by PollOne calls
// since the last take, clearing the list. CPU-costed drivers pair PollOne
// (charged per completion) with TakeEvents (free — the events were
// already paid for).
//
// The returned slice is valid only until the next take: the list
// double-buffers, so the buffer handed out now becomes the accumulation
// target after the next take. Callers that iterate the events before
// polling again (every driver in the tree) never notice; nothing may
// retain the slice across polls.
func (l *Lib) TakeEvents() []Event {
	out := l.events
	l.events = l.spare[:0]
	l.spare = out
	return out
}

func (l *Lib) apply(comp hostif.Completion) {
	switch comp.Kind {
	case hostif.CompAccepted:
		// Correlate an active open's hardware flow ID by local port.
		if s := l.dialWait[comp.Port]; s != nil {
			delete(l.dialWait, comp.Port)
			s.ID = comp.Flow
			s.bound = true
			l.socks[comp.Flow] = s
		}
	case hostif.CompEstablished:
		s := l.socks[comp.Flow]
		if s == nil {
			// Passive connection dispatched to this thread's queue.
			if !l.listeners[comp.Port] {
				return
			}
			s = &Socket{lib: l, ID: comp.Flow, localPort: comp.Port, bound: true, passive: true}
			l.socks[comp.Flow] = s
		}
		s.anchor(comp.Seq, comp.Seq2)
		s.Established = true
		if s.passive {
			l.events = append(l.events, Event{Kind: EvAccepted, Sock: s})
		} else {
			l.events = append(l.events, Event{Kind: EvConnected, Sock: s})
		}
	case hostif.CompAcked:
		if s := l.socks[comp.Flow]; s != nil {
			s.ackedTo = comp.Seq
			l.events = append(l.events, Event{Kind: EvWritable, Sock: s})
		}
	case hostif.CompDelivered:
		if s := l.socks[comp.Flow]; s != nil {
			s.deliveredTo = comp.Seq
			l.events = append(l.events, Event{Kind: EvReadable, Sock: s})
		}
	case hostif.CompPeerClosed:
		if s := l.socks[comp.Flow]; s != nil {
			s.PeerClosed = true
			l.events = append(l.events, Event{Kind: EvHangup, Sock: s})
		}
	case hostif.CompClosed:
		if s := l.socks[comp.Flow]; s != nil {
			s.Closed = true
			delete(l.socks, comp.Flow)
			l.events = append(l.events, Event{Kind: EvHangup, Sock: s})
		}
	case hostif.CompReset:
		// A reset that carries a port names an active open rejected
		// before any hardware flow ID existed (engine at MaxFlows): it is
		// correlated through dialWait like CompAccepted. That check must
		// come first — such completions leave Flow at its zero value, and
		// flow ID 0 is a legitimate connection.
		if s := l.dialWait[comp.Port]; comp.Port != 0 && s != nil {
			delete(l.dialWait, comp.Port)
			s.WasReset = true
			s.Closed = true
			l.events = append(l.events, Event{Kind: EvHangup, Sock: s})
		} else if s := l.socks[comp.Flow]; s != nil {
			s.WasReset = true
			s.Closed = true
			delete(l.socks, comp.Flow)
			l.events = append(l.events, Event{Kind: EvHangup, Sock: s})
		}
	}
}

// Socket is the host-side connection handle: the window-pointer metadata
// the library keeps ("only a handful amount of metadata, such as TCP
// window pointers, are stored and managed in the software", §4.1.1).
type Socket struct {
	lib *Lib
	ID  flow.ID

	localPort uint16
	bound     bool
	passive   bool
	anchored  bool

	writePtr    seqnum.Value // next send byte the app will queue
	ackedTo     seqnum.Value // device-released send boundary
	readPtr     seqnum.Value // next received byte the app will consume
	deliveredTo seqnum.Value // device-announced in-order boundary

	Established bool
	PeerClosed  bool
	Closed      bool
	WasReset    bool
	closeSent   bool
}

// LocalPort returns the port this socket is bound to.
func (s *Socket) LocalPort() uint16 { return s.localPort }

func (s *Socket) anchor(sndBase, rcvBase seqnum.Value) {
	if s.anchored {
		return
	}
	s.anchored = true
	s.writePtr = sndBase
	s.ackedTo = sndBase
	s.readPtr = rcvBase
	s.deliveredTo = rcvBase
}

// SendSpace returns free send-buffer bytes.
func (s *Socket) SendSpace() int {
	if !s.anchored {
		return 0
	}
	used := int(s.writePtr.DistanceFrom(s.ackedTo))
	space := int(s.lib.eng.TxRingSize()) - used
	if space < 0 {
		space = 0
	}
	return space
}

// Send queues up to len(data) bytes: copy into the TX hugepage ring,
// advance the REQ pointer, post one 16 B Send command carrying the
// pointer (§4.2.1). Returns bytes accepted (0 when the buffer or the
// command queue is full — the non-blocking EAGAIN path, §4.1.1).
func (s *Socket) Send(data []byte) int {
	return s.send(len(data), data)
}

// SendModelled queues n bytes without payload (modelled-only transfers).
func (s *Socket) SendModelled(n int) int {
	return s.send(n, nil)
}

func (s *Socket) send(n int, data []byte) int {
	if !s.Established || s.Closed || s.closeSent || n <= 0 {
		return 0
	}
	if space := s.SendSpace(); n > space {
		n = space
	}
	if n <= 0 {
		return 0
	}
	if data != nil {
		if ring := s.lib.eng.TxRing(s.ID); ring != nil {
			ring.WriteAt(s.writePtr, data[:n])
		}
	}
	ptr := s.writePtr.Add(seqnum.Size(n))
	if !s.lib.post(hostif.Command{Op: hostif.OpSend, Flow: s.ID, Ptr: ptr}) {
		return 0
	}
	s.writePtr = ptr
	return n
}

// Available returns in-order received bytes not yet consumed.
func (s *Socket) Available() int {
	if !s.anchored {
		return 0
	}
	return int(s.deliveredTo.DistanceFrom(s.readPtr))
}

// Recv consumes up to max bytes: read from the RX hugepage ring, advance
// the consumed pointer, post one Recv command so the hardware can
// re-open the advertised window.
func (s *Socket) Recv(max int) ([]byte, int) {
	n := s.Available()
	if n > max {
		n = max
	}
	if n <= 0 {
		return nil, 0
	}
	var out []byte
	if ring := s.lib.eng.RxRing(s.ID); ring != nil {
		out = ring.ReadAt(s.readPtr, n)
	}
	ptr := s.readPtr.Add(seqnum.Size(n))
	if !s.lib.post(hostif.Command{Op: hostif.OpRecv, Flow: s.ID, Ptr: ptr}) {
		return nil, 0
	}
	s.readPtr = ptr
	return out, n
}

// The split-effect surface below separates each Send/Recv into its
// pure-copy half and its command-posting half. netapi's blocking bridge
// needs the split: ring copies are invisible to the simulation (the
// engine never reads TX bytes beyond the posted REQ pointer, never
// rewrites RX bytes below the delivered pointer), so the facade performs
// them immediately while simulated time is frozen, but defers the
// pointer-advancing command posts into one deterministic per-tick pass.

// Anchored reports whether the byte-stream pointers are fixed (the
// handshake completed and anchored both ISNs).
func (s *Socket) Anchored() bool { return s.anchored }

// WritePtr returns the next send byte the app will queue.
func (s *Socket) WritePtr() seqnum.Value { return s.writePtr }

// AckedTo returns the device-released send boundary.
func (s *Socket) AckedTo() seqnum.Value { return s.ackedTo }

// ReadPtr returns the next received byte the app will consume.
func (s *Socket) ReadPtr() seqnum.Value { return s.readPtr }

// DeliveredTo returns the device-announced in-order boundary.
func (s *Socket) DeliveredTo() seqnum.Value { return s.deliveredTo }

// ReadAt copies delivered bytes starting at ptr into buf without
// consuming them (the consume is PostRecv). The caller must keep
// [ptr, ptr+len(buf)) within [readPtr, deliveredTo).
func (s *Socket) ReadAt(ptr seqnum.Value, buf []byte) {
	if ring := s.lib.eng.RxRing(s.ID); ring != nil {
		ring.ReadInto(ptr, buf)
	}
}

// WriteAt stages payload bytes into the TX ring at ptr without posting a
// send command (that is PostSend). The caller must keep the staged span
// within the free send space above writePtr.
func (s *Socket) WriteAt(ptr seqnum.Value, data []byte) {
	if ring := s.lib.eng.TxRing(s.ID); ring != nil {
		ring.WriteAt(ptr, data)
	}
}

// PostSend advances the REQ pointer to ptr with one Send command
// (payload already staged via WriteAt). Reports false when the command
// queue is full; the caller retries with the same ptr.
func (s *Socket) PostSend(ptr seqnum.Value) bool {
	if !s.Established || s.Closed || s.closeSent || ptr == s.writePtr {
		return true // nothing to do (or no longer possible: don't spin)
	}
	if !s.lib.post(hostif.Command{Op: hostif.OpSend, Flow: s.ID, Ptr: ptr}) {
		return false
	}
	s.writePtr = ptr
	return true
}

// PostRecv advances the consumed pointer to ptr with one Recv command,
// re-opening the advertised window (bytes up to ptr were already copied
// out via ReadAt). Reports false when the command queue is full.
func (s *Socket) PostRecv(ptr seqnum.Value) bool {
	if s.Closed || ptr == s.readPtr {
		return true
	}
	if !s.lib.post(hostif.Command{Op: hostif.OpRecv, Flow: s.ID, Ptr: ptr}) {
		return false
	}
	s.readPtr = ptr
	return true
}

// Close posts an orderly shutdown. It reports whether the close is in
// flight (or already done); false means the command queue was full and
// the caller should retry.
func (s *Socket) Close() bool {
	if s.closeSent || s.Closed {
		return true
	}
	if s.lib.post(hostif.Command{Op: hostif.OpClose, Flow: s.ID}) {
		s.closeSent = true
	}
	return s.closeSent
}

// Abort posts an immediate reset.
func (s *Socket) Abort() {
	s.lib.post(hostif.Command{Op: hostif.OpAbort, Flow: s.ID})
}
