package softstack

import "f4t/internal/telemetry"

// Instrument registers the library instance's command/completion
// accounting under prefix (e.g. "mach_a.t0.lib"). Safe on a nil
// registry.
func (l *Lib) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Gauge(prefix+".cmds_posted", func() int64 { return l.CmdsPosted })
	reg.Gauge(prefix+".comps_processed", func() int64 { return l.CompsProcessed })
	reg.Gauge(prefix+".post_failures", func() int64 { return l.PostFailures })
}
