package softstack

import (
	"bytes"
	"testing"

	"f4t/internal/engine"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/wire"
)

type rig struct {
	k        *sim.Kernel
	ea, eb   *engine.Engine
	la, lb   *Lib
}

func newRig(t testing.TB, channels int) *rig {
	t.Helper()
	k := sim.New()
	link := netsim.NewLink(k, 100, 600, 11)
	cfgA := engine.DefaultConfig()
	cfgA.IP, cfgA.MAC, cfgA.Seed, cfgA.Channels, cfgA.CarryBytes = wire.MakeAddr(10, 1, 0, 1), wire.MAC{2, 1, 0, 0, 0, 1}, 1, channels, true
	cfgB := cfgA
	cfgB.IP, cfgB.MAC, cfgB.Seed = wire.MakeAddr(10, 1, 0, 2), wire.MAC{2, 1, 0, 0, 0, 2}, 2
	ea := engine.New(k, cfgA, link.AtoB.Send)
	eb := engine.New(k, cfgB, link.BtoA.Send)
	link.AtoB.SetSink(eb.DeliverPacket)
	link.BtoA.SetSink(ea.DeliverPacket)
	ea.LearnPeer(cfgB.IP, cfgB.MAC)
	eb.LearnPeer(cfgA.IP, cfgA.MAC)
	k.Register(sim.TickerFunc(ea.Tick))
	k.Register(sim.TickerFunc(eb.Tick))
	return &rig{k: k, ea: ea, eb: eb, la: NewLib(k, ea, 0), lb: NewLib(k, eb, 0)}
}

// pump advances the simulation, polling only side A's completions; the
// predicate owns side B's queue (so it sees the events it cares about).
func (r *rig) pump(budget int64, pred func() bool) bool {
	for i := int64(0); i < budget; i += 50 {
		r.la.Poll()
		if pred() {
			return true
		}
		r.k.Run(50)
	}
	return pred()
}

func TestLibConnectSendRecv(t *testing.T) {
	r := newRig(t, 1)
	r.lb.Listen(80)
	var srv *Socket
	cli := r.la.Dial(wire.MakeAddr(10, 1, 0, 2), 80)
	if cli == nil {
		t.Fatal("dial failed")
	}
	ok := r.pump(1_000_000, func() bool {
		for _, ev := range r.lb.Poll() {
			if ev.Kind == EvAccepted {
				srv = ev.Sock
			}
		}
		return cli.Established && srv != nil
	})
	if !ok {
		t.Fatal("handshake timed out")
	}

	msg := []byte("library to library over the engines")
	if n := cli.Send(msg); n != len(msg) {
		t.Fatalf("send = %d", n)
	}
	if !r.pump(2_000_000, func() bool { r.lb.Poll(); return srv.Available() >= len(msg) }) {
		t.Fatal("delivery timed out")
	}
	got, n := srv.Recv(1024)
	if n != len(msg) || !bytes.Equal(got, msg) {
		t.Fatalf("recv = %q", got)
	}

	// Close both ways.
	cli.Close()
	if !r.pump(3_000_000, func() bool { r.lb.Poll(); return srv.PeerClosed }) {
		t.Fatal("peer close not seen")
	}
	srv.Close()
	if !r.pump(20_000_000, func() bool { r.lb.Poll(); return cli.Closed && srv.Closed }) {
		t.Fatal("teardown timed out")
	}
}

func TestLibDialFailsWhenQueueFull(t *testing.T) {
	r := newRig(t, 1)
	// Saturate the command queue without letting the engine drain it:
	// post raw commands directly.
	n := 0
	for r.la.Dial(wire.MakeAddr(10, 1, 0, 2), 80) != nil {
		n++
		if n > 5000 {
			t.Fatal("dial never failed despite a bounded queue")
		}
	}
	if r.la.PostFailures == 0 {
		t.Fatal("no post failures recorded")
	}
}

func TestLibSendBoundedByBuffer(t *testing.T) {
	r := newRig(t, 1)
	r.lb.Listen(80)
	cli := r.la.Dial(wire.MakeAddr(10, 1, 0, 2), 80)
	if !r.pump(1_000_000, func() bool { return cli.Established }) {
		t.Fatal("handshake timed out")
	}
	// Without the peer consuming, sends must stop at the buffer size.
	total := 0
	for i := 0; i < 10000; i++ {
		n := cli.SendModelled(4096)
		if n == 0 {
			break
		}
		total += n
	}
	if total > int(r.ea.TxRingSize()) {
		t.Fatalf("accepted %d bytes into a %d buffer", total, r.ea.TxRingSize())
	}
	if total < int(r.ea.TxRingSize())/2 {
		t.Fatalf("accepted only %d bytes", total)
	}
}

func TestSOReusePortDistribution(t *testing.T) {
	r := newRig(t, 4)
	libs := make([]*Lib, 4)
	libs[0] = r.lb
	for i := 1; i < 4; i++ {
		libs[i] = NewLib(r.k, r.eb, i)
	}
	for _, l := range libs {
		l.Listen(80)
	}
	r.k.Run(3_000)
	clients := make([]*Socket, 8)
	for i := range clients {
		clients[i] = r.la.Dial(wire.MakeAddr(10, 1, 0, 2), 80)
	}
	accepted := make([]int, 4)
	ok := r.pump(3_000_000, func() bool {
		for i, l := range libs {
			for _, ev := range l.Poll() {
				if ev.Kind == EvAccepted {
					accepted[i]++
				}
			}
		}
		n := 0
		for _, c := range accepted {
			n += c
		}
		return n == 8
	})
	if !ok {
		t.Fatalf("accepts = %v", accepted)
	}
	// SO_REUSEPORT round-robin: every listener got exactly 2.
	for i, n := range accepted {
		if n != 2 {
			t.Fatalf("listener %d accepted %d, want 2 (round-robin): %v", i, n, accepted)
		}
	}
}

func TestAbortReset(t *testing.T) {
	r := newRig(t, 1)
	r.lb.Listen(80)
	var srv *Socket
	cli := r.la.Dial(wire.MakeAddr(10, 1, 0, 2), 80)
	r.pump(1_000_000, func() bool {
		for _, ev := range r.lb.Poll() {
			if ev.Kind == EvAccepted {
				srv = ev.Sock
			}
		}
		return cli.Established && srv != nil
	})
	cli.Abort()
	if !r.pump(2_000_000, func() bool { r.lb.Poll(); return srv.WasReset }) {
		t.Fatal("reset not observed by the peer")
	}
}
