// Package resource models FPGA resource composition for Fig 7b: per-
// module LUT/FF/BRAM costs on the Xilinx U280, composed per design
// configuration. The per-module numbers are back-derived from the
// paper's reported totals (FtEngine-1FPC = 16 %/11 %/27 %, FtEngine-8FPC
// = 23 %/15 %/32 %) and the U280's device capacity.
package resource

import "fmt"

// U280 device capacity (Xilinx Alveo U280 datasheet).
const (
	U280LUTs  = 1_303_680
	U280FFs   = 2_607_360
	U280BRAMs = 2_016 // 36 Kb blocks
)

// Usage is one module's absolute resource consumption.
type Usage struct {
	LUTs  int
	FFs   int
	BRAMs int
}

// Add accumulates.
func (u Usage) Add(v Usage) Usage {
	return Usage{u.LUTs + v.LUTs, u.FFs + v.FFs, u.BRAMs + v.BRAMs}
}

// Scale multiplies by an integer count.
func (u Usage) Scale(n int) Usage {
	return Usage{u.LUTs * n, u.FFs * n, u.BRAMs * n}
}

// Pct renders utilization percentages against the U280.
func (u Usage) Pct() (lut, ff, bram float64) {
	return 100 * float64(u.LUTs) / U280LUTs,
		100 * float64(u.FFs) / U280FFs,
		100 * float64(u.BRAMs) / U280BRAMs
}

// String renders like the paper's table rows.
func (u Usage) String() string {
	l, f, b := u.Pct()
	return fmt.Sprintf("LUT %.0f%%  FF %.0f%%  BRAM %.0f%%", l, f, b)
}

// Per-module costs. The fixed infrastructure (shell, Ethernet/PCIe IPs,
// host interface, data path, scheduler, memory manager) dominates; each
// additional FPC adds ~1 % LUTs / ~0.6 % FFs / ~0.7 % BRAMs, which is
// what makes the 1→8 FPC delta small in the paper (16→23 % LUTs).
var (
	// Shell: PCIe/DMA/Ethernet hard-IP wrappers and clocking.
	Shell = Usage{LUTs: 91_000, FFs: 146_000, BRAMs: 210}
	// HostInterface: command queues, doorbells, DMA engines (§4.1.1).
	HostInterface = Usage{LUTs: 26_000, FFs: 36_500, BRAMs: 76}
	// PacketGen: TX header generation and MSS splitting.
	PacketGen = Usage{LUTs: 18_200, FFs: 26_000, BRAMs: 38}
	// RxParser: cuckoo lookup, reassembly bookkeeping, event digestion.
	RxParser = Usage{LUTs: 31_300, FFs: 41_700, BRAMs: 120}
	// Scheduler: location LUT partitions, coalesce FIFOs, migration FSM.
	Scheduler = Usage{LUTs: 20_900, FFs: 26_000, BRAMs: 30}
	// MemoryManager: DRAM/HBM controllers' soft logic plus the TCB cache.
	MemoryManager = Usage{LUTs: 10_400, FFs: 15_600, BRAMs: 50}
	// ARPICMP: the diagnostics protocols.
	ARPICMP = Usage{LUTs: 3_900, FFs: 5_200, BRAMs: 2}
	// FPCUnit: one flow processing core — dual-memory tables, event
	// handler, TCB manager, FPU, CAM (§4.2).
	FPCUnit = Usage{LUTs: 13_000, FFs: 15_600, BRAMs: 14}
)

// Component pairs a name with its usage for table rendering.
type Component struct {
	Name  string
	Usage Usage
}

// Components lists the fixed modules in presentation order.
func Components() []Component {
	return []Component{
		{"Shell (PCIe/Ethernet)", Shell},
		{"Host interface", HostInterface},
		{"Packet generator", PacketGen},
		{"RX parser", RxParser},
		{"Scheduler", Scheduler},
		{"Memory manager", MemoryManager},
		{"ARP + ICMP", ARPICMP},
		{"FPC (each)", FPCUnit},
	}
}

// FtEngine composes the full design with the given FPC count.
func FtEngine(numFPCs int) Usage {
	u := Shell
	u = u.Add(HostInterface)
	u = u.Add(PacketGen)
	u = u.Add(RxParser)
	u = u.Add(Scheduler)
	u = u.Add(MemoryManager)
	u = u.Add(ARPICMP)
	u = u.Add(FPCUnit.Scale(numFPCs))
	return u
}
