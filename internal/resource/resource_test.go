package resource

import "testing"

func TestCompositionMatchesPaperTotals(t *testing.T) {
	// Fig 7b: FtEngine-1FPC = 16 % LUT / 11 % FF / 27 % BRAM,
	// FtEngine-8FPC = 23 % / 15 % / 32 %; allow ±1.5 points.
	check := func(name string, u Usage, wantLUT, wantFF, wantBRAM float64) {
		l, f, b := u.Pct()
		for _, c := range []struct {
			got, want float64
			what      string
		}{{l, wantLUT, "LUT"}, {f, wantFF, "FF"}, {b, wantBRAM, "BRAM"}} {
			if c.got < c.want-1.5 || c.got > c.want+1.5 {
				t.Errorf("%s %s = %.1f%%, paper %.0f%%", name, c.what, c.got, c.want)
			}
		}
	}
	check("1 FPC", FtEngine(1), 16, 11, 27)
	check("8 FPC", FtEngine(8), 23, 15, 32)
}

func TestScalingIsPerFPCLinear(t *testing.T) {
	d := FtEngine(8).LUTs - FtEngine(1).LUTs
	if d != 7*FPCUnit.LUTs {
		t.Fatalf("8−1 FPC LUT delta = %d, want %d", d, 7*FPCUnit.LUTs)
	}
}

func TestComponentsSumToComposition(t *testing.T) {
	var sum Usage
	for _, c := range Components() {
		if c.Name == "FPC (each)" {
			sum = sum.Add(c.Usage.Scale(8))
		} else {
			sum = sum.Add(c.Usage)
		}
	}
	if sum != FtEngine(8) {
		t.Fatalf("component sum %+v != composition %+v", sum, FtEngine(8))
	}
}

func TestFitsOnU280WithRoom(t *testing.T) {
	// §4.7: "the remaining logic can be used to implement complex
	// algorithms, more FPCs, or other networking functionalities."
	l, f, b := FtEngine(8).Pct()
	if l > 50 || f > 50 || b > 50 {
		t.Fatalf("8-FPC design leaves no headroom: %.0f/%.0f/%.0f%%", l, f, b)
	}
	// Even 32 FPCs must fit (the scaling claim of §4.4.2).
	l32, _, b32 := FtEngine(32).Pct()
	if l32 > 100 || b32 > 100 {
		t.Fatalf("32 FPCs do not fit: %.0f%% LUT %.0f%% BRAM", l32, b32)
	}
}
