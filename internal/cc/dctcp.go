package cc

import "f4t/internal/flow"

func init() { Register("dctcp", func() Algorithm { return DCTCP{} }) }

// CCVars layout for DCTCP.
const (
	dcAlpha     = iota // EWMA of the marked fraction, fixed-point /1024
	dcWindowEnd        // SndNxt captured at the window boundary
	dcSawCE            // 1 when this observation window carried any ECE
)

// dctcpShiftG is g = 1/16 in the α EWMA (RFC 8257's recommended gain).
const dctcpShiftG = 4

// DCTCP implements Data Center TCP (RFC 8257) on top of the ECN
// plumbing: the receiver echoes CE marks, the sender maintains
// α ← (1−g)·α + g·F per window (F = fraction of ECE-covered bytes), and
// reduces cwnd by α/2 on marked windows instead of halving — keeping
// queues short without sacrificing throughput. Like the paper's other
// FPU programs, its state is a handful of integer TCB words (§4.5); the
// EWMA shift-and-add pipeline is a little deeper than NewReno's.
//
// Requires tcpproc.Config.ECN (and an ECN-marking switch) to see any
// feedback; without marks it behaves like Reno.
type DCTCP struct{}

// Name implements Algorithm.
func (DCTCP) Name() string { return "dctcp" }

// PipelineLatency implements Algorithm.
func (DCTCP) PipelineLatency() int { return 29 }

// Init implements Algorithm.
func (DCTCP) Init(t *flow.TCB, mss uint32) {
	t.Cwnd = InitialWindow * mss
	t.Ssthresh = 0x7FFFFFFF
	for i := range t.CCVars {
		t.CCVars[i] = 0
	}
	t.EceBytes, t.AckedBytes = 0, 0
}

// OnAck implements Algorithm: Reno-style growth, with the per-window α
// update and proportional decrease when marks arrived (RFC 8257 §4.2).
func (DCTCP) OnAck(t *flow.TCB, acked uint32, _, _ int64, mss uint32) {
	if t.InRecovery {
		return
	}
	if t.EceBytes > 0 {
		t.CCVars[dcSawCE] = 1
	}

	// Window boundary: one cwnd of data acknowledged since the marker.
	if uint32(t.SndUna) >= uint32(t.CCVars[dcWindowEnd]) {
		t.CCVars[dcWindowEnd] = uint64(uint32(t.SndNxt))

		if t.AckedBytes > 0 {
			// F in fixed-point /1024, then α ← α − α/16 + F/16.
			f := t.EceBytes * 1024 / t.AckedBytes
			alpha := t.CCVars[dcAlpha]
			alpha = alpha - alpha>>dctcpShiftG + f>>dctcpShiftG
			if alpha > 1024 {
				alpha = 1024
			}
			t.CCVars[dcAlpha] = alpha
		}
		t.EceBytes, t.AckedBytes = 0, 0

		if t.CCVars[dcSawCE] != 0 {
			// Proportional decrease: cwnd ← cwnd·(1 − α/2).
			t.CCVars[dcSawCE] = 0
			cut := uint64(t.Cwnd) * t.CCVars[dcAlpha] / 2048
			newCwnd := uint32(uint64(t.Cwnd) - cut)
			if newCwnd < 2*mss {
				newCwnd = 2 * mss
			}
			t.Cwnd = newCwnd
			t.Ssthresh = newCwnd
			return
		}
	}

	// Unmarked path: standard slow start / congestion avoidance.
	if t.Cwnd < t.Ssthresh {
		inc := acked
		if inc > mss {
			inc = mss
		}
		t.Cwnd += inc
		return
	}
	inc := mss * mss / t.Cwnd
	if inc == 0 {
		inc = 1
	}
	t.Cwnd += inc
}

// OnLoss implements Algorithm: actual packet loss still halves, as in
// RFC 8257 (DCTCP's gentler cut applies only to ECN marks).
func (DCTCP) OnLoss(t *flow.TCB, _ int64, mss uint32) {
	ss := t.InFlight() / 2
	if ss < MinSsthresh(mss) {
		ss = MinSsthresh(mss)
	}
	t.Ssthresh = ss
	t.Cwnd = ss + 3*mss
}

// OnRecoveryExit implements Algorithm.
func (DCTCP) OnRecoveryExit(t *flow.TCB, mss uint32) {
	t.Cwnd = t.Ssthresh
}

// OnTimeout implements Algorithm.
func (DCTCP) OnTimeout(t *flow.TCB, _ int64, mss uint32) {
	ss := t.InFlight() / 2
	if ss < MinSsthresh(mss) {
		ss = MinSsthresh(mss)
	}
	t.Ssthresh = ss
	t.Cwnd = mss
}
