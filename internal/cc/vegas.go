package cc

import "f4t/internal/flow"

func init() { Register("vegas", func() Algorithm { return Vegas{} }) }

// CCVars layout for Vegas.
const (
	vgBaseRTT = iota // minimum RTT ever observed (ns)
	vgMinRTT         // minimum RTT in the current epoch (ns)
	vgCntRTT         // RTT samples in the current epoch
	vgBegSeq         // epoch boundary: SndNxt at epoch start (one epoch ~ one RTT)
	vgEnabled        // becomes 1 after the first RTT sample
)

// Vegas thresholds in segments (Brakmo & Peterson 1995): grow below alpha,
// hold between, shrink above beta; gamma bounds slow start.
const (
	vegasAlpha = 2
	vegasBeta  = 4
	vegasGamma = 1
)

// Vegas implements TCP Vegas delay-based congestion avoidance. The
// expected/actual throughput comparison requires integer divisions each
// window, which is why its FPU program is the deepest pipeline the paper
// reports (68 cycles, §5.4).
type Vegas struct{}

// Name implements Algorithm.
func (Vegas) Name() string { return "vegas" }

// PipelineLatency implements Algorithm.
func (Vegas) PipelineLatency() int { return 68 }

// Init implements Algorithm.
func (Vegas) Init(t *flow.TCB, mss uint32) {
	t.Cwnd = InitialWindow * mss
	t.Ssthresh = 0x7FFFFFFF
	for i := range t.CCVars {
		t.CCVars[i] = 0
	}
}

// OnAck implements Algorithm: once per RTT, compare expected and actual
// rates and adjust the window by at most one segment.
func (Vegas) OnAck(t *flow.TCB, acked uint32, rttNS, nowNS int64, mss uint32) {
	if t.InRecovery {
		return
	}
	if rttNS > 0 {
		if t.CCVars[vgBaseRTT] == 0 || uint64(rttNS) < t.CCVars[vgBaseRTT] {
			t.CCVars[vgBaseRTT] = uint64(rttNS)
		}
		if t.CCVars[vgMinRTT] == 0 || uint64(rttNS) < t.CCVars[vgMinRTT] {
			t.CCVars[vgMinRTT] = uint64(rttNS)
		}
		t.CCVars[vgCntRTT]++
		t.CCVars[vgEnabled] = 1
	}

	// Epoch boundary: the ack has crossed the SndNxt recorded at the last
	// adjustment, i.e. one window's worth of data has been acknowledged.
	if uint32(t.SndUna) < uint32(t.CCVars[vgBegSeq]) {
		return
	}
	t.CCVars[vgBegSeq] = uint64(uint32(t.SndNxt))

	if t.CCVars[vgEnabled] == 0 || t.CCVars[vgCntRTT] == 0 {
		// No samples yet: fall back to slow-start growth.
		if t.Cwnd < t.Ssthresh {
			t.Cwnd += mss
		}
		return
	}

	baseRTT := int64(t.CCVars[vgBaseRTT])
	minRTT := int64(t.CCVars[vgMinRTT])
	if minRTT < baseRTT {
		minRTT = baseRTT
	}
	cwndSeg := int64(t.Cwnd / mss)
	if cwndSeg < 2 {
		cwndSeg = 2
	}
	// diff = cwnd * (rtt - baseRTT) / rtt, in segments — the integer
	// divisions that give Vegas its 68-cycle pipeline.
	diff := cwndSeg * (minRTT - baseRTT) / minRTT

	if t.Cwnd < t.Ssthresh {
		// Slow start, gated by gamma.
		if diff > vegasGamma {
			t.Ssthresh = t.Cwnd
			if t.Cwnd > uint32(diff)*mss {
				t.Cwnd -= uint32(diff) * mss
			}
			if t.Cwnd < 2*mss {
				t.Cwnd = 2 * mss
			}
		} else {
			t.Cwnd += mss
		}
	} else {
		switch {
		case diff < vegasAlpha:
			t.Cwnd += mss
		case diff > vegasBeta:
			if t.Cwnd > 3*mss {
				t.Cwnd -= mss
			}
		}
	}
	t.CCVars[vgMinRTT] = 0
	t.CCVars[vgCntRTT] = 0
}

// OnLoss implements Algorithm: Vegas falls back to Reno-style halving on
// packet loss.
func (Vegas) OnLoss(t *flow.TCB, _ int64, mss uint32) {
	ss := t.InFlight() / 2
	if ss < MinSsthresh(mss) {
		ss = MinSsthresh(mss)
	}
	t.Ssthresh = ss
	t.Cwnd = ss + 3*mss
}

// OnRecoveryExit implements Algorithm.
func (Vegas) OnRecoveryExit(t *flow.TCB, mss uint32) {
	t.Cwnd = t.Ssthresh
}

// OnTimeout implements Algorithm.
func (Vegas) OnTimeout(t *flow.TCB, _ int64, mss uint32) {
	ss := t.InFlight() / 2
	if ss < MinSsthresh(mss) {
		ss = MinSsthresh(mss)
	}
	t.Ssthresh = ss
	t.Cwnd = mss
}
