package cc

import "f4t/internal/flow"

func init() { Register("bbr", func() Algorithm { return BBR{} }) }

// CCVars layout for BBR. Everything is integer state in the TCB's spare
// words, per the FPU constraints — the two filters are windowed-by-expiry
// rather than true sliding windows so each fits in a (value, stamp) pair.
const (
	bbState        = iota // packed: mode | cycle<<8 | fullBwCnt<<16
	bbBtlBw               // bottleneck bandwidth estimate, bytes/second
	bbBtlBwStamp          // ns when bbBtlBw last advanced (filter expiry)
	bbMinRTT              // minimum RTT estimate, ns
	bbMinRttStamp         // ns when bbMinRTT was last lowered/refreshed
	bbEpochStart          // ns start of the current delivery-rate epoch
	bbEpochBytes          // bytes acked within the current epoch
	bbFullBw              // bandwidth at the last full-pipe check, bytes/s
	bbPriorCwnd           // cwnd saved on entering ProbeRTT or recovery
	bbPhaseStamp          // ns when the current gain phase / dwell began
)

// BBR modes (the v1 state machine).
const (
	bbrStartup  = 0
	bbrDrain    = 1
	bbrProbeBW  = 2
	bbrProbeRTT = 3
)

// BBR timing and gain constants. The paper-scale datacenter RTTs this
// testbed simulates are microseconds, so the min-RTT window and ProbeRTT
// dwell are scaled down from Linux's 10 s / 200 ms to keep the probe
// cadence proportionate to the millisecond-scale runs.
const (
	bbrMinRttWinNS = 10_000_000 // re-probe the floor every 10 ms
	bbrProbeRttNS  = 200_000    // dwell at 4 MSS for 200 us
	bbrMinEpochNS  = 100_000    // rate-epoch floor before an RTT is known
	bbrBwWinRTTs   = 10         // bandwidth max-filter expiry, in min-RTTs
	bbrMinCwndSegs = 4          // ProbeRTT / absolute window floor
	bbrFullBwCnt   = 3          // plateau epochs that mean "pipe is full"
)

// bbrCycleGain is the ProbeBW pacing-gain cycle applied to the BDP
// (numerators over bbrGainDen): one probing phase, one draining phase,
// six cruise phases.
var bbrCycleGain = [8]uint64{320, 192, 256, 256, 256, 256, 256, 256}

const bbrGainDen = 256

// BBR implements a model-based congestion controller in the shape of
// BBR v1 (Cardwell et al.): instead of reacting to loss it estimates the
// bottleneck bandwidth (windowed-max delivery rate) and the path's
// minimum RTT, and pins cwnd to pacing-gain multiples of the
// bandwidth-delay product. With no pacer in the TX path, the gain cycle
// modulates cwnd directly — the standard cwnd-limited approximation.
// All arithmetic is 64-bit integer (two divisions per rate epoch, one
// per BDP evaluation), giving it the deepest FPU pipeline in the
// registry.
type BBR struct{}

// Name implements Algorithm.
func (BBR) Name() string { return "bbr" }

// PipelineLatency implements Algorithm: the filter compare/update chains
// plus three integer divisions synthesize deeper than Vegas's 68 cycles.
func (BBR) PipelineLatency() int { return 85 }

// Init implements Algorithm.
func (BBR) Init(t *flow.TCB, mss uint32) {
	t.Cwnd = InitialWindow * mss
	t.Ssthresh = InitialSsthresh // never consulted: BBR has no ssthresh
	for i := range t.CCVars {
		t.CCVars[i] = 0
	}
}

func bbrUnpack(w uint64) (mode, cycle, fullCnt uint64) {
	return w & 0xff, (w >> 8) & 0xff, (w >> 16) & 0xff
}

func bbrPack(mode, cycle, fullCnt uint64) uint64 {
	return mode&0xff | (cycle&0xff)<<8 | (fullCnt&0xff)<<16
}

// bbrBDP returns the model's bandwidth-delay product in bytes.
func bbrBDP(v *[flow.CCVarCount]uint64) uint64 {
	return v[bbBtlBw] * v[bbMinRTT] / 1_000_000_000
}

// bbrClamp floors a window target at 4 MSS and bounds it away from
// uint32 overflow.
func bbrClamp(target uint64, mss uint32) uint32 {
	if floor := uint64(bbrMinCwndSegs) * uint64(mss); target < floor {
		target = floor
	}
	if target > 1<<30 {
		target = 1 << 30
	}
	return uint32(target)
}

// OnAck implements Algorithm: update the two path filters, close
// delivery-rate epochs, and drive the Startup/Drain/ProbeBW/ProbeRTT
// mode machine, setting cwnd from the model each step.
func (BBR) OnAck(t *flow.TCB, acked uint32, rttNS, nowNS int64, mss uint32) {
	if t.InRecovery {
		return
	}
	v := &t.CCVars
	mode, cycle, fullCnt := bbrUnpack(v[bbState])

	// Min-RTT filter: lower samples always accepted; an equal sample
	// does NOT refresh the stamp, so a path that never beats the floor
	// re-probes it on the bbrMinRttWinNS cadence (ProbeRTT below). While
	// dwelling in ProbeRTT the queue is drained, so any sample there
	// that undercuts the floor retakes it.
	if rttNS > 0 && (v[bbMinRTT] == 0 || uint64(rttNS) < v[bbMinRTT]) {
		v[bbMinRTT] = uint64(rttNS)
		v[bbMinRttStamp] = uint64(nowNS)
	}
	minRtt := int64(v[bbMinRTT])

	// Delivery-rate epoch: accumulate acked bytes, and once at least one
	// min-RTT (or the pre-sample floor) has elapsed, close the epoch into
	// a bandwidth sample for the max filter. The filter forgets by
	// expiry: a sample below the max only replaces it once the max has
	// gone bbrBwWinRTTs min-RTTs without advancing.
	if v[bbEpochStart] == 0 {
		v[bbEpochStart] = uint64(nowNS)
		v[bbEpochBytes] = 0
	}
	v[bbEpochBytes] += uint64(acked)
	epochLen := nowNS - int64(v[bbEpochStart])
	epochMin := minRtt
	if epochMin < bbrMinEpochNS {
		epochMin = bbrMinEpochNS
	}
	if epochLen >= epochMin {
		bw := v[bbEpochBytes] * 1_000_000_000 / uint64(epochLen)
		if bw >= v[bbBtlBw] {
			v[bbBtlBw] = bw
			v[bbBtlBwStamp] = uint64(nowNS)
		} else if minRtt > 0 && nowNS-int64(v[bbBtlBwStamp]) > bbrBwWinRTTs*minRtt {
			v[bbBtlBw] = bw
			v[bbBtlBwStamp] = uint64(nowNS)
		}
		v[bbEpochStart] = uint64(nowNS)
		v[bbEpochBytes] = 0

		// Full-pipe detection: three epochs without 25 % bandwidth growth
		// ends Startup.
		if mode == bbrStartup {
			if 4*v[bbBtlBw] < 5*v[bbFullBw] {
				fullCnt++
				if fullCnt >= bbrFullBwCnt {
					mode = bbrDrain
				}
			} else {
				v[bbFullBw] = v[bbBtlBw]
				fullCnt = 0
			}
		}
	}

	// ProbeRTT entry: the floor has not been beaten for a full window —
	// shrink to 4 MSS so the queue drains and the next samples see the
	// true propagation delay.
	if mode != bbrProbeRTT && minRtt > 0 &&
		nowNS-int64(v[bbMinRttStamp]) > bbrMinRttWinNS {
		mode = bbrProbeRTT
		if uint64(t.Cwnd) > v[bbPriorCwnd] {
			v[bbPriorCwnd] = uint64(t.Cwnd)
		}
		v[bbPhaseStamp] = uint64(nowNS)
	}

	bdp := bbrBDP(v)

	switch mode {
	case bbrStartup:
		// Exponential growth (double per RTT) until the pipe is full.
		t.Cwnd += acked

	case bbrDrain:
		// Descend to the BDP (never below the 4-MSS floor), mirroring
		// Startup's slope, then cruise.
		target := bdp
		if floor := uint64(bbrMinCwndSegs) * uint64(mss); target < floor {
			target = floor
		}
		if uint64(t.Cwnd) <= target+uint64(acked) {
			t.Cwnd = bbrClamp(target, mss)
			mode, cycle = bbrProbeBW, 0
			v[bbPhaseStamp] = uint64(nowNS)
		} else {
			t.Cwnd -= acked
		}

	case bbrProbeBW:
		// Advance the gain cycle once per min-RTT; cwnd follows
		// gain × BDP.
		if minRtt > 0 && nowNS-int64(v[bbPhaseStamp]) >= minRtt {
			cycle = (cycle + 1) % uint64(len(bbrCycleGain))
			v[bbPhaseStamp] = uint64(nowNS)
		}
		t.Cwnd = bbrClamp(bdp*bbrCycleGain[cycle]/bbrGainDen, mss)

	case bbrProbeRTT:
		t.Cwnd = bbrMinCwndSegs * mss
		if nowNS-int64(v[bbPhaseStamp]) >= bbrProbeRttNS {
			// Dwell over: the floor is considered re-validated for a
			// fresh window; restore the saved window and resume.
			v[bbMinRttStamp] = uint64(nowNS)
			restored := v[bbPriorCwnd]
			v[bbPriorCwnd] = 0
			if bdp > restored {
				restored = bdp
			}
			t.Cwnd = bbrClamp(restored, mss)
			if fullCnt >= bbrFullBwCnt {
				mode, cycle = bbrProbeBW, 0
			} else {
				mode = bbrStartup
			}
			v[bbPhaseStamp] = uint64(nowNS)
		}
	}
	v[bbState] = bbrPack(mode, cycle, fullCnt)
}

// OnLoss implements Algorithm: BBR does not multiplicatively decrease.
// It remembers the pre-recovery window (restored on exit) and conserves
// at most what is in flight meanwhile; the model, not the loss, sets the
// window going forward.
func (BBR) OnLoss(t *flow.TCB, nowNS int64, mss uint32) {
	if uint64(t.Cwnd) > t.CCVars[bbPriorCwnd] {
		t.CCVars[bbPriorCwnd] = uint64(t.Cwnd)
	}
	inFlight := t.InFlight()
	if inFlight < t.Cwnd {
		t.Cwnd = inFlight
	}
	if t.Cwnd < bbrMinCwndSegs*mss {
		t.Cwnd = bbrMinCwndSegs * mss
	}
}

// OnRecoveryExit implements Algorithm: restore the saved window (the
// other programs collapse to ssthresh here; BBR has none).
func (BBR) OnRecoveryExit(t *flow.TCB, mss uint32) {
	if prior := t.CCVars[bbPriorCwnd]; prior > uint64(t.Cwnd) {
		t.Cwnd = bbrClamp(prior, mss)
	}
	t.CCVars[bbPriorCwnd] = 0
}

// OnTimeout implements Algorithm: collapse to one segment like everyone
// else (RFC 6298 conservatism), but keep the model state — the next acks
// snap the window back to the model's target rather than slow-starting.
func (BBR) OnTimeout(t *flow.TCB, nowNS int64, mss uint32) {
	if uint64(t.Cwnd) > t.CCVars[bbPriorCwnd] {
		t.CCVars[bbPriorCwnd] = uint64(t.Cwnd)
	}
	t.Cwnd = mss
}
