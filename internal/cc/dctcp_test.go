package cc

import (
	"testing"

	"f4t/internal/flow"
)

func TestDCTCPRegistered(t *testing.T) {
	a := MustNew("dctcp")
	if a.Name() != "dctcp" || a.PipelineLatency() != 29 {
		t.Fatalf("dctcp identity: %s/%d", a.Name(), a.PipelineLatency())
	}
}

// ackWindow feeds one full window of ACKs with the given fraction of
// ECE-covered bytes and crosses the window boundary.
func ackWindow(a Algorithm, tcb *fakeTCBCtx, markedFrac float64) {
	t := tcb.t
	winBytes := uint64(t.Cwnd)
	t.AckedBytes += winBytes
	t.EceBytes += uint64(float64(winBytes) * markedFrac)
	// Advance the stream across the recorded window boundary.
	t.SndUna = t.SndUna.Add(65000)
	t.SndNxt = t.SndUna.Add(10000)
	a.OnAck(t, 1460, 1_000_000, tcb.now, 1460)
	tcb.now += 1_000_000
}

type fakeTCBCtx struct {
	t   *flow.TCB
	now int64
}

func TestDCTCPAlphaTracksMarkRate(t *testing.T) {
	a := MustNew("dctcp")
	tcb := newTCB(a)
	tcb.Ssthresh = tcb.Cwnd // out of slow start
	ctx := &fakeTCBCtx{t: tcb, now: 1}

	// Sustained full marking drives α toward 1 (1024 fixed-point).
	for i := 0; i < 100; i++ {
		ackWindow(a, ctx, 1.0)
	}
	if alpha := tcb.CCVars[0]; alpha < 900 {
		t.Fatalf("alpha after sustained marking = %d/1024, want near 1024", alpha)
	}
	// A long unmarked run decays α toward 0.
	for i := 0; i < 100; i++ {
		ackWindow(a, ctx, 0)
	}
	if alpha := tcb.CCVars[0]; alpha > 100 {
		t.Fatalf("alpha after unmarked run = %d/1024, want near 0", alpha)
	}
}

func TestDCTCPProportionalDecrease(t *testing.T) {
	a := MustNew("dctcp")
	tcb := newTCB(a)
	tcb.Ssthresh = tcb.Cwnd
	tcb.Cwnd = 200 * 1460
	ctx := &fakeTCBCtx{t: tcb, now: 1}

	// Light marking (≈6%) must cut far less than a Reno halving: with
	// α ≈ 0.06 the per-window cut is ~3 %.
	for i := 0; i < 30; i++ {
		ackWindow(a, ctx, 0.0625)
	}
	// After settling, one more marked window: measure the cut.
	before := tcb.Cwnd
	ackWindow(a, ctx, 0.0625)
	after := tcb.Cwnd
	cut := float64(before-after) / float64(before)
	if cut <= 0 || cut > 0.10 {
		t.Fatalf("DCTCP cut = %.3f of cwnd, want small proportional (~0.03), not a halving", cut)
	}
}

func TestDCTCPUnmarkedBehavesLikeReno(t *testing.T) {
	a := MustNew("dctcp")
	tcb := newTCB(a)
	tcb.Ssthresh = tcb.Cwnd
	start := tcb.Cwnd
	// One window of unmarked ACKs in congestion avoidance ≈ +1 MSS.
	acks := int(start / 1460)
	for i := 0; i < acks; i++ {
		a.OnAck(tcb, 1460, 1_000_000, int64(i)*1_000_000, 1460)
	}
	grow := tcb.Cwnd - start
	if grow < 1000 || grow > 2500 {
		t.Fatalf("unmarked growth = %d bytes/RTT, want ~1 MSS", grow)
	}
}

func TestDCTCPLossStillHalves(t *testing.T) {
	a := MustNew("dctcp")
	tcb := newTCB(a)
	tcb.Cwnd = 100 * 1460
	tcb.SndNxt = tcb.SndUna.Add(100 * 1460)
	a.OnLoss(tcb, 0, 1460)
	if tcb.Ssthresh != 50*1460 {
		t.Fatalf("loss ssthresh = %d, want half the flight (RFC 8257 keeps loss semantics)", tcb.Ssthresh)
	}
}
