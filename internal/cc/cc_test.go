package cc

import (
	"testing"
	"testing/quick"

	"f4t/internal/flow"
)

func TestCubeRootExact(t *testing.T) {
	for _, v := range []uint64{0, 1, 8, 27, 1000, 1_000_000, 2_500_000_000} {
		got := CubeRoot(v)
		if got*got*got > v || (got+1)*(got+1)*(got+1) <= v {
			t.Errorf("CubeRoot(%d) = %d", v, got)
		}
	}
}

func TestCubeRootProperty(t *testing.T) {
	err := quick.Check(func(v uint64) bool {
		r := CubeRoot(v)
		if r*r*r > v {
			return false
		}
		next := r + 1
		// Guard overflow of (r+1)^3 for huge v.
		if next < 1<<21 {
			return next*next*next > v
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCubeSaturates(t *testing.T) {
	if Cube(1<<40) < 0 {
		t.Fatal("cube overflowed to negative")
	}
	if Cube(-5) != -125 || Cube(5) != 125 {
		t.Fatal("small cubes wrong")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{"newreno": true, "cubic": true, "vegas": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing algorithms: %v (have %v)", want, names)
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestPipelineLatencies(t *testing.T) {
	// The §5.4 data points.
	for name, want := range map[string]int{"newreno": 14, "cubic": 41, "vegas": 68} {
		if got := MustNew(name).PipelineLatency(); got != want {
			t.Errorf("%s latency = %d, want %d", name, got, want)
		}
	}
}

func newTCB(alg Algorithm) *flow.TCB {
	t := &flow.TCB{State: flow.StateEstablished, SndUna: 1000, SndNxt: 1000}
	alg.Init(t, 1460)
	return t
}

func TestNewRenoSlowStartDoubles(t *testing.T) {
	a := MustNew("newreno")
	tcb := newTCB(a)
	start := tcb.Cwnd
	// One window of full-MSS ACKs roughly doubles cwnd in slow start.
	acks := int(start / 1460)
	for i := 0; i < acks; i++ {
		a.OnAck(tcb, 1460, 1000000, int64(i)*1000000, 1460)
	}
	if tcb.Cwnd < 2*start-1460 {
		t.Fatalf("slow start grew %d -> %d, want ~double", start, tcb.Cwnd)
	}
}

func TestNewRenoCongestionAvoidanceLinear(t *testing.T) {
	a := MustNew("newreno")
	tcb := newTCB(a)
	tcb.Ssthresh = tcb.Cwnd // enter CA immediately
	start := tcb.Cwnd
	// One window of ACKs ≈ +1 MSS.
	acks := int(start / 1460)
	for i := 0; i < acks; i++ {
		a.OnAck(tcb, 1460, 1000000, int64(i)*1000000, 1460)
	}
	grow := tcb.Cwnd - start
	if grow < 1000 || grow > 2200 {
		t.Fatalf("CA growth per RTT = %d bytes, want ~1 MSS", grow)
	}
}

func TestNewRenoLossHalves(t *testing.T) {
	a := MustNew("newreno")
	tcb := newTCB(a)
	tcb.Cwnd = 100 * 1460
	tcb.SndNxt = tcb.SndUna.Add(100 * 1460) // full window in flight
	a.OnLoss(tcb, 0, 1460)
	if tcb.Ssthresh != 50*1460 {
		t.Fatalf("ssthresh = %d, want half the flight", tcb.Ssthresh)
	}
	a.OnRecoveryExit(tcb, 1460)
	if tcb.Cwnd != tcb.Ssthresh {
		t.Fatalf("post-recovery cwnd = %d", tcb.Cwnd)
	}
}

func TestNewRenoTimeoutCollapses(t *testing.T) {
	a := MustNew("newreno")
	tcb := newTCB(a)
	tcb.Cwnd = 100 * 1460
	a.OnTimeout(tcb, 0, 1460)
	if tcb.Cwnd != 1460 {
		t.Fatalf("post-RTO cwnd = %d, want 1 MSS", tcb.Cwnd)
	}
}

func TestCubicConcaveThenConvex(t *testing.T) {
	a := MustNew("cubic")
	tcb := newTCB(a)
	tcb.Cwnd = 200 * 1460
	tcb.SndNxt = tcb.SndUna.Add(200 * 1460)
	a.OnLoss(tcb, 0, 1460)
	a.OnRecoveryExit(tcb, 1460)
	below := tcb.Cwnd
	if below >= 200*1460 {
		t.Fatalf("loss did not reduce cwnd: %d", below)
	}
	// Feed ACKs over simulated time; the window must recover toward and
	// then beyond the old maximum (concave then convex).
	now := int64(0)
	recoveredAt := int64(-1)
	for i := 0; i < 200000; i++ {
		now += 50_000 // 50 us between ack batches
		a.OnAck(tcb, 1460, 1_000_000, now, 1460)
		if recoveredAt < 0 && tcb.Cwnd >= 200*1460 {
			recoveredAt = now
		}
	}
	if recoveredAt < 0 {
		t.Fatalf("cubic never recovered past wMax: cwnd=%d", tcb.Cwnd)
	}
	if tcb.Cwnd <= 200*1460 {
		t.Fatalf("cubic did not enter convex growth: cwnd=%d", tcb.Cwnd)
	}
}

func TestCubicBetaDecrease(t *testing.T) {
	a := MustNew("cubic")
	tcb := newTCB(a)
	tcb.Cwnd = 1000 * 1460
	tcb.SndNxt = tcb.SndUna.Add(1000 * 1460)
	a.OnLoss(tcb, 0, 1460)
	a.OnRecoveryExit(tcb, 1460)
	ratio := float64(tcb.Cwnd) / float64(1000*1460)
	if ratio < 0.65 || ratio > 0.75 {
		t.Fatalf("cubic decrease factor = %.3f, want ~0.7", ratio)
	}
}

func TestVegasHoldsNearBaseRTT(t *testing.T) {
	a := MustNew("vegas")
	tcb := newTCB(a)
	tcb.Ssthresh = tcb.Cwnd // out of slow start
	// RTT == baseRTT: diff = 0 < alpha → grow.
	tcb.SndUna, tcb.SndNxt = 1000, 1000
	start := tcb.Cwnd
	for i := 0; i < 50; i++ {
		a.OnAck(tcb, 1460, 1_000_000, int64(i)*1_000_000, 1460)
	}
	if tcb.Cwnd <= start {
		t.Fatalf("vegas did not grow at base RTT: %d -> %d", start, tcb.Cwnd)
	}
	// Now inflate RTT far above base: diff > beta → shrink.
	grownTo := tcb.Cwnd
	for i := 0; i < 50; i++ {
		a.OnAck(tcb, 1460, 5_000_000, int64(100+i)*1_000_000, 1460)
	}
	if tcb.Cwnd >= grownTo {
		t.Fatalf("vegas did not back off under queueing delay: %d -> %d", grownTo, tcb.Cwnd)
	}
}

func TestAlgorithmsKeepCwndSane(t *testing.T) {
	// Property: under arbitrary ack/loss/timeout sequences, cwnd stays
	// within [1 MSS, 2^30] and ssthresh ≥ 2 MSS after the first loss.
	for _, name := range Names() {
		a := MustNew(name)
		err := quick.Check(func(ops []byte) bool {
			tcb := newTCB(a)
			now := int64(0)
			for _, op := range ops {
				now += int64(op) * 1000
				switch op % 4 {
				case 0, 1:
					a.OnAck(tcb, uint32(op)*16+1, int64(op)*10_000, now, 1460)
				case 2:
					tcb.SndNxt = tcb.SndUna.Add(10 * 1460)
					a.OnLoss(tcb, now, 1460)
					a.OnRecoveryExit(tcb, 1460)
				case 3:
					a.OnTimeout(tcb, now, 1460)
				}
				if tcb.Cwnd < 1460 || tcb.Cwnd > 1<<30 {
					return false
				}
			}
			return true
		}, &quick.Config{MaxCount: 100})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
