package cc

import "f4t/internal/flow"

func init() { Register("newreno", func() Algorithm { return NewReno{} }) }

// NewReno implements RFC 5681 slow start / congestion avoidance with the
// RFC 6582 NewReno fast-recovery window adjustments. It is stateless
// beyond Cwnd/Ssthresh, which is why it synthesizes to the shortest FPU
// pipeline (14 cycles, §5.4).
type NewReno struct{}

// Name implements Algorithm.
func (NewReno) Name() string { return "newreno" }

// PipelineLatency implements Algorithm.
func (NewReno) PipelineLatency() int { return 14 }

// Init implements Algorithm.
func (NewReno) Init(t *flow.TCB, mss uint32) {
	t.Cwnd = InitialWindow * mss
	t.Ssthresh = 0x7FFFFFFF // effectively unbounded until the first loss
}

// OnAck implements Algorithm: slow start grows cwnd by one MSS per
// ACKed MSS; congestion avoidance grows ~one MSS per RTT.
func (NewReno) OnAck(t *flow.TCB, acked uint32, _, _ int64, mss uint32) {
	if t.InRecovery {
		// Window inflation/deflation during recovery is handled by the
		// protocol engine; cwnd growth pauses.
		return
	}
	if t.Cwnd < t.Ssthresh {
		// Slow start: cwnd += min(acked, MSS) per ACK (RFC 5681 §3.1).
		inc := acked
		if inc > mss {
			inc = mss
		}
		t.Cwnd += inc
		return
	}
	// Congestion avoidance: cwnd += MSS*MSS/cwnd per ACK.
	inc := mss * mss / t.Cwnd
	if inc == 0 {
		inc = 1
	}
	t.Cwnd += inc
}

// OnLoss implements Algorithm: halve the window and inflate by the three
// duplicate ACKs that triggered fast retransmit.
func (NewReno) OnLoss(t *flow.TCB, _ int64, mss uint32) {
	ss := t.InFlight() / 2
	if ss < MinSsthresh(mss) {
		ss = MinSsthresh(mss)
	}
	t.Ssthresh = ss
	t.Cwnd = ss + 3*mss
}

// OnRecoveryExit implements Algorithm: deflate to ssthresh.
func (NewReno) OnRecoveryExit(t *flow.TCB, mss uint32) {
	t.Cwnd = t.Ssthresh
}

// OnTimeout implements Algorithm: collapse to one segment (RFC 5681 §3.1).
func (NewReno) OnTimeout(t *flow.TCB, _ int64, mss uint32) {
	ss := t.InFlight() / 2
	if ss < MinSsthresh(mss) {
		ss = MinSsthresh(mss)
	}
	t.Ssthresh = ss
	t.Cwnd = mss
}
