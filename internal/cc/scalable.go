package cc

import "f4t/internal/flow"

func init() { Register("scalable", func() Algorithm { return Scalable{} }) }

// Scalable implements Scalable TCP (Kelly 2003): multiplicative increase
// of 0.01 per ACK above a threshold window and a gentle 1/8
// multiplicative decrease on loss. It exists here as the reproduction's
// demonstration of §4.5's programmability claim — adding a new FPU
// program is exactly this file: a handful of integer operations over the
// TCB, registered under a name, with its synthesized pipeline depth.
type Scalable struct{}

// scalableLowWindow is the window (in segments) below which the
// algorithm behaves like standard slow start / congestion avoidance.
const scalableLowWindow = 16

// Name implements Algorithm.
func (Scalable) Name() string { return "scalable" }

// PipelineLatency implements Algorithm: a multiply and two shifts — a
// shallow pipeline between NewReno's and CUBIC's.
func (Scalable) PipelineLatency() int { return 22 }

// Init implements Algorithm.
func (Scalable) Init(t *flow.TCB, mss uint32) {
	t.Cwnd = InitialWindow * mss
	t.Ssthresh = 0x7FFFFFFF
}

// OnAck implements Algorithm: cwnd += 0.01·cwnd per window of ACKs above
// the low-window threshold (computed as cwnd>>7 ≈ 0.0078 per ACKed MSS,
// the usual integer approximation).
func (Scalable) OnAck(t *flow.TCB, acked uint32, _, _ int64, mss uint32) {
	if t.InRecovery {
		return
	}
	if t.Cwnd < t.Ssthresh {
		inc := acked
		if inc > mss {
			inc = mss
		}
		t.Cwnd += inc
		return
	}
	if t.Cwnd < scalableLowWindow*mss {
		// Below the threshold: Reno-style additive increase.
		inc := mss * mss / t.Cwnd
		if inc == 0 {
			inc = 1
		}
		t.Cwnd += inc
		return
	}
	inc := t.Cwnd >> 7
	if inc == 0 {
		inc = 1
	}
	if inc > mss {
		inc = mss
	}
	t.Cwnd += inc
}

// OnLoss implements Algorithm: w ← w − w/8 (β = 1/8).
func (Scalable) OnLoss(t *flow.TCB, _ int64, mss uint32) {
	ss := t.Cwnd - t.Cwnd/8
	if ss < MinSsthresh(mss) {
		ss = MinSsthresh(mss)
	}
	t.Ssthresh = ss
	t.Cwnd = ss + 3*mss
}

// OnRecoveryExit implements Algorithm.
func (Scalable) OnRecoveryExit(t *flow.TCB, mss uint32) {
	t.Cwnd = t.Ssthresh
}

// OnTimeout implements Algorithm.
func (Scalable) OnTimeout(t *flow.TCB, _ int64, mss uint32) {
	ss := t.Cwnd - t.Cwnd/8
	if ss < MinSsthresh(mss) {
		ss = MinSsthresh(mss)
	}
	t.Ssthresh = ss
	t.Cwnd = mss
}
