package cc

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"f4t/internal/flow"
	"f4t/internal/seqnum"
)

var update = flag.Bool("update", false, "rewrite the cc golden trace files")

// ccEvent is one step of a canned congestion episode. The scripts below
// are fixed forever; the goldens pin the exact cwnd/ssthresh trajectory
// each algorithm produces over them, so any change to the arithmetic —
// intended or not — shows up as a golden diff.
type ccEvent struct {
	kind  string // ack, mack (ECE-covered ack), loss, rexit, timeout
	acked uint32
	rttNS int64
}

func acks(n int, acked uint32, rttNS int64) []ccEvent {
	out := make([]ccEvent, n)
	for i := range out {
		out[i] = ccEvent{kind: "ack", acked: acked, rttNS: rttNS}
	}
	return out
}

func macks(n int, acked uint32, rttNS int64) []ccEvent {
	out := acks(n, acked, rttNS)
	for i := range out {
		out[i].kind = "mack"
	}
	return out
}

func cat(seqs ...[]ccEvent) []ccEvent {
	var out []ccEvent
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}

// runScript drives one algorithm instance over a canned event sequence,
// maintaining the TCB fields the real tcpproc pipeline would (cumulative
// ack advance, a constant 64-segment flight, the DCTCP byte counters)
// and recording the window state after every event.
func runScript(a Algorithm, events []ccEvent) []string {
	const mss = 1460
	const flight = 64 * mss
	t := &flow.TCB{State: flow.StateEstablished, SndUna: 1000, SndNxt: 1000}
	a.Init(t, mss)
	t.SndNxt = t.SndUna.Add(seqnum.Size(flight))
	lines := []string{fmt.Sprintf("%4s %-7s cwnd=%-8d ssthresh=%d", "init", "-", t.Cwnd, t.Ssthresh)}
	now := int64(0)
	for i, ev := range events {
		now += 100_000 // 100 us between events
		switch ev.kind {
		case "ack", "mack":
			t.SndUna = t.SndUna.Add(seqnum.Size(ev.acked))
			t.SndNxt = t.SndUna.Add(seqnum.Size(flight))
			t.AckedBytes += uint64(ev.acked)
			if ev.kind == "mack" {
				t.EceBytes += uint64(ev.acked)
			}
			a.OnAck(t, ev.acked, ev.rttNS, now, mss)
		case "loss":
			t.InRecovery = true
			t.RecoverSeq = t.SndNxt
			a.OnLoss(t, now, mss)
		case "rexit":
			a.OnRecoveryExit(t, mss)
			t.InRecovery = false
		case "timeout":
			t.InRecovery = false
			a.OnTimeout(t, now, mss)
		default:
			panic("golden: unknown event " + ev.kind)
		}
		lines = append(lines, fmt.Sprintf("%4d %-7s cwnd=%-8d ssthresh=%d", i, ev.kind, t.Cwnd, t.Ssthresh))
	}
	return lines
}

// goldenScripts are the canned episodes. Each exercises slow start, the
// algorithm's characteristic decrease, its growth shape after loss, and
// the RTO collapse; dctcp additionally sees two ECN-marked windows of
// different mark density (the α EWMA path).
var goldenScripts = map[string][]ccEvent{
	"cubic": cat(
		acks(40, 1460, 1_000_000), // slow start out of IW10
		[]ccEvent{{kind: "loss"}, {kind: "rexit"}},
		acks(400, 1460, 1_000_000), // concave approach to wMax, then convex
		[]ccEvent{{kind: "timeout"}},
		acks(60, 1460, 1_000_000), // slow start again below new ssthresh
	),
	"newreno": cat(
		acks(40, 1460, 1_000_000), // slow start out of IW10
		[]ccEvent{{kind: "loss"}, {kind: "rexit"}},
		acks(120, 1460, 1_000_000), // linear congestion avoidance
		[]ccEvent{{kind: "timeout"}},
		acks(60, 1460, 1_000_000), // slow start again below new ssthresh
	),
	// Vegas is delay-based, so its script varies the RTT: a low-RTT phase
	// pins baseRTT, an inflated-RTT phase drives diff above beta (epoch
	// decreases), and a near-base phase drives diff below alpha (epoch
	// increases). Loss/RTO handling still follows the Reno shape.
	"vegas": cat(
		acks(40, 1460, 500_000),    // slow start; baseRTT settles at 500 us
		acks(120, 1460, 2_000_000), // queue delay → per-epoch decrease
		acks(120, 1460, 520_000),   // back near base → per-epoch increase
		[]ccEvent{{kind: "loss"}, {kind: "rexit"}},
		acks(60, 1460, 520_000),
		[]ccEvent{{kind: "timeout"}},
		acks(30, 1460, 520_000),
	),
	// Scalable's character is the rate-independent 0.01·cwnd MIMD growth
	// above the 16-segment threshold and the gentle 1/8 decrease: the long
	// ack run shows the exponential (not linear) climb, the paired losses
	// show the shallow sawtooth.
	"scalable": cat(
		acks(40, 1460, 1_000_000), // slow start out of IW10
		[]ccEvent{{kind: "loss"}, {kind: "rexit"}},
		acks(200, 1460, 1_000_000), // MIMD climb
		[]ccEvent{{kind: "loss"}, {kind: "rexit"}},
		acks(100, 1460, 1_000_000),
		[]ccEvent{{kind: "timeout"}},
		acks(40, 1460, 1_000_000),
	),
	// BBR is time-based, so its script leans on the 100 us event spacing:
	// at a constant 500 us RTT the bandwidth plateau ends Startup after
	// three flat epochs, Drain descends to the BDP, the gain cycle turns
	// once per min-RTT, a lower-RTT phase retakes the floor, and the
	// 10 ms min-RTT window forces the ProbeRTT dip to 4 MSS with the
	// window restored two events later. Loss and RTO never move ssthresh.
	"bbr": cat(
		acks(60, 1460, 500_000),  // startup → drain → probe-bw
		acks(20, 1460, 450_000),  // a lower floor appears mid-flight
		acks(120, 1460, 450_000), // constant RTT → probe-rtt dip at 10 ms
		[]ccEvent{{kind: "loss"}, {kind: "rexit"}},
		acks(40, 1460, 450_000),
		[]ccEvent{{kind: "timeout"}},
		acks(40, 1460, 450_000), // the model pulls the window straight back
	),
	"dctcp": cat(
		acks(80, 1460, 200_000),  // slow start, no marks
		macks(32, 1460, 200_000), // a heavily marked window → α jumps, cwnd cut
		acks(64, 1460, 200_000),
		macks(8, 1460, 200_000), // a lightly marked window → smaller cut
		acks(64, 1460, 200_000),
		[]ccEvent{{kind: "loss"}, {kind: "rexit"}}, // real loss still halves
		acks(40, 1460, 200_000),
		[]ccEvent{{kind: "timeout"}},
		acks(20, 1460, 200_000),
	),
}

// TestEveryAlgorithmHasGoldenTrace is registry-driven: registering a new
// algorithm without scripting and committing its golden trace fails here,
// so the next program can't ship untraced. The reverse direction catches
// scripts orphaned by an algorithm rename.
func TestEveryAlgorithmHasGoldenTrace(t *testing.T) {
	for _, name := range Names() {
		if _, ok := goldenScripts[name]; !ok {
			t.Errorf("registered algorithm %q has no golden script — add it to goldenScripts and run go test -update", name)
			continue
		}
		if _, err := os.Stat(filepath.Join("testdata", "golden_"+name+".txt")); err != nil {
			t.Errorf("registered algorithm %q has no committed golden trace: %v", name, err)
		}
	}
	for name := range goldenScripts {
		if _, err := New(name); err != nil {
			t.Errorf("golden script %q does not match any registered algorithm: %v", name, err)
		}
	}
}

func TestGoldenTraces(t *testing.T) {
	for name, script := range goldenScripts {
		t.Run(name, func(t *testing.T) {
			got := strings.Join(runScript(MustNew(name), script), "\n") + "\n"
			path := filepath.Join("testdata", "golden_"+name+".txt")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
				for i := 0; i < len(gl) || i < len(wl); i++ {
					g, w := "<eof>", "<eof>"
					if i < len(gl) {
						g = gl[i]
					}
					if i < len(wl) {
						w = wl[i]
					}
					if g != w {
						t.Fatalf("%s: first divergence at line %d:\n  got  %s\n  want %s\n(re-run with -update if the change is intended)", name, i, g, w)
					}
				}
			}
		})
	}
}

// TestGoldenTraceProperties sanity-checks the scripts themselves, so a
// bad -update can't freeze a nonsensical trajectory: the marked dctcp
// windows must actually cut the window, and cubic must pass back above
// its pre-loss maximum during the long post-recovery ack run.
func TestGoldenTraceProperties(t *testing.T) {
	lines := runScript(MustNew("cubic"), goldenScripts["cubic"])
	var preLoss, peak uint32
	for _, l := range lines {
		var cwnd, ss uint32
		if n, _ := fmt.Sscanf(strings.Fields(l)[2]+" "+strings.Fields(l)[3], "cwnd=%d ssthresh=%d", &cwnd, &ss); n != 2 {
			t.Fatalf("unparseable line %q", l)
		}
		if strings.Contains(l, "loss") && preLoss == 0 {
			preLoss = cwnd
		}
		if cwnd > peak {
			peak = cwnd
		}
	}
	if peak <= preLoss {
		t.Errorf("cubic script never exceeded its pre-loss window (%d <= %d)", peak, preLoss)
	}

	// Before the scripted loss event, dctcp's window can only shrink via
	// the α-proportional cut at a marked window's boundary ack — so any
	// decrease on the ack path proves the ECN machinery engaged.
	lines = runScript(MustNew("dctcp"), goldenScripts["dctcp"])
	cut := false
	var prev uint32
	for _, l := range lines {
		if strings.Contains(l, "loss") {
			break
		}
		var cwnd uint32
		fmt.Sscanf(strings.Fields(l)[2], "cwnd=%d", &cwnd)
		if prev > 0 && cwnd < prev {
			cut = true
		}
		prev = cwnd
	}
	if !cut {
		t.Error("dctcp script never produced an α-proportional cut on a marked window")
	}

	// Scalable's MIMD region must show multiplicative growth: the per-ack
	// increment has to keep rising through the long climb, which linear
	// congestion avoidance never does.
	lines = runScript(MustNew("scalable"), goldenScripts["scalable"])
	var climb []uint32
	for _, l := range lines {
		var cwnd uint32
		fmt.Sscanf(strings.Fields(l)[2], "cwnd=%d", &cwnd)
		climb = append(climb, cwnd)
	}
	growing := false
	for i := 2; i < len(climb); i++ {
		if climb[i] > climb[i-1] && climb[i-1] > climb[i-2] &&
			climb[i]-climb[i-1] > climb[i-1]-climb[i-2] {
			growing = true
		}
	}
	if !growing {
		t.Error("scalable script shows no accelerating (MIMD) growth")
	}

	// BBR: ssthresh stays at the untouched sentinel through loss and RTO,
	// and the script actually reaches the ProbeRTT floor of 4 MSS.
	lines = runScript(MustNew("bbr"), goldenScripts["bbr"])
	sentinel := fmt.Sprintf("ssthresh=%d", uint32(InitialSsthresh))
	dipped := false
	for _, l := range lines {
		if !strings.Contains(l, sentinel) {
			t.Fatalf("bbr script moved ssthresh: %q", l)
		}
		if strings.Contains(l, "cwnd=5840 ") {
			dipped = true
		}
	}
	if !dipped {
		t.Error("bbr script never reached the 4-MSS ProbeRTT floor")
	}
}
