package cc

import (
	"f4t/internal/seqnum"
	"testing"

	"f4t/internal/flow"
)

const bbrTestMSS = 1460

// bbrTCB returns a TCB initialized by BBR with a pinned 64-segment flight.
func bbrTCB() *flow.TCB {
	t := &flow.TCB{}
	BBR{}.Init(t, bbrTestMSS)
	t.SndUna = seqnum.Value(0)
	t.SndNxt = seqnum.Value(64 * bbrTestMSS)
	return t
}

// bbrMode extracts the current mode from the packed state word.
func bbrMode(t *flow.TCB) uint64 { return t.CCVars[bbState] & 0xff }

// feedAcks drives n acks of one MSS each at the given RTT, spaced gapNS
// apart starting at startNS, and returns the ns clock after the last ack.
func feedAcks(t *flow.TCB, n int, rttNS int64, startNS, gapNS int64) int64 {
	now := startNS
	for i := 0; i < n; i++ {
		BBR{}.OnAck(t, bbrTestMSS, rttNS, now, bbrTestMSS)
		now += gapNS
	}
	return now
}

func TestBBRStartupGrowsExponentially(t *testing.T) {
	tcb := bbrTCB()
	before := tcb.Cwnd
	feedAcks(tcb, 20, 50_000, 1_000, 10_000)
	if bbrMode(tcb) != bbrStartup {
		t.Fatalf("mode = %d, want startup", bbrMode(tcb))
	}
	// Startup adds every acked byte to cwnd: 20 acks -> +20 MSS.
	if want := before + 20*bbrTestMSS; tcb.Cwnd != want {
		t.Fatalf("cwnd = %d, want %d", tcb.Cwnd, want)
	}
	if tcb.Ssthresh != InitialSsthresh {
		t.Fatalf("ssthresh = %#x, want untouched sentinel", tcb.Ssthresh)
	}
}

func TestBBRFillsPipeAndDrains(t *testing.T) {
	tcb := bbrTCB()
	// A steady ack clock at constant RTT delivers a flat bandwidth
	// estimate; after three plateau epochs BBR must leave Startup, drain
	// down to the BDP, and settle into ProbeBW.
	now := feedAcks(tcb, 400, 50_000, 1_000, 10_000)
	if m := bbrMode(tcb); m != bbrProbeBW {
		t.Fatalf("after steady ack clock mode = %d, want probe-bw", m)
	}
	if tcb.CCVars[bbBtlBw] == 0 {
		t.Fatal("no bandwidth estimate established")
	}
	if tcb.CCVars[bbMinRTT] != 50_000 {
		t.Fatalf("minRTT = %d, want 50000", tcb.CCVars[bbMinRTT])
	}
	// In ProbeBW cwnd tracks gain*BDP, far below Startup's runaway peak.
	bdp := tcb.CCVars[bbBtlBw] * tcb.CCVars[bbMinRTT] / 1_000_000_000
	if uint64(tcb.Cwnd) > 2*bdp+4*bbrTestMSS {
		t.Fatalf("cwnd = %d not anchored to bdp %d", tcb.Cwnd, bdp)
	}
	_ = now
}

func TestBBRGainCycleAdvances(t *testing.T) {
	tcb := bbrTCB()
	feedAcks(tcb, 400, 50_000, 1_000, 10_000)
	if m := bbrMode(tcb); m != bbrProbeBW {
		t.Fatalf("mode = %d, want probe-bw", m)
	}
	seen := map[uint64]bool{}
	now := int64(400*10_000 + 1_000)
	for i := 0; i < 200; i++ {
		BBR{}.OnAck(tcb, bbrTestMSS, 50_000, now, bbrTestMSS)
		seen[(tcb.CCVars[bbState]>>8)&0xff] = true
		now += 10_000
	}
	// 2ms of acks at a 50us phase clock walks the whole 8-phase cycle.
	if len(seen) < 3 {
		t.Fatalf("gain cycle stuck: visited phases %v", seen)
	}
}

func TestBBRProbeRTTDipAndRestore(t *testing.T) {
	tcb := bbrTCB()
	now := feedAcks(tcb, 400, 50_000, 1_000, 10_000)
	if m := bbrMode(tcb); m != bbrProbeBW {
		t.Fatalf("mode = %d, want probe-bw", m)
	}
	// Constant RTT means the floor is never beaten; once the 10ms window
	// lapses BBR must dip to 4 MSS.
	now += bbrMinRttWinNS + 1
	BBR{}.OnAck(tcb, bbrTestMSS, 50_000, now, bbrTestMSS)
	if m := bbrMode(tcb); m != bbrProbeRTT {
		t.Fatalf("mode = %d, want probe-rtt", m)
	}
	if tcb.Cwnd != 4*bbrTestMSS {
		t.Fatalf("probe-rtt cwnd = %d, want %d", tcb.Cwnd, 4*bbrTestMSS)
	}
	// After the 200us dwell the window is restored and ProbeBW resumes.
	now += bbrProbeRttNS + 1
	BBR{}.OnAck(tcb, bbrTestMSS, 50_000, now, bbrTestMSS)
	if m := bbrMode(tcb); m != bbrProbeBW {
		t.Fatalf("post-dwell mode = %d, want probe-bw", m)
	}
	if tcb.Cwnd <= 4*bbrTestMSS {
		t.Fatalf("cwnd not restored after probe-rtt: %d", tcb.Cwnd)
	}
}

func TestBBRLossConservesAndRestores(t *testing.T) {
	tcb := bbrTCB()
	feedAcks(tcb, 400, 50_000, 1_000, 10_000)
	pre := tcb.Cwnd
	tcb.InRecovery = true
	BBR{}.OnLoss(tcb, 5_000_000, bbrTestMSS)
	if tcb.Cwnd > pre {
		t.Fatalf("loss grew cwnd: %d > %d", tcb.Cwnd, pre)
	}
	if tcb.Cwnd < 4*bbrTestMSS {
		t.Fatalf("loss broke 4-MSS floor: %d", tcb.Cwnd)
	}
	if tcb.Ssthresh != InitialSsthresh {
		t.Fatalf("loss touched ssthresh: %#x", tcb.Ssthresh)
	}
	tcb.InRecovery = false
	BBR{}.OnRecoveryExit(tcb, bbrTestMSS)
	if tcb.Cwnd < pre {
		t.Fatalf("recovery exit did not restore window: %d < %d", tcb.Cwnd, pre)
	}
}

func TestBBRTimeoutCollapsesButKeepsModel(t *testing.T) {
	tcb := bbrTCB()
	feedAcks(tcb, 400, 50_000, 1_000, 10_000)
	bw := tcb.CCVars[bbBtlBw]
	BBR{}.OnTimeout(tcb, 9_000_000, bbrTestMSS)
	if tcb.Cwnd != bbrTestMSS {
		t.Fatalf("timeout cwnd = %d, want 1 MSS", tcb.Cwnd)
	}
	if tcb.CCVars[bbBtlBw] != bw {
		t.Fatal("timeout discarded the bandwidth model")
	}
	if tcb.Ssthresh != InitialSsthresh {
		t.Fatalf("timeout touched ssthresh: %#x", tcb.Ssthresh)
	}
}

func TestBBRRegistered(t *testing.T) {
	a := MustNew("bbr")
	if a.Name() != "bbr" {
		t.Fatalf("Name() = %q", a.Name())
	}
	if a.PipelineLatency() <= MustNew("vegas").PipelineLatency() {
		t.Fatal("bbr should have the deepest pipeline in the registry")
	}
}
