// Package cc implements congestion-control algorithms as pluggable FPU
// programs (§4.5). Each algorithm operates on the TCB's reserved CC words
// using only integer arithmetic — mirroring the hardware, where CUBIC's
// cube/cube-root and Vegas's divisions are what set the FPU pipeline
// latency (§5.4: NewReno 14 cycles, CUBIC 41, Vegas 68).
package cc

import (
	"fmt"
	"sort"

	"f4t/internal/flow"
)

// Algorithm is one congestion-control program. Implementations mutate only
// Cwnd, Ssthresh and the CCVars scratch words of the TCB, which is exactly
// the surface the paper exposes to FPU programmers ("adding some entries
// in the TCB", §5.4).
type Algorithm interface {
	// Name identifies the algorithm ("newreno", "cubic", "vegas").
	Name() string

	// PipelineLatency is the FPU pipeline depth, in cycles, this program
	// synthesizes to. Longer programs do not reduce FPC throughput (§4.5);
	// the value feeds the FPU latency model and Fig 15.
	PipelineLatency() int

	// Init sets the initial window state for a new connection.
	Init(t *flow.TCB, mss uint32)

	// OnAck is invoked when new data is cumulatively acknowledged.
	// acked is the number of newly acknowledged bytes; rttNS is the RTT
	// sample for this ack (0 when no sample was taken); nowNS is the
	// current simulated time.
	OnAck(t *flow.TCB, acked uint32, rttNS, nowNS int64, mss uint32)

	// OnLoss is invoked on fast retransmit (entering loss recovery).
	OnLoss(t *flow.TCB, nowNS int64, mss uint32)

	// OnRecoveryExit is invoked when the recovery point is fully acked.
	OnRecoveryExit(t *flow.TCB, mss uint32)

	// OnTimeout is invoked on a retransmission timeout.
	OnTimeout(t *flow.TCB, nowNS int64, mss uint32)
}

// InitialWindow is the RFC 6928 initial congestion window in segments.
const InitialWindow = 10

// InitialSsthresh is the "effectively unbounded" slow-start threshold a
// connection starts with (RFC 5681 §3.1). Loss-based programs lower it on
// their first loss; model-based programs (BBR) never touch it, so for them
// it stays at this sentinel for the connection's lifetime — an invariant
// the conformance suite checks.
const InitialSsthresh = 0x7FFFFFFF

// MinSsthresh floors ssthresh at two segments (RFC 5681).
func MinSsthresh(mss uint32) uint32 { return 2 * mss }

var registry = map[string]func() Algorithm{}

// Register adds an algorithm constructor under its name. It panics on
// duplicates; registration happens from init functions.
func Register(name string, ctor func() Algorithm) {
	if _, dup := registry[name]; dup {
		panic("cc: duplicate algorithm " + name)
	}
	registry[name] = ctor
}

// New returns a fresh instance of the named algorithm.
func New(name string) (Algorithm, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cc: unknown algorithm %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// MustNew is New for static configuration; it panics on unknown names.
func MustNew(name string) Algorithm {
	a, err := New(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Names lists the registered algorithms in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
