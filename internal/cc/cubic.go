package cc

import "f4t/internal/flow"

func init() { Register("cubic", func() Algorithm { return Cubic{} }) }

// CCVars layout for CUBIC. All values are integers; windows are tracked
// in segments to keep the fixed-point ranges small, exactly as a hardware
// implementation would.
const (
	cuWMax       = iota // window at last loss, segments
	cuEpochStart        // ns timestamp when the current epoch began (0 = none)
	cuK                 // K in milliseconds
	cuOrigin            // origin window (wMax or cwnd at epoch start), segments
	cuAckCnt            // ACKed segments since epoch start (for TCP-friendly region)
	cuLastDecWMax       // previous wMax, for fast convergence
)

// CUBIC constants from RFC 8312: C = 0.4, beta = 0.7, expressed as exact
// integer ratios.
const (
	cubicCNum, cubicCDen       = 4, 10
	cubicBetaNum, cubicBetaDen = 717, 1024 // Linux's 0.70019...
)

// Cubic implements RFC 8312 CUBIC with integer fixed-point arithmetic
// (cube and cube-root circuits). Its FPU pipeline is 41 cycles (§5.4).
type Cubic struct{}

// Name implements Algorithm.
func (Cubic) Name() string { return "cubic" }

// PipelineLatency implements Algorithm.
func (Cubic) PipelineLatency() int { return 41 }

// Init implements Algorithm.
func (Cubic) Init(t *flow.TCB, mss uint32) {
	t.Cwnd = InitialWindow * mss
	t.Ssthresh = 0x7FFFFFFF
	for i := range t.CCVars {
		t.CCVars[i] = 0
	}
}

// OnAck implements Algorithm: slow start below ssthresh, then the CUBIC
// window function W(t) = C*(t-K)^3 + Wmax with a TCP-friendly floor.
func (Cubic) OnAck(t *flow.TCB, acked uint32, rttNS, nowNS int64, mss uint32) {
	if t.InRecovery {
		return
	}
	if t.Cwnd < t.Ssthresh {
		inc := acked
		if inc > mss {
			inc = mss
		}
		t.Cwnd += inc
		return
	}
	cwndSeg := int64(t.Cwnd / mss)
	if cwndSeg < 1 {
		cwndSeg = 1
	}
	if t.CCVars[cuEpochStart] == 0 {
		t.CCVars[cuEpochStart] = uint64(nowNS)
		t.CCVars[cuAckCnt] = 0
		wMax := int64(t.CCVars[cuWMax])
		if wMax < cwndSeg {
			// We are already past the previous maximum: restart the cubic
			// origin here so growth is convex from the current window.
			t.CCVars[cuWMax] = uint64(cwndSeg)
			wMax = cwndSeg
			t.CCVars[cuK] = 0
		} else {
			// K = cbrt((Wmax - cwnd)/C) seconds, computed in ms fixed point:
			// K_ms = cbrt((Wmax-cwnd) * (Den/Num) * 1e9).
			delta := uint64(wMax - cwndSeg)
			t.CCVars[cuK] = CubeRoot(delta * cubicCDen * 1_000_000_000 / cubicCNum)
		}
		t.CCVars[cuOrigin] = t.CCVars[cuWMax]
	}
	t.CCVars[cuAckCnt] += uint64((acked + mss - 1) / mss)

	// Elapsed time since epoch plus one RTT: CUBIC targets W(t+RTT).
	tMS := (nowNS - int64(t.CCVars[cuEpochStart]) + rttDefault(rttNS, t)) / 1_000_000
	d := tMS - int64(t.CCVars[cuK])
	// W(t) in segments: origin + C * d^3 where d is in ms, so scale by 1e9.
	target := int64(t.CCVars[cuOrigin]) + cubicCNum*Cube(d)/(cubicCDen*1_000_000_000)

	// TCP-friendly region (RFC 8312 §4.2): W_est = Wmax*beta +
	// 3*(1-beta)/(1+beta) * t/RTT; with beta=0.7 the slope is ~0.529
	// segments per RTT. Elapsed RTTs are approximated by ACKed segments
	// divided by the window (one window of ACKs ≈ one RTT).
	wEst := int64(t.CCVars[cuWMax])*cubicBetaNum/cubicBetaDen +
		529*int64(t.CCVars[cuAckCnt])/(1000*cwndSeg)
	if wEst > target {
		target = wEst
	}

	if target > cwndSeg {
		// Spread the increase over the ACKs of one window:
		// cwnd += (target - cwnd)/cwnd segments per ACK.
		incSeg := target - cwndSeg
		inc := uint32(int64(mss) * incSeg / cwndSeg)
		if inc == 0 {
			inc = 1
		}
		if inc > mss {
			inc = mss // at most one segment per ACK outside slow start
		}
		t.Cwnd += inc
	} else {
		// Minimal probing growth in the plateau region.
		inc := mss * mss / (100 * t.Cwnd)
		if inc == 0 {
			inc = 1
		}
		t.Cwnd += inc
	}
}

func rttDefault(rttNS int64, t *flow.TCB) int64 {
	if rttNS > 0 {
		return rttNS
	}
	if t.SRTT > 0 {
		return t.SRTT
	}
	return 1_000_000 // 1 ms placeholder before the first sample
}

// OnLoss implements Algorithm: multiplicative decrease by beta with fast
// convergence (RFC 8312 §4.6).
func (Cubic) OnLoss(t *flow.TCB, nowNS int64, mss uint32) {
	cwndSeg := uint64(t.Cwnd / mss)
	if cwndSeg < 1 {
		cwndSeg = 1
	}
	prev := t.CCVars[cuWMax]
	if cwndSeg < prev {
		// Fast convergence: release bandwidth faster when the loss point
		// is dropping.
		t.CCVars[cuWMax] = cwndSeg * (cubicBetaDen + cubicBetaNum) / (2 * cubicBetaDen)
	} else {
		t.CCVars[cuWMax] = cwndSeg
	}
	t.CCVars[cuLastDecWMax] = prev
	t.CCVars[cuEpochStart] = 0
	newCwnd := uint32(cwndSeg) * mss * cubicBetaNum / cubicBetaDen
	if newCwnd < MinSsthresh(mss) {
		newCwnd = MinSsthresh(mss)
	}
	t.Ssthresh = newCwnd
	t.Cwnd = newCwnd + 3*mss
}

// OnRecoveryExit implements Algorithm.
func (Cubic) OnRecoveryExit(t *flow.TCB, mss uint32) {
	t.Cwnd = t.Ssthresh
}

// OnTimeout implements Algorithm.
func (Cubic) OnTimeout(t *flow.TCB, nowNS int64, mss uint32) {
	cwndSeg := uint64(t.Cwnd / mss)
	if cwndSeg < 1 {
		cwndSeg = 1
	}
	t.CCVars[cuWMax] = cwndSeg
	t.CCVars[cuEpochStart] = 0
	ss := uint32(cwndSeg) * mss * cubicBetaNum / cubicBetaDen
	if ss < MinSsthresh(mss) {
		ss = MinSsthresh(mss)
	}
	t.Ssthresh = ss
	t.Cwnd = mss
}
