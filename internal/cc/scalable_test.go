package cc

import "testing"

func TestScalableRegistered(t *testing.T) {
	a := MustNew("scalable")
	if a.Name() != "scalable" || a.PipelineLatency() != 22 {
		t.Fatalf("scalable identity: %s/%d", a.Name(), a.PipelineLatency())
	}
}

func TestScalableMIMDGrowth(t *testing.T) {
	a := MustNew("scalable")
	tcb := newTCB(a)
	tcb.Ssthresh = tcb.Cwnd // exit slow start
	tcb.Cwnd = 100 * 1460   // well above the low-window threshold
	start := tcb.Cwnd
	// One window of ACKs: MIMD grows proportionally to the window
	// (≈0.78 % per ACKed MSS ⇒ ~+80 % per window), far beyond Reno's
	// one-MSS-per-RTT.
	for i := 0; i < 100; i++ {
		a.OnAck(tcb, 1460, 1_000_000, int64(i)*10_000, 1460)
	}
	growth := float64(tcb.Cwnd) / float64(start)
	if growth < 1.5 {
		t.Fatalf("MIMD growth per window = %.2fx, want >1.5x", growth)
	}
}

func TestScalableGentleDecrease(t *testing.T) {
	a := MustNew("scalable")
	tcb := newTCB(a)
	tcb.Cwnd = 800 * 1460
	tcb.SndNxt = tcb.SndUna.Add(800 * 1460)
	a.OnLoss(tcb, 0, 1460)
	a.OnRecoveryExit(tcb, 1460)
	ratio := float64(tcb.Cwnd) / float64(800*1460)
	if ratio < 0.85 || ratio > 0.90 {
		t.Fatalf("scalable decrease = %.3f, want 7/8", ratio)
	}
}
