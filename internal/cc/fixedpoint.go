package cc

// CubeRoot returns the integer cube root of a (floor(a^(1/3))) using a
// bit-by-bit method with no floating point — the same style of circuit a
// hardware FPU program would instantiate for CUBIC's cube-root operation
// (§4.5: "cube and cubic root operations").
func CubeRoot(a uint64) uint64 {
	var x uint64
	// Highest power of 8 (2^3) not exceeding a: start the digit scan there.
	s := uint(63)
	s -= s % 3
	for b := uint64(1) << s; b != 0; b >>= 3 {
		x <<= 1
		y := (3*x*(x+1) + 1) * b
		if a >= y {
			a -= y
			x++
		}
	}
	return x
}

// Cube returns v^3, saturating at the top of int64 range to avoid
// overflow surprises in window arithmetic.
func Cube(v int64) int64 {
	neg := v < 0
	if neg {
		v = -v
	}
	const lim = 2097151 // floor(cbrt(2^63 - 1))
	if v > lim {
		v = lim
	}
	c := v * v * v
	if neg {
		return -c
	}
	return c
}
