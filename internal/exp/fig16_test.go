package exp

import "testing"

func TestFig16aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run")
	}
	tab := Fig16a(true)
	t.Log("\n" + tab.String())
}

func TestFig16bQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run")
	}
	tab := Fig16b(true)
	t.Log("\n" + tab.String())
}
