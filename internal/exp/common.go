// Package exp contains one runner per table/figure of the paper's
// evaluation (§5, §6). Each runner assembles a rig (hosts, engines,
// link), runs it in simulated time with a warmup, and returns a Table
// whose rows mirror the figure's series. cmd/f4tbench prints them;
// bench_test.go wraps them; EXPERIMENTS.md records paper-vs-measured.
package exp

import (
	"fmt"
	"strings"
	"sync"

	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/host"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/stack"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table in aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Addresses of the two-node testbed.
var (
	AddrA = wire.MakeAddr(10, 0, 0, 1)
	AddrB = wire.MakeAddr(10, 0, 0, 2)
	MACA  = wire.MAC{2, 0, 0, 0, 0, 1}
	MACB  = wire.MAC{2, 0, 0, 0, 0, 2}
)

// LinkGbps is the testbed link speed (§5: 100 Gbps).
const LinkGbps = 100

// LinkPropNS models the direct-connect cabling plus MAC latency.
const LinkPropNS = 600

// Islands of the two-node testbed on a sim.Fabric: everything on host A
// (engine, machine, apps) is island A; host B likewise. The link between
// them is the only cross-island channel, so its propagation delay is
// the sharded fabric's lookahead.
const (
	IslandA = 0
	IslandB = 1
)

// F4TPair is two F4T hosts (engine + library machine) over one link.
type F4TPair struct {
	R            sim.Runner  // the fabric driving the rig (serial or sharded)
	K            *sim.Kernel // the serial kernel, nil when R is sharded
	KA, KB       *sim.Kernel // island clocks (both == K on a serial fabric)
	Link         *netsim.Link
	EngA, EngB   *engine.Engine
	MachA, MachB *host.F4TMachine
}

// NewF4TPair builds the standard two-node F4T testbed on a fresh serial
// kernel. mutate adjusts the shared engine configuration (both sides).
func NewF4TPair(coresA, coresB int, costs cpu.Costs, mutate func(*engine.Config)) *F4TPair {
	return NewF4TPairOn(sim.New(), coresA, coresB, costs, mutate)
}

// NewF4TPairOn builds the testbed on any fabric: host A on IslandA,
// host B on IslandB, the link cross-posted between them. Construction
// order (and therefore every registration slot and RNG draw) is
// identical on every fabric, which is what makes a sharded run
// bit-for-bit comparable to a serial one.
func NewF4TPairOn(f sim.Fabric, coresA, coresB int, costs cpu.Costs, mutate func(*engine.Config)) *F4TPair {
	kA, kB := f.IslandKernel(IslandA), f.IslandKernel(IslandB)
	link := netsim.NewLinkOn(f, IslandA, IslandB, LinkGbps, LinkPropNS, 1234)

	cfg := engine.DefaultConfig()
	cfg.Channels = coresA
	if mutate != nil {
		mutate(&cfg)
	}
	cfgA := cfg
	cfgA.IP, cfgA.MAC, cfgA.Seed, cfgA.Channels = AddrA, MACA, 101, coresA
	cfgB := cfg
	cfgB.IP, cfgB.MAC, cfgB.Seed, cfgB.Channels = AddrB, MACB, 202, coresB

	engA := engine.New(kA, cfgA, link.AtoB.Send)
	engB := engine.New(kB, cfgB, link.BtoA.Send)
	link.AtoB.SetSink(engB.DeliverPacket)
	link.BtoA.SetSink(engA.DeliverPacket)
	engA.LearnPeer(AddrB, MACB)
	engB.LearnPeer(AddrA, MACA)

	machA := host.NewF4TMachine(kA, engA, coresA, costs, []wire.Addr{AddrB})
	machB := host.NewF4TMachine(kB, engB, coresB, costs, []wire.Addr{AddrA})

	// Direct registration (no TickerFunc wrapper) so the kernel sees the
	// components' NextWork hints and can skip quiescent spans.
	f.RegisterOn(IslandA, engA)
	f.RegisterOn(IslandB, engB)
	f.RegisterOn(IslandA, machA)
	f.RegisterOn(IslandB, machB)
	p := &F4TPair{R: f, KA: kA, KB: kB, Link: link, EngA: engA, EngB: engB, MachA: machA, MachB: machB}
	if k, ok := f.(*sim.Kernel); ok {
		p.K = k
	}
	return p
}

// LinuxPair is two Linux-stack hosts over one link.
type LinuxPair struct {
	R            sim.Runner
	K            *sim.Kernel // serial kernel, nil when R is sharded
	KA, KB       *sim.Kernel
	Link         *netsim.Link
	MachA, MachB *host.LinuxMachine
}

// NewLinuxPair builds the baseline two-node testbed on a serial kernel.
func NewLinuxPair(coresA, coresB int, costs cpu.Costs) *LinuxPair {
	return NewLinuxPairOn(sim.New(), coresA, coresB, costs)
}

// NewLinuxPairOn builds the baseline testbed on any fabric; see
// NewF4TPairOn for the island layout and determinism contract.
func NewLinuxPairOn(f sim.Fabric, coresA, coresB int, costs cpu.Costs) *LinuxPair {
	kA, kB := f.IslandKernel(IslandA), f.IslandKernel(IslandB)
	link := netsim.NewLinkOn(f, IslandA, IslandB, LinkGbps, LinkPropNS, 5678)

	optA := stack.Options{IP: AddrA, MAC: MACA, Cfg: tcpproc.DefaultConfig(), Alg: "cubic", MaxFlows: 70000, Seed: 11}
	optB := stack.Options{IP: AddrB, MAC: MACB, Cfg: tcpproc.DefaultConfig(), Alg: "cubic", MaxFlows: 70000, Seed: 22}

	machA := host.NewLinuxMachine(kA, optA, coresA, costs, []wire.Addr{AddrB}, link.AtoB.Send)
	machB := host.NewLinuxMachine(kB, optB, coresB, costs, []wire.Addr{AddrA}, link.BtoA.Send)
	machA.Endpoint().LearnPeer(AddrB, MACB)
	machB.Endpoint().LearnPeer(AddrA, MACA)
	link.AtoB.SetSink(machB.DeliverPacket)
	link.BtoA.SetSink(machA.DeliverPacket)

	f.RegisterOn(IslandA, machA)
	f.RegisterOn(IslandB, machB)
	p := &LinuxPair{R: f, KA: kA, KB: kB, Link: link, MachA: machA, MachB: machB}
	if k, ok := f.(*sim.Kernel); ok {
		p.K = k
	}
	return p
}

// RunUntilCoarse advances until the predicate holds, checking it at
// most once per step cycles — for predicates that are themselves
// O(flows) and must not run every cycle. The predicate is observed on
// a fixed cycle grid (start, start+step, ...) regardless of execution
// mode or cycle skipping, so serial, shadow (noskip), and sharded runs
// of the same rig stop at the same cycle — the property the
// differential battery depends on.
func RunUntilCoarse(r sim.Runner, pred func() bool, step, budget int64) bool {
	if step < 1 {
		step = 1
	}
	end := r.Now() + budget
	for {
		if pred() {
			return true
		}
		if r.Now() >= end {
			return false
		}
		n := step
		if rem := end - r.Now(); n > rem {
			n = rem
		}
		r.Run(n)
	}
}

// MeasureRate runs warmup cycles, snapshots the counter, runs measure
// cycles, and returns the counter's steady-state events/second.
func MeasureRate(r sim.Runner, c *sim.Counter, warmup, measure int64) float64 {
	r.Run(warmup)
	c.Snapshot(r.Now())
	r.Run(measure)
	return c.RatePerSecond(r.Now())
}

// Sweep runs n independent experiment points across at most workers
// goroutines. Each point builds its own rig on its own kernel, so
// points share no state and the sweep's results are identical to a
// serial loop — only wall-clock time changes. Results must be slotted
// by index inside point, never appended.
func Sweep(n, workers int, point func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			point(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				point(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Gbps converts a bytes/second rate to gigabits per second.
func Gbps(bytesPerSec float64) float64 { return bytesPerSec * 8 / 1e9 }

// Mrps converts an events/second rate to millions per second.
func Mrps(rate float64) float64 { return rate / 1e6 }

// Default simulation windows: 1 ms warmup, 3 ms measurement. Throughput
// at 100 Gbps moves ~37 MB in the window — plenty for steady-state
// rates while keeping the sweep fast.
const (
	DefaultWarmup  = 250_000
	DefaultMeasure = 750_000
)

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func i64(v int64) string  { return fmt.Sprintf("%d", v) }
