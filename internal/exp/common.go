// Package exp contains one runner per table/figure of the paper's
// evaluation (§5, §6). Each runner assembles a rig (hosts, engines,
// link), runs it in simulated time with a warmup, and returns a Table
// whose rows mirror the figure's series. cmd/f4tbench prints them;
// bench_test.go wraps them; EXPERIMENTS.md records paper-vs-measured.
package exp

import (
	"fmt"
	"strings"

	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/host"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/stack"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table in aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Addresses of the two-node testbed.
var (
	AddrA = wire.MakeAddr(10, 0, 0, 1)
	AddrB = wire.MakeAddr(10, 0, 0, 2)
	MACA  = wire.MAC{2, 0, 0, 0, 0, 1}
	MACB  = wire.MAC{2, 0, 0, 0, 0, 2}
)

// LinkGbps is the testbed link speed (§5: 100 Gbps).
const LinkGbps = 100

// LinkPropNS models the direct-connect cabling plus MAC latency.
const LinkPropNS = 600

// F4TPair is two F4T hosts (engine + library machine) over one link.
type F4TPair struct {
	K            *sim.Kernel
	Link         *netsim.Link
	EngA, EngB   *engine.Engine
	MachA, MachB *host.F4TMachine
}

// NewF4TPair builds the standard two-node F4T testbed. mutate adjusts
// the shared engine configuration (applied to both sides).
func NewF4TPair(coresA, coresB int, costs cpu.Costs, mutate func(*engine.Config)) *F4TPair {
	k := sim.New()
	link := netsim.NewLink(k, LinkGbps, LinkPropNS, 1234)

	cfg := engine.DefaultConfig()
	cfg.Channels = coresA
	if mutate != nil {
		mutate(&cfg)
	}
	cfgA := cfg
	cfgA.IP, cfgA.MAC, cfgA.Seed, cfgA.Channels = AddrA, MACA, 101, coresA
	cfgB := cfg
	cfgB.IP, cfgB.MAC, cfgB.Seed, cfgB.Channels = AddrB, MACB, 202, coresB

	engA := engine.New(k, cfgA, link.AtoB.Send)
	engB := engine.New(k, cfgB, link.BtoA.Send)
	link.AtoB.SetSink(engB.DeliverPacket)
	link.BtoA.SetSink(engA.DeliverPacket)
	engA.LearnPeer(AddrB, MACB)
	engB.LearnPeer(AddrA, MACA)

	machA := host.NewF4TMachine(k, engA, coresA, costs, []wire.Addr{AddrB})
	machB := host.NewF4TMachine(k, engB, coresB, costs, []wire.Addr{AddrA})

	// Direct registration (no TickerFunc wrapper) so the kernel sees the
	// components' NextWork hints and can skip quiescent spans.
	k.Register(engA)
	k.Register(engB)
	k.Register(machA)
	k.Register(machB)
	return &F4TPair{K: k, Link: link, EngA: engA, EngB: engB, MachA: machA, MachB: machB}
}

// LinuxPair is two Linux-stack hosts over one link.
type LinuxPair struct {
	K            *sim.Kernel
	Link         *netsim.Link
	MachA, MachB *host.LinuxMachine
}

// NewLinuxPair builds the baseline two-node testbed.
func NewLinuxPair(coresA, coresB int, costs cpu.Costs) *LinuxPair {
	k := sim.New()
	link := netsim.NewLink(k, LinkGbps, LinkPropNS, 5678)

	optA := stack.Options{IP: AddrA, MAC: MACA, Cfg: tcpproc.DefaultConfig(), Alg: "cubic", MaxFlows: 70000, Seed: 11}
	optB := stack.Options{IP: AddrB, MAC: MACB, Cfg: tcpproc.DefaultConfig(), Alg: "cubic", MaxFlows: 70000, Seed: 22}

	machA := host.NewLinuxMachine(k, optA, coresA, costs, []wire.Addr{AddrB}, link.AtoB.Send)
	machB := host.NewLinuxMachine(k, optB, coresB, costs, []wire.Addr{AddrA}, link.BtoA.Send)
	machA.Endpoint().LearnPeer(AddrB, MACB)
	machB.Endpoint().LearnPeer(AddrA, MACA)
	link.AtoB.SetSink(machB.DeliverPacket)
	link.BtoA.SetSink(machA.DeliverPacket)

	k.Register(machA)
	k.Register(machB)
	return &LinuxPair{K: k, Link: link, MachA: machA, MachB: machB}
}

// RunUntilCoarse advances until the predicate holds, checking it at
// most once per step cycles — for predicates that are themselves
// O(flows) and must not run every cycle. It layers the rate limit onto
// Kernel.RunUntil, so Stop() and cycle skipping are honored.
func RunUntilCoarse(k *sim.Kernel, pred func() bool, step, budget int64) bool {
	nextCheck := k.Now()
	gated := func() bool {
		if k.Now() < nextCheck {
			return false
		}
		nextCheck = k.Now() + step
		return pred()
	}
	if k.RunUntil(gated, budget) {
		return true
	}
	return pred()
}

// MeasureRate runs warmup cycles, snapshots the counter, runs measure
// cycles, and returns the counter's steady-state events/second.
func MeasureRate(k *sim.Kernel, c *sim.Counter, warmup, measure int64) float64 {
	k.Run(warmup)
	c.Snapshot(k.Now())
	k.Run(measure)
	return c.RatePerSecond(k.Now())
}

// Gbps converts a bytes/second rate to gigabits per second.
func Gbps(bytesPerSec float64) float64 { return bytesPerSec * 8 / 1e9 }

// Mrps converts an events/second rate to millions per second.
func Mrps(rate float64) float64 { return rate / 1e6 }

// Default simulation windows: 1 ms warmup, 3 ms measurement. Throughput
// at 100 Gbps moves ~37 MB in the window — plenty for steady-state
// rates while keeping the sweep fast.
const (
	DefaultWarmup  = 250_000
	DefaultMeasure = 750_000
)

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func i64(v int64) string  { return fmt.Sprintf("%d", v) }
