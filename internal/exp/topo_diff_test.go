package exp

import (
	"fmt"
	"math"
	"testing"

	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// The topology rigs' determinism contract: every scenario point is
// bit-identical between the serial kernel (with and without quiescence
// skipping) and sharded execution at any shard count. The signatures
// below fold every float through math.Float64bits, so "close" is never
// good enough — only the exact same bits pass.

const (
	topoDiffWarmup  = 50_000
	topoDiffMeasure = 150_000
)

func incastSig(f sim.Fabric, senders int, aqm netsim.AQMConfig, seed uint64) string {
	r := IncastPointOn(f, senders, aqm, "dctcp", seed, nil, topoDiffWarmup, topoDiffMeasure)
	return fmt.Sprintf("goodput=%x port=%+v", math.Float64bits(r.GoodputGbps), r.Port)
}

// TestIncastShardDifferential is the shard battery for the incast rig:
// serial skip/noskip and 2/4/8 shards across seeds, all bit-identical.
func TestIncastShardDifferential(t *testing.T) {
	seeds := []uint64{0, 1}
	shardCounts := []int{2, 4, 8}
	if testing.Short() {
		seeds = seeds[:1]
		shardCounts = []int{2}
	}
	for _, seed := range seeds {
		aqm := netsim.RED(0, true)
		ref := incastSig(sim.New(), 4, aqm, seed)

		noskip := sim.New()
		noskip.SetSkipping(false)
		if got := incastSig(noskip, 4, aqm, seed); got != ref {
			t.Errorf("seed %d: noskip diverged\n got %s\nwant %s", seed, got, ref)
		}
		for _, n := range shardCounts {
			if got := incastSig(sim.NewSharded(n), 4, aqm, seed); got != ref {
				t.Errorf("seed %d: %d shards diverged\n got %s\nwant %s", seed, n, got, ref)
			}
		}
	}
}

// TestScenarioRigsShardIdentical covers the remaining topology rigs at
// one seed each: fan-out/fan-in, mixed traffic, and the WAN chain must
// all produce bit-identical results serial vs sharded.
func TestScenarioRigsShardIdentical(t *testing.T) {
	cases := []struct {
		name string
		run  func(f sim.Fabric) string
	}{
		{"fanio", func(f sim.Fabric) string {
			r := FanioPointOn(f, 3, netsim.CoDel(0, true), "dctcp", 8_192, nil, topoDiffWarmup, topoDiffMeasure)
			return fmt.Sprintf("rps=%x p50=%d p99=%d port=%+v",
				math.Float64bits(r.RoundsPerSec), r.P50NS, r.P99NS, r.Port)
		}},
		{"mixed", func(f sim.Fabric) string {
			r := MixedPointOn(f, netsim.ECNThreshold(netsim.DefaultCoDelTargetNS, 0), "dctcp", nil, topoDiffWarmup, topoDiffMeasure)
			return fmt.Sprintf("bulk=%x p50=%d p99=%d port=%+v",
				math.Float64bits(r.BulkGbps), r.EchoP50, r.EchoP99, r.Port)
		}},
		{"wan", func(f sim.Fabric) string {
			senders := []WANSpec{{RouterIdx: 0, PropNS: 600}, {RouterIdx: 2, PropNS: 25_000}}
			r := WANPointOn(f, senders, netsim.DropTail(0), "cubic", nil, topoDiffWarmup, topoDiffMeasure)
			sig := fmt.Sprintf("jain=%x port=%+v", math.Float64bits(r.Jain), r.Port)
			for _, g := range r.SenderGbps {
				sig += fmt.Sprintf(" %x", math.Float64bits(g))
			}
			return sig
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref := c.run(sim.New())
			if got := c.run(sim.NewSharded(2)); got != ref {
				t.Errorf("2 shards diverged\n got %s\nwant %s", got, ref)
			}
			if !testing.Short() {
				if got := c.run(sim.NewSharded(4)); got != ref {
					t.Errorf("4 shards diverged\n got %s\nwant %s", got, ref)
				}
			}
		})
	}
}

// TestIncastAQMOnset is the acceptance check for the discipline sweep:
// DropTail lets the standing queue grow to the byte limit and tail-drops
// there, while RED and CoDel act measurably earlier — asserted through
// the bottleneck port's own counters, not throughput side effects.
func TestIncastAQMOnset(t *testing.T) {
	const senders = 4
	run := func(aqm netsim.AQMConfig) PortStats {
		return IncastPointOn(sim.New(), senders, aqm, "dctcp", 0, nil, topoDiffWarmup, topoDiffMeasure).Port
	}
	dt := run(netsim.DropTail(0))
	red := run(netsim.RED(0, true))
	codel := run(netsim.CoDel(0, true))

	if dt.TailDrops == 0 {
		t.Errorf("droptail: no tail drops (stats %+v)", dt)
	}
	if limit := int64(netsim.DefaultQueueLimitBytes); dt.PeakQBytes < limit*3/4 {
		t.Errorf("droptail peak queue %d never approached the %d limit", dt.PeakQBytes, limit)
	}
	if dt.Marks != 0 {
		t.Errorf("droptail marked %d packets; it must never mark", dt.Marks)
	}
	for _, c := range []struct {
		name string
		s    PortStats
	}{{"red", red}, {"codel", codel}} {
		if c.s.Marks == 0 {
			t.Errorf("%s: no CE marks under ECN-capable incast (stats %+v)", c.name, c.s)
		}
		// The initial slow-start burst can fill any queue before the
		// first CE feedback returns, so peak depth is not the
		// discriminator — onset time is: RED and CoDel must signal
		// strictly before DropTail's first loss.
		if c.s.FirstCongNS < 0 || c.s.FirstCongNS >= dt.FirstCongNS {
			t.Errorf("%s onset %d ns not earlier than droptail's %d ns",
				c.name, c.s.FirstCongNS, dt.FirstCongNS)
		}
	}
}

// TestTopologyTelemetryBinding checks that the per-port gauges a rig
// registers report the same values as the counters the tests assert on.
func TestTopologyTelemetryBinding(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := IncastPointOn(sim.New(), 2, netsim.RED(0, true), "dctcp", 0, reg, topoDiffWarmup, topoDiffMeasure)
	checks := []struct {
		gauge string
		want  int64
	}{
		{"topo.sw0.node0.marked_pkts", r.Port.Marks},
		{"topo.sw0.node0.tail_drops", r.Port.TailDrops},
		{"topo.sw0.node0.aqm_drops", r.Port.AQMDrops},
		{"topo.sw0.node0.peak_q_bytes", r.Port.PeakQBytes},
	}
	for _, c := range checks {
		got, ok := reg.Value(c.gauge)
		if !ok {
			t.Errorf("gauge %q not registered", c.gauge)
			continue
		}
		if got != c.want {
			t.Errorf("gauge %q = %d, counter says %d", c.gauge, got, c.want)
		}
	}
}
