package exp

import (
	"sync/atomic"
	"testing"
)

// TestSweepCoversEveryIndexOnce checks the sweep worker pool's only
// contract: every index in [0, n) runs exactly once, for any worker
// count (including degenerate ones). Cell placement is by index, so
// this is what makes Fig9Workers/Fig13Workers/Fig16aWorkers tables
// identical to their serial counterparts.
func TestSweepCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 8, 100} {
		const n = 37
		var counts [n]int32
		Sweep(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i := range counts {
			if counts[i] != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, counts[i])
			}
		}
	}
	Sweep(0, 4, func(i int) { t.Errorf("point called for n=0: index %d", i) })
}
