package exp

import (
	"fmt"
	"strings"
	"testing"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/netsim"
	"f4t/internal/sim"
)

// These tests are the differential harness for the quiescence-skipping
// kernel: each workload is built twice — once on the skipping kernel,
// once with SetSkipping(false), the historical always-step loop — and
// the cycle-stamped counter streams must match bit for bit. Sampling
// runs off self-rechaining kernel timers, so both modes observe the
// counters at identical cycles.

// sampleEvery appends fn() to out every interval cycles, forever.
func sampleEvery(k *sim.Kernel, interval int64, fn func() string, out *[]string) {
	var re func()
	re = func() {
		*out = append(*out, fn())
		k.After(interval, re)
	}
	k.After(interval, re)
}

// diffRun executes the workload in both kernel modes and fails the test
// on the first diverging signature line. It returns the skipping run's
// skipped-cycle count so callers can assert the fast path actually
// engaged.
func diffRun(t *testing.T, name string, workload func(skip bool) (string, int64)) int64 {
	t.Helper()
	fastSig, skipped := workload(true)
	slowSig, slowSkipped := workload(false)
	if slowSkipped != 0 {
		t.Fatalf("%s: shadow mode skipped %d cycles", name, slowSkipped)
	}
	if fastSig != slowSig {
		fastLines := strings.Split(fastSig, "\n")
		slowLines := strings.Split(slowSig, "\n")
		n := len(fastLines)
		if len(slowLines) < n {
			n = len(slowLines)
		}
		for i := 0; i < n; i++ {
			if fastLines[i] != slowLines[i] {
				t.Fatalf("%s: signatures diverge at line %d:\n  skip:   %s\n  shadow: %s", name, i, fastLines[i], slowLines[i])
			}
		}
		t.Fatalf("%s: signature lengths differ: skip=%d shadow=%d", name, len(fastLines), len(slowLines))
	}
	return skipped
}

// f4tBulkSig: two-node F4T bulk transfer (the Fig 8a shape).
func f4tBulkSig(skip bool) (string, int64) {
	p := NewF4TPair(2, 2, cpu.DefaultCosts(), nil)
	k := p.K
	k.SetSkipping(skip)
	sink := apps.NewSink(p.MachB.Threads(), 5001)
	k.Register(sink)
	k.Run(2_000)
	b := apps.NewBulkSender(p.MachA.Threads(), 0, 5001, 1460)
	k.Register(b)

	var log []string
	sample := func() string {
		return fmt.Sprintf("c=%d req=%d bytes=%d del=%d atx=%d brx=%d cmds=%d comps=%d sent=%d drop=%d rdrop=%d",
			k.Now(), b.Requests.Total(), b.Bytes.Total(), sink.Delivered.Total(),
			p.EngA.TxPkts.Total(), p.EngB.RxPkts.Total(),
			p.EngA.CmdsProcessed.Total(), p.EngA.CompletionsSent.Total(),
			p.Link.AtoB.SentPkts, p.Link.AtoB.DroppedPkts, p.EngB.RxDropped.Total())
	}
	sampleEvery(k, 10_000, sample, &log)
	if !k.RunUntil(b.Ready, 500_000) {
		log = append(log, "NOT-READY")
	}
	log = append(log, "ready "+sample())
	k.Run(200_000)
	log = append(log, "end "+sample())
	return strings.Join(log, "\n"), k.SkippedCycles()
}

// f4tRoundRobinFaultsSig: low-locality round-robin senders over a lossy,
// reordering link — loss recovery, retransmission timers and reordering
// all in play.
func f4tRoundRobinFaultsSig(skip bool) (string, int64) {
	p := NewF4TPair(2, 2, cpu.DefaultCosts(), nil)
	k := p.K
	k.SetSkipping(skip)
	p.Link.AtoB.SetFaults(netsim.Faults{LossProb: 0.01, ReorderProb: 0.02, ReorderNS: 2_000})
	p.Link.BtoA.SetFaults(netsim.Faults{LossProb: 0.005})
	sink := apps.NewSink(p.MachB.Threads(), 5002)
	k.Register(sink)
	k.Run(2_000)
	rr := apps.NewRoundRobinSender(p.MachA.Threads(), 0, 5002, 1024, 4)
	k.Register(rr)

	var log []string
	sample := func() string {
		return fmt.Sprintf("c=%d req=%d del=%d atx=%d brx=%d drop=%d reord=%d nofl=%d",
			k.Now(), rr.Requests.Total(), sink.Delivered.Total(),
			p.EngA.TxPkts.Total(), p.EngB.RxPkts.Total(),
			p.Link.AtoB.DroppedPkts, p.Link.AtoB.ReorderPkts, p.EngB.RxNoFlow.Total())
	}
	sampleEvery(k, 10_000, sample, &log)
	if !k.RunUntil(rr.Ready, 500_000) {
		log = append(log, "NOT-READY")
	}
	log = append(log, "ready "+sample())
	k.Run(200_000)
	log = append(log, "end "+sample())
	return strings.Join(log, "\n"), k.SkippedCycles()
}

// f4tEchoSig: the ping-pong workload of Fig 13 — mostly idle RTT waits,
// the skip kernel's showcase.
func f4tEchoSig(skip bool) (string, int64) {
	p := NewF4TPair(2, 2, cpu.DefaultCosts(), func(c *engine.Config) {
		c.CarryBytes = false
	})
	k := p.K
	k.SetSkipping(skip)
	srv := apps.NewEchoServer(p.MachB.Threads(), 5003, 128)
	k.Register(srv)
	k.Run(2_000)
	cli := apps.NewEchoClient(k, p.MachA.Threads(), 0, 5003, 128, 4)
	k.Register(cli)

	var log []string
	sample := func() string {
		return fmt.Sprintf("c=%d req=%d lat_n=%d lat_mean=%.3f atx=%d btx=%d comps=%d",
			k.Now(), cli.Requests.Total(), cli.Latency.Count(), cli.Latency.Mean(),
			p.EngA.TxPkts.Total(), p.EngB.TxPkts.Total(), p.EngA.CompletionsSent.Total())
	}
	sampleEvery(k, 10_000, sample, &log)
	if !k.RunUntil(cli.Ready, 500_000) {
		log = append(log, "NOT-READY")
	}
	log = append(log, "ready "+sample())
	k.Run(400_000)
	log = append(log, "end "+sample())
	return strings.Join(log, "\n"), k.SkippedCycles()
}

// f4tDctcpSig: DCTCP with ECN marking at the link — congestion marks,
// ECE echoes and window modulation must all land on identical cycles.
func f4tDctcpSig(skip bool) (string, int64) {
	p := NewF4TPair(1, 1, cpu.DefaultCosts(), func(c *engine.Config) {
		c.Alg = "dctcp"
		c.Proto.ECN = true
	})
	k := p.K
	k.SetSkipping(skip)
	p.Link.AtoB.SetAQM(netsim.ECNThreshold(1_000, 0))
	sink := apps.NewSink(p.MachB.Threads(), 5004)
	k.Register(sink)
	k.Run(2_000)
	b := apps.NewBulkSender(p.MachA.Threads(), 0, 5004, 1460)
	k.Register(b)

	var log []string
	sample := func() string {
		cwnd := uint32(0)
		if tcb := p.EngA.TCB(0); tcb != nil {
			cwnd = tcb.Cwnd
		}
		return fmt.Sprintf("c=%d req=%d del=%d marked=%d cwnd=%d atx=%d",
			k.Now(), b.Requests.Total(), sink.Delivered.Total(),
			p.Link.AtoB.MarkedPkts, cwnd, p.EngA.TxPkts.Total())
	}
	sampleEvery(k, 10_000, sample, &log)
	if !k.RunUntil(b.Ready, 500_000) {
		log = append(log, "NOT-READY")
	}
	log = append(log, "ready "+sample())
	k.Run(200_000)
	log = append(log, "end "+sample())
	return strings.Join(log, "\n"), k.SkippedCycles()
}

// linuxBulkSig: the software-stack baseline — covers LinuxMachine's
// NextWork (RSS queues, stack timers) and the jittered CPU paths.
func linuxBulkSig(skip bool) (string, int64) {
	p := NewLinuxPair(2, 2, cpu.DefaultCosts())
	k := p.K
	k.SetSkipping(skip)
	sink := apps.NewSink(p.MachB.Threads(), 5005)
	k.Register(sink)
	k.Run(2_000)
	b := apps.NewBulkSender(p.MachA.Threads(), 0, 5005, 1460)
	k.Register(b)

	var log []string
	sample := func() string {
		return fmt.Sprintf("c=%d req=%d bytes=%d del=%d sent=%d rsent=%d rxfull=%d",
			k.Now(), b.Requests.Total(), b.Bytes.Total(), sink.Delivered.Total(),
			p.Link.AtoB.SentPkts, p.Link.BtoA.SentPkts, p.MachB.RxDroppedFull)
	}
	sampleEvery(k, 10_000, sample, &log)
	if !k.RunUntil(b.Ready, 300_000) {
		log = append(log, "NOT-READY")
	}
	log = append(log, "ready "+sample())
	k.Run(150_000)
	log = append(log, "end "+sample())
	return strings.Join(log, "\n"), k.SkippedCycles()
}

func TestSkipDifferentialF4TBulk(t *testing.T) {
	diffRun(t, "f4t-bulk", f4tBulkSig)
}

func TestSkipDifferentialRoundRobinFaults(t *testing.T) {
	diffRun(t, "f4t-rr-faults", f4tRoundRobinFaultsSig)
}

func TestSkipDifferentialEcho(t *testing.T) {
	skipped := diffRun(t, "f4t-echo", f4tEchoSig)
	if skipped == 0 {
		t.Error("echo workload skipped no cycles — the idle fast path never engaged")
	}
}

func TestSkipDifferentialDCTCP(t *testing.T) {
	diffRun(t, "f4t-dctcp", f4tDctcpSig)
}

func TestSkipDifferentialLinuxBulk(t *testing.T) {
	diffRun(t, "linux-bulk", linuxBulkSig)
}

// TestSkipDeterminism: two identical skipping runs must agree exactly —
// cycle skipping must not introduce any run-to-run nondeterminism.
func TestSkipDeterminism(t *testing.T) {
	a, _ := f4tEchoSig(true)
	b, _ := f4tEchoSig(true)
	if a != b {
		t.Fatal("two identical skipping runs diverged")
	}
}
