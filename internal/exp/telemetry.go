package exp

import (
	"fmt"
	"io"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/flow"
	"f4t/internal/telemetry"
)

// PairTelemetry bundles the telemetry wired onto one F4TPair: the metric
// registry spanning every layer, the trace ring, the clock-driven
// sampler, and one flow table per engine (flow IDs are per-engine
// namespaces, so the two sides must not share a table).
type PairTelemetry struct {
	Reg     *telemetry.Registry
	Trace   *telemetry.Trace
	Sampler *telemetry.Sampler
	FlowsA  *telemetry.FlowTable
	FlowsB  *telemetry.FlowTable

	nextTID int32
}

// DefaultSampleCycles is the sampler period for instrumented rigs:
// 25k cycles = 100 us simulated, ~10 points per simulated millisecond.
const DefaultSampleCycles = 25_000

// InstrumentF4TPair attaches full telemetry to a standard two-node rig:
// every engine sub-unit, the PCIe channels, both link directions and the
// host libraries register their metrics; the engines, FPCs, channels and
// pipes get trace threads; a sampler snapshots all metrics every
// sampleCycles (<= 0 selects DefaultSampleCycles) and refreshes both
// flow tables from the live TCBs. Call before registering apps so app
// instrumentation can join the same registry/trace via NextTID.
func InstrumentF4TPair(p *F4TPair, sampleCycles int64, traceEvents int) *PairTelemetry {
	if sampleCycles <= 0 {
		sampleCycles = DefaultSampleCycles
	}
	t := &PairTelemetry{
		Reg:   telemetry.NewRegistry(),
		Trace: telemetry.NewTrace(traceEvents),
	}

	p.EngA.Instrument(t.Reg, "eng_a")
	p.EngB.Instrument(t.Reg, "eng_b")
	p.Link.Instrument(t.Reg, "link")
	p.MachA.Instrument(t.Reg, "mach_a")
	p.MachB.Instrument(t.Reg, "mach_b")

	tid := p.EngA.SetTracer(t.Trace, "eng_a", 1)
	tid = p.EngB.SetTracer(t.Trace, "eng_b", tid)
	t.Trace.SetThreadName(tid, "link.a_to_b")
	p.Link.AtoB.SetTracer(t.Trace, tid)
	tid++
	t.Trace.SetThreadName(tid, "link.b_to_a")
	p.Link.BtoA.SetTracer(t.Trace, tid)
	tid++
	t.nextTID = tid

	t.FlowsA = telemetry.NewFlowTable(t.Reg.NewHistogram("eng_a.flow.srtt_ns"))
	t.FlowsB = telemetry.NewFlowTable(t.Reg.NewHistogram("eng_b.flow.srtt_ns"))
	p.EngA.SetFlowTable(t.FlowsA)
	p.EngB.SetFlowTable(t.FlowsB)

	t.Sampler = telemetry.StartSampler(p.K, t.Reg, sampleCycles, 0)
	t.Sampler.AddHook(func(nowNS int64) {
		p.EngA.VisitTCBs(func(tcb *flow.TCB) { t.FlowsA.Observe(nowNS, tcb) })
		p.EngB.VisitTCBs(func(tcb *flow.TCB) { t.FlowsB.Observe(nowNS, tcb) })
	})
	return t
}

// NextTID allocates one more virtual trace thread (for apps joining the
// rig's trace) and names it.
func (t *PairTelemetry) NextTID(name string) int32 {
	tid := t.nextTID
	t.nextTID++
	t.Trace.SetThreadName(tid, name)
	return tid
}

// Export writes the rig's Perfetto trace (spans plus sampled counter
// tracks) to w.
func (t *PairTelemetry) Export(w io.Writer) error {
	return t.Trace.Export(w, t.Sampler)
}

// StatRig is an instrumented standard rig after its run: the telemetry
// bundle plus headline workload counters for sanity checks.
type StatRig struct {
	Pair     *F4TPair
	Tel      *PairTelemetry
	Requests int64 // completed app operations (round trips or sends)
}

// RunStatRig builds one of the standard telemetry rigs, runs it for
// runCycles beyond readiness, and returns the collected telemetry.
// Rigs: "echo" (the Fig 13 ping-pong shape) and "bulk" (the Fig 8a
// saturated transfer).
func RunStatRig(rig string, runCycles, sampleCycles int64) (*StatRig, error) {
	if runCycles <= 0 {
		runCycles = 400_000
	}
	p := NewF4TPair(2, 2, cpu.DefaultCosts(), func(c *engine.Config) {
		if rig == "echo" {
			c.CarryBytes = false
		}
	})
	k := p.K
	tel := InstrumentF4TPair(p, sampleCycles, 0)

	switch rig {
	case "echo":
		srv := apps.NewEchoServer(p.MachB.Threads(), 6001, 128)
		k.Register(srv)
		k.Run(2_000)
		cli := apps.NewEchoClient(k, p.MachA.Threads(), 0, 6001, 128, 4)
		cli.Instrument(tel.Reg, "app.echo")
		cli.SetTracer(tel.Trace, tel.NextTID("app.echo"))
		k.Register(cli)
		if !k.RunUntil(cli.Ready, 500_000) {
			return nil, fmt.Errorf("echo rig: connections not established")
		}
		k.Run(runCycles)
		return &StatRig{Pair: p, Tel: tel, Requests: cli.Requests.Total()}, nil
	case "bulk":
		sink := apps.NewSink(p.MachB.Threads(), 6002)
		sink.Instrument(tel.Reg, "app.sink")
		k.Register(sink)
		k.Run(2_000)
		b := apps.NewBulkSender(p.MachA.Threads(), 0, 6002, 1460)
		b.Instrument(tel.Reg, "app.bulk")
		k.Register(b)
		if !k.RunUntil(b.Ready, 500_000) {
			return nil, fmt.Errorf("bulk rig: connections not established")
		}
		k.Run(runCycles)
		return &StatRig{Pair: p, Tel: tel, Requests: b.Requests.Total()}, nil
	default:
		return nil, fmt.Errorf("unknown rig %q (echo, bulk)", rig)
	}
}

// RunTracedEcho runs the standard echo rig with telemetry enabled and
// writes its Perfetto trace to w (the f4tperf -trace path).
func RunTracedEcho(w io.Writer, runCycles int64) (*StatRig, error) {
	r, err := RunStatRig("echo", runCycles, 0)
	if err != nil {
		return nil, err
	}
	if err := r.Tel.Export(w); err != nil {
		return nil, err
	}
	return r, nil
}
