package exp

import (
	"os"
	"testing"

	"f4t/internal/sim"
)

// smallChurn is the shard-battery configuration: small enough that five
// full fabric runs stay inside a few seconds, but with lifetimes short
// enough that the run sees real departures, replacements, TIME_WAIT
// recycling, and at least one cuckoo-table resize.
func smallChurn() ChurnConfig {
	return ChurnConfig{
		TargetFlows:   4096,
		Clients:       8,
		SustainCycles: 200_000,
		Budget:        2_000_000,
		LifetimeXM:    50_000,
		LifetimeAlpha: 1.2,
		Seed:          7,
	}
}

// TestChurnShardDifferential is the determinism battery for the churn
// rig: serial skip/noskip and 2/4/8 shards must produce bit-identical
// digests. The digest folds in every counter the rig exposes — opens,
// establishes, departures, close/abort splits, per-side packet and
// event counts, cuckoo table internals (kicks, stash traffic, resizes),
// and link byte totals — so any divergence in packet ordering or timer
// interleaving across fabrics fails loudly.
func TestChurnShardDifferential(t *testing.T) {
	cfg := smallChurn()
	shardCounts := []int{2, 4, 8}
	if testing.Short() {
		shardCounts = []int{2}
	}

	ref := ChurnOn(sim.New(), cfg)
	if !ref.Reached {
		t.Fatalf("serial run never reached %d flows (live at end %d)", cfg.TargetFlows, ref.LiveAtEnd)
	}
	if ref.Departed == 0 {
		t.Fatalf("serial run saw no departures; the battery must exercise churn")
	}
	if ref.ServerTable.Resizes == 0 {
		t.Fatalf("serial run never grew the flow table; raise the target")
	}

	noskip := sim.New()
	noskip.SetSkipping(false)
	if got := ChurnOn(noskip, cfg); got.Digest != ref.Digest {
		t.Errorf("noskip diverged\n got %s\nwant %s", got.Digest, ref.Digest)
	}
	for _, n := range shardCounts {
		if got := ChurnOn(sim.NewSharded(n), cfg); got.Digest != ref.Digest {
			t.Errorf("%d shards diverged\n got %s\nwant %s", n, got.Digest, ref.Digest)
		}
	}
}

// TestChurnFullScaleDifferential is the acceptance run: the full 2^20
// configuration on all five fabrics, digests bit-identical. It takes a
// couple of minutes of wall time, so it only runs when asked for
// explicitly: F4T_FULL_CHURN=1 go test ./internal/exp/ -run FullScale
func TestChurnFullScaleDifferential(t *testing.T) {
	if os.Getenv("F4T_FULL_CHURN") == "" {
		t.Skip("set F4T_FULL_CHURN=1 to run the full 2^20 differential (~2 min)")
	}
	cfg := DefaultChurnConfig()
	ref := ChurnOn(sim.New(), cfg)
	t.Logf("serial: %s", ref.Digest)
	if !ref.Reached {
		t.Fatalf("serial run never reached %d flows (live at end %d)", cfg.TargetFlows, ref.LiveAtEnd)
	}
	if ref.LiveAtEnd < int64(cfg.TargetFlows) {
		t.Fatalf("plateau lost during sustain: live=%d < target=%d", ref.LiveAtEnd, cfg.TargetFlows)
	}
	noskip := sim.New()
	noskip.SetSkipping(false)
	if got := ChurnOn(noskip, cfg); got.Digest != ref.Digest {
		t.Errorf("noskip diverged\n got %s\nwant %s", got.Digest, ref.Digest)
	}
	for _, n := range []int{2, 4, 8} {
		if got := ChurnOn(sim.NewSharded(n), cfg); got.Digest != ref.Digest {
			t.Errorf("%d shards diverged\n got %s\nwant %s", n, got.Digest, ref.Digest)
		}
	}
}

// TestChurnQuickReachesTarget runs the quick (2^17) configuration once
// and checks the rig's acceptance properties: the target plateau is
// reached, churn actually occurs during the run, no client saturates
// its port/slot budget, and the plateau holds through the sustain
// window. Skipped under -short; the run takes a few seconds.
func TestChurnQuickReachesTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("quick churn run takes several seconds")
	}
	cfg := QuickChurnConfig()
	r := ChurnOn(sim.New(), cfg)
	t.Logf("churn quick: %s", r.Digest)
	if !r.Reached {
		t.Fatalf("did not reach %d concurrent flows (live at end %d)", cfg.TargetFlows, r.LiveAtEnd)
	}
	if r.Departed == 0 {
		t.Fatalf("no departures: lifetimes never overlapped the run window")
	}
	if r.DialRejected != 0 {
		t.Fatalf("%d dials rejected: client port/slot budget exhausted", r.DialRejected)
	}
	if r.LiveAtEnd < int64(cfg.TargetFlows) {
		t.Fatalf("plateau lost during sustain: live=%d < target=%d", r.LiveAtEnd, cfg.TargetFlows)
	}
	if r.ServerBytesFlow <= 0 {
		t.Fatalf("memory accounting reported %v bytes/flow", r.ServerBytesFlow)
	}
}
