package exp

import (
	"fmt"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/engine/memmgr"
	"f4t/internal/host"
	"f4t/internal/sim"
)

// EchoPoint runs the §5.3 echoing benchmark: totalFlows ping-pong
// connections, 8 cores per side, 128 B messages — the worst-case TCB
// locality pattern. stack ∈ {"linux", "f4t-ddr", "f4t-hbm"}.
func EchoPoint(stackKind string, totalFlows int) (mrps float64, establishedFrac float64) {
	return EchoPointMut(stackKind, totalFlows, nil)
}

// EchoPointMut is EchoPoint with an engine-config mutation (ablations).
func EchoPointMut(stackKind string, totalFlows int, mutate func(*engine.Config)) (mrps float64, establishedFrac float64) {
	return EchoPointOn(sim.New(), stackKind, totalFlows, mutate)
}

// EchoPointOn runs the echo benchmark on any fabric: server on island
// B, client on island A. On a serial kernel it is EchoPointMut; on a
// ShardedKernel the two hosts run on separate goroutines and must
// produce bit-identical numbers (the shard_diff battery checks this).
func EchoPointOn(f sim.Fabric, stackKind string, totalFlows int, mutate func(*engine.Config)) (mrps float64, establishedFrac float64) {
	costs := cpu.DefaultCosts()
	const cores = 8
	const port = 9001
	perThread := totalFlows / cores
	if perThread == 0 {
		perThread = 1
	}

	var threadsA, threadsB []host.Thread
	switch stackKind {
	case "linux":
		p := NewLinuxPairOn(f, cores, cores, costs)
		threadsA, threadsB = p.MachA.Threads(), p.MachB.Threads()
	case "f4t-ddr", "f4t-hbm":
		mem := memmgr.HBM
		if stackKind == "f4t-ddr" {
			mem = memmgr.DDR
		}
		p := NewF4TPairOn(f, cores, cores, costs, func(c *engine.Config) {
			c.Memory = mem
			c.CarryBytes = false
			if mutate != nil {
				mutate(c)
			}
		})
		threadsA, threadsB = p.MachA.Threads(), p.MachB.Threads()
	default:
		panic("exp: unknown echo stack " + stackKind)
	}
	srv := apps.NewEchoServer(threadsB, port, 128)
	f.RegisterOn(IslandB, srv)
	f.Run(2_000)
	client := apps.NewEchoClient(f.IslandKernel(IslandA), threadsA, 0, port, 128, perThread)
	f.RegisterOn(IslandA, client)

	// Ramp: allow generous time for tens of thousands of handshakes; the
	// readiness check is O(flows), so probe it coarsely.
	budget := int64(5_000_000) + int64(totalFlows)*400
	RunUntilCoarse(f, client.Ready, 50_000, budget)
	want := perThread * cores
	establishedFrac = float64(client.Established()) / float64(want)

	f.Run(DefaultWarmup)
	client.Requests.Snapshot(f.Now())
	f.Run(DefaultMeasure * 2) // echo needs a longer window at low rates
	return Mrps(client.Requests.RatePerSecond(f.Now())), establishedFrac
}

// Fig13 reproduces Figure 13: echo request rate vs concurrent flows for
// Linux, F4T with DDR, and F4T with HBM. The F4T-DDR curve degrades past
// 1,024 flows (the FPC-resident capacity) as every request forces a
// DRAM TCB swap; HBM's bandwidth hides the swaps (§5.3).
func Fig13(quick bool) *Table {
	return Fig13Workers(quick, 1)
}

// Fig13Workers is Fig13 with the sweep's independent rigs distributed
// across workers goroutines (cmd/f4tperf -shards). Each (flows, stack)
// cell is one self-contained rig, so the table is identical to the
// serial sweep's for any worker count.
func Fig13Workers(quick bool, workers int) *Table {
	t := &Table{
		Title:  "Figure 13: 128 B echo request rate vs number of flows (Mrps)",
		Header: []string{"flows", "linux", "f4t-ddr", "f4t-hbm"},
	}
	flowSteps := []int{64, 256, 1024, 4096, 16384, 65536}
	if quick {
		flowSteps = []int{256, 4096, 16384}
	}
	stacks := []string{"linux", "f4t-ddr", "f4t-hbm"}
	cells := make([]string, len(flowSteps)*len(stacks))
	Sweep(len(cells), workers, func(i int) {
		flows, stackKind := flowSteps[i/len(stacks)], stacks[i%len(stacks)]
		mrps, frac := EchoPoint(stackKind, flows)
		cell := f2(mrps)
		if frac < 0.999 {
			cell += fmt.Sprintf(" (%.0f%% est)", frac*100)
		}
		cells[i] = cell
	})
	for r, flows := range flowSteps {
		row := append([]string{fmt.Sprintf("%d", flows)}, cells[r*len(stacks):(r+1)*len(stacks)]...)
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: F4T is 20× Linux at 1K flows; at 64K flows 12× (DDR) and 44× (HBM)",
		"paper: the DDR curve drops past 1,024 flows (FPC capacity) — DRAM-bandwidth throttled",
		"the flow axis continues past 65,536 (one address pair's port ceiling) in the",
		"kernelbench flow_scale section (f4tperf -bench, schema/5) and -exp churn (2^20)")
	return t
}
