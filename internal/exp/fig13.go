package exp

import (
	"fmt"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/engine/memmgr"
	"f4t/internal/sim"
)

// EchoPoint runs the §5.3 echoing benchmark: totalFlows ping-pong
// connections, 8 cores per side, 128 B messages — the worst-case TCB
// locality pattern. stack ∈ {"linux", "f4t-ddr", "f4t-hbm"}.
func EchoPoint(stackKind string, totalFlows int) (mrps float64, establishedFrac float64) {
	return EchoPointMut(stackKind, totalFlows, nil)
}

// EchoPointMut is EchoPoint with an engine-config mutation (ablations).
func EchoPointMut(stackKind string, totalFlows int, mutate func(*engine.Config)) (mrps float64, establishedFrac float64) {
	costs := cpu.DefaultCosts()
	const cores = 8
	const port = 9001
	perThread := totalFlows / cores
	if perThread == 0 {
		perThread = 1
	}

	var k *sim.Kernel
	var client *apps.EchoClient
	switch stackKind {
	case "linux":
		p := NewLinuxPair(cores, cores, costs)
		k = p.K
		srv := apps.NewEchoServer(p.MachB.Threads(), port, 128)
		k.Register(srv)
		k.Run(2_000)
		client = apps.NewEchoClient(k, p.MachA.Threads(), 0, port, 128, perThread)
		k.Register(client)
	case "f4t-ddr", "f4t-hbm":
		mem := memmgr.HBM
		if stackKind == "f4t-ddr" {
			mem = memmgr.DDR
		}
		p := NewF4TPair(cores, cores, costs, func(c *engine.Config) {
			c.Memory = mem
			c.CarryBytes = false
			if mutate != nil {
				mutate(c)
			}
		})
		k = p.K
		srv := apps.NewEchoServer(p.MachB.Threads(), port, 128)
		k.Register(srv)
		k.Run(2_000)
		client = apps.NewEchoClient(k, p.MachA.Threads(), 0, port, 128, perThread)
		k.Register(client)
	default:
		panic("exp: unknown echo stack " + stackKind)
	}

	// Ramp: allow generous time for tens of thousands of handshakes; the
	// readiness check is O(flows), so probe it coarsely.
	budget := int64(5_000_000) + int64(totalFlows)*400
	RunUntilCoarse(k, client.Ready, 50_000, budget)
	want := perThread * cores
	establishedFrac = float64(client.Established()) / float64(want)

	k.Run(DefaultWarmup)
	client.Requests.Snapshot(k.Now())
	k.Run(DefaultMeasure * 2) // echo needs a longer window at low rates
	return Mrps(client.Requests.RatePerSecond(k.Now())), establishedFrac
}

// Fig13 reproduces Figure 13: echo request rate vs concurrent flows for
// Linux, F4T with DDR, and F4T with HBM. The F4T-DDR curve degrades past
// 1,024 flows (the FPC-resident capacity) as every request forces a
// DRAM TCB swap; HBM's bandwidth hides the swaps (§5.3).
func Fig13(quick bool) *Table {
	t := &Table{
		Title:  "Figure 13: 128 B echo request rate vs number of flows (Mrps)",
		Header: []string{"flows", "linux", "f4t-ddr", "f4t-hbm"},
	}
	flowSteps := []int{64, 256, 1024, 4096, 16384, 65536}
	if quick {
		flowSteps = []int{256, 4096, 16384}
	}
	for _, flows := range flowSteps {
		row := []string{fmt.Sprintf("%d", flows)}
		for _, stackKind := range []string{"linux", "f4t-ddr", "f4t-hbm"} {
			mrps, frac := EchoPoint(stackKind, flows)
			cell := f2(mrps)
			if frac < 0.999 {
				cell += fmt.Sprintf(" (%.0f%% est)", frac*100)
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: F4T is 20× Linux at 1K flows; at 64K flows 12× (DDR) and 44× (HBM)",
		"paper: the DDR curve drops past 1,024 flows (FPC capacity) — DRAM-bandwidth throttled")
	return t
}
