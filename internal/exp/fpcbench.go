package exp

import (
	"f4t/internal/cc"
	"f4t/internal/engine/fpc"
	"f4t/internal/flow"
	"f4t/internal/seqnum"
	"f4t/internal/sim"
	"f4t/internal/tcpproc"
)

// FPCDesign selects a processing-architecture design point for the
// microarchitecture experiments (Figs 2 and 15).
type FPCDesign struct {
	Name string
	Mode fpc.Mode
	// Stall-mode cycles per event, as a rational in 250 MHz cycles (so
	// foreign clock domains model exactly).
	StallNum, StallDen int64
	// Accumulate-mode FPU pipeline latency.
	Latency int
	Alg     string
}

// WRMWDesign is the stalling design of §3.1: a 100 Gbps-capable stack
// [44] at 322 MHz using 17 cycles per event.
func WRMWDesign() FPCDesign {
	return FPCDesign{Name: "w-RMW", Mode: fpc.ModeStall, StallNum: 17 * 250, StallDen: 322, Alg: "newreno"}
}

// WoRMWDesign is the theoretical stall-free design of §3.1: TONIC-style
// single-cycle RMW at 100 MHz, but allowed arbitrary request lengths.
func WoRMWDesign() FPCDesign {
	return FPCDesign{Name: "w/o-RMW", Mode: fpc.ModeStall, StallNum: 250, StallDen: 100, Alg: "newreno"}
}

// F4TFPCDesign is one F4T FPC with the given FPU pipeline latency.
func F4TFPCDesign(latency int, alg string) FPCDesign {
	return FPCDesign{Name: "F4T", Mode: fpc.ModeAccumulate, Latency: latency, Alg: alg}
}

// DriveFPC feeds an isolated FPC synthetic send-request events over
// nFlows established flows and returns the steady-state event handling
// rate in events/second. reqBytes sets each event's REQ advance (the
// request size for the goodput conversion of Fig 2).
func DriveFPC(d FPCDesign, nFlows, reqBytes int, measureCycles int64) float64 {
	k := sim.New()
	proto := tcpproc.DefaultConfig()
	alg := cc.MustNew(d.Alg)
	unit := fpc.New(k, fpc.Config{
		Slots:      128,
		FPULatency: d.Latency,
		Mode:       d.Mode,
		StallNum:   d.StallNum,
		StallDen:   d.StallDen,
		Alg:        alg,
		Proto:      &proto,
	}, fpc.Hooks{
		OnActions: func(*flow.TCB, *tcpproc.Actions) {}, // discard segments
	})

	// Install established flows with effectively unbounded windows so
	// transmission never gates event handling.
	reqs := make([]seqnum.Value, nFlows)
	for i := 0; i < nFlows; i++ {
		t := &flow.TCB{
			FlowID: flow.ID(i),
			State:  flow.StateEstablished,
			ISS:    1000, SndUna: 1001, SndNxt: 1001, Req: 1001,
			RcvBuf: proto.RcvBuf,
			SndWnd: 1 << 30,
		}
		t.Cwnd = 1 << 30
		t.Ssthresh = 1 << 30
		t.AckedToHost = 1001
		t.IRS = 5000
		t.RcvNxt = 5001
		t.AppRead = 5001
		t.DeliveredTo = 5001
		t.LastAckSent = 5001
		if !unit.InstallNew(t) {
			panic("fpcbench: install failed")
		}
		reqs[i] = t.Req
	}

	// Feeder: keep the input queue full with round-robin user requests.
	next := 0
	k.Register(sim.TickerFunc(func(int64) {
		for {
			f := next % nFlows
			reqs[f] = reqs[f].Add(seqnum.Size(reqBytes))
			ev := flow.Event{Kind: flow.EvUser, Flow: flow.ID(f), HasReq: true, Req: reqs[f], Coalescable: true}
			if !unit.EnqueueEvent(ev) {
				// Undo the pointer advance the queue rejected.
				reqs[f] = reqs[f].Sub(seqnum.Size(reqBytes))
				return
			}
			next++
		}
	}))
	k.Register(sim.TickerFunc(unit.Tick))

	// Warm up, then measure.
	k.Run(10_000)
	unit.EventsHandled.Snapshot(k.Now())
	k.Run(measureCycles)
	return unit.EventsHandled.RatePerSecond(k.Now())
}

// Fig2 reproduces Figure 2: bulk-transfer goodput of the stalling design
// (w-RMW) against the stall-free design (w/o-RMW) across request sizes,
// with no link bottleneck.
func Fig2(quick bool) *Table {
	t := &Table{
		Title:  "Figure 2: bulk data transfer performance (no link bottleneck, Gbps)",
		Header: []string{"req B", "w-RMW", "w/o-RMW", "gap"},
	}
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	measure := int64(300_000)
	if quick {
		sizes = []int{128, 1024}
		measure = 100_000
	}
	for _, size := range sizes {
		wr := DriveFPC(WRMWDesign(), 1, size, measure)
		wo := DriveFPC(WoRMWDesign(), 1, size, measure)
		t.AddRow(i64(int64(size)),
			f1(wr*float64(size)*8/1e9),
			f1(wo*float64(size)*8/1e9),
			f1(wo/wr))
	}
	t.Notes = append(t.Notes,
		"w-RMW: [44]-style design, 17 cycles/event at 322 MHz (~18.9 M events/s)",
		"w/o-RMW: TONIC-style single-cycle RMW at 100 MHz (~100 M events/s), arbitrary lengths",
		"paper: the large gap between the two curves is the cost of RMW stalls")
	return t
}

// Fig15 reproduces Figure 15: event processing rate of the F4T FPC vs
// the stalling baseline as the FPU processing latency grows. F4T stays
// flat at 125 M events/s (one event per two cycles at 250 MHz); the
// baseline falls as 1/latency.
func Fig15(quick bool) *Table {
	t := &Table{
		Title:  "Figure 15: event processing rate vs FPU processing latency (M events/s)",
		Header: []string{"latency (cycles)", "Baseline", "F4T"},
	}
	lats := []int{2, 5, 10, 14, 20, 41, 68, 100}
	measure := int64(200_000)
	if quick {
		lats = []int{2, 41, 100}
		measure = 80_000
	}
	for _, l := range lats {
		base := DriveFPC(FPCDesign{Name: "Baseline", Mode: fpc.ModeStall, StallNum: int64(l), StallDen: 1, Alg: "newreno"}, 64, 128, measure)
		f4t := DriveFPC(F4TFPCDesign(l, "newreno"), 64, 128, measure)
		t.AddRow(i64(int64(l)), f1(base/1e6), f1(f4t/1e6))
	}
	t.Notes = append(t.Notes,
		"paper: Baseline throughput decreases with latency; F4T holds its rate regardless")
	return t
}

// AlgorithmTable reproduces the §5.4 versatility result: the three
// congestion-control FPU programs have very different pipeline depths
// (NewReno 14, CUBIC 41, Vegas 68 cycles) yet identical peak event
// rates on F4T.
func AlgorithmTable(quick bool) *Table {
	t := &Table{
		Title:  "§5.4: FPU programs — pipeline latency vs achieved event rate",
		Header: []string{"algorithm", "FPU latency (cycles)", "M events/s"},
	}
	measure := int64(200_000)
	if quick {
		measure = 80_000
	}
	// The paper's three programs lead in its own order; every other
	// registered program follows, so a new algorithm lands in this table
	// the moment it registers.
	paper := map[string]bool{"newreno": true, "cubic": true, "vegas": true}
	algs := []string{"newreno", "cubic", "vegas"}
	for _, alg := range cc.Names() {
		if !paper[alg] {
			algs = append(algs, alg)
		}
	}
	for _, alg := range algs {
		a := cc.MustNew(alg)
		name := alg
		if !paper[alg] {
			name += " (added)"
		}
		rate := DriveFPC(F4TFPCDesign(a.PipelineLatency(), alg), 64, 128, measure)
		t.AddRow(name, i64(int64(a.PipelineLatency())), f1(rate/1e6))
	}
	t.Notes = append(t.Notes,
		"paper: Vegas takes 68 cycles (integer divisions) yet reaches the same maximum rate as NewReno (14) and CUBIC (41)",
		"the remaining rows are this reproduction's own FPU programs — the §4.5 programmability surface in action")
	return t
}
