package exp

import "testing"

func TestFig13Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end sweep")
	}
	tab := Fig13(true)
	t.Log("\n" + tab.String())
}

// TestEcho64K exercises the full 65,536-flow connectivity point (§5.3).
// It is minutes of wall time, so it only runs in the exhaustive pass.
func TestEcho64K(t *testing.T) {
	if testing.Short() {
		t.Skip("64K-flow run is minutes long")
	}
	mrps, frac := EchoPoint("f4t-hbm", 65536)
	t.Logf("f4t-hbm @64K flows: %.2f Mrps, %.0f%% established", mrps, frac*100)
	// Establishing all 65,536 connections takes seconds of simulated
	// time (minutes of wall time per simulated second at this scale), so
	// the bounded ramp reaches tens of thousands of live flows; the
	// architecture claim being checked is that the engine keeps its
	// request rate with far more flows than the 1,024 FPC slots.
	if frac < 0.25 {
		t.Errorf("only %.0f%% of 64K flows established", frac*100)
	}
	if mrps < 20 {
		t.Errorf("echo rate collapsed at scale: %.2f Mrps", mrps)
	}
}
