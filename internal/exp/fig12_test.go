package exp

import "testing"

func TestFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run")
	}
	tab := Fig12()
	t.Log("\n" + tab.String())
}
