package exp

import (
	"fmt"

	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/host"
	"f4t/internal/apps"
	"f4t/internal/sim"
)

// TransferResult is one data-transfer measurement.
type TransferResult struct {
	GoodputGbps float64 // payload delivered at the receiver (iPerf metric)
	Mrps        float64 // accepted send requests per second, millions
}

// TransferPoint runs one data-transfer configuration end to end: stack
// ∈ {"linux", "f4t"}, pattern bulk or round-robin (16 flows/core, §5.1),
// request size, sender cores. The receiver always runs 8 cores (the
// paper's server configuration).
func TransferPoint(stackKind string, roundRobin bool, reqSize, cores int, mutate func(*engine.Config)) TransferResult {
	return TransferPointOn(sim.New(), stackKind, roundRobin, reqSize, cores, mutate)
}

// TransferPointOn is TransferPoint on any fabric: sender on island A,
// receiver on island B. Sharded runs must reproduce the serial numbers
// bit for bit (shard_diff battery).
func TransferPointOn(f sim.Fabric, stackKind string, roundRobin bool, reqSize, cores int, mutate func(*engine.Config)) TransferResult {
	costs := cpu.DefaultCosts()
	const rxCores = 8
	const port = 5001

	var sendThreads, recvThreads []host.Thread
	switch stackKind {
	case "linux":
		p := NewLinuxPairOn(f, cores, rxCores, costs)
		sendThreads = p.MachA.Threads()
		recvThreads = p.MachB.Threads()
	case "f4t":
		p := NewF4TPairOn(f, cores, rxCores, costs, mutate)
		sendThreads = p.MachA.Threads()
		recvThreads = p.MachB.Threads()
	default:
		panic("exp: unknown stack " + stackKind)
	}

	sink := apps.NewSink(recvThreads, port)
	f.RegisterOn(IslandB, sink)
	// Let the listeners register before dialing.
	f.Run(2_000)

	var requests *sim.Counter
	var ready func() bool
	if roundRobin {
		rr := apps.NewRoundRobinSender(sendThreads, 0, port, reqSize, 16)
		f.RegisterOn(IslandA, rr)
		requests = &rr.Requests
		ready = rr.Ready
	} else {
		b := apps.NewBulkSender(sendThreads, 0, port, reqSize)
		f.RegisterOn(IslandA, b)
		requests = &b.Requests
		ready = b.Ready
	}

	if !RunUntilCoarse(f, ready, 10_000, 20_000_000) {
		// Some flows failed to establish in time; measure anyway — the
		// result will reflect the degradation, as a real benchmark would.
	}
	f.Run(DefaultWarmup)
	sink.Delivered.Snapshot(f.Now())
	requests.Snapshot(f.Now())
	f.Run(DefaultMeasure)

	return TransferResult{
		GoodputGbps: Gbps(sink.Delivered.RatePerSecond(f.Now())),
		Mrps:        Mrps(requests.RatePerSecond(f.Now())),
	}
}

// Fig8 reproduces Figure 8: goodput of bulk (a) and round-robin (b)
// transfers with 64 B and 128 B requests, Linux vs F4T, 1–8 sender
// cores.
func Fig8(quick bool) *Table {
	t := &Table{
		Title:  "Figure 8: throughput with different request patterns (Gbps goodput)",
		Header: []string{"pattern", "stack", "req B", "1 core", "2 cores", "4 cores", "8 cores"},
	}
	coreSteps := []int{1, 2, 4, 8}
	sizes := []int{64, 128}
	if quick {
		coreSteps = []int{1, 2}
		sizes = []int{128}
	}
	for _, rr := range []bool{false, true} {
		pattern := "bulk"
		if rr {
			pattern = "round-robin"
		}
		for _, stackKind := range []string{"linux", "f4t"} {
			for _, size := range sizes {
				row := []string{pattern, stackKind, fmt.Sprintf("%d", size)}
				for _, cores := range coreSteps {
					res := TransferPoint(stackKind, rr, size, cores, nil)
					row = append(row, f1(res.GoodputGbps))
				}
				for len(row) < len(t.Header) {
					row = append(row, "-")
				}
				t.AddRow(row...)
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: Linux bulk 128B/8c = 8.3 Gbps; F4T bulk 128B = 45 G @1c, 87 G @2c, 92.6 G @8c",
		"paper: Linux RR <1 Gbps; F4T RR 35 G @1c, 63 G @2c, 90 G @8c")
	return t
}
