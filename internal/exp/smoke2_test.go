package exp

import "testing"

func TestSmokeRRBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	for _, c := range []struct {
		rr    bool
		size  int
		cores int
	}{
		{true, 128, 4}, {true, 128, 8}, {true, 64, 8}, {false, 128, 2}, {false, 128, 8}, {false, 16, 16},
	} {
		r := TransferPoint("f4t", c.rr, c.size, c.cores, nil)
		t.Logf("f4t rr=%-5v size=%-4d cores=%-2d -> %6.1f Gbps %6.1f Mrps", c.rr, c.size, c.cores, r.GoodputGbps, r.Mrps)
	}
}
