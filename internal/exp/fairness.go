package exp

import (
	"fmt"
	"strings"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// This file holds the heterogeneous-CC fairness experiment: senders
// running *different* congestion-control programs (BBR vs CUBIC vs
// NewReno) share one dumbbell trunk, and the per-flow goodput split
// under each queue discipline is the measurement. The paper validates
// each FPU program in isolation (Fig 14); this rig measures how they
// coexist — the scenario a programmable-CC NIC actually ships into.

// FairnessTrunkGbps is the dumbbell bottleneck rate: well below the
// 100 Gbps access links, so contention happens at the shared trunk.
const FairnessTrunkGbps = 40

// DefaultFairnessAlgs is the standard contender set.
func DefaultFairnessAlgs() []string { return []string{"bbr", "cubic", "newreno"} }

// FairnessResult is one fairness point's measurement.
type FairnessResult struct {
	Algs       []string
	SenderGbps []float64 // goodput per sender, aligned with Algs
	Jain       float64   // Jain fairness index over SenderGbps
	Trunk      PortStats // the shared trunk port toward the receiver
}

// FairnessPointOn runs len(algs) bulk senders — each under its own
// congestion-control program — through the dumbbell trunk into one
// receiver. seed perturbs every engine's random streams (the
// differential battery sweeps it). Fully grid-timed, so results are
// bit-identical across serial, noskip and sharded fabrics.
func FairnessPointOn(f sim.Fabric, algs []string, aqm netsim.AQMConfig, seed uint64, reg *telemetry.Registry, warmup, measure int64) FairnessResult {
	d := NewF4TDumbbellOn(f, algs, FairnessTrunkGbps, 1_000, cpu.DefaultCosts(), aqm, func(c *engine.Config) {
		c.Seed += seed * 7919
	})
	if reg != nil {
		d.Topo.Instrument(reg, "topo")
	}

	sink := apps.NewSink(d.Machs[0].Threads(), 5001)
	f.RegisterOn(0, sink)
	f.Run(2_000)
	bulks := make([]*apps.BulkSender, len(algs))
	for i := range algs {
		bulks[i] = apps.NewBulkSender(d.Machs[i+1].Threads(), 0, 5001, 1460)
		f.RegisterOn(i+1, bulks[i])
	}
	allReady := func() bool {
		for _, b := range bulks {
			if !b.Ready() {
				return false
			}
		}
		return true
	}
	RunUntilCoarse(f, allReady, 1_000, 5_000_000)
	f.Run(warmup)
	for _, b := range bulks {
		b.Bytes.Snapshot(f.Now())
	}
	f.Run(measure)
	res := FairnessResult{Algs: algs, Trunk: portStats(d.Trunk)}
	var sum, sumSq float64
	for _, b := range bulks {
		g := Gbps(b.Bytes.RatePerSecond(f.Now()))
		res.SenderGbps = append(res.SenderGbps, g)
		sum += g
		sumSq += g * g
	}
	if sumSq > 0 {
		res.Jain = sum * sum / (float64(len(bulks)) * sumSq)
	}
	return res
}

// ScenarioFairness sweeps the queue disciplines under the heterogeneous
// contender set: per-sender goodput, the Jain index and the trunk's
// congestion evidence for each discipline.
func ScenarioFairness(quick bool) *Table {
	algs := DefaultFairnessAlgs()
	t := &Table{
		Title: fmt.Sprintf("Scenario: heterogeneous-CC fairness (%s sharing a %d Gbps dumbbell trunk)",
			strings.Join(algs, " vs "), FairnessTrunkGbps),
		Header: []string{"aqm", "sender", "alg", "goodput Gbps", "share %"},
	}
	warmup, measure := scenarioWindows(quick)
	for i, aqm := range scenarioAQMs() {
		if scenarioSkip(i) {
			continue
		}
		r := FairnessPointOn(sim.New(), algs, aqm, 0, nil, warmup, measure)
		var total float64
		for _, g := range r.SenderGbps {
			total += g
		}
		for j, g := range r.SenderGbps {
			share := 0.0
			if total > 0 {
				share = 100 * g / total
			}
			t.AddRow(scenarioAQMName(i), i64(int64(j+1)), algs[j], f2(g), f1(share))
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: Jain index %.3f, trunk peak queue %.1f KB, drops %d, marks %d",
			scenarioAQMName(i), r.Jain, float64(r.Trunk.PeakQBytes)/1024,
			r.Trunk.TailDrops+r.Trunk.AQMDrops, r.Trunk.Marks))
	}
	t.Notes = append(t.Notes,
		"beyond paper: Fig 14 validates each FPU program alone; this rig measures how they share a bottleneck",
		"bbr holds the trunk queue it models; loss-based flows push until the discipline signals — the split shows who yields")
	return t
}
