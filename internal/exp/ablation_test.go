package exp

import "testing"

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run")
	}
	for _, fn := range []func(bool) *Table{AblationFPCScaling, AblationCoalescing, AblationTCBCache} {
		tab := fn(true)
		t.Log("\n" + tab.String())
		if len(tab.Rows) == 0 {
			t.Error("ablation produced no rows")
		}
	}
}
