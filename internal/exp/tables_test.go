package exp

import "testing"

func TestFig7bMatchesPaper(t *testing.T) {
	tab := Fig7b()
	if len(tab.Rows) < 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// First two rows are the composed totals; the resource package's own
	// tests verify the percentages — here just shape-check the table.
	if tab.Rows[0][0] != "FtEngine (1 FPC)" || tab.Rows[1][0] != "FtEngine (8 FPCs)" {
		t.Fatalf("unexpected leading rows: %v %v", tab.Rows[0], tab.Rows[1])
	}
}

func TestSummaryTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 3 || len(t1.Header) != 6 {
		t.Fatalf("table 1 shape: %dx%d", len(t1.Rows), len(t1.Header))
	}
	t2 := Table2()
	if len(t2.Rows) != 4 {
		t.Fatalf("table 2 rows: %d", len(t2.Rows))
	}
	if s := t1.String(); len(s) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "x", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "n")
	out := tab.String()
	for _, want := range []string{"== x ==", "a", "bb", "note: n"} {
		if !contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
