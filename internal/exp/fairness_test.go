package exp

import (
	"fmt"
	"math"
	"testing"

	"f4t/internal/netsim"
	"f4t/internal/sim"
)

// fairnessSig folds a fairness point into an exact-bits digest: per-flow
// goodputs, the Jain index and the trunk counters. Any scheduling or RNG
// divergence between fabrics shows up as a digest mismatch.
func fairnessSig(f sim.Fabric, algs []string, aqm netsim.AQMConfig, seed uint64) string {
	r := FairnessPointOn(f, algs, aqm, seed, nil, topoDiffWarmup, topoDiffMeasure)
	sig := fmt.Sprintf("jain=%x trunk=%+v", math.Float64bits(r.Jain), r.Trunk)
	for _, g := range r.SenderGbps {
		sig += fmt.Sprintf(" %x", math.Float64bits(g))
	}
	return sig
}

// TestFairnessShardDifferential is the shard battery for the
// heterogeneous-CC dumbbell: BBR vs CUBIC through the shared trunk must
// be bit-identical on serial skip/noskip and 2/4/8-shard fabrics across
// seeds, matching the other rig batteries.
func TestFairnessShardDifferential(t *testing.T) {
	algs := []string{"bbr", "cubic"}
	seeds := []uint64{0, 1}
	shardCounts := []int{2, 4, 8}
	if testing.Short() {
		seeds = seeds[:1]
		shardCounts = []int{2}
	}
	for _, seed := range seeds {
		aqm := netsim.CoDel(0, true)
		ref := fairnessSig(sim.New(), algs, aqm, seed)

		noskip := sim.New()
		noskip.SetSkipping(false)
		if got := fairnessSig(noskip, algs, aqm, seed); got != ref {
			t.Errorf("seed %d: noskip diverged\n got %s\nwant %s", seed, got, ref)
		}
		for _, n := range shardCounts {
			if got := fairnessSig(sim.NewSharded(n), algs, aqm, seed); got != ref {
				t.Errorf("seed %d: %d shards diverged\n got %s\nwant %s", seed, n, got, ref)
			}
		}
	}
}

// TestFairnessRig checks the dumbbell's plumbing: all traffic crosses
// the shared trunk, the per-sender split is measured, and the Jain index
// is well-formed. (Which algorithm wins is a property of the contenders
// and the discipline, not an invariant — the table reports it, the test
// doesn't pin it.)
func TestFairnessRig(t *testing.T) {
	r := FairnessPointOn(sim.New(), DefaultFairnessAlgs(), netsim.DropTail(0), 0, nil, topoDiffWarmup, topoDiffMeasure)
	if len(r.SenderGbps) != 3 {
		t.Fatalf("got %d sender measurements, want 3", len(r.SenderGbps))
	}
	var total float64
	for _, g := range r.SenderGbps {
		total += g
	}
	if total <= 0 {
		t.Fatalf("no goodput crossed the dumbbell: %+v", r)
	}
	// The trunk is the bottleneck: aggregate goodput can't exceed it.
	if total > FairnessTrunkGbps {
		t.Fatalf("aggregate goodput %.1f Gbps exceeds the %d Gbps trunk", total, FairnessTrunkGbps)
	}
	if r.Jain <= 0 || r.Jain > 1.0000001 {
		t.Fatalf("Jain index %f out of (0,1]", r.Jain)
	}
	// Contention evidence must land at the trunk port, not the access
	// links: queue buildup, and with droptail, actual drops.
	if r.Trunk.PeakQBytes == 0 {
		t.Fatal("no queue ever built at the shared trunk — not a bottleneck")
	}
}

// TestFairnessECNPath checks the dctcp plumbing through the dumbbell:
// with a marking discipline and a dctcp sender in the mix, CE marks must
// appear at the trunk (the receiver echoes because the rig enables ECN
// end-to-end when any contender is dctcp).
func TestFairnessECNPath(t *testing.T) {
	r := FairnessPointOn(sim.New(), []string{"dctcp", "cubic"},
		netsim.ECNThreshold(netsim.DefaultCoDelTargetNS, 0), 0, nil, topoDiffWarmup, topoDiffMeasure)
	if r.Trunk.Marks == 0 {
		t.Fatalf("no CE marks at the trunk with a dctcp contender: %+v", r.Trunk)
	}
}
