package exp

import (
	"fmt"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/netsim"
	"f4t/internal/refsim"
	"f4t/internal/sim"
)

// CwndTrace is a congestion-window time series.
type CwndTrace struct {
	AtNS []int64
	Cwnd []uint32 // bytes
}

// LossEpochs counts multiplicative-decrease events in the trace (window
// drops of more than 20 %) — the sawtooth count of Fig 14.
func (tr *CwndTrace) LossEpochs() int {
	n := 0
	for i := 1; i < len(tr.Cwnd); i++ {
		if float64(tr.Cwnd[i]) < 0.8*float64(tr.Cwnd[i-1]) {
			n++
		}
	}
	return n
}

// MeanCwnd returns the average window in bytes.
func (tr *CwndTrace) MeanCwnd() float64 {
	if len(tr.Cwnd) == 0 {
		return 0
	}
	var s float64
	for _, v := range tr.Cwnd {
		s += float64(v)
	}
	return s / float64(len(tr.Cwnd))
}

// F4TCwndTrace runs a single-flow bulk transfer between two FtEngines
// with every Nth data packet dropped, sampling the sender's congestion
// window — the F4T side of Fig 14. The run uses cycle-level simulation
// of the engine, standing in for the paper's cycle-accurate RTL
// simulation.
func F4TCwndTrace(alg string, dropEvery int64, durationCycles, sampleCycles int64) CwndTrace {
	costs := cpu.DefaultCosts()
	p := NewF4TPair(1, 1, costs, func(c *engine.Config) {
		c.Alg = alg
		c.CarryBytes = false
		if alg == "dctcp" {
			c.Proto.ECN = true
		}
	})
	k := p.K
	p.Link.AtoB.SetFaults(netsim.Faults{DropEvery: dropEvery})
	if alg == "dctcp" {
		// DCTCP modulates on congestion marks, not loss: give the trace
		// an ECN-marking bottleneck so its signal actually exercises the
		// algorithm rather than just its loss fallback.
		p.Link.AtoB.SetAQM(netsim.ECNThreshold(1_000, 0))
	}

	sink := apps.NewSink(p.MachB.Threads(), 5001)
	k.Register(sink)
	k.Run(2_000)
	b := apps.NewBulkSender(p.MachA.Threads(), 0, 5001, 1460)
	k.Register(b)
	k.RunUntil(b.Ready, 5_000_000)

	var tr CwndTrace
	k.Register(sim.TickerFunc(func(cycle int64) {
		if cycle%sampleCycles != 0 {
			return
		}
		// Flow 0 is the only flow on engine A.
		if t := p.EngA.TCB(0); t != nil {
			tr.AtNS = append(tr.AtNS, k.NowNS())
			tr.Cwnd = append(tr.Cwnd, t.Cwnd)
		}
	}))
	k.Run(durationCycles)
	return tr
}

// RefCwndTrace runs the independent reference simulator with matching
// parameters — the NS3 side of Fig 14. It returns refsim's error when the
// witness does not model the algorithm (refsim fails fast rather than
// silently substituting newreno).
func RefCwndTrace(alg string, dropEvery int64, durationNS, sampleNS int64) (CwndTrace, error) {
	samples, err := refsim.Run(refsim.Params{
		Alg:        alg,
		MSS:        1460,
		RTTns:      3_000,
		RateBps:    100e9,
		DropEvery:  dropEvery,
		DurationNS: durationNS,
		SampleNS:   sampleNS,
	})
	var tr CwndTrace
	if err != nil {
		return tr, err
	}
	for _, s := range samples {
		tr.AtNS = append(tr.AtNS, s.AtNS)
		tr.Cwnd = append(tr.Cwnd, uint32(s.Cwnd))
	}
	return tr, nil
}

// Fig14 reproduces Figure 14: congestion-window behaviour of F4T vs the
// independent reference for NewReno and CUBIC under periodic drops. The
// comparison is qualitative, as in the paper: both implementations must
// show the same sawtooth character.
func Fig14(quick bool) *Table {
	t := &Table{
		Title:  "Figure 14: congestion window under periodic loss — F4T vs reference",
		Header: []string{"algorithm", "impl", "loss epochs", "mean cwnd KB", "samples"},
	}
	duration := int64(8_000_000) // 32 ms
	if quick {
		duration = 3_000_000
	}
	const dropEvery = 2000
	for _, alg := range []string{"newreno", "cubic", "bbr"} {
		f4t := F4TCwndTrace(alg, dropEvery, duration, 25_000)
		ref, err := RefCwndTrace(alg, dropEvery, duration*4, 100_000)
		if err != nil {
			// The loop only names algorithms the witness models; reaching
			// here means the two lists diverged — surface it loudly.
			panic(err)
		}
		t.AddRow(alg, "F4T", fmt.Sprintf("%d", f4t.LossEpochs()), f1(f4t.MeanCwnd()/1024), fmt.Sprintf("%d", len(f4t.Cwnd)))
		t.AddRow(alg, "reference", fmt.Sprintf("%d", ref.LossEpochs()), f1(ref.MeanCwnd()/1024), fmt.Sprintf("%d", len(ref.Cwnd)))
	}
	t.Notes = append(t.Notes,
		"paper: F4T faithfully matches NS3's congestion-window behaviour for NEW RENO and CUBIC",
		"bbr row (beyond paper): both sides show the ProbeRTT/gain-cycle dips instead of a loss sawtooth",
		"traces available as CSV via cmd/f4ttrace")
	return t
}
