package exp

import (
	"testing"
	"time"
)

func TestSmokeTransferPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run")
	}
	if testing.Short() {
		t.Skip("smoke")
	}
	for _, c := range []struct {
		stack string
		rr    bool
		size  int
		cores int
	}{
		{"f4t", false, 128, 1},
		{"f4t", false, 128, 2},
		{"f4t", false, 128, 8},
		{"linux", false, 128, 1},
		{"linux", false, 128, 8},
		{"f4t", true, 128, 1},
		{"linux", true, 128, 8},
	} {
		t0 := time.Now()
		r := TransferPoint(c.stack, c.rr, c.size, c.cores, nil)
		t.Logf("%-6s rr=%-5v size=%d cores=%d  -> %6.1f Gbps  %6.1f Mrps   (%.1fs wall)",
			c.stack, c.rr, c.size, c.cores, r.GoodputGbps, r.Mrps, time.Since(t0).Seconds())
	}
}
