package exp

import (
	"fmt"
	"strings"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// This file holds the datacenter scenario rigs built on the topology
// subsystem: incast (N senders through one bottleneck port), RPC
// fan-out/fan-in, mixed latency-sensitive + bulk traffic, and
// RTT-diverse WAN paths. Each point runs on any sim.Fabric and reads
// its congestion evidence from the bottleneck RouterPort's counters.

// ScenarioNames lists the topology scenarios cmd/f4tbench exposes.
func ScenarioNames() []string { return []string{"incast", "fanio", "mixed", "wan"} }

// ScenarioAQMNames lists the disciplines the scenario sweeps cover, in
// sweep order ("ecn-thresh" is the F4T-style fixed-threshold marker the
// point-to-point links also implement).
func ScenarioAQMNames() []string {
	return []string{"droptail", "ecn-thresh", "red", "codel"}
}

// scenarioAQMOnly, when non-empty, restricts sweeps to one discipline.
var scenarioAQMOnly string

// SetScenarioAQM restricts every scenario sweep to one discipline name
// from ScenarioAQMNames, or restores the full sweep with "".
func SetScenarioAQM(name string) error {
	if name != "" {
		ok := false
		for _, n := range ScenarioAQMNames() {
			ok = ok || n == name
		}
		if !ok {
			return fmt.Errorf("unknown AQM %q (want %s)", name, strings.Join(ScenarioAQMNames(), ", "))
		}
	}
	scenarioAQMOnly = name
	return nil
}

// scenarioAQMs is the discipline sweep every scenario table runs.
func scenarioAQMs() []netsim.AQMConfig {
	return []netsim.AQMConfig{
		netsim.DropTail(0),
		netsim.ECNThreshold(netsim.DefaultCoDelTargetNS, 0),
		netsim.RED(0, true),
		netsim.CoDel(0, true),
	}
}

func scenarioAQMName(i int) string { return ScenarioAQMNames()[i] }

// scenarioSkip reports whether the sweep filter excludes discipline i.
func scenarioSkip(i int) bool {
	return scenarioAQMOnly != "" && scenarioAQMName(i) != scenarioAQMOnly
}

// PortStats is the congestion evidence one bottleneck port produced.
type PortStats struct {
	PeakQBytes  int64
	TailDrops   int64
	AQMDrops    int64
	Marks       int64
	FirstCongNS int64 // first drop or mark, -1 when none happened
}

func portStats(p *netsim.RouterPort) PortStats {
	s := PortStats{
		PeakQBytes: p.PeakQBytes, TailDrops: p.TailDrops,
		AQMDrops: p.AQMDrops, Marks: p.MarkedPkts, FirstCongNS: -1,
	}
	if p.FirstCongCycle >= 0 {
		s.FirstCongNS = p.FirstCongCycle * sim.CycleNS
	}
	return s
}

// IncastResult is one incast point's measurement.
type IncastResult struct {
	GoodputGbps float64
	Port        PortStats // the receiver's downlink — the bottleneck
}

// IncastPointOn runs N bulk senders into one receiver through a single
// switch port governed by aqm. reg (optional) receives the topology's
// per-port telemetry; seed perturbs every engine's random streams (the
// differential battery sweeps it). The run is fully grid-timed, so
// results are bit-identical across serial, noskip and sharded fabrics.
func IncastPointOn(f sim.Fabric, senders int, aqm netsim.AQMConfig, alg string, seed uint64, reg *telemetry.Registry, warmup, measure int64) IncastResult {
	cores := make([]int, senders+1)
	for i := range cores {
		cores[i] = 1
	}
	s := NewF4TStarOn(f, cores, cpu.DefaultCosts(), aqm, func(c *engine.Config) {
		c.Alg = alg
		if alg == "dctcp" {
			c.Proto.ECN = true
		}
		c.Seed += seed * 7919
	})
	if reg != nil {
		s.Topo.Instrument(reg, "topo")
	}

	sink := apps.NewSink(s.Machs[0].Threads(), 5001)
	f.RegisterOn(0, sink)
	f.Run(2_000)
	bulks := make([]*apps.BulkSender, senders)
	for i := 1; i <= senders; i++ {
		bulks[i-1] = apps.NewBulkSender(s.Machs[i].Threads(), 0, 5001, 1460)
		f.RegisterOn(i, bulks[i-1])
	}
	allReady := func() bool {
		for _, b := range bulks {
			if !b.Ready() {
				return false
			}
		}
		return true
	}
	RunUntilCoarse(f, allReady, 1_000, 5_000_000)
	f.Run(warmup)
	sink.Delivered.Snapshot(f.Now())
	f.Run(measure)
	return IncastResult{
		GoodputGbps: Gbps(sink.Delivered.RatePerSecond(f.Now())),
		Port:        portStats(s.Topo.NodePorts[0]),
	}
}

// FanioResult is one fan-out/fan-in point's measurement.
type FanioResult struct {
	RoundsPerSec float64
	P50NS        int64
	P99NS        int64
	Port         PortStats // the client's downlink — where fan-in lands
}

// FanioPointOn runs one client fanning requests over N RPC servers and
// collecting every response before the next round — the
// partition/aggregate microburst. respSize sets the fan-in burst
// (servers * respSize bytes land at the client's downlink together).
func FanioPointOn(f sim.Fabric, servers int, aqm netsim.AQMConfig, alg string, respSize int, reg *telemetry.Registry, warmup, measure int64) FanioResult {
	cores := make([]int, servers+1)
	for i := range cores {
		cores[i] = 1
	}
	s := NewF4TStarOn(f, cores, cpu.DefaultCosts(), aqm, func(c *engine.Config) {
		c.Alg = alg
		if alg == "dctcp" {
			c.Proto.ECN = true
		}
		c.CarryBytes = false
	})
	if reg != nil {
		s.Topo.Instrument(reg, "topo")
	}

	for i := 1; i <= servers; i++ {
		srv := apps.NewRPCServer(s.Machs[i].Threads(), 7001, 128, respSize)
		f.RegisterOn(i, srv)
	}
	f.Run(2_000)
	remotes := make([]int, servers)
	for i := range remotes {
		remotes[i] = i + 1
	}
	cli := apps.NewFanClient(s.Kernels[0], s.Machs[0].Threads(), remotes, 7001, 128, respSize)
	f.RegisterOn(0, cli)
	RunUntilCoarse(f, cli.Ready, 1_000, 5_000_000)
	f.Run(warmup)
	cli.Rounds.Snapshot(f.Now())
	cli.Latency.Reset()
	f.Run(measure)
	return FanioResult{
		RoundsPerSec: cli.Rounds.RatePerSecond(f.Now()),
		P50NS:        cli.Latency.Median(),
		P99NS:        cli.Latency.P99(),
		Port:         portStats(s.Topo.NodePorts[0]),
	}
}

// MixedResult is one mixed-traffic point's measurement: bulk goodput
// and the latency-sensitive flows' RTT quantiles through the shared
// bottleneck port.
type MixedResult struct {
	BulkGbps float64
	EchoP50  int64
	EchoP99  int64
	Port     PortStats
}

// MixedPointOn runs bulk background traffic and a small-message echo
// workload into the same server node, sharing its downlink port: node 0
// serves both (one thread each), node 1 sends bulk, node 2 runs the
// echo client. SO_REUSEPORT steering keeps each app on its own thread.
func MixedPointOn(f sim.Fabric, aqm netsim.AQMConfig, alg string, reg *telemetry.Registry, warmup, measure int64) MixedResult {
	s := NewF4TStarOn(f, []int{2, 1, 1}, cpu.DefaultCosts(), aqm, func(c *engine.Config) {
		c.Alg = alg
		if alg == "dctcp" {
			c.Proto.ECN = true
		}
	})
	if reg != nil {
		s.Topo.Instrument(reg, "topo")
	}

	serverThreads := s.Machs[0].Threads()
	sink := apps.NewSink(serverThreads[:1], 5001)
	f.RegisterOn(0, sink)
	echoSrv := apps.NewEchoServer(serverThreads[1:], 6001, 128)
	f.RegisterOn(0, echoSrv)
	f.Run(2_000)
	bulk := apps.NewBulkSender(s.Machs[1].Threads(), 0, 5001, 1460)
	f.RegisterOn(1, bulk)
	echo := apps.NewEchoClient(s.Kernels[2], s.Machs[2].Threads(), 0, 6001, 128, 4)
	f.RegisterOn(2, echo)
	ready := func() bool { return bulk.Ready() && echo.Ready() }
	RunUntilCoarse(f, ready, 1_000, 5_000_000)
	f.Run(warmup)
	sink.Delivered.Snapshot(f.Now())
	echo.Latency.Reset()
	f.Run(measure)
	return MixedResult{
		BulkGbps: Gbps(sink.Delivered.RatePerSecond(f.Now())),
		EchoP50:  echo.Latency.Median(),
		EchoP99:  echo.Latency.P99(),
		Port:     portStats(s.Topo.NodePorts[0]),
	}
}

// WANResult is one WAN point's measurement: per-sender goodput over
// RTT-diverse paths plus the shared first-hop port's congestion stats.
type WANResult struct {
	SenderGbps []float64
	Jain       float64
	Port       PortStats // the receiver's downlink on router 0
}

// DefaultWANSenders is the RTT-diverse sender set: same rack, one hop
// out, and two far paths sharing the longest chain.
func DefaultWANSenders() []WANSpec {
	return []WANSpec{
		{RouterIdx: 0, PropNS: 600},
		{RouterIdx: 1, PropNS: 5_000},
		{RouterIdx: 2, PropNS: 25_000},
		{RouterIdx: 2, PropNS: 100_000},
	}
}

// WANPointOn runs bulk senders with diverse access RTTs over a
// three-router chain into one receiver, measuring each flow's share —
// the classic RTT-unfairness experiment.
func WANPointOn(f sim.Fabric, senders []WANSpec, aqm netsim.AQMConfig, alg string, reg *telemetry.Registry, warmup, measure int64) WANResult {
	w := NewF4TWANOn(f, 3, LinkGbps, 10_000, 600, senders, cpu.DefaultCosts(), aqm, func(c *engine.Config) {
		c.Alg = alg
		if alg == "dctcp" {
			c.Proto.ECN = true
		}
	})
	if reg != nil {
		w.Topo.Instrument(reg, "topo")
	}

	sink := apps.NewSink(w.Machs[0].Threads(), 5001)
	f.RegisterOn(0, sink)
	f.Run(2_000)
	bulks := make([]*apps.BulkSender, len(senders))
	for i := range senders {
		bulks[i] = apps.NewBulkSender(w.Machs[i+1].Threads(), 0, 5001, 1460)
		f.RegisterOn(i+1, bulks[i])
	}
	allReady := func() bool {
		for _, b := range bulks {
			if !b.Ready() {
				return false
			}
		}
		return true
	}
	RunUntilCoarse(f, allReady, 1_000, 10_000_000)
	f.Run(warmup)
	for _, b := range bulks {
		b.Bytes.Snapshot(f.Now())
	}
	f.Run(measure)
	res := WANResult{Port: portStats(w.Topo.NodePorts[0])}
	var sum, sumSq float64
	for _, b := range bulks {
		g := Gbps(b.Bytes.RatePerSecond(f.Now()))
		res.SenderGbps = append(res.SenderGbps, g)
		sum += g
		sumSq += g * g
	}
	if sumSq > 0 {
		res.Jain = sum * sum / (float64(len(bulks)) * sumSq)
	}
	return res
}

// --- f4tbench tables ---

func scenarioWindows(quick bool) (warmup, measure int64) {
	if quick {
		return 100_000, 300_000
	}
	return DefaultWarmup, DefaultMeasure
}

// ScenarioIncast sweeps the queue disciplines under N-to-1 incast.
func ScenarioIncast(quick bool) *Table {
	t := &Table{
		Title:  "Scenario: incast (N bulk senders -> 1 receiver through one switch port)",
		Header: []string{"aqm", "senders", "goodput Gbps", "peak queue KB", "tail drops", "aqm drops", "marks", "onset us"},
	}
	senders := 8
	if quick {
		senders = 4
	}
	warmup, measure := scenarioWindows(quick)
	for i, aqm := range scenarioAQMs() {
		if scenarioSkip(i) {
			continue
		}
		r := IncastPointOn(sim.New(), senders, aqm, "dctcp", 0, nil, warmup, measure)
		t.AddRow(scenarioAQMName(i), i64(int64(senders)), f2(r.GoodputGbps),
			f1(float64(r.Port.PeakQBytes)/1024), i64(r.Port.TailDrops),
			i64(r.Port.AQMDrops), i64(r.Port.Marks), onsetUS(r.Port))
	}
	t.Notes = append(t.Notes,
		"bottleneck = receiver downlink port; droptail shows deep standing queues, RED/CoDel signal earlier")
	return t
}

// ScenarioFanio sweeps the disciplines under RPC fan-out/fan-in.
func ScenarioFanio(quick bool) *Table {
	t := &Table{
		Title:  "Scenario: RPC fan-out/fan-in (1 client, N servers, synchronized responses)",
		Header: []string{"aqm", "servers", "rounds/s", "p50 us", "p99 us", "marks", "drops"},
	}
	servers := 8
	if quick {
		servers = 4
	}
	warmup, measure := scenarioWindows(quick)
	for i, aqm := range scenarioAQMs() {
		if scenarioSkip(i) {
			continue
		}
		r := FanioPointOn(sim.New(), servers, aqm, "dctcp", 16_384, nil, warmup, measure)
		t.AddRow(scenarioAQMName(i), i64(int64(servers)), f1(r.RoundsPerSec),
			f1(float64(r.P50NS)/1000), f1(float64(r.P99NS)/1000),
			i64(r.Port.Marks), i64(r.Port.TailDrops+r.Port.AQMDrops))
	}
	t.Notes = append(t.Notes,
		"the servers' synchronized responses collide at the client's downlink — the classic incast microburst")
	return t
}

// ScenarioMixed sweeps the disciplines under mixed latency-sensitive +
// bulk background traffic sharing one port.
func ScenarioMixed(quick bool) *Table {
	t := &Table{
		Title:  "Scenario: mixed traffic (128 B echo + bulk background through one port)",
		Header: []string{"aqm", "bulk Gbps", "echo p50 us", "echo p99 us", "marks", "drops"},
	}
	warmup, measure := scenarioWindows(quick)
	for i, aqm := range scenarioAQMs() {
		if scenarioSkip(i) {
			continue
		}
		r := MixedPointOn(sim.New(), aqm, "dctcp", nil, warmup, measure)
		t.AddRow(scenarioAQMName(i), f2(r.BulkGbps),
			f1(float64(r.EchoP50)/1000), f1(float64(r.EchoP99)/1000),
			i64(r.Port.Marks), i64(r.Port.TailDrops+r.Port.AQMDrops))
	}
	t.Notes = append(t.Notes,
		"AQM keeps the standing queue short, which is what bounds the echo flows' tail latency")
	return t
}

// ScenarioWAN runs the RTT-diverse multi-hop rig under cubic and dctcp.
func ScenarioWAN(quick bool) *Table {
	t := &Table{
		Title:  "Scenario: WAN paths (3-router chain, RTT-diverse senders -> 1 receiver)",
		Header: []string{"alg", "sender", "access RTT us", "goodput Gbps"},
	}
	warmup, measure := scenarioWindows(quick)
	if !quick {
		// Long paths need more than the default windows to leave slow
		// start: the farthest sender's RTT is ~0.2 ms.
		warmup, measure = 500_000, 1_500_000
	}
	senders := DefaultWANSenders()
	for _, alg := range []string{"cubic", "dctcp"} {
		r := WANPointOn(sim.New(), senders, netsim.CoDel(0, true), alg, nil, warmup, measure)
		for i, g := range r.SenderGbps {
			t.AddRow(alg, i64(int64(i+1)), f1(float64(2*senders[i].PropNS)/1000), f2(g))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: Jain fairness index %.3f", alg, r.Jain))
	}
	t.Notes = append(t.Notes,
		"short-RTT flows grow their windows faster; the fairness index quantifies the resulting skew")
	return t
}

func onsetUS(p PortStats) string {
	if p.FirstCongNS < 0 {
		return "-"
	}
	return f1(float64(p.FirstCongNS) / 1000)
}
