package exp

import (
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/host"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/wire"
)

// Topology rig addresses: node i of a multi-node rig (10.1.0.0/16 so
// they never collide with the two-node testbed's 10.0.0.x).
func StarAddr(i int) wire.Addr {
	return wire.MakeAddr(10, 1, byte((i+1)>>8), byte((i+1)&0xff))
}

// StarMAC is node i's MAC.
func StarMAC(i int) wire.MAC {
	return wire.MAC{2, 0, 1, 0, byte((i + 1) >> 8), byte((i + 1) & 0xff)}
}

// F4TStar is n F4T hosts around one output-queued switch — the incast,
// fan-in and mixed-traffic shape. Node i lives on island i; the switch
// is island n, so a sharded fabric parallelizes hosts against the
// switch too. Every flow crosses the sender's uplink pipe and the
// receiver's downlink RouterPort, where the AQM discipline acts.
type F4TStar struct {
	R       sim.Runner
	K       *sim.Kernel   // serial kernel, nil when R is sharded
	Kernels []*sim.Kernel // island clocks per node
	Topo    *netsim.Topology
	Engines []*engine.Engine
	Machs   []*host.F4TMachine
	Addrs   []wire.Addr
}

// RouterIsland returns the switch's island number for an n-node star.
func RouterIsland(n int) int { return n }

// NewF4TStarOn builds an n-node star on any fabric. cores[i] sets node
// i's channel/thread count; aqm is applied to every switch output port.
// mutate adjusts the shared engine configuration (all nodes). Like
// NewF4TPairOn, construction order is identical on every fabric, which
// keeps sharded runs bit-for-bit comparable to serial ones.
func NewF4TStarOn(f sim.Fabric, cores []int, costs cpu.Costs, aqm netsim.AQMConfig, mutate func(*engine.Config)) *F4TStar {
	n := len(cores)
	specs := make([]netsim.NodeSpec, n)
	addrs := make([]wire.Addr, n)
	for i := range specs {
		addrs[i] = StarAddr(i)
		specs[i] = netsim.NodeSpec{
			Addr: addrs[i], MAC: StarMAC(i), Island: i,
			Gbps: LinkGbps, PropNS: LinkPropNS,
		}
	}
	topo := netsim.NewStarOn(f, RouterIsland(n), specs, aqm, 4321)

	base := engine.DefaultConfig()
	if mutate != nil {
		mutate(&base)
	}
	s := &F4TStar{R: f, Topo: topo, Addrs: addrs}
	if k, ok := f.(*sim.Kernel); ok {
		s.K = k
	}
	for i := 0; i < n; i++ {
		k := f.IslandKernel(i)
		cfg := base
		cfg.IP, cfg.MAC = addrs[i], StarMAC(i)
		// Per-node streams derive from the (mutable) base seed, so a
		// differential battery can vary the whole rig's randomness by
		// setting Seed in mutate.
		cfg.Seed = base.Seed + uint64(101+i*101)
		cfg.Channels = cores[i]
		eng := engine.New(k, cfg, topo.NodeTX(i))
		topo.SetNodeSink(i, eng.DeliverPacket)
		s.Kernels = append(s.Kernels, k)
		s.Engines = append(s.Engines, eng)
	}
	for i, eng := range s.Engines {
		for j := 0; j < n; j++ {
			if j != i {
				eng.LearnPeer(addrs[j], StarMAC(j))
			}
		}
	}
	// remotes == addrs for every machine, so remote index j always means
	// node j (index i, the machine itself, is simply never dialed).
	for i := 0; i < n; i++ {
		s.Machs = append(s.Machs, host.NewF4TMachine(s.Kernels[i], s.Engines[i], cores[i], costs, addrs))
	}
	// Engines first, then machines, mirroring NewF4TPairOn: the slot
	// order (after the topology's ports) is part of the determinism
	// contract.
	for i, eng := range s.Engines {
		f.RegisterOn(i, eng)
	}
	for i, m := range s.Machs {
		f.RegisterOn(i, m)
	}
	return s
}

// F4TDumbbell is the heterogeneous-CC rig: one receiver on router 0,
// N senders on router 1, and the shared inter-router trunk as the
// bottleneck every sender contends on. Unlike the star/WAN rigs, each
// sender runs its *own* congestion-control program — the BBR-vs-CUBIC
// coexistence shape production networks see and the paper never
// measures. Node i is island i; routers 0/1 are islands n and n+1.
type F4TDumbbell struct {
	R       sim.Runner
	Kernels []*sim.Kernel
	Topo    *netsim.Topology
	Engines []*engine.Engine
	Machs   []*host.F4TMachine
	Addrs   []wire.Addr
	Trunk   *netsim.RouterPort // router1→router0 trunk: the bottleneck
}

// NewF4TDumbbellOn builds the dumbbell on any fabric. algs[i] names
// sender i's congestion-control program (the receiver always runs
// newreno — it only sends acks); trunkGbps sets the bottleneck rate,
// which should be below LinkGbps so contention happens at the trunk and
// not at the access links. mutate adjusts the shared base configuration
// before the per-node alg is applied. Construction order matches the
// other rigs' determinism contract, so sharded runs stay bit-identical
// to serial ones.
func NewF4TDumbbellOn(f sim.Fabric, algs []string, trunkGbps, trunkPropNS int64, costs cpu.Costs, aqm netsim.AQMConfig, mutate func(*engine.Config)) *F4TDumbbell {
	n := len(algs) + 1
	specs := make([]netsim.NodeSpec, n)
	addrs := make([]wire.Addr, n)
	for i := range specs {
		addrs[i] = StarAddr(i)
		router := 1
		if i == 0 {
			router = 0 // the receiver sits alone on the left router
		}
		specs[i] = netsim.NodeSpec{
			Addr: addrs[i], MAC: StarMAC(i), Island: i, RouterIdx: router,
			Gbps: LinkGbps, PropNS: LinkPropNS,
		}
	}
	topo := netsim.NewDumbbellOn(f, [2]int{n, n + 1}, trunkGbps, trunkPropNS, specs, aqm, 6543)

	base := engine.DefaultConfig()
	if mutate != nil {
		mutate(&base)
	}
	// ECN is a path property: if any sender marks, the receiver must echo.
	anyDctcp := false
	for _, a := range algs {
		anyDctcp = anyDctcp || a == "dctcp"
	}
	d := &F4TDumbbell{R: f, Topo: topo, Addrs: addrs, Trunk: topo.TrunkLeft[0]}
	for i := 0; i < n; i++ {
		k := f.IslandKernel(i)
		cfg := base
		cfg.IP, cfg.MAC = addrs[i], StarMAC(i)
		cfg.Seed = base.Seed + uint64(505+i*101)
		cfg.Channels = 1
		if i == 0 {
			cfg.Alg = "newreno"
			cfg.Proto.ECN = anyDctcp
		} else {
			cfg.Alg = algs[i-1]
			cfg.Proto.ECN = algs[i-1] == "dctcp"
		}
		eng := engine.New(k, cfg, topo.NodeTX(i))
		topo.SetNodeSink(i, eng.DeliverPacket)
		d.Kernels = append(d.Kernels, k)
		d.Engines = append(d.Engines, eng)
	}
	for i, eng := range d.Engines {
		for j := 0; j < n; j++ {
			if j != i {
				eng.LearnPeer(addrs[j], StarMAC(j))
			}
		}
	}
	for i := 0; i < n; i++ {
		d.Machs = append(d.Machs, host.NewF4TMachine(d.Kernels[i], d.Engines[i], 1, costs, addrs))
	}
	for i, eng := range d.Engines {
		f.RegisterOn(i, eng)
	}
	for i, m := range d.Machs {
		f.RegisterOn(i, m)
	}
	return d
}

// WANSpec describes one sender of the RTT-diverse WAN rig: which router
// of the chain it attaches to and its access propagation delay.
type WANSpec struct {
	RouterIdx int
	PropNS    int64
	Gbps      int64
}

// F4TWAN is a chain-of-routers rig: node 0 (the sink) attaches to
// router 0; senders attach per their WANSpec. Node i is island i, and
// router r is island n+r.
type F4TWAN struct {
	R       sim.Runner
	Kernels []*sim.Kernel
	Topo    *netsim.Topology
	Engines []*engine.Engine
	Machs   []*host.F4TMachine
	Addrs   []wire.Addr
}

// NewF4TWANOn builds the multi-hop WAN rig on any fabric: a chain of
// nRouters joined by trunks, the receiver on router 0, one sender per
// spec. All nodes run one core.
func NewF4TWANOn(f sim.Fabric, nRouters int, trunkGbps, trunkPropNS int64, recvPropNS int64, senders []WANSpec, costs cpu.Costs, aqm netsim.AQMConfig, mutate func(*engine.Config)) *F4TWAN {
	n := len(senders) + 1
	routerIslands := make([]int, nRouters)
	for r := range routerIslands {
		routerIslands[r] = n + r
	}
	specs := make([]netsim.NodeSpec, n)
	addrs := make([]wire.Addr, n)
	addrs[0] = StarAddr(0)
	specs[0] = netsim.NodeSpec{
		Addr: addrs[0], MAC: StarMAC(0), Island: 0, RouterIdx: 0,
		Gbps: LinkGbps, PropNS: recvPropNS,
	}
	for i, ws := range senders {
		addrs[i+1] = StarAddr(i + 1)
		gbps := ws.Gbps
		if gbps == 0 {
			gbps = LinkGbps
		}
		specs[i+1] = netsim.NodeSpec{
			Addr: addrs[i+1], MAC: StarMAC(i + 1), Island: i + 1,
			RouterIdx: ws.RouterIdx, Gbps: gbps, PropNS: ws.PropNS,
		}
	}
	topo := netsim.NewChainOn(f, routerIslands, trunkGbps, trunkPropNS, specs, aqm, 8765)

	base := engine.DefaultConfig()
	if mutate != nil {
		mutate(&base)
	}
	w := &F4TWAN{R: f, Topo: topo, Addrs: addrs}
	for i := 0; i < n; i++ {
		k := f.IslandKernel(i)
		cfg := base
		cfg.IP, cfg.MAC = addrs[i], StarMAC(i)
		cfg.Seed = base.Seed + uint64(303+i*101)
		cfg.Channels = 1
		eng := engine.New(k, cfg, topo.NodeTX(i))
		topo.SetNodeSink(i, eng.DeliverPacket)
		w.Kernels = append(w.Kernels, k)
		w.Engines = append(w.Engines, eng)
	}
	for i, eng := range w.Engines {
		for j := 0; j < n; j++ {
			if j != i {
				eng.LearnPeer(addrs[j], StarMAC(j))
			}
		}
	}
	for i := 0; i < n; i++ {
		w.Machs = append(w.Machs, host.NewF4TMachine(w.Kernels[i], w.Engines[i], 1, costs, addrs))
	}
	for i, eng := range w.Engines {
		f.RegisterOn(i, eng)
	}
	for i, m := range w.Machs {
		f.RegisterOn(i, m)
	}
	return w
}
