package exp

import "testing"

func TestFig14Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run")
	}
	tab := Fig14(true)
	t.Log("\n" + tab.String())
	// Both implementations must exhibit sawtooth behaviour.
	// Rows alternate F4T/reference per algorithm.
	for _, row := range tab.Rows {
		if row[2] == "0" {
			t.Errorf("%s/%s shows no loss epochs — no sawtooth", row[0], row[1])
		}
	}
}
