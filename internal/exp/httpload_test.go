package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"f4t/internal/pcap"
	"f4t/internal/sim"
)

// TestHTTPLoadQuick is the smoke test: a short run completes all
// requests and reports a sane digest.
func TestHTTPLoadQuick(t *testing.T) {
	cfg := HTTPLoadConfig{Requests: 2, BodyLen: 4096, EndCycle: 60_000_000}
	res, err := HTTPLoadOn(sim.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != cfg.Requests {
		t.Fatalf("completed %d of %d requests", res.Requests, cfg.Requests)
	}
	if res.BodyBytes != int64(cfg.Requests*cfg.BodyLen) {
		t.Fatalf("body bytes = %d, want %d", res.BodyBytes, cfg.Requests*cfg.BodyLen)
	}
	if !strings.Contains(res.Digest, "reqs=2") {
		t.Fatalf("digest %q does not carry the request count", res.Digest)
	}
}

// TestHTTPLoadDifferential is the facade's headline acceptance test:
// an UNMODIFIED net/http server/client pair completes its requests with
// a bit-identical simulation digest on the serial, noskip and sharded
// fabrics.
func TestHTTPLoadDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery skipped in -short")
	}
	cfg := HTTPLoadConfig{Requests: 3, BodyLen: 8192, EndCycle: 80_000_000}
	run := func(f sim.Fabric) string {
		t.Helper()
		res, err := HTTPLoadOn(f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest
	}
	digests := map[string]string{
		"serial":   run(sim.New()),
		"noskip":   run(sim.NewShadow()),
		"sharded2": run(sim.NewSharded(2)),
	}
	want := digests["serial"]
	for name, d := range digests {
		if d != want {
			t.Errorf("digest mismatch:\n  serial: %s\n  %s: %s", want, name, d)
		}
	}
}

// TestHTTPLoadPCAP checks the -pcap plumbing end to end: the run emits
// a capture that the pcap reader parses frame for frame.
func TestHTTPLoadPCAP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "httpload.pcapng")
	cfg := HTTPLoadConfig{Requests: 2, BodyLen: 4096, EndCycle: 60_000_000, PCAPPath: path}
	res, err := HTTPLoadOn(sim.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames == 0 {
		t.Fatal("capture recorded no frames")
	}
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	frames, err := pcap.ReadFile(fh)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != res.Frames {
		t.Fatalf("reader found %d frames, capture recorded %d", len(frames), res.Frames)
	}
}
