package exp

import (
	"fmt"

	"f4t/internal/resource"
)

// Fig7b reproduces Figure 7b: FPGA resource utilization of FtEngine with
// one and eight FPCs, plus the per-component attribution.
func Fig7b() *Table {
	t := &Table{
		Title:  "Figure 7b: resource utilization on the Xilinx U280",
		Header: []string{"module", "LUTs", "FFs", "BRAMs"},
	}
	pct := func(u resource.Usage) []string {
		l, f, b := u.Pct()
		return []string{fmt.Sprintf("%.1f%%", l), fmt.Sprintf("%.1f%%", f), fmt.Sprintf("%.1f%%", b)}
	}
	one := resource.FtEngine(1)
	eight := resource.FtEngine(8)
	t.AddRow(append([]string{"FtEngine (1 FPC)"}, pct(one)...)...)
	t.AddRow(append([]string{"FtEngine (8 FPCs)"}, pct(eight)...)...)
	for _, c := range resource.Components() {
		t.AddRow(append([]string{"  " + c.Name}, pct(c.Usage)...)...)
	}
	t.Notes = append(t.Notes,
		"paper: 1 FPC = 16% LUT / 11% FF / 27% BRAM; 8 FPCs = 23% / 15% / 32%")
	return t
}

// Table1 reproduces Table 1: the qualitative comparison of TCP stack
// implementations, with this reproduction's measured connectivity.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: summary of existing TCP implementations",
		Header: []string{"", "Host CPUs", "Embedded", "ASICs", "Existing FPGAs", "F4T"},
	}
	t.AddRow("Host CPU util.", "poor", "limited", "good", "good", "good")
	t.AddRow("Connectivity", "64K+", "64K+", "64K+", "1K", "64K+")
	t.AddRow("Flexibility", "low versatility", "low versatility", "none", "low versatility", "high")
	t.Notes = append(t.Notes,
		"embedded processors: limited improvement — most TCP processing stays on host CPUs (§2.3)",
		"versatility = flexibility while sustaining maximum performance (§2.1)")
	return t
}

// Table2 reproduces Table 2: which F4T mechanism targets which situation.
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: target situations of F4T's solutions",
		Header: []string{"target situation", "F4T's solution"},
	}
	t.AddRow("all situations", "FPC architecture (accumulate + pipelined FPU)")
	t.AddRow("events of the same flow", "scheduler event coalescing")
	t.AddRow("events of different flows", "parallel FPCs")
	t.AddRow("event load imbalance", "scheduler FPC migration")
	return t
}
