package exp

import (
	"fmt"

	"f4t/internal/engine"
	"f4t/internal/hostif"
)

// AblationFPCScaling sweeps the number of parallel FPCs (§4.4.2) on
// round-robin header traffic: throughput should grow with FPC count
// until another resource (host cores, PCIe) binds.
func AblationFPCScaling(quick bool) *Table {
	t := &Table{
		Title:  "Ablation: parallel FPC scaling (round-robin header traffic, Mrps)",
		Header: []string{"FPCs", "Mrps"},
	}
	counts := []int{1, 2, 4, 8, 16}
	cores := 24
	if quick {
		counts = []int{1, 4, 8}
		cores = 8
	}
	for _, n := range counts {
		nn := n
		rate := headerPointN(cores, func(c *engine.Config) {
			c.NumFPCs = nn
			c.Coalesce = true
		}, true)
		t.AddRow(fmt.Sprintf("%d", n), f1(Mrps(rate)))
	}
	t.Notes = append(t.Notes,
		"§4.4.2: FPCs scale independently; round-robin traffic needs the parallelism")
	return t
}

// AblationCoalescing toggles scheduler event coalescing (§4.4.1) on
// same-flow bulk traffic, isolating its contribution.
func AblationCoalescing(quick bool) *Table {
	t := &Table{
		Title:  "Ablation: scheduler event coalescing (bulk header traffic, Mrps)",
		Header: []string{"coalescing", "1 FPC", "8 FPCs"},
	}
	cores := 24
	if quick {
		cores = 8
	}
	for _, on := range []bool{false, true} {
		coal := on
		row := []string{fmt.Sprintf("%v", on)}
		for _, n := range []int{1, 8} {
			nn := n
			rate := headerPointN(cores, func(c *engine.Config) {
				c.NumFPCs = nn
				c.Coalesce = coal
			}, false)
			row = append(row, f1(Mrps(rate)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"§4.4.1: coalescing multiplies same-flow throughput — the 1FPC→1FPC-C step of Fig 16b")
	return t
}

// AblationTCBCache sweeps the memory manager's direct-mapped TCB cache
// on the DDR echo workload: the cache is what keeps handled-event RMWs
// off the DRAM channel.
func AblationTCBCache(quick bool) *Table {
	t := &Table{
		Title:  "Ablation: memory-manager TCB cache (DDR echo @4096 flows, Mrps)",
		Header: []string{"cache entries", "Mrps"},
	}
	sizes := []int{0, 128, 512, 2048}
	if quick {
		sizes = []int{0, 512}
	}
	for _, size := range sizes {
		sz := size
		if sz == 0 {
			sz = -1 // disabled
		}
		mrps, _ := EchoPointMut("f4t-ddr", 4096, func(c *engine.Config) {
			c.TCBCache = sz
		})
		t.AddRow(fmt.Sprintf("%d", size), f2(mrps))
	}
	t.Notes = append(t.Notes,
		"§4.3.1: the direct-mapped cache handles frequently accessed DRAM TCBs efficiently")
	return t
}

// headerPointN is headerPoint with an arbitrary config mutation.
func headerPointN(cores int, mutate func(*engine.Config), roundRobin bool) float64 {
	return headerPointMut(cores, hostif.CommandBytes16, roundRobin, mutate)
}
