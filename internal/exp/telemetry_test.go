package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
)

// TestRegistryMatchesAdHocCounters is the acceptance check for the
// reference-based registry design: after a real workload, every registry
// value must be bit-identical to the ad-hoc stat field it wraps, because
// both are the same memory.
func TestRegistryMatchesAdHocCounters(t *testing.T) {
	r, err := RunStatRig("echo", 200_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, reg := r.Pair, r.Tel.Reg

	checks := []struct {
		name    string
		want    int64
		mayZero bool // legitimately zero on a clean (lossless) run
	}{
		{"eng_a.rx_pkts", p.EngA.RxPkts.Total(), false},
		{"eng_a.tx_pkts", p.EngA.TxPkts.Total(), false},
		{"eng_a.cmds_processed", p.EngA.CmdsProcessed.Total(), false},
		{"eng_a.completions_sent", p.EngA.CompletionsSent.Total(), false},
		{"eng_a.retrans_segs", p.EngA.RetransSegs.Total(), true},
		{"eng_b.rx_pkts", p.EngB.RxPkts.Total(), false},
		{"eng_b.tx_pkts", p.EngB.TxPkts.Total(), false},
		{"eng_b.flows_accepted", p.EngB.FlowsAccepted.Total(), false},
		{"link.a_to_b.sent_pkts", p.Link.AtoB.SentPkts, false},
		{"link.a_to_b.sent_bytes", p.Link.AtoB.SentBytes, false},
		{"link.b_to_a.sent_pkts", p.Link.BtoA.SentPkts, false},
		{"eng_a.pcie.tlps_to_device", p.EngA.PCIe.TLPsToDevice, false},
		{"eng_a.pcie.wire_bytes_to_device", p.EngA.PCIe.WireBytesToDevice, false},
	}
	for _, c := range checks {
		got, ok := reg.Value(c.name)
		if !ok {
			t.Errorf("metric %q not registered", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("%s: registry %d != ad-hoc %d", c.name, got, c.want)
		}
		if c.want == 0 && !c.mayZero {
			t.Errorf("%s: counter never moved — dead instrumentation or dead rig", c.name)
		}
	}
}

// bareEcho runs the exact RunStatRig("echo") shape with no telemetry
// attached and returns a signature of the simulation-visible counters.
func bareEcho(runCycles int64) string {
	p := NewF4TPair(2, 2, cpu.DefaultCosts(), func(c *engine.Config) {
		c.CarryBytes = false
	})
	k := p.K
	srv := apps.NewEchoServer(p.MachB.Threads(), 6001, 128)
	k.Register(srv)
	k.Run(2_000)
	cli := apps.NewEchoClient(k, p.MachA.Threads(), 0, 6001, 128, 4)
	k.Register(cli)
	if !k.RunUntil(cli.Ready, 500_000) {
		return "not ready"
	}
	k.Run(runCycles)
	return pairSig(p, cli.Requests.Total())
}

func pairSig(p *F4TPair, requests int64) string {
	return fmt.Sprintf("cycle=%d reqs=%d a.rx=%d a.tx=%d b.rx=%d b.tx=%d ab.pkts=%d ab.bytes=%d ba.pkts=%d retransA=%d",
		p.K.Now(), requests,
		p.EngA.RxPkts.Total(), p.EngA.TxPkts.Total(),
		p.EngB.RxPkts.Total(), p.EngB.TxPkts.Total(),
		p.Link.AtoB.SentPkts, p.Link.AtoB.SentBytes, p.Link.BtoA.SentPkts,
		p.EngA.RetransSegs.Total())
}

// TestTelemetryDoesNotPerturbSimulation runs the same echo rig bare and
// fully instrumented: every simulation-visible counter must match
// exactly. Observation must not change the experiment.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	const cycles = 200_000
	bare := bareEcho(cycles)
	r, err := RunStatRig("echo", cycles, 0)
	if err != nil {
		t.Fatal(err)
	}
	instrumented := pairSig(r.Pair, r.Requests)
	if bare != instrumented {
		t.Fatalf("telemetry perturbed the simulation:\nbare:         %s\ninstrumented: %s", bare, instrumented)
	}
}

// TestTraceExportRoundTrip is the end-to-end acceptance check: the
// Perfetto export of a traced echo run must parse as JSON and contain at
// least one event from every instrumented layer.
func TestTraceExportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r, err := RunTracedEcho(&buf, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests == 0 {
		t.Fatal("traced rig completed no requests")
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Cat  string  `json:"cat"`
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace does not round-trip as JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	perCat := map[string]int{}
	counters, meta := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X", "i":
			perCat[e.Cat]++
			if e.TS < 0 || (e.Ph == "X" && e.Dur < 0) {
				t.Fatalf("negative timestamp in event %+v", e)
			}
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	for _, cat := range []string{"engine", "hostif", "net", "app"} {
		if perCat[cat] == 0 {
			t.Errorf("no trace events from layer %q (got %v)", cat, perCat)
		}
	}
	if counters == 0 {
		t.Error("no sampled counter events in export")
	}
	if meta == 0 {
		t.Error("no thread-name metadata events in export")
	}
}

// TestFlowTablesPopulated checks the per-flow view after a run: the echo
// rig opens 4 client flows, and each side's table must carry live
// cwnd/RTT/byte counters for its own flow-ID namespace.
func TestFlowTablesPopulated(t *testing.T) {
	r, err := RunStatRig("echo", 200_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	for side, ft := range map[string]interface {
		Len() int
	}{"A": r.Tel.FlowsA, "B": r.Tel.FlowsB} {
		if ft.Len() < 4 {
			t.Errorf("side %s: %d flows tracked, want >= 4", side, ft.Len())
		}
	}
	for _, f := range r.Tel.FlowsA.Flows() {
		if f.State != "ESTABLISHED" {
			t.Errorf("flow %d state %s, want ESTABLISHED", f.FlowID, f.State)
		}
		if f.BytesAcked == 0 || f.SRTTNS == 0 || f.CwndB == 0 {
			t.Errorf("flow %d has dead stats: %+v", f.FlowID, f)
		}
	}
}
