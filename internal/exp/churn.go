package exp

import (
	"fmt"

	"f4t/internal/datapath"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/stack"
	"f4t/internal/tcpproc"
	"f4t/internal/telemetry"
	"f4t/internal/wire"
)

// The churn experiment pushes the flow axis: a fleet of client
// endpoints on island A opens connections against one server endpoint
// on island B until the target concurrency is reached, then sustains it
// under heavy-tailed departure/replacement churn (Pareto lifetimes —
// most connections die young, a fat tail lives for the whole run).
// Multiple client IPs keep the 64k-ephemeral-ports-per-address-pair
// limit from capping the axis, and CarryBytes=false keeps the footprint
// to control state only, which is exactly what the experiment measures:
// can the flow table, arenas and timer machinery hold 2^20 concurrent
// connections without losing or leaking any.

// ChurnConfig parameterizes the churn rig.
type ChurnConfig struct {
	TargetFlows   int     // live connections to reach and sustain
	Clients       int     // client endpoints on island A (one IP each)
	SustainCycles int64   // how long to hold the plateau under churn
	Budget        int64   // ramp budget in cycles
	LifetimeXM    int64   // Pareto scale: minimum lifetime, cycles
	LifetimeAlpha float64 // Pareto shape (~1.2: heavy tail)
	Seed          uint64
}

// DefaultChurnConfig is the full-scale 2^20-flow configuration.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		TargetFlows:   1 << 20,
		Clients:       64,
		SustainCycles: 1_000_000,
		Budget:        20_000_000,
		LifetimeXM:    2_500_000, // 10 ms at 250 MHz: churn overlaps the plateau
		LifetimeAlpha: 1.2,
		Seed:          7,
	}
}

// QuickChurnConfig is the CI-sized 2^17-flow configuration.
func QuickChurnConfig() ChurnConfig {
	c := DefaultChurnConfig()
	c.TargetFlows = 1 << 17
	c.Clients = 16
	c.SustainCycles = 400_000
	c.Budget = 4_000_000
	c.LifetimeXM = 300_000
	return c
}

// ChurnResult is the outcome of one churn run.
type ChurnResult struct {
	Reached      bool
	ReachedCycle int64 // coarse-grid cycle the target was first observed
	EndCycle     int64

	Opened, Established int64
	Departed            int64 // departures the driver initiated
	Closes, Aborts      int64 // departure split (FIN vs RST)
	DialRejected        int64 // Dial returned nil (client full)

	LiveAtEnd       int64 // driver's view: established - departed
	ServerConnsEnd  int   // server's live connection count at end
	ServerRejected  int64 // server-side counted open refusals
	ServerTable     datapath.CuckooStats
	ServerMem       []telemetry.MemItem
	ServerBytesFlow float64 // accounted bytes per server connection

	Digest string // fabric-comparable run fingerprint
}

// Churn rig constants: the driver acts on a fixed cycle grid so serial,
// noskip and sharded runs make identical decisions at identical cycles.
const (
	churnStepCycles   = 256 // driver grid
	churnDialsPerStep = 128 // open burst per grid step (0.5 conns/cycle)
	churnLinkGbps     = 400 // fatter than the default testbed: setup
	// packets of a 2^20-flow ramp must not queue behind serialization
	churnRetrySteps = 32 // re-arm delay for not-yet-established expiries
	churnMaxLifeXM  = 64 // lifetime truncation, in multiples of XM
	// churnOvershoot keeps that many connections above the target so the
	// plateau holds through replacement-handshake latency and closes
	// still in flight.
	churnOvershoot = 2048
)

// churnNode drives one island's endpoints: received packets queue and
// are handled on the node's own tick (queue-then-tick), so packet
// processing happens at deterministic cycles on every fabric; the
// delivery closure only enqueues and wakes.
type churnNode struct {
	k             *sim.Kernel
	eps           []*stack.Endpoint
	byIP          map[wire.Addr]*stack.Endpoint
	rxq, inactive []*wire.Packet
	Demux         int64 // packets dropped for an unknown destination IP
}

func newChurnNode(k *sim.Kernel, eps []*stack.Endpoint) *churnNode {
	n := &churnNode{k: k, eps: eps, byIP: make(map[wire.Addr]*stack.Endpoint, len(eps))}
	for _, ep := range eps {
		n.byIP[ep.Opt.IP] = ep
	}
	return n
}

// deliver is the link sink: enqueue and wake, nothing else.
func (n *churnNode) deliver(pkt *wire.Packet) {
	n.rxq = append(n.rxq, pkt)
	n.k.Wake(n)
}

func (n *churnNode) Tick(int64) {
	// Double-buffer swap: packets delivered while handling (ACK-triggered
	// transmissions looping back same-cycle cannot happen across a link,
	// but timers can enqueue) land in the next batch.
	q := n.rxq
	n.rxq = n.inactive[:0]
	for _, pkt := range q {
		ep := n.byIP[pkt.IP.Dst]
		if ep == nil {
			n.Demux++
			continue
		}
		ep.HandlePacket(pkt)
		if pkt.Kind == wire.KindTCP {
			// The endpoint fully consumes TCP packets (events are value
			// copies; CarryBytes=false means no payload aliasing), so the
			// ~8M packets of a full churn run recycle instead of churning
			// the heap. ARP/ICMP replies may alias the request — excluded.
			wire.PutPacket(pkt)
		}
	}
	n.inactive = q[:0]
	for _, ep := range n.eps {
		ep.ExpireTimers()
	}
}

// NextWork implements sim.Sleeper: queued packets want the next cycle;
// otherwise the earliest endpoint timer bounds the sleep.
func (n *churnNode) NextWork(now int64) int64 {
	if len(n.rxq) > 0 {
		return now + 1
	}
	next := sim.Dormant
	for _, ep := range n.eps {
		if d := ep.NextTimerNS(); d > 0 {
			if c := sim.NSToCycles(d); c < next {
				next = c
			}
		}
	}
	if next <= now {
		return now + 1 // stale timer head: one tick pops it
	}
	return next
}

// churnDriver opens, expires and replaces connections on the fixed grid.
// It reads only island-A state (its own counters and client conns), so
// its decisions are identical on every fabric.
type churnDriver struct {
	cfg     ChurnConfig
	clients []*stack.Endpoint
	server  wire.Addr
	rng     *sim.Rand
	nextCli int

	wheel map[int64][]*stack.Conn // expiry step → due connections

	opened, established, closedSeen int64
	departed, closes, aborts        int64
	dialRejected                    int64

	estFn, closFn func() // shared callbacks (one closure, not one per conn)
}

func newChurnDriver(cfg ChurnConfig, clients []*stack.Endpoint, server wire.Addr) *churnDriver {
	d := &churnDriver{
		cfg:     cfg,
		clients: clients,
		server:  server,
		rng:     sim.NewRand(cfg.Seed + 1000),
		wheel:   make(map[int64][]*stack.Conn),
	}
	d.estFn = func() { d.established++ }
	d.closFn = func() { d.closedSeen++ }
	return d
}

// live is the driver's deterministic lower bound on concurrency:
// handshakes completed minus departures initiated (closes in flight
// still count against it, so the bound is conservative).
func (d *churnDriver) live() int64 { return d.established - d.departed }

func (d *churnDriver) Tick(cycle int64) {
	if cycle%churnStepCycles != 0 {
		return
	}
	step := cycle / churnStepCycles

	// Departures due this step. Connections still mid-handshake are
	// re-armed rather than killed half-open; already-gone ones (reset by
	// the peer, closed by an earlier pass) are skipped.
	if due := d.wheel[step]; len(due) > 0 {
		delete(d.wheel, step)
		for _, c := range due {
			switch {
			case c.Closed || c.WasReset:
				// Already gone; its slot was returned by OnClosed.
			case !c.Established:
				d.wheel[step+churnRetrySteps] = append(d.wheel[step+churnRetrySteps], c)
			default:
				d.departed++
				if d.rng.Bool(0.5) {
					d.closes++
					c.Close() // FIN path: client carries the TIME_WAIT
				} else {
					d.aborts++
					c.Abort() // RST path: both sides free immediately
				}
			}
		}
	}

	// Replacement dials: every departure is replaced, so the plateau
	// holds under churn. The burst cap keeps per-step work bounded.
	want := int64(d.cfg.TargetFlows) + churnOvershoot + d.departed
	for n := 0; n < churnDialsPerStep && d.opened < want; n++ {
		cli := d.clients[d.nextCli]
		d.nextCli = (d.nextCli + 1) % len(d.clients)
		c := cli.Dial(d.server, 80)
		if c == nil {
			d.dialRejected++
			continue
		}
		d.opened++
		c.OnEstablished = d.estFn
		c.OnClosed = d.closFn
		life := int64(d.rng.Pareto(float64(d.cfg.LifetimeXM), d.cfg.LifetimeAlpha))
		if max := d.cfg.LifetimeXM * churnMaxLifeXM; life > max {
			life = max
		}
		expiry := (cycle+life)/churnStepCycles + 1
		d.wheel[expiry] = append(d.wheel[expiry], c)
	}
}

// NextWork implements sim.Sleeper: the driver acts on every grid step
// (there is always churn work while the rig runs).
func (d *churnDriver) NextWork(now int64) int64 {
	return now - now%churnStepCycles + churnStepCycles
}

// churnClientAddr returns client i's address: one IP per client so the
// per-address-pair ephemeral port space is never the flow ceiling.
func churnClientAddr(i int) (wire.Addr, wire.MAC) {
	return wire.MakeAddr(10, 1, byte(i>>8), byte(1+i&0xff)),
		wire.MAC{2, 1, 0, 0, byte(i >> 8), byte(i)}
}

// churnRig is the constructed churn testbed: one server endpoint on
// island B, a fleet of client endpoints on island A, and the driver
// that opens/expires/replaces connections on the fixed grid.
type churnRig struct {
	link       *netsim.Link
	srv        *stack.Endpoint
	serverNode *churnNode
	clients    []*stack.Endpoint
	clientNode *churnNode
	driver     *churnDriver
}

// rampDone is the coarse-grid ramp predicate: the driver's conservative
// live bound and the server's own connection count both at target.
func (r *churnRig) rampDone(target int) func() bool {
	return func() bool {
		return r.driver.live() >= int64(target) && r.srv.Conns() >= target
	}
}

// newChurnRig builds and registers the churn testbed on any fabric. The
// construction order (and so every registration slot and RNG draw) is
// fixed, making sharded runs bit-comparable to serial ones.
func newChurnRig(f sim.Fabric, cfg ChurnConfig) *churnRig {
	kA, kB := f.IslandKernel(IslandA), f.IslandKernel(IslandB)
	link := netsim.NewLinkOn(f, IslandA, IslandB, churnLinkGbps, LinkPropNS, cfg.Seed*2+1)

	// Server: island B. No data rings (CarryBytes=false) — the axis under
	// test is control state. Passive close on peer FIN keeps CLOSE_WAIT
	// from accumulating; the client carries the TIME_WAIT.
	srvOpt := stack.Options{
		IP: AddrB, MAC: MACB, Cfg: tcpproc.DefaultConfig(), Alg: "newreno",
		MaxFlows: cfg.TargetFlows + cfg.TargetFlows/4 + 65536,
		Seed:     cfg.Seed + 500,
	}
	srv := stack.New(kB, srvOpt, link.BtoA.Send)
	srv.Listen(80, func(c *stack.Conn) {
		c.OnPeerClosed = func() { c.Close() }
	})
	serverNode := newChurnNode(kB, []*stack.Endpoint{srv})
	link.AtoB.SetSink(serverNode.deliver)

	// Clients: island A, one endpoint per IP. Static ARP both ways so the
	// ramp is pure TCP.
	// Headroom above the per-client share covers connections parked in
	// TIME_WAIT (the close half of departures holds the slot and port for
	// TimeWaitDur after the flow goes quiet).
	perClient := cfg.TargetFlows/cfg.Clients + 16384
	clients := make([]*stack.Endpoint, cfg.Clients)
	for i := range clients {
		ip, mac := churnClientAddr(i)
		opt := stack.Options{
			IP: ip, MAC: mac, Cfg: tcpproc.DefaultConfig(), Alg: "newreno",
			MaxFlows: perClient, Seed: cfg.Seed + uint64(i)*17,
		}
		clients[i] = stack.New(kA, opt, link.AtoB.Send)
		clients[i].LearnPeer(AddrB, MACB)
		srv.LearnPeer(ip, mac)
	}
	clientNode := newChurnNode(kA, clients)
	link.BtoA.SetSink(clientNode.deliver)

	driver := newChurnDriver(cfg, clients, AddrB)

	f.RegisterOn(IslandB, serverNode)
	f.RegisterOn(IslandA, clientNode)
	f.RegisterOn(IslandA, driver)

	return &churnRig{
		link: link, srv: srv, serverNode: serverNode,
		clients: clients, clientNode: clientNode, driver: driver,
	}
}

// ChurnOn runs the churn experiment on any fabric: ramp to the target,
// sustain the plateau under churn, report counters and a digest.
func ChurnOn(f sim.Fabric, cfg ChurnConfig) *ChurnResult {
	rig := newChurnRig(f, cfg)
	srv, driver := rig.srv, rig.driver
	serverNode, clientNode, clients := rig.serverNode, rig.clientNode, rig.clients
	link := rig.link

	res := &ChurnResult{}
	// The predicate is observed on a fixed coarse grid; both sides of the
	// rig are deterministic at those cycles on every fabric.
	res.Reached = RunUntilCoarse(f, rig.rampDone(cfg.TargetFlows), 25_000, cfg.Budget)
	if res.Reached {
		res.ReachedCycle = f.Now()
		f.Run(cfg.SustainCycles)
	}
	res.EndCycle = f.Now()

	res.Opened = driver.opened
	res.Established = driver.established
	res.Departed = driver.departed
	res.Closes = driver.closes
	res.Aborts = driver.aborts
	res.DialRejected = driver.dialRejected
	res.LiveAtEnd = driver.live()
	res.ServerConnsEnd = srv.Conns()
	res.ServerRejected = srv.FlowsRejected
	res.ServerTable = srv.TableStats()

	fp := telemetry.NewFootprint()
	srv.InstrumentMem(fp, "srv")
	res.ServerMem = fp.Snapshot()
	res.ServerBytesFlow = fp.BytesPerFlow(int64(srv.Conns()))

	var cliRx, cliTx, cliEv, cliRej int64
	for _, c := range clients {
		cliRx += c.RxPkts
		cliTx += c.TxPkts
		cliEv += c.ProcessedEvents
		cliRej += c.FlowsRejected
	}
	// Everything in the digest is integral and cycle-deterministic; the
	// memory numbers stay out (allocator capacities are not part of the
	// determinism contract).
	res.Digest = fmt.Sprintf(
		"reached=%d end=%d opened=%d est=%d dep=%d cls=%d abt=%d rej=%d/%d/%d live=%d srv=%d srxtx=%d/%d sev=%d crxtx=%d/%d cev=%d tbl=%d/%d/%d/%d/%d link=%d/%d|%d/%d demux=%d/%d",
		res.ReachedCycle, res.EndCycle, res.Opened, res.Established, res.Departed,
		res.Closes, res.Aborts, res.DialRejected, cliRej, res.ServerRejected,
		res.LiveAtEnd, res.ServerConnsEnd,
		srv.RxPkts, srv.TxPkts, srv.ProcessedEvents,
		cliRx, cliTx, cliEv,
		res.ServerTable.Size, res.ServerTable.Kicks, res.ServerTable.Stashed,
		res.ServerTable.Resizes, res.ServerTable.FullDrops,
		link.AtoB.SentPkts, link.AtoB.SentBytes, link.BtoA.SentPkts, link.BtoA.SentBytes,
		serverNode.Demux, clientNode.Demux)
	return res
}

// Churn runs the churn experiment on a serial kernel and renders the
// result table (the f4tbench -exp churn entry).
func Churn(quick bool) *Table {
	cfg := DefaultChurnConfig()
	if quick {
		cfg = QuickChurnConfig()
	}
	res := ChurnOn(sim.New(), cfg)

	tab := &Table{
		Title: fmt.Sprintf("churn: %d concurrent connections under heavy-tailed churn (%d clients)",
			cfg.TargetFlows, cfg.Clients),
		Header: []string{"metric", "value"},
	}
	if !res.Reached {
		tab.Notes = append(tab.Notes, fmt.Sprintf(
			"FAILED: %d of %d live after %d cycles", res.LiveAtEnd, cfg.TargetFlows, cfg.Budget))
		return tab
	}
	rampNS := res.ReachedCycle * sim.CycleNS
	tab.AddRow("target flows", i64(int64(cfg.TargetFlows)))
	tab.AddRow("ramp time", fmt.Sprintf("%.2f ms (%d cycles)", float64(rampNS)/1e6, res.ReachedCycle))
	tab.AddRow("opened / established", fmt.Sprintf("%d / %d", res.Opened, res.Established))
	tab.AddRow("departures (close/abort)", fmt.Sprintf("%d (%d/%d)", res.Departed, res.Closes, res.Aborts))
	tab.AddRow("live at end (driver/server)", fmt.Sprintf("%d / %d", res.LiveAtEnd, res.ServerConnsEnd))
	tab.AddRow("open rate over ramp", fmt.Sprintf("%.2f conns/ms", float64(res.Opened)/(float64(rampNS)/1e6)))
	tab.AddRow("rejected opens (client dial / server)", fmt.Sprintf("%d / %d", res.DialRejected, res.ServerRejected))
	st := res.ServerTable
	tab.AddRow("server flow table", fmt.Sprintf("size=%d slots=%d stash=%d(peak %d) kicks=%d resizes=%d fulldrops=%d",
		st.Size, st.Slots, st.Stash, st.StashPeak, st.Kicks, st.Resizes, st.FullDrops))
	for _, m := range res.ServerMem {
		tab.AddRow("server mem "+m.Name, fmt.Sprintf("%d entries, %d B", m.Entries, m.Bytes))
	}
	tab.AddRow("server bytes/flow (accounted)", fmt.Sprintf("%.0f B", res.ServerBytesFlow))
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("Pareto lifetimes: xm=%d cycles, alpha=%.1f, truncated at %dx xm", cfg.LifetimeXM, cfg.LifetimeAlpha, churnMaxLifeXM),
		fmt.Sprintf("sustained %d cycles of churn at the plateau with every departure replaced", cfg.SustainCycles),
		"digest "+res.Digest)
	return tab
}
