package exp

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// This file is the kernel perf-regression harness: it times identical
// rigs under the quiescence-skipping kernel and under the historical
// always-step loop (SetSkipping(false)), reporting wall time per
// simulated millisecond and the skip ratio per workload. cmd/f4tperf
// -bench writes the result as BENCH_kernel.json so regressions show up
// as diffs.

// KernelBenchEntry is one workload's skip-vs-noskip timing.
type KernelBenchEntry struct {
	Name          string  `json:"name"`
	SimCycles     int64   `json:"sim_cycles"`
	SimMS         float64 `json:"sim_ms"`
	SkippedCycles int64   `json:"skipped_cycles"`
	SkippedPct    float64 `json:"skipped_pct"`

	WallNSSkip   int64 `json:"wall_ns_skip"`
	WallNSNoSkip int64 `json:"wall_ns_noskip"`

	// Wall nanoseconds to simulate one millisecond (250k cycles).
	NSPerSimMSSkip   float64 `json:"ns_per_sim_ms_skip"`
	NSPerSimMSNoSkip float64 `json:"ns_per_sim_ms_noskip"`

	// Stepped (executed) cycles per wall second — the event rate the
	// host sustains; skipped cycles cost nothing and are excluded.
	SteppedPerSecSkip   float64 `json:"stepped_cycles_per_sec_skip"`
	SteppedPerSecNoSkip float64 `json:"stepped_cycles_per_sec_noskip"`

	// Per-stepped-cycle cost of the skip run (schema/4): the wall and
	// heap-allocation price of one executed cycle. Saturated workloads
	// step every cycle, so these are the direct regression guards for
	// the event-driven dispatch and zero-alloc packet paths.
	NSPerSteppedCycle     float64 `json:"ns_per_stepped_cycle"`
	AllocsPerSteppedCycle float64 `json:"allocs_per_stepped_cycle"`

	Speedup float64 `json:"speedup"`
}

// KernelBench is the harness result, serialized to BENCH_kernel.json.
// The host environment is recorded at the top level — wall-clock
// entries are only comparable across runs on the same class of machine,
// and the GC totals say how much of the run the collector ate. Schema/5
// adds the flow_scale section: the Fig 13 flow axis extended past
// 65,536 connections, with measured bytes/flow and ns/stepped-cycle at
// each point.
type KernelBench struct {
	Schema     string `json:"schema"`
	Quick      bool   `json:"quick"`
	HostCPUs   int    `json:"host_cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	// GC activity across the whole harness run (delta over all entries).
	NumGC          uint32 `json:"num_gc"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`

	Entries   []KernelBenchEntry `json:"entries"`
	Telemetry *TelemetryOverhead `json:"telemetry,omitempty"`
	Sharded   *ShardedSweepBench `json:"sharded,omitempty"`
	FlowScale []FlowScalePoint   `json:"flow_scale,omitempty"`
}

// FlowScalePoint is one point of the extended Fig 13 flow axis
// (schema/5): the churn rig — multiple client IPs, so the 64k
// ephemeral-port space per address pair is not the ceiling — ramped to
// Flows concurrent connections, then a timed churn window at the
// plateau. Two per-flow footprints are recorded: the accounted one
// (what the server's own probes claim: TCB + flow-table entry +
// reassembler) and the whole-rig heap one (what the Go heap actually
// grew by, both sides and all bookkeeping included). The gap between
// them is the honest overhead number.
type FlowScalePoint struct {
	Flows      int   `json:"flows"`
	Clients    int   `json:"clients"`
	Reached    bool  `json:"reached"`
	RampCycles int64 `json:"ramp_cycles"`

	BytesPerFlowAccounted float64 `json:"bytes_per_flow_accounted"`
	BytesPerFlowHeap      float64 `json:"bytes_per_flow_heap"`

	// Cost of one executed cycle during the plateau window, with churn
	// (departures, replacement handshakes, TIME_WAIT recycling) running.
	NSPerSteppedCycle     float64 `json:"ns_per_stepped_cycle"`
	AllocsPerSteppedCycle float64 `json:"allocs_per_stepped_cycle"`

	TableSlots   int   `json:"table_slots"`
	TableResizes int64 `json:"table_resizes"`
}

// ShardedSweepBench times the Figure 13 echo row — one independent rig
// per stack kind — executed serially and distributed across the sweep
// worker pool (cmd/f4tperf -shards), and checks the two runs produce
// bit-identical tables. HostCPUs and GoMaxProcs are recorded because
// the speedup is bounded by them: on a single-core host the sharded
// run can only tie the serial one, and the numbers say so honestly.
type ShardedSweepBench struct {
	Workload      string  `json:"workload"`
	Flows         int     `json:"flows"`
	Points        int     `json:"points"`
	Workers       int     `json:"workers"`
	HostCPUs      int     `json:"host_cpus"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	WallNSSerial  int64   `json:"wall_ns_serial"`
	WallNSSharded int64   `json:"wall_ns_sharded"`
	Speedup       float64 `json:"speedup"`
	Identical     bool    `json:"identical"`
}

// TelemetryOverhead compares the echo workload with telemetry fully
// enabled (registry + sampler + tracer + flow tables) against the same
// run with telemetry disabled (the nil fast path), both on the skipping
// kernel. OverheadPct is the enabled run's extra wall time; the disabled
// path itself is identical code to the pre-telemetry engine except for
// nil checks, so the skip-vs-noskip entries above already guard it.
type TelemetryOverhead struct {
	Workload string `json:"workload"`
	// Each arm is the best of Iterations fresh runs: a single-shot A/B
	// on short windows measures scheduler and GC noise, not telemetry —
	// it used to report negative overhead. The minimum is the run least
	// disturbed by the host, which is the cost being compared.
	Iterations  int     `json:"iterations"`
	WallNSOff   int64   `json:"wall_ns_off"`
	WallNSOn    int64   `json:"wall_ns_on"`
	OverheadPct float64 `json:"overhead_pct"`
	Metrics     int     `json:"metrics"`
	TraceEvents int64   `json:"trace_events"`
}

type benchSample struct {
	wallNS  int64
	cycles  int64
	skipped int64
	mallocs uint64 // heap objects allocated during the window
}

// timedRun times k.Run(measure) and reports executed-vs-skipped cycles
// and heap allocations for that window only (ramp excluded).
func timedRun(k *sim.Kernel, measure int64) benchSample {
	start, skippedBefore := k.Now(), k.SkippedCycles()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	k.Run(measure)
	wall := time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&m1)
	return benchSample{
		wallNS:  wall,
		cycles:  k.Now() - start,
		skipped: k.SkippedCycles() - skippedBefore,
		mallocs: m1.Mallocs - m0.Mallocs,
	}
}

// benchEcho is the latency-bound end of Fig 13: a couple of ping-pong
// flows that spend most cycles waiting out an RTT — the idle-heavy
// workload skipping targets.
func benchEcho(skip bool, measure int64) benchSample {
	p := NewF4TPair(2, 2, cpu.DefaultCosts(), func(c *engine.Config) {
		c.CarryBytes = false
	})
	k := p.K
	k.SetSkipping(skip)
	srv := apps.NewEchoServer(p.MachB.Threads(), 7001, 128)
	k.Register(srv)
	k.Run(2_000)
	cli := apps.NewEchoClient(k, p.MachA.Threads(), 0, 7001, 128, 1)
	k.Register(cli)
	k.RunUntil(cli.Ready, 2_000_000)
	return timedRun(k, measure)
}

// benchWrkLatency is the Fig 12 shape: a handful of keepalive HTTP
// flows in closed-loop request/response — latency-bound, mostly idle.
func benchWrkLatency(skip bool, measure int64) benchSample {
	costs := cpu.DefaultCosts()
	p := NewF4TPair(2, 2, costs, nil)
	k := p.K
	k.SetSkipping(skip)
	srv := apps.NewHTTPServer(p.MachB.Threads(), 7002, 128, 256, costs)
	k.Register(srv)
	k.Run(2_000)
	wrk := apps.NewWrk(k, p.MachA.Threads(), 0, 7002, 128, 256, 1, costs)
	k.Register(wrk)
	k.RunUntil(wrk.Ready, 2_000_000)
	return timedRun(k, measure)
}

// benchBulk is the saturated baseline: back-to-back sends keep every
// component busy, so skipping finds nothing — this entry guards against
// the skip machinery slowing the common busy path.
func benchBulk(skip bool, measure int64) benchSample {
	p := NewF4TPair(2, 2, cpu.DefaultCosts(), nil)
	k := p.K
	k.SetSkipping(skip)
	sink := apps.NewSink(p.MachB.Threads(), 7003)
	k.Register(sink)
	k.Run(2_000)
	b := apps.NewBulkSender(p.MachA.Threads(), 0, 7003, 1460)
	k.Register(b)
	k.RunUntil(b.Ready, 1_000_000)
	return timedRun(k, measure)
}

// benchEchoTelemetry is benchEcho with full telemetry attached: every
// layer instrumented, the sampler ticking, the tracer recording spans
// and both flow tables refreshing. Its wall time against benchEcho's
// skip run measures the enabled-telemetry cost.
func benchEchoTelemetry(measure int64) (benchSample, int, int64) {
	p := NewF4TPair(2, 2, cpu.DefaultCosts(), func(c *engine.Config) {
		c.CarryBytes = false
	})
	k := p.K
	tel := InstrumentF4TPair(p, 0, 0)
	srv := apps.NewEchoServer(p.MachB.Threads(), 7001, 128)
	k.Register(srv)
	k.Run(2_000)
	cli := apps.NewEchoClient(k, p.MachA.Threads(), 0, 7001, 128, 1)
	cli.Instrument(tel.Reg, "app.echo")
	cli.SetTracer(tel.Trace, tel.NextTID("app.echo"))
	k.Register(cli)
	k.RunUntil(cli.Ready, 2_000_000)
	s := timedRun(k, measure)
	return s, tel.Reg.Len(), tel.Trace.Total()
}

// RunShardedSweepBench measures the sweep-level parallelism layer: the
// Figure 13 echo row at the given flow count, once with the serial
// sweep loop and once distributed over workers goroutines. Each cell is
// a self-contained rig on its own kernel, so the distributed table must
// be bit-identical to the serial one (Identical reports the check).
func RunShardedSweepBench(quick bool, workers int) *ShardedSweepBench {
	flows := 65536
	if quick {
		flows = 1024
	}
	stacks := []string{"linux", "f4t-ddr", "f4t-hbm"}
	row := func(w int) ([]uint64, int64) {
		bits := make([]uint64, 2*len(stacks))
		t0 := time.Now()
		Sweep(len(stacks), w, func(i int) {
			mrps, frac := EchoPoint(stacks[i], flows)
			bits[2*i] = math.Float64bits(mrps)
			bits[2*i+1] = math.Float64bits(frac)
		})
		return bits, time.Since(t0).Nanoseconds()
	}
	serialBits, serialNS := row(1)
	shardedBits, shardedNS := row(workers)

	out := &ShardedSweepBench{
		Workload:      fmt.Sprintf("fig13-echo-row-%dflows", flows),
		Flows:         flows,
		Points:        len(stacks),
		Workers:       workers,
		HostCPUs:      runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		WallNSSerial:  serialNS,
		WallNSSharded: shardedNS,
		Identical:     true,
	}
	for i := range serialBits {
		if serialBits[i] != shardedBits[i] {
			out.Identical = false
		}
	}
	if shardedNS > 0 {
		out.Speedup = float64(serialNS) / float64(shardedNS)
	}
	return out
}

// benchFlowScale runs one flow-scale point on a fresh serial kernel.
// Lifetimes are scaled to ~3x the expected ramp so real churn overlaps
// the measured window at every flow count.
func benchFlowScale(flows int) FlowScalePoint {
	cfg := ChurnConfig{
		TargetFlows:   flows,
		Clients:       flows / 16384,
		Budget:        int64(flows)*8 + 2_000_000,
		LifetimeXM:    int64(flows)*3 + 200_000,
		LifetimeAlpha: 1.2,
		Seed:          7,
	}
	if cfg.Clients < 8 {
		cfg.Clients = 8
	}
	pt := FlowScalePoint{Flows: flows, Clients: cfg.Clients}

	// Heap growth is measured rig-inclusive: settle the collector, build
	// and ramp, settle again. Anything the run allocated and kept —
	// conns, arenas, table, wheel — is attributed to the flows.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)

	k := sim.New()
	rig := newChurnRig(k, cfg)
	pt.Reached = RunUntilCoarse(k, rig.rampDone(flows), 25_000, cfg.Budget)
	pt.RampCycles = k.Now()
	if !pt.Reached {
		return pt
	}

	runtime.GC()
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc {
		pt.BytesPerFlowHeap = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(flows)
	}

	s := timedRun(k, 400_000)
	if stepped := s.cycles - s.skipped; stepped > 0 {
		pt.NSPerSteppedCycle = float64(s.wallNS) / float64(stepped)
		pt.AllocsPerSteppedCycle = float64(s.mallocs) / float64(stepped)
	}

	fp := telemetry.NewFootprint()
	rig.srv.InstrumentMem(fp, "srv")
	pt.BytesPerFlowAccounted = fp.BytesPerFlow(int64(rig.srv.Conns()))
	st := rig.srv.TableStats()
	pt.TableSlots, pt.TableResizes = st.Slots, st.Resizes
	return pt
}

// RunKernelBench runs every workload in both kernel modes and returns
// the comparison. quick shortens the windows for CI smoke runs. shards
// > 0 additionally runs the sharded sweep benchmark with that many
// workers.
func RunKernelBench(quick bool, shards int) *KernelBench {
	measure := int64(2_000_000) // 8 ms simulated
	if quick {
		measure = 250_000
	}
	workloads := []struct {
		name string
		run  func(skip bool, measure int64) benchSample
	}{
		{"echo-idle-fig13", benchEcho},
		{"wrk-latency-fig12", benchWrkLatency},
		{"bulk-saturated-fig8a", benchBulk},
	}
	out := &KernelBench{
		Schema:     "f4t-kernel-bench/5",
		Quick:      quick,
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	var gc0 runtime.MemStats
	runtime.ReadMemStats(&gc0)
	for _, w := range workloads {
		s := w.run(true, measure)
		n := w.run(false, measure)
		simMS := float64(s.cycles) * sim.CycleNS / 1e6
		e := KernelBenchEntry{
			Name:          w.name,
			SimCycles:     s.cycles,
			SimMS:         simMS,
			SkippedCycles: s.skipped,
			WallNSSkip:    s.wallNS,
			WallNSNoSkip:  n.wallNS,
		}
		if s.cycles > 0 {
			e.SkippedPct = 100 * float64(s.skipped) / float64(s.cycles)
		}
		if simMS > 0 {
			e.NSPerSimMSSkip = float64(s.wallNS) / simMS
			e.NSPerSimMSNoSkip = float64(n.wallNS) / simMS
		}
		if s.wallNS > 0 {
			e.SteppedPerSecSkip = float64(s.cycles-s.skipped) / float64(s.wallNS) * 1e9
			e.Speedup = float64(n.wallNS) / float64(s.wallNS)
		}
		if stepped := s.cycles - s.skipped; stepped > 0 {
			e.NSPerSteppedCycle = float64(s.wallNS) / float64(stepped)
			e.AllocsPerSteppedCycle = float64(s.mallocs) / float64(stepped)
		}
		if n.wallNS > 0 {
			e.SteppedPerSecNoSkip = float64(n.cycles) / float64(n.wallNS) * 1e9
		}
		out.Entries = append(out.Entries, e)
	}

	// Telemetry A/B: best of iters fresh runs per arm (see
	// TelemetryOverhead.Iterations for why single-shot lies).
	iters := 3
	if quick {
		iters = 2
	}
	tl := &TelemetryOverhead{Workload: "echo-idle-fig13", Iterations: iters}
	for i := 0; i < iters; i++ {
		off := benchEcho(true, measure)
		if tl.WallNSOff == 0 || off.wallNS < tl.WallNSOff {
			tl.WallNSOff = off.wallNS
		}
		on, metrics, events := benchEchoTelemetry(measure)
		if tl.WallNSOn == 0 || on.wallNS < tl.WallNSOn {
			tl.WallNSOn = on.wallNS
		}
		tl.Metrics, tl.TraceEvents = metrics, events
	}
	if tl.WallNSOff > 0 {
		tl.OverheadPct = 100 * (float64(tl.WallNSOn) - float64(tl.WallNSOff)) / float64(tl.WallNSOff)
	}
	out.Telemetry = tl

	if shards > 0 {
		out.Sharded = RunShardedSweepBench(quick, shards)
	}

	// The extended Fig 13 flow axis (schema/5): past the 65,536-flow top
	// end of the echo sweep, which a single address pair cannot exceed.
	flowPoints := []int{16384, 65536, 131072, 262144}
	if quick {
		flowPoints = []int{4096, 16384}
	}
	for _, flows := range flowPoints {
		out.FlowScale = append(out.FlowScale, benchFlowScale(flows))
	}

	var gc1 runtime.MemStats
	runtime.ReadMemStats(&gc1)
	out.NumGC = gc1.NumGC - gc0.NumGC
	out.GCPauseTotalNS = gc1.PauseTotalNs - gc0.PauseTotalNs
	return out
}
