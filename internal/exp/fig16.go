package exp

import (
	"fmt"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/engine/fpc"
	"f4t/internal/hostif"
)

// headerPoint runs the §6 header-processing rig: two FtEngines with
// payload transfer suppressed (HeaderOnly), so neither the link nor the
// payload DMA bottlenecks and the header/command path is exposed.
func headerPoint(cores int, cmdBytes int64, roundRobin bool, design string) float64 {
	return headerPointMut(cores, cmdBytes, roundRobin, func(c *engine.Config) {
		switch design {
		case "baseline":
			c.Mode = fpc.ModeStall
			c.StallNum, c.StallDen = 17*250, 322
			c.NumFPCs = 1
			c.Coalesce = false
		case "1fpc":
			c.NumFPCs = 1
			c.Coalesce = false
		case "1fpc-c":
			c.NumFPCs = 1
			c.Coalesce = true
		case "f4t", "":
			c.NumFPCs = 8
			c.Coalesce = true
		default:
			panic("exp: unknown design " + design)
		}
	})
}

// headerPointMut is headerPoint with an arbitrary design mutation.
func headerPointMut(cores int, cmdBytes int64, roundRobin bool, designMut func(*engine.Config)) float64 {
	costs := cpu.DefaultCosts()
	mutate := func(c *engine.Config) {
		c.HeaderOnly = true
		c.CarryBytes = false
		c.CommandBytes = cmdBytes
		if designMut != nil {
			designMut(c)
		}
	}

	p := NewF4TPair(cores, cores, costs, mutate)
	k := p.K
	sink := apps.NewSink(p.MachB.Threads(), 7001)
	k.Register(sink)
	k.Run(2_000)

	var requests interface{ RatePerSecond(int64) float64 }
	var snapshot func(int64)
	if roundRobin {
		rr := apps.NewRoundRobinSender(p.MachA.Threads(), 0, 7001, 128, 16)
		k.Register(rr)
		k.RunUntil(rr.Ready, 10_000_000)
		requests = &rr.Requests
		snapshot = rr.Requests.Snapshot
	} else {
		b := apps.NewBulkSender(p.MachA.Threads(), 0, 7001, 128)
		k.Register(b)
		k.RunUntil(b.Ready, 10_000_000)
		requests = &b.Requests
		snapshot = b.Requests.Snapshot
	}
	k.Run(DefaultWarmup)
	snapshot(k.Now())
	k.Run(DefaultMeasure)
	return requests.RatePerSecond(k.Now())
}

// Fig16a reproduces Figure 16a: header processing rate vs CPU cores for
// 16 B and 8 B commands. With 16 B commands the PCIe command stream
// saturates; 8 B commands lift the ceiling (§6).
func Fig16a(quick bool) *Table {
	return Fig16aWorkers(quick, 1)
}

// Fig16aWorkers is Fig16a with the sweep's independent rigs distributed
// across workers goroutines; the table is identical for any count.
func Fig16aWorkers(quick bool, workers int) *Table {
	t := &Table{
		Title:  "Figure 16a: header processing rate vs cores (bulk, Mrps)",
		Header: []string{"cores", "16B cmds", "8B cmds"},
	}
	coreSteps := []int{1, 2, 4, 8, 16, 24}
	if quick {
		coreSteps = []int{2, 8}
	}
	cmds := []int64{hostif.CommandBytes16, hostif.CommandBytes8}
	rates := make([]float64, len(coreSteps)*len(cmds))
	Sweep(len(rates), workers, func(i int) {
		rates[i] = headerPoint(coreSteps[i/len(cmds)], cmds[i%len(cmds)], false, "f4t")
	})
	for r, cores := range coreSteps {
		t.AddRow(fmt.Sprintf("%d", cores), f1(Mrps(rates[r*2])), f1(Mrps(rates[r*2+1])))
	}
	t.Notes = append(t.Notes,
		"paper: 16 B commands saturate PCIe; 8 B commands scale linearly to ~900 Mrps")
	return t
}

// Fig16b reproduces Figure 16b: header processing rate of the
// intermediate hardware designs with 24 CPU cores, bulk and round-robin.
func Fig16b(quick bool) *Table {
	t := &Table{
		Title:  "Figure 16b: intermediate designs, header rate (Mrps) and speedup over Baseline",
		Header: []string{"design", "bulk Mrps", "bulk ×", "RR Mrps", "RR ×"},
	}
	cores := 24
	if quick {
		cores = 8
	}
	designs := []string{"baseline", "1fpc", "1fpc-c", "f4t"}
	var bulkBase, rrBase float64
	for _, d := range designs {
		bulk := headerPoint(cores, hostif.CommandBytes16, false, d)
		rr := headerPoint(cores, hostif.CommandBytes16, true, d)
		if d == "baseline" {
			bulkBase, rrBase = bulk, rr
		}
		t.AddRow(d, f1(Mrps(bulk)), f1(bulk/bulkBase), f1(Mrps(rr)), f1(rr/rrBase))
	}
	t.Notes = append(t.Notes,
		"paper: 1FPC 8.6×/8.4×, 1FPC-C 62.3×/8.6×, F4T 63.1×/71.3× over Baseline (bulk/RR)")
	return t
}
