package exp

import "testing"

func TestFig2Shape(t *testing.T) {
	tab := Fig2(true)
	t.Log("\n" + tab.String())
	// The stall-free design must outpace the stalling one by roughly the
	// ratio of their event rates (100M vs ~18.9M ≈ 5.3×).
	// Rows: [size, wRMW, woRMW, gap].
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestFig15Shape(t *testing.T) {
	tab := Fig15(true)
	t.Log("\n" + tab.String())
}

func TestAlgorithmTable(t *testing.T) {
	tab := AlgorithmTable(true)
	t.Log("\n" + tab.String())
}
