package exp

import (
	"fmt"
	"sort"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/host"
	"f4t/internal/sim"
)

// NginxResult is one web-server measurement.
type NginxResult struct {
	Krps        float64 // responses per second, thousands
	MedianNS    int64   // client-observed median latency
	P99NS       int64   // client-observed 99th percentile latency
	Breakdown   map[string]float64 // server CPU utilization by category
}

// NginxPoint runs the §5.2 workload: an HTTP server (Nginx stand-in) on
// the given stack with serverCores, loaded by a wrk-style generator on a
// Linux client with enough cores (16) to stay out of the way. Requests
// are 128 B, responses 256 B (HTTP header + HTML payload, §5.2).
func NginxPoint(stackKind string, serverCores, totalFlows int) NginxResult {
	return NginxPointWindow(stackKind, serverCores, totalFlows, DefaultMeasure*2)
}

// NginxPointWindow is NginxPoint with an explicit measurement window;
// the latency experiment (Fig 12) uses a long window so the rare
// kernel stalls that form the Linux tail are represented.
func NginxPointWindow(stackKind string, serverCores, totalFlows int, measure int64) NginxResult {
	costs := cpu.DefaultCosts()
	const clientCores = 16
	const port = 80
	perThread := totalFlows / clientCores
	if perThread == 0 {
		perThread = 1
	}

	var k *sim.Kernel
	var serverThreads []host.Thread
	var serverPool *cpu.Pool
	var clientThreads []host.Thread

	switch stackKind {
	case "linux":
		p := NewLinuxPair(clientCores, serverCores, costs)
		k = p.K
		serverThreads = p.MachB.Threads()
		serverPool = p.MachB.Pool()
		clientThreads = p.MachA.Threads()
	case "f4t":
		// Server on F4T; client machine remains a wrk box. Model the
		// client as an F4T host too so its 16 cores never bottleneck
		// (the paper's client load generation was not the limiter).
		p := NewF4TPair(clientCores, serverCores, costs, func(c *engine.Config) {
			c.CarryBytes = false
		})
		k = p.K
		serverThreads = p.MachB.Threads()
		serverPool = p.MachB.Pool()
		clientThreads = p.MachA.Threads()
	default:
		panic("exp: unknown stack " + stackKind)
	}

	srv := apps.NewHTTPServer(serverThreads, port, 128, 256, costs)
	k.Register(srv)
	k.Run(2_000)
	wrk := apps.NewWrk(k, clientThreads, 0, port, 128, 256, perThread, costs)
	k.Register(wrk)

	RunUntilCoarse(k, wrk.Ready, 20_000, 20_000_000)
	k.Run(DefaultWarmup)
	serverPool.ResetAccounting()
	wrk.Responses.Snapshot(k.Now())
	wrk.Latency.Reset()
	k.Run(measure)

	// Aggregate the server breakdown over its cores.
	agg := map[string]float64{}
	for _, core := range serverPool.Cores {
		for cat, f := range core.Breakdown() {
			agg[cat] += f / float64(len(serverPool.Cores))
		}
	}
	return NginxResult{
		Krps:      wrk.Responses.RatePerSecond(k.Now()) / 1e3,
		MedianNS:  wrk.Latency.Median(),
		P99NS:     wrk.Latency.P99(),
		Breakdown: agg,
	}
}

// Fig10 reproduces Figure 10: Nginx request processing rate vs number
// of connections, for 1–4 server cores, Linux vs F4T.
func Fig10(quick bool) *Table {
	t := &Table{
		Title:  "Figure 10: Nginx request rate (Krps)",
		Header: []string{"stack", "cores", "16 flows", "64 flows", "256 flows"},
	}
	flowSteps := []int{16, 64, 256}
	coreSteps := []int{1, 2, 4}
	if quick {
		flowSteps = []int{64}
		coreSteps = []int{1}
	}
	for _, stackKind := range []string{"linux", "f4t"} {
		for _, cores := range coreSteps {
			row := []string{stackKind, fmt.Sprintf("%d", cores)}
			for _, flows := range flowSteps {
				res := NginxPoint(stackKind, cores, flows)
				row = append(row, f1(res.Krps))
			}
			for len(row) < len(t.Header) {
				row = append(row, "-")
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"paper: F4T reaches 2.6–2.8× the Linux request rate at the 256-flow saturation point")
	return t
}

// Fig11 reproduces Figure 11: the CPU utilization breakdown of Nginx
// with one server core and 64 flows, Linux vs F4T. F4T removes the TCP
// cycles entirely; the residual kernel time is vfs_read (§5.2).
func Fig11() *Table {
	t := &Table{
		Title:  "Figure 11: Nginx CPU utilization breakdown (1 core, 64 flows)",
		Header: []string{"stack", "category", "share"},
	}
	var appLinux, appF4T float64
	for _, stackKind := range []string{"linux", "f4t"} {
		res := NginxPoint(stackKind, 1, 64)
		keys := make([]string, 0, len(res.Breakdown))
		for cat := range res.Breakdown {
			keys = append(keys, cat)
		}
		sort.Strings(keys)
		for _, cat := range keys {
			t.AddRow(stackKind, cat, fmt.Sprintf("%.1f%%", res.Breakdown[cat]*100))
		}
		if stackKind == "linux" {
			appLinux = res.Breakdown["app"]
		} else {
			appF4T = res.Breakdown["app"]
		}
	}
	if appLinux > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("app-cycle ratio F4T/Linux = %.2f (paper: 2.8×)", appF4T/appLinux))
	}
	t.Notes = append(t.Notes, "paper: F4T removes all TCP cycles; remaining kernel time is vfs_read")
	return t
}

// Fig12 reproduces Figure 12: Nginx median and 99th percentile latency
// (1 server core, 64 flows), Linux vs F4T.
func Fig12() *Table {
	t := &Table{
		Title:  "Figure 12: Nginx latency (1 core, 64 flows)",
		Header: []string{"stack", "median us", "p99 us"},
	}
	var medL, p99L, medF, p99F float64
	for _, stackKind := range []string{"linux", "f4t"} {
		res := NginxPointWindow(stackKind, 1, 64, 25_000_000)
		med := float64(res.MedianNS) / 1e3
		p99 := float64(res.P99NS) / 1e3
		t.AddRow(stackKind, f1(med), f1(p99))
		if stackKind == "linux" {
			medL, p99L = med, p99
		} else {
			medF, p99F = med, p99
		}
	}
	if medF > 0 && p99F > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("ratios Linux/F4T: median %.1f×, p99 %.1f× (paper: 3.7× and 26×)", medL/medF, p99L/p99F))
	}
	return t
}

// Fig1 reproduces Figure 1: Nginx on the Linux stack — the motivating
// measurement. (a) the CPU breakdown showing the TCP share; (b) the
// request rate vs core count, far from saturating 100 Gbps.
func Fig1(quick bool) *Table {
	t := &Table{
		Title:  "Figure 1: Nginx on Linux — CPU share of TCP and request rate",
		Header: []string{"cores", "Krps", "app", "tcp", "kernel-other", "idle"},
	}
	coreSteps := []int{1, 2, 4, 8}
	if quick {
		coreSteps = []int{1}
	}
	for _, cores := range coreSteps {
		res := NginxPoint("linux", cores, 256)
		t.AddRow(fmt.Sprintf("%d", cores), f1(res.Krps),
			fmt.Sprintf("%.0f%%", res.Breakdown["app"]*100),
			fmt.Sprintf("%.0f%%", res.Breakdown["tcp"]*100),
			fmt.Sprintf("%.0f%%", res.Breakdown["kernel-other"]*100),
			fmt.Sprintf("%.0f%%", res.Breakdown["idle"]*100))
	}
	t.Notes = append(t.Notes,
		"paper: the TCP stack consumes 37% of total CPU cycles; Nginx achieves only a few Mrps")
	return t
}
