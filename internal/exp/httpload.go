package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"f4t/internal/engine"
	"f4t/internal/netapi"
	"f4t/internal/netsim"
	"f4t/internal/pcap"
	"f4t/internal/sim"
	"f4t/internal/telemetry"
	"f4t/internal/wire"
)

// HTTPLoadConfig parameterizes the httpload experiment: an UNMODIFIED
// net/http server and client talking across the simulated network
// through the netapi facade, both sides engine-backed.
type HTTPLoadConfig struct {
	Requests int    // sequential GETs the client issues
	BodyLen  int    // response body size per request
	EndCycle int64  // run budget; the digest is normalized to this cycle
	PCAPPath string // when non-empty, write the link capture here
}

// HTTPLoadResult is the outcome of one httpload run.
type HTTPLoadResult struct {
	Requests  int    // requests that completed with a verified body
	BodyBytes int64  // total HTTP payload bytes received
	DoneCycle int64  // cycle at which the client finished (coarse grid)
	EndCycle  int64  // cycle the digest was taken at
	Digest    string // fabric-comparable run fingerprint
	Frames    int    // captured frames (0 when no capture requested)
	Reg       *telemetry.Registry
}

// httpLoadNetapiOptions widens the facade settle windows the same way
// the netapi test suite does: the differential acceptance test compares
// digests bit-for-bit, so a goroutine descheduled by a loaded machine
// must not slip an op past its settle.
func httpLoadNetapiOptions(ip wire.Addr) netapi.Options {
	return netapi.Options{
		LocalIP:           ip,
		SettleQuantum:     200 * time.Microsecond,
		SettleQuietRounds: 5,
		SettleBusyWait:    5 * time.Millisecond,
	}
}

// HTTPLoadOn runs the httpload workload on any fabric. The rig is two
// engines with the facade owning their single channel each (no
// F4TMachine — it would steal the completions the facade polls for),
// construction order fixed so every registration slot matches across
// serial, noskip and sharded fabrics.
func HTTPLoadOn(f sim.Fabric, cfg HTTPLoadConfig) (*HTTPLoadResult, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 8
	}
	if cfg.BodyLen <= 0 {
		cfg.BodyLen = 16 << 10
	}
	if cfg.EndCycle <= 0 {
		cfg.EndCycle = 200_000_000
	}

	kA := f.IslandKernel(IslandA)
	kB := f.IslandKernel(IslandB)
	link := netsim.NewLinkOn(f, IslandA, IslandB, LinkGbps, LinkPropNS, 1234)

	var capture *pcap.Capture
	if cfg.PCAPPath != "" {
		capture = pcap.New()
		capture.TapLink(link, "link0")
	}

	ecfg := engine.DefaultConfig()
	ecfg.Channels = 1
	ecfg.CarryBytes = true
	cfgA := ecfg
	cfgA.IP, cfgA.MAC, cfgA.Seed = AddrA, MACA, 101
	cfgB := ecfg
	cfgB.IP, cfgB.MAC, cfgB.Seed = AddrB, MACB, 202
	engA := engine.New(kA, cfgA, link.AtoB.Send)
	engB := engine.New(kB, cfgB, link.BtoA.Send)
	link.AtoB.SetSink(engB.DeliverPacket)
	link.BtoA.SetSink(engA.DeliverPacket)
	engA.LearnPeer(AddrB, MACB)
	engB.LearnPeer(AddrA, MACA)
	f.RegisterOn(IslandA, engA)
	f.RegisterOn(IslandB, engB)

	stA := netapi.NewEngineStack(f, IslandA, engA, 0, httpLoadNetapiOptions(AddrA))
	stB := netapi.NewEngineStack(f, IslandB, engB, 0, httpLoadNetapiOptions(AddrB))
	defer func() {
		stA.Shutdown()
		stB.Shutdown()
		stA.Wait()
		stB.Wait()
	}()

	res := &HTTPLoadResult{Reg: telemetry.NewRegistry()}
	engA.Instrument(res.Reg, "eng_a")
	engB.Instrument(res.Reg, "eng_b")
	link.Instrument(res.Reg, "link")

	var gotReqs, gotBytes atomic.Int64
	res.Reg.Gauge("http.requests", gotReqs.Load)
	res.Reg.Gauge("http.bytes", gotBytes.Load)

	body := make([]byte, cfg.BodyLen)
	for i := range body {
		body[i] = byte(i)*31 + 5
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/data", func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	})

	var done atomic.Bool
	var workErr error
	sum := sha256.New()

	stB.Go(func() {
		ln, err := stB.Listen(80)
		if err != nil {
			workErr = fmt.Errorf("listen: %w", err)
			done.Store(true)
			return
		}
		http.Serve(ln, mux)
	})
	stA.Go(func() {
		defer done.Store(true)
		tr := &http.Transport{DialContext: stA.DialContext}
		client := &http.Client{Transport: tr}
		for i := 0; i < cfg.Requests; i++ {
			resp, err := client.Get("http://10.0.0.2:80/data")
			if err != nil {
				workErr = fmt.Errorf("get %d: %w", i, err)
				return
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				workErr = fmt.Errorf("body %d: %w", i, err)
				return
			}
			if len(got) != len(body) {
				workErr = fmt.Errorf("get %d: body %d bytes, want %d", i, len(got), len(body))
				return
			}
			sum.Write(got)
			gotReqs.Add(1)
			gotBytes.Add(int64(len(got)))
		}
		// Orderly teardown: the idle-close ops chain off the awake
		// client goroutine, so the FIN exchange lands inside settles
		// and the digest stays fabric-independent.
		tr.CloseIdleConnections()
	})

	stB.Settle()
	stA.Settle()
	if !RunUntilCoarse(f, done.Load, 20_000, cfg.EndCycle) {
		return res, fmt.Errorf("httpload: %d of %d requests after %d cycles",
			gotReqs.Load(), cfg.Requests, cfg.EndCycle)
	}
	if workErr != nil {
		return res, workErr
	}
	res.Requests = int(gotReqs.Load())
	res.BodyBytes = gotBytes.Load()
	res.DoneCycle = f.Now()

	// Normalize every fabric to the same end cycle so digests compare
	// like with like (retransmit timers etc. keep ticking after the
	// workload is done).
	if rem := cfg.EndCycle - f.Now(); rem > 0 {
		f.Run(rem)
	}
	res.EndCycle = f.Now()
	res.Digest = fmt.Sprintf("end=%d reqs=%d ab=%d/%dB ba=%d/%dB drops=%d/%d sha=%s",
		res.EndCycle, res.Requests,
		link.AtoB.SentPkts, link.AtoB.SentBytes,
		link.BtoA.SentPkts, link.BtoA.SentBytes,
		link.AtoB.DroppedPkts, link.BtoA.DroppedPkts,
		hex.EncodeToString(sum.Sum(nil)))

	if capture != nil {
		res.Frames = capture.Frames()
		if err := capture.WriteFile(cfg.PCAPPath); err != nil {
			return res, fmt.Errorf("httpload: write pcap: %w", err)
		}
	}
	return res, nil
}

// httpLoadPCAP is the capture destination installed by the f4tbench
// -pcap flag (empty = no capture).
var httpLoadPCAP string

// SetHTTPLoadPCAP routes the next HTTPLoad run's link capture to path.
func SetHTTPLoadPCAP(path string) { httpLoadPCAP = path }

// HTTPLoad runs the httpload experiment on a serial kernel and renders
// the result table (the f4tbench -exp httpload entry).
func HTTPLoad(quick bool) *Table {
	cfg := HTTPLoadConfig{Requests: 12, BodyLen: 64 << 10, EndCycle: 400_000_000, PCAPPath: httpLoadPCAP}
	if quick {
		cfg.Requests, cfg.BodyLen, cfg.EndCycle = 4, 16<<10, 120_000_000
	}
	res, err := HTTPLoadOn(sim.New(), cfg)

	tab := &Table{
		Title:  "httpload: unmodified net/http over the netapi socket facade",
		Header: []string{"metric", "value"},
	}
	if err != nil {
		tab.Notes = append(tab.Notes, fmt.Sprintf("FAILED: %v", err))
		return tab
	}
	doneNS := res.DoneCycle * sim.CycleNS
	tab.AddRow("requests completed", fmt.Sprintf("%d", res.Requests))
	tab.AddRow("body bytes / request", fmt.Sprintf("%d", cfg.BodyLen))
	tab.AddRow("HTTP payload total", fmt.Sprintf("%d B", res.BodyBytes))
	tab.AddRow("completion time", fmt.Sprintf("%.3f ms (%d cycles)", float64(doneNS)/1e6, res.DoneCycle))
	tab.AddRow("HTTP goodput", fmt.Sprintf("%.2f Gbps", float64(res.BodyBytes*8)/float64(doneNS)))
	for _, s := range res.Reg.Snapshot() {
		switch s.Name {
		case "link.a_to_b.sent_pkts", "link.a_to_b.sent_bytes",
			"link.b_to_a.sent_pkts", "link.b_to_a.sent_bytes",
			"link.a_to_b.dropped_pkts", "link.b_to_a.dropped_pkts":
			tab.AddRow(s.Name, fmt.Sprintf("%d", s.Value))
		}
	}
	tab.AddRow("digest", res.Digest)
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("telemetry: %d metrics registered across engines, link and app", res.Reg.Len()),
		"server and client are stock net/http; only the Transport DialContext and the Listener are facade objects")
	if cfg.PCAPPath != "" {
		tab.Notes = append(tab.Notes, fmt.Sprintf("pcap: %d frames written to %s", res.Frames, cfg.PCAPPath))
	}
	return tab
}
