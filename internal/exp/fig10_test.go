package exp

import "testing"

func TestNginxPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run")
	}
	for _, s := range []string{"linux", "f4t"} {
		res := NginxPoint(s, 1, 64)
		t.Logf("%-6s 1 core 64 flows: %.1f Krps med=%.1fus p99=%.1fus breakdown=%v",
			s, res.Krps, float64(res.MedianNS)/1e3, float64(res.P99NS)/1e3, res.Breakdown)
	}
}
