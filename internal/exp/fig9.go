package exp

import "fmt"

// Fig9 reproduces Figure 9: F4T bulk transfer goodput (a) and request
// rate (b) across request sizes and core counts. Small requests are
// PCIe-bound (every 16 B request needs a 16 B command plus a 16 B
// payload DMA, §5.1).
func Fig9(quick bool) *Table {
	return Fig9Workers(quick, 1)
}

// Fig9Workers is Fig9 with the sweep's independent rigs distributed
// across workers goroutines; the table is identical for any count.
func Fig9Workers(quick bool, workers int) *Table {
	t := &Table{
		Title:  "Figure 9: F4T bulk transfer with various request sizes",
		Header: []string{"req B", "cores", "Gbps", "Mrps"},
	}
	sizes := []int{16, 32, 64, 128, 256, 512, 1024}
	coreSteps := []int{2, 8, 16}
	if quick {
		sizes = []int{16, 128, 1024}
		coreSteps = []int{8}
	}
	results := make([]TransferResult, len(sizes)*len(coreSteps))
	Sweep(len(results), workers, func(i int) {
		size, cores := sizes[i/len(coreSteps)], coreSteps[i%len(coreSteps)]
		results[i] = TransferPoint("f4t", false, size, cores, nil)
	})
	for i, res := range results {
		size, cores := sizes[i/len(coreSteps)], coreSteps[i%len(coreSteps)]
		t.AddRow(fmt.Sprintf("%d", size), fmt.Sprintf("%d", cores), f1(res.GoodputGbps), f1(res.Mrps))
	}
	t.Notes = append(t.Notes,
		"paper: 16 B requests with 16 cores reach 50.7 Gbps / 396 Mrps, bounded by PCIe bandwidth",
		"larger requests saturate the 100 Gbps link instead")
	return t
}
