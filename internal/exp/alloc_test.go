package exp

import (
	"testing"

	"f4t/internal/apps"
	"f4t/internal/cpu"
)

// bulkRig builds the saturated bulk-transfer pair (the Fig 8a shape) and
// runs it past connection setup into steady state.
func bulkRig() (*F4TPair, *apps.BulkSender) {
	p := NewF4TPair(2, 2, cpu.DefaultCosts(), nil)
	sink := apps.NewSink(p.MachB.Threads(), 7003)
	p.K.Register(sink)
	p.K.Run(2_000)
	bs := apps.NewBulkSender(p.MachA.Threads(), 0, 7003, 1460)
	p.K.Register(bs)
	p.K.RunUntil(bs.Ready, 1_000_000)
	return p, bs
}

// BenchmarkBulkSaturated is the wall-clock figure of merit for the
// event-driven kernel work: a full rig build plus 500k saturated cycles.
// Run with -benchmem; the alloc count covers rig construction too, so
// the steady-state guard is TestBulkSteadyStateAllocs below.
func BenchmarkBulkSaturated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, _ := bulkRig()
		p.K.Run(500_000)
	}
}

// BenchmarkBulkSteady measures the marginal cost of one saturated cycle
// with rig construction and warmup excluded — the number schema/4's
// ns_per_stepped_cycle tracks.
func BenchmarkBulkSteady(b *testing.B) {
	p, _ := bulkRig()
	p.K.Run(1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.K.Run(1_000)
	}
}

// TestBulkSteadyStateAllocs pins the zero-allocation packet path: once a
// saturated bulk flow is warmed up (queues grown, pools primed, arenas
// sized), stepping the simulation must not allocate per cycle. The bound
// is per 10k-cycle window, so it tolerates a rare amortized growth event
// while failing loudly if any per-segment or per-cycle allocation sneaks
// back into the datapath, engine, hostif, softstack, or kernel timers.
func TestBulkSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard needs a warmed rig")
	}
	p, _ := bulkRig()
	p.K.Run(1_000_000) // warm: pools primed, queues at steady depth

	avg := testing.AllocsPerRun(20, func() {
		p.K.Run(10_000)
	})
	t.Logf("steady-state allocs per 10k-cycle window: %.2f", avg)
	// ~7 segments/10k cycles/direction at 1460 B over 100G — anything
	// near 1 alloc per window means a hot path regressed.
	if avg > 8 {
		t.Fatalf("steady-state bulk run allocates %.1f objects per 10k cycles, want ~0", avg)
	}
}
