package refsim

import (
	"strings"
	"testing"
)

func run(t *testing.T, alg string, drop int64) []Sample {
	t.Helper()
	s, err := Run(Params{
		Alg: alg, MSS: 1460, RTTns: 3000, RateBps: 100e9,
		DropEvery: drop, DurationNS: 20_000_000, SampleNS: 100_000,
	})
	if err != nil {
		t.Fatalf("Run(%s): %v", alg, err)
	}
	return s
}

func epochs(s []Sample) int {
	n := 0
	for i := 1; i < len(s); i++ {
		if s[i].Cwnd < 0.8*s[i-1].Cwnd {
			n++
		}
	}
	return n
}

func TestUnknownAlgorithmFailsFast(t *testing.T) {
	for _, alg := range []string{"", "reno", "bbr2", "newreno "} {
		s, err := Run(Params{Alg: alg, MSS: 1460, RTTns: 3000, RateBps: 100e9,
			DurationNS: 1_000_000, SampleNS: 100_000})
		if err == nil {
			t.Fatalf("Run(%q) silently succeeded with %d samples", alg, len(s))
		}
		if !strings.Contains(err.Error(), "unknown algorithm") {
			t.Fatalf("Run(%q) error = %v", alg, err)
		}
	}
}

func TestLosslessGrowsMonotonically(t *testing.T) {
	s := run(t, "newreno", 0)
	for i := 1; i < len(s); i++ {
		if s[i].Cwnd < s[i-1].Cwnd {
			t.Fatalf("cwnd shrank without loss at sample %d", i)
		}
	}
}

func TestPeriodicLossMakesSawtooth(t *testing.T) {
	for _, alg := range []string{"newreno", "cubic"} {
		s := run(t, alg, 2000)
		if e := epochs(s); e < 3 {
			t.Errorf("%s: only %d loss epochs — no sawtooth", alg, e)
		}
		// The window must stay bounded (the sawtooth regulates it).
		for _, v := range s {
			if v.Cwnd > 512*1460*100 {
				t.Errorf("%s: cwnd diverged to %.0f", alg, v.Cwnd)
			}
		}
	}
}

func TestCubicDecreaseGentlerThanReno(t *testing.T) {
	// CUBIC's beta=0.7 vs Reno's 0.5: post-loss windows retain more.
	reno := run(t, "newreno", 3000)
	cubic := run(t, "cubic", 3000)
	mean := func(s []Sample) float64 {
		var x float64
		for _, v := range s {
			x += v.Cwnd
		}
		return x / float64(len(s))
	}
	if mean(cubic) <= mean(reno) {
		t.Errorf("cubic mean cwnd %.0f ≤ reno %.0f — beta difference lost", mean(cubic), mean(reno))
	}
}

func TestVegasConvergesNearBDP(t *testing.T) {
	// Vegas holds a 2–4 segment standing queue: the window must settle
	// near the BDP (~26 segments for these parameters) instead of either
	// diverging or collapsing — the character newreno cannot show.
	s := run(t, "vegas", 0)
	const bdpBytes = 100e9 / 8 * 3000e-9 // 37500
	last := s[len(s)-1].Cwnd
	if last < bdpBytes || last > bdpBytes+8*1460 {
		t.Fatalf("vegas settled at %.0f bytes, want within [BDP, BDP+8 MSS] of %.0f", last, bdpBytes)
	}
	// And it must hold there, not oscillate: the back half of the trace
	// stays in the same band.
	for _, v := range s[len(s)/2:] {
		if v.Cwnd < bdpBytes-2*1460 || v.Cwnd > bdpBytes+8*1460 {
			t.Fatalf("vegas wandered to %.0f bytes in steady state", v.Cwnd)
		}
	}
}

func TestDCTCPRegulatesOnMarks(t *testing.T) {
	// No packet loss at all, yet the window must stay bounded near the
	// BDP: the mark signal alone regulates it.
	s := run(t, "dctcp", 0)
	const bdpBytes = 100e9 / 8 * 3000e-9
	for _, v := range s[len(s)/4:] {
		if v.Cwnd > 4*bdpBytes {
			t.Fatalf("dctcp diverged to %.0f bytes without marks biting", v.Cwnd)
		}
	}
	// The alpha-proportional decrease is gentler than halving but must
	// still produce visible window reductions.
	if epochs(s) == 0 && s[len(s)-1].Cwnd > 2*bdpBytes {
		t.Fatal("dctcp neither cut its window nor converged")
	}
}

func TestBBRProbeRTTDips(t *testing.T) {
	// 20 ms at a 10 ms min-RTT window: the trace must show the periodic
	// ProbeRTT collapse to 4 segments and the restore after 200 us.
	s := run(t, "bbr", 0)
	sawFloor := false
	var peak float64
	for _, v := range s {
		if v.Cwnd > peak {
			peak = v.Cwnd
		}
		if v.Cwnd <= 4*1460 {
			sawFloor = true
		}
	}
	if peak < 20*1460 {
		t.Fatalf("bbr never filled the pipe: peak %.0f bytes", peak)
	}
	// The window must stay anchored to gain×BDP, not run away like
	// loss-blind slow start would.
	const bdpBytes = 100e9 / 8 * 3000e-9
	for _, v := range s[len(s)/4:] {
		if v.Cwnd > 2*bdpBytes+10*1460 {
			t.Fatalf("bbr cwnd %.0f bytes unanchored from BDP %.0f", v.Cwnd, bdpBytes)
		}
	}
	if !sawFloor {
		t.Fatal("no ProbeRTT dip observed in 20 ms")
	}
}

func TestBBRSurvivesPeriodicLoss(t *testing.T) {
	// BBR has no multiplicative decrease: under the Fig-14 drop schedule
	// its mean window must exceed newreno's, and it must not collapse.
	bbr := run(t, "bbr", 2000)
	reno := run(t, "newreno", 2000)
	mean := func(s []Sample) float64 {
		var x float64
		for _, v := range s {
			x += v.Cwnd
		}
		return x / float64(len(s))
	}
	if mean(bbr) <= mean(reno) {
		t.Errorf("bbr mean cwnd %.0f ≤ reno %.0f under loss — model-based character lost", mean(bbr), mean(reno))
	}
}

func TestSamplingCadence(t *testing.T) {
	s := run(t, "newreno", 0)
	if len(s) < 190 || len(s) > 210 {
		t.Fatalf("%d samples for 20 ms at 100 us cadence", len(s))
	}
}
