package refsim

import "testing"

func run(alg string, drop int64) []Sample {
	return Run(Params{
		Alg: alg, MSS: 1460, RTTns: 3000, RateBps: 100e9,
		DropEvery: drop, DurationNS: 20_000_000, SampleNS: 100_000,
	})
}

func epochs(s []Sample) int {
	n := 0
	for i := 1; i < len(s); i++ {
		if s[i].Cwnd < 0.8*s[i-1].Cwnd {
			n++
		}
	}
	return n
}

func TestLosslessGrowsMonotonically(t *testing.T) {
	s := run("newreno", 0)
	for i := 1; i < len(s); i++ {
		if s[i].Cwnd < s[i-1].Cwnd {
			t.Fatalf("cwnd shrank without loss at sample %d", i)
		}
	}
}

func TestPeriodicLossMakesSawtooth(t *testing.T) {
	for _, alg := range []string{"newreno", "cubic"} {
		s := run(alg, 2000)
		if e := epochs(s); e < 3 {
			t.Errorf("%s: only %d loss epochs — no sawtooth", alg, e)
		}
		// The window must stay bounded (the sawtooth regulates it).
		for _, v := range s {
			if v.Cwnd > 512*1460*100 {
				t.Errorf("%s: cwnd diverged to %.0f", alg, v.Cwnd)
			}
		}
	}
}

func TestCubicDecreaseGentlerThanReno(t *testing.T) {
	// CUBIC's beta=0.7 vs Reno's 0.5: post-loss windows retain more.
	reno := run("newreno", 3000)
	cubic := run("cubic", 3000)
	mean := func(s []Sample) float64 {
		var x float64
		for _, v := range s {
			x += v.Cwnd
		}
		return x / float64(len(s))
	}
	if mean(cubic) <= mean(reno) {
		t.Errorf("cubic mean cwnd %.0f ≤ reno %.0f — beta difference lost", mean(cubic), mean(reno))
	}
}

func TestSamplingCadence(t *testing.T) {
	s := run("newreno", 0)
	if len(s) < 190 || len(s) > 210 {
		t.Fatalf("%d samples for 20 ms at 100 us cadence", len(s))
	}
}
