// Package refsim is the independent reference simulator that plays NS3's
// role in Figure 14: a deliberately separate, packet-level, single-flow
// TCP congestion model written directly from the RFC prose (floating
// point arithmetic, no shared code with the F4T protocol engine), so
// agreement between the two implementations is evidence, not tautology.
package refsim

import "math"

// Params configures one bulk-transfer run.
type Params struct {
	Alg       string  // "newreno" or "cubic"
	MSS       int     // payload bytes per segment
	RTTns     int64   // base round-trip time
	RateBps   float64 // bottleneck rate, bits/s
	DropEvery int64   // drop every Nth data packet (0 = none)
	DurationNS int64
	SampleNS   int64 // cwnd sampling period
}

// Sample is one cwnd observation.
type Sample struct {
	AtNS int64
	Cwnd float64 // bytes
}

// state is the sender model.
type state struct {
	p        Params
	now      int64
	cwnd     float64 // segments
	ssthresh float64
	inFlight int64
	sent     int64 // data packets sent (for the drop pattern)
	dupAcks  int
	inRecovery bool
	recoverPoint int64 // packet number that ends recovery

	// CUBIC state.
	wMax       float64
	epochStart int64

	nextSeq   int64 // next packet number to send
	highestAcked int64
	lost      map[int64]bool

	samples []Sample
}

// Run simulates the transfer and returns the cwnd trace.
func Run(p Params) []Sample {
	if p.MSS == 0 {
		p.MSS = 1460
	}
	s := &state{
		p:        p,
		cwnd:     10,
		ssthresh: math.MaxFloat64 / 4,
		lost:     make(map[int64]bool),
		highestAcked: -1,
	}
	packetNS := float64(p.MSS*8) / p.RateBps * 1e9

	nextSample := int64(0)
	for s.now < p.DurationNS {
		if s.now >= nextSample {
			s.samples = append(s.samples, Sample{AtNS: s.now, Cwnd: s.cwnd * float64(p.MSS)})
			nextSample += p.SampleNS
		}
		// Send while the window allows.
		for float64(s.inFlight) < s.cwnd {
			s.sent++
			if p.DropEvery > 0 && s.sent%p.DropEvery == 0 {
				s.lost[s.nextSeq] = true
			}
			s.nextSeq++
			s.inFlight++
		}
		// Advance one packet service time; one ACK (or loss signal)
		// returns per serviced packet, RTT-delayed. This fluid-ish
		// treatment keeps the model simple while preserving the
		// window dynamics the figure compares.
		s.now += int64(packetNS)
		s.ackOne()
	}
	return s.samples
}

// ackOne models the arrival of feedback for the oldest outstanding
// packet.
func (s *state) ackOne() {
	if s.inFlight == 0 {
		return
	}
	pkt := s.highestAcked + 1
	if s.lost[pkt] {
		// Three duplicate ACKs arrive as later packets are delivered.
		s.dupAcks++
		if s.dupAcks >= 3 && !s.inRecovery {
			s.inRecovery = true
			s.recoverPoint = s.nextSeq
			s.enterLoss()
			delete(s.lost, pkt) // fast retransmit repairs it one RTT later
		}
		if s.dupAcks > 3 {
			// Retransmission arrived: the cumulative ACK jumps.
			delete(s.lost, pkt)
			s.dupAcks = 0
		}
		return
	}
	s.highestAcked = pkt
	s.inFlight--
	s.dupAcks = 0
	if s.inRecovery && pkt >= s.recoverPoint {
		s.inRecovery = false
		s.cwnd = s.ssthresh
	}
	if !s.inRecovery {
		s.grow()
	}
}

// enterLoss applies the multiplicative decrease of the configured
// algorithm.
func (s *state) enterLoss() {
	switch s.p.Alg {
	case "cubic":
		s.wMax = s.cwnd
		s.cwnd *= 0.7
		s.ssthresh = s.cwnd
		s.epochStart = 0
	default: // newreno
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.cwnd = s.ssthresh
	}
	if s.cwnd < 2 {
		s.cwnd = 2
	}
}

// grow applies per-ACK window growth.
func (s *state) grow() {
	if s.cwnd < s.ssthresh {
		s.cwnd++
		return
	}
	switch s.p.Alg {
	case "cubic":
		if s.epochStart == 0 {
			s.epochStart = s.now
			if s.wMax < s.cwnd {
				s.wMax = s.cwnd
			}
		}
		const c = 0.4
		k := math.Cbrt(s.wMax * 0.3 / c) // seconds
		t := float64(s.now-s.epochStart)/1e9 + float64(s.p.RTTns)/1e9
		target := s.wMax + c*math.Pow(t-k, 3)
		if target > s.cwnd {
			s.cwnd += (target - s.cwnd) / s.cwnd
		} else {
			s.cwnd += 0.01 / s.cwnd
		}
	default: // newreno congestion avoidance
		s.cwnd += 1 / s.cwnd
	}
}
