// Package refsim is the independent reference simulator that plays NS3's
// role in Figure 14: a deliberately separate, packet-level, single-flow
// TCP congestion model written directly from the RFC prose (floating
// point arithmetic, no shared code with the F4T protocol engine), so
// agreement between the two implementations is evidence, not tautology.
//
// Beyond the loss-driven newreno/cubic models the witness covers the
// delay-driven (vegas), mark-driven (dctcp) and model-driven (bbr)
// programs: the fluid loop derives a queueing-delay RTT and an ECN mark
// signal from the amount in flight beyond the path's BDP, which is the
// minimal bottleneck model those algorithms need to express their
// character.
package refsim

import (
	"fmt"
	"math"
)

// Params configures one bulk-transfer run.
type Params struct {
	Alg       string  // one of Algorithms
	MSS       int     // payload bytes per segment
	RTTns     int64   // base round-trip time
	RateBps   float64 // bottleneck rate, bits/s
	DropEvery int64   // drop every Nth data packet (0 = none)
	DurationNS int64
	SampleNS   int64 // cwnd sampling period
}

// Algorithms lists the congestion models the witness implements.
var Algorithms = []string{"newreno", "cubic", "vegas", "dctcp", "bbr"}

// Sample is one cwnd observation.
type Sample struct {
	AtNS int64
	Cwnd float64 // bytes
}

// state is the sender model.
type state struct {
	p        Params
	now      int64
	cwnd     float64 // segments
	ssthresh float64
	inFlight int64
	sent     int64 // data packets sent (for the drop pattern)
	dupAcks  int
	inRecovery bool
	recoverPoint int64 // packet number that ends recovery

	packetNS float64 // bottleneck service time per segment
	bdpPkts  float64 // path bandwidth-delay product, segments

	// CUBIC state.
	wMax       float64
	epochStart int64

	// Vegas state.
	vegasFrozen bool // slow start ended by the gamma rule

	// DCTCP state (RFC 8257 window-fraction EWMA).
	dctcpAlpha  float64
	winAcked    float64
	winMarked   float64
	winTarget   float64 // acks per observation window, latched at its start

	// BBR state: the float mirror of internal/cc's integer machine.
	bbrMode       int
	bbrCycle      int
	bbrFullCnt    int
	bbrBtlBw      float64 // bytes/second
	bbrBtlBwStamp int64
	bbrMinRtt     float64 // ns
	bbrMinRttStamp int64
	bbrEpochStart int64
	bbrEpochBytes float64
	bbrFullBw     float64
	bbrPriorCwnd  float64
	bbrPhaseStamp int64

	nextSeq   int64 // next packet number to send
	highestAcked int64
	lost      map[int64]bool

	samples []Sample
}

// BBR witness constants — same timing as internal/cc/bbr.go.
const (
	refBbrStartup  = 0
	refBbrDrain    = 1
	refBbrProbeBW  = 2
	refBbrProbeRTT = 3

	refBbrMinRttWinNS = 10_000_000
	refBbrProbeRttNS  = 200_000
	refBbrMinEpochNS  = 100_000
	refBbrBwWinRTTs   = 10
	refBbrMinCwndSegs = 4
	refBbrFullBwCnt   = 3
)

var refBbrGain = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// Run simulates the transfer and returns the cwnd trace. Unknown
// algorithm names are an error — the witness must never silently fall
// back to newreno and fake agreement for a model it does not implement.
func Run(p Params) ([]Sample, error) {
	known := false
	for _, a := range Algorithms {
		if p.Alg == a {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("refsim: unknown algorithm %q (have %v)", p.Alg, Algorithms)
	}
	if p.MSS == 0 {
		p.MSS = 1460
	}
	s := &state{
		p:        p,
		cwnd:     10,
		ssthresh: math.MaxFloat64 / 4,
		lost:     make(map[int64]bool),
		highestAcked: -1,
	}
	s.packetNS = float64(p.MSS*8) / p.RateBps * 1e9
	s.bdpPkts = p.RateBps * float64(p.RTTns) / 1e9 / 8 / float64(p.MSS)

	nextSample := int64(0)
	for s.now < p.DurationNS {
		if s.now >= nextSample {
			s.samples = append(s.samples, Sample{AtNS: s.now, Cwnd: s.cwnd * float64(p.MSS)})
			nextSample += p.SampleNS
		}
		// Send while the window allows.
		for float64(s.inFlight) < s.cwnd {
			s.sent++
			if p.DropEvery > 0 && s.sent%p.DropEvery == 0 {
				s.lost[s.nextSeq] = true
			}
			s.nextSeq++
			s.inFlight++
		}
		// Advance one packet service time; one ACK (or loss signal)
		// returns per serviced packet, RTT-delayed. This fluid-ish
		// treatment keeps the model simple while preserving the
		// window dynamics the figure compares.
		s.now += int64(s.packetNS)
		s.ackOne()
	}
	return s.samples, nil
}

// rttNS is the fluid path's current round-trip time: the base propagation
// delay plus the queueing delay of whatever is in flight beyond the BDP.
// This is the delay signal Vegas and BBR modulate on.
func (s *state) rttNS() float64 {
	q := float64(s.inFlight) - s.bdpPkts
	if q <= 0 {
		return float64(s.p.RTTns)
	}
	return float64(s.p.RTTns) + q*s.packetNS
}

// marked is the ECN signal: the bottleneck marks when a standing queue
// has formed (inFlight beyond the BDP), mirroring the shallow
// ECN-marking threshold the F4T dctcp trace runs against.
func (s *state) marked() bool {
	return float64(s.inFlight) > s.bdpPkts+1
}

// ackOne models the arrival of feedback for the oldest outstanding
// packet.
func (s *state) ackOne() {
	if s.inFlight == 0 {
		return
	}
	pkt := s.highestAcked + 1
	if s.lost[pkt] {
		// Three duplicate ACKs arrive as later packets are delivered.
		s.dupAcks++
		if s.dupAcks >= 3 && !s.inRecovery {
			s.inRecovery = true
			s.recoverPoint = s.nextSeq
			s.enterLoss()
			delete(s.lost, pkt) // fast retransmit repairs it one RTT later
		}
		if s.dupAcks > 3 {
			// Retransmission arrived: the cumulative ACK jumps.
			delete(s.lost, pkt)
			s.dupAcks = 0
		}
		return
	}
	s.highestAcked = pkt
	s.inFlight--
	s.dupAcks = 0
	if s.inRecovery && pkt >= s.recoverPoint {
		s.inRecovery = false
		s.exitRecovery()
	}
	if !s.inRecovery {
		s.grow()
	}
}

// enterLoss applies the loss response of the configured algorithm.
func (s *state) enterLoss() {
	switch s.p.Alg {
	case "cubic":
		s.wMax = s.cwnd
		s.cwnd *= 0.7
		s.ssthresh = s.cwnd
		s.epochStart = 0
	case "bbr":
		// No multiplicative decrease: remember the window, conserve what
		// is in flight, let the model re-set it after recovery.
		s.bbrPriorCwnd = math.Max(s.bbrPriorCwnd, s.cwnd)
		s.cwnd = math.Max(math.Min(s.cwnd, float64(s.inFlight)), refBbrMinCwndSegs)
		return
	default: // newreno, vegas, dctcp fall back to the Reno halving
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.cwnd = s.ssthresh
	}
	if s.cwnd < 2 {
		s.cwnd = 2
	}
}

// exitRecovery applies the post-recovery window of the configured
// algorithm.
func (s *state) exitRecovery() {
	if s.p.Alg == "bbr" {
		s.cwnd = math.Max(s.cwnd, s.bbrPriorCwnd)
		s.bbrPriorCwnd = 0
		return
	}
	s.cwnd = s.ssthresh
}

// grow applies per-ACK window growth.
func (s *state) grow() {
	if s.p.Alg == "bbr" {
		// BBR has no slow-start/ssthresh split; its mode machine owns the
		// whole trajectory.
		s.growBBR()
		return
	}
	if s.cwnd < s.ssthresh {
		s.cwnd++
		if s.p.Alg == "vegas" && !s.vegasFrozen {
			// Vegas leaves slow start as soon as the queueing estimate
			// exceeds gamma = 1 segment.
			rtt := s.rttNS()
			if s.cwnd*(rtt-float64(s.p.RTTns))/rtt > 1 {
				s.ssthresh = s.cwnd
				s.vegasFrozen = true
			}
		}
		if s.p.Alg == "dctcp" {
			s.observeMark()
		}
		return
	}
	switch s.p.Alg {
	case "cubic":
		if s.epochStart == 0 {
			s.epochStart = s.now
			if s.wMax < s.cwnd {
				s.wMax = s.cwnd
			}
		}
		const c = 0.4
		k := math.Cbrt(s.wMax * 0.3 / c) // seconds
		t := float64(s.now-s.epochStart)/1e9 + float64(s.p.RTTns)/1e9
		target := s.wMax + c*math.Pow(t-k, 3)
		if target > s.cwnd {
			s.cwnd += (target - s.cwnd) / s.cwnd
		} else {
			s.cwnd += 0.01 / s.cwnd
		}
	case "vegas":
		// diff = cwnd·(rtt − baseRTT)/rtt is the queue the flow keeps at
		// the bottleneck, in segments; hold it between alpha and beta.
		rtt := s.rttNS()
		diff := s.cwnd * (rtt - float64(s.p.RTTns)) / rtt
		const alpha, beta = 2, 4
		switch {
		case diff < alpha:
			s.cwnd += 1 / s.cwnd
		case diff > beta:
			s.cwnd -= 1 / s.cwnd
			if s.cwnd < 2 {
				s.cwnd = 2
			}
		}
	case "dctcp":
		s.cwnd += 1 / s.cwnd
		s.observeMark()
	default: // newreno congestion avoidance
		s.cwnd += 1 / s.cwnd
	}
}

// observeMark accumulates the per-window ECN mark fraction and applies
// DCTCP's alpha-proportional decrease at window boundaries (RFC 8257).
func (s *state) observeMark() {
	if s.winTarget == 0 {
		// Latch the window length at its start — cwnd moves during the
		// window, so comparing against the live value would let the
		// boundary outrun the counter in slow start.
		s.winTarget = math.Max(s.cwnd, 1)
	}
	s.winAcked++
	if s.marked() {
		s.winMarked++
	}
	if s.winAcked < s.winTarget {
		return
	}
	frac := s.winMarked / s.winAcked
	const g = 1.0 / 16
	s.dctcpAlpha = (1-g)*s.dctcpAlpha + g*frac
	if frac > 0 {
		s.cwnd *= 1 - s.dctcpAlpha/2
		if s.cwnd < 2 {
			s.cwnd = 2
		}
		s.ssthresh = s.cwnd
	}
	s.winAcked, s.winMarked, s.winTarget = 0, 0, 0
}

// growBBR mirrors internal/cc's integer BBR machine in float arithmetic:
// min-RTT filter with expiry-driven ProbeRTT, epoch delivery-rate
// bandwidth filter, Startup/Drain/ProbeBW gain logic.
func (s *state) growBBR() {
	rtt := s.rttNS()
	if s.bbrMinRtt == 0 || rtt < s.bbrMinRtt {
		s.bbrMinRtt = rtt
		s.bbrMinRttStamp = s.now
	}
	minRtt := s.bbrMinRtt

	if s.bbrEpochStart == 0 {
		s.bbrEpochStart = s.now
	}
	s.bbrEpochBytes += float64(s.p.MSS)
	epochMin := math.Max(minRtt, refBbrMinEpochNS)
	if elapsed := float64(s.now - s.bbrEpochStart); elapsed >= epochMin {
		bw := s.bbrEpochBytes * 1e9 / elapsed
		if bw >= s.bbrBtlBw {
			s.bbrBtlBw = bw
			s.bbrBtlBwStamp = s.now
		} else if float64(s.now-s.bbrBtlBwStamp) > refBbrBwWinRTTs*minRtt {
			s.bbrBtlBw = bw
			s.bbrBtlBwStamp = s.now
		}
		s.bbrEpochStart = s.now
		s.bbrEpochBytes = 0

		if s.bbrMode == refBbrStartup {
			if s.bbrBtlBw < 1.25*s.bbrFullBw {
				s.bbrFullCnt++
				if s.bbrFullCnt >= refBbrFullBwCnt {
					s.bbrMode = refBbrDrain
				}
			} else {
				s.bbrFullBw = s.bbrBtlBw
				s.bbrFullCnt = 0
			}
		}
	}

	if s.bbrMode != refBbrProbeRTT &&
		float64(s.now-s.bbrMinRttStamp) > refBbrMinRttWinNS {
		s.bbrMode = refBbrProbeRTT
		s.bbrPriorCwnd = math.Max(s.bbrPriorCwnd, s.cwnd)
		s.bbrPhaseStamp = s.now
	}

	bdp := s.bbrBtlBw * minRtt / 1e9 / float64(s.p.MSS) // segments

	switch s.bbrMode {
	case refBbrStartup:
		s.cwnd++

	case refBbrDrain:
		target := math.Max(bdp, refBbrMinCwndSegs)
		if s.cwnd <= target+1 {
			s.cwnd = target
			s.bbrMode, s.bbrCycle = refBbrProbeBW, 0
			s.bbrPhaseStamp = s.now
		} else {
			s.cwnd--
		}

	case refBbrProbeBW:
		if float64(s.now-s.bbrPhaseStamp) >= minRtt {
			s.bbrCycle = (s.bbrCycle + 1) % len(refBbrGain)
			s.bbrPhaseStamp = s.now
		}
		s.cwnd = math.Max(bdp*refBbrGain[s.bbrCycle], refBbrMinCwndSegs)

	case refBbrProbeRTT:
		s.cwnd = refBbrMinCwndSegs
		if s.now-s.bbrPhaseStamp >= refBbrProbeRttNS {
			s.bbrMinRttStamp = s.now
			s.cwnd = math.Max(s.bbrPriorCwnd, bdp)
			s.bbrPriorCwnd = 0
			if s.bbrFullCnt >= refBbrFullBwCnt {
				s.bbrMode, s.bbrCycle = refBbrProbeBW, 0
			} else {
				s.bbrMode = refBbrStartup
			}
			s.bbrPhaseStamp = s.now
		}
	}
}
