// Package stack implements a complete, passive TCP endpoint out of the
// shared pieces — tcpproc protocol engine, datapath parser/generator,
// ARP/ICMP, and the timer queue. It processes every event immediately
// when told to (per-event processing, no accumulation), which makes it
// both the protocol test harness and the core of the Linux software
// baseline; callers decide *when* work happens (immediately, or from a
// modelled CPU core) by choosing when to call HandlePacket/ExpireTimers.
package stack

import (
	"unsafe"

	"f4t/internal/cc"
	"f4t/internal/datapath"
	"f4t/internal/flow"
	"f4t/internal/seqnum"
	"f4t/internal/sim"
	"f4t/internal/tcpproc"
	"f4t/internal/telemetry"
	"f4t/internal/timerq"
	"f4t/internal/wire"
)

// Options configures an endpoint.
type Options struct {
	IP         wire.Addr
	MAC        wire.MAC
	Cfg        tcpproc.Config
	Alg        string // congestion control algorithm name
	MaxFlows   int
	CarryBytes bool // allocate data rings and move real payload bytes
	Seed       uint64
}

// Hooks let owners observe endpoint activity (the Linux model charges
// CPU cycles here; tests assert on it). All hooks may be nil.
type Hooks struct {
	OnTx      func(pkt *wire.Packet)             // a packet is handed to the wire
	OnProcess func(c *Conn, ev *flow.Event)      // one event is about to be processed
	OnNote    func(c *Conn, note *tcpproc.Note)  // a host notification fired
}

// Endpoint is one host's TCP stack instance.
type Endpoint struct {
	K     *sim.Kernel
	Opt   Options
	Hooks Hooks

	parser *datapath.Parser
	gen    *datapath.Generator
	arp    *datapath.ARP
	timers *timerq.Queue
	tx     func(*wire.Packet)

	conns     map[flow.ID]*Conn
	listeners map[uint16]func(*Conn)
	nextID    flow.ID
	nextPort  uint16
	rng       *sim.Rand

	// Packets awaiting ARP resolution, per next-hop address.
	arpWait map[wire.Addr][]*wire.Packet

	actions tcpproc.Actions // scratch, reused across processing passes

	// Stats.
	RxPkts, TxPkts       int64
	RxNoFlow, RxDropped  int64
	RxOowRsts            int64 // inbound RSTs dropped by sequence validation
	FlowsRejected        int64 // opens refused: MaxFlows reached or flow table full
	ProcessedEvents      int64
}

// New builds an endpoint. tx is the wire transmit function (attach the
// link pipe's Send).
func New(k *sim.Kernel, opt Options, tx func(*wire.Packet)) *Endpoint {
	if opt.MaxFlows == 0 {
		opt.MaxFlows = 1024
	}
	if opt.Alg == "" {
		opt.Alg = "newreno"
	}
	if opt.Cfg.MSS == 0 {
		opt.Cfg = tcpproc.DefaultConfig()
	}
	e := &Endpoint{
		K:         k,
		Opt:       opt,
		parser:    datapath.NewParser(opt.MaxFlows, opt.Cfg.RcvBuf, opt.Cfg.WndScale, opt.Seed+1),
		gen:       datapath.NewGenerator(opt.Cfg.MSS, opt.Cfg.WndScale),
		arp:       datapath.NewARP(opt.IP, opt.MAC),
		timers:    timerq.New(),
		tx:        tx,
		conns:     make(map[flow.ID]*Conn),
		listeners: make(map[uint16]func(*Conn)),
		rng:       sim.NewRand(opt.Seed + 2),
		arpWait:   make(map[wire.Addr][]*wire.Packet),
		nextPort:  32768,
	}
	if opt.Cfg.ECN {
		e.gen.EnableECN()
	}
	return e
}

// SetTx replaces the transmit function (for late link attachment).
func (e *Endpoint) SetTx(tx func(*wire.Packet)) { e.tx = tx }

// LearnPeer installs a static ARP mapping (the testbeds are
// direct-connected, §5: "directly connecting" the NICs).
func (e *Endpoint) LearnPeer(ip wire.Addr, mac wire.MAC) { e.arp.Learn(ip, mac) }

// Conns returns the number of live connections.
func (e *Endpoint) Conns() int { return len(e.conns) }

// Conn returns a connection by flow ID.
func (e *Endpoint) Conn(id flow.ID) *Conn { return e.conns[id] }

// EachConn visits every live connection (conformance/diagnostics).
// Iteration order is unspecified.
func (e *Endpoint) EachConn(visit func(*Conn)) {
	for _, c := range e.conns {
		visit(c)
	}
}

// Listen registers an accept callback for a local port. The callback
// fires when a new passive connection reaches ESTABLISHED.
func (e *Endpoint) Listen(port uint16, accept func(*Conn)) {
	e.listeners[port] = accept
}

// ephemeralBase is the bottom of the ephemeral port range; allocation
// wraps back here instead of running through the well-known ports.
const ephemeralBase = 32768

// Dial starts an active open and returns the new connection. The
// three-way handshake proceeds in simulated time; OnEstablished fires on
// completion. Returns nil when every ephemeral port toward this remote
// endpoint is occupied by a live connection.
func (e *Endpoint) Dial(remote wire.Addr, remotePort uint16) *Conn {
	for i := 0; i < 65536-ephemeralBase; i++ {
		e.nextPort++
		if e.nextPort < ephemeralBase { // wrapped through 0
			e.nextPort = ephemeralBase
		}
		tuple := wire.FourTuple{
			LocalAddr: e.Opt.IP, RemoteAddr: remote,
			LocalPort: e.nextPort, RemotePort: remotePort,
		}
		if _, inUse := e.parser.Lookup(tuple); inUse {
			continue
		}
		c := e.newConn(tuple)
		if c == nil { // MaxFlows reached or flow table full (counted there)
			return nil
		}
		ev := flow.Event{Kind: flow.EvUser, Flow: c.ID, Ctl: flow.CtlOpen}
		e.Inject(c, &ev)
		return c
	}
	return nil
}

// newConn allocates connection state and registers the flow. It returns
// nil — with the rejection counted — when the endpoint is at MaxFlows or
// the flow table refuses the tuple; callers must abort the open cleanly
// (Dial returns nil, the passive path answers the SYN with a RST).
func (e *Endpoint) newConn(tuple wire.FourTuple) *Conn {
	if len(e.conns) >= e.Opt.MaxFlows {
		e.FlowsRejected++
		return nil
	}
	e.nextID++
	id := e.nextID
	iss := seqnum.Value(e.rng.Uint32())
	t := &flow.TCB{
		FlowID: id,
		Tuple:  tuple,
		State:  flow.StateClosed,
		ISS:    iss,
		SndUna: iss, SndNxt: iss, Req: iss,
		RcvBuf: e.Opt.Cfg.RcvBuf,
	}
	t.AckedToHost = iss.Add(1)
	var rxRing, txRing *datapath.Ring
	if e.Opt.CarryBytes {
		size := 1
		for size < int(e.Opt.Cfg.RcvBuf)*2 {
			size <<= 1
		}
		rxRing = datapath.NewRing(size)
		txRing = datapath.NewRing(size)
	}
	c := &Conn{
		ep:     e,
		ID:     id,
		TCB:    t,
		alg:    cc.MustNew(e.Opt.Alg),
		txRing: txRing,
	}
	c.meta = datapath.FlowMeta{Tuple: tuple, LocalMAC: e.Opt.MAC}
	if !e.parser.Register(tuple, id, rxRing) {
		e.FlowsRejected++
		return nil
	}
	e.conns[id] = c
	return c
}

// Inject queues one event for a connection and processes it immediately
// (per-event processing — the software stack has no accumulation
// hardware).
func (e *Endpoint) Inject(c *Conn, ev *flow.Event) {
	if c == nil || c.TCB == nil {
		return
	}
	if e.Hooks.OnProcess != nil {
		e.Hooks.OnProcess(c, ev)
	}
	e.ProcessedEvents++
	var row flow.EventRow
	row.Accumulate(ev)
	row.MergeInto(c.TCB)
	e.runProcess(c)
}

// runProcess executes one protocol pass and applies the resulting
// actions: packet generation, host notifications, timer sync.
func (e *Endpoint) runProcess(c *Conn) {
	e.actions.Reset()
	tcpproc.Process(c.TCB, c.alg, &e.Opt.Cfg, e.K.NowNS(), &e.actions)

	for i := range e.actions.Segs {
		e.emitSegment(c, &e.actions.Segs[i])
	}
	for i := range e.actions.Notes {
		e.applyNote(c, &e.actions.Notes[i])
	}
	if e.actions.OowRstDropped {
		e.RxOowRsts++
	}
	e.timers.SyncFromTCB(c.TCB)
	if e.actions.FreeFlow {
		e.free(c)
	}
}

// emitSegment expands a SendOp into packets and transmits them, resolving
// the destination MAC (static or via ARP) first.
func (e *Endpoint) emitSegment(c *Conn, op *tcpproc.SendOp) {
	mac, req, ok := e.arp.Resolve(c.meta.Tuple.RemoteAddr)
	var fetch datapath.PayloadFetch
	if c.txRing != nil {
		ring := c.txRing
		fetch = func(seq seqnum.Value, buf []byte) { ring.ReadInto(seq, buf) }
	}
	if !ok {
		// Build the packets now but park them until the ARP reply.
		meta := c.meta // MAC still zero; fixed at flush time
		e.gen.Build(*op, meta, fetch, func(p *wire.Packet) {
			e.arpWait[c.meta.Tuple.RemoteAddr] = append(e.arpWait[c.meta.Tuple.RemoteAddr], p)
		})
		if req != nil {
			e.transmit(req)
		}
		return
	}
	c.meta.PeerMAC = mac
	e.gen.Build(*op, c.meta, fetch, e.transmit)
}

func (e *Endpoint) transmit(pkt *wire.Packet) {
	e.TxPkts++
	if e.Hooks.OnTx != nil {
		e.Hooks.OnTx(pkt)
	}
	if e.tx != nil {
		e.tx(pkt)
	}
}

// applyNote updates the connection's host-visible mirrors and fires app
// callbacks.
func (e *Endpoint) applyNote(c *Conn, n *tcpproc.Note) {
	if e.Hooks.OnNote != nil {
		e.Hooks.OnNote(c, n)
	}
	switch n.Kind {
	case tcpproc.NoteEstablished:
		c.Established = true
		// Passive connections announce themselves to the listener now.
		if !c.accepted {
			c.accepted = true
			if acc := e.listeners[c.meta.Tuple.LocalPort]; acc != nil && c.passive {
				acc(c)
			}
		}
		if c.OnEstablished != nil {
			c.OnEstablished()
		}
	case tcpproc.NoteDataAcked:
		c.AckedTo = n.Seq
		if c.OnAcked != nil {
			c.OnAcked()
		}
	case tcpproc.NoteDataDelivered:
		c.DeliveredTo = n.Seq
		if c.OnData != nil {
			c.OnData()
		}
	case tcpproc.NotePeerClosed:
		c.PeerClosed = true
		if c.OnPeerClosed != nil {
			c.OnPeerClosed()
		}
	case tcpproc.NoteReset:
		c.WasReset = true
	case tcpproc.NoteClosed:
		c.Closed = true
		if c.OnClosed != nil {
			c.OnClosed()
		}
	}
}

// free releases all per-flow state.
func (e *Endpoint) free(c *Conn) {
	e.parser.Deregister(c.meta.Tuple, c.ID)
	delete(e.conns, c.ID)
	c.freed = true
}

// HandlePacket processes one received frame: ARP and ICMP are answered
// in place; TCP packets are parsed into events and processed. Returns the
// connection the packet belonged to (nil for non-TCP or unknown flows).
func (e *Endpoint) HandlePacket(pkt *wire.Packet) *Conn {
	e.RxPkts++
	switch pkt.Kind {
	case wire.KindARP:
		if reply := e.arp.Handle(pkt); reply != nil {
			e.transmit(reply)
		}
		e.flushARPWait(pkt.ARP.SenderIP)
		return nil
	case wire.KindICMP:
		if reply := datapath.HandleICMP(pkt, e.Opt.IP, e.Opt.MAC); reply != nil {
			e.transmit(reply)
		}
		return nil
	}

	res := e.parser.Parse(pkt)
	if res.NoFlow {
		// New passive connection? Only a SYN to a listening port counts.
		if pkt.TCP.Flags&wire.FlagSYN != 0 && pkt.TCP.Flags&wire.FlagACK == 0 {
			if _, listening := e.listeners[pkt.TCP.DstPort]; listening {
				c := e.newConn(pkt.Tuple())
				if c == nil {
					// Endpoint full: refuse the open with a RST so the
					// client aborts instead of retransmitting its SYN.
					e.sendRST(pkt)
					return nil
				}
				c.passive = true
				c.TCB.State = flow.StateListen
				c.meta.PeerMAC = pkt.Eth.Src
				e.arp.Learn(pkt.IP.Src, pkt.Eth.Src)
				res = e.parser.Parse(pkt)
				if res.NoFlow {
					return nil
				}
				if e.Hooks.OnProcess != nil {
					e.Hooks.OnProcess(c, &res.Event)
				}
				e.ProcessedEvents++
				var row flow.EventRow
				row.Accumulate(&res.Event)
				row.MergeInto(c.TCB)
				e.runProcess(c)
				return c
			}
		}
		e.RxNoFlow++
		// RFC 793: a segment to a non-existent connection draws a RST.
		if pkt.TCP.Flags&wire.FlagRST == 0 {
			e.sendRST(pkt)
		}
		return nil
	}
	if res.Dropped {
		e.RxDropped++
	}
	c := e.conns[res.Event.Flow]
	if c == nil {
		return nil
	}
	e.Inject(c, &res.Event)
	return c
}

// flushARPWait transmits packets parked for the now-resolved address.
func (e *Endpoint) flushARPWait(ip wire.Addr) {
	pkts := e.arpWait[ip]
	if len(pkts) == 0 {
		return
	}
	delete(e.arpWait, ip)
	mac, _, ok := e.arp.Resolve(ip)
	if !ok {
		return
	}
	for _, p := range pkts {
		p.Eth.Dst = mac
		e.transmit(p)
	}
}

// sendRST answers an orphan segment with the RFC 793 §3.4 reset.
func (e *Endpoint) sendRST(pkt *wire.Packet) {
	if rst := datapath.OrphanRST(pkt, e.Opt.IP, e.Opt.MAC); rst != nil {
		e.transmit(rst)
	}
}

// ExpireTimers fires all due timer events. Call it periodically (the
// harness ticks it every cycle; the heap peek is O(1) when idle).
func (e *Endpoint) ExpireTimers() {
	now := e.K.NowNS()
	e.timers.Expire(now, func(id flow.ID) *flow.TCB {
		if c := e.conns[id]; c != nil {
			return c.TCB
		}
		return nil
	}, func(id flow.ID, kind uint8) {
		c := e.conns[id]
		if c == nil {
			return
		}
		ev := flow.Event{Kind: flow.EvTimeout, Flow: id, Timeouts: kind}
		e.Inject(c, &ev)
	})
}

// Tick implements sim.Ticker so the endpoint can self-drive its timers
// in immediate mode.
func (e *Endpoint) Tick(int64) { e.ExpireTimers() }

// NextTimerNS returns the earliest pending timer deadline in
// nanoseconds, or 0 when none. The value may be stale (lazy-deletion
// heap); stale heads are popped by the next ExpireTimers call, so a
// past deadline costs at most one extra tick.
func (e *Endpoint) NextTimerNS() int64 { return e.timers.NextDeadline() }

// Mem reports the parser-side per-connection footprint (flow table,
// parser-flow arena, reassembly buffers). O(flows); snapshot-time only.
func (e *Endpoint) Mem() datapath.ParserMem { return e.parser.Mem() }

// TableStats exposes the flow table's occupancy and displacement
// counters (size, kicks, stash residency, resizes, refused inserts).
func (e *Endpoint) TableStats() datapath.CuckooStats { return e.parser.TableStats() }

// InstrumentMem registers the endpoint's per-connection memory probes on
// a footprint accountant: connection control blocks plus the parser's
// table/arena/reassembly storage.
func (e *Endpoint) InstrumentMem(fp *telemetry.Footprint, prefix string) {
	connBytes := int64(unsafe.Sizeof(Conn{}) + unsafe.Sizeof(flow.TCB{}))
	fp.Add(prefix+".conns", func() (int64, int64) {
		n := int64(len(e.conns))
		return n, n * connBytes
	})
	fp.Add(prefix+".flow_table", func() (int64, int64) {
		m := e.parser.Mem()
		return m.TableEntries, m.TableBytes
	})
	fp.Add(prefix+".parser_flows", func() (int64, int64) {
		m := e.parser.Mem()
		return m.FlowCount, m.FlowBytes
	})
	fp.Add(prefix+".reasm", func() (int64, int64) {
		m := e.parser.Mem()
		return m.FlowCount, m.ReasmBytes
	})
}

// Ping sends an ICMP echo request (diagnostics parity with FtEngine).
func (e *Endpoint) Ping(ip wire.Addr, id, seq uint16, payload []byte) bool {
	mac, req, ok := e.arp.Resolve(ip)
	if !ok {
		if req != nil {
			e.transmit(req)
		}
		return false
	}
	e.transmit(&wire.Packet{
		Kind: wire.KindICMP,
		Eth:  wire.EthHeader{Src: e.Opt.MAC, Dst: mac, Type: wire.EtherTypeIPv4},
		IP:   wire.IPv4Header{Src: e.Opt.IP, Dst: ip, TTL: wire.DefaultTTL, Protocol: wire.ProtoICMP},
		ICMP: wire.ICMPEcho{Type: wire.ICMPEchoRequest, ID: id, Seq: seq},
		PayloadLen: len(payload), Payload: payload,
	})
	return true
}
