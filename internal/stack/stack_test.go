package stack

import (
	"bytes"
	"testing"

	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

// pair is a two-endpoint test harness over a duplex link.
type pair struct {
	k    *sim.Kernel
	link *netsim.Link
	a, b *Endpoint
}

func newPair(t *testing.T, carryBytes bool, alg string) *pair {
	t.Helper()
	k := sim.New()
	link := netsim.NewLink(k, 100, 600, 42)
	optA := Options{
		IP: wire.MakeAddr(10, 0, 0, 1), MAC: wire.MAC{2, 0, 0, 0, 0, 1},
		Cfg: tcpproc.DefaultConfig(), Alg: alg, CarryBytes: carryBytes, Seed: 1,
	}
	optB := Options{
		IP: wire.MakeAddr(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2},
		Cfg: tcpproc.DefaultConfig(), Alg: alg, CarryBytes: carryBytes, Seed: 2,
	}
	a := New(k, optA, link.AtoB.Send)
	b := New(k, optB, link.BtoA.Send)
	link.AtoB.SetSink(func(p *wire.Packet) { b.HandlePacket(p) })
	link.BtoA.SetSink(func(p *wire.Packet) { a.HandlePacket(p) })
	k.Register(a)
	k.Register(b)
	return &pair{k: k, link: link, a: a, b: b}
}

func (p *pair) run(t *testing.T, pred func() bool, budget int64, what string) {
	t.Helper()
	if !p.k.RunUntil(pred, budget) {
		t.Fatalf("timed out waiting for %s after %d cycles", what, budget)
	}
}

func TestHandshake(t *testing.T) {
	p := newPair(t, false, "newreno")
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)

	p.run(t, func() bool { return cli.Established && srv != nil && srv.Established }, 100_000, "handshake")
	if got := p.a.Conns(); got != 1 {
		t.Errorf("client conns = %d, want 1", got)
	}
	if got := p.b.Conns(); got != 1 {
		t.Errorf("server conns = %d, want 1", got)
	}
}

func TestHandshakeUsesARP(t *testing.T) {
	p := newPair(t, false, "newreno")
	// No LearnPeer: the client must resolve the server's MAC via ARP.
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 200_000, "handshake via ARP")
}

func TestDataTransferBytes(t *testing.T) {
	p := newPair(t, true, "newreno")
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 100_000, "handshake")

	msg := []byte("hello, F4T! the quick brown fox jumps over the lazy dog.")
	if n := cli.Send(msg); n != len(msg) {
		t.Fatalf("Send accepted %d, want %d", n, len(msg))
	}
	p.run(t, func() bool { return srv.Available() >= len(msg) }, 200_000, "data delivery")
	got, n := srv.Recv(1024)
	if n != len(msg) || !bytes.Equal(got, msg) {
		t.Fatalf("Recv = %q (%d bytes), want %q", got, n, msg)
	}
}

func TestLargeTransferSplitsAtMSS(t *testing.T) {
	p := newPair(t, true, "newreno")
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 100_000, "handshake")

	// 100 KB: exceeds one MSS by far and exercises window growth.
	data := make([]byte, 100*1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	sent := 0
	cli.OnAcked = func() {
		for sent < len(data) {
			n := cli.Send(data[sent:])
			if n == 0 {
				break
			}
			sent += n
		}
	}
	for sent < len(data) {
		n := cli.Send(data[sent:])
		if n == 0 {
			break
		}
		sent += n
	}
	p.run(t, func() bool { return srv.Available() >= len(data) }, 3_000_000, "bulk delivery")
	got, n := srv.Recv(len(data))
	if n != len(data) {
		t.Fatalf("received %d bytes, want %d", n, len(data))
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted in transit")
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	p := newPair(t, true, "newreno")
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 100_000, "handshake")

	m1 := []byte("ping from client")
	m2 := []byte("pong from server, slightly longer")
	cli.Send(m1)
	srv.Send(m2)
	p.run(t, func() bool { return srv.Available() >= len(m1) && cli.Available() >= len(m2) }, 300_000, "bidirectional delivery")
	g1, _ := srv.Recv(1024)
	g2, _ := cli.Recv(1024)
	if !bytes.Equal(g1, m1) || !bytes.Equal(g2, m2) {
		t.Fatalf("mismatch: %q / %q", g1, g2)
	}
}

func TestGracefulClose(t *testing.T) {
	p := newPair(t, false, "newreno")
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 100_000, "handshake")

	cli.Close()
	p.run(t, func() bool { return srv.PeerClosed }, 200_000, "server sees FIN")
	srv.Close()
	p.run(t, func() bool { return srv.Closed }, 500_000, "server closed")
	// Client lingers in TIME_WAIT, then frees.
	p.run(t, func() bool { return cli.Closed }, 10_000_000, "client TIME_WAIT expiry")
	if p.a.Conns() != 0 || p.b.Conns() != 0 {
		t.Errorf("conns after close: a=%d b=%d, want 0/0", p.a.Conns(), p.b.Conns())
	}
}

func TestAbortSendsRST(t *testing.T) {
	p := newPair(t, false, "newreno")
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 100_000, "handshake")

	cli.Abort()
	p.run(t, func() bool { return srv.WasReset }, 200_000, "server sees RST")
	if p.a.Conns() != 0 {
		t.Errorf("client kept state after abort: %d conns", p.a.Conns())
	}
}

func TestLossRecoveryFastRetransmit(t *testing.T) {
	p := newPair(t, true, "newreno")
	// Drop one data packet mid-stream: fast retransmit must repair it.
	p.link.AtoB.SetFaults(netsim.Faults{DropOnce: 20})
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 100_000, "handshake")

	data := make([]byte, 200*1024)
	for i := range data {
		data[i] = byte(i)
	}
	sent := 0
	pump := func() {
		for sent < len(data) {
			n := cli.Send(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	cli.OnAcked = pump
	pump()
	p.run(t, func() bool { return srv.Available() >= len(data) }, 20_000_000, "delivery despite loss")
	got, n := srv.Recv(len(data))
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("loss recovery corrupted stream: got %d bytes", n)
	}
	if p.link.AtoB.DroppedPkts != 1 {
		t.Fatalf("expected exactly 1 injected drop, got %d", p.link.AtoB.DroppedPkts)
	}
}

func TestLossyLinkAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"newreno", "cubic", "vegas"} {
		t.Run(alg, func(t *testing.T) {
			p := newPair(t, true, alg)
			p.link.AtoB.SetFaults(netsim.Faults{LossProb: 0.02})
			p.link.BtoA.SetFaults(netsim.Faults{LossProb: 0.02})
			var srv *Conn
			p.b.Listen(80, func(c *Conn) { srv = c })
			cli := p.a.Dial(p.b.Opt.IP, 80)
			p.run(t, func() bool { return cli.Established && srv != nil }, 30_000_000, "handshake on lossy link")

			data := make([]byte, 64*1024)
			for i := range data {
				data[i] = byte(i * 7)
			}
			sent := 0
			pump := func() {
				for sent < len(data) {
					n := cli.Send(data[sent:])
					if n == 0 {
						return
					}
					sent += n
				}
			}
			cli.OnAcked = pump
			pump()
			p.run(t, func() bool { return srv.Available() >= len(data) }, 400_000_000, "delivery on lossy link")
			got, n := srv.Recv(len(data))
			if n != len(data) || !bytes.Equal(got, data) {
				t.Fatalf("%s: lossy transfer corrupted: %d bytes", alg, n)
			}
		})
	}
}

func TestReorderedLink(t *testing.T) {
	p := newPair(t, true, "newreno")
	p.link.AtoB.SetFaults(netsim.Faults{ReorderProb: 0.1, ReorderNS: 5_000})
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 1_000_000, "handshake")

	data := make([]byte, 128*1024)
	for i := range data {
		data[i] = byte(i * 13)
	}
	sent := 0
	pump := func() {
		for sent < len(data) {
			n := cli.Send(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	cli.OnAcked = pump
	pump()
	p.run(t, func() bool { return srv.Available() >= len(data) }, 100_000_000, "delivery with reordering")
	got, n := srv.Recv(len(data))
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("reordered transfer corrupted: %d bytes", n)
	}
}

func TestDuplicatedPackets(t *testing.T) {
	p := newPair(t, true, "newreno")
	p.link.AtoB.SetFaults(netsim.Faults{DupProb: 0.2})
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 1_000_000, "handshake")

	data := make([]byte, 32*1024)
	for i := range data {
		data[i] = byte(i * 3)
	}
	sent := 0
	pump := func() {
		for sent < len(data) {
			n := cli.Send(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	cli.OnAcked = pump
	pump()
	p.run(t, func() bool { return srv.Available() >= len(data) }, 50_000_000, "delivery with duplicates")
	got, n := srv.Recv(len(data))
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("duplicated transfer corrupted: %d bytes", n)
	}
}

func TestZeroWindowAndProbe(t *testing.T) {
	p := newPair(t, true, "newreno")
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 100_000, "handshake")

	// Fill the receiver's 512 KB buffer without consuming.
	total := 700 * 1024
	data := make([]byte, total)
	for i := range data {
		data[i] = byte(i * 11)
	}
	sent := 0
	pump := func() {
		for sent < len(data) {
			n := cli.Send(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	cli.OnAcked = pump
	pump()

	// The receiver's window must pinch shut near its buffer size.
	p.run(t, func() bool { return srv.Available() >= 500*1024 }, 50_000_000, "buffer fill")
	if w := srv.TCB.AdvertisedWindow(); w > 16*1024 {
		t.Fatalf("advertised window = %d, expected near-zero", w)
	}

	// Now drain; the window update + persist probes must restart the flow.
	received := make([]byte, 0, total)
	for len(received) < total {
		if got, n := srv.Recv(64 * 1024); n > 0 {
			received = append(received, got...)
		} else {
			p.k.Run(50_000)
		}
		pump()
		if p.k.Now() > 3_000_000_000 {
			t.Fatalf("stalled after %d/%d bytes", len(received), total)
		}
	}
	if !bytes.Equal(received, data) {
		t.Fatal("zero-window stream corrupted")
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	p := newPair(t, false, "newreno")
	const n = 200
	var accepted int
	p.b.Listen(80, func(c *Conn) { accepted++ })
	conns := make([]*Conn, n)
	for i := range conns {
		conns[i] = p.a.Dial(p.b.Opt.IP, 80)
	}
	p.run(t, func() bool {
		if accepted < n {
			return false
		}
		for _, c := range conns {
			if !c.Established {
				return false
			}
		}
		return true
	}, 10_000_000, "200 concurrent handshakes")
}

func TestMaxFlowsRejectsOpens(t *testing.T) {
	// A full endpoint must refuse opens cleanly: Dial returns nil on the
	// initiator, a SYN at a full listener draws a RST (so the client
	// aborts instead of retransmitting), and every refusal is counted.
	k := sim.New()
	link := netsim.NewLink(k, 100, 600, 42)
	optA := Options{
		IP: wire.MakeAddr(10, 0, 0, 1), MAC: wire.MAC{2, 0, 0, 0, 0, 1},
		Cfg: tcpproc.DefaultConfig(), MaxFlows: 8, Seed: 1,
	}
	optB := Options{
		IP: wire.MakeAddr(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2},
		Cfg: tcpproc.DefaultConfig(), MaxFlows: 2, Seed: 2,
	}
	a := New(k, optA, link.AtoB.Send)
	b := New(k, optB, link.BtoA.Send)
	link.AtoB.SetSink(func(p *wire.Packet) { b.HandlePacket(p) })
	link.BtoA.SetSink(func(p *wire.Packet) { a.HandlePacket(p) })
	k.Register(a)
	k.Register(b)

	accepted := 0
	b.Listen(80, func(c *Conn) { accepted++ })
	c1 := a.Dial(optB.IP, 80)
	c2 := a.Dial(optB.IP, 80)
	if !k.RunUntil(func() bool { return c1.Established && c2.Established && accepted == 2 }, 1_000_000) {
		t.Fatal("first two handshakes timed out")
	}

	// Server full: the third client SYN must be answered with a RST.
	c3 := a.Dial(optB.IP, 80)
	if c3 == nil {
		t.Fatal("client refused the dial; only the server should be full")
	}
	if !k.RunUntil(func() bool { return c3.WasReset }, 2_000_000) {
		t.Fatal("rejected open never drew a RST back to the client")
	}
	if b.FlowsRejected == 0 {
		t.Fatalf("server FlowsRejected = %d, want > 0", b.FlowsRejected)
	}
	if b.Conns() != 2 || accepted != 2 {
		t.Fatalf("server conns = %d accepted = %d, want 2/2", b.Conns(), accepted)
	}

	// Client full: Dial refuses locally, counted, no packet sent.
	a.Opt.MaxFlows = 2
	tx := a.TxPkts
	if c := a.Dial(optB.IP, 80); c != nil {
		t.Fatal("Dial succeeded past MaxFlows")
	}
	if a.FlowsRejected != 1 {
		t.Fatalf("client FlowsRejected = %d, want 1", a.FlowsRejected)
	}
	if a.TxPkts != tx {
		t.Fatal("locally-refused Dial still transmitted")
	}

	// The surviving connections are untouched by the rejections.
	if c1.WasReset || c2.WasReset || !c1.Established || !c2.Established {
		t.Fatal("rejection disturbed established connections")
	}
}

func TestICMPEcho(t *testing.T) {
	p := newPair(t, false, "newreno")
	p.a.LearnPeer(p.b.Opt.IP, p.b.Opt.MAC)
	var gotReply *wire.Packet
	orig := p.link.BtoA
	orig.SetSink(func(pkt *wire.Packet) {
		if pkt.Kind == wire.KindICMP && pkt.ICMP.Type == wire.ICMPEchoReply {
			gotReply = pkt
		}
		p.a.HandlePacket(pkt)
	})
	if !p.a.Ping(p.b.Opt.IP, 7, 1, []byte("abcd")) {
		t.Fatal("ping not sent despite static ARP")
	}
	p.run(t, func() bool { return gotReply != nil }, 100_000, "ICMP echo reply")
	if gotReply.ICMP.ID != 7 || gotReply.ICMP.Seq != 1 {
		t.Fatalf("echo reply id/seq = %d/%d, want 7/1", gotReply.ICMP.ID, gotReply.ICMP.Seq)
	}
}

func TestRSTToUnknownFlow(t *testing.T) {
	p := newPair(t, false, "newreno")
	p.a.LearnPeer(p.b.Opt.IP, p.b.Opt.MAC)
	// Craft a data segment for a connection B doesn't know.
	var sawRST bool
	p.link.BtoA.SetSink(func(pkt *wire.Packet) {
		if pkt.Kind == wire.KindTCP && pkt.TCP.Flags&wire.FlagRST != 0 {
			sawRST = true
		}
		p.a.HandlePacket(pkt)
	})
	orphan := &wire.Packet{
		Kind: wire.KindTCP,
		Eth:  wire.EthHeader{Src: p.a.Opt.MAC, Dst: p.b.Opt.MAC, Type: wire.EtherTypeIPv4},
		IP:   wire.IPv4Header{Src: p.a.Opt.IP, Dst: p.b.Opt.IP, TTL: 64, Protocol: wire.ProtoTCP},
		TCP:  wire.TCPHeader{SrcPort: 5555, DstPort: 4444, Seq: 1000, Ack: 2000, Flags: wire.FlagACK},
	}
	p.link.AtoB.Send(orphan)
	p.run(t, func() bool { return sawRST }, 100_000, "RST for orphan segment")
}

func TestKeepaliveDetectsDeadPeer(t *testing.T) {
	p := newPair(t, false, "newreno")
	// Enable aggressive keepalive on the client so the test stays short.
	p.a.Opt.Cfg.KeepaliveIdle = 2_000_000 // 2 ms
	p.a.Opt.Cfg.KeepaliveIvl = 1_000_000
	p.a.Opt.Cfg.KeepaliveCnt = 2
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 100_000, "handshake")

	// The peer vanishes: every subsequent packet is dropped.
	p.link.AtoB.SetFaults(netsim.Faults{LossProb: 1.0})
	p.link.BtoA.SetFaults(netsim.Faults{LossProb: 1.0})
	p.run(t, func() bool { return cli.Closed }, 20_000_000, "keepalive reset of dead peer")
	if p.a.Conns() != 0 {
		t.Fatal("client state not freed after keepalive reset")
	}
}

func TestKeepaliveKeepsLiveConnection(t *testing.T) {
	p := newPair(t, false, "newreno")
	p.a.Opt.Cfg.KeepaliveIdle = 1_000_000
	p.a.Opt.Cfg.KeepaliveIvl = 500_000
	p.a.Opt.Cfg.KeepaliveCnt = 2
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 100_000, "handshake")

	// Idle but healthy: many keepalive windows pass, connection survives.
	p.k.Run(3_000_000) // 12 ms ≫ idle+cnt×ivl
	if cli.Closed || cli.WasReset || srv.Closed {
		t.Fatal("healthy idle connection was reset by keepalive")
	}
}

func TestWireCodecCarriesWholeProtocol(t *testing.T) {
	// Re-encode every frame to bytes and decode it again in transit:
	// the byte codecs (checksums included) must carry the complete
	// protocol — handshake, data, FIN — with zero structural loss.
	p := newPair(t, true, "newreno")
	recode := func(next func(*wire.Packet)) func(*wire.Packet) {
		return func(pkt *wire.Packet) {
			b, err := pkt.Marshal()
			if err != nil {
				t.Errorf("marshal: %v", err)
				return
			}
			back, err := wire.Unmarshal(b)
			if err != nil {
				t.Errorf("unmarshal: %v", err)
				return
			}
			next(back)
		}
	}
	p.link.AtoB.SetSink(recode(func(pkt *wire.Packet) { p.b.HandlePacket(pkt) }))
	p.link.BtoA.SetSink(recode(func(pkt *wire.Packet) { p.a.HandlePacket(pkt) }))

	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 300_000, "handshake over byte wire")

	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i * 17)
	}
	sent := 0
	pump := func() {
		for sent < len(data) {
			n := cli.Send(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	cli.OnAcked = pump
	pump()
	p.run(t, func() bool { return srv.Available() >= len(data) }, 5_000_000, "bulk over byte wire")
	got, n := srv.Recv(len(data))
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatal("byte-codec transit corrupted the stream")
	}
	cli.Close()
	p.run(t, func() bool { return srv.PeerClosed }, 1_000_000, "close over byte wire")
}

func TestDCTCPOverECNMarkingLink(t *testing.T) {
	// The flexibility claim end to end (§4.5 extended): DCTCP running as
	// the congestion-control program over an ECN-marking bottleneck.
	// The switch marks instead of dropping; DCTCP must (a) see marks,
	// (b) keep the queue bounded via proportional decrease, and
	// (c) deliver the stream intact with zero packet loss.
	k := sim.New()
	link := netsim.NewLink(k, 100, 600, 77)
	cfg := tcpproc.DefaultConfig()
	cfg.ECN = true
	optsA := Options{
		IP: wire.MakeAddr(10, 0, 0, 1), MAC: wire.MAC{2, 0, 0, 0, 0, 1},
		Cfg: cfg, Alg: "dctcp", CarryBytes: true, Seed: 1,
	}
	optsB := Options{
		IP: wire.MakeAddr(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2},
		Cfg: cfg, Alg: "dctcp", CarryBytes: true, Seed: 2,
	}
	a := New(k, optsA, link.AtoB.Send)
	b := New(k, optsB, link.BtoA.Send)
	link.AtoB.SetSink(func(p *wire.Packet) { b.HandlePacket(p) })
	link.BtoA.SetSink(func(p *wire.Packet) { a.HandlePacket(p) })
	k.Register(a)
	k.Register(b)
	// DCTCP-style shallow marking threshold (~1.6 us of queue ≈ 20 KB).
	link.AtoB.SetAQM(netsim.ECNThreshold(1600, 0))

	var srv *Conn
	b.Listen(80, func(c *Conn) { srv = c })
	cli := a.Dial(optsB.IP, 80)
	if !k.RunUntil(func() bool { return cli.Established && srv != nil }, 1_000_000) {
		t.Fatal("handshake timed out")
	}

	data := make([]byte, 512*1024)
	for i := range data {
		data[i] = byte(i * 23)
	}
	sent := 0
	pump := func() {
		for sent < len(data) {
			n := cli.Send(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	cli.OnAcked = pump
	pump()
	if !k.RunUntil(func() bool { return srv.Available() >= len(data) }, 100_000_000) {
		t.Fatal("bulk over marking link timed out")
	}
	got, n := srv.Recv(len(data))
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatal("DCTCP transfer corrupted")
	}
	if link.AtoB.MarkedPkts == 0 {
		t.Fatal("the bottleneck never marked — test exercised nothing")
	}
	if link.AtoB.DroppedPkts != 0 {
		t.Fatalf("packets dropped (%d) despite ECN marking", link.AtoB.DroppedPkts)
	}
	// The sender saw the feedback: alpha must be non-zero.
	if alpha := cli.TCB.CCVars[0]; alpha == 0 {
		t.Fatal("DCTCP alpha never moved — ECE feedback path broken")
	}
}
