package stack

import (
	"f4t/internal/cc"
	"f4t/internal/datapath"
	"f4t/internal/flow"
	"f4t/internal/seqnum"
)

// Conn is one TCP connection's host-side view: the byte-stream pointers
// the application manipulates (write/consume) plus the mirrors maintained
// from stack notifications.
type Conn struct {
	ep   *Endpoint
	ID   flow.ID
	TCB  *flow.TCB
	alg  cc.Algorithm
	meta datapath.FlowMeta

	txRing *datapath.Ring

	// Host-visible mirrors (updated by notifications).
	Established bool
	PeerClosed  bool
	Closed      bool
	WasReset    bool
	AckedTo     seqnum.Value // send bytes below this are released
	DeliveredTo seqnum.Value // in-order received data boundary

	// App-side pointers.
	writePtr    seqnum.Value // next send byte the app will queue
	readPtr     seqnum.Value // next received byte the app will consume
	ptrsInit    bool
	closeCalled bool

	passive  bool
	accepted bool
	freed    bool

	// App callbacks (all optional).
	OnEstablished func()
	OnData        func()
	OnAcked       func()
	OnPeerClosed  func()
	OnClosed      func()
}

// Alg exposes the connection's congestion-control instance (read-only use).
func (c *Conn) Alg() cc.Algorithm { return c.alg }

// initPtrs lazily anchors the app byte-stream pointers once the handshake
// has fixed both ISNs.
func (c *Conn) initPtrs() {
	if c.ptrsInit {
		return
	}
	c.writePtr = c.TCB.ISS.Add(1)
	c.readPtr = c.TCB.IRS.Add(1)
	if c.AckedTo == 0 {
		c.AckedTo = c.writePtr
	}
	if c.DeliveredTo == 0 {
		c.DeliveredTo = c.readPtr
	}
	c.ptrsInit = true
}

// SendSpace returns the free send-buffer bytes: a send() larger than this
// blocks (blocking sockets) or short-writes (non-blocking), §4.1.1.
func (c *Conn) SendSpace() int {
	c.initPtrs()
	used := int(c.writePtr.DistanceFrom(c.AckedTo))
	space := int(c.ep.Opt.Cfg.RcvBuf) - used
	if space < 0 {
		space = 0
	}
	return space
}

// Send queues data for transmission, copying into the TX ring (byte mode)
// and advancing the REQ pointer. It returns the number of bytes accepted,
// bounded by the free send-buffer space.
func (c *Conn) Send(data []byte) int {
	n := c.SendModelled(len(data), func(seq seqnum.Value, chunk []byte) {
		if c.txRing != nil {
			c.txRing.WriteAt(seq, chunk)
		}
	}, data)
	return n
}

// SendModelled queues n bytes without supplying payload (modelled-only
// transfers). store may be nil. It returns the accepted byte count.
func (c *Conn) SendModelled(n int, store func(seq seqnum.Value, chunk []byte), data []byte) int {
	if c.freed || c.closeCalled {
		return 0
	}
	c.initPtrs()
	space := c.SendSpace()
	if n > space {
		n = space
	}
	if n <= 0 {
		return 0
	}
	if store != nil && data != nil {
		store(c.writePtr, data[:n])
	}
	c.writePtr = c.writePtr.Add(seqnum.Size(n))
	ev := flow.Event{Kind: flow.EvUser, Flow: c.ID, HasReq: true, Req: c.writePtr}
	c.ep.Inject(c, &ev)
	return n
}

// Available returns the in-order received bytes not yet consumed.
func (c *Conn) Available() int {
	c.initPtrs()
	return int(c.DeliveredTo.DistanceFrom(c.readPtr))
}

// Recv consumes up to max available bytes and returns them (byte mode) or
// a nil slice with the count (modelled mode). Consuming advances the
// application-read pointer, which reopens the advertised window via a
// user event — recv() goes to hardware in F4T (§4.2.1).
func (c *Conn) Recv(max int) ([]byte, int) {
	c.initPtrs()
	n := c.Available()
	if n > max {
		n = max
	}
	if n <= 0 {
		return nil, 0
	}
	var out []byte
	if ring := c.ep.parser.Ring(c.ID); ring != nil {
		out = ring.ReadAt(c.readPtr, n)
	}
	c.readPtr = c.readPtr.Add(seqnum.Size(n))
	ev := flow.Event{Kind: flow.EvUser, Flow: c.ID, HasRead: true, AppRead: c.readPtr}
	c.ep.Inject(c, &ev)
	return out, n
}

// The split-effect surface below mirrors softstack.Socket's: pure ring
// copies that are invisible to the simulation, separated from the
// Inject calls that advance protocol state. netapi performs the copies
// while simulated time is frozen and defers the Injects into one
// deterministic per-tick pass. Valid only once Established (pointers
// anchored).

// WritePtr returns the next send byte the app will queue.
func (c *Conn) WritePtr() seqnum.Value { c.initPtrs(); return c.writePtr }

// ReadPtr returns the next received byte the app will consume.
func (c *Conn) ReadPtr() seqnum.Value { c.initPtrs(); return c.readPtr }

// ReadAt copies delivered bytes starting at ptr into buf without
// consuming them (the consume is PostRecv). The caller must keep
// [ptr, ptr+len(buf)) within [readPtr, DeliveredTo).
func (c *Conn) ReadAt(ptr seqnum.Value, buf []byte) {
	if ring := c.ep.parser.Ring(c.ID); ring != nil {
		ring.ReadInto(ptr, buf)
	}
}

// WriteAt stages payload bytes into the TX ring at ptr without injecting
// a user event (that is PostSend). The staged span must lie within the
// free send space above writePtr.
func (c *Conn) WriteAt(ptr seqnum.Value, data []byte) {
	if c.txRing != nil {
		c.txRing.WriteAt(ptr, data)
	}
}

// PostSend advances the REQ pointer to ptr with one user event (payload
// already staged via WriteAt). Always succeeds — the software stack has
// no command queue to fill; the bool return matches the softstack shape.
func (c *Conn) PostSend(ptr seqnum.Value) bool {
	if c.freed || c.closeCalled || ptr == c.writePtr {
		return true
	}
	c.writePtr = ptr
	ev := flow.Event{Kind: flow.EvUser, Flow: c.ID, HasReq: true, Req: ptr}
	c.ep.Inject(c, &ev)
	return true
}

// PostRecv advances the consumed pointer to ptr, re-opening the
// advertised window (bytes up to ptr were already copied out via
// ReadAt).
func (c *Conn) PostRecv(ptr seqnum.Value) bool {
	if c.freed || ptr == c.readPtr {
		return true
	}
	c.readPtr = ptr
	ev := flow.Event{Kind: flow.EvUser, Flow: c.ID, HasRead: true, AppRead: ptr}
	c.ep.Inject(c, &ev)
	return true
}

// Close initiates an orderly shutdown (FIN after queued data).
func (c *Conn) Close() {
	if c.freed || c.closeCalled {
		return
	}
	c.closeCalled = true
	ev := flow.Event{Kind: flow.EvUser, Flow: c.ID, Ctl: flow.CtlClose}
	c.ep.Inject(c, &ev)
}

// Abort resets the connection immediately.
func (c *Conn) Abort() {
	if c.freed {
		return
	}
	ev := flow.Event{Kind: flow.EvUser, Flow: c.ID, Ctl: flow.CtlAbort}
	c.ep.Inject(c, &ev)
}
