package stack

import (
	"bytes"
	"testing"
	"testing/quick"

	"f4t/internal/netsim"
	"f4t/internal/sim"
)

// TestProtocolFuzz drives two endpoints with a random operation schedule
// over a randomly faulty link and asserts the one invariant that matters:
// every byte the sender queued arrives at the receiver exactly once, in
// order, regardless of loss, duplication and reordering.
func TestProtocolFuzz(t *testing.T) {
	scenario := func(seedRaw uint32, lossRaw, dupRaw, reorderRaw uint8, opsRaw []byte) bool {
		p := newPair(t, true, "newreno")
		p.link.AtoB.SetFaults(netsim.Faults{
			LossProb:    float64(lossRaw%8) / 100,
			DupProb:     float64(dupRaw%8) / 100,
			ReorderProb: float64(reorderRaw%8) / 100,
			ReorderNS:   3_000,
		})
		p.link.BtoA.SetFaults(netsim.Faults{LossProb: float64(lossRaw%4) / 100})

		var srv *Conn
		p.b.Listen(80, func(c *Conn) { srv = c })
		cli := p.a.Dial(p.b.Opt.IP, 80)
		if !p.k.RunUntil(func() bool { return cli.Established && srv != nil }, 100_000_000) {
			return false
		}

		// Build the reference stream from the op schedule.
		var sent []byte
		rng := sim.NewRand(uint64(seedRaw))
		var received []byte
		opIdx := 0
		budget := int64(800_000_000)
		for p.k.Now() < budget {
			if opIdx < len(opsRaw) {
				op := opsRaw[opIdx]
				opIdx++
				n := int(op)%900 + 1
				chunk := make([]byte, n)
				for j := range chunk {
					chunk[j] = byte(rng.Uint32())
				}
				accepted := cli.Send(chunk)
				sent = append(sent, chunk[:accepted]...)
			}
			p.k.Run(2_000)
			if got, n := srv.Recv(1 << 20); n > 0 {
				received = append(received, got...)
			}
			if opIdx >= len(opsRaw) && len(received) >= len(sent) {
				break
			}
		}
		// Drain any tail still in flight.
		for i := 0; i < 2000 && len(received) < len(sent); i++ {
			p.k.Run(50_000)
			if got, n := srv.Recv(1 << 20); n > 0 {
				received = append(received, got...)
			}
		}
		return bytes.Equal(sent, received)
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(scenario, cfg); err != nil {
		t.Fatal(err)
	}
}
