// Regression tests for the RFC-conformance fixes: RST sequence
// validation (RFC 793 §3.4 / RFC 5961), the SYN-SENT unacceptable-ACK
// reset (RFC 793 p.66), and ephemeral-port allocation.
package stack

import (
	"testing"

	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

// craftRST builds a reset aimed at conn c's local endpoint, claiming to
// come from its peer, with the given sequence number.
func craftRST(c *Conn, srcMAC, dstMAC wire.MAC, seq seqnum.Size) *wire.Packet {
	tp := c.TCB.Tuple
	return &wire.Packet{
		Kind: wire.KindTCP,
		Eth:  wire.EthHeader{Src: srcMAC, Dst: dstMAC, Type: wire.EtherTypeIPv4},
		IP: wire.IPv4Header{
			Src: tp.RemoteAddr, Dst: tp.LocalAddr,
			TTL: 64, Protocol: wire.ProtoTCP,
		},
		TCP: wire.TCPHeader{
			SrcPort: tp.RemotePort, DstPort: tp.LocalPort,
			Seq: c.TCB.RcvNxt.Add(seq), Flags: wire.FlagRST,
		},
	}
}

// A blind/stale RST whose sequence number lies far outside the receive
// window must not tear down an established connection; the transfer must
// continue and the drop must be counted.
func TestStaleRSTDoesNotKillConnection(t *testing.T) {
	p := newPair(t, true, "newreno")
	var srv *Conn
	p.b.Listen(80, func(c *Conn) { srv = c })
	cli := p.a.Dial(p.b.Opt.IP, 80)
	p.run(t, func() bool { return cli.Established && srv != nil }, 100_000, "handshake")

	// Segment from a previous incarnation: 1 GiB away from RcvNxt.
	p.a.HandlePacket(craftRST(cli, p.b.Opt.MAC, p.a.Opt.MAC, 1<<30))
	if cli.WasReset || cli.Closed {
		t.Fatal("out-of-window RST reset the connection")
	}
	if p.a.RxOowRsts != 1 {
		t.Fatalf("RxOowRsts = %d, want 1", p.a.RxOowRsts)
	}

	// The connection still works.
	msg := []byte("still alive after the stale reset")
	cli.Send(msg)
	p.run(t, func() bool { return srv.Available() >= len(msg) }, 300_000, "post-RST delivery")

	// An in-window RST, by contrast, still does its job.
	p.a.HandlePacket(craftRST(cli, p.b.Opt.MAC, p.a.Opt.MAC, 0))
	if !cli.WasReset {
		t.Fatal("legitimate in-window RST was ignored")
	}
}

// Dialing a port nobody listens on must fail fast: the peer answers the
// orphan SYN with <SEQ=0><ACK=ISS+1><CTL=RST,ACK>, which the dialer in
// SYN-SENT validates against its SND.NXT and honors — long before the
// first retransmission timeout would fire.
func TestDialRefusedPortResetsPromptly(t *testing.T) {
	p := newPair(t, false, "newreno")
	p.a.LearnPeer(p.b.Opt.IP, p.b.Opt.MAC)
	cli := p.a.Dial(p.b.Opt.IP, 81) // nothing listens on 81
	// InitialRTO is 10 ms = 2.5 M cycles; refusal must land in a couple
	// of RTTs (~600 ns propagation each way).
	p.run(t, func() bool { return cli.WasReset }, 10_000, "connection refused")
	if p.a.Conns() != 0 {
		t.Fatalf("refused dial left %d conns", p.a.Conns())
	}
}

// Ephemeral allocation must wrap back to the ephemeral base, never
// through the well-known ports, and must skip tuples that are in use.
func TestEphemeralPortWrapAndCollision(t *testing.T) {
	p := newPair(t, false, "newreno")
	remote := p.b.Opt.IP

	c1 := p.a.Dial(remote, 80)
	if c1 == nil || c1.TCB.Tuple.LocalPort != 32769 {
		t.Fatalf("first dial port = %d, want 32769", c1.TCB.Tuple.LocalPort)
	}

	// Force the counter to the top of the range: the next allocations
	// must take 65535, then wrap to the base, never into ports < 32768.
	p.a.nextPort = 65534
	c2 := p.a.Dial(remote, 80)
	c3 := p.a.Dial(remote, 80)
	if c2.TCB.Tuple.LocalPort != 65535 {
		t.Fatalf("pre-wrap port = %d, want 65535", c2.TCB.Tuple.LocalPort)
	}
	if got := c3.TCB.Tuple.LocalPort; got < ephemeralBase {
		t.Fatalf("allocation wrapped into reserved ports: %d", got)
	}

	// Rewind the counter onto a live connection's port: Dial must skip
	// the occupied tuple instead of colliding.
	p.a.nextPort = c1.TCB.Tuple.LocalPort - 1
	c4 := p.a.Dial(remote, 80)
	if c4.TCB.Tuple.LocalPort == c1.TCB.Tuple.LocalPort {
		t.Fatal("Dial reused a port with a live connection on the same tuple")
	}

	// A different remote port is a different tuple space: no conflict,
	// the same local port is fair game.
	p.a.nextPort = c1.TCB.Tuple.LocalPort - 1
	c5 := p.a.Dial(remote, 443)
	if c5 == nil || c5.TCB.Tuple.LocalPort != c1.TCB.Tuple.LocalPort {
		t.Fatalf("distinct remote port needlessly avoided local port %d", c1.TCB.Tuple.LocalPort)
	}
}

// Churn through far more dials than the 32768-port ephemeral range: the
// counter wraps multiple times and every allocation must still succeed
// (old connections are aborted, so their tuples free up).
func TestDialChurnWrapsPortSpace(t *testing.T) {
	p := newPair(t, false, "newreno")
	p.a.LearnPeer(p.b.Opt.IP, p.b.Opt.MAC)
	const churn = 70_000
	for i := 0; i < churn; i++ {
		c := p.a.Dial(p.b.Opt.IP, 80)
		if c == nil {
			t.Fatalf("dial %d returned nil with only one live conn", i)
		}
		if c.TCB.Tuple.LocalPort < ephemeralBase {
			t.Fatalf("dial %d allocated reserved port %d", i, c.TCB.Tuple.LocalPort)
		}
		c.Abort()
	}
	if p.a.Conns() != 0 {
		t.Fatalf("%d conns leaked by churn", p.a.Conns())
	}
}
