package wire

import (
	"encoding/binary"
	"fmt"
)

// ICMP message types handled by FtEngine's diagnostics path (§4.1.2).
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
)

// ICMPEcho is an ICMP echo request/reply header (8 bytes) plus payload.
type ICMPEcho struct {
	Type uint8
	ID   uint16
	Seq  uint16
}

// EncodeICMPEcho writes the echo header and payload into b, computing the
// checksum over both, and returns the total length.
func EncodeICMPEcho(b []byte, m *ICMPEcho, payload []byte) int {
	n := ICMPHeaderLen + len(payload)
	_ = b[n-1]
	b[0] = m.Type
	b[1] = 0 // code
	binary.BigEndian.PutUint16(b[2:], 0)
	binary.BigEndian.PutUint16(b[4:], m.ID)
	binary.BigEndian.PutUint16(b[6:], m.Seq)
	copy(b[ICMPHeaderLen:], payload)
	cs := Checksum(b[:n], 0)
	binary.BigEndian.PutUint16(b[2:], cs)
	return n
}

// DecodeICMPEcho parses an ICMP echo message and returns the header and
// payload. The checksum is verified.
func DecodeICMPEcho(b []byte) (ICMPEcho, []byte, error) {
	if len(b) < ICMPHeaderLen {
		return ICMPEcho{}, nil, fmt.Errorf("wire: ICMP truncated: %d bytes", len(b))
	}
	if Checksum(b, 0) != 0 {
		return ICMPEcho{}, nil, fmt.Errorf("wire: ICMP checksum mismatch")
	}
	m := ICMPEcho{
		Type: b[0],
		ID:   binary.BigEndian.Uint16(b[4:]),
		Seq:  binary.BigEndian.Uint16(b[6:]),
	}
	return m, b[ICMPHeaderLen:], nil
}
