package wire

import (
	"encoding/binary"
	"fmt"
)

// IPv4Header is a fixed-size (no options) IPv4 header.
type IPv4Header struct {
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      Addr
	Dst      Addr
	ECN      uint8 // RFC 3168 codepoint (low two TOS bits)
}

// DefaultTTL is the TTL FtEngine writes into generated packets.
const DefaultTTL = 64

// EncodeIPv4 writes the header into b (at least IPv4HeaderLen bytes),
// computing the header checksum, and returns IPv4HeaderLen.
func EncodeIPv4(b []byte, h *IPv4Header) int {
	_ = b[IPv4HeaderLen-1]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.ECN & 0x3 // DSCP zero + ECN codepoint
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], 0x4000) // DF, no fragmentation
	b[8] = h.TTL
	b[9] = h.Protocol
	binary.BigEndian.PutUint16(b[10:], 0) // checksum placeholder
	binary.BigEndian.PutUint32(b[12:], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:], uint32(h.Dst))
	cs := Checksum(b[:IPv4HeaderLen], 0)
	binary.BigEndian.PutUint16(b[10:], cs)
	return IPv4HeaderLen
}

// DecodeIPv4 parses an IPv4 header from b, verifying version, length and
// header checksum. It returns the header and the header length in bytes.
func DecodeIPv4(b []byte) (IPv4Header, int, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, 0, fmt.Errorf("wire: IPv4 header truncated: %d bytes", len(b))
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, 0, fmt.Errorf("wire: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || ihl > len(b) {
		return IPv4Header{}, 0, fmt.Errorf("wire: bad IHL %d", ihl)
	}
	if Checksum(b[:ihl], 0) != 0 {
		return IPv4Header{}, 0, fmt.Errorf("wire: IPv4 header checksum mismatch")
	}
	h := IPv4Header{
		ECN:      b[1] & 0x3,
		TotalLen: binary.BigEndian.Uint16(b[2:]),
		ID:       binary.BigEndian.Uint16(b[4:]),
		TTL:      b[8],
		Protocol: b[9],
		Checksum: binary.BigEndian.Uint16(b[10:]),
		Src:      Addr(binary.BigEndian.Uint32(b[12:])),
		Dst:      Addr(binary.BigEndian.Uint32(b[16:])),
	}
	if int(h.TotalLen) < ihl {
		return IPv4Header{}, 0, fmt.Errorf("wire: IPv4 total length %d < header %d", h.TotalLen, ihl)
	}
	return h, ihl, nil
}
