package wire

import (
	"encoding/binary"
	"fmt"
)

// EthHeader is an Ethernet II frame header (FCS handled as a length-only
// trailer by the link model).
type EthHeader struct {
	Dst  MAC
	Src  MAC
	Type uint16
}

// EncodeEth writes the header into b (at least EthHeaderLen bytes) and
// returns EthHeaderLen.
func EncodeEth(b []byte, h *EthHeader) int {
	_ = b[EthHeaderLen-1]
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:], h.Type)
	return EthHeaderLen
}

// DecodeEth parses an Ethernet header from b.
func DecodeEth(b []byte) (EthHeader, int, error) {
	if len(b) < EthHeaderLen {
		return EthHeader{}, 0, fmt.Errorf("wire: Ethernet header truncated: %d bytes", len(b))
	}
	var h EthHeader
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.Type = binary.BigEndian.Uint16(b[12:])
	return h, EthHeaderLen, nil
}
