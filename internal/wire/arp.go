package wire

import (
	"encoding/binary"
	"fmt"
)

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPPacket is an Ethernet/IPv4 ARP body (RFC 826), 28 bytes on the wire.
type ARPPacket struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  Addr
	TargetMAC MAC
	TargetIP  Addr
}

// EncodeARP writes the ARP body into b (at least ARPBodyLen bytes) and
// returns ARPBodyLen.
func EncodeARP(b []byte, p *ARPPacket) int {
	_ = b[ARPBodyLen-1]
	binary.BigEndian.PutUint16(b[0:], 1)      // hardware type: Ethernet
	binary.BigEndian.PutUint16(b[2:], 0x0800) // protocol type: IPv4
	b[4] = 6                                  // hardware size
	b[5] = 4                                  // protocol size
	binary.BigEndian.PutUint16(b[6:], p.Op)
	copy(b[8:14], p.SenderMAC[:])
	binary.BigEndian.PutUint32(b[14:], uint32(p.SenderIP))
	copy(b[18:24], p.TargetMAC[:])
	binary.BigEndian.PutUint32(b[24:], uint32(p.TargetIP))
	return ARPBodyLen
}

// DecodeARP parses an ARP body from b.
func DecodeARP(b []byte) (ARPPacket, error) {
	if len(b) < ARPBodyLen {
		return ARPPacket{}, fmt.Errorf("wire: ARP body truncated: %d bytes", len(b))
	}
	if ht := binary.BigEndian.Uint16(b[0:]); ht != 1 {
		return ARPPacket{}, fmt.Errorf("wire: unsupported ARP hardware type %d", ht)
	}
	if pt := binary.BigEndian.Uint16(b[2:]); pt != 0x0800 {
		return ARPPacket{}, fmt.Errorf("wire: unsupported ARP protocol type %#04x", pt)
	}
	var p ARPPacket
	p.Op = binary.BigEndian.Uint16(b[6:])
	copy(p.SenderMAC[:], b[8:14])
	p.SenderIP = Addr(binary.BigEndian.Uint32(b[14:]))
	copy(p.TargetMAC[:], b[18:24])
	p.TargetIP = Addr(binary.BigEndian.Uint32(b[24:]))
	return p, nil
}
