package wire

import "sync"

// pktPool recycles Packet structs on the steady-state data path. The
// ownership rule is single-freer: the engine's RX stage is the only
// component that calls PutPacket (a frame's last reader once the parser
// has copied payload bytes and header fields out), so every other drop
// point — link loss, software-stack sinks, test harnesses — simply lets
// the garbage collector take the packet. That keeps the invariant
// trivially checkable: no packet ever has two owners, and a pooled
// packet can never still be referenced.
var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// GetPacket returns a zeroed Packet, recycled when possible. Callers
// must overwrite every field they rely on (the generator copies a full
// template over it).
func GetPacket() *Packet {
	return pktPool.Get().(*Packet)
}

// PutPacket recycles a packet. The struct is cleared first — in
// particular Payload is dropped, so a reply that aliased the request's
// payload slice (ICMP echo) keeps sole ownership of the backing array.
// The packet's own payload slot is kept: it is part of the pooled
// allocation (see PayloadSlot) and gets overwritten by the next owner.
func PutPacket(p *Packet) {
	if p == nil {
		return
	}
	slot := p.payloadBuf
	*p = Packet{}
	p.payloadBuf = slot
	pktPool.Put(p)
}
