package wire

// Checksum computes the RFC 1071 internet checksum over data with the
// given initial partial sum (use 0 to start). The returned value is the
// one's-complement of the one's-complement sum.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	i := 0
	for ; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < len(data) {
		sum += uint32(data[i]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// PartialSum folds data into a running partial sum without complementing,
// so multi-part checksums (pseudo-header + header + payload) compose.
func PartialSum(data []byte, sum uint32) uint32 {
	i := 0
	for ; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < len(data) {
		sum += uint32(data[i]) << 8
	}
	return sum
}

// FinishSum folds the carries of a partial sum and complements it.
func FinishSum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// PseudoHeaderSum returns the TCP/UDP pseudo-header partial sum for the
// given addresses, protocol, and L4 length.
func PseudoHeaderSum(src, dst Addr, proto uint8, l4len uint16) uint32 {
	var sum uint32
	sum += uint32(src >> 16)
	sum += uint32(src & 0xffff)
	sum += uint32(dst >> 16)
	sum += uint32(dst & 0xffff)
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}
