package wire

import (
	"encoding/binary"
	"fmt"

	"f4t/internal/seqnum"
)

// TCP header flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
	FlagURG uint8 = 1 << 5
	FlagECE uint8 = 1 << 6 // ECN echo (RFC 3168)
	FlagCWR uint8 = 1 << 7 // congestion window reduced
)

// TCPHeader is a fixed-size (no options) TCP header. F4T's data path
// generates plain 20 B headers; window scaling is applied out of band by
// the advertised-window computation.
type TCPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      seqnum.Value
	Ack      seqnum.Value
	Flags    uint8
	Window   uint16
	Checksum uint16
	Urgent   uint16
}

// EncodeTCP writes the header into b (which must be at least
// TCPHeaderLen bytes) and returns TCPHeaderLen.
func EncodeTCP(b []byte, h *TCPHeader) int {
	_ = b[TCPHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], uint32(h.Seq))
	binary.BigEndian.PutUint32(b[8:], uint32(h.Ack))
	b[12] = (TCPHeaderLen / 4) << 4 // data offset, no options
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:], h.Window)
	binary.BigEndian.PutUint16(b[16:], h.Checksum)
	binary.BigEndian.PutUint16(b[18:], h.Urgent)
	return TCPHeaderLen
}

// DecodeTCP parses a TCP header from b. It returns the header and the
// data offset in bytes, or an error for truncated or malformed input.
func DecodeTCP(b []byte) (TCPHeader, int, error) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, 0, fmt.Errorf("wire: TCP header truncated: %d bytes", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return TCPHeader{}, 0, fmt.Errorf("wire: bad TCP data offset %d", off)
	}
	return TCPHeader{
		SrcPort:  binary.BigEndian.Uint16(b[0:]),
		DstPort:  binary.BigEndian.Uint16(b[2:]),
		Seq:      seqnum.Value(binary.BigEndian.Uint32(b[4:])),
		Ack:      seqnum.Value(binary.BigEndian.Uint32(b[8:])),
		Flags:    b[13],
		Window:   binary.BigEndian.Uint16(b[14:]),
		Checksum: binary.BigEndian.Uint16(b[16:]),
		Urgent:   binary.BigEndian.Uint16(b[18:]),
	}, off, nil
}

// TCPChecksum computes the TCP checksum for the header+payload with the
// pseudo header. The header's Checksum field is treated as zero.
func TCPChecksum(src, dst Addr, hdr []byte, payload []byte) uint16 {
	sum := PseudoHeaderSum(src, dst, ProtoTCP, uint16(len(hdr)+len(payload)))
	// Fold header with the checksum field zeroed.
	sum = PartialSum(hdr[:16], sum)
	sum = PartialSum(hdr[18:], sum)
	sum = PartialSum(payload, sum)
	return FinishSum(sum)
}

// FlagString renders TCP flags like "SYN|ACK" for diagnostics.
func FlagString(f uint8) string {
	names := []struct {
		bit  uint8
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"},
		{FlagRST, "RST"}, {FlagPSH, "PSH"}, {FlagURG, "URG"},
		{FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		out = "-"
	}
	return out
}
