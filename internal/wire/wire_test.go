package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"f4t/internal/seqnum"
)

func seqnumValue(v uint32) seqnum.Value { return seqnum.Value(v) }

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	sum := Checksum(data, 0)
	if sum != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#04x, want %#04x", sum, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	even := Checksum([]byte{0xAB, 0x00}, 0)
	odd := Checksum([]byte{0xAB}, 0) // trailing byte pads with zero
	if even != odd {
		t.Fatalf("odd-length padding mismatch: %#04x vs %#04x", odd, even)
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	err := quick.Check(func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		cs := Checksum(data[2:], 0)
		buf := append([]byte{byte(cs >> 8), byte(cs)}, data[2:]...)
		return Checksum(buf, 0) == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartialSumComposition(t *testing.T) {
	err := quick.Check(func(a, b []byte) bool {
		// Folding in parts must equal folding the concatenation, as long
		// as the split is on a 16-bit boundary.
		if len(a)%2 != 0 {
			a = append(a, 0)
		}
		whole := Checksum(append(append([]byte{}, a...), b...), 0)
		parts := FinishSum(PartialSum(b, PartialSum(a, 0)))
		return whole == parts
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTuplehashDistribution(t *testing.T) {
	// Nearby tuples must not collide in the low bits (the cuckoo bug
	// this guards against shipped once already).
	seen := map[uint64]bool{}
	base := FourTuple{LocalAddr: MakeAddr(10, 0, 0, 1), RemoteAddr: MakeAddr(10, 0, 0, 2), RemotePort: 80}
	for p := 0; p < 1024; p++ {
		tup := base
		tup.LocalPort = uint16(30000 + p)
		h := tup.Hash() & 511
		seen[h] = true
	}
	if len(seen) < 256 {
		t.Fatalf("1024 sequential ports hit only %d/512 buckets", len(seen))
	}
}

func TestTupleReversed(t *testing.T) {
	tup := FourTuple{LocalAddr: 1, RemoteAddr: 2, LocalPort: 3, RemotePort: 4}
	r := tup.Reversed()
	if r.LocalAddr != 2 || r.RemoteAddr != 1 || r.LocalPort != 4 || r.RemotePort != 3 {
		t.Fatalf("reversed = %+v", r)
	}
	if r.Reversed() != tup {
		t.Fatal("double reversal is not identity")
	}
}

func TestTCPHeaderRoundTrip(t *testing.T) {
	err := quick.Check(func(src, dst uint16, seq, ack uint32, flags uint8, wnd uint16) bool {
		h := TCPHeader{SrcPort: src, DstPort: dst, Seq: seqnumValue(seq), Ack: seqnumValue(ack), Flags: flags & 0x3F, Window: wnd}
		var buf [TCPHeaderLen]byte
		EncodeTCP(buf[:], &h)
		got, off, err := DecodeTCP(buf[:])
		if err != nil || off != TCPHeaderLen {
			return false
		}
		got.Checksum = h.Checksum
		return got == h
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIPv4HeaderRoundTripAndChecksum(t *testing.T) {
	h := IPv4Header{TotalLen: 100, ID: 7, TTL: 64, Protocol: ProtoTCP, Src: MakeAddr(10, 0, 0, 1), Dst: MakeAddr(10, 0, 0, 2)}
	var buf [IPv4HeaderLen]byte
	EncodeIPv4(buf[:], &h)
	got, ihl, err := DecodeIPv4(buf[:])
	if err != nil || ihl != IPv4HeaderLen {
		t.Fatalf("decode: %v ihl=%d", err, ihl)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TotalLen != h.TotalLen || got.Protocol != h.Protocol {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Corrupt one byte: the checksum must catch it.
	buf[15] ^= 0x40
	if _, _, err := DecodeIPv4(buf[:]); err == nil {
		t.Fatal("corrupted IPv4 header decoded without error")
	}
}

func TestARPRoundTrip(t *testing.T) {
	p := ARPPacket{
		Op:        ARPRequest,
		SenderMAC: MAC{1, 2, 3, 4, 5, 6},
		SenderIP:  MakeAddr(10, 0, 0, 1),
		TargetIP:  MakeAddr(10, 0, 0, 2),
	}
	var buf [ARPBodyLen]byte
	EncodeARP(buf[:], &p)
	got, err := DecodeARP(buf[:])
	if err != nil || got != p {
		t.Fatalf("ARP round trip: %v %+v", err, got)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	m := ICMPEcho{Type: ICMPEchoRequest, ID: 42, Seq: 7}
	payload := []byte("ping payload")
	buf := make([]byte, ICMPHeaderLen+len(payload))
	EncodeICMPEcho(buf, &m, payload)
	got, pl, err := DecodeICMPEcho(buf)
	if err != nil || got != m || !bytes.Equal(pl, payload) {
		t.Fatalf("ICMP round trip: %v %+v %q", err, got, pl)
	}
	buf[9] ^= 1
	if _, _, err := DecodeICMPEcho(buf); err == nil {
		t.Fatal("corrupted ICMP decoded without error")
	}
}

func TestPacketMarshalUnmarshalTCP(t *testing.T) {
	p := &Packet{
		Kind: KindTCP,
		Eth:  EthHeader{Src: MAC{1}, Dst: MAC{2}},
		IP:   IPv4Header{Src: MakeAddr(10, 0, 0, 1), Dst: MakeAddr(10, 0, 0, 2)},
		TCP:  TCPHeader{SrcPort: 1000, DstPort: 80, Seq: 12345, Ack: 999, Flags: FlagACK | FlagPSH, Window: 500},
	}
	p.Payload = []byte("hello, wire format")
	p.PayloadLen = len(p.Payload)
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TCP.Seq != p.TCP.Seq || got.TCP.Flags != p.TCP.Flags || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v", got.TCP)
	}
	// Corrupt the payload: TCP checksum must catch it.
	b[len(b)-1] ^= 0xFF
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("corrupted TCP payload decoded without error")
	}
}

func TestPacketMarshalUnmarshalARPICMP(t *testing.T) {
	arp := &Packet{Kind: KindARP, Eth: EthHeader{Dst: BroadcastMAC},
		ARP: ARPPacket{Op: ARPRequest, SenderIP: 1, TargetIP: 2}}
	b, err := arp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil || got.Kind != KindARP || got.ARP.Op != ARPRequest {
		t.Fatalf("ARP packet round trip: %v", err)
	}

	icmp := &Packet{Kind: KindICMP,
		IP:   IPv4Header{Src: 1, Dst: 2},
		ICMP: ICMPEcho{Type: ICMPEchoRequest, ID: 5, Seq: 6}}
	b, err = icmp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(b)
	if err != nil || got.Kind != KindICMP || got.ICMP.ID != 5 {
		t.Fatalf("ICMP packet round trip: %v", err)
	}
}

func TestWireLenArithmetic(t *testing.T) {
	// The §5.1 constant: a TCP packet costs payload + 78 B on the wire.
	p := &Packet{Kind: KindTCP, PayloadLen: 128}
	if got := p.WireLen(); got != 128+PacketOverhead {
		t.Fatalf("WireLen(128) = %d, want %d", got, 128+PacketOverhead)
	}
	if PacketOverhead != 78 {
		t.Fatalf("PacketOverhead = %d, want 78", PacketOverhead)
	}
	// Minimum frame: a pure ACK is padded to 64 B + preamble/IFG.
	ack := &Packet{Kind: KindTCP, PayloadLen: 0}
	if got := ack.WireLen(); got != MinFrameLen+PreambleLen+InterFrameGap {
		t.Fatalf("pure ACK WireLen = %d", got)
	}
	// Header-only mode drops the payload from wire accounting.
	h := &Packet{Kind: KindTCP, PayloadLen: 1460, HeaderOnly: true}
	if got := h.WireLen(); got != MinFrameLen+PreambleLen+InterFrameGap {
		t.Fatalf("header-only WireLen = %d", got)
	}
}

func TestAddrString(t *testing.T) {
	if s := MakeAddr(192, 168, 1, 20).String(); s != "192.168.1.20" {
		t.Fatalf("addr string = %q", s)
	}
}

func TestFlagString(t *testing.T) {
	if s := FlagString(FlagSYN | FlagACK); s != "SYN|ACK" {
		t.Fatalf("flag string = %q", s)
	}
	if s := FlagString(0); s != "-" {
		t.Fatalf("empty flag string = %q", s)
	}
}
