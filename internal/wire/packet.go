package wire

import "fmt"

// Kind discriminates the packet types the simulation carries.
type Kind uint8

// Packet kinds.
const (
	KindTCP Kind = iota
	KindARP
	KindICMP
)

// Packet is the structured representation of one frame on the simulated
// link. Components exchange *Packet values; Marshal/Unmarshal provide the
// byte-accurate form used by codec tests and the RX parser's parsing path.
//
// Payload semantics: PayloadLen is authoritative for wire sizing. Payload
// may be nil for modelled-only transfers (throughput experiments that do
// not inspect bytes); when non-nil, len(Payload) == PayloadLen and the
// bytes travel end to end (protocol correctness tests).
type Packet struct {
	Kind Kind

	Eth  EthHeader
	IP   IPv4Header // KindTCP/KindICMP
	TCP  TCPHeader  // KindTCP
	ARP  ARPPacket  // KindARP
	ICMP ICMPEcho   // KindICMP

	PayloadLen int
	Payload    []byte

	// HeaderOnly marks packets of the §6 header-processing rig: sequence
	// arithmetic still honours PayloadLen, but the payload neither
	// crosses PCIe nor occupies link bandwidth, so WireLen counts only
	// the headers.
	HeaderOnly bool

	// payloadBuf is the packet's own payload storage, kept across pool
	// recycling (see PayloadSlot). Aliasing it from another packet is
	// forbidden: bytes here have exactly this packet's lifetime.
	payloadBuf []byte
}

// payloadCap sizes the pooled payload slot: one MSS on a standard
// 1500-byte MTU, with headroom.
const payloadCap = 2048

// PayloadSlot returns n bytes of the packet's own payload storage —
// the allocation-free way to attach TX payload to a pooled packet. The
// slot is part of the pooled allocation and survives PutPacket, so the
// steady-state data path reuses it instead of allocating per segment.
// Oversized requests fall back to a heap slice.
func (p *Packet) PayloadSlot(n int) []byte {
	if n > payloadCap {
		return make([]byte, n)
	}
	if p.payloadBuf == nil {
		p.payloadBuf = make([]byte, payloadCap)
	}
	return p.payloadBuf[:n]
}

// CopyHeaderFrom overwrites every field from the template while keeping
// the packet's own payload slot (a plain struct copy would leak the
// slot and, worse, alias the template's).
func (p *Packet) CopyHeaderFrom(t *Packet) {
	slot := p.payloadBuf
	*p = *t
	p.payloadBuf = slot
}

// Clone returns an independent copy of the packet with a private copy
// of the payload bytes in the clone's own slot. Every place a frame
// forks (link duplication, CE re-marking, forged injections) must use
// Clone rather than a struct copy: pooled packets own their payload
// storage, and an aliased payload turns into someone else's bytes as
// soon as the original is recycled.
func (p *Packet) Clone() *Packet {
	c := GetPacket()
	c.CopyHeaderFrom(p)
	c.Payload = nil
	if p.PayloadLen > 0 && p.Payload != nil {
		c.Payload = c.PayloadSlot(p.PayloadLen)
		copy(c.Payload, p.Payload[:p.PayloadLen])
	}
	return c
}

// FrameLen returns the Ethernet frame length (headers + payload + FCS),
// excluding preamble and inter-frame gap.
func (p *Packet) FrameLen() int {
	var n int
	pl := p.PayloadLen
	if p.HeaderOnly {
		pl = 0
	}
	switch p.Kind {
	case KindTCP:
		n = EthHeaderLen + IPv4HeaderLen + TCPHeaderLen + pl + EthFCSLen
	case KindARP:
		n = EthHeaderLen + ARPBodyLen + EthFCSLen
	case KindICMP:
		n = EthHeaderLen + IPv4HeaderLen + ICMPHeaderLen + pl + EthFCSLen
	}
	if n < MinFrameLen {
		n = MinFrameLen
	}
	return n
}

// WireLen returns the full serialization cost on the link, including
// preamble and inter-frame gap — the 78 B overhead of §5.1 for TCP.
func (p *Packet) WireLen() int {
	return p.FrameLen() + PreambleLen + InterFrameGap
}

// Tuple returns the TCP 4-tuple from the receiver's perspective (local =
// IP destination). Only valid for KindTCP.
func (p *Packet) Tuple() FourTuple {
	return FourTuple{
		LocalAddr:  p.IP.Dst,
		RemoteAddr: p.IP.Src,
		LocalPort:  p.TCP.DstPort,
		RemotePort: p.TCP.SrcPort,
	}
}

// Marshal encodes the packet into wire bytes (without preamble/IFG/FCS
// padding — the logical frame contents). TCP and ICMP checksums are
// computed; PayloadLen must equal len(Payload) when Payload is non-nil.
func (p *Packet) Marshal() ([]byte, error) {
	if p.Payload != nil && len(p.Payload) != p.PayloadLen {
		return nil, fmt.Errorf("wire: payload length mismatch: have %d want %d", len(p.Payload), p.PayloadLen)
	}
	switch p.Kind {
	case KindARP:
		b := make([]byte, EthHeaderLen+ARPBodyLen)
		eth := p.Eth
		eth.Type = EtherTypeARP
		EncodeEth(b, &eth)
		EncodeARP(b[EthHeaderLen:], &p.ARP)
		return b, nil
	case KindICMP:
		total := IPv4HeaderLen + ICMPHeaderLen + p.PayloadLen
		b := make([]byte, EthHeaderLen+total)
		eth := p.Eth
		eth.Type = EtherTypeIPv4
		EncodeEth(b, &eth)
		ip := p.IP
		ip.TotalLen = uint16(total)
		ip.Protocol = ProtoICMP
		if ip.TTL == 0 {
			ip.TTL = DefaultTTL
		}
		EncodeIPv4(b[EthHeaderLen:], &ip)
		EncodeICMPEcho(b[EthHeaderLen+IPv4HeaderLen:], &p.ICMP, p.Payload)
		return b, nil
	case KindTCP:
		total := IPv4HeaderLen + TCPHeaderLen + p.PayloadLen
		b := make([]byte, EthHeaderLen+total)
		eth := p.Eth
		eth.Type = EtherTypeIPv4
		EncodeEth(b, &eth)
		ip := p.IP
		ip.TotalLen = uint16(total)
		ip.Protocol = ProtoTCP
		if ip.TTL == 0 {
			ip.TTL = DefaultTTL
		}
		EncodeIPv4(b[EthHeaderLen:], &ip)
		tcpb := b[EthHeaderLen+IPv4HeaderLen:]
		EncodeTCP(tcpb, &p.TCP)
		copy(tcpb[TCPHeaderLen:], p.Payload)
		cs := TCPChecksum(ip.Src, ip.Dst, tcpb[:TCPHeaderLen], tcpb[TCPHeaderLen:])
		tcpb[16] = byte(cs >> 8)
		tcpb[17] = byte(cs)
		return b, nil
	}
	return nil, fmt.Errorf("wire: unknown packet kind %d", p.Kind)
}

// Unmarshal parses wire bytes into a structured packet, verifying IP and
// TCP/ICMP checksums.
func Unmarshal(b []byte) (*Packet, error) {
	eth, n, err := DecodeEth(b)
	if err != nil {
		return nil, err
	}
	body := b[n:]
	switch eth.Type {
	case EtherTypeARP:
		arp, err := DecodeARP(body)
		if err != nil {
			return nil, err
		}
		return &Packet{Kind: KindARP, Eth: eth, ARP: arp}, nil
	case EtherTypeIPv4:
		ip, ihl, err := DecodeIPv4(body)
		if err != nil {
			return nil, err
		}
		if int(ip.TotalLen) > len(body) {
			return nil, fmt.Errorf("wire: IPv4 total length %d exceeds frame %d", ip.TotalLen, len(body))
		}
		l4 := body[ihl:ip.TotalLen]
		switch ip.Protocol {
		case ProtoTCP:
			hdr, off, err := DecodeTCP(l4)
			if err != nil {
				return nil, err
			}
			payload := l4[off:]
			want := TCPChecksum(ip.Src, ip.Dst, l4[:off], payload)
			if hdr.Checksum != want {
				return nil, fmt.Errorf("wire: TCP checksum mismatch: have %#04x want %#04x", hdr.Checksum, want)
			}
			pl := make([]byte, len(payload))
			copy(pl, payload)
			return &Packet{Kind: KindTCP, Eth: eth, IP: ip, TCP: hdr, PayloadLen: len(pl), Payload: pl}, nil
		case ProtoICMP:
			m, payload, err := DecodeICMPEcho(l4)
			if err != nil {
				return nil, err
			}
			pl := make([]byte, len(payload))
			copy(pl, payload)
			return &Packet{Kind: KindICMP, Eth: eth, IP: ip, ICMP: m, PayloadLen: len(pl), Payload: pl}, nil
		default:
			return nil, fmt.Errorf("wire: unsupported IP protocol %d", ip.Protocol)
		}
	default:
		return nil, fmt.Errorf("wire: unsupported ethertype %#04x", eth.Type)
	}
}
