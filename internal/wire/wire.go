// Package wire defines the packet formats F4T speaks on the simulated
// link — Ethernet, ARP, IPv4, ICMP and TCP — with byte-accurate encoding,
// the internet checksum, and the per-packet wire overhead constants that
// the paper's goodput arithmetic depends on (§5.1).
package wire

import "fmt"

// Wire size constants. The paper counts 78 B of per-packet overhead:
// 40 B TCP/IP headers, 18 B Ethernet header (incl. FCS), 8 B preamble and
// 12 B inter-frame gap (§5.1).
const (
	EthHeaderLen  = 14 // dst MAC, src MAC, ethertype
	EthFCSLen     = 4
	PreambleLen   = 8
	InterFrameGap = 12
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20
	ICMPHeaderLen = 8
	ARPBodyLen    = 28

	// HeaderOverhead is the L2+L3+L4 header bytes of a plain TCP segment.
	HeaderOverhead = EthHeaderLen + EthFCSLen + IPv4HeaderLen + TCPHeaderLen // 58
	// PacketOverhead is the full per-packet wire cost beyond the payload.
	PacketOverhead = HeaderOverhead + PreambleLen + InterFrameGap // 78

	// MinFrameLen is the minimum Ethernet frame (header+payload+FCS).
	MinFrameLen = 64
)

// EtherType values used by the simulation.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
)

// ECN codepoints (RFC 3168, the low two bits of the IP TOS byte).
const (
	ECNNotECT uint8 = 0 // not ECN-capable transport
	ECNECT1   uint8 = 1
	ECNECT0   uint8 = 2
	ECNCE     uint8 = 3 // congestion experienced (router mark)
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// MakeAddr builds an Addr from dotted-quad components.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// BroadcastMAC is the Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the MAC in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// FourTuple identifies a TCP flow from the local endpoint's perspective:
// (local IP, local port, remote IP, remote port). The RX parser looks
// flows up by the received packet's 4-tuple (§4.1.2).
type FourTuple struct {
	LocalAddr  Addr
	RemoteAddr Addr
	LocalPort  uint16
	RemotePort uint16
}

// Reversed returns the tuple as seen from the other endpoint.
func (t FourTuple) Reversed() FourTuple {
	return FourTuple{
		LocalAddr:  t.RemoteAddr,
		RemoteAddr: t.LocalAddr,
		LocalPort:  t.RemotePort,
		RemotePort: t.LocalPort,
	}
}

// String renders the tuple as "a:p -> b:q".
func (t FourTuple) String() string {
	return fmt.Sprintf("%v:%d->%v:%d", t.LocalAddr, t.LocalPort, t.RemoteAddr, t.RemotePort)
}

// Hash mixes the tuple into a 64-bit value (SplitMix64 over the packed
// fields). Used by the cuckoo table, RSS, and the coalesce FIFO hash.
func (t FourTuple) Hash() uint64 {
	x := uint64(t.LocalAddr)<<32 | uint64(t.RemoteAddr)
	x ^= uint64(t.LocalPort)<<48 ^ uint64(t.RemotePort)<<16 ^ 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
