package core

import (
	"testing"

	"f4t/internal/host"
)

func TestTestbedDefaults(t *testing.T) {
	tb := NewTestbed(DefaultHostA(2), DefaultHostB(3), 0)
	if len(tb.A.Threads()) != 2 || len(tb.B.Threads()) != 3 {
		t.Fatalf("thread counts: %d/%d", len(tb.A.Threads()), len(tb.B.Threads()))
	}
	if tb.A.Engine == nil || tb.B.Engine == nil {
		t.Fatal("engines missing")
	}
	// Cores == channels: per-thread queue pairs (§4.6).
	if len(tb.A.Engine.Channels) != 2 {
		t.Fatalf("channels = %d, want 2", len(tb.A.Engine.Channels))
	}
}

func TestTestbedTransfer(t *testing.T) {
	tb := NewTestbed(DefaultHostA(1), DefaultHostB(1), 100)
	tb.B.Threads()[0].Listen(80)
	conn := tb.A.Threads()[0].Dial(0, 80)
	if !tb.K.RunUntil(conn.Established, 2_000_000) {
		t.Fatal("handshake timed out")
	}
	// The core may be momentarily busy draining completions; retry the
	// send like a non-blocking loop would.
	const want = 4096
	sent, got := 0, 0
	var srvConn host.Conn
	ok := tb.K.RunUntil(func() bool {
		tb.A.Threads()[0].Poll()
		if sent < want {
			sent += conn.TrySend(want-sent, nil)
		}
		for _, ev := range tb.B.Threads()[0].Poll() {
			if srvConn == nil && (ev.Kind == host.EvAccepted || ev.Kind == host.EvReadable) {
				srvConn = ev.Conn
			}
		}
		if srvConn != nil {
			// Retry each cycle: a single readiness event may race a busy
			// core, so recv until drained (non-blocking loop semantics).
			got += srvConn.TryRecv(1 << 16)
		}
		return got >= want
	}, 5_000_000)
	if !ok {
		t.Fatalf("sent %d, delivered %d/%d, engA flows=%d engB flows=%d", sent, got, want, tb.A.Engine.FlowCount(), tb.B.Engine.FlowCount())
	}
}

func TestSystemZeroValueDefaults(t *testing.T) {
	// A HostConfig with no engine/cost settings must come up with the
	// reference design.
	tb := NewTestbed(HostConfig{
		IP: DefaultHostA(1).IP, MAC: DefaultHostA(1).MAC,
	}, DefaultHostB(1), 0)
	if len(tb.A.Engine.FPCs()) != 8 {
		t.Fatalf("default FPC count = %d", len(tb.A.Engine.FPCs()))
	}
	if len(tb.A.Threads()) != 1 {
		t.Fatalf("default cores = %d", len(tb.A.Threads()))
	}
}
