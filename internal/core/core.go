// Package core assembles complete F4T systems: an FtEngine device, its
// host machine (CPU cores running the F4T library), and the network
// attachment — the deployable unit a user of the framework instantiates.
// It also provides the two-node testbed used by the examples and the
// evaluation.
package core

import (
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/host"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/wire"
)

// HostConfig describes one F4T host.
type HostConfig struct {
	IP    wire.Addr
	MAC   wire.MAC
	Cores int // CPU cores = application threads = command queue pairs

	// Engine carries the hardware design point; zero value = the
	// reference 8-FPC design. IP/MAC/Channels are filled from this
	// struct.
	Engine engine.Config
	Costs  cpu.Costs
}

// System is one F4T host: FtEngine + host machine.
type System struct {
	K       *sim.Kernel
	Engine  *engine.Engine
	Machine *host.F4TMachine
}

// NewSystem builds a host on the given kernel. tx attaches the wire;
// remotes maps Thread.Dial's remoteIdx to peer addresses.
func NewSystem(k *sim.Kernel, cfg HostConfig, remotes []wire.Addr, tx func(*wire.Packet)) *System {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.Engine.NumFPCs == 0 {
		cfg.Engine = engine.DefaultConfig()
	}
	if cfg.Costs.Syscall == 0 {
		cfg.Costs = cpu.DefaultCosts()
	}
	ec := cfg.Engine
	ec.IP = cfg.IP
	ec.MAC = cfg.MAC
	ec.Channels = cfg.Cores

	eng := engine.New(k, ec, tx)
	mach := host.NewF4TMachine(k, eng, cfg.Cores, cfg.Costs, remotes)
	// Direct registration (no TickerFunc wrapper) so the kernel sees the
	// components' NextWork hints and can skip quiescent spans.
	k.Register(eng)
	k.Register(mach)
	return &System{K: k, Engine: eng, Machine: mach}
}

// Threads returns the application threads (one per core).
func (s *System) Threads() []host.Thread { return s.Machine.Threads() }

// Testbed is two F4T hosts direct-connected by one link — the
// evaluation setup of §5.
type Testbed struct {
	K    *sim.Kernel
	Link *netsim.Link
	A, B *System
}

// NewTestbed builds the two-node testbed with the given engine
// configuration applied to both sides. linkGbps ≤ 0 defaults to 100.
func NewTestbed(cfgA, cfgB HostConfig, linkGbps int64) *Testbed {
	if linkGbps <= 0 {
		linkGbps = 100
	}
	k := sim.New()
	link := netsim.NewLink(k, linkGbps, 600, 424242)

	a := NewSystem(k, cfgA, []wire.Addr{cfgB.IP}, link.AtoB.Send)
	b := NewSystem(k, cfgB, []wire.Addr{cfgA.IP}, link.BtoA.Send)
	link.AtoB.SetSink(b.Engine.DeliverPacket)
	link.BtoA.SetSink(a.Engine.DeliverPacket)
	a.Engine.LearnPeer(cfgB.IP, cfgB.MAC)
	b.Engine.LearnPeer(cfgA.IP, cfgA.MAC)
	return &Testbed{K: k, Link: link, A: a, B: b}
}

// DefaultHostA returns a ready-to-use host configuration for node A.
func DefaultHostA(cores int) HostConfig {
	return HostConfig{
		IP:    wire.MakeAddr(10, 0, 0, 1),
		MAC:   wire.MAC{2, 0, 0, 0, 0, 1},
		Cores: cores,
	}
}

// DefaultHostB returns a ready-to-use host configuration for node B.
func DefaultHostB(cores int) HostConfig {
	return HostConfig{
		IP:    wire.MakeAddr(10, 0, 0, 2),
		MAC:   wire.MAC{2, 0, 0, 0, 0, 2},
		Cores: cores,
	}
}
