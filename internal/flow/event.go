package flow

import (
	"fmt"

	"f4t/internal/seqnum"
)

// EventKind discriminates the three TCP event sources (§4.1.2 ①②③).
type EventKind uint8

// Event kinds.
const (
	EvUser EventKind = iota // user request from the host interface
	EvRx                    // received packet, pre-processed by the RX parser
	EvTimeout               // timer expiry
)

// Event is one TCP event routed through the scheduler to an FPC (or to
// the memory manager when the flow lives in DRAM). Fields are the
// *cumulative pointer* form: user requests carry the absolute REQ pointer,
// not a length (§4.2.1), which is what makes lossless accumulation work.
type Event struct {
	Kind EventKind
	Flow ID

	// User-request payload (EvUser).
	Ctl     uint8        // CtlOpen/CtlClose/CtlAbort bits
	Req     seqnum.Value // new send-request boundary
	HasReq  bool
	AppRead seqnum.Value // new application-consumed boundary (recv())
	HasRead bool

	// Received-packet payload (EvRx), as digested by the RX parser: the
	// parser has already merged out-of-order chunks, so RcvData is the new
	// in-order boundary, not a per-segment range.
	Ack      seqnum.Value
	HasAck   bool
	IsDupAck bool // parser-detected pure duplicate ACK
	Wnd      uint32
	HasWnd   bool
	RcvData  seqnum.Value // new in-order received-data boundary
	HasData  bool
	RxFlags  uint8        // RxSYN/RxFIN/RxRST occurrence bits
	SynSeq   seqnum.Value // peer ISN, valid when RxSYN set
	FinSeq   seqnum.Value // sequence the peer's FIN occupies, valid when RxFIN set
	RstSeq   seqnum.Value // sequence the RST carries, valid when RxRST set
	RstAck   seqnum.Value // the RST's acknowledgment field, valid when RstHasAck
	RstHasAck bool        // the RST carried an ACK (validates resets in SYN-SENT)
	CE       bool         // data arrived CE-marked (RFC 3168 / DCTCP)
	ECE      bool         // ack carried the ECN-echo flag

	// AckNow asks for an immediate ACK even without an in-order data
	// advance: the RX parser sets it for out-of-window and out-of-order
	// arrivals so the peer sees duplicate ACKs and window updates. It
	// accumulates as a count so coalescing never erases the duplicate
	// ACKs fast retransmit depends on.
	AckNow bool

	// Timeout payload (EvTimeout).
	Timeouts uint8 // TORetrans/TOProbe/TODelAck/TOTimeWait bits

	// Whether this RX event is safe to coalesce with a previous one in the
	// scheduler's coalesce FIFOs: false when drops/reordering were seen, so
	// no information may be merged away (§4.4.1). User requests are always
	// coalescable.
	Coalescable bool
}

// String summarizes the event for diagnostics.
func (e Event) String() string {
	switch e.Kind {
	case EvUser:
		return fmt.Sprintf("user{flow=%d ctl=%03b req=%v/%t read=%v/%t}", e.Flow, e.Ctl, e.Req, e.HasReq, e.AppRead, e.HasRead)
	case EvRx:
		return fmt.Sprintf("rx{flow=%d ack=%v/%t data=%v/%t wnd=%d/%t fl=%03b dup=%t}",
			e.Flow, e.Ack, e.HasAck, e.RcvData, e.HasData, e.Wnd, e.HasWnd, e.RxFlags, e.IsDupAck)
	case EvTimeout:
		return fmt.Sprintf("to{flow=%d bits=%04b}", e.Flow, e.Timeouts)
	}
	return "event{?}"
}

// Valid-bit positions in EventRow.Valid.
const (
	VReq uint16 = 1 << iota
	VRead
	VAck
	VWnd
	VData
	VRxFlags
	VTimeouts
	VCtl
	VDupAck
	VAckNow
	VCE
	VECE
)

// EventRow is one entry of the FPC event table: the accumulated,
// fixed-size image of all events handled for a flow since the last TCB
// construction (§4.2.1). Each field carries a valid bit; construction
// overlays valid fields onto the TCB-table row and clears the bits
// (§4.2.3).
type EventRow struct {
	Valid uint16

	Req     seqnum.Value // latest user send pointer
	AppRead seqnum.Value // latest user consumed pointer
	Ack     seqnum.Value // latest cumulative ACK from the peer
	Wnd     uint32       // latest advertised window from the peer
	RcvData seqnum.Value // latest in-order received-data boundary
	RxFlags uint8        // OR of RxSYN/RxFIN/RxRST since last construction
	SynSeq  seqnum.Value
	FinSeq  seqnum.Value
	RstSeq  seqnum.Value // latest RST's sequence number
	RstAck  seqnum.Value // latest RST's ack field
	RstHasAck bool
	Timeouts uint8 // OR of timeout occurrence bits
	Ctl      uint8 // OR of control-request bits
	DupAckInc uint16 // duplicate-ACK increments (the single-cycle RMW, §4.2.1)
	AckNowCnt uint8  // immediate-ACK requests (saturating count)
	CEInc     uint16 // CE-marked data packets seen (counter, like dup-ACKs)
	ECEInc    uint16 // ECN-echo acks seen
}

// Accumulate folds one event into the row using the paper's rules:
// cumulative pointers overwrite (the newest value subsumes older ones),
// occurrence flags OR, and duplicate ACKs increment a counter. A fresh
// advancing ACK resets the duplicate counter, mirroring what an atomic
// sequential handler would leave behind.
func (r *EventRow) Accumulate(e *Event) {
	switch e.Kind {
	case EvUser:
		if e.HasReq {
			r.Req = e.Req
			r.Valid |= VReq
		}
		if e.HasRead {
			r.AppRead = e.AppRead
			r.Valid |= VRead
		}
		if e.Ctl != 0 {
			r.Ctl |= e.Ctl
			r.Valid |= VCtl
		}
	case EvRx:
		if e.IsDupAck {
			r.DupAckInc++
			r.Valid |= VDupAck
		} else if e.HasAck {
			// An advancing ACK supersedes earlier duplicate counts, exactly
			// as sequential atomic processing would.
			if r.Valid&VAck == 0 || e.Ack.GreaterThan(r.Ack) {
				r.Ack = e.Ack
				r.Valid |= VAck
				r.DupAckInc = 0
				r.Valid &^= VDupAck
			}
		}
		if e.HasWnd {
			r.Wnd = e.Wnd
			r.Valid |= VWnd
		}
		if e.HasData {
			if r.Valid&VData == 0 || e.RcvData.GreaterThan(r.RcvData) {
				r.RcvData = e.RcvData
				r.Valid |= VData
			}
		}
		if e.RxFlags != 0 {
			r.RxFlags |= e.RxFlags
			if e.RxFlags&RxSYN != 0 {
				r.SynSeq = e.SynSeq
			}
			if e.RxFlags&RxFIN != 0 {
				r.FinSeq = e.FinSeq
			}
			if e.RxFlags&RxRST != 0 {
				r.RstSeq = e.RstSeq
				r.RstAck = e.RstAck
				r.RstHasAck = e.RstHasAck
			}
			r.Valid |= VRxFlags
		}
		if e.AckNow {
			if r.AckNowCnt < 255 {
				r.AckNowCnt++
			}
			r.Valid |= VAckNow
		}
		if e.CE {
			r.CEInc++
			r.Valid |= VCE
		}
		if e.ECE {
			r.ECEInc++
			r.Valid |= VECE
		}
	case EvTimeout:
		r.Timeouts |= e.Timeouts
		r.Valid |= VTimeouts
	}
}

// MergeInto overlays the row's valid fields onto the TCB's event-input
// group (the TCB manager's construction step, §4.2.3) and clears the row.
func (r *EventRow) MergeInto(t *TCB) {
	in := &t.In
	if r.Valid&VReq != 0 {
		in.Req = r.Req
		in.Valid |= VReq
	}
	if r.Valid&VRead != 0 {
		in.AppRead = r.AppRead
		in.Valid |= VRead
	}
	if r.Valid&VAck != 0 {
		if in.Valid&VAck == 0 || r.Ack.GreaterThan(in.Ack) {
			in.Ack = r.Ack
			// The advancing ACK supersedes duplicate counts accumulated
			// before it (this row's own dup count, if any, postdates its
			// ACK and is added below).
			in.DupAckInc = 0
			in.Valid &^= VDupAck
		}
		in.Valid |= VAck
	}
	if r.Valid&VWnd != 0 {
		in.Wnd = r.Wnd
		in.Valid |= VWnd
	}
	if r.Valid&VData != 0 {
		if in.Valid&VData == 0 || r.RcvData.GreaterThan(in.RcvData) {
			in.RcvData = r.RcvData
		}
		in.Valid |= VData
	}
	if r.Valid&VRxFlags != 0 {
		in.RxFlags |= r.RxFlags
		if r.RxFlags&RxSYN != 0 {
			in.SynSeq = r.SynSeq
		}
		if r.RxFlags&RxFIN != 0 {
			in.FinSeq = r.FinSeq
		}
		if r.RxFlags&RxRST != 0 {
			in.RstSeq = r.RstSeq
			in.RstAck = r.RstAck
			in.RstHasAck = r.RstHasAck
		}
		in.Valid |= VRxFlags
	}
	if r.Valid&VTimeouts != 0 {
		in.Timeouts |= r.Timeouts
		in.Valid |= VTimeouts
	}
	if r.Valid&VCtl != 0 {
		in.Ctl |= r.Ctl
		in.Valid |= VCtl
	}
	if r.Valid&VDupAck != 0 {
		in.DupAckInc += r.DupAckInc
		in.Valid |= VDupAck
	}
	if r.Valid&VAckNow != 0 {
		if int(in.AckNowCnt)+int(r.AckNowCnt) > 255 {
			in.AckNowCnt = 255
		} else {
			in.AckNowCnt += r.AckNowCnt
		}
		in.Valid |= VAckNow
	}
	if r.Valid&VCE != 0 {
		in.CEInc += r.CEInc
		in.Valid |= VCE
	}
	if r.Valid&VECE != 0 {
		in.ECEInc += r.ECEInc
		in.Valid |= VECE
	}
	*r = EventRow{}
}

// Clear resets the row to empty.
func (r *EventRow) Clear() { *r = EventRow{} }

// Empty reports whether no valid fields are pending.
func (r *EventRow) Empty() bool { return r.Valid == 0 }
