// Package flow defines the per-flow transmission control block (TCB) and
// the three TCP event kinds FtEngine processes — user requests, received
// packets and timeouts (§4.2) — together with the event-accumulation rules
// of the event handler (§4.2.1): cumulative pointers overwrite, flags OR,
// and duplicate-ACK counting increments.
package flow

import (
	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

// ID is the global flow identifier used throughout F4T (§4.1.2).
type ID uint32

// NoFlow marks "no flow" in tables that store IDs.
const NoFlow = ID(0xFFFFFFFF)

// State is the TCP connection state (RFC 793).
type State uint8

// TCP connection states.
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateClosing
	StateTimeWait
	StateCloseWait
	StateLastAck
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSING", "TIME_WAIT", "CLOSE_WAIT", "LAST_ACK",
}

// String returns the RFC-style state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "UNKNOWN"
}

// Timeout event bits (the timer module's event kinds).
const (
	TORetrans   uint8 = 1 << 0 // retransmission timeout
	TOProbe     uint8 = 1 << 1 // zero-window persist probe
	TODelAck    uint8 = 1 << 2 // delayed-ACK timer
	TOTimeWait  uint8 = 1 << 3 // TIME_WAIT expiry
	TOKeepalive uint8 = 1 << 4 // idle-connection keepalive probe
)

// Control-request bits carried by user-request events.
const (
	CtlOpen  uint8 = 1 << 0 // connect(): active open
	CtlClose uint8 = 1 << 1 // close(): send FIN after pending data
	CtlAbort uint8 = 1 << 2 // abort: send RST, drop state
)

// Received-packet flag bits accumulated by the event handler. Only the
// *occurrence* matters (§4.2.1), so they OR together.
const (
	RxSYN uint8 = 1 << 0
	RxFIN uint8 = 1 << 1
	RxRST uint8 = 1 << 2
)

// CCVarCount is the number of spare TCB words reserved for congestion
// control algorithm state. The paper notes that implementing CUBIC needed
// only "adding some entries in the TCB" (§5.4); these are those entries.
// BBR is the widest program so far (bandwidth filter, min-RTT filter,
// delivery-rate epoch, mode word, saved window) and sets the count.
const CCVarCount = 10

// TCB holds all transmission state for one flow. Group (A) fields are
// owned by the flow processing unit (protocol state); group (B) fields are
// the merged event inputs written by the event handler and consumed by the
// next FPU pass.
type TCB struct {
	// Identity.
	FlowID ID
	Tuple  wire.FourTuple
	State  State

	// --- Group A: protocol state owned by the FPU ---

	// Transmit byte-stream pointers (sequence space).
	ISS    seqnum.Value // initial send sequence
	SndUna seqnum.Value // oldest unacknowledged byte
	SndNxt seqnum.Value // next byte to send
	Req    seqnum.Value // user send-request boundary (paper's REQ)
	SndWnd uint32       // peer's advertised window (bytes)
	FinSent bool        // our FIN occupies sequence Req (after data)
	FinSeq  seqnum.Value // sequence number our FIN occupies, valid when FinSent
	ClosePending bool   // app called close(); emit FIN once all data is sent

	// Receive byte-stream pointers.
	IRS     seqnum.Value // initial receive sequence
	RcvNxt  seqnum.Value // next in-order byte expected
	AppRead seqnum.Value // boundary consumed by the application (recv())
	RcvBuf  uint32       // receive buffer size (advertised window base)
	RcvFin  bool         // peer's FIN has been received in order
	PeerFinKnown bool        // a FIN was seen (possibly out of order)
	PeerFinSeq   seqnum.Value // sequence the peer's FIN occupies
	DeliveredTo seqnum.Value // boundary already announced to the app

	// Congestion control.
	Cwnd       uint32 // congestion window (bytes)
	Ssthresh   uint32
	DupAcks    uint16
	InRecovery bool
	RecoverSeq seqnum.Value // NewReno recovery point (SndNxt at loss)
	CCVars     [CCVarCount]uint64

	// RTT estimation (nanoseconds) and retransmission state.
	SRTT    int64
	RTTVar  int64
	RTO     int64 // current retransmission timeout (ns)
	Backoff uint8 // exponential backoff shift applied to RTO
	RTTSeq  seqnum.Value // sequence being timed for an RTT sample
	RTTSentAt int64      // ns timestamp when RTTSeq was sent
	RTTTiming bool       // an RTT sample is in flight

	// Timer deadlines in ns (0 = disarmed). The FPU arms/disarms these;
	// the timer module fires Timeout events when they expire.
	RetransAt   int64
	ProbeAt     int64
	DelAckAt    int64
	TimeWaitAt  int64
	KeepaliveAt int64

	// Keepalive probes sent without any response (RFC 1122 §4.2.3.6).
	KeepaliveMisses uint8

	// Host notification high-water marks (what the host has been told).
	AckedToHost     seqnum.Value // send-buffer space released to the app
	EstablishedSent bool
	ClosedSent      bool

	// ECN state (RFC 3168 / DCTCP). The receiver echoes congestion marks
	// on its acks; the sender accumulates the echo fraction per window
	// for the congestion-control program to consume.
	EcnEchoPending bool   // receiver: CE seen, echo ECE on the next acks
	EceBytes       uint64 // sender: acked bytes covered by ECE feedback
	AckedBytes     uint64 // sender: total acked bytes in the current window

	// Delayed-ACK bookkeeping (RFC 1122 §4.2.3.2).
	AckPending  bool         // an ACK is owed for received data
	LastAckSent seqnum.Value // receive boundary last advertised to the peer

	// --- Group B: merged event inputs (written by the event handler) ---
	In EventRow

	// --- Scheduling metadata (engine bookkeeping, not protocol) ---
	LastActive int64 // cycle of last event, for coldest-flow eviction
	EvictFlag  bool  // set when the scheduler requested eviction (§4.3.2)
}

// SndBufBytes returns the bytes of app data queued but not yet sent.
func (t *TCB) SndBufBytes() uint32 {
	return uint32(t.Req.DistanceFrom(t.SndNxt))
}

// InFlight returns the bytes sent but not yet acknowledged.
func (t *TCB) InFlight() uint32 {
	return uint32(t.SndNxt.DistanceFrom(t.SndUna))
}

// AdvertisedWindow computes the receive window to advertise: buffer space
// not yet occupied by undelivered in-order data.
func (t *TCB) AdvertisedWindow() uint32 {
	used := uint32(t.RcvNxt.DistanceFrom(t.AppRead))
	if used >= t.RcvBuf {
		return 0
	}
	return t.RcvBuf - used
}

// SendLimit returns the right edge of what congestion + flow control allow
// us to send: SndUna + min(cwnd, sndwnd).
func (t *TCB) SendLimit() seqnum.Value {
	w := t.Cwnd
	if t.SndWnd < w {
		w = t.SndWnd
	}
	return t.SndUna.Add(seqnum.Size(w))
}

// Closedish reports whether the connection has fully terminated.
func (t *TCB) Closedish() bool {
	return t.State == StateClosed || t.State == StateTimeWait
}
