package flow

import (
	"testing"
	"testing/quick"

	"f4t/internal/seqnum"
)

// genEvents builds a plausible in-order event stream for one flow from
// random bytes: monotone Req/AppRead/Ack/RcvData pointers, occasional
// flags, dup-acks and timeouts.
func genEvents(raw []byte) []Event {
	var out []Event
	req, read, ack, data := seqnum.Value(1000), seqnum.Value(2000), seqnum.Value(3000), seqnum.Value(4000)
	wnd := uint32(1 << 16)
	for _, b := range raw {
		var e Event
		switch b % 5 {
		case 0:
			req = req.Add(seqnum.Size(b) + 1)
			e = Event{Kind: EvUser, HasReq: true, Req: req}
		case 1:
			read = read.Add(seqnum.Size(b) + 1)
			e = Event{Kind: EvUser, HasRead: true, AppRead: read}
		case 2:
			ack = ack.Add(seqnum.Size(b) + 1)
			wnd = uint32(b)*17 + 100
			e = Event{Kind: EvRx, HasAck: true, Ack: ack, HasWnd: true, Wnd: wnd}
		case 3:
			if b&0x10 != 0 {
				e = Event{Kind: EvRx, IsDupAck: true, HasWnd: true, Wnd: wnd}
			} else {
				data = data.Add(seqnum.Size(b) + 1)
				e = Event{Kind: EvRx, HasData: true, RcvData: data, AckNow: b&0x20 != 0}
			}
		case 4:
			e = Event{Kind: EvTimeout, Timeouts: 1 << (b % 4)}
		}
		out = append(out, e)
	}
	return out
}

// TestAccumulateEquivalentToSequential is the §4.2.1 core property: the
// accumulated row, merged once, must leave the same event inputs in the
// TCB as handling each event in its own row-merge cycle (the sequential
// oracle). Cumulative pointers keep the last value, flags OR, dup-acks
// sum — nothing is lost by batching.
func TestAccumulateEquivalentToSequential(t *testing.T) {
	err := quick.Check(func(raw []byte) bool {
		events := genEvents(raw)

		// Batched: accumulate all events into one row, merge once.
		var batched TCB
		var row EventRow
		for i := range events {
			row.Accumulate(&events[i])
		}
		row.MergeInto(&batched)

		// Sequential oracle: each event in its own row, merged at once.
		var seq TCB
		for i := range events {
			var r EventRow
			r.Accumulate(&events[i])
			r.MergeInto(&seq)
		}

		return batched.In == seq.In
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateUserOverwrites(t *testing.T) {
	var r EventRow
	r.Accumulate(&Event{Kind: EvUser, HasReq: true, Req: 1000})
	r.Accumulate(&Event{Kind: EvUser, HasReq: true, Req: 1300})
	if r.Req != 1300 || r.Valid&VReq == 0 {
		t.Fatalf("REQ should hold the latest pointer: %+v", r)
	}
}

func TestAccumulateAckResetsDupCount(t *testing.T) {
	var r EventRow
	r.Accumulate(&Event{Kind: EvRx, IsDupAck: true})
	r.Accumulate(&Event{Kind: EvRx, IsDupAck: true})
	if r.DupAckInc != 2 {
		t.Fatalf("dup count = %d, want 2", r.DupAckInc)
	}
	// An advancing ACK supersedes the duplicates.
	r.Accumulate(&Event{Kind: EvRx, HasAck: true, Ack: 500})
	if r.DupAckInc != 0 || r.Valid&VDupAck != 0 {
		t.Fatalf("advancing ACK should reset dups: %+v", r)
	}
	if r.Valid&VAck == 0 || r.Ack != 500 {
		t.Fatalf("ack not recorded: %+v", r)
	}
}

func TestAccumulateStaleAckIgnored(t *testing.T) {
	var r EventRow
	r.Accumulate(&Event{Kind: EvRx, HasAck: true, Ack: 500})
	r.Accumulate(&Event{Kind: EvRx, HasAck: true, Ack: 400}) // older
	if r.Ack != 500 {
		t.Fatalf("stale ack overwrote newer: %d", r.Ack)
	}
}

func TestAccumulateFlagsOR(t *testing.T) {
	var r EventRow
	r.Accumulate(&Event{Kind: EvRx, RxFlags: RxSYN, SynSeq: 77})
	r.Accumulate(&Event{Kind: EvRx, RxFlags: RxFIN, FinSeq: 99})
	if r.RxFlags != RxSYN|RxFIN || r.SynSeq != 77 || r.FinSeq != 99 {
		t.Fatalf("flag accumulation: %+v", r)
	}
	r.Accumulate(&Event{Kind: EvTimeout, Timeouts: TORetrans})
	r.Accumulate(&Event{Kind: EvTimeout, Timeouts: TOProbe})
	if r.Timeouts != TORetrans|TOProbe {
		t.Fatalf("timeout OR: %08b", r.Timeouts)
	}
}

func TestMergeClearsRow(t *testing.T) {
	var r EventRow
	var tcb TCB
	r.Accumulate(&Event{Kind: EvUser, HasReq: true, Req: 42})
	r.MergeInto(&tcb)
	if !r.Empty() {
		t.Fatal("merge must clear the valid bits (§4.2.3 step ④)")
	}
	if tcb.In.Valid&VReq == 0 || tcb.In.Req != 42 {
		t.Fatalf("merge lost the event: %+v", tcb.In)
	}
}

func TestMergePreservesNewerAck(t *testing.T) {
	var tcb TCB
	var r1 EventRow
	r1.Accumulate(&Event{Kind: EvRx, HasAck: true, Ack: 900})
	r1.MergeInto(&tcb)
	// A late row with an older ack must not regress the merged input.
	var r2 EventRow
	r2.Accumulate(&Event{Kind: EvRx, HasAck: true, Ack: 800})
	r2.MergeInto(&tcb)
	if tcb.In.Ack != 900 {
		t.Fatalf("merged ack regressed to %d", tcb.In.Ack)
	}
}

func TestMergeAckNowSaturates(t *testing.T) {
	var tcb TCB
	for i := 0; i < 3; i++ {
		var r EventRow
		for j := 0; j < 200; j++ {
			r.Accumulate(&Event{Kind: EvRx, AckNow: true})
		}
		r.MergeInto(&tcb)
	}
	if tcb.In.AckNowCnt != 255 {
		t.Fatalf("AckNowCnt = %d, want saturation at 255", tcb.In.AckNowCnt)
	}
}

func TestTCBWindows(t *testing.T) {
	tcb := TCB{
		SndUna: 1000, SndNxt: 1500, Req: 2000,
		Cwnd: 300, SndWnd: 800,
		RcvNxt: 5000, AppRead: 4900, RcvBuf: 1000,
	}
	if got := tcb.InFlight(); got != 500 {
		t.Errorf("InFlight = %d, want 500", got)
	}
	if got := tcb.SndBufBytes(); got != 500 {
		t.Errorf("SndBufBytes = %d, want 500", got)
	}
	if got := tcb.SendLimit(); got != 1300 { // una + min(cwnd, wnd)
		t.Errorf("SendLimit = %d, want 1300", got)
	}
	if got := tcb.AdvertisedWindow(); got != 900 { // 1000 - (5000-4900)
		t.Errorf("AdvertisedWindow = %d, want 900", got)
	}
	tcb.AppRead = tcb.RcvNxt.Sub(2000) // app far behind
	if got := tcb.AdvertisedWindow(); got != 0 {
		t.Errorf("overfull window = %d, want 0", got)
	}
}

func TestStateString(t *testing.T) {
	if StateEstablished.String() != "ESTABLISHED" || StateTimeWait.String() != "TIME_WAIT" {
		t.Fatal("state names wrong")
	}
	if State(200).String() != "UNKNOWN" {
		t.Fatal("out-of-range state name")
	}
}
