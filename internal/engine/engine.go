// Package engine assembles FtEngine (§4.1.2): the control path (host
// interface, RX parser event generation, timer module, scheduler, FPCs,
// memory manager) and the data path (packet generator with MSS
// splitting, RX parser with cuckoo lookup and logical reassembly, ARP,
// ICMP), connected to host software through the PCIe command/completion
// channels of internal/hostif.
//
// The same type, configured differently, realizes the ablation designs
// of §6: Baseline (stall-mode processing), 1FPC, 1FPC-C (+coalescing)
// and the 8-FPC F4T reference.
package engine

import (
	"fmt"
	"unsafe"

	"f4t/internal/cc"
	"f4t/internal/datapath"
	"f4t/internal/engine/fpc"
	"f4t/internal/engine/memmgr"
	"f4t/internal/engine/sched"
	"f4t/internal/flow"
	"f4t/internal/hostif"
	"f4t/internal/seqnum"
	"f4t/internal/sim"
	"f4t/internal/tcpproc"
	"f4t/internal/telemetry"
	"f4t/internal/timerq"
	"f4t/internal/wire"
)

// Config selects the hardware design point.
type Config struct {
	IP  wire.Addr
	MAC wire.MAC

	NumFPCs     int // reference design: 8
	SlotsPerFPC int // reference design: 128
	MaxFlows    int // 65,536 (§5.3)

	Alg    string // congestion-control FPU program
	Memory memmgr.MemoryKind
	// TCBCache overrides the memory manager's direct-mapped cache size
	// (0 = the memory kind's default, -1 = disabled).
	TCBCache int
	Proto    tcpproc.Config

	// Design-variant knobs (Figs 2, 15, 16).
	Mode               fpc.Mode
	StallNum, StallDen int64 // stall-mode cycles per event (rational)
	FPULatency         int   // 0 = take the algorithm's pipeline latency
	Coalesce           bool  // scheduler event coalescing (§4.4.1)

	Channels     int   // host command queue pairs (one per CPU thread)
	CommandBytes int64 // 16, or 8 for the §6 PCIe optimization
	PCIe         hostif.PCIeConfig

	CarryBytes bool // move real payload bytes end to end
	HeaderOnly bool // §6 rig: suppress payload on the wire and over PCIe

	Seed uint64
}

// DefaultConfig is the reference 8-FPC design of §4.7.
func DefaultConfig() Config {
	return Config{
		NumFPCs:      8,
		SlotsPerFPC:  128,
		MaxFlows:     65536,
		Alg:          "newreno",
		Memory:       memmgr.HBM,
		Proto:        tcpproc.DefaultConfig(),
		Mode:         fpc.ModeAccumulate,
		Coalesce:     true,
		Channels:     1,
		CommandBytes: hostif.CommandBytes16,
		PCIe:         hostif.DefaultPCIe(),
	}
}

// Per-cycle work budgets of the modeled hardware (§4.1.2). Each stage
// drains up to its budget per cycle — batching work behind one dispatch
// instead of one item per tick — and the budgets are deterministic
// constants, so serial, skipping, and sharded fabrics process identical
// batches. They are figure semantics, not tunables: widening one changes
// every throughput/latency result. The event-driven dispatch in Tick and
// the sub-components only skips stages whose queues are provably empty;
// it never widens a budget.
const (
	cmdBudgetPerCycle     = 4 // host commands decoded per cycle across channels (①)
	rxBudgetPerCycle      = 2 // frames parsed per cycle (322 MHz parser vs 250 MHz core)
	retryBudgetPerCycle   = 4 // bounced events re-submitted per cycle
	timeoutBudgetPerCycle = 4 // deduped timeout events submitted per cycle
)

// flowMeta is the engine's per-flow directory entry.
type flowMeta struct {
	tcb     *flow.TCB
	meta    datapath.FlowMeta
	channel int // owning host queue pair (RSS, §4.6)
	txRing  *datapath.Ring
	rxRing  *datapath.Ring
	// fetch reads send-payload bytes from txRing; built once per flow so
	// the per-segment emit path does not allocate a closure.
	fetch datapath.PayloadFetch
}

// tcbArenaChunk is the TCB bump-allocator granularity.
const tcbArenaChunk = 256

// tcbArena bump-allocates TCBs in chunks. Slots are deliberately never
// reused: the scheduler's swap-in path parks *flow.TCB pointers on
// kernel timers that can fire after the flow is freed, so recycling a
// slot could hand two connections the same TCB. A dead TCB just pins
// its chunk until the whole chunk is unreferenced; the steady-state
// cost is one allocation per tcbArenaChunk connections instead of one
// per connection.
type tcbArena struct {
	chunk  []flow.TCB
	off    int
	chunks int64 // chunks ever allocated (memory accounting)
}

func (a *tcbArena) alloc() *flow.TCB {
	if a.off >= len(a.chunk) {
		a.chunk = make([]flow.TCB, tcbArenaChunk)
		a.off = 0
		a.chunks++
	}
	t := &a.chunk[a.off]
	a.off++
	return t
}

// memBytes is the arena's allocated footprint (live and dead chunks;
// dead TCBs pin their chunk by design, so this is the honest number).
func (a *tcbArena) memBytes() int64 {
	return a.chunks * tcbArenaChunk * int64(unsafe.Sizeof(flow.TCB{}))
}

type listener struct {
	channels []int // SO_REUSEPORT round-robin over these queue pairs
	next     int
}

// Engine is one FtEngine instance.
type Engine struct {
	K   *sim.Kernel
	cfg Config

	PCIe     *hostif.PCIe
	Channels []*hostif.Channel

	fpcs   []*fpc.FPC
	sch    *sched.Scheduler
	mem    *memmgr.Manager
	parser *datapath.Parser
	gen    *datapath.Generator
	arp    *datapath.ARP
	timers *timerq.Queue

	tx func(*wire.Packet)
	// TX pacing: generated packets serialize through the MAC-side buffer
	// so the control path sees backpressure when the link bottlenecks
	// (§5.1: slower packet generation ⇒ more event accumulation).
	txRate *sim.ByteRate

	flows     map[flow.ID]*flowMeta
	listeners map[uint16]*listener
	freeIDs   []flow.ID
	nextID    flow.ID
	rng       *sim.Rand
	tcbs      tcbArena

	// Pre-bound hot-path callbacks (built once in New): the steady-state
	// packet path schedules timers and expires deadlines without
	// allocating a closure per event.
	emitFn     func(*wire.Packet)
	transmitFn func(any)
	txFn       func(any)
	timerLookT func(flow.ID) *flow.TCB
	timerFire  func(flow.ID, uint8)

	rxQueue *sim.Queue[*wire.Packet]
	// Events bounced off full coalesce FIFOs, retried a few per cycle in
	// order. Timeout bits dedupe per flow so backpressure cannot grow
	// the backlog beyond one entry per flow.
	retryQ    *sim.Queue[flow.Event]
	toPending map[flow.ID]uint8
	toOrder   *sim.Queue[flow.ID]
	compBatch [][]hostif.Completion

	arpWait map[wire.Addr][]*wire.Packet

	// Stats.
	RxPkts, TxPkts  sim.Counter
	RxDropped       sim.Counter
	RxNoFlow        sim.Counter
	CmdsProcessed   sim.Counter
	CompletionsSent sim.Counter
	FlowsAccepted   sim.Counter
	FlowsRejected   sim.Counter // opens refused because the flow table/ID space is exhausted
	RetransSegs     sim.Counter // segments re-sent (loss recovery + RTO)
	OowRstDrops     sim.Counter // inbound RSTs dropped by sequence validation

	// Telemetry (nil when disabled; see telemetry.go).
	trc *telemetry.Trace
	tid int32
	ft  *telemetry.FlowTable
}

// New builds an engine; tx attaches the network link.
func New(k *sim.Kernel, cfg Config, tx func(*wire.Packet)) *Engine {
	if cfg.NumFPCs <= 0 {
		cfg.NumFPCs = 1
	}
	if cfg.SlotsPerFPC <= 0 {
		cfg.SlotsPerFPC = 128
	}
	if cfg.MaxFlows <= 0 {
		cfg.MaxFlows = 65536
	}
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	if cfg.CommandBytes == 0 {
		cfg.CommandBytes = hostif.CommandBytes16
	}
	if cfg.Proto.MSS == 0 {
		cfg.Proto = tcpproc.DefaultConfig()
	}
	if cfg.Alg == "" {
		cfg.Alg = "newreno"
	}

	e := &Engine{
		K:         k,
		cfg:       cfg,
		tx:        tx,
		flows:     make(map[flow.ID]*flowMeta),
		listeners: make(map[uint16]*listener),
		rng:       sim.NewRand(cfg.Seed + 11),
		rxQueue:   sim.NewQueue[*wire.Packet](4096),
		retryQ:    sim.NewQueue[flow.Event](0),
		toPending: make(map[flow.ID]uint8),
		toOrder:   sim.NewQueue[flow.ID](0),
		arpWait:   make(map[wire.Addr][]*wire.Packet),
		timers:    timerq.New(),
		parser:    datapath.NewParser(cfg.MaxFlows, cfg.Proto.RcvBuf, cfg.Proto.WndScale, cfg.Seed+12),
		gen:       datapath.NewGenerator(cfg.Proto.MSS, cfg.Proto.WndScale),
		arp:       datapath.NewARP(cfg.IP, cfg.MAC),
	}
	if cfg.Proto.ECN {
		e.gen.EnableECN()
	}

	e.txRate = sim.GbpsRate(100)
	e.PCIe = hostif.NewPCIe(k, cfg.PCIe)
	e.Channels = make([]*hostif.Channel, cfg.Channels)
	e.compBatch = make([][]hostif.Completion, cfg.Channels)
	for i := range e.Channels {
		e.Channels[i] = hostif.NewChannel(k, e.PCIe, cfg.CommandBytes)
	}

	alg := cc.MustNew(cfg.Alg)
	memCfg := memmgr.DefaultConfig(cfg.Memory)
	switch {
	case cfg.TCBCache > 0:
		memCfg.CacheSize = cfg.TCBCache
	case cfg.TCBCache < 0:
		memCfg.CacheSize = 0
	}
	e.mem = memmgr.New(k, memCfg, memmgr.Hooks{
		OnSwapInRequest: func(id flow.ID) { e.sch.RequestSwapIn(id) },
	})
	e.fpcs = make([]*fpc.FPC, cfg.NumFPCs)
	for i := range e.fpcs {
		idx := i
		e.fpcs[i] = fpc.New(k, fpc.Config{
			Slots:      cfg.SlotsPerFPC,
			FPULatency: cfg.FPULatency,
			Mode:       cfg.Mode,
			StallNum:   cfg.StallNum,
			StallDen:   cfg.StallDen,
			Alg:        alg,
			Proto:      &e.cfg.Proto,
			CanIssue:   e.txReady,
		}, fpc.Hooks{
			OnActions:    func(t *flow.TCB, a *tcpproc.Actions) { e.applyActions(t, a) },
			OnEvict:      func(t *flow.TCB) { e.sch.Evicted(idx, t) },
			OnInstall:    func(id flow.ID) { e.sch.Installed(idx, id) },
			OnEvictAbort: func(id flow.ID) { e.sch.EvictAborted(idx, id) },
		})
	}
	schedCfg := sched.DefaultConfig(cfg.MaxFlows, cfg.NumFPCs)
	schedCfg.Coalesce = cfg.Coalesce
	e.sch = sched.New(k, schedCfg, e.fpcs, e.mem)
	// Doorbell wakes: a host Post must pull the kernel out of a
	// quiescent skip so the command is fetched on the next cycle.
	for _, ch := range e.Channels {
		ch.SetDoorbell(func() { k.Wake(e) })
	}
	e.emitFn = e.emitPacket
	e.transmitFn = func(arg any) { e.transmit(arg.(*wire.Packet)) }
	e.txFn = func(arg any) { e.tx(arg.(*wire.Packet)) }
	e.timerLookT = func(id flow.ID) *flow.TCB {
		if fm := e.flows[id]; fm != nil {
			return fm.tcb
		}
		return nil
	}
	e.timerFire = func(id flow.ID, kind uint8) {
		e.submit(flow.Event{Kind: flow.EvTimeout, Flow: id, Timeouts: kind, Coalescable: true})
	}
	return e
}

// SetTx attaches the wire transmit function.
func (e *Engine) SetTx(tx func(*wire.Packet)) { e.tx = tx }

// LearnPeer installs a static ARP entry.
func (e *Engine) LearnPeer(ip wire.Addr, mac wire.MAC) { e.arp.Learn(ip, mac) }

// Scheduler exposes the scheduler for tests and experiment probes.
func (e *Engine) Scheduler() *sched.Scheduler { return e.sch }

// Mem exposes the memory manager for tests.
func (e *Engine) Mem() *memmgr.Manager { return e.mem }

// FPCs exposes the flow processing cores for tests.
func (e *Engine) FPCs() []*fpc.FPC { return e.fpcs }

// FlowCount returns live flows across all locations.
func (e *Engine) FlowCount() int { return len(e.flows) }

// TCB returns a flow's TCB (tests/diagnostics).
func (e *Engine) TCB(id flow.ID) *flow.TCB {
	if fm := e.flows[id]; fm != nil {
		return fm.tcb
	}
	return nil
}

// TxRingSize returns the per-flow send-buffer capacity in bytes (the
// 512 KB TCP buffer of §5), which bounds host-side Send admission even
// in modelled mode.
func (e *Engine) TxRingSize() uint32 { return e.cfg.Proto.RcvBuf }

// TxRing returns a flow's TX data buffer (host library writes send bytes
// here before posting the Send command). Nil in modelled mode.
func (e *Engine) TxRing(id flow.ID) *datapath.Ring {
	if fm := e.flows[id]; fm != nil {
		return fm.txRing
	}
	return nil
}

// RxRing returns a flow's RX data buffer (host library reads received
// bytes from here). Nil in modelled mode.
func (e *Engine) RxRing(id flow.ID) *datapath.Ring {
	if fm := e.flows[id]; fm != nil {
		return fm.rxRing
	}
	return nil
}

// allocID draws a flow ID from the free list.
func (e *Engine) allocID() (flow.ID, bool) {
	if n := len(e.freeIDs); n > 0 {
		id := e.freeIDs[n-1]
		e.freeIDs = e.freeIDs[:n-1]
		return id, true
	}
	if int(e.nextID) >= e.cfg.MaxFlows {
		return 0, false
	}
	id := e.nextID
	e.nextID++
	return id, true
}

// newFlow allocates the TCB, directory entry, parser registration and
// data rings for one connection and places it via the scheduler.
func (e *Engine) newFlow(tuple wire.FourTuple, channel int, state flow.State) (*flowMeta, bool) {
	id, ok := e.allocID()
	if !ok {
		return nil, false
	}
	iss := seqnum.Value(e.rng.Uint32())
	t := e.tcbs.alloc()
	*t = flow.TCB{
		FlowID: id,
		Tuple:  tuple,
		State:  state,
		ISS:    iss,
		SndUna: iss, SndNxt: iss, Req: iss,
		RcvBuf: e.cfg.Proto.RcvBuf,
	}
	t.AckedToHost = iss.Add(1)
	fm := &flowMeta{
		tcb:     t,
		meta:    datapath.FlowMeta{Tuple: tuple, LocalMAC: e.cfg.MAC},
		channel: channel,
	}
	if e.cfg.CarryBytes {
		size := 1
		for size < int(e.cfg.Proto.RcvBuf)*2 {
			size <<= 1
		}
		fm.txRing = datapath.NewRing(size)
		fm.rxRing = datapath.NewRing(size)
	}
	if fm.txRing != nil && !e.cfg.HeaderOnly {
		ring := fm.txRing
		fm.fetch = func(seq seqnum.Value, buf []byte) { ring.ReadInto(seq, buf) }
	}
	if !e.parser.Register(tuple, id, fm.rxRing) {
		e.freeIDs = append(e.freeIDs, id)
		return nil, false
	}
	e.flows[id] = fm
	e.sch.AllocateFlow(t)
	return fm, true
}

// freeFlow releases every trace of a terminated connection.
func (e *Engine) freeFlow(id flow.ID) {
	fm := e.flows[id]
	if fm == nil {
		return
	}
	e.parser.Deregister(fm.meta.Tuple, id)
	e.sch.FlowFreed(id)
	delete(e.flows, id)
	e.freeIDs = append(e.freeIDs, id)
}

// DeliverPacket is the wire RX entry point (attach as the link sink).
// Frames queue behind the parser pipeline.
func (e *Engine) DeliverPacket(pkt *wire.Packet) {
	if !e.rxQueue.Push(pkt) {
		e.RxDropped.Inc() // parser queue overrun: drop like a real NIC
		if pkt.Kind == wire.KindTCP {
			wire.PutPacket(pkt)
		}
	}
	e.K.Wake(e) // packet arrival revives a quiescent engine
}

// NextWork implements sim.Sleeper: the engine can act next cycle while
// any stage holds work (host commands, RX frames, bounced events), and
// otherwise at the earliest of its sub-components' own deadlines (FPU
// pipeline retirements, DRAM access completions, pending-queue retries)
// and the timer module's next deadline. Work in flight on kernel timers
// (PCIe DMA, TX serialization, TCB migration reads) needs no entry
// here — those timers bound the kernel's skip directly.
func (e *Engine) NextWork(now int64) int64 {
	next := sim.Dormant
	for _, ch := range e.Channels {
		if w := ch.NextWork(now); w <= now+1 {
			return now + 1
		} else if w < next {
			next = w
		}
	}
	if e.rxQueue.Len() > 0 || e.retryQ.Len() > 0 || e.toOrder.Len() > 0 {
		return now + 1
	}
	if w := e.sch.NextWork(now); w < next {
		next = w
	}
	if next <= now+1 {
		return now + 1
	}
	for _, f := range e.fpcs {
		if w := f.NextWork(now); w < next {
			next = w
		}
		if next <= now+1 {
			return now + 1
		}
	}
	if w := e.mem.NextWork(now); w < next {
		next = w
	}
	// The timer module scans for due deadlines every ticked cycle; a
	// pending deadline D ns fires on the first tick with NowNS() >= D.
	// Expired/stale entries are popped each tick, so after any tick the
	// head deadline is strictly in the future.
	if d := e.timers.NextDeadline(); d > 0 {
		if c := sim.NSToCycles(d); c < next {
			next = c
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// Tick advances the whole engine one cycle in a fixed, deterministic
// order: host commands → RX parsing → timers → scheduler → FPCs →
// memory manager → completion flush.
func (e *Engine) Tick(cycle int64) {
	for _, ch := range e.Channels {
		ch.TickDevice()
	}
	e.drainCommands()
	e.drainRx()
	e.fireTimers()
	e.sch.Tick(cycle)
	for _, f := range e.fpcs {
		f.Tick(cycle)
	}
	e.mem.Tick(cycle)
	e.flushCompletions()
}

// drainCommands converts fetched host commands into events (the host
// interface of §4.1.2 ①). Up to four commands per cycle across channels.
func (e *Engine) drainCommands() {
	budget := cmdBudgetPerCycle
	for _, ch := range e.Channels {
		for budget > 0 {
			cmd, ok := ch.PeekCommand()
			if !ok {
				break
			}
			// Backpressure: leave flow commands in this queue while the
			// scheduler's coalesce FIFO for that flow is full; other
			// channels may still drain.
			blocked := false
			switch cmd.Op {
			case hostif.OpSend, hostif.OpRecv, hostif.OpClose, hostif.OpAbort:
				blocked = !e.sch.SubmitSpace(cmd.Flow)
			}
			if blocked {
				break
			}
			ch.PopCommand()
			e.execCommand(ch, cmd)
			e.CmdsProcessed.Inc()
			budget--
		}
	}
}

func (e *Engine) channelIndex(ch *hostif.Channel) int {
	for i, c := range e.Channels {
		if c == ch {
			return i
		}
	}
	return 0
}

// execCommand interprets one 16 B command.
func (e *Engine) execCommand(ch *hostif.Channel, cmd hostif.Command) {
	chIdx := e.channelIndex(ch)
	switch cmd.Op {
	case hostif.OpListen:
		l := e.listeners[cmd.LocalPort]
		if l == nil {
			l = &listener{}
			e.listeners[cmd.LocalPort] = l
		}
		l.channels = append(l.channels, chIdx)
	case hostif.OpConnect:
		tuple := wire.FourTuple{
			LocalAddr: e.cfg.IP, RemoteAddr: cmd.RemoteAddr,
			LocalPort: cmd.LocalPort, RemotePort: cmd.RemotePort,
		}
		fm, ok := e.newFlow(tuple, chIdx, flow.StateClosed)
		if !ok {
			// Flow table or ID space exhausted: the open aborts cleanly —
			// the host sees a reset completion, telemetry counts the drop.
			// No hardware flow ID exists yet, so the completion carries the
			// local port: that is the handle the library correlates active
			// opens by (same correlation as CompAccepted).
			e.FlowsRejected.Inc()
			e.queueCompletion(chIdx, hostif.Completion{Kind: hostif.CompReset, Port: cmd.LocalPort})
			return
		}
		// The host pre-names the flow: it chose cmd.Flow as a handle. The
		// engine replies with the established completion carrying the
		// hardware flow ID; the library correlates via the local port.
		e.queueCompletion(chIdx, hostif.Completion{
			Kind: hostif.CompAccepted, Flow: fm.tcb.FlowID, Port: cmd.LocalPort,
		})
		e.submit(flow.Event{Kind: flow.EvUser, Flow: fm.tcb.FlowID, Ctl: flow.CtlOpen})
	case hostif.OpSend:
		e.submit(flow.Event{Kind: flow.EvUser, Flow: cmd.Flow, HasReq: true, Req: cmd.Ptr, Coalescable: true})
	case hostif.OpRecv:
		e.submit(flow.Event{Kind: flow.EvUser, Flow: cmd.Flow, HasRead: true, AppRead: cmd.Ptr, Coalescable: true})
	case hostif.OpClose:
		e.submit(flow.Event{Kind: flow.EvUser, Flow: cmd.Flow, Ctl: flow.CtlClose})
	case hostif.OpAbort:
		e.submit(flow.Event{Kind: flow.EvUser, Flow: cmd.Flow, Ctl: flow.CtlAbort})
	}
}

// submit pushes an event into the scheduler, spilling to the retry
// queues under backpressure so no event is ever lost.
func (e *Engine) submit(ev flow.Event) {
	if e.sch.Submit(ev) {
		return
	}
	if ev.Kind == flow.EvTimeout {
		if _, pending := e.toPending[ev.Flow]; !pending {
			e.toOrder.Push(ev.Flow)
		}
		e.toPending[ev.Flow] |= ev.Timeouts
		return
	}
	e.retryQ.Push(ev)
}

// drainRx runs the RX parser pipeline: up to two packets per cycle
// (the 322 MHz parser outpaces the 250 MHz control path).
func (e *Engine) drainRx() {
	for i := 0; i < rxBudgetPerCycle; i++ {
		pkt, ok := e.rxQueue.Peek()
		if !ok {
			return
		}
		if pkt.Kind == wire.KindTCP {
			// Only pop when the scheduler can take the event; otherwise
			// the parser back-pressures like real hardware.
			id, known := e.parser.Lookup(pkt.Tuple())
			if known && !e.sch.SubmitSpace(id) {
				return
			}
		}
		e.rxQueue.Pop()
		e.handleRx(pkt)
		if pkt.Kind == wire.KindTCP {
			// The parser copied everything it needs (payload bytes into
			// the reassembly ring, header fields into the event), so the
			// engine is the frame's last reader and recycles it. ARP and
			// ICMP frames are excluded: their replies may alias the
			// request's payload slice.
			wire.PutPacket(pkt)
		}
	}
}

// handleRx processes one frame: ARP/ICMP inline, TCP through the parser.
func (e *Engine) handleRx(pkt *wire.Packet) {
	e.RxPkts.Inc()
	switch pkt.Kind {
	case wire.KindARP:
		if reply := e.arp.Handle(pkt); reply != nil {
			e.transmit(reply)
		}
		e.flushARPWait(pkt.ARP.SenderIP)
		return
	case wire.KindICMP:
		if reply := datapath.HandleICMP(pkt, e.cfg.IP, e.cfg.MAC); reply != nil {
			e.transmit(reply)
		}
		return
	}

	res := e.parser.Parse(pkt)
	if res.NoFlow {
		if pkt.TCP.Flags&wire.FlagSYN != 0 && pkt.TCP.Flags&wire.FlagACK == 0 {
			if l := e.listeners[pkt.TCP.DstPort]; l != nil {
				// SO_REUSEPORT: new flows round-robin over the listening
				// threads' queues (§4.6).
				ch := l.channels[l.next%len(l.channels)]
				l.next++
				fm, ok := e.newFlow(pkt.Tuple(), ch, flow.StateListen)
				if !ok {
					// Table full: refuse the open loudly. The RST tells the
					// client immediately (instead of letting its SYN
					// retransmit into the void), and the counter makes the
					// rejection observable — a silently dropped SYN at scale
					// looks exactly like the old victim-loss bug.
					e.FlowsRejected.Inc()
					if rst := datapath.OrphanRST(pkt, e.cfg.IP, e.cfg.MAC); rst != nil {
						e.transmit(rst)
					}
					return
				}
				fm.meta.PeerMAC = pkt.Eth.Src
				e.arp.Learn(pkt.IP.Src, pkt.Eth.Src)
				e.FlowsAccepted.Inc()
				res = e.parser.Parse(pkt)
				if res.NoFlow {
					return
				}
				e.submit(res.Event)
				return
			}
		}
		e.RxNoFlow.Inc()
		// RFC 793 §3.4: a non-RST segment to a non-existent connection
		// draws a reset, so peers holding stale state tear down promptly
		// instead of retransmitting into the void until their RTO chain
		// exhausts.
		if rst := datapath.OrphanRST(pkt, e.cfg.IP, e.cfg.MAC); rst != nil {
			e.transmit(rst)
		}
		return
	}
	if res.Dropped {
		e.RxDropped.Inc()
	}
	// RX payload DMA to the host buffer (§4.1.2 ③): device → host bytes.
	if pkt.PayloadLen > 0 && !res.Dropped && !e.cfg.HeaderOnly {
		e.PCIe.TransferToHost(int64(pkt.PayloadLen))
	}
	e.submit(res.Event)
}

// fireTimers turns due deadlines into timeout events (§4.1.2 ③), and
// retries events that bounced off full FIFOs (bounded per cycle,
// stopping at the first still-blocked entry to preserve order).
func (e *Engine) fireTimers() {
	for i := 0; i < retryBudgetPerCycle && e.retryQ.Len() > 0; i++ {
		ev, ok := e.retryQ.Peek()
		if !ok || !e.sch.Submit(ev) {
			break
		}
		e.retryQ.Pop()
	}
	for i := 0; i < timeoutBudgetPerCycle && e.toOrder.Len() > 0; i++ {
		id, ok := e.toOrder.Peek()
		if !ok {
			break
		}
		bits := e.toPending[id]
		if bits == 0 {
			e.toOrder.Pop()
			delete(e.toPending, id)
			continue
		}
		if !e.sch.Submit(flow.Event{Kind: flow.EvTimeout, Flow: id, Timeouts: bits, Coalescable: true}) {
			break
		}
		e.toOrder.Pop()
		delete(e.toPending, id)
	}
	// Event-driven fast path: scanning the timer module costs nothing
	// while the earliest deadline is in the future — the common case on
	// every ticked cycle of a saturated run.
	if d := e.timers.NextDeadline(); d != 0 && d <= e.K.NowNS() {
		e.timers.Expire(e.K.NowNS(), e.timerLookT, e.timerFire)
	}
}

// applyActions is the FPU output stage: segments to the packet
// generator, notes to the completion path, timers to the timer module.
func (e *Engine) applyActions(t *flow.TCB, a *tcpproc.Actions) {
	fm := e.flows[t.FlowID]
	if fm == nil {
		return
	}
	for i := range a.Segs {
		e.emitSegment(fm, &a.Segs[i])
	}
	for i := range a.Notes {
		e.emitNote(fm, &a.Notes[i])
	}
	e.timers.SyncFromTCB(t)
	if a.OowRstDropped {
		e.OowRstDrops.Inc()
	}
	if a.FreeFlow {
		e.freeFlow(t.FlowID)
	}
}

// emitSegment resolves the peer MAC, fetches payload over PCIe and
// transmits the generated packets (§4.1.2 ①②).
func (e *Engine) emitSegment(fm *flowMeta, op *tcpproc.SendOp) {
	if op.Retransmit {
		e.RetransSegs.Inc()
		if e.ft != nil || e.trc != nil {
			e.ft.OnRetransmit(uint32(fm.tcb.FlowID))
			e.trc.Instant("engine", "tcp.retransmit", e.tid, e.K.NowNS(), int64(fm.tcb.FlowID))
		}
	}
	mac, req, ok := e.arp.Resolve(fm.meta.Tuple.RemoteAddr)
	if !ok {
		// Unresolved peer (cold path): park the generated packets until
		// the ARP reply arrives; flushARPWait fills in the MAC.
		meta := fm.meta
		e.gen.Build(*op, meta, fm.fetch, func(p *wire.Packet) {
			e.arpWait[fm.meta.Tuple.RemoteAddr] = append(e.arpWait[fm.meta.Tuple.RemoteAddr], p)
		})
		if req != nil {
			e.transmit(req)
		}
		return
	}
	fm.meta.PeerMAC = mac
	e.gen.Build(*op, fm.meta, fm.fetch, e.emitFn)
}

// emitPacket is the generator's emit callback on the resolved path (the
// peer MAC is already in the headers).
func (e *Engine) emitPacket(p *wire.Packet) {
	if e.cfg.HeaderOnly {
		p.HeaderOnly = true
		e.transmit(p)
		return
	}
	if p.PayloadLen > 0 {
		// TX payload DMA: the generator fetches the bytes from host
		// memory just before transmission (§4.1.2 ②).
		done := e.PCIe.TransferToDevice(int64(p.PayloadLen))
		e.K.AtCall(done, e.transmitFn, p)
		return
	}
	e.transmit(p)
}

// txBackpressureCycles is the MAC-side buffer depth, in cycles of link
// occupancy, beyond which the control path pauses TCB issue.
const txBackpressureCycles = 120 // ~3 full frames at 100 Gbps

// txReady reports whether the TX buffer has room for more generated
// packets (the FPCs' issue gate).
func (e *Engine) txReady() bool {
	return e.txRate.Backlog(e.K.Now()) < txBackpressureCycles
}

// transmit serializes the packet through the MAC-side pacing buffer and
// hands it to the wire when its slot comes up.
func (e *Engine) transmit(pkt *wire.Packet) {
	e.TxPkts.Inc()
	if e.tx == nil {
		return
	}
	done := e.txRate.Reserve(e.K.Now(), int64(pkt.WireLen()))
	e.K.AtCall(done, e.txFn, pkt)
}

// flushARPWait releases packets parked on a resolution.
func (e *Engine) flushARPWait(ip wire.Addr) {
	pkts := e.arpWait[ip]
	if len(pkts) == 0 {
		return
	}
	delete(e.arpWait, ip)
	mac, _, ok := e.arp.Resolve(ip)
	if !ok {
		return
	}
	for _, p := range pkts {
		p.Eth.Dst = mac
		e.transmit(p)
	}
}

// emitNote converts a protocol notification into a host completion.
func (e *Engine) emitNote(fm *flowMeta, n *tcpproc.Note) {
	var kind hostif.CompKind
	switch n.Kind {
	case tcpproc.NoteEstablished:
		kind = hostif.CompEstablished
	case tcpproc.NoteDataAcked:
		kind = hostif.CompAcked
	case tcpproc.NoteDataDelivered:
		kind = hostif.CompDelivered
	case tcpproc.NotePeerClosed:
		kind = hostif.CompPeerClosed
	case tcpproc.NoteClosed:
		kind = hostif.CompClosed
	case tcpproc.NoteReset:
		kind = hostif.CompReset
	default:
		return
	}
	comp := hostif.Completion{
		Kind: kind, Flow: n.Flow, Seq: n.Seq, Port: fm.meta.Tuple.LocalPort,
	}
	if n.Kind == tcpproc.NoteEstablished {
		// Anchor both byte streams for the library: send side (ISS+1 =
		// SndUna at establishment) and receive side (IRS+1).
		comp.Seq = fm.tcb.SndUna
		comp.Seq2 = fm.tcb.RcvNxt
	}
	e.queueCompletion(fm.channel, comp)
}

func (e *Engine) queueCompletion(ch int, comp hostif.Completion) {
	e.compBatch[ch] = append(e.compBatch[ch], comp)
}

// flushCompletions DMA-writes each channel's batch once per cycle
// (completion batching keeps the PCIe TLP overhead amortized, §4.6).
func (e *Engine) flushCompletions() {
	for i, batch := range e.compBatch {
		if len(batch) == 0 {
			continue
		}
		e.Channels[i].PushCompletions(batch)
		e.CompletionsSent.Add(int64(len(batch)))
		e.compBatch[i] = batch[:0]
	}
}

// String summarizes engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("engine{flows=%d fpcs=%d dram=%d}", len(e.flows), len(e.fpcs), e.mem.FlowCount())
}
