package engine

import (
	"fmt"

	"f4t/internal/flow"
	"f4t/internal/telemetry"
)

// Instrument registers every engine-level counter plus the scheduler,
// memory manager, FPC and host-channel metrics under prefix (e.g.
// "eng_a"). All entries reference the stat fields the components already
// update, so registry values are identical to the ad-hoc fields by
// construction. Safe on a nil registry (everything no-ops).
func (e *Engine) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".rx_pkts", &e.RxPkts)
	reg.Counter(prefix+".tx_pkts", &e.TxPkts)
	reg.Counter(prefix+".rx_dropped", &e.RxDropped)
	reg.Counter(prefix+".rx_no_flow", &e.RxNoFlow)
	reg.Counter(prefix+".cmds_processed", &e.CmdsProcessed)
	reg.Counter(prefix+".completions_sent", &e.CompletionsSent)
	reg.Counter(prefix+".flows_accepted", &e.FlowsAccepted)
	reg.Counter(prefix+".flows_rejected", &e.FlowsRejected)
	reg.Counter(prefix+".retrans_segs", &e.RetransSegs)
	reg.Counter(prefix+".oow_rst_drops", &e.OowRstDrops)
	reg.Gauge(prefix+".flows", func() int64 { return int64(len(e.flows)) })
	reg.Gauge(prefix+".rx_queue", func() int64 { return int64(e.rxQueue.Len()) })

	e.sch.Instrument(reg, prefix+".sched")
	e.mem.Instrument(reg, prefix+".mem")
	for i, f := range e.fpcs {
		f.Instrument(reg, fmt.Sprintf("%s.fpc%d", prefix, i))
	}
	e.PCIe.Instrument(reg, prefix+".pcie")
	for i, ch := range e.Channels {
		ch.Instrument(reg, fmt.Sprintf("%s.ch%d", prefix, i))
	}
}

// InstrumentMem registers the engine's per-flow memory probes on a
// footprint accountant: the TCB arena, the parser's flow table, the
// parser-flow arena (embedded reassemblers included) and out-of-order
// reassembly buffers. Probes are evaluated only at snapshot time.
func (e *Engine) InstrumentMem(fp *telemetry.Footprint, prefix string) {
	fp.Add(prefix+".tcb_arena", func() (int64, int64) {
		return int64(len(e.flows)), e.tcbs.memBytes()
	})
	fp.Add(prefix+".flow_table", func() (int64, int64) {
		m := e.parser.Mem()
		return m.TableEntries, m.TableBytes
	})
	fp.Add(prefix+".parser_flows", func() (int64, int64) {
		m := e.parser.Mem()
		return m.FlowCount, m.FlowBytes
	})
	fp.Add(prefix+".reasm", func() (int64, int64) {
		m := e.parser.Mem()
		return m.FlowCount, m.ReasmBytes
	})
}

// SetTracer attaches a trace ring to the engine and its sub-units.
// Virtual thread IDs are allocated from baseTID: the engine itself, then
// one per FPC, then one per host channel; thread names are registered so
// the trace viewer shows "eng_a.fpc3" instead of a number. Returns the
// first unused TID so callers can stack engines in one trace.
func (e *Engine) SetTracer(trc *telemetry.Trace, name string, baseTID int32) int32 {
	e.trc = trc
	e.tid = baseTID
	trc.SetThreadName(baseTID, name)
	tid := baseTID + 1
	for i, f := range e.fpcs {
		trc.SetThreadName(tid, fmt.Sprintf("%s.fpc%d", name, i))
		f.SetTracer(trc, tid)
		tid++
	}
	for i, ch := range e.Channels {
		trc.SetThreadName(tid, fmt.Sprintf("%s.ch%d", name, i))
		ch.SetTracer(trc, tid)
		tid++
	}
	return tid
}

// SetFlowTable attaches a per-flow statistics table; the engine reports
// retransmissions into it. Combine with VisitTCBs from a sampler hook to
// refresh cwnd/RTT/byte-pointer snapshots periodically.
func (e *Engine) SetFlowTable(ft *telemetry.FlowTable) { e.ft = ft }

// VisitTCBs invokes fn for every live flow's TCB (iteration order is
// unspecified). Telemetry collectors use this to observe per-flow state;
// fn must not mutate the TCB.
func (e *Engine) VisitTCBs(fn func(*flow.TCB)) {
	for _, fm := range e.flows {
		fn(fm.tcb)
	}
}
