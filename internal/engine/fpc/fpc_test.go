package fpc

import (
	"testing"

	"f4t/internal/cc"
	"f4t/internal/flow"
	"f4t/internal/seqnum"
	"f4t/internal/sim"
	"f4t/internal/tcpproc"
)

func newTCB(id flow.ID) *flow.TCB {
	t := &flow.TCB{
		FlowID: id,
		State:  flow.StateEstablished,
		ISS:    1000, SndUna: 1001, SndNxt: 1001, Req: 1001,
		IRS: 5000, RcvNxt: 5001, AppRead: 5001, DeliveredTo: 5001, LastAckSent: 5001,
		RcvBuf: 1 << 19, SndWnd: 1 << 30,
	}
	t.Cwnd = 1 << 30
	t.Ssthresh = 1 << 30
	t.AckedToHost = 1001
	return t
}

type fpcRig struct {
	k    *sim.Kernel
	f    *FPC
	acts []*flow.TCB // TCBs seen by OnActions
	evd  []*flow.TCB // TCBs seen by OnEvict
	inst []flow.ID
}

func newRig(cfg Config) *fpcRig {
	r := &fpcRig{k: sim.New()}
	proto := tcpproc.DefaultConfig()
	if cfg.Alg == nil {
		cfg.Alg = cc.MustNew("newreno")
	}
	if cfg.Proto == nil {
		cfg.Proto = &proto
	}
	r.f = New(r.k, cfg, Hooks{
		OnActions: func(t *flow.TCB, a *tcpproc.Actions) { r.acts = append(r.acts, t) },
		OnEvict:   func(t *flow.TCB) { r.evd = append(r.evd, t) },
		OnInstall: func(id flow.ID) { r.inst = append(r.inst, id) },
	})
	r.k.Register(sim.TickerFunc(r.f.Tick))
	return r
}

func reqEvent(id flow.ID, req seqnum.Value) flow.Event {
	return flow.Event{Kind: flow.EvUser, Flow: id, HasReq: true, Req: req, Coalescable: true}
}

func TestHandleRateIsOnePerTwoCycles(t *testing.T) {
	// The §4.2.3 port schedule: 125 M events/s at 250 MHz.
	r := newRig(Config{Slots: 128})
	for i := 0; i < 64; i++ {
		r.f.InstallNew(newTCB(flow.ID(i)))
	}
	req := make([]seqnum.Value, 64)
	for i := range req {
		req[i] = 1001
	}
	next := 0
	r.k.Register(sim.TickerFunc(func(int64) {
		for !r.f.input.Full() {
			id := next % 64
			req[id] = req[id].Add(100)
			r.f.EnqueueEvent(reqEvent(flow.ID(id), req[id]))
			next++
		}
	}))
	r.k.Run(2000)
	handled := r.f.EventsHandled.Total()
	// 2000 cycles → at most 1000 events, expect near that.
	if handled < 950 || handled > 1000 {
		t.Fatalf("handled %d events in 2000 cycles, want ~1000", handled)
	}
}

func TestFlowNeverInFPUTwice(t *testing.T) {
	// Atomicity without stalls (§4.2.2): instrument by checking that a
	// long-latency FPU never holds the same flow twice.
	r := newRig(Config{Slots: 8, FPULatency: 50})
	r.f.InstallNew(newTCB(1))
	req := seqnum.Value(1001)
	r.k.Register(sim.TickerFunc(func(int64) {
		for !r.f.input.Full() {
			req = req.Add(10)
			r.f.EnqueueEvent(reqEvent(1, req))
		}
		inPipe := 0
		r.f.pipe.Scan(func(in *inflight) bool {
			if r.f.slots[in.idx].tcb.FlowID == 1 {
				inPipe++
			}
			return true
		})
		if inPipe > 1 {
			t.Fatalf("flow resident in the FPU %d times", inPipe)
		}
	}))
	r.k.Run(1000)
	if r.f.Processed.Total() == 0 {
		t.Fatal("no FPU passes completed")
	}
}

func TestSingleFlowThroughputIndependentOfLatency(t *testing.T) {
	// §4.5: single-flow performance depends only on the handling rate.
	rate := func(latency int) int64 {
		r := newRig(Config{Slots: 8, FPULatency: latency})
		r.f.InstallNew(newTCB(1))
		req := seqnum.Value(1001)
		r.k.Register(sim.TickerFunc(func(int64) {
			for !r.f.input.Full() {
				req = req.Add(10)
				r.f.EnqueueEvent(reqEvent(1, req))
			}
		}))
		r.k.Run(4000)
		return r.f.EventsHandled.Total()
	}
	short, long := rate(4), rate(80)
	if long < short*95/100 {
		t.Fatalf("latency 80 handled %d vs latency 4 handled %d — not latency-independent", long, short)
	}
}

func TestAccumulatedEventsOneFPUPass(t *testing.T) {
	// Many same-flow events between issues collapse into one pass.
	r := newRig(Config{Slots: 8, FPULatency: 40})
	r.f.InstallNew(newTCB(1))
	req := seqnum.Value(1001)
	for i := 0; i < 8; i++ {
		req = req.Add(50)
		r.f.EnqueueEvent(reqEvent(1, req))
	}
	r.k.Run(100) // handle all 8 (16 cycles) + a couple of passes
	handled := r.f.EventsHandled.Total()
	passes := r.f.Processed.Total()
	if handled != 8 {
		t.Fatalf("handled = %d", handled)
	}
	if passes > 3 {
		t.Fatalf("%d FPU passes for 8 accumulated events, want ≤3", passes)
	}
	// All 400 bytes must have been sent despite the batching.
	tcb := r.f.slots[r.f.cam[1]].tcb
	if tcb.SndNxt != seqnum.Value(1001).Add(400) {
		t.Fatalf("SndNxt = %d, want %d", tcb.SndNxt, seqnum.Value(1001).Add(400))
	}
}

func TestEvictCheckerCapturesProcessedTCB(t *testing.T) {
	r := newRig(Config{Slots: 8, FPULatency: 10})
	r.f.InstallNew(newTCB(1))
	r.f.InstallNew(newTCB(2))
	if got := r.f.FlowCount(); got != 2 {
		t.Fatalf("flows = %d", got)
	}
	if !r.f.RequestEvict(1) {
		t.Fatal("evict request refused")
	}
	r.k.Run(100)
	if len(r.evd) != 1 || r.evd[0].FlowID != 1 {
		t.Fatalf("evicted = %v", r.evd)
	}
	if r.f.Has(1) || !r.f.Has(2) {
		t.Fatal("wrong flow removed")
	}
}

func TestEvictedTCBCarriesPendingEvents(t *testing.T) {
	// Events handled during the eviction window travel with the TCB
	// (§4.3.2: no event loss).
	r := newRig(Config{Slots: 8, FPULatency: 30})
	r.f.InstallNew(newTCB(1))
	r.f.EnqueueEvent(reqEvent(1, 1101))
	r.k.Run(4) // handled, issued into the 30-cycle pipe
	r.f.RequestEvict(1)
	// More events arrive while the pass is in flight.
	r.f.EnqueueEvent(reqEvent(1, 1201))
	r.k.Run(200)
	if len(r.evd) != 1 {
		t.Fatalf("evictions = %d", len(r.evd))
	}
	tcb := r.evd[0]
	// Either the second event was processed in the final pass (SndNxt
	// advanced) or it travels in the TCB's input row.
	if tcb.SndNxt != seqnum.Value(1201) && tcb.In.Valid&flow.VReq == 0 {
		t.Fatalf("second event lost: sndnxt=%d in=%04x", tcb.SndNxt, tcb.In.Valid)
	}
}

func TestAcceptTCBNeedsReservation(t *testing.T) {
	r := newRig(Config{Slots: 2})
	r.f.InstallNew(newTCB(1))
	r.f.InstallNew(newTCB(2))
	if r.f.HasSlot() {
		t.Fatal("slots should be full")
	}
	if r.f.ReserveSlot() {
		t.Fatal("reservation granted with no slot")
	}
	if r.f.AcceptTCB(newTCB(3)) {
		t.Fatal("unreserved accept into full FPC")
	}
}

func TestSwapInInstallsThroughPort(t *testing.T) {
	r := newRig(Config{Slots: 4})
	if !r.f.ReserveSlot() {
		t.Fatal("no reservation")
	}
	in := newTCB(7)
	in.In.Req = 1101 // pending input accumulated in DRAM
	in.In.Valid = flow.VReq
	if !r.f.AcceptTCB(in) {
		t.Fatal("accept failed")
	}
	r.k.Run(100)
	if len(r.inst) != 1 || r.inst[0] != 7 {
		t.Fatalf("install signal = %v", r.inst)
	}
	// The carried input demanded a pass: data must have been sent.
	tcb := r.f.slots[r.f.cam[7]].tcb
	if tcb.SndNxt != 1101 {
		t.Fatalf("swapped-in TCB not processed: SndNxt=%d", tcb.SndNxt)
	}
}

func TestColdestFlowSelection(t *testing.T) {
	r := newRig(Config{Slots: 8})
	for i := 1; i <= 3; i++ {
		r.f.InstallNew(newTCB(flow.ID(i)))
	}
	// Touch flows 2 and 3 later; flow 1 stays coldest.
	r.k.Run(10)
	r.f.EnqueueEvent(reqEvent(2, 1101))
	r.k.Run(10)
	r.f.EnqueueEvent(reqEvent(3, 1101))
	r.k.Run(10)
	if got := r.f.ColdestFlow(); got != 1 {
		t.Fatalf("coldest = %d, want 1", got)
	}
}

func TestStallModeRate(t *testing.T) {
	// The baseline of §3.1: one event per StallNum/StallDen cycles.
	r := newRig(Config{Slots: 8, Mode: ModeStall, StallNum: 17, StallDen: 1})
	r.f.InstallNew(newTCB(1))
	req := seqnum.Value(1001)
	r.k.Register(sim.TickerFunc(func(int64) {
		for !r.f.input.Full() {
			req = req.Add(10)
			r.f.EnqueueEvent(reqEvent(1, req))
		}
	}))
	r.k.Run(1700)
	handled := r.f.EventsHandled.Total()
	if handled < 90 || handled > 105 {
		t.Fatalf("stall-mode handled %d in 1700 cycles, want ~100", handled)
	}
}

func TestStallModeFractionalCycles(t *testing.T) {
	// 322 MHz / 17 cycles modeled at 250 MHz: 13.2 cycles per event.
	r := newRig(Config{Slots: 8, Mode: ModeStall, StallNum: 17 * 250, StallDen: 322})
	r.f.InstallNew(newTCB(1))
	req := seqnum.Value(1001)
	r.k.Register(sim.TickerFunc(func(int64) {
		for !r.f.input.Full() {
			req = req.Add(10)
			r.f.EnqueueEvent(reqEvent(1, req))
		}
	}))
	r.k.Run(13_200)
	handled := r.f.EventsHandled.Total()
	if handled < 970 || handled < 1 || handled > 1030 {
		t.Fatalf("fractional stall rate: %d events in 13200 cycles, want ~1000", handled)
	}
}

func TestFreeFlowReleasesSlot(t *testing.T) {
	r := newRig(Config{Slots: 2, FPULatency: 5})
	r.f.InstallNew(newTCB(1))
	// An in-window RST event terminates the flow; the slot must free.
	r.f.EnqueueEvent(flow.Event{Kind: flow.EvRx, Flow: 1, RxFlags: flow.RxRST, RstSeq: 5001})
	r.k.Run(50)
	if r.f.Has(1) || r.f.FlowCount() != 0 {
		t.Fatal("terminated flow still resident")
	}
	if !r.f.HasSlot() {
		t.Fatal("slot not reclaimed")
	}
}
