// Package fpc models the Flow Processing Core (§4.2) at cycle
// granularity: the event handler that accumulates events into the event
// table, the dual-memory TCB/event tables with their two-cycle port
// schedule (§4.2.3), the round-robin TCB manager, the fully pipelined
// stateless FPU, the evict checker, and the CAM mapping global flow IDs
// to local table indices (§4.4.2).
//
// The same type also implements the stall-based baseline design of
// Figs 2/15/16 (Limago-style w-RMW processing) via ModeStall, so the
// ablation experiments compare identical machinery differing only in the
// property under study.
package fpc

import (
	"fmt"

	"f4t/internal/cc"
	"f4t/internal/flow"
	"f4t/internal/sim"
	"f4t/internal/tcpproc"
	"f4t/internal/telemetry"
)

// Mode selects the processing architecture.
type Mode uint8

const (
	// ModeAccumulate is the F4T design: events are handled (accumulated)
	// back-to-back at one per two cycles and processed in batches by the
	// pipelined FPU (§4.2).
	ModeAccumulate Mode = iota
	// ModeStall is the baseline design that processes each event as an
	// atomic read-modify-write, stalling between events (§3.1).
	ModeStall
)

// Config parameterizes one FPC.
type Config struct {
	Slots      int  // TCB table entries (reference design: 128)
	FPULatency int  // FPU pipeline depth in cycles (from the CC algorithm)
	II         int  // initiation interval in cycles (paper: 2)
	Mode       Mode

	// ModeStall: total cycles one event occupies the unit, expressed as a
	// rational in 250 MHz cycles so foreign clock domains (e.g. the
	// 322 MHz/17-cycle design of [44]) model exactly.
	StallNum, StallDen int64

	Alg   cc.Algorithm
	Proto *tcpproc.Config

	// CanIssue, when set, gates TCB issue on downstream readiness (TX
	// backpressure). When the packet generator/MAC is congested, issues
	// pause and events keep accumulating, so the eventual pass emits one
	// larger transfer — the §5.1 mechanism that lets F4T sustain goodput
	// on small-request traffic once the link bottlenecks.
	CanIssue func() bool
}

// Hooks are the FPC's outputs, wired by the engine.
type Hooks struct {
	// OnActions delivers one FPU pass's outputs (segments, notes, timer
	// deadlines are already in the TCB).
	OnActions func(t *flow.TCB, a *tcpproc.Actions)
	// OnEvict delivers a TCB captured by the evict checker (§4.3.2).
	OnEvict func(t *flow.TCB)
	// OnInstall fires when a migrated-in TCB lands in the TCB table; the
	// scheduler flips the location LUT on this signal (§4.3.2).
	OnInstall func(id flow.ID)
	// OnEvictAbort fires when a flow marked for eviction terminated in
	// its final FPU pass instead; the scheduler releases the eviction
	// slot it was holding.
	OnEvictAbort func(id flow.ID)
}

// slot is one row of the dual memory: the TCB table entry plus the event
// table entry with its valid bits.
type slot struct {
	used  bool
	tcb   *flow.TCB
	row   flow.EventRow // the event table entry (§4.2.1)
	inFPU bool
	evict bool
	ready bool // queued for the TCB manager (issue bookkeeping)
	lastActive int64
}

type inflight struct {
	idx    int
	doneAt int64
}

// FPC is one flow processing core.
type FPC struct {
	k     *sim.Kernel
	cfg   Config
	hooks Hooks

	slots []slot
	cam   map[flow.ID]int // CAM: global flow ID → table index (§4.4.2)

	input    *sim.Queue[flow.Event] // routed events awaiting handling
	incoming *sim.Queue[*flow.TCB]  // swap-ins via the dedicated write port
	reserved int                    // slots held for migrations in flight

	ready     *sim.Queue[int] // slots awaiting issue, FIFO ≈ round-robin
	lastIssue int64           // cycle of the last FPU issue (II enforcement)
	lastHandle int64 // cycle of the last event handled (2-cycle schedule)
	pipe      *sim.Queue[inflight]

	// ModeStall state.
	stallBusyUntil int64
	stallFrac      int64 // accumulated fractional cycles (den-scaled)

	actions tcpproc.Actions // scratch

	// Stats.
	EventsHandled sim.Counter
	Processed     sim.Counter // FPU passes completed
	Stalls        sim.Counter // cycles the stall-mode unit was busy

	// Telemetry (nil when disabled; see telemetry.go).
	trc *telemetry.Trace
	tid int32
}

// inputDepth is the routed-event queue depth; the scheduler watches this
// backlog for load balancing (§4.4.2).
const inputDepth = 16

// New builds an FPC.
func New(k *sim.Kernel, cfg Config, hooks Hooks) *FPC {
	if cfg.Slots <= 0 {
		cfg.Slots = 128
	}
	if cfg.II <= 0 {
		cfg.II = 2
	}
	if cfg.FPULatency <= 0 {
		cfg.FPULatency = cfg.Alg.PipelineLatency()
	}
	if cfg.Mode == ModeStall && cfg.StallDen == 0 {
		cfg.StallNum, cfg.StallDen = int64(cfg.FPULatency), 1
	}
	return &FPC{
		k:        k,
		cfg:      cfg,
		hooks:    hooks,
		slots:    make([]slot, cfg.Slots),
		cam:      make(map[flow.ID]int, cfg.Slots),
		input:    sim.NewQueue[flow.Event](inputDepth),
		incoming: sim.NewQueue[*flow.TCB](0), // bounded by reservations
		pipe:     sim.NewQueue[inflight](0),
		ready:    sim.NewQueue[int](0),
		lastIssue: -10,
		lastHandle: -10,
	}
}

// FlowCount returns resident flows.
func (f *FPC) FlowCount() int { return len(f.cam) }

// HasSlot reports whether a free TCB table entry exists, accounting for
// swap-ins already in the incoming queue and reservations held by
// migrations in flight.
func (f *FPC) HasSlot() bool {
	return len(f.cam)+f.incoming.Len()+f.reserved < f.cfg.Slots
}

// ReserveSlot holds one slot for a migration in flight, so a TCB read
// from DRAM is guaranteed a home when it arrives (§4.3.2: the scheduler
// "can continuously migrate TCBs"). Release with AcceptTCB (which
// converts the hold) or ReleaseReservation (migration aborted).
func (f *FPC) ReserveSlot() bool {
	if !f.HasSlot() {
		return false
	}
	f.reserved++
	return true
}

// ReleaseReservation returns a held slot (the migration was abandoned).
func (f *FPC) ReleaseReservation() {
	if f.reserved > 0 {
		f.reserved--
	}
}

// Has reports whether the flow is resident.
func (f *FPC) Has(id flow.ID) bool {
	_, ok := f.cam[id]
	return ok
}

// InputBacklog returns routed events not yet handled (the scheduler's
// backpressure signal).
func (f *FPC) InputBacklog() int { return f.input.Len() }

// IncomingLen returns migrated TCBs awaiting installation (diagnostics).
func (f *FPC) IncomingLen() int { return f.incoming.Len() }

// Reserved returns slot reservations currently held (diagnostics).
func (f *FPC) Reserved() int { return f.reserved }

// EvictsPending counts resident slots with the evict flag set
// (diagnostics/invariant checks).
func (f *FPC) EvictsPending() int {
	n := 0
	for i := range f.slots {
		if f.slots[i].used && f.slots[i].evict {
			n++
		}
	}
	return n
}

// EnqueueEvent routes one event into the FPC. False = queue full
// (backpressure).
func (f *FPC) EnqueueEvent(ev flow.Event) bool { return f.input.Push(ev) }

// AcceptTCB installs a migrated-in TCB through the dedicated write port
// (one every two cycles, §4.3.2). The caller must hold a reservation
// from ReserveSlot; AcceptTCB converts it into an incoming-queue hold.
func (f *FPC) AcceptTCB(t *flow.TCB) bool {
	if f.reserved == 0 {
		// Defensive: accept only with spare capacity when unreserved.
		if !f.HasSlot() {
			return false
		}
		return f.incoming.Push(t)
	}
	f.reserved--
	return f.incoming.Push(t)
}

// InstallNew places a brand-new flow's TCB directly (flow allocation by
// the scheduler, §4.4.2). It bypasses the migration port because new
// flows are created empty.
func (f *FPC) InstallNew(t *flow.TCB) bool {
	if !f.HasSlot() {
		return false
	}
	f.install(t)
	return true
}

func (f *FPC) install(t *flow.TCB) {
	for i := range f.slots {
		if !f.slots[i].used {
			f.slots[i] = slot{used: true, tcb: t, lastActive: f.k.Now()}
			f.cam[t.FlowID] = i
			// A migrated-in TCB may carry event inputs accumulated while
			// it lived in DRAM; those demand a processing pass (§4.3.1).
			if t.In.Valid != 0 {
				f.markReady(i)
			}
			return
		}
	}
	panic("fpc: install with no free slot")
}

// ColdestFlow returns the least recently active resident flow that is not
// already marked for eviction (§4.3.2), or NoFlow when none qualifies.
func (f *FPC) ColdestFlow() flow.ID {
	best := flow.NoFlow
	var bestAge int64 = 1 << 62
	for i := range f.slots {
		s := &f.slots[i]
		if s.used && !s.evict && s.lastActive < bestAge {
			bestAge = s.lastActive
			best = s.tcb.FlowID
		}
	}
	return best
}

// RequestEvict sets the evict flag on a resident flow's TCB; the evict
// checker captures it after its next FPU pass. False when not resident.
func (f *FPC) RequestEvict(id flow.ID) bool {
	idx, ok := f.cam[id]
	if !ok {
		return false
	}
	f.slots[idx].evict = true
	f.slots[idx].tcb.EvictFlag = true
	f.markReady(idx)
	return true
}

// markReady queues a slot for the TCB manager. Slots in the FPU are
// re-checked at completion instead.
func (f *FPC) markReady(idx int) {
	s := &f.slots[idx]
	if !s.used || s.ready || s.inFPU {
		return
	}
	s.ready = true
	f.ready.Push(idx)
}

// NextWork implements sim.Sleeper for the engine's aggregate idleness
// report. The accumulate-mode Tick only ever acts on its four queues
// (incoming, input, ready, FPU pipe), so the FPC is provably idle when
// all are empty and provably inert until the pipeline head's doneAt
// when only passes are in flight (issues are in order with equal
// latency, so the head retires first). Stall mode additionally charges
// the Stalls counter every busy cycle, which forces per-cycle stepping
// until stallBusyUntil.
func (f *FPC) NextWork(now int64) int64 {
	if f.cfg.Mode == ModeStall {
		if now+1 < f.stallBusyUntil || f.incoming.Len() > 0 || f.input.Len() > 0 {
			return now + 1
		}
		return sim.Dormant
	}
	if f.incoming.Len() > 0 || f.input.Len() > 0 || f.ready.Len() > 0 {
		return now + 1
	}
	if head, ok := f.pipe.Peek(); ok {
		if head.doneAt <= now {
			return now + 1
		}
		return head.doneAt
	}
	return sim.Dormant
}

// Tick advances the FPC one cycle.
func (f *FPC) Tick(cycle int64) {
	if f.cfg.Mode == ModeStall {
		f.tickStall(cycle)
		return
	}
	// Event-driven dispatch: with every queue empty and no FPU pass due,
	// each sub-stage below is a provable no-op (drainIncoming pops
	// nothing, handleEvent and issue see empty queues, complete's head
	// check fails), so the cycle costs one branch instead of four stage
	// dispatches. On a rig with many FPCs most are idle on any given
	// cycle even under saturation — events concentrate on few flows.
	if f.incoming.Len() == 0 && f.input.Len() == 0 && f.ready.Len() == 0 {
		if head, ok := f.pipe.Peek(); !ok || head.doneAt > cycle {
			return
		}
	}
	f.drainIncoming(cycle)
	f.handleEvent(cycle)
	f.complete(cycle)
	f.issue(cycle)
}

// drainIncoming accepts one migrated TCB per two cycles through the
// dedicated write port.
func (f *FPC) drainIncoming(cycle int64) {
	if cycle%2 != 0 {
		return
	}
	if t, ok := f.incoming.Pop(); ok {
		t.EvictFlag = false
		f.install(t)
		if f.hooks.OnInstall != nil {
			f.hooks.OnInstall(t.FlowID)
		}
	}
}

// handleEvent is the event handler: one event accumulated per two cycles
// (the event table's port schedule, §4.2.3) — 125 M events/s at 250 MHz.
func (f *FPC) handleEvent(cycle int64) {
	if cycle-f.lastHandle < 2 {
		return
	}
	ev, ok := f.input.Peek()
	if !ok {
		return
	}
	idx, resident := f.cam[ev.Flow]
	if !resident {
		// The scheduler guarantees routing correctness (§4.3.2); a miss
		// here means the flow was freed while the event was in flight.
		f.input.Pop()
		return
	}
	f.input.Pop()
	f.lastHandle = cycle
	s := &f.slots[idx]
	s.row.Accumulate(&ev)
	s.lastActive = cycle
	s.tcb.LastActive = cycle
	f.EventsHandled.Inc()
	f.markReady(idx)
}

// issue is the TCB manager: every II cycles, construct the next TCB in
// round-robin order (merge valid event-table fields, clear valid bits)
// and push it into the FPU pipeline. A flow already in the FPU is never
// reissued, which preserves RMW atomicity without stalls (§4.2.2).
func (f *FPC) issue(cycle int64) {
	if cycle-f.lastIssue < int64(f.cfg.II) {
		return
	}
	if f.cfg.CanIssue != nil && !f.cfg.CanIssue() {
		return // TX backpressure: keep accumulating (§5.1)
	}
	for {
		i, ok := f.ready.Pop()
		if !ok {
			return
		}
		s := &f.slots[i]
		s.ready = false
		if !s.used || s.inFPU || (s.row.Empty() && s.tcb.In.Valid == 0 && !s.evict) {
			continue // stale entry (slot freed, reissued, or drained)
		}
		s.row.MergeInto(s.tcb)
		s.inFPU = true
		f.pipe.Push(inflight{idx: i, doneAt: cycle + int64(f.cfg.FPULatency)})
		f.lastIssue = cycle
		return
	}
}

// complete retires FPU passes whose pipeline latency has elapsed: run the
// stateless processing function, hand the actions to the engine, and let
// the evict checker intercept flagged TCBs (§4.3.2).
func (f *FPC) complete(cycle int64) {
	for {
		head, ok := f.pipe.Peek()
		if !ok || head.doneAt > cycle {
			return
		}
		f.pipe.Pop()
		s := &f.slots[head.idx]
		t := s.tcb
		f.actions.Reset()
		tcpproc.Process(t, f.cfg.Alg, f.cfg.Proto, f.k.NowNS(), &f.actions)
		f.Processed.Inc()
		if f.trc != nil {
			f.tracePass(head.doneAt, int64(t.FlowID))
		}
		s.inFPU = false
		if f.hooks.OnActions != nil {
			f.hooks.OnActions(t, &f.actions)
		}
		if f.actions.FreeFlow {
			wasEvict := s.evict
			f.remove(head.idx)
			if wasEvict && f.hooks.OnEvictAbort != nil {
				f.hooks.OnEvictAbort(t.FlowID)
			}
			continue
		}
		if s.evict {
			// Events handled into the event table while the final pass
			// was in flight travel with the TCB (§4.3.2: no event loss).
			if !s.row.Empty() {
				s.row.MergeInto(t)
			}
			f.remove(head.idx)
			if f.hooks.OnEvict != nil {
				f.hooks.OnEvict(t)
			}
			continue
		}
		// Events accumulated while the pass was in flight re-arm the slot.
		if !s.row.Empty() {
			f.markReady(head.idx)
		}
	}
}

// remove frees a slot and its CAM entry. Pending handled-but-unprocessed
// events were merged in the final pass, so nothing is lost (§4.3.2).
func (f *FPC) remove(idx int) {
	s := &f.slots[idx]
	delete(f.cam, s.tcb.FlowID)
	*s = slot{}
}

// tickStall is the baseline design: each event is an atomic RMW that
// occupies the unit for StallNum/StallDen cycles; events of any flow wait
// behind it (§3.1).
func (f *FPC) tickStall(cycle int64) {
	f.drainIncoming(cycle)
	if cycle < f.stallBusyUntil {
		f.Stalls.Inc()
		return
	}
	ev, ok := f.input.Pop()
	if !ok {
		return
	}
	idx, resident := f.cam[ev.Flow]
	if !resident {
		return
	}
	s := &f.slots[idx]
	var row flow.EventRow
	row.Accumulate(&ev)
	row.MergeInto(s.tcb)
	f.EventsHandled.Inc()
	s.lastActive = cycle
	s.tcb.LastActive = cycle

	f.actions.Reset()
	tcpproc.Process(s.tcb, f.cfg.Alg, f.cfg.Proto, f.k.NowNS(), &f.actions)
	f.Processed.Inc()
	if f.hooks.OnActions != nil {
		f.hooks.OnActions(s.tcb, &f.actions)
	}
	if f.actions.FreeFlow {
		wasEvict := s.evict
		id := s.tcb.FlowID
		f.remove(idx)
		if wasEvict && f.hooks.OnEvictAbort != nil {
			f.hooks.OnEvictAbort(id)
		}
	} else if s.evict {
		t := s.tcb
		f.remove(idx)
		if f.hooks.OnEvict != nil {
			f.hooks.OnEvict(t)
		}
	}

	// Occupy the unit for the (possibly fractional) stall period.
	total := f.cfg.StallNum + f.stallFrac
	whole := total / f.cfg.StallDen
	f.stallFrac = total % f.cfg.StallDen
	if whole < 1 {
		whole = 1
	}
	f.stallBusyUntil = cycle + whole
}

// String summarizes occupancy.
func (f *FPC) String() string {
	return fmt.Sprintf("fpc{flows=%d/%d in=%d pipe=%d}", len(f.cam), f.cfg.Slots, f.input.Len(), f.pipe.Len())
}
