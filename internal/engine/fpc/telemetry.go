package fpc

import (
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// Instrument registers the FPC's counters and occupancy gauges under
// prefix (e.g. "eng_a.fpc0"). The registry holds references to the same
// sim.Counter fields the FPC already updates, so registered values are
// identical to the ad-hoc fields by construction. Safe on a nil registry.
func (f *FPC) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".events_handled", &f.EventsHandled)
	reg.Counter(prefix+".processed", &f.Processed)
	reg.Counter(prefix+".stalls", &f.Stalls)
	reg.Gauge(prefix+".flows", func() int64 { return int64(f.FlowCount()) })
	reg.Gauge(prefix+".input_backlog", func() int64 { return int64(f.InputBacklog()) })
	reg.Gauge(prefix+".pipe_depth", func() int64 { return int64(f.pipe.Len()) })
}

// SetTracer attaches a trace ring; every retired FPU pass emits a span on
// virtual thread tid covering issue → retirement (the pipeline latency),
// with the flow ID as argument. Pass nil to disable (the default).
func (f *FPC) SetTracer(trc *telemetry.Trace, tid int32) {
	f.trc = trc
	f.tid = tid
}

// tracePass records one FPU pass span. Called only when a tracer is
// attached (the hot path guards on f.trc != nil).
func (f *FPC) tracePass(doneAt int64, flowID int64) {
	start := (doneAt - int64(f.cfg.FPULatency)) * sim.CycleNS
	f.trc.Span("engine", "fpu.pass", f.tid, start, doneAt*sim.CycleNS, flowID)
}
