package engine

import (
	"testing"

	"f4t/internal/seqnum"
	"f4t/internal/sim"
	"f4t/internal/wire"
)

// A segment that matches no flow must draw the RFC 793 §3.4 reset, so a
// peer holding stale connection state tears down promptly instead of
// retransmitting into the void until its RTO chain exhausts.
func TestOrphanSegmentDrawsRST(t *testing.T) {
	k := sim.New()
	cfg := DefaultConfig()
	cfg.IP, cfg.MAC, cfg.Seed = wire.MakeAddr(10, 2, 0, 1), wire.MAC{2, 2, 0, 0, 0, 1}, 3
	var sent []*wire.Packet
	e := New(k, cfg, func(p *wire.Packet) { sent = append(sent, p) })
	k.Register(sim.TickerFunc(e.Tick))

	peerMAC := wire.MAC{2, 2, 0, 0, 0, 2}
	orphan := &wire.Packet{
		Kind: wire.KindTCP,
		Eth:  wire.EthHeader{Src: peerMAC, Dst: cfg.MAC, Type: wire.EtherTypeIPv4},
		IP: wire.IPv4Header{
			Src: wire.MakeAddr(10, 2, 0, 2), Dst: cfg.IP,
			TTL: 64, Protocol: wire.ProtoTCP,
		},
		TCP: wire.TCPHeader{
			SrcPort: 9999, DstPort: 8888,
			Seq: seqnum.Value(1000), Ack: seqnum.Value(2000), Flags: wire.FlagACK,
		},
	}
	e.DeliverPacket(orphan)
	if !k.RunUntil(func() bool { return len(sent) > 0 }, 100_000) {
		t.Fatal("engine never answered the orphan segment")
	}
	rst := sent[0]
	if rst.Kind != wire.KindTCP || rst.TCP.Flags != wire.FlagRST {
		t.Fatalf("reply flags = %#x, want bare RST", rst.TCP.Flags)
	}
	if uint32(rst.TCP.Seq) != 2000 {
		t.Fatalf("RST seq = %d, want SEG.ACK = 2000", uint32(rst.TCP.Seq))
	}
	if rst.TCP.SrcPort != 8888 || rst.TCP.DstPort != 9999 {
		t.Fatalf("ports not mirrored: %d→%d", rst.TCP.SrcPort, rst.TCP.DstPort)
	}
	if rst.Eth.Dst != peerMAC {
		t.Fatal("RST not addressed to the orphan's source MAC")
	}
	if e.RxNoFlow.Total() != 1 {
		t.Fatalf("RxNoFlow = %d, want 1", e.RxNoFlow.Total())
	}

	// A stray RST must not be answered (no reset volleys).
	sent = sent[:0]
	stray := *orphan
	stray.TCP.Flags = wire.FlagRST
	e.DeliverPacket(&stray)
	k.Run(100_000)
	if len(sent) != 0 {
		t.Fatalf("engine answered an RST with %d packets", len(sent))
	}
}
