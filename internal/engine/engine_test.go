package engine_test

import (
	"bytes"
	"testing"

	"f4t/internal/engine"
	"f4t/internal/engine/memmgr"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/softstack"
	"f4t/internal/stack"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

// rig is two FtEngines with their host libraries, connected by a link.
// Completion queues are polled once per cycle; tests receive events
// through the ev1/ev2 dispatchers (set them before running).
type rig struct {
	k        *sim.Kernel
	link     *netsim.Link
	e1, e2   *engine.Engine
	l1, l2   *softstack.Lib
	ev1, ev2 func(softstack.Event)
}

func newRig(t *testing.T, mutate func(*engine.Config)) *rig {
	return newRigLink(t, 100, mutate)
}

// newRigLink is newRig with a configurable link speed (bottleneck tests).
func newRigLink(t *testing.T, gbps int64, mutate func(*engine.Config)) *rig {
	t.Helper()
	k := sim.New()
	link := netsim.NewLink(k, gbps, 600, 99)

	cfg1 := engine.DefaultConfig()
	cfg1.IP = wire.MakeAddr(10, 0, 0, 1)
	cfg1.MAC = wire.MAC{2, 0, 0, 0, 0, 1}
	cfg1.CarryBytes = true
	cfg1.Seed = 1
	cfg2 := cfg1
	cfg2.IP = wire.MakeAddr(10, 0, 0, 2)
	cfg2.MAC = wire.MAC{2, 0, 0, 0, 0, 2}
	cfg2.Seed = 2
	if mutate != nil {
		mutate(&cfg1)
		mutate(&cfg2)
	}
	cfg1.IP = wire.MakeAddr(10, 0, 0, 1) // mutate must not break identity
	cfg2.IP = wire.MakeAddr(10, 0, 0, 2)

	e1 := engine.New(k, cfg1, link.AtoB.Send)
	e2 := engine.New(k, cfg2, link.BtoA.Send)
	link.AtoB.SetSink(e2.DeliverPacket)
	link.BtoA.SetSink(e1.DeliverPacket)
	k.Register(sim.TickerFunc(e1.Tick))
	k.Register(sim.TickerFunc(e2.Tick))

	l1 := softstack.NewLib(k, e1, 0)
	l2 := softstack.NewLib(k, e2, 0)
	r := &rig{k: k, link: link, e1: e1, e2: e2, l1: l1, l2: l2}
	// Poll the completion queues every cycle (the free-running library of
	// functional tests; the CPU-costed experiments pace this themselves).
	k.Register(sim.TickerFunc(func(int64) {
		for _, ev := range l1.Poll() {
			if r.ev1 != nil {
				r.ev1(ev)
			}
		}
		for _, ev := range l2.Poll() {
			if r.ev2 != nil {
				r.ev2(ev)
			}
		}
	}))
	return r
}

func (r *rig) run(t *testing.T, pred func() bool, budget int64, what string) {
	t.Helper()
	if !r.k.RunUntil(pred, budget) {
		t.Fatalf("timed out waiting for %s after %d cycles (e1=%v e2=%v)", what, budget, r.e1, r.e2)
	}
}

func TestEngineHandshake(t *testing.T) {
	r := newRig(t, nil)
	r.l2.Listen(80)
	s := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	r.run(t, func() bool { return s.Established }, 1_000_000, "engine handshake")
	if r.e1.FlowCount() != 1 || r.e2.FlowCount() != 1 {
		t.Fatalf("flow counts: %d/%d, want 1/1", r.e1.FlowCount(), r.e2.FlowCount())
	}
}

func TestEngineDataTransfer(t *testing.T) {
	r := newRig(t, nil)
	var srv *softstack.Socket
	r.l2.Listen(80)
	// Capture accepts via polling events in a ticker.
	r.ev2 = func(ev softstack.Event) {
		if ev.Kind == softstack.EvAccepted {
			srv = ev.Sock
		}
	}
	cli := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	r.run(t, func() bool { return cli.Established && srv != nil }, 1_000_000, "handshake")

	msg := []byte("through the FPCs and back again — F4T engine data path test")
	if n := cli.Send(msg); n != len(msg) {
		t.Fatalf("Send = %d, want %d", n, len(msg))
	}
	r.run(t, func() bool { return srv.Available() >= len(msg) }, 2_000_000, "delivery")
	got, n := srv.Recv(4096)
	if n != len(msg) || !bytes.Equal(got, msg) {
		t.Fatalf("Recv = %q (%d), want %q", got, n, msg)
	}
}

func TestEngineBulkTransfer(t *testing.T) {
	r := newRig(t, nil)
	var srv *softstack.Socket
	r.l2.Listen(80)
	r.ev2 = func(ev softstack.Event) {
		if ev.Kind == softstack.EvAccepted {
			srv = ev.Sock
		}
	}
	cli := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	r.run(t, func() bool { return cli.Established && srv != nil }, 1_000_000, "handshake")

	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i*7 + i>>9)
	}
	sent := 0
	r.k.Register(sim.TickerFunc(func(int64) {
		for sent < len(data) {
			n := cli.Send(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}))
	r.run(t, func() bool { return srv.Available() >= len(data) }, 30_000_000, "bulk delivery")
	got, n := srv.Recv(len(data))
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("bulk corrupted: %d bytes", n)
	}
}

func TestEngineClose(t *testing.T) {
	r := newRig(t, nil)
	var srv *softstack.Socket
	r.l2.Listen(80)
	r.ev2 = func(ev softstack.Event) {
		if ev.Kind == softstack.EvAccepted {
			srv = ev.Sock
		}
	}
	cli := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	r.run(t, func() bool { return cli.Established && srv != nil }, 1_000_000, "handshake")

	cli.Close()
	r.run(t, func() bool { return srv.PeerClosed }, 2_000_000, "FIN seen")
	srv.Close()
	r.run(t, func() bool { return srv.Closed && cli.Closed }, 20_000_000, "full teardown")
	r.run(t, func() bool { return r.e1.FlowCount() == 0 && r.e2.FlowCount() == 0 }, 20_000_000, "flow state freed")
}

func TestEngineInteropWithSoftwareStack(t *testing.T) {
	// FtEngine on one side, the plain software endpoint on the other:
	// the protocol must interoperate both ways.
	k := sim.New()
	link := netsim.NewLink(k, 100, 600, 7)

	cfg := engine.DefaultConfig()
	cfg.IP = wire.MakeAddr(10, 0, 0, 1)
	cfg.MAC = wire.MAC{2, 0, 0, 0, 0, 1}
	cfg.CarryBytes = true
	eng := engine.New(k, cfg, link.AtoB.Send)

	sw := stack.New(k, stack.Options{
		IP: wire.MakeAddr(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2},
		Cfg: tcpproc.DefaultConfig(), Alg: "cubic", CarryBytes: true, Seed: 3,
	}, link.BtoA.Send)
	link.AtoB.SetSink(func(p *wire.Packet) { sw.HandlePacket(p) })
	link.BtoA.SetSink(eng.DeliverPacket)
	k.Register(sim.TickerFunc(eng.Tick))
	k.Register(sw)

	lib := softstack.NewLib(k, eng, 0)
	k.Register(sim.TickerFunc(func(int64) { lib.Poll() }))

	// Engine dials the software stack.
	var srv *stack.Conn
	sw.Listen(80, func(c *stack.Conn) { srv = c })
	cli := lib.Dial(sw.Opt.IP, 80)
	if !k.RunUntil(func() bool { return cli.Established && srv != nil }, 2_000_000) {
		t.Fatal("engine→software handshake timed out")
	}
	msg := []byte("hardware speaks to software")
	cli.Send(msg)
	if !k.RunUntil(func() bool { return srv.Available() >= len(msg) }, 2_000_000) {
		t.Fatal("engine→software data timed out")
	}
	got, _ := srv.Recv(1024)
	if !bytes.Equal(got, msg) {
		t.Fatalf("engine→software data = %q", got)
	}

	// And the reverse direction over the same connection.
	reply := []byte("software answers hardware, with more bytes to say")
	srv.Send(reply)
	if !k.RunUntil(func() bool { return cli.Available() >= len(reply) }, 2_000_000) {
		t.Fatal("software→engine data timed out")
	}
	back, _ := cli.Recv(1024)
	if !bytes.Equal(back, reply) {
		t.Fatalf("software→engine data = %q", back)
	}
}

func TestEngineDRAMMigration(t *testing.T) {
	// Tiny FPC capacity forces flows through DRAM: 1 FPC × 8 slots, 32
	// concurrent echo flows. Every flow must keep making progress.
	r := newRig(t, func(c *engine.Config) {
		c.NumFPCs = 1
		c.SlotsPerFPC = 8
		c.Memory = memmgr.DDR
	})
	var srvs []*softstack.Socket
	r.l2.Listen(80)
	r.ev2 = func(ev softstack.Event) {
		switch ev.Kind {
		case softstack.EvAccepted:
			srvs = append(srvs, ev.Sock)
		case softstack.EvReadable:
			// Echo server: bounce everything back.
			if data, n := ev.Sock.Recv(4096); n > 0 {
				ev.Sock.Send(data)
			}
		}
	}

	const flows = 32
	clis := make([]*softstack.Socket, flows)
	for i := range clis {
		clis[i] = r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	}
	r.run(t, func() bool {
		for _, c := range clis {
			if !c.Established {
				return false
			}
		}
		return true
	}, 50_000_000, "32 handshakes through 8 FPC slots")

	// Ping-pong one round on every flow.
	msg := []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef" +
		"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	for _, c := range clis {
		if n := c.Send(msg); n != len(msg) {
			t.Fatalf("send on flow: %d/%d", n, len(msg))
		}
	}
	r.run(t, func() bool {
		for _, c := range clis {
			if c.Available() < len(msg) {
				return false
			}
		}
		return true
	}, 100_000_000, "echo round trip across DRAM-resident flows")
	for i, c := range clis {
		got, _ := c.Recv(4096)
		if !bytes.Equal(got, msg) {
			t.Fatalf("flow %d echoed %q", i, got)
		}
	}
	if r.e1.Mem().FlowCount()+r.e2.Mem().FlowCount() == 0 {
		t.Error("expected some flows resident in DRAM with 8 FPC slots and 32 flows")
	}
	if r.e1.Scheduler().Migrations.Total() == 0 {
		t.Error("expected TCB migrations to have occurred")
	}
}

func TestEngineLossRecovery(t *testing.T) {
	r := newRig(t, nil)
	r.link.AtoB.SetFaults(netsim.Faults{LossProb: 0.01})
	var srv *softstack.Socket
	r.l2.Listen(80)
	r.ev2 = func(ev softstack.Event) {
		if ev.Kind == softstack.EvAccepted {
			srv = ev.Sock
		}
	}
	cli := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	r.run(t, func() bool { return cli.Established && srv != nil }, 30_000_000, "handshake on lossy link")

	data := make([]byte, 128*1024)
	for i := range data {
		data[i] = byte(i * 13)
	}
	sent := 0
	r.k.Register(sim.TickerFunc(func(int64) {
		for sent < len(data) {
			n := cli.Send(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}))
	r.run(t, func() bool { return srv.Available() >= len(data) }, 500_000_000, "lossy bulk delivery")
	got, n := srv.Recv(len(data))
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("lossy engine transfer corrupted: %d bytes", n)
	}
}

func TestEngineStallBaselineStillCorrect(t *testing.T) {
	// The w-RMW baseline design (Fig 2/15/16) is slower but must remain
	// protocol-correct.
	r := newRig(t, func(c *engine.Config) {
		c.Mode = 1 // fpc.ModeStall
		c.StallNum, c.StallDen = 17, 1
		c.NumFPCs = 1
		c.Coalesce = false
	})
	var srv *softstack.Socket
	r.l2.Listen(80)
	r.ev2 = func(ev softstack.Event) {
		if ev.Kind == softstack.EvAccepted {
			srv = ev.Sock
		}
	}
	cli := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	r.run(t, func() bool { return cli.Established && srv != nil }, 5_000_000, "baseline handshake")
	msg := bytes.Repeat([]byte("baseline"), 512)
	cli.Send(msg)
	r.run(t, func() bool { return srv.Available() >= len(msg) }, 20_000_000, "baseline delivery")
	got, _ := srv.Recv(len(msg))
	if !bytes.Equal(got, msg) {
		t.Fatal("baseline design corrupted data")
	}
}

func TestEngineAnswersPing(t *testing.T) {
	// FtEngine implements ICMP for diagnostics (§4.1.2): a software
	// endpoint pings the engine and must get an echo reply.
	k := sim.New()
	link := netsim.NewLink(k, 100, 600, 17)
	cfg := engine.DefaultConfig()
	cfg.IP = wire.MakeAddr(10, 0, 0, 1)
	cfg.MAC = wire.MAC{2, 0, 0, 0, 0, 1}
	eng := engine.New(k, cfg, link.AtoB.Send)
	sw := stack.New(k, stack.Options{
		IP: wire.MakeAddr(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2},
		Cfg: tcpproc.DefaultConfig(), Seed: 9,
	}, link.BtoA.Send)
	var reply *wire.Packet
	link.AtoB.SetSink(func(p *wire.Packet) {
		if p.Kind == wire.KindICMP && p.ICMP.Type == wire.ICMPEchoReply {
			reply = p
		}
		sw.HandlePacket(p)
	})
	link.BtoA.SetSink(eng.DeliverPacket)
	k.Register(sim.TickerFunc(eng.Tick))
	k.Register(sw)

	// The software side resolves the engine's MAC via ARP first — this
	// also exercises the engine's ARP responder.
	if sw.Ping(cfg.IP, 21, 1, []byte("probe")) {
		t.Fatal("ping should defer until ARP resolves")
	}
	ok := k.RunUntil(func() bool {
		if reply == nil {
			sw.Ping(cfg.IP, 21, 1, []byte("probe"))
		}
		return reply != nil
	}, 1_000_000)
	if !ok {
		t.Fatal("no echo reply from the engine")
	}
	if reply.ICMP.ID != 21 || string(reply.Payload) != "probe" {
		t.Fatalf("reply = %+v %q", reply.ICMP, reply.Payload)
	}
}

func TestEngineDeterministicReplay(t *testing.T) {
	// Identical seeds must give bit-identical runs (the whole simulation
	// is deterministic by construction).
	run := func() (int64, int64, int64) {
		r := newRig(t, nil)
		var srv *softstack.Socket
		r.l2.Listen(80)
		r.ev2 = func(ev softstack.Event) {
			switch ev.Kind {
			case softstack.EvAccepted:
				srv = ev.Sock
			case softstack.EvReadable:
				if _, n := ev.Sock.Recv(4096); n > 0 {
					_ = n
				}
			}
		}
		cli := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
		r.k.RunUntil(func() bool { return cli.Established && srv != nil }, 1_000_000)
		for i := 0; i < 50; i++ {
			cli.SendModelled(700)
			r.k.Run(500)
		}
		r.k.Run(100_000)
		return r.e1.TxPkts.Total(), r.e2.RxPkts.Total(), r.k.Now()
	}
	a1, a2, a3 := run()
	b1, b2, b3 := run()
	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Fatalf("replay diverged: (%d,%d,%d) vs (%d,%d,%d)", a1, a2, a3, b1, b2, b3)
	}
}

func TestEngineDCTCPOverECN(t *testing.T) {
	// The hardware path runs the DCTCP FPU program through an ECN-marking
	// bottleneck slower than the NIC (a 25 Gbps switch hop): the queue
	// builds there, marks arrive, the window regulates, nothing drops.
	r := newRigLink(t, 25, func(c *engine.Config) {
		c.Alg = "dctcp"
		c.Proto.ECN = true
	})
	r.link.AtoB.SetAQM(netsim.ECNThreshold(4_000, 0))

	var srv *softstack.Socket
	r.l2.Listen(80)
	r.ev2 = func(ev softstack.Event) {
		if ev.Kind == softstack.EvAccepted {
			srv = ev.Sock
		}
	}
	cli := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	r.run(t, func() bool { return cli.Established && srv != nil }, 1_000_000, "handshake")

	data := make([]byte, 512*1024)
	for i := range data {
		data[i] = byte(i * 29)
	}
	sent := 0
	r.k.Register(sim.TickerFunc(func(int64) {
		for sent < len(data) {
			n := cli.Send(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}))
	r.run(t, func() bool { return srv.Available() >= len(data) }, 50_000_000, "DCTCP bulk")
	got, n := srv.Recv(len(data))
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatal("engine DCTCP transfer corrupted")
	}
	if r.link.AtoB.MarkedPkts == 0 {
		t.Fatal("no CE marks applied")
	}
	if r.link.AtoB.DroppedPkts != 0 {
		t.Fatalf("drops (%d) despite marking", r.link.AtoB.DroppedPkts)
	}
	if alpha := r.e1.TCB(0).CCVars[0]; alpha == 0 {
		t.Fatal("engine-side DCTCP alpha never moved")
	}
}
