// Package memmgr models the memory manager of §4.3.1: the DRAM-resident
// TCB store that gives F4T its 64 K-flow connectivity, the direct-mapped
// TCB cache in front of it, the event handling performed directly on
// DRAM TCBs, and the check logic that decides which flows are worth
// swapping into an FPC.
package memmgr

import (
	"f4t/internal/flow"
	"f4t/internal/sim"
	"f4t/internal/tcpproc"
)

// TCBBytes is the modelled size of one TCB in device memory. The store
// is charged one read and one write of this size per uncached access.
const TCBBytes = 128

// MemoryKind selects the device memory technology (§4.7).
type MemoryKind uint8

const (
	// DDR is the U280's DDR4 channel pair: 38 GB/s peak (§4.7).
	DDR MemoryKind = iota
	// HBM is the U280's high-bandwidth memory: 460 GB/s peak (§4.7).
	HBM
)

// Config parameterizes the manager.
type Config struct {
	Kind      MemoryKind
	CacheSize int // direct-mapped TCB cache entries (0 disables)

	// RandomAccessPct derates peak bandwidth for the short random
	// accesses TCB traffic consists of (row activation overhead on DDR;
	// pseudo-channel conflicts on HBM). DDR suffers far more at 128 B
	// granularity.
	RandomAccessPct int
	LatencyNS       int64 // access latency
}

// DefaultConfig returns the model for the given memory kind. The derates
// reflect 128 B random access: DDR4 delivers roughly a third of peak;
// HBM's many pseudo-channels keep most of it.
func DefaultConfig(kind MemoryKind) Config {
	switch kind {
	case HBM:
		return Config{Kind: HBM, CacheSize: 512, RandomAccessPct: 60, LatencyNS: 120}
	default:
		return Config{Kind: DDR, CacheSize: 512, RandomAccessPct: 35, LatencyNS: 100}
	}
}

// Hooks wire the manager's outputs.
type Hooks struct {
	// OnSwapInRequest fires when the check logic finds a DRAM-resident
	// flow that can send packets (§4.3.1).
	OnSwapInRequest func(id flow.ID)
}

type pendingEvent struct {
	ev      flow.Event
	readyAt int64
}

// Manager is the memory manager.
type Manager struct {
	k     *sim.Kernel
	cfg   Config
	hooks Hooks

	tcbs  map[flow.ID]*flow.TCB
	cache []flow.ID // direct-mapped: cache[i] = resident flow (NoFlow = empty)
	rate  *sim.ByteRate
	lat   int64 // access latency in cycles

	input    *sim.Queue[flow.Event]
	inFlight *sim.Queue[pendingEvent]
	queued   map[flow.ID]int // events per flow across input+inFlight

	// Stats.
	Handled    sim.Counter
	CacheHits  sim.Counter
	CacheMiss  sim.Counter
	SwapReqs   sim.Counter
}

// New builds a manager.
func New(k *sim.Kernel, cfg Config, hooks Hooks) *Manager {
	var peak int64
	switch cfg.Kind {
	case HBM:
		peak = 460
	default:
		peak = 38
	}
	if cfg.RandomAccessPct <= 0 {
		cfg.RandomAccessPct = 100
	}
	// Effective bytes/cycle = peak GB/s × derate; GBpsRate is ×4 B/cycle.
	num := peak * 4 * int64(cfg.RandomAccessPct)
	m := &Manager{
		k:        k,
		cfg:      cfg,
		hooks:    hooks,
		tcbs:     make(map[flow.ID]*flow.TCB),
		rate:     sim.NewByteRate(num, 100),
		lat:      sim.NSToCycles(cfg.LatencyNS),
		input:    sim.NewQueue[flow.Event](0),
		inFlight: sim.NewQueue[pendingEvent](0),
		queued:   make(map[flow.ID]int),
	}
	if cfg.CacheSize > 0 {
		m.cache = make([]flow.ID, cfg.CacheSize)
		for i := range m.cache {
			m.cache[i] = flow.NoFlow
		}
	}
	return m
}

// FlowCount returns DRAM-resident flows.
func (m *Manager) FlowCount() int { return len(m.tcbs) }

// Has reports residency.
func (m *Manager) Has(id flow.ID) bool {
	_, ok := m.tcbs[id]
	return ok
}

// Insert stores an evicted TCB (charging a DRAM write).
func (m *Manager) Insert(t *flow.TCB) {
	m.tcbs[t.FlowID] = t
	t.EvictFlag = false
	m.chargeAccess(t.FlowID, true)
}

// Extract removes a TCB for swap-in, returning it and the cycle at which
// the DRAM read completes (the scheduler forwards it to the FPC then).
// Events already queued inside the manager for this flow are handled
// into the TCB first so they migrate with it — the "handled events are
// later processed in FPC" guarantee (§4.3.1).
func (m *Manager) Extract(id flow.ID) (*flow.TCB, int64, bool) {
	t, ok := m.tcbs[id]
	if !ok {
		return nil, 0, false
	}
	m.absorbQueued(t)
	delete(m.tcbs, id)
	m.uncache(id)
	done := m.chargeAccess(id, false)
	return t, done, true
}

// absorbQueued folds every queued/in-flight event of the flow into its
// TCB's event-input row and removes them from the queues. The per-flow
// pending count makes the common case (no queued events) free; the
// queue rebuild only runs when events are actually present.
func (m *Manager) absorbQueued(t *flow.TCB) {
	if m.queued[t.FlowID] == 0 {
		return
	}
	delete(m.queued, t.FlowID)
	keepIn := m.input
	m.input = sim.NewQueue[flow.Event](0)
	for {
		ev, ok := keepIn.Pop()
		if !ok {
			break
		}
		if ev.Flow == t.FlowID {
			t.In.Accumulate(&ev)
			m.Handled.Inc()
		} else {
			m.input.Push(ev)
		}
	}
	keepFl := m.inFlight
	m.inFlight = sim.NewQueue[pendingEvent](0)
	for {
		pe, ok := keepFl.Pop()
		if !ok {
			break
		}
		if pe.ev.Flow == t.FlowID {
			t.In.Accumulate(&pe.ev)
			m.Handled.Inc()
		} else {
			m.inFlight.Push(pe)
		}
	}
}

// Drop discards a DRAM-resident flow (connection freed while swapped out).
func (m *Manager) Drop(id flow.ID) {
	delete(m.tcbs, id)
	m.uncache(id)
}

// EnqueueEvent routes one event to a DRAM-resident flow.
func (m *Manager) EnqueueEvent(ev flow.Event) bool {
	if !m.input.Push(ev) {
		return false
	}
	m.queued[ev.Flow]++
	return true
}

// unqueue decrements the per-flow pending count.
func (m *Manager) unqueue(id flow.ID) {
	if n := m.queued[id]; n <= 1 {
		delete(m.queued, id)
	} else {
		m.queued[id] = n - 1
	}
}

// Backlog returns events queued for handling.
func (m *Manager) Backlog() int { return m.input.Len() + m.inFlight.Len() }

// chargeAccess books one TCB transfer against DRAM bandwidth and
// latency. Cache hits (when tracking an access, not an insert/extract)
// bypass the charge.
func (m *Manager) chargeAccess(id flow.ID, write bool) int64 {
	return m.rate.Reserve(m.k.Now(), TCBBytes) + m.lat
}

func (m *Manager) cacheSlot(id flow.ID) int {
	if len(m.cache) == 0 {
		return -1
	}
	return int(uint32(id)) % len(m.cache)
}

func (m *Manager) uncache(id flow.ID) {
	if s := m.cacheSlot(id); s >= 0 && m.cache[s] == id {
		m.cache[s] = flow.NoFlow
	}
}

// NextWork implements sim.Sleeper for the engine's aggregate idleness
// report: a queued event starts an access immediately; in-flight
// accesses retire strictly in order, so the head's readyAt is the next
// cycle anything can retire even when later entries (cache hits behind
// a miss) are nominally due earlier.
func (m *Manager) NextWork(now int64) int64 {
	if m.input.Len() > 0 {
		return now + 1
	}
	if pe, ok := m.inFlight.Peek(); ok {
		if pe.readyAt <= now {
			return now + 1
		}
		return pe.readyAt
	}
	return sim.Dormant
}

// Tick advances the manager: start handling queued events (cache lookup,
// DRAM RMW) and retire those whose memory access completed — handling
// events "directly to TCBs in the memory" (§4.3.1).
func (m *Manager) Tick(cycle int64) {
	// Event-driven dispatch: nothing queued and nothing in flight means
	// both stages below are no-ops.
	if m.input.Len() == 0 && m.inFlight.Len() == 0 {
		return
	}
	// Start at most one new access per cycle.
	if ev, ok := m.input.Peek(); ok {
		if t := m.tcbs[ev.Flow]; t == nil {
			m.input.Pop() // flow left DRAM while the event was queued
			m.unqueue(ev.Flow)
		} else {
			m.input.Pop()
			readyAt := cycle
			if s := m.cacheSlot(ev.Flow); s >= 0 && m.cache[s] == ev.Flow {
				m.CacheHits.Inc()
				readyAt = cycle + 1 // BRAM cache hit: single-cycle
			} else {
				m.CacheMiss.Inc()
				// Read-modify-write on the DRAM row; fill the cache slot.
				done := m.rate.Reserve(cycle, 2*TCBBytes) + m.lat
				if s >= 0 {
					m.cache[s] = ev.Flow
				}
				readyAt = done
			}
			m.inFlight.Push(pendingEvent{ev: ev, readyAt: readyAt})
		}
	}

	// Retire completed accesses in order.
	for {
		pe, ok := m.inFlight.Peek()
		if !ok || pe.readyAt > cycle {
			return
		}
		m.inFlight.Pop()
		m.unqueue(pe.ev.Flow)
		t := m.tcbs[pe.ev.Flow]
		if t == nil {
			continue
		}
		t.In.Accumulate(&pe.ev)
		t.LastActive = cycle
		m.Handled.Inc()
		// Check logic: swap in only flows that can send packets (§4.3.1).
		if tcpproc.Actionable(t) && m.hooks.OnSwapInRequest != nil {
			m.SwapReqs.Inc()
			m.hooks.OnSwapInRequest(pe.ev.Flow)
		}
	}
}
