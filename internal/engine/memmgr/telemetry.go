package memmgr

import "f4t/internal/telemetry"

// Instrument registers the memory manager's counters and occupancy
// gauges under prefix (e.g. "eng_a.mem"). Entries reference the existing
// stat fields directly. Safe on a nil registry.
func (m *Manager) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".handled", &m.Handled)
	reg.Counter(prefix+".cache_hits", &m.CacheHits)
	reg.Counter(prefix+".cache_miss", &m.CacheMiss)
	reg.Counter(prefix+".swap_reqs", &m.SwapReqs)
	reg.Gauge(prefix+".dram_flows", func() int64 { return int64(m.FlowCount()) })
	reg.Gauge(prefix+".backlog", func() int64 { return int64(m.Backlog()) })
}
