package memmgr

import (
	"testing"

	"f4t/internal/flow"
	"f4t/internal/sim"
)

func estTCB(id flow.ID) *flow.TCB {
	t := &flow.TCB{
		FlowID: id, State: flow.StateEstablished,
		ISS: 1000, SndUna: 1001, SndNxt: 1001, Req: 1001,
		IRS: 5000, RcvNxt: 5001, AppRead: 5001, DeliveredTo: 5001, LastAckSent: 5001,
		RcvBuf: 1 << 19, SndWnd: 1 << 20,
	}
	t.Cwnd = 1 << 20
	return t
}

func TestInsertExtractRoundTrip(t *testing.T) {
	k := sim.New()
	m := New(k, DefaultConfig(DDR), Hooks{})
	tcb := estTCB(1)
	m.Insert(tcb)
	if !m.Has(1) || m.FlowCount() != 1 {
		t.Fatal("insert lost")
	}
	got, readyAt, ok := m.Extract(1)
	if !ok || got != tcb || m.Has(1) {
		t.Fatal("extract broken")
	}
	if readyAt <= k.Now() {
		t.Fatal("extract completed instantaneously — no DRAM latency")
	}
}

func TestHandleEventTriggersCheckLogic(t *testing.T) {
	k := sim.New()
	var swapReqs []flow.ID
	m := New(k, DefaultConfig(HBM), Hooks{
		OnSwapInRequest: func(id flow.ID) { swapReqs = append(swapReqs, id) },
	})
	k.Register(sim.TickerFunc(m.Tick))
	m.Insert(estTCB(1))
	// A sendable request: actionable → swap-in request.
	m.EnqueueEvent(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: 1101})
	k.Run(200)
	if len(swapReqs) != 1 || swapReqs[0] != 1 {
		t.Fatalf("swap requests = %v", swapReqs)
	}
	tcb, _, _ := m.Extract(1)
	if tcb.In.Valid&flow.VReq == 0 || tcb.In.Req != 1101 {
		t.Fatalf("event not handled into the TCB: %+v", tcb.In)
	}
}

func TestNonActionableFlowWaitsInDRAM(t *testing.T) {
	k := sim.New()
	var swapReqs int
	m := New(k, DefaultConfig(DDR), Hooks{
		OnSwapInRequest: func(flow.ID) { swapReqs++ },
	})
	k.Register(sim.TickerFunc(m.Tick))
	tcb := estTCB(2)
	tcb.SndWnd = 0 // window closed: a send request cannot act
	m.Insert(tcb)
	m.EnqueueEvent(flow.Event{Kind: flow.EvUser, Flow: 2, HasReq: true, Req: 1101})
	k.Run(200)
	if swapReqs != 0 {
		t.Fatalf("window-blocked flow requested swap-in %d times", swapReqs)
	}
	if m.Handled.Total() != 1 {
		t.Fatalf("event not handled: %d", m.Handled.Total())
	}
}

func TestExtractAbsorbsQueuedEvents(t *testing.T) {
	k := sim.New()
	m := New(k, DefaultConfig(DDR), Hooks{})
	m.Insert(estTCB(3))
	m.Insert(estTCB(4))
	// Queue events for both flows without ticking (still in the input queue).
	m.EnqueueEvent(flow.Event{Kind: flow.EvUser, Flow: 3, HasReq: true, Req: 1201})
	m.EnqueueEvent(flow.Event{Kind: flow.EvUser, Flow: 4, HasReq: true, Req: 1301})
	tcb, _, _ := m.Extract(3)
	if tcb.In.Req != 1201 || tcb.In.Valid&flow.VReq == 0 {
		t.Fatalf("queued event lost on extract: %+v", tcb.In)
	}
	// Flow 4's event must survive in the queue.
	k.Register(sim.TickerFunc(m.Tick))
	k.Run(300)
	got, _, _ := m.Extract(4)
	if got.In.Req != 1301 {
		t.Fatalf("unrelated event disturbed: %+v", got.In)
	}
}

func TestCacheHitsSkipDRAM(t *testing.T) {
	k := sim.New()
	m := New(k, DefaultConfig(HBM), Hooks{})
	k.Register(sim.TickerFunc(m.Tick))
	m.Insert(estTCB(5))
	for i := 0; i < 10; i++ {
		m.EnqueueEvent(flow.Event{Kind: flow.EvRx, Flow: 5, HasWnd: true, Wnd: uint32(1000 + i)})
		k.Run(50)
	}
	if m.CacheMiss.Total() != 1 {
		t.Fatalf("misses = %d, want 1 (first touch)", m.CacheMiss.Total())
	}
	if m.CacheHits.Total() != 9 {
		t.Fatalf("hits = %d, want 9", m.CacheHits.Total())
	}
}

func TestDDRSlowerThanHBM(t *testing.T) {
	// The Fig 13 mechanism: DDR's effective bandwidth throttles TCB
	// traffic that HBM absorbs.
	measure := func(kind MemoryKind) int64 {
		k := sim.New()
		m := New(k, Config{Kind: kind, CacheSize: 0, RandomAccessPct: DefaultConfig(kind).RandomAccessPct, LatencyNS: DefaultConfig(kind).LatencyNS}, Hooks{})
		k.Register(sim.TickerFunc(m.Tick))
		// 4K flows, one event each: all cache misses (cache disabled).
		for i := 0; i < 4096; i++ {
			m.Insert(estTCB(flow.ID(i)))
		}
		for i := 0; i < 4096; i++ {
			m.EnqueueEvent(flow.Event{Kind: flow.EvRx, Flow: flow.ID(i), HasWnd: true, Wnd: 9999})
		}
		k.RunUntil(func() bool { return m.Handled.Total() == 4096 }, 1_000_000)
		return k.Now()
	}
	ddr, hbm := measure(DDR), measure(HBM)
	if ddr <= hbm {
		t.Fatalf("DDR (%d cycles) not slower than HBM (%d cycles)", ddr, hbm)
	}
	ratio := float64(ddr) / float64(hbm)
	if ratio < 3 {
		t.Fatalf("DDR/HBM slowdown = %.1f, want the bandwidth gap to show", ratio)
	}
}

func TestDropDiscards(t *testing.T) {
	k := sim.New()
	m := New(k, DefaultConfig(DDR), Hooks{})
	m.Insert(estTCB(6))
	m.Drop(6)
	if m.Has(6) || m.FlowCount() != 0 {
		t.Fatal("drop did not remove the flow")
	}
	if _, _, ok := m.Extract(6); ok {
		t.Fatal("extract of dropped flow succeeded")
	}
}
