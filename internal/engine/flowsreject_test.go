package engine_test

import (
	"testing"

	"f4t/internal/engine"
	"f4t/internal/seqnum"
	"f4t/internal/wire"
)

// When the flow table (or flow-ID space) is exhausted, an open must
// abort cleanly and loudly: an active open completes with a reset, a
// passive SYN draws an immediate RST, and both paths are counted on
// FlowsRejected. Before this was enforced a refused open could leave
// the peer retransmitting its SYN into the void — indistinguishable
// from loss.
func TestEngineRejectsOpensAtMaxFlows(t *testing.T) {
	r := newRig(t, func(c *engine.Config) {
		c.MaxFlows = 2
		c.CarryBytes = false
	})
	r.l2.Listen(80)

	s1 := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	s2 := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	r.run(t, func() bool { return s1.Established && s2.Established }, 2_000_000, "two handshakes")

	// Third active open: the client engine's ID space is exhausted, so
	// the host library must see a reset completion, not silence.
	s3 := r.l1.Dial(wire.MakeAddr(10, 0, 0, 2), 80)
	r.run(t, func() bool { return s3.WasReset }, 1_000_000, "reset completion for rejected open")
	if got := r.e1.FlowsRejected.Total(); got != 1 {
		t.Fatalf("client FlowsRejected = %d, want 1", got)
	}

	// Passive side: a fresh SYN at a full server engine must draw a RST
	// back to the client instead of being silently dropped.
	var rst *wire.Packet
	r.link.BtoA.SetSink(func(p *wire.Packet) {
		if p.Kind == wire.KindTCP && p.TCP.Flags&wire.FlagRST != 0 && p.TCP.DstPort == 7777 {
			rst = p
		}
		r.e1.DeliverPacket(p)
	})
	syn := &wire.Packet{
		Kind: wire.KindTCP,
		Eth:  wire.EthHeader{Src: wire.MAC{2, 0, 0, 0, 0, 9}, Dst: wire.MAC{2, 0, 0, 0, 0, 2}, Type: wire.EtherTypeIPv4},
		IP: wire.IPv4Header{
			Src: wire.MakeAddr(10, 0, 0, 9), Dst: wire.MakeAddr(10, 0, 0, 2),
			TTL: 64, Protocol: wire.ProtoTCP,
		},
		TCP: wire.TCPHeader{SrcPort: 7777, DstPort: 80, Seq: seqnum.Value(1000), Flags: wire.FlagSYN},
	}
	r.e2.DeliverPacket(syn)
	r.run(t, func() bool { return rst != nil }, 1_000_000, "RST for SYN at full table")
	if got := r.e2.FlowsRejected.Total(); got != 1 {
		t.Fatalf("server FlowsRejected = %d, want 1", got)
	}
	if r.e2.FlowCount() != 2 {
		t.Fatalf("server flow count = %d after rejected SYN, want 2", r.e2.FlowCount())
	}
}
