package sched

import "f4t/internal/telemetry"

// Instrument registers the scheduler's counters and queue-depth gauges
// under prefix (e.g. "eng_a.sched"). Entries reference the existing stat
// fields directly. Safe on a nil registry.
func (s *Scheduler) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".routed", &s.Routed)
	reg.Counter(prefix+".coalesced", &s.Coalesced)
	reg.Counter(prefix+".backpressure", &s.Backpressure)
	reg.Counter(prefix+".migrations", &s.Migrations)
	reg.Counter(prefix+".swap_ins", &s.SwapIns)
	reg.Counter(prefix+".dropped_events", &s.DroppedEvents)
	reg.Gauge(prefix+".pending_events", func() int64 { return int64(s.PendingEvents()) })
	reg.Gauge(prefix+".migrations_inflight", func() int64 { return int64(len(s.migrations)) })
}
