package sched

import (
	"testing"

	"f4t/internal/cc"
	"f4t/internal/engine/fpc"
	"f4t/internal/engine/memmgr"
	"f4t/internal/flow"
	"f4t/internal/seqnum"
	"f4t/internal/sim"
	"f4t/internal/tcpproc"
)

type rig struct {
	k    *sim.Kernel
	s    *Scheduler
	fpcs []*fpc.FPC
	mem  *memmgr.Manager
}

func newRig(numFPCs, slots int) *rig {
	k := sim.New()
	proto := tcpproc.DefaultConfig()
	alg := cc.MustNew("newreno")
	r := &rig{k: k}
	r.mem = memmgr.New(k, memmgr.DefaultConfig(memmgr.HBM), memmgr.Hooks{
		OnSwapInRequest: func(id flow.ID) { r.s.RequestSwapIn(id) },
	})
	for i := 0; i < numFPCs; i++ {
		idx := i
		f := fpc.New(k, fpc.Config{Slots: slots, Alg: alg, Proto: &proto}, fpc.Hooks{
			OnActions:    func(t *flow.TCB, a *tcpproc.Actions) {},
			OnEvict:      func(t *flow.TCB) { r.s.Evicted(idx, t) },
			OnInstall:    func(id flow.ID) { r.s.Installed(idx, id) },
			OnEvictAbort: func(id flow.ID) { r.s.EvictAborted(idx, id) },
		})
		r.fpcs = append(r.fpcs, f)
	}
	r.s = New(k, DefaultConfig(4096, numFPCs), r.fpcs, r.mem)
	k.Register(sim.TickerFunc(func(c int64) {
		r.s.Tick(c)
		for _, f := range r.fpcs {
			f.Tick(c)
		}
		r.mem.Tick(c)
	}))
	return r
}

func estTCB(id flow.ID) *flow.TCB {
	t := &flow.TCB{
		FlowID: id, State: flow.StateEstablished,
		ISS: 1000, SndUna: 1001, SndNxt: 1001, Req: 1001,
		IRS: 5000, RcvNxt: 5001, AppRead: 5001, DeliveredTo: 5001, LastAckSent: 5001,
		RcvBuf: 1 << 19, SndWnd: 1 << 20,
	}
	t.Cwnd = 1 << 20
	t.AckedToHost = 1001
	return t
}

func TestAllocateSpreadsByFlowCount(t *testing.T) {
	r := newRig(4, 8)
	for i := 0; i < 8; i++ {
		r.s.AllocateFlow(estTCB(flow.ID(i)))
	}
	for i, f := range r.fpcs {
		if f.FlowCount() != 2 {
			t.Fatalf("fpc %d has %d flows, want 2", i, f.FlowCount())
		}
	}
}

func TestAllocateOverflowsToDRAM(t *testing.T) {
	r := newRig(1, 4)
	for i := 0; i < 10; i++ {
		r.s.AllocateFlow(estTCB(flow.ID(i)))
	}
	if r.fpcs[0].FlowCount() != 4 || r.mem.FlowCount() != 6 {
		t.Fatalf("placement: fpc=%d dram=%d", r.fpcs[0].FlowCount(), r.mem.FlowCount())
	}
	inFPC, _, inDRAM, _ := r.s.Location(9)
	if inFPC || !inDRAM {
		t.Fatal("overflow flow not recorded as DRAM-resident")
	}
}

func TestRoutingReachesFPCAndDRAM(t *testing.T) {
	r := newRig(1, 2)
	r.s.AllocateFlow(estTCB(1)) // FPC
	r.s.AllocateFlow(estTCB(2)) // FPC
	r.s.AllocateFlow(estTCB(3)) // DRAM
	r.s.Submit(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: 1101})
	r.s.Submit(flow.Event{Kind: flow.EvRx, Flow: 3, HasWnd: true, Wnd: 9}) // wnd-only: not actionable
	r.k.Run(300)
	if r.fpcs[0].EventsHandled.Total() != 1 {
		t.Fatalf("FPC handled %d", r.fpcs[0].EventsHandled.Total())
	}
	if r.mem.Handled.Total() != 1 {
		t.Fatalf("DRAM handled %d", r.mem.Handled.Total())
	}
}

func TestCoalescingMergesSameFlowUserEvents(t *testing.T) {
	r := newRig(1, 4)
	r.s.AllocateFlow(estTCB(1))
	// Submit many user requests back-to-back before any routing tick.
	req := seqnum.Value(1001)
	for i := 0; i < 10; i++ {
		req = req.Add(100)
		ok := r.s.Submit(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: req, Coalescable: true})
		if !ok {
			t.Fatalf("submit %d rejected", i)
		}
	}
	if r.s.Coalesced.Total() != 9 {
		t.Fatalf("coalesced = %d, want 9", r.s.Coalesced.Total())
	}
	r.k.Run(300)
	// One routed event carrying the final pointer.
	if r.fpcs[0].EventsHandled.Total() != 1 {
		t.Fatalf("events handled = %d, want 1", r.fpcs[0].EventsHandled.Total())
	}
}

func TestCoalescingRespectsLossiness(t *testing.T) {
	r := newRig(1, 4)
	r.s.AllocateFlow(estTCB(1))
	// Dup-acks must never merge (information loss).
	r.s.Submit(flow.Event{Kind: flow.EvRx, Flow: 1, IsDupAck: true})
	r.s.Submit(flow.Event{Kind: flow.EvRx, Flow: 1, IsDupAck: true})
	if r.s.Coalesced.Total() != 0 {
		t.Fatal("lossy events coalesced")
	}
}

func TestCoalescingDisabledByConfig(t *testing.T) {
	k := sim.New()
	proto := tcpproc.DefaultConfig()
	alg := cc.MustNew("newreno")
	mem := memmgr.New(k, memmgr.DefaultConfig(memmgr.HBM), memmgr.Hooks{})
	f := fpc.New(k, fpc.Config{Slots: 4, Alg: alg, Proto: &proto}, fpc.Hooks{})
	cfg := DefaultConfig(64, 1)
	cfg.Coalesce = false
	s := New(k, cfg, []*fpc.FPC{f}, mem)
	s.AllocateFlow(estTCB(1))
	s.Submit(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: 1101, Coalescable: true})
	s.Submit(flow.Event{Kind: flow.EvUser, Flow: 1, HasReq: true, Req: 1201, Coalescable: true})
	if s.Coalesced.Total() != 0 {
		t.Fatal("coalescing ran while disabled")
	}
}

func TestSwapInAfterActionableEvent(t *testing.T) {
	r := newRig(1, 2)
	for i := 0; i < 5; i++ {
		r.s.AllocateFlow(estTCB(flow.ID(i)))
	}
	// Flow 4 lives in DRAM; a sendable request must pull it into the FPC.
	r.s.Submit(flow.Event{Kind: flow.EvUser, Flow: 4, HasReq: true, Req: 1101, Coalescable: true})
	ok := r.k.RunUntil(func() bool {
		inFPC, _, _, _ := r.s.Location(4)
		return inFPC && r.fpcs[0].Has(4)
	}, 50_000)
	if !ok {
		t.Fatalf("flow 4 never swapped in (migrations=%d swapins=%d)", r.s.Migrations.Total(), r.s.SwapIns.Total())
	}
	// Something was evicted to make room.
	if r.s.Migrations.Total() == 0 {
		t.Fatal("no eviction happened for the swap-in")
	}
	if r.fpcs[0].FlowCount() != 2 {
		t.Fatalf("FPC overfull: %d", r.fpcs[0].FlowCount())
	}
}

func TestMovingStateBlocksRoutingButLosesNothing(t *testing.T) {
	r := newRig(1, 2)
	for i := 0; i < 3; i++ {
		r.s.AllocateFlow(estTCB(flow.ID(i)))
	}
	// Trigger the swap-in of flow 2 (in DRAM) and immediately submit
	// more events for it: they must be held and delivered in order.
	r.s.Submit(flow.Event{Kind: flow.EvUser, Flow: 2, HasReq: true, Req: 1101, Coalescable: true})
	r.k.Run(30)
	r.s.Submit(flow.Event{Kind: flow.EvUser, Flow: 2, HasReq: true, Req: 1201, Coalescable: true})
	r.s.Submit(flow.Event{Kind: flow.EvUser, Flow: 2, HasReq: true, Req: 1301, Coalescable: true})
	ok := r.k.RunUntil(func() bool {
		if !r.fpcs[0].Has(2) {
			return false
		}
		// All three requests eventually reach the TCB: the final REQ
		// pointer must be the newest.
		return r.s.PendingEvents() == 0
	}, 100_000)
	if !ok {
		t.Fatal("pending events never drained")
	}
	r.k.Run(1000)
	if r.s.DroppedEvents.Total() != 0 {
		t.Fatalf("events dropped during migration: %d", r.s.DroppedEvents.Total())
	}
}

func TestFlowFreedClearsEverything(t *testing.T) {
	r := newRig(1, 2)
	r.s.AllocateFlow(estTCB(1))
	r.s.AllocateFlow(estTCB(2))
	r.s.AllocateFlow(estTCB(3)) // DRAM
	r.s.FlowFreed(3)
	if r.mem.Has(3) {
		t.Fatal("freed DRAM flow kept state")
	}
	inFPC, _, inDRAM, moving := r.s.Location(3)
	if inFPC || inDRAM || moving {
		t.Fatal("LUT entry survived the free")
	}
	// Events to the freed flow are dropped, not looped.
	r.s.Submit(flow.Event{Kind: flow.EvUser, Flow: 3, HasReq: true, Req: 1101})
	r.k.Run(100)
	if r.s.DroppedEvents.Total() != 1 {
		t.Fatalf("dropped = %d", r.s.DroppedEvents.Total())
	}
}

func TestReservationAccountingUnderChurn(t *testing.T) {
	// Sustained swap-in pressure must not leak reservations: the FPC's
	// flow count plus free slots must stay consistent.
	r := newRig(2, 4)
	for i := 0; i < 32; i++ {
		r.s.AllocateFlow(estTCB(flow.ID(i)))
	}
	req := make([]seqnum.Value, 32)
	for i := range req {
		req[i] = 1001
	}
	n := 0
	feeding := true
	r.k.Register(sim.TickerFunc(func(int64) {
		if !feeding {
			return
		}
		id := flow.ID(n % 32)
		n++
		req[id] = req[id].Add(10)
		r.s.Submit(flow.Event{Kind: flow.EvUser, Flow: id, HasReq: true, Req: req[id], Coalescable: true})
	}))
	r.k.Run(50_000)
	// Quiesce: in-flight migrations settle, then every flow must be
	// accounted in exactly one place (no reservation or TCB leaks).
	feeding = false
	r.k.Run(20_000)
	total := r.mem.FlowCount()
	for _, f := range r.fpcs {
		total += f.FlowCount()
	}
	if total != 32 {
		for i := flow.ID(0); i < 32; i++ {
			inFPC, fi, inDRAM, moving := r.s.Location(i)
			if !inFPC && !inDRAM {
				t.Logf("flow %d: fpc=%v(%d) dram=%v moving=%v migTarget=%+v", i, inFPC, fi, inDRAM, moving, r.s.migrations[i])
			}
		}
		t.Fatalf("flows accounted after quiesce = %d/32 (pending=%d swapQ=%d)", total, r.s.PendingEvents(), r.s.swapReqs.Len())
	}
	if r.s.SwapIns.Total() == 0 || r.s.Migrations.Total() == 0 {
		t.Fatal("no migration churn happened — test ineffective")
	}
	if r.s.DroppedEvents.Total() != 0 {
		t.Fatalf("events dropped: %d", r.s.DroppedEvents.Total())
	}
}
