// Package sched models the F4T scheduler (§4.3.2, §4.4): the partitioned
// location LUT that tracks where every flow's TCB lives, the four
// 16-entry coalesce FIFOs that merge events of the same flow before
// routing (§4.4.1), the pending queue with 12-cycle retry for events
// whose flow is mid-migration, and the migration engine that moves TCBs
// between FPCs and DRAM (including FPC→FPC load-balancing moves).
package sched

import (
	"f4t/internal/engine/fpc"
	"f4t/internal/engine/memmgr"
	"f4t/internal/flow"
	"f4t/internal/sim"
	"f4t/internal/tcpproc"
)

// Location states in the LUT.
type locKind uint8

const (
	locFree locKind = iota
	locFPC
	locDRAM
	locMoving
)

type locEntry struct {
	kind locKind
	fpc  int8
}

// migTarget records where an in-flight migration is headed.
type migTarget struct {
	toDRAM   bool
	fpc      int
	reserved bool // a slot reservation is held at fpc
}

// pendingEv is an event waiting out a migration (§4.3.2).
type pendingEv struct {
	ev      flow.Event
	retryAt int64
}

// retryCycles is the pending-queue retry interval (§4.3.2: "retries the
// routing after 12 cycles").
const retryCycles = 12

// Config parameterizes the scheduler.
type Config struct {
	MaxFlows      int
	CoalesceFIFOs int  // reference design: 4
	FIFODepth     int  // reference design: 16
	Coalesce      bool // event coalescing enable (§4.4.1; off for the 1FPC ablation)
	LUTGroups     int  // location LUT partitions = routes per cycle (§4.4.2)
}

// DefaultConfig returns the reference-design scheduler.
func DefaultConfig(maxFlows, numFPCs int) Config {
	groups := (numFPCs + 1) / 2 // one route per two-cycle FPC slot (§4.4.2)
	if groups < 1 {
		groups = 1
	}
	return Config{
		MaxFlows:      maxFlows,
		CoalesceFIFOs: 4,
		FIFODepth:     16,
		Coalesce:      true,
		LUTGroups:     groups,
	}
}

// Scheduler orchestrates all flows (§4.1.2 ④).
type Scheduler struct {
	k    *sim.Kernel
	cfg  Config
	fpcs []*fpc.FPC
	mem  *memmgr.Manager

	lut        []locEntry
	fifos      []*sim.Queue[flow.Event]
	pending    *sim.Queue[pendingEv]
	pendingCnt map[flow.ID]int // flows with events in the pending queue (order guard)

	migrations map[flow.ID]migTarget
	swapReqs   *sim.Queue[flow.ID]
	swapQueued map[flow.ID]bool // dedupe: at most one queued request per flow
	evictBusy  []bool           // one outstanding eviction per FPC

	// Stats.
	Routed       sim.Counter
	Coalesced    sim.Counter
	Backpressure sim.Counter
	Migrations   sim.Counter
	SwapIns      sim.Counter
	DroppedEvents sim.Counter
}

// New builds a scheduler over the given FPCs and memory manager.
func New(k *sim.Kernel, cfg Config, fpcs []*fpc.FPC, mem *memmgr.Manager) *Scheduler {
	if cfg.CoalesceFIFOs <= 0 {
		cfg.CoalesceFIFOs = 4
	}
	if cfg.FIFODepth <= 0 {
		cfg.FIFODepth = 16
	}
	if cfg.LUTGroups <= 0 {
		cfg.LUTGroups = 1
	}
	s := &Scheduler{
		k:          k,
		cfg:        cfg,
		fpcs:       fpcs,
		mem:        mem,
		lut:        make([]locEntry, cfg.MaxFlows),
		fifos:      make([]*sim.Queue[flow.Event], cfg.CoalesceFIFOs),
		pending:    sim.NewQueue[pendingEv](0),
		pendingCnt: make(map[flow.ID]int),
		migrations: make(map[flow.ID]migTarget),
		swapReqs:   sim.NewQueue[flow.ID](0),
		swapQueued: make(map[flow.ID]bool),
		evictBusy:  make([]bool, len(fpcs)),
	}
	for i := range s.fifos {
		s.fifos[i] = sim.NewQueue[flow.Event](cfg.FIFODepth)
	}
	return s
}

// Location reports where a flow currently lives (testing/diagnostics).
func (s *Scheduler) Location(id flow.ID) (inFPC bool, fpcIdx int, inDRAM, moving bool) {
	e := s.lut[id]
	switch e.kind {
	case locFPC:
		return true, int(e.fpc), false, false
	case locDRAM:
		return false, 0, true, false
	case locMoving:
		return false, 0, false, true
	}
	return false, 0, false, false
}

// AllocateFlow places a new flow: the FPC with the lowest flow count
// (§4.4.2), or DRAM when every FPC is full.
func (s *Scheduler) AllocateFlow(t *flow.TCB) {
	best := -1
	bestCount := 1 << 30
	for i, f := range s.fpcs {
		if f.HasSlot() && f.FlowCount() < bestCount {
			best, bestCount = i, f.FlowCount()
		}
	}
	if best >= 0 && s.fpcs[best].InstallNew(t) {
		s.lut[t.FlowID] = locEntry{kind: locFPC, fpc: int8(best)}
		return
	}
	s.mem.Insert(t)
	s.lut[t.FlowID] = locEntry{kind: locDRAM}
}

// FlowFreed clears all state for a terminated flow.
func (s *Scheduler) FlowFreed(id flow.ID) {
	if s.lut[id].kind == locDRAM {
		s.mem.Drop(id)
	}
	if tgt, ok := s.migrations[id]; ok && tgt.reserved && !tgt.toDRAM {
		s.fpcs[tgt.fpc].ReleaseReservation()
	}
	s.lut[id] = locEntry{}
	delete(s.migrations, id)
}

// Submit pushes one event into the coalesce stage. It reports false when
// the flow's FIFO is full (backpressure to the host interface / RX
// parser / timer module, which hold their own queues).
func (s *Scheduler) Submit(ev flow.Event) bool {
	idx := int(uint64(ev.Flow) % uint64(len(s.fifos)))
	q := s.fifos[idx]
	if s.cfg.Coalesce && ev.Coalescable {
		// Index-based scan: a Scan closure capturing ev would force the
		// event to escape on every submit, and this is the engine's
		// per-segment hot path.
		for i, n := 0, q.Len(); i < n; i++ {
			e := q.AtPtr(i)
			if e.Flow == ev.Flow && e.Coalescable && e.Kind == ev.Kind {
				coalesceInto(e, &ev)
				s.Coalesced.Inc()
				return true
			}
		}
	}
	return q.Push(ev)
}

// coalesceInto merges src into dst using the same lossless rules as the
// event handler (§4.4.1): cumulative pointers take the newest value.
func coalesceInto(dst, src *flow.Event) {
	switch src.Kind {
	case flow.EvUser:
		if src.HasReq {
			dst.HasReq, dst.Req = true, src.Req
		}
		if src.HasRead {
			dst.HasRead, dst.AppRead = true, src.AppRead
		}
		dst.Ctl |= src.Ctl
	case flow.EvRx:
		if src.HasAck {
			dst.HasAck, dst.Ack = true, src.Ack
		}
		if src.HasWnd {
			dst.HasWnd, dst.Wnd = true, src.Wnd
		}
		if src.HasData {
			dst.HasData, dst.RcvData = true, src.RcvData
		}
	case flow.EvTimeout:
		dst.Timeouts |= src.Timeouts
	}
}

// SubmitSpace reports whether the flow's FIFO can take another event.
func (s *Scheduler) SubmitSpace(id flow.ID) bool {
	return !s.fifos[int(uint64(id)%uint64(len(s.fifos)))].Full()
}

// RequestSwapIn is the memory manager's check-logic signal (§4.3.1).
// Requests dedupe per flow: the check logic fires per handled event, but
// one pending swap-in per flow suffices.
func (s *Scheduler) RequestSwapIn(id flow.ID) {
	if s.swapQueued[id] {
		return
	}
	s.swapQueued[id] = true
	s.swapReqs.Push(id)
}

// NextWork implements sim.Sleeper for the engine's aggregate idleness
// report: routing and swap-in servicing act immediately on non-empty
// queues; the pending queue acts at its head's retry deadline (entries
// are pushed with monotonically nondecreasing retryAt, so the head is
// the minimum). Migrations in flight land via kernel timers into FPC
// incoming queues, which report their own work.
func (s *Scheduler) NextWork(now int64) int64 {
	for _, q := range s.fifos {
		if q.Len() > 0 {
			return now + 1
		}
	}
	if s.swapReqs.Len() > 0 {
		return now + 1
	}
	if pe, ok := s.pending.Peek(); ok {
		if pe.retryAt <= now {
			return now + 1
		}
		return pe.retryAt
	}
	return sim.Dormant
}

// Tick advances routing, pending retries and migrations.
func (s *Scheduler) Tick(cycle int64) {
	// Event-driven dispatch: with every input queue empty each stage is a
	// no-op (route pops nothing, retryPending and processSwapIns see empty
	// queues), so skip the three stage calls. Mirrors NextWork's idleness
	// conditions exactly, so behavior is unchanged — only dispatch cost.
	if s.pending.Len() == 0 && s.swapReqs.Len() == 0 {
		busy := false
		for _, q := range s.fifos {
			if q.Len() > 0 {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
	}
	s.route(cycle)
	s.retryPending(cycle)
	s.processSwapIns(cycle)
}

// route pops up to one event per coalesce FIFO per cycle — the
// partitioned-LUT routing bandwidth of §4.4.2 — and forwards each to its
// flow's current location.
func (s *Scheduler) route(cycle int64) {
	routes := 0
	for _, q := range s.fifos {
		if routes >= s.cfg.LUTGroups {
			break
		}
		ev, ok := q.Peek()
		if !ok {
			continue
		}
		// Order guard: a flow with events already waiting in the pending
		// queue must not have later events overtake them.
		if s.pendingCnt[ev.Flow] > 0 {
			q.Pop()
			s.toPending(ev, cycle)
			routes++
			continue
		}
		switch s.lut[ev.Flow].kind {
		case locFPC:
			f := s.fpcs[s.lut[ev.Flow].fpc]
			if f.EnqueueEvent(ev) {
				q.Pop()
				s.Routed.Inc()
				routes++
			} else {
				// Congested FPC: head-of-line wait, plus a load-balancing
				// migration of this flow to the idlest FPC (§4.4.2).
				s.Backpressure.Inc()
				s.maybeRebalance(ev.Flow, int(s.lut[ev.Flow].fpc))
			}
		case locDRAM:
			if s.mem.EnqueueEvent(ev) {
				q.Pop()
				s.Routed.Inc()
				routes++
			}
		case locMoving:
			q.Pop()
			s.toPending(ev, cycle)
			routes++
		default: // freed flow: event has nowhere to go
			q.Pop()
			s.DroppedEvents.Inc()
			routes++
		}
	}
}

func (s *Scheduler) toPending(ev flow.Event, cycle int64) {
	s.pending.Push(pendingEv{ev: ev, retryAt: cycle + retryCycles})
	s.pendingCnt[ev.Flow]++
}

// retryPending re-routes events whose retry interval elapsed (§4.3.2).
func (s *Scheduler) retryPending(cycle int64) {
	for i := 0; i < 4; i++ { // a few retries per cycle
		pe, ok := s.pending.Peek()
		if !ok || pe.retryAt > cycle {
			return
		}
		ev := pe.ev
		switch s.lut[ev.Flow].kind {
		case locFPC:
			if !s.fpcs[s.lut[ev.Flow].fpc].EnqueueEvent(ev) {
				return // destination congested: hold position, retry later
			}
		case locDRAM:
			if !s.mem.EnqueueEvent(ev) {
				return
			}
		case locMoving:
			// Still migrating: recycle to the tail with a fresh deadline.
			s.pending.Pop()
			s.pending.Push(pendingEv{ev: ev, retryAt: cycle + retryCycles})
			return
		default:
			s.pending.Pop()
			s.pendingCnt[ev.Flow]--
			if s.pendingCnt[ev.Flow] <= 0 {
				delete(s.pendingCnt, ev.Flow)
			}
			s.DroppedEvents.Inc()
			continue
		}
		s.pending.Pop()
		s.pendingCnt[ev.Flow]--
		if s.pendingCnt[ev.Flow] <= 0 {
			delete(s.pendingCnt, ev.Flow)
		}
		s.Routed.Inc()
	}
}

// maybeRebalance migrates a flow away from a congested FPC to the idlest
// one (§4.4.2). At most one eviction per FPC is in flight.
func (s *Scheduler) maybeRebalance(id flow.ID, from int) {
	if s.evictBusy[from] {
		return
	}
	best, bestCount := -1, 1<<30
	for i, f := range s.fpcs {
		if i != from && f.HasSlot() && f.FlowCount() < bestCount {
			best, bestCount = i, f.FlowCount()
		}
	}
	if best < 0 {
		return
	}
	if !s.fpcs[best].ReserveSlot() {
		return
	}
	s.startMigration(id, from, migTarget{fpc: best, reserved: true})
}

// processSwapIns services check-logic requests: extract the TCB from
// DRAM and push it into the chosen FPC, evicting a cold flow first when
// every FPC is full (§4.3.2). Blocked-but-valid requests recycle to the
// tail so stale entries behind them still drain.
func (s *Scheduler) processSwapIns(cycle int64) {
	for i := 0; i < 4; i++ {
		id, ok := s.swapReqs.Pop()
		if !ok {
			return
		}
		delete(s.swapQueued, id)
		if s.lut[id].kind != locDRAM || !s.mem.Has(id) {
			continue // already moved or freed
		}
		best, bestCount := -1, 1<<30
		for j, f := range s.fpcs {
			if f.HasSlot() && f.FlowCount() < bestCount {
				best, bestCount = j, f.FlowCount()
			}
		}
		if best < 0 || !s.fpcs[best].ReserveSlot() {
			// Every FPC full: make room by evicting a cold flow, recycle
			// the request to the tail, and retry later.
			s.swapQueued[id] = true
			s.swapReqs.Push(id)
			s.makeRoom()
			return
		}
		s.SwapIns.Inc()
		s.lut[id] = locEntry{kind: locMoving}
		tcb, readyAt, found := s.mem.Extract(id)
		if !found {
			s.fpcs[best].ReleaseReservation()
			s.lut[id] = locEntry{}
			continue
		}
		target := best
		s.migrations[tcb.FlowID] = migTarget{fpc: target, reserved: true}
		s.k.At(readyAt, func() {
			// The reservation guarantees capacity.
			s.fpcs[target].AcceptTCB(tcb)
		})
	}
}

// makeRoom evicts the coldest flow from the FPC with no eviction in
// flight (picking the fullest such FPC).
func (s *Scheduler) makeRoom() {
	best, bestCount := -1, -1
	for i, f := range s.fpcs {
		if !s.evictBusy[i] && f.FlowCount() > bestCount {
			best, bestCount = i, f.FlowCount()
		}
	}
	if best < 0 {
		return
	}
	victim := s.fpcs[best].ColdestFlow()
	if victim == flow.NoFlow {
		return
	}
	s.startMigration(victim, best, migTarget{toDRAM: true})
}

// startMigration sets the moving state and the evict flag (§4.3.2: both
// at the same time, which blocks routing of new input events).
func (s *Scheduler) startMigration(id flow.ID, from int, tgt migTarget) {
	if s.lut[id].kind != locFPC {
		return
	}
	if !s.fpcs[from].RequestEvict(id) {
		return
	}
	s.Migrations.Inc()
	s.evictBusy[from] = true
	s.migrations[id] = tgt
	s.lut[id] = locEntry{kind: locMoving}
}

// Evicted receives a TCB captured by an FPC's evict checker and forwards
// it to its migration target.
func (s *Scheduler) Evicted(from int, t *flow.TCB) {
	s.evictBusy[from] = false
	tgt, ok := s.migrations[t.FlowID]
	if !ok || tgt.toDRAM {
		delete(s.migrations, t.FlowID)
		s.mem.Insert(t)
		s.lut[t.FlowID] = locEntry{kind: locDRAM}
		// Events that were handled during the eviction window travel with
		// the TCB; the check logic decides whether they warrant a swap
		// back in (§4.3.1) — a bare window update does not.
		if tcpproc.Actionable(t) {
			s.RequestSwapIn(t.FlowID)
		}
		return
	}
	// FPC→FPC rebalancing move; the reservation guarantees capacity.
	if s.fpcs[tgt.fpc].AcceptTCB(t) {
		return // Installed() will finalize
	}
	delete(s.migrations, t.FlowID)
	s.mem.Insert(t)
	s.lut[t.FlowID] = locEntry{kind: locDRAM}
}

// EvictAborted releases an eviction slot whose flow terminated during
// its final FPU pass, returning any reservation held at the target.
func (s *Scheduler) EvictAborted(from int, id flow.ID) {
	s.evictBusy[from] = false
	if tgt, ok := s.migrations[id]; ok && tgt.reserved && !tgt.toDRAM {
		s.fpcs[tgt.fpc].ReleaseReservation()
	}
	delete(s.migrations, id)
}

// Installed is the FPC's signal that a migrated TCB landed in its table;
// the LUT flips to the new location and routing resumes (§4.3.2).
func (s *Scheduler) Installed(fpcIdx int, id flow.ID) {
	delete(s.migrations, id)
	s.lut[id] = locEntry{kind: locFPC, fpc: int8(fpcIdx)}
}

// PendingEvents returns the pending-queue depth (bounded-queue invariant
// checks in tests).
func (s *Scheduler) PendingEvents() int { return s.pending.Len() }
