package sim

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing event counter with an optional
// warmup snapshot so steady-state rates exclude ramp-up.
type Counter struct {
	total    int64
	snapshot int64
	snapAt   int64 // cycle of the snapshot
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.total += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.total++ }

// Total returns the all-time count.
func (c *Counter) Total() int64 { return c.total }

// Snapshot records the current count and cycle; RateSince measures from it.
func (c *Counter) Snapshot(cycle int64) {
	c.snapshot = c.total
	c.snapAt = cycle
}

// Since returns the count accumulated since the last Snapshot.
func (c *Counter) Since() int64 { return c.total - c.snapshot }

// RatePerSecond returns events per simulated second since the snapshot.
func (c *Counter) RatePerSecond(cycle int64) float64 {
	d := cycle - c.snapAt
	if d <= 0 {
		return 0
	}
	return float64(c.total-c.snapshot) * float64(FrequencyHz) / float64(d)
}

// Histogram collects int64 samples (typically latencies in nanoseconds)
// and reports order statistics. It stores raw samples; experiments here
// collect at most a few hundred thousand.
type Histogram struct {
	samples []int64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return len(h.samples) }

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples, or 0 when
// empty. Uses the nearest-rank method.
func (h *Histogram) Quantile(q float64) int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	idx := int(q*float64(len(h.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Median returns the 50th percentile.
func (h *Histogram) Median() int64 { return h.Quantile(0.50) }

// P99 returns the 99th percentile.
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var s int64
	for _, v := range h.samples {
		s += v
	}
	return float64(s) / float64(len(h.samples))
}

// Reset discards all samples.
func (h *Histogram) Reset() { h.samples, h.sorted = h.samples[:0], false }

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%d p99=%d mean=%.1f", h.Count(), h.Median(), h.P99(), h.Mean())
}
