package sim

import (
	"fmt"
	"testing"
)

// relay is a minimal two-island workload: each tick it drains its
// inbox, logs what it saw, and forwards incremented tokens to its peer
// through the fabric's cross-island Poster after a fixed latency. It is
// the smallest rig that exercises registration slots, cross-shard
// mailboxes, and quiescence hints at once.
type relay struct {
	name string
	peer *relay
	post Poster
	lat  int64
	hops int

	inbox []int
	log   []string
}

func (r *relay) Tick(now int64) {
	if len(r.inbox) == 0 {
		return
	}
	pending := r.inbox
	r.inbox = nil
	for _, v := range pending {
		r.log = append(r.log, fmt.Sprintf("%s@%d recv %d", r.name, now, v))
		if v < r.hops {
			vv := v + 1
			peer := r.peer
			r.post.At(now+r.lat, func() { peer.inbox = append(peer.inbox, vv) })
		}
	}
}

func (r *relay) NextWork(now int64) int64 {
	if len(r.inbox) > 0 {
		return now
	}
	return Dormant
}

// buildRelayRig assembles the two-relay rig on any fabric. Island 0
// hosts A, island 1 hosts B; A starts with one token.
func buildRelayRig(f Fabric, lat int64, hops int) (*relay, *relay) {
	a := &relay{name: "A", lat: lat, hops: hops}
	b := &relay{name: "B", lat: lat, hops: hops}
	a.peer, b.peer = b, a
	a.post = f.CrossPost(0, 1, lat)
	b.post = f.CrossPost(1, 0, lat)
	f.RegisterOn(0, a)
	f.RegisterOn(1, b)
	a.inbox = append(a.inbox, 0)
	return a, b
}

// TestShardedMatchesSerial checks the tentpole property on the relay
// rig: per-island event logs are identical across serial and sharded
// execution, with and without cycle skipping, for several shard counts.
func TestShardedMatchesSerial(t *testing.T) {
	const lat, hops, span = 7, 40, 1000

	run := func(f Fabric, skip bool) (alog, blog []string, now int64) {
		a, b := buildRelayRig(f, lat, hops)
		switch k := f.(type) {
		case *Kernel:
			k.SetSkipping(skip)
		case *ShardedKernel:
			k.SetSkipping(skip)
		}
		f.Run(span)
		return a.log, b.log, f.Now()
	}

	refA, refB, refNow := run(New(), false)
	if len(refA) == 0 || len(refB) == 0 {
		t.Fatalf("reference run saw no traffic: A=%d B=%d", len(refA), len(refB))
	}

	for _, skip := range []bool{false, true} {
		for _, shards := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("shards=%d skip=%v", shards, skip)
			gotA, gotB, gotNow := run(NewSharded(shards), skip)
			if gotNow != refNow {
				t.Errorf("%s: end cycle %d, want %d", name, gotNow, refNow)
			}
			diffLogs(t, name+" islandA", gotA, refA)
			diffLogs(t, name+" islandB", gotB, refB)
		}
		// Serial with skipping must also match serial without.
		gotA, gotB, _ := run(New(), skip)
		diffLogs(t, fmt.Sprintf("serial skip=%v islandA", skip), gotA, refA)
		diffLogs(t, fmt.Sprintf("serial skip=%v islandB", skip), gotB, refB)
	}
}

func diffLogs(t *testing.T, name string, got, want []string) {
	t.Helper()
	n := len(got)
	if len(want) > n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		g, w := "<missing>", "<missing>"
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			t.Fatalf("%s: log[%d] = %q, want %q", name, i, g, w)
		}
	}
}

// TestShardedGlobalSlots pins that RegisterOn hands out fabric-global
// slot numbers in registration order regardless of island, so timer
// tie-breaks match a serial run with the same construction sequence.
func TestShardedGlobalSlots(t *testing.T) {
	sk := NewSharded(2)
	mk := func() Ticker { return TickerFunc(func(int64) {}) }
	sk.RegisterOn(0, mk())
	sk.RegisterOn(1, mk())
	sk.RegisterOn(0, mk())
	if got := sk.Shard(0).tickers[0].slot; got != 0 {
		t.Errorf("island0 first ticker slot = %d, want 0", got)
	}
	if got := sk.Shard(1).tickers[0].slot; got != 1 {
		t.Errorf("island1 first ticker slot = %d, want 1", got)
	}
	if got := sk.Shard(0).tickers[1].slot; got != 2 {
		t.Errorf("island0 second ticker slot = %d, want 2", got)
	}
}

// TestShardedEmptyShardsFastPath: shards with no tickers, timers, or
// wake hints advance to the barrier without work.
func TestShardedEmptyShardsFastPath(t *testing.T) {
	sk := NewSharded(4)
	var ticks int64
	sk.RegisterOn(0, TickerFunc(func(int64) { ticks++ }))
	sk.Run(1000)
	if ticks != 1000 {
		t.Errorf("island0 ticked %d times, want 1000", ticks)
	}
	for i := 0; i < 4; i++ {
		if got := sk.Shard(i).Now(); got != 1000 {
			t.Errorf("shard %d at cycle %d, want 1000", i, got)
		}
	}
	if sk.Now() != 1000 {
		t.Errorf("barrier cycle %d, want 1000", sk.Now())
	}
}

// TestShardedRunUntilBarrierGrid: with a 10-cycle lookahead the
// predicate is only observed at barriers, so RunUntil overshoots to the
// next multiple of the window.
func TestShardedRunUntilBarrierGrid(t *testing.T) {
	sk := NewSharded(2)
	sk.RegisterOn(0, TickerFunc(func(int64) {}))
	sk.RegisterOn(1, TickerFunc(func(int64) {}))
	sk.CrossPost(0, 1, 10)
	if got := sk.Lookahead(); got != 10 {
		t.Fatalf("lookahead = %d, want 10", got)
	}
	ok := sk.RunUntil(func() bool { return sk.Now() >= 25 }, 1000)
	if !ok {
		t.Fatal("RunUntil did not satisfy predicate")
	}
	if sk.Now() != 30 {
		t.Errorf("stopped at %d, want barrier 30", sk.Now())
	}
}

// TestShardedAtBarrierHooks: hooks fire once per window, in order, on
// the coordinating goroutine, after the barrier cycle is reached.
func TestShardedAtBarrierHooks(t *testing.T) {
	sk := NewSharded(2)
	sk.RegisterOn(0, TickerFunc(func(int64) {}))
	sk.RegisterOn(1, TickerFunc(func(int64) {}))
	sk.CrossPost(0, 1, 25)
	var seen []int64
	sk.AtBarrier(func(now int64) { seen = append(seen, now) })
	sk.Run(100)
	want := []int64{25, 50, 75, 100}
	if len(seen) != len(want) {
		t.Fatalf("hook fired at %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook fired at %v, want %v", seen, want)
		}
	}
}

// TestShardedLookaheadViolationPanics: posting a cross-shard event
// inside the current window means the declared minimum latency was
// wrong; the mailbox must refuse loudly rather than lose determinism.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	sk := NewSharded(2)
	post := sk.CrossPost(0, 1, 10)
	liar := TickerFunc(func(now int64) {
		if now == 3 {
			post.At(now+2, func() {}) // violates the declared latency of 10
		}
	})
	sk.RegisterOn(0, liar)
	// Island 1 stays empty so the window runs inline on this goroutine
	// and the panic is recoverable.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on lookahead violation")
		}
	}()
	sk.Run(100)
}

// TestShardedStop: Stop from a barrier hook halts at that barrier.
func TestShardedStop(t *testing.T) {
	sk := NewSharded(2)
	sk.RegisterOn(0, TickerFunc(func(int64) {}))
	sk.RegisterOn(1, TickerFunc(func(int64) {}))
	sk.CrossPost(0, 1, 10)
	sk.AtBarrier(func(now int64) {
		if now >= 30 {
			sk.Stop()
		}
	})
	sk.Run(1000)
	if sk.Now() != 30 {
		t.Errorf("stopped at %d, want 30", sk.Now())
	}
}

// TestSerialFabricEquivalence: building the relay rig through the
// Kernel's own Fabric implementation is byte-identical to the plain
// serial construction — the property that lets one rig builder serve
// both modes.
func TestSerialFabricEquivalence(t *testing.T) {
	k1 := New()
	a1, b1 := buildRelayRig(k1, 7, 40)
	k1.Run(1000)

	k2 := New()
	a2, b2 := buildRelayRig(k2, 7, 40)
	k2.Run(1000)

	diffLogs(t, "islandA", a2.log, a1.log)
	diffLogs(t, "islandB", b2.log, b1.log)
}
