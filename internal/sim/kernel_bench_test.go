package sim

import "testing"

// benchSleeper mimics a component that is busy in short bursts around
// periodic timer work and dormant in between.
type benchSleeper struct {
	k       *Kernel
	busyTil int64
	work    int64
}

func (s *benchSleeper) Tick(cycle int64) {
	if cycle < s.busyTil {
		s.work++
	}
}

func (s *benchSleeper) NextWork(now int64) int64 {
	if s.busyTil > now {
		return now + 1
	}
	return Dormant
}

// runIdleRig simulates n cycles of a rig that is ~99% idle: every 10k
// cycles a timer triggers a 100-cycle busy burst.
func runIdleRig(k *Kernel, n int64) int64 {
	s := &benchSleeper{k: k}
	k.Register(s)
	var arm func()
	arm = func() {
		s.busyTil = k.Now() + 100
		k.After(10_000, arm)
	}
	k.After(10_000, arm)
	k.Run(n)
	return s.work
}

func BenchmarkKernelIdleSkip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runIdleRig(New(), 1_000_000)
	}
}

func BenchmarkKernelIdleNoSkip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runIdleRig(NewShadow(), 1_000_000)
	}
}

// The busy benchmarks measure the skip machinery's per-cycle overhead
// when components never sleep (the worst case for the new kernel).
func runBusyRig(k *Kernel, n int64) int64 {
	s := &benchSleeper{k: k, busyTil: 1 << 62}
	k.Register(s)
	k.Run(n)
	return s.work
}

func BenchmarkKernelBusySkip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runBusyRig(New(), 100_000)
	}
}

func BenchmarkKernelBusyNoSkip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runBusyRig(NewShadow(), 100_000)
	}
}
