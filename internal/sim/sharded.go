package sim

import (
	"fmt"
	"sync"
)

// ShardedKernel runs one simulation across several shards, each a
// private serial Kernel driven on its own goroutine, using conservative
// lookahead synchronization: all shards advance in lock-step windows no
// longer than the minimum cross-shard latency, and cross-shard events
// (packet deliveries) are exchanged only at the barriers between
// windows, through mailboxes ordered by the same deterministic timer
// key the serial kernel uses.
//
// # Determinism argument
//
// The sharded run is bit-for-bit identical to a serial run of the same
// rig because every source of ordering is goroutine-independent:
//
//  1. Components on different shards share no mutable state; the only
//     cross-shard channel is a Mailbox obtained from CrossPost.
//  2. Within a shard, components tick in global-slot order — the same
//     relative order the serial kernel uses, since RegisterOn assigns
//     slots from one fabric-wide counter in registration order.
//  3. Every timer (local or cross-shard) carries the structured key
//     (fireCycle, insertCycle, slot, sub) computed from its inserting
//     component's own deterministic execution. Merging mailbox events
//     into the destination shard's heap therefore reproduces exactly
//     the interleaving a single global heap would have produced.
//  4. A mailbox message posted during a window fires strictly after
//     the window's end barrier (enforced; see Mailbox), so no shard
//     can ever need an event another shard has not yet exchanged —
//     the classic conservative-lookahead soundness condition.
//
// Quiescence skipping composes: each shard's kernel skips provably
// idle spans inside its window using its components' NextWork hints,
// so an idle shard crosses a whole window in one jump.
type ShardedKernel struct {
	shards    []*Kernel
	boxes     []*Mailbox
	hooks     []func(now int64) // run at every barrier, in order
	lookahead int64
	cycle     int64
	nextSlot  int32
	stopped   bool
}

// NewSharded returns a sharded kernel with n shards (n >= 1) positioned
// at cycle 0. Until a cross-shard mailbox is created the lookahead is
// unbounded and Run executes each shard's whole span in one window.
func NewSharded(n int) *ShardedKernel {
	if n < 1 {
		panic("sim: NewSharded needs at least one shard")
	}
	sk := &ShardedKernel{lookahead: Dormant}
	for i := 0; i < n; i++ {
		sk.shards = append(sk.shards, New())
	}
	return sk
}

// Shards returns the number of shards.
func (sk *ShardedKernel) Shards() int { return len(sk.shards) }

// Shard returns the i-th shard's kernel (for registering components and
// reading per-shard stats). Island numbers map onto shards modulo the
// shard count, so rigs with more islands than shards still run.
func (sk *ShardedKernel) Shard(i int) *Kernel { return sk.shards[i%len(sk.shards)] }

// SetSkipping toggles quiescence skipping on every shard.
func (sk *ShardedKernel) SetSkipping(on bool) {
	for _, k := range sk.shards {
		k.SetSkipping(on)
	}
}

// SkippedCycles sums the cycles fast-forwarded across all shards.
func (sk *ShardedKernel) SkippedCycles() int64 {
	var n int64
	for _, k := range sk.shards {
		n += k.SkippedCycles()
	}
	return n
}

// Now returns the barrier cycle: every shard's clock equals it between
// windows (the only time the caller can observe the simulation).
func (sk *ShardedKernel) Now() int64 { return sk.cycle }

// NowNS returns the barrier time in nanoseconds.
func (sk *ShardedKernel) NowNS() int64 { return sk.cycle * CycleNS }

// Lookahead returns the synchronization window: the minimum declared
// cross-shard latency, or Dormant when no cross-shard link exists.
func (sk *ShardedKernel) Lookahead() int64 { return sk.lookahead }

// AtBarrier registers fn to run at every barrier (window end), on the
// coordinating goroutine, after mailboxes have been exchanged. Barrier
// hooks are the sharded analogue of coarse polling timers: they may
// read any shard's state, because all shards are parked.
func (sk *ShardedKernel) AtBarrier(fn func(now int64)) {
	sk.hooks = append(sk.hooks, fn)
}

// Stop requests that Run return at the next barrier.
func (sk *ShardedKernel) Stop() { sk.stopped = true }

// --- Fabric implementation ---

// IslandKernel implements Fabric.
func (sk *ShardedKernel) IslandKernel(island int) *Kernel { return sk.Shard(island) }

// RegisterOn implements Fabric: the component is registered on the
// island's shard under a fabric-global slot number, so its timers order
// identically to a serial run with the same registration sequence.
func (sk *ShardedKernel) RegisterOn(island int, t Ticker) {
	slot := sk.nextSlot
	sk.nextSlot++
	sk.Shard(island).RegisterSlot(t, slot)
}

// CrossPost implements Fabric. Same-shard islands short-circuit to the
// shard's own timer heap; distinct shards get a Mailbox, and the
// fabric's lookahead shrinks to the smallest declared latency.
func (sk *ShardedKernel) CrossPost(src, dst int, minLatency int64) Poster {
	if minLatency < 1 {
		panic("sim: CrossPost needs a positive minimum latency")
	}
	sks, skd := sk.Shard(src), sk.Shard(dst)
	if sks == skd {
		return sks
	}
	if minLatency < sk.lookahead {
		sk.lookahead = minLatency
	}
	m := &Mailbox{src: sks, dst: skd}
	sk.boxes = append(sk.boxes, m)
	return m
}

// Run advances all shards by n cycles in lookahead-bounded windows.
func (sk *ShardedKernel) Run(n int64) {
	sk.stopped = false
	end := sk.cycle + n
	for sk.cycle < end && !sk.stopped {
		sk.window(end)
	}
}

// RunUntil advances the simulation until the predicate returns true or
// the budget is exhausted. The predicate runs on the coordinating
// goroutine and is evaluated at barriers only — every lookahead window
// — since that is the only time cross-shard state is coherent. Drivers
// that must observe identical cycles on serial and sharded fabrics
// should poll on a fixed cycle grid instead (exp.RunUntilCoarse).
func (sk *ShardedKernel) RunUntil(pred func() bool, budget int64) bool {
	sk.stopped = false
	end := sk.cycle + budget
	for sk.cycle < end && !sk.stopped {
		if pred() {
			return true
		}
		sk.window(end)
	}
	return pred()
}

// window runs one synchronization window: set every mailbox's horizon,
// release all shards for at most lookahead cycles, then exchange the
// accumulated cross-shard events at the barrier.
func (sk *ShardedKernel) window(end int64) {
	w := sk.lookahead
	if w > end-sk.cycle {
		w = end - sk.cycle
	}
	target := sk.cycle + w
	for _, m := range sk.boxes {
		m.horizon = target
	}
	live := 0
	for _, k := range sk.shards {
		if len(k.tickers) == 0 && len(k.timers) == 0 && k.anyWake == Dormant {
			// Provably empty shard: nothing can happen; advance its
			// clock directly rather than burning a goroutine.
			k.cycle = target
			continue
		}
		live++
	}
	if live <= 1 {
		// Zero or one busy shard: run inline, no synchronization needed.
		for _, k := range sk.shards {
			if k.cycle < target {
				k.Run(target - k.cycle)
			}
		}
	} else {
		var wg sync.WaitGroup
		for _, k := range sk.shards {
			if k.cycle >= target {
				continue
			}
			wg.Add(1)
			go func(k *Kernel) {
				defer wg.Done()
				k.Run(target - k.cycle)
			}(k)
		}
		wg.Wait()
	}
	sk.cycle = target
	for _, m := range sk.boxes {
		m.flush()
	}
	for _, h := range sk.hooks {
		h(sk.cycle)
	}
}

// String describes the sharded kernel, mostly for test failures.
func (sk *ShardedKernel) String() string {
	return fmt.Sprintf("sim.ShardedKernel{cycle=%d shards=%d lookahead=%d boxes=%d}", sk.cycle, len(sk.shards), sk.lookahead, len(sk.boxes))
}

// Mailbox carries timer events from one shard to another. Events are
// appended by the source shard's goroutine during a window (At) and
// merged into the destination shard's heap by the coordinator at the
// barrier (flush) — the WaitGroup in window orders the two, so there is
// no concurrent access. Every event keeps the structured key its
// inserting component computed, which is what makes the merged firing
// order identical to a serial run.
type Mailbox struct {
	src, dst *Kernel
	horizon  int64 // current window end; posted events must fire beyond it
	out      []timerEvent
}

// At schedules fn on the destination shard at an absolute source-clock
// cycle. The cycle must lie beyond the current window's end barrier —
// guaranteed when the posting path models a physical latency of at
// least the fabric's lookahead (a netsim link's propagation delay).
// Violations panic: they would mean the lookahead was derived wrong and
// determinism silently lost.
func (m *Mailbox) At(cycle int64, fn func()) {
	if cycle <= m.horizon {
		panic(fmt.Sprintf("sim: cross-shard event for cycle %d within the current window (barrier %d): lookahead violation", cycle, m.horizon))
	}
	m.out = append(m.out, m.src.event(cycle, fn, nil, nil))
}

// AtCall is the closure-free form of At; see Kernel.AtCall. The event
// still crosses at the barrier with the full structured key.
func (m *Mailbox) AtCall(cycle int64, call func(arg any), arg any) {
	if cycle <= m.horizon {
		panic(fmt.Sprintf("sim: cross-shard event for cycle %d within the current window (barrier %d): lookahead violation", cycle, m.horizon))
	}
	m.out = append(m.out, m.src.event(cycle, nil, call, arg))
}

// flush merges the window's events into the destination heap. Order of
// insertion is irrelevant: the heap orders by the total structured key.
func (m *Mailbox) flush() {
	for _, ev := range m.out {
		m.dst.inject(ev)
	}
	m.out = m.out[:0]
}
