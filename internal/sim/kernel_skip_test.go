package sim

import "testing"

// probe is a minimal Sleeper: it records every cycle it is ticked and
// reports the work schedule the test gives it.
type probe struct {
	ticked []int64
	next   func(now int64) int64
}

func (p *probe) Tick(cycle int64)       { p.ticked = append(p.ticked, cycle) }
func (p *probe) NextWork(n int64) int64 { return p.next(n) }

func dormant(int64) int64 { return Dormant }

func TestSkipJumpsToTimer(t *testing.T) {
	k := New()
	p := &probe{next: dormant}
	k.Register(p)
	fired := int64(0)
	k.At(1000, func() { fired = k.Now() })
	k.Run(2000)
	if fired != 1000 {
		t.Fatalf("timer fired at %d, want 1000", fired)
	}
	if k.Now() != 2000 {
		t.Fatalf("ended at %d, want 2000", k.Now())
	}
	// Only the timer cycle and the run boundary should have stepped.
	if len(p.ticked) != 2 || p.ticked[0] != 1000 || p.ticked[1] != 2000 {
		t.Fatalf("ticked cycles = %v, want [1000 2000]", p.ticked)
	}
	if k.SkippedCycles() != 1998 {
		t.Fatalf("skipped = %d, want 1998", k.SkippedCycles())
	}
}

func TestSkipHonorsNextWork(t *testing.T) {
	k := New()
	p := &probe{}
	p.next = func(now int64) int64 {
		if now < 50 {
			return 50
		}
		return Dormant
	}
	k.Register(p)
	k.Run(100)
	if len(p.ticked) != 2 || p.ticked[0] != 50 || p.ticked[1] != 100 {
		t.Fatalf("ticked cycles = %v, want [50 100]", p.ticked)
	}
}

func TestWakeBoundsSkip(t *testing.T) {
	k := New()
	p := &probe{next: dormant}
	k.Register(p)
	k.WakeAt(p, 30)
	k.Run(100)
	if len(p.ticked) != 2 || p.ticked[0] != 30 || p.ticked[1] != 100 {
		t.Fatalf("ticked cycles = %v, want [30 100]", p.ticked)
	}
}

func TestWakeUnknownTickerUsesGlobalFloor(t *testing.T) {
	k := New()
	p := &probe{next: dormant}
	k.Register(p)
	// TickerFunc is not comparable, so the wake lands on the global
	// floor; the skip must still stop there.
	k.WakeAt(TickerFunc(func(int64) {}), 40)
	k.Run(100)
	if len(p.ticked) != 2 || p.ticked[0] != 40 {
		t.Fatalf("ticked cycles = %v, want first stop at 40", p.ticked)
	}
}

func TestOpaqueTickerPinsStepping(t *testing.T) {
	k := New()
	p := &probe{next: dormant}
	k.Register(p)
	k.Register(TickerFunc(func(int64) {})) // no NextWork: opaque
	k.Run(100)
	if len(p.ticked) != 100 {
		t.Fatalf("ticked %d cycles, want 100 (opaque ticker must pin stepping)", len(p.ticked))
	}
	if k.SkippedCycles() != 0 {
		t.Fatalf("skipped = %d, want 0", k.SkippedCycles())
	}
}

func TestBusyTickerNeverSkips(t *testing.T) {
	k := New()
	p := &probe{}
	p.next = func(now int64) int64 { return now + 1 }
	k.Register(p)
	k.Run(50)
	if len(p.ticked) != 50 || k.SkippedCycles() != 0 {
		t.Fatalf("ticked %d (skipped %d), want 50 ticked, 0 skipped", len(p.ticked), k.SkippedCycles())
	}
}

func TestRunUntilHonorsStop(t *testing.T) {
	k := New()
	k.Register(TickerFunc(func(c int64) {
		if c == 5 {
			k.Stop()
		}
	}))
	if k.RunUntil(func() bool { return false }, 100) {
		t.Fatal("predicate reported true")
	}
	if k.Now() != 5 {
		t.Fatalf("stopped at %d, want 5", k.Now())
	}
}

func TestRunUntilExactOnStatePredicate(t *testing.T) {
	k := New()
	p := &probe{}
	p.next = func(now int64) int64 {
		if now < 40 {
			return 40
		}
		return Dormant
	}
	k.Register(p)
	ok := k.RunUntil(func() bool { return len(p.ticked) > 0 }, 1000)
	if !ok || k.Now() != 40 {
		t.Fatalf("RunUntil = %v at cycle %d, want true at 40 (state predicates see every transition)", ok, k.Now())
	}
}

// echoPair is a two-component rig exercising timers, wakes and
// self-generated work: each side, when it holds a token, burns a few
// busy cycles and then mails the token to its peer over a kernel timer
// — a miniature ping-pong with idle RTT gaps.
type echoPair struct {
	k        *Kernel
	peer     *echoPair
	delay    int64
	busyTil  int64
	hasToken bool
	log      *[]int64
	id       int64
}

func (e *echoPair) Tick(cycle int64) {
	if e.hasToken && cycle >= e.busyTil {
		e.hasToken = false
		*e.log = append(*e.log, e.id*1_000_000_000+cycle)
		p := e.peer
		e.k.At(cycle+e.delay, func() {
			p.hasToken = true
			p.busyTil = cycle + e.delay + 3 // three busy cycles on arrival
			e.k.Wake(p)
		})
	}
}

func (e *echoPair) NextWork(now int64) int64 {
	if !e.hasToken {
		return Dormant
	}
	if e.busyTil > now+1 {
		return e.busyTil
	}
	return now + 1
}

func runEchoRig(k *Kernel) []int64 {
	var log []int64
	a := &echoPair{k: k, delay: 97, log: &log, id: 1}
	b := &echoPair{k: k, delay: 211, log: &log, id: 2}
	a.peer, b.peer = b, a
	a.hasToken = true
	k.Register(a)
	k.Register(b)
	k.Run(50_000)
	return log
}

func TestShadowMatchesSkipping(t *testing.T) {
	fast := runEchoRig(New())
	slow := runEchoRig(NewShadow())
	if len(fast) != len(slow) {
		t.Fatalf("event counts differ: skip=%d shadow=%d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("event %d differs: skip=%d shadow=%d", i, fast[i], slow[i])
		}
	}
	if len(fast) == 0 {
		t.Fatal("rig produced no events")
	}
}

func TestSetSkippingToggle(t *testing.T) {
	k := New()
	if !k.Skipping() {
		t.Fatal("skipping should default on")
	}
	k.SetSkipping(false)
	p := &probe{next: dormant}
	k.Register(p)
	k.Run(20)
	if k.SkippedCycles() != 0 || len(p.ticked) != 20 {
		t.Fatalf("disabled skipping still skipped (%d ticks, %d skipped)", len(p.ticked), k.SkippedCycles())
	}
	k.SetSkipping(true)
	k.Run(20)
	if k.SkippedCycles() == 0 {
		t.Fatal("re-enabled skipping did not skip")
	}
	if k.Now() != 40 {
		t.Fatalf("ended at %d, want 40", k.Now())
	}
}
