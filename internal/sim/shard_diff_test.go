package sim_test

// The differential determinism battery: every experiment shape the repo
// measures is run twice — once on the serial Kernel, once on a
// ShardedKernel at several shard counts — and the numbers must agree to
// the last bit. Together with conformance.TestShardMatrix (the chaos
// leg) this is the evidence for the central claim in DESIGN.md: the
// sharded kernel is an execution strategy, not a different simulator.

import (
	"fmt"
	"math"
	"testing"

	"f4t/internal/apps"
	"f4t/internal/cpu"
	"f4t/internal/exp"
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// shardCounts picks the sharded fabrics to diff against the serial
// reference. 1 exercises the degenerate single-shard fabric path; 8
// leaves most shards empty (both islands land on shards 0 and 1).
func shardCounts(t *testing.T) []int {
	if testing.Short() {
		return []int{2}
	}
	return []int{1, 2, 4, 8}
}

// TestShardDiffEcho diffs the Figure 13 echo benchmark point (the
// worst-case TCB locality pattern) across fabrics for every stack kind.
func TestShardDiffEcho(t *testing.T) {
	stacks := []string{"linux", "f4t-hbm", "f4t-ddr"}
	if testing.Short() {
		stacks = stacks[:2]
	}
	const flows = 64
	for _, stack := range stacks {
		refMrps, refFrac := exp.EchoPointOn(sim.New(), stack, flows, nil)
		if refFrac == 0 {
			t.Fatalf("%s: no flows established on the serial reference", stack)
		}
		for _, n := range shardCounts(t) {
			mrps, frac := exp.EchoPointOn(sim.NewSharded(n), stack, flows, nil)
			if math.Float64bits(mrps) != math.Float64bits(refMrps) ||
				math.Float64bits(frac) != math.Float64bits(refFrac) {
				t.Errorf("%s/shards=%d: (%v, %v), serial (%v, %v)",
					stack, n, mrps, frac, refMrps, refFrac)
			}
		}
	}
}

// TestShardDiffTransfer diffs the Figure 8/9 transfer points: a
// saturated bulk f4t run and a linux round-robin run.
func TestShardDiffTransfer(t *testing.T) {
	cases := []struct {
		stack      string
		roundRobin bool
		reqSize    int
		cores      int
	}{
		{"f4t", false, 65536, 2},
		{"linux", true, 4096, 2},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	for _, c := range cases {
		name := fmt.Sprintf("%s/rr=%v", c.stack, c.roundRobin)
		ref := exp.TransferPointOn(sim.New(), c.stack, c.roundRobin, c.reqSize, c.cores, nil)
		if ref.GoodputGbps == 0 {
			t.Fatalf("%s: serial reference moved no data", name)
		}
		for _, n := range shardCounts(t) {
			got := exp.TransferPointOn(sim.NewSharded(n), c.stack, c.roundRobin, c.reqSize, c.cores, nil)
			if math.Float64bits(got.GoodputGbps) != math.Float64bits(ref.GoodputGbps) ||
				math.Float64bits(got.Mrps) != math.Float64bits(ref.Mrps) {
				t.Errorf("%s/shards=%d: %+v, serial %+v", name, n, got, ref)
			}
		}
	}
}

// instrumentedEcho runs a small instrumented echo rig on the given
// fabric with one registry and sampler per island (a shared registry
// would race across shards) and returns the merged, deterministic
// series set.
func instrumentedEcho(f sim.Fabric) []*telemetry.Series {
	p := exp.NewF4TPairOn(f, 2, 2, cpu.DefaultCosts(), nil)
	regA, regB := telemetry.NewRegistry(), telemetry.NewRegistry()
	p.EngA.Instrument(regA, "eng_a")
	p.MachA.Instrument(regA, "mach_a")
	p.EngB.Instrument(regB, "eng_b")
	p.MachB.Instrument(regB, "mach_b")
	sA := telemetry.StartSampler(p.KA, regA, 10_000, 0)
	sB := telemetry.StartSampler(p.KB, regB, 10_000, 0)

	const port = 9001
	srv := apps.NewEchoServer(p.MachB.Threads(), port, 128)
	f.RegisterOn(exp.IslandB, srv)
	f.Run(2_000)
	cl := apps.NewEchoClient(f.IslandKernel(exp.IslandA), p.MachA.Threads(), 0, port, 128, 8)
	f.RegisterOn(exp.IslandA, cl)
	f.Run(600_000)
	return telemetry.MergeSamplers(sA, sB)
}

// TestShardDiffTelemetry holds the merged per-island telemetry dump of
// a sharded rig byte-identical to the serial rig's: same series names
// in the same order, same timestamps, same sampled values.
func TestShardDiffTelemetry(t *testing.T) {
	ref := instrumentedEcho(sim.New())
	if len(ref) == 0 {
		t.Fatal("serial reference produced no series")
	}
	for _, n := range shardCounts(t) {
		got := instrumentedEcho(sim.NewSharded(n))
		if len(got) != len(ref) {
			t.Fatalf("shards=%d: %d series, serial %d", n, len(got), len(ref))
		}
		for i, rs := range ref {
			gs := got[i]
			if gs.Name != rs.Name || len(gs.AtNS) != len(rs.AtNS) {
				t.Fatalf("shards=%d: series %d = %s (%d pts), serial %s (%d pts)",
					n, i, gs.Name, len(gs.AtNS), rs.Name, len(rs.AtNS))
			}
			for j := range rs.AtNS {
				if gs.AtNS[j] != rs.AtNS[j] || gs.Val[j] != rs.Val[j] {
					t.Fatalf("shards=%d: %s point %d = (%d, %d), serial (%d, %d)",
						n, rs.Name, j, gs.AtNS[j], gs.Val[j], rs.AtNS[j], rs.Val[j])
				}
			}
		}
	}
}

// dormantSleeper is a ticker with no work, so cycle skipping is free to
// fast-forward across the whole run.
type dormantSleeper struct{}

func (dormantSleeper) Tick(int64)           {}
func (dormantSleeper) NextWork(int64) int64 { return sim.Dormant }

// observationCycles records the cycle at which RunUntilCoarse evaluates
// its predicate, for the full budget.
func observationCycles(r sim.Runner) []int64 {
	var obs []int64
	exp.RunUntilCoarse(r, func() bool {
		obs = append(obs, r.Now())
		return false
	}, 500, 10_000)
	return obs
}

// TestRunUntilObservationGrid pins the fix for predicate-observation
// divergence under cycle skipping: RunUntilCoarse evaluates its
// predicate on a fixed cycle grid (start, start+step, ...), so the
// observation cycles are identical whether the kernel skips, doesn't,
// or runs sharded. A predicate that reads mutable rig state therefore
// sees the same snapshots on every execution mode.
func TestRunUntilObservationGrid(t *testing.T) {
	runs := map[string][]int64{}

	k := sim.New()
	k.Register(dormantSleeper{})
	runs["serial+skip"] = observationCycles(k)

	k = sim.New()
	k.Register(dormantSleeper{})
	k.SetSkipping(false)
	runs["serial+noskip"] = observationCycles(k)

	sk := sim.NewSharded(2)
	sk.RegisterOn(0, dormantSleeper{})
	sk.RegisterOn(1, dormantSleeper{})
	runs["sharded"] = observationCycles(sk)

	var want []int64
	for c := int64(0); c <= 10_000; c += 500 {
		want = append(want, c)
	}
	for mode, got := range runs {
		if len(got) != len(want) {
			t.Fatalf("%s: %d observations %v, want %d", mode, len(got), got, len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: observation %d at cycle %d, want %d", mode, i, got[i], want[i])
			}
		}
	}
}
