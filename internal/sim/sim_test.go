package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelTickOrder(t *testing.T) {
	k := New()
	var log []int
	k.Register(TickerFunc(func(int64) { log = append(log, 1) }))
	k.Register(TickerFunc(func(int64) { log = append(log, 2) }))
	k.Run(3)
	want := []int{1, 2, 1, 2, 1, 2}
	if len(log) != len(want) {
		t.Fatalf("log length = %d, want %d", len(log), len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("tick order broke at %d: %v", i, log)
		}
	}
}

func TestKernelTimersFireInOrder(t *testing.T) {
	k := New()
	var fired []int64
	k.At(5, func() { fired = append(fired, 5) })
	k.At(3, func() { fired = append(fired, 3) })
	k.At(3, func() { fired = append(fired, 30) }) // same cycle: insertion order
	k.Run(10)
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 30 || fired[2] != 5 {
		t.Fatalf("timer order = %v", fired)
	}
}

func TestKernelAtPastRunsNext(t *testing.T) {
	k := New()
	k.Run(10)
	ran := false
	k.At(2, func() { ran = true }) // in the past
	k.Step()
	if !ran {
		t.Fatal("past-scheduled timer did not run on the next step")
	}
}

func TestKernelStop(t *testing.T) {
	k := New()
	k.Register(TickerFunc(func(c int64) {
		if c == 5 {
			k.Stop()
		}
	}))
	k.Run(100)
	if k.Now() != 5 {
		t.Fatalf("stopped at %d, want 5", k.Now())
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	if !k.RunUntil(func() bool { return k.Now() >= 7 }, 100) {
		t.Fatal("predicate never held")
	}
	if k.Now() != 7 {
		t.Fatalf("stopped at %d, want 7", k.Now())
	}
	if k.RunUntil(func() bool { return false }, 10) {
		t.Fatal("impossible predicate reported true")
	}
}

func TestNSToCycles(t *testing.T) {
	cases := []struct{ ns, want int64 }{
		{0, 0}, {1, 1}, {4, 1}, {5, 2}, {8, 2}, {1000, 250},
	}
	for _, c := range cases {
		if got := NSToCycles(c.ns); got != c.want {
			t.Errorf("NSToCycles(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestByteRateSerializes(t *testing.T) {
	b := GbpsRate(100) // 50 B/cycle
	done1 := b.Reserve(0, 500)
	if done1 != 10 {
		t.Fatalf("500 B at 50 B/cycle finished at %d, want 10", done1)
	}
	done2 := b.Reserve(0, 500) // queues behind the first
	if done2 != 20 {
		t.Fatalf("second transfer finished at %d, want 20", done2)
	}
	done3 := b.Reserve(100, 50) // idle gap: starts at 100
	if done3 != 101 {
		t.Fatalf("third transfer finished at %d, want 101", done3)
	}
}

func TestByteRateRational(t *testing.T) {
	b := NewByteRate(1, 3) // one byte per three cycles
	if got := b.CyclesFor(10); got != 30 {
		t.Fatalf("CyclesFor(10) = %d, want 30", got)
	}
}

func TestGBpsRate(t *testing.T) {
	b := GBpsRate(38) // 152 B/cycle
	if got := b.CyclesFor(152); got != 1 {
		t.Fatalf("152 B should take 1 cycle, got %d", got)
	}
	if got := b.CyclesFor(153); got != 2 {
		t.Fatalf("153 B should take 2 cycles, got %d", got)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](3)
	for i := 1; i <= 3; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if q.Push(4) {
		t.Fatal("push beyond capacity accepted")
	}
	for i := 1; i <= 3; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestQueueCompaction(t *testing.T) {
	q := NewQueue[int](0)
	// Push/pop far beyond the compaction threshold; order must hold.
	n := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 50; i++ {
			q.Push(n + i)
		}
		for i := 0; i < 50; i++ {
			v, ok := q.Pop()
			if !ok || v != n+i {
				t.Fatalf("round %d: pop = %d,%v want %d", round, v, ok, n+i)
			}
		}
		n += 50
	}
}

func TestQueueScanMutate(t *testing.T) {
	q := NewQueue[int](0)
	q.Push(1)
	q.Push(2)
	q.Push(3)
	q.Scan(func(v *int) bool {
		if *v == 2 {
			*v = 20
			return false
		}
		return true
	})
	q.Pop()
	v, _ := q.Pop()
	if v != 20 {
		t.Fatalf("scan mutation lost: got %d", v)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agree %d/100 times", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		f := r.Float64()
		return v >= 0 && v < n && f >= 0 && f < 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestCounterRates(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Snapshot(0)
	c.Add(250) // 250 events over the window
	// 250 events in 250M cycles = 1 second → 250 events/s.
	if got := c.RatePerSecond(FrequencyHz); got != 250 {
		t.Fatalf("rate = %v, want 250", got)
	}
	if c.Since() != 250 {
		t.Fatalf("since = %d", c.Since())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i))
	}
	if m := h.Median(); m != 50 {
		t.Errorf("median = %d, want 50", m)
	}
	if p := h.P99(); p != 99 {
		t.Errorf("p99 = %d, want 99", p)
	}
	if mean := h.Mean(); mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", mean)
	}
	var empty Histogram
	if empty.Median() != 0 || empty.P99() != 0 {
		t.Error("empty histogram quantiles should be 0")
	}
}
