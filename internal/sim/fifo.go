package sim

// Queue is a bounded FIFO used to model hardware queues (command queues,
// coalesce FIFOs, pending queues). Capacity 0 means unbounded.
type Queue[T any] struct {
	buf  []T
	head int
	cap  int
}

// NewQueue returns a FIFO with the given capacity (0 = unbounded).
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{cap: capacity}
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.buf) - q.head }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

// Full reports whether the queue is at capacity.
func (q *Queue[T]) Full() bool { return q.cap > 0 && q.Len() >= q.cap }

// Empty reports whether the queue holds no elements.
func (q *Queue[T]) Empty() bool { return q.Len() == 0 }

// Push appends v and reports whether it was accepted (false when full).
func (q *Queue[T]) Push(v T) bool {
	if q.Full() {
		return false
	}
	q.buf = append(q.buf, v)
	return true
}

// Pop removes and returns the oldest element. ok is false when empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.Empty() {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // allow GC of the element
	q.head++
	// Compact when the dead prefix dominates, amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.Empty() {
		return v, false
	}
	return q.buf[q.head], true
}

// Scan calls fn for each queued element in FIFO order until fn returns
// false. The callback may mutate elements through the pointer; this is how
// the coalesce FIFOs merge an incoming event into a queued one.
func (q *Queue[T]) Scan(fn func(*T) bool) {
	for i := q.head; i < len(q.buf); i++ {
		if !fn(&q.buf[i]) {
			return
		}
	}
}

// AtPtr returns a pointer to the i-th queued element in FIFO order
// (0 = oldest). Index-based iteration via Len/AtPtr lets hot paths scan
// without the closure Scan requires, which would force its captured
// locals to escape. The pointer is invalidated by the next Push or Pop.
func (q *Queue[T]) AtPtr(i int) *T { return &q.buf[q.head+i] }

// Reset discards all elements.
func (q *Queue[T]) Reset() {
	q.buf = q.buf[:0]
	q.head = 0
}
