// Package sim provides the deterministic discrete-time simulation kernel
// used by every F4T model: a 250 MHz tick clock, component registry,
// cycle-resolution timers, seeded randomness and rate limiters.
//
// All simulated hardware advances in units of one engine clock cycle
// (4 ns at 250 MHz). Components implement Ticker and are stepped once per
// cycle in registration order, which keeps runs bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// CycleNS is the duration of one engine clock cycle in nanoseconds.
// FtEngine operates at 250 MHz (paper §4.1).
const CycleNS = 4

// FrequencyHz is the engine clock frequency.
const FrequencyHz = 250_000_000

// Ticker is a hardware component stepped once per simulated cycle.
type Ticker interface {
	// Tick advances the component by one cycle. The current cycle number
	// is passed for convenience; it increases by exactly one per call.
	Tick(cycle int64)
}

// TickerFunc adapts a function to the Ticker interface.
type TickerFunc func(cycle int64)

// Tick implements Ticker.
func (f TickerFunc) Tick(cycle int64) { f(cycle) }

// timerEvent is a scheduled callback ordered by cycle then sequence.
type timerEvent struct {
	cycle int64
	seq   int64 // insertion order breaks ties deterministically
	fn    func()
}

type timerHeap []timerEvent

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(timerEvent)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Kernel is the simulation driver. The zero value is not usable; call New.
type Kernel struct {
	cycle   int64
	tickers []Ticker
	timers  timerHeap
	seq     int64
	stopped bool
}

// New returns an empty kernel positioned at cycle 0.
func New() *Kernel {
	return &Kernel{}
}

// Now returns the current cycle number.
func (k *Kernel) Now() int64 { return k.cycle }

// NowNS returns the current simulated time in nanoseconds.
func (k *Kernel) NowNS() int64 { return k.cycle * CycleNS }

// Register adds a component to the per-cycle tick list. Components tick
// in registration order every cycle.
func (k *Kernel) Register(t Ticker) {
	k.tickers = append(k.tickers, t)
}

// At schedules fn to run at the start of the given absolute cycle,
// before components tick. Scheduling in the past (or present) runs the
// callback on the next Step.
func (k *Kernel) At(cycle int64, fn func()) {
	if cycle <= k.cycle {
		cycle = k.cycle + 1
	}
	k.seq++
	heap.Push(&k.timers, timerEvent{cycle: cycle, seq: k.seq, fn: fn})
}

// After schedules fn to run delta cycles from now (minimum 1).
func (k *Kernel) After(delta int64, fn func()) {
	if delta < 1 {
		delta = 1
	}
	k.At(k.cycle+delta, fn)
}

// Stop requests that Run return at the end of the current cycle.
func (k *Kernel) Stop() { k.stopped = true }

// Step advances the simulation by exactly one cycle: due timers fire
// first, then every registered component ticks once.
func (k *Kernel) Step() {
	k.cycle++
	for len(k.timers) > 0 && k.timers[0].cycle <= k.cycle {
		ev := heap.Pop(&k.timers).(timerEvent)
		ev.fn()
	}
	for _, t := range k.tickers {
		t.Tick(k.cycle)
	}
}

// Run advances the simulation by n cycles, or until Stop is called.
func (k *Kernel) Run(n int64) {
	k.stopped = false
	for i := int64(0); i < n && !k.stopped; i++ {
		k.Step()
	}
}

// RunUntil advances the simulation until the predicate returns true or
// the cycle budget is exhausted. It reports whether the predicate fired.
func (k *Kernel) RunUntil(pred func() bool, budget int64) bool {
	for i := int64(0); i < budget; i++ {
		if pred() {
			return true
		}
		k.Step()
	}
	return pred()
}

// NSToCycles converts a nanosecond duration to cycles, rounding up.
func NSToCycles(ns int64) int64 {
	return (ns + CycleNS - 1) / CycleNS
}

// String describes the kernel state, mostly for test failure messages.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{cycle=%d tickers=%d timers=%d}", k.cycle, len(k.tickers), len(k.timers))
}
