package sim

import (
	"fmt"
	"math"
	"reflect"
)

// CycleNS is the duration of one engine clock cycle in nanoseconds.
// FtEngine operates at 250 MHz (paper §4.1).
const CycleNS = 4

// FrequencyHz is the engine clock frequency.
const FrequencyHz = 250_000_000

// Ticker is a hardware component stepped once per simulated cycle.
type Ticker interface {
	// Tick advances the component by one cycle. The current cycle number
	// is passed for convenience; it increases by exactly one per call.
	Tick(cycle int64)
}

// TickerFunc adapts a function to the Ticker interface.
type TickerFunc func(cycle int64)

// Tick implements Ticker.
func (f TickerFunc) Tick(cycle int64) { f(cycle) }

// Dormant is the NextWork return value for a component with no
// self-generated future work: only an external stimulus (kernel timer,
// Wake, or another component's same-cycle action) can make it act.
const Dormant = int64(math.MaxInt64)

// Sleeper is a Ticker that can report idleness. NextWork returns the
// earliest cycle at which the component could possibly act: a value
// <= now means "busy, step me next cycle"; a future cycle promises that
// every Tick before it would be a pure no-op (no state change, no
// counter movement); Dormant promises that indefinitely. The promise
// only covers the component's own state — work injected from outside
// must arrive via a kernel timer or a Wake call.
type Sleeper interface {
	Ticker
	NextWork(now int64) int64
}

// Runner is the surface shared by the serial Kernel and the
// ShardedKernel: everything a workload driver needs to advance
// simulated time. Rig harnesses written against Runner run unchanged on
// either execution mode.
type Runner interface {
	Now() int64
	NowNS() int64
	Run(n int64)
	RunUntil(pred func() bool, budget int64) bool
	Stop()
}

// PostAt schedules fn at an absolute cycle. It is the type of Kernel.At
// and of the cross-shard posting funcs a Fabric hands out.
type PostAt func(cycle int64, fn func())

// Poster schedules callbacks at absolute cycles. At takes a closure;
// AtCall takes a plain function plus its argument, which lets per-packet
// hot paths schedule a delivery without allocating a closure (storing a
// pointer in an `any` does not allocate). Both forms share the same
// deterministic ordering key. The Kernel and the cross-shard Mailbox
// both implement Poster; Fabric.CrossPost hands one out.
type Poster interface {
	At(cycle int64, fn func())
	AtCall(cycle int64, call func(arg any), arg any)
}

// Fabric abstracts where a rig's components live: on a single serial
// Kernel (every island shares it) or spread across the shards of a
// ShardedKernel. Rig builders target Fabric so one construction path
// yields both execution modes with identical registration order — the
// property the bit-for-bit differential battery depends on.
//
// An island is a group of components that share state directly (an
// engine plus its host machine and apps). Cross-island interactions
// must go through the Poster returned by CrossPost, which carries the
// link's minimum latency so the sharded scheduler can derive its
// conservative lookahead.
type Fabric interface {
	Runner
	// IslandKernel returns the kernel that drives the island's clock:
	// the Kernel itself on a serial fabric, the owning shard otherwise.
	IslandKernel(island int) *Kernel
	// RegisterOn registers t on the island's kernel. Components must be
	// registered in the same global order on every fabric; the slot
	// numbers this assigns are the deterministic tie-break for timers.
	RegisterOn(island int, t Ticker)
	// CrossPost returns the scheduler for deliveries from src to dst.
	// minLatency is the smallest possible cycle delta between posting
	// and the posted cycle; it lower-bounds the fabric's lookahead.
	CrossPost(src, dst int, minLatency int64) Poster
}

// timerEvent is a scheduled callback ordered by a structured key that
// is identical whether the rig runs on one kernel or across shards:
//
//	(cycle, icycle, slot, sub)
//
// cycle is the fire cycle. The remaining fields identify the insertion
// deterministically: icycle is the cycle the event was scheduled on,
// slot is the global registration slot of the component whose code
// scheduled it (-1 for code running outside any component, e.g. test
// setup), and sub is that context's monotonically increasing insertion
// counter. Because no field depends on goroutine interleaving — only on
// the inserting component's own deterministic execution — merging
// cross-shard events into a shard's heap reproduces exactly the firing
// order a single serial kernel would have used.
type timerEvent struct {
	cycle  int64 // fire cycle
	icycle int64 // insertion cycle
	slot   int32 // inserting context's global slot (-1 = external)
	sub    int64 // per-context insertion counter
	fn     func()        // closure form (At)
	call   func(arg any) // call form (AtCall); fires call(arg) when non-nil
	arg    any
}

func keyLess(a, b *timerEvent) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	if a.icycle != b.icycle {
		return a.icycle < b.icycle
	}
	if a.slot != b.slot {
		return a.slot < b.slot
	}
	return a.sub < b.sub
}

// timerHeap is a hand-rolled binary min-heap ordered by keyLess. The
// kernel schedules one timer per DMA completion, TX serialization, and
// link delivery, so the interface boxing container/heap would impose
// (one allocation per Push and per Pop) is a measurable cost on
// saturated rigs; sifting over the concrete slice keeps the hot path
// allocation-free.
type timerHeap []timerEvent

func (h *timerHeap) push(ev timerEvent) {
	s := append(*h, ev)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !keyLess(&s[i], &s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *timerHeap) pop() timerEvent {
	s := *h
	n := len(s) - 1
	ev := s[0]
	s[0] = s[n]
	s[n] = timerEvent{} // release fn/arg references
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && keyLess(&s[l], &s[min]) {
			min = l
		}
		if r < n && keyLess(&s[r], &s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return ev
}

// tickerEntry is one registered component plus its sleep bookkeeping.
type tickerEntry struct {
	t      Ticker
	s      Sleeper // nil for opaque (non-Sleeper) tickers
	wakeAt int64   // earliest explicit Wake hint; Dormant = none
	slot   int32   // global registration slot (ties across shards)
	sub    int64   // timer-insertion counter for this component's code
}

// Kernel is the simulation driver. The zero value is not usable; call New.
type Kernel struct {
	cycle     int64
	tickers   []tickerEntry
	index     map[Ticker]int // identity → slot index, comparable tickers only
	slotIndex map[int32]int  // global slot → tickers index
	opaque    int            // registered tickers without NextWork
	timers    timerHeap
	nextSlot  int32
	extSub    int64 // insertion counter for code outside any component
	stopped   bool

	// Current insertion context: which component's code is running.
	// curSub is nil while executing a timer posted by a component on
	// another shard — such callbacks must not schedule local timers
	// (they would need that foreign component's counter, which lives on
	// its own shard); they post through their Mailbox instead.
	curSlot int32
	curSub  *int64

	noskip  bool  // shadow mode: historical always-step loop
	anyWake int64 // wake floor for tickers the index cannot address
	skipped int64 // total cycles skipped (stats)
	skips   int64 // skip jumps taken (stats)
}

// New returns an empty kernel positioned at cycle 0 with quiescence
// skipping enabled.
func New() *Kernel {
	k := &Kernel{anyWake: Dormant, curSlot: -1}
	k.curSub = &k.extSub
	return k
}

// NewShadow returns a kernel running the historical always-step loop —
// the reference for differential testing against the skipping kernel.
func NewShadow() *Kernel {
	k := New()
	k.noskip = true
	return k
}

// SetSkipping enables or disables quiescence skipping. Results are
// identical either way; disabling trades wall-clock speed for the
// simpler always-step loop (used by the differential harness).
func (k *Kernel) SetSkipping(on bool) { k.noskip = !on }

// Skipping reports whether quiescence skipping is enabled.
func (k *Kernel) Skipping() bool { return !k.noskip }

// SkippedCycles returns the total cycles fast-forwarded so far.
func (k *Kernel) SkippedCycles() int64 { return k.skipped }

// Skips returns how many fast-forward jumps have been taken.
func (k *Kernel) Skips() int64 { return k.skips }

// Now returns the current cycle number.
func (k *Kernel) Now() int64 { return k.cycle }

// NowNS returns the current simulated time in nanoseconds.
func (k *Kernel) NowNS() int64 { return k.cycle * CycleNS }

// Register adds a component to the per-cycle tick list. Components tick
// in registration order every cycle. A component that implements
// Sleeper participates in quiescence skipping; any other ticker pins
// the kernel to per-cycle stepping.
func (k *Kernel) Register(t Ticker) {
	k.RegisterSlot(t, k.nextSlot)
}

// RegisterSlot is Register with an explicit global slot number — the
// deterministic identity used to order this component's timers against
// everyone else's. The ShardedKernel assigns slots from a fabric-wide
// counter so a component keeps the same slot whether its rig runs
// serially or sharded. Slots must be registered in increasing order on
// any one kernel (tick order within a cycle is slot order).
func (k *Kernel) RegisterSlot(t Ticker, slot int32) {
	if n := len(k.tickers); n > 0 && k.tickers[n-1].slot >= slot {
		panic(fmt.Sprintf("sim: slot %d registered after slot %d; slots must be increasing", slot, k.tickers[n-1].slot))
	}
	e := tickerEntry{t: t, wakeAt: Dormant, slot: slot}
	if s, ok := t.(Sleeper); ok {
		e.s = s
	} else {
		k.opaque++
	}
	k.tickers = append(k.tickers, e)
	if k.slotIndex == nil {
		k.slotIndex = make(map[int32]int)
	}
	k.slotIndex[slot] = len(k.tickers) - 1
	if slot >= k.nextSlot {
		k.nextSlot = slot + 1
	}
	// Identity-addressable tickers get a Wake slot. Func-typed tickers
	// (TickerFunc) are not comparable and would panic as map keys; Wake
	// falls back to the global floor for them.
	if t != nil && reflect.TypeOf(t).Comparable() {
		if k.index == nil {
			k.index = make(map[Ticker]int)
		}
		k.index[t] = len(k.tickers) - 1
	}
}

// Wake hints that the component has work on the next cycle — call it at
// work-injection points (doorbell posts, packet arrival) whose target
// may currently be reporting Dormant.
func (k *Kernel) Wake(t Ticker) { k.WakeAt(t, k.cycle+1) }

// WakeAt hints that the component has work at the given cycle. Hints
// only bound skipping (earlier of hint and NextWork wins); they never
// delay a busy component. Unregistered or non-comparable tickers lower
// a global wake floor instead, which is safe but skips less.
func (k *Kernel) WakeAt(t Ticker, cycle int64) {
	if cycle <= k.cycle {
		cycle = k.cycle + 1
	}
	if t != nil && k.index != nil && reflect.TypeOf(t).Comparable() {
		if idx, ok := k.index[t]; ok {
			if cycle < k.tickers[idx].wakeAt {
				k.tickers[idx].wakeAt = cycle
			}
			return
		}
	}
	if cycle < k.anyWake {
		k.anyWake = cycle
	}
}

// At schedules fn to run at the start of the given absolute cycle,
// before components tick. Scheduling in the past (or present) runs the
// callback on the next Step. Same-cycle events fire in a deterministic
// order: by insertion cycle, then by the inserting component's slot,
// then by insertion order within that component.
func (k *Kernel) At(cycle int64, fn func()) {
	k.timers.push(k.event(cycle, fn, nil, nil))
}

// AtCall is At for the closure-free form: it schedules call(arg) at the
// given cycle. Hot paths that would otherwise capture their argument in
// a fresh closure per event (one per packet delivery) pre-build one
// func(any) and pass the payload through arg instead.
func (k *Kernel) AtCall(cycle int64, call func(arg any), arg any) {
	k.timers.push(k.event(cycle, nil, call, arg))
}

// event stamps a timer with the current insertion context's key.
func (k *Kernel) event(cycle int64, fn func(), call func(arg any), arg any) timerEvent {
	if cycle <= k.cycle {
		cycle = k.cycle + 1
	}
	if k.curSub == nil {
		panic("sim: scheduling a local timer from a cross-shard delivery; post through the Mailbox instead")
	}
	*k.curSub++
	return timerEvent{cycle: cycle, icycle: k.cycle, slot: k.curSlot, sub: *k.curSub, fn: fn, call: call, arg: arg}
}

// After schedules fn to run delta cycles from now (minimum 1).
func (k *Kernel) After(delta int64, fn func()) {
	if delta < 1 {
		delta = 1
	}
	k.At(k.cycle+delta, fn)
}

// inject merges an externally built event (a cross-shard delivery) into
// the timer heap. Only the ShardedKernel calls this, at barriers.
func (k *Kernel) inject(ev timerEvent) {
	k.timers.push(ev)
}

// Stop requests that Run return at the end of the current cycle.
func (k *Kernel) Stop() { k.stopped = true }

// Step advances the simulation by exactly one cycle: due timers fire
// first, then every registered component ticks once. Consumed wake
// hints are cleared.
func (k *Kernel) Step() {
	k.cycle++
	for len(k.timers) > 0 && k.timers[0].cycle <= k.cycle {
		ev := k.timers.pop()
		// Timer callbacks inherit the scheduling component's identity,
		// so chains like "engine tick → At(txDone) → pipe.Send → At(
		// delivery)" stay ordered by the originating slot. A foreign
		// slot (cross-shard delivery) has no local counter; its
		// callback may not schedule local timers.
		if idx, ok := k.slotIndex[ev.slot]; ok {
			k.curSlot, k.curSub = ev.slot, &k.tickers[idx].sub
		} else if ev.slot < 0 {
			k.curSlot, k.curSub = -1, &k.extSub
		} else {
			k.curSlot, k.curSub = ev.slot, nil
		}
		if ev.call != nil {
			ev.call(ev.arg)
		} else {
			ev.fn()
		}
	}
	for i := range k.tickers {
		e := &k.tickers[i]
		if e.wakeAt <= k.cycle {
			e.wakeAt = Dormant
		}
		k.curSlot, k.curSub = e.slot, &e.sub
		e.t.Tick(k.cycle)
	}
	k.curSlot, k.curSub = -1, &k.extSub
	if k.anyWake <= k.cycle {
		k.anyWake = Dormant
	}
}

// nextEventCycle returns the earliest cycle > now at which anything can
// happen: a ticker's self-reported work, an explicit wake hint, or a
// kernel timer. Dormant means nothing ever will.
func (k *Kernel) nextEventCycle() int64 {
	now := k.cycle
	next := Dormant
	if len(k.timers) > 0 && k.timers[0].cycle < next {
		next = k.timers[0].cycle
	}
	if k.anyWake < next {
		next = k.anyWake
	}
	for i := range k.tickers {
		e := &k.tickers[i]
		if e.wakeAt < next {
			next = e.wakeAt
		}
		if w := e.s.NextWork(now); w < next {
			next = w
		}
		if next <= now+1 {
			return now + 1 // someone is busy: no skip possible
		}
	}
	return next
}

// advanceTo fast-forwards the clock so the next Step lands on the
// earliest cycle with potential work, never beyond limit. With any
// opaque ticker registered it is a no-op.
func (k *Kernel) advanceTo(limit int64) {
	if k.noskip || k.opaque > 0 || len(k.tickers) == 0 {
		return
	}
	next := k.nextEventCycle()
	if next > limit {
		next = limit
	}
	if d := next - 1 - k.cycle; d > 0 {
		k.cycle += d
		k.skipped += d
		k.skips++
	}
}

// Run advances the simulation by n cycles, or until Stop is called.
// Provably idle spans are fast-forwarded; the end cycle is exact.
func (k *Kernel) Run(n int64) {
	k.stopped = false
	end := k.cycle + n
	for k.cycle < end && !k.stopped {
		k.advanceTo(end)
		k.Step()
	}
}

// observable returns the next cycle <= limit at which RunUntil must
// evaluate its predicate: the next cycle where simulation activity can
// occur, or the limit. With opaque tickers registered every cycle is
// observable.
func (k *Kernel) observable(limit int64) int64 {
	if k.opaque > 0 || len(k.tickers) == 0 {
		return k.cycle + 1
	}
	next := k.nextEventCycle()
	if next > limit {
		next = limit
	}
	return next
}

// RunUntil advances the simulation until the predicate returns true or
// the cycle budget is exhausted, honoring Stop like Run does. It
// reports whether the predicate fired.
//
// The predicate is evaluated at exactly the cycles where simulation
// activity can occur (plus the budget boundary) — in both kernel modes.
// The skipping kernel cannot evaluate it inside a skipped span, so the
// shadow kernel deliberately restricts itself to the same observation
// cycles; a differential run therefore calls the predicate at identical
// cycles, which matters when the predicate has side effects or depends
// on Now() rather than simulation state. Since no component state
// changes inside a skipped span, predicates over simulation state still
// observe every transition they could under per-cycle evaluation.
func (k *Kernel) RunUntil(pred func() bool, budget int64) bool {
	k.stopped = false
	end := k.cycle + budget
	for k.cycle < end && !k.stopped {
		if pred() {
			return true
		}
		if k.noskip {
			// Step through the gap cycle by cycle (shadow semantics) but
			// evaluate the predicate only where the skipping kernel can.
			next := k.observable(end)
			for k.cycle < next && !k.stopped {
				k.Step()
			}
			continue
		}
		k.advanceTo(end)
		k.Step()
	}
	return pred()
}

// --- Fabric: a serial kernel is the one-shard fabric ---

// IslandKernel implements Fabric: every island lives on the kernel.
func (k *Kernel) IslandKernel(island int) *Kernel { return k }

// RegisterOn implements Fabric.
func (k *Kernel) RegisterOn(island int, t Ticker) { k.Register(t) }

// CrossPost implements Fabric: on a serial fabric cross-island
// deliveries are ordinary timers.
func (k *Kernel) CrossPost(src, dst int, minLatency int64) Poster { return k }

// NSToCycles converts a nanosecond duration to cycles, rounding up.
func NSToCycles(ns int64) int64 {
	return (ns + CycleNS - 1) / CycleNS
}

// String describes the kernel state, mostly for test failure messages.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{cycle=%d tickers=%d timers=%d skipped=%d}", k.cycle, len(k.tickers), len(k.timers), k.skipped)
}
