package sim

import (
	"container/heap"
	"fmt"
	"math"
	"reflect"
)

// CycleNS is the duration of one engine clock cycle in nanoseconds.
// FtEngine operates at 250 MHz (paper §4.1).
const CycleNS = 4

// FrequencyHz is the engine clock frequency.
const FrequencyHz = 250_000_000

// Ticker is a hardware component stepped once per simulated cycle.
type Ticker interface {
	// Tick advances the component by one cycle. The current cycle number
	// is passed for convenience; it increases by exactly one per call.
	Tick(cycle int64)
}

// TickerFunc adapts a function to the Ticker interface.
type TickerFunc func(cycle int64)

// Tick implements Ticker.
func (f TickerFunc) Tick(cycle int64) { f(cycle) }

// Dormant is the NextWork return value for a component with no
// self-generated future work: only an external stimulus (kernel timer,
// Wake, or another component's same-cycle action) can make it act.
const Dormant = int64(math.MaxInt64)

// Sleeper is a Ticker that can report idleness. NextWork returns the
// earliest cycle at which the component could possibly act: a value
// <= now means "busy, step me next cycle"; a future cycle promises that
// every Tick before it would be a pure no-op (no state change, no
// counter movement); Dormant promises that indefinitely. The promise
// only covers the component's own state — work injected from outside
// must arrive via a kernel timer or a Wake call.
type Sleeper interface {
	Ticker
	NextWork(now int64) int64
}

// timerEvent is a scheduled callback ordered by cycle then sequence.
type timerEvent struct {
	cycle int64
	seq   int64 // insertion order breaks ties deterministically
	fn    func()
}

type timerHeap []timerEvent

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(timerEvent)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// tickerEntry is one registered component plus its sleep bookkeeping.
type tickerEntry struct {
	t      Ticker
	s      Sleeper // nil for opaque (non-Sleeper) tickers
	wakeAt int64   // earliest explicit Wake hint; Dormant = none
}

// Kernel is the simulation driver. The zero value is not usable; call New.
type Kernel struct {
	cycle   int64
	tickers []tickerEntry
	index   map[Ticker]int // identity → slot, comparable tickers only
	opaque  int            // registered tickers without NextWork
	timers  timerHeap
	seq     int64
	stopped bool

	noskip  bool  // shadow mode: historical always-step loop
	anyWake int64 // wake floor for tickers the index cannot address
	skipped int64 // total cycles skipped (stats)
	skips   int64 // skip jumps taken (stats)
}

// New returns an empty kernel positioned at cycle 0 with quiescence
// skipping enabled.
func New() *Kernel {
	return &Kernel{anyWake: Dormant}
}

// NewShadow returns a kernel running the historical always-step loop —
// the reference for differential testing against the skipping kernel.
func NewShadow() *Kernel {
	k := New()
	k.noskip = true
	return k
}

// SetSkipping enables or disables quiescence skipping. Results are
// identical either way; disabling trades wall-clock speed for the
// simpler always-step loop (used by the differential harness).
func (k *Kernel) SetSkipping(on bool) { k.noskip = !on }

// Skipping reports whether quiescence skipping is enabled.
func (k *Kernel) Skipping() bool { return !k.noskip }

// SkippedCycles returns the total cycles fast-forwarded so far.
func (k *Kernel) SkippedCycles() int64 { return k.skipped }

// Skips returns how many fast-forward jumps have been taken.
func (k *Kernel) Skips() int64 { return k.skips }

// Now returns the current cycle number.
func (k *Kernel) Now() int64 { return k.cycle }

// NowNS returns the current simulated time in nanoseconds.
func (k *Kernel) NowNS() int64 { return k.cycle * CycleNS }

// Register adds a component to the per-cycle tick list. Components tick
// in registration order every cycle. A component that implements
// Sleeper participates in quiescence skipping; any other ticker pins
// the kernel to per-cycle stepping.
func (k *Kernel) Register(t Ticker) {
	e := tickerEntry{t: t, wakeAt: Dormant}
	if s, ok := t.(Sleeper); ok {
		e.s = s
	} else {
		k.opaque++
	}
	k.tickers = append(k.tickers, e)
	// Identity-addressable tickers get a Wake slot. Func-typed tickers
	// (TickerFunc) are not comparable and would panic as map keys; Wake
	// falls back to the global floor for them.
	if t != nil && reflect.TypeOf(t).Comparable() {
		if k.index == nil {
			k.index = make(map[Ticker]int)
		}
		k.index[t] = len(k.tickers) - 1
	}
}

// Wake hints that the component has work on the next cycle — call it at
// work-injection points (doorbell posts, packet arrival) whose target
// may currently be reporting Dormant.
func (k *Kernel) Wake(t Ticker) { k.WakeAt(t, k.cycle+1) }

// WakeAt hints that the component has work at the given cycle. Hints
// only bound skipping (earlier of hint and NextWork wins); they never
// delay a busy component. Unregistered or non-comparable tickers lower
// a global wake floor instead, which is safe but skips less.
func (k *Kernel) WakeAt(t Ticker, cycle int64) {
	if cycle <= k.cycle {
		cycle = k.cycle + 1
	}
	if t != nil && k.index != nil && reflect.TypeOf(t).Comparable() {
		if idx, ok := k.index[t]; ok {
			if cycle < k.tickers[idx].wakeAt {
				k.tickers[idx].wakeAt = cycle
			}
			return
		}
	}
	if cycle < k.anyWake {
		k.anyWake = cycle
	}
}

// At schedules fn to run at the start of the given absolute cycle,
// before components tick. Scheduling in the past (or present) runs the
// callback on the next Step.
func (k *Kernel) At(cycle int64, fn func()) {
	if cycle <= k.cycle {
		cycle = k.cycle + 1
	}
	k.seq++
	heap.Push(&k.timers, timerEvent{cycle: cycle, seq: k.seq, fn: fn})
}

// After schedules fn to run delta cycles from now (minimum 1).
func (k *Kernel) After(delta int64, fn func()) {
	if delta < 1 {
		delta = 1
	}
	k.At(k.cycle+delta, fn)
}

// Stop requests that Run return at the end of the current cycle.
func (k *Kernel) Stop() { k.stopped = true }

// Step advances the simulation by exactly one cycle: due timers fire
// first, then every registered component ticks once. Consumed wake
// hints are cleared.
func (k *Kernel) Step() {
	k.cycle++
	for len(k.timers) > 0 && k.timers[0].cycle <= k.cycle {
		ev := heap.Pop(&k.timers).(timerEvent)
		ev.fn()
	}
	for i := range k.tickers {
		e := &k.tickers[i]
		if e.wakeAt <= k.cycle {
			e.wakeAt = Dormant
		}
		e.t.Tick(k.cycle)
	}
	if k.anyWake <= k.cycle {
		k.anyWake = Dormant
	}
}

// nextEventCycle returns the earliest cycle > now at which anything can
// happen: a ticker's self-reported work, an explicit wake hint, or a
// kernel timer. Dormant means nothing ever will.
func (k *Kernel) nextEventCycle() int64 {
	now := k.cycle
	next := Dormant
	if len(k.timers) > 0 && k.timers[0].cycle < next {
		next = k.timers[0].cycle
	}
	if k.anyWake < next {
		next = k.anyWake
	}
	for i := range k.tickers {
		e := &k.tickers[i]
		if e.wakeAt < next {
			next = e.wakeAt
		}
		if w := e.s.NextWork(now); w < next {
			next = w
		}
		if next <= now+1 {
			return now + 1 // someone is busy: no skip possible
		}
	}
	return next
}

// advanceTo fast-forwards the clock so the next Step lands on the
// earliest cycle with potential work, never beyond limit. With any
// opaque ticker registered (or none at all) it is a no-op.
func (k *Kernel) advanceTo(limit int64) {
	if k.noskip || k.opaque > 0 || len(k.tickers) == 0 {
		return
	}
	next := k.nextEventCycle()
	if next > limit {
		next = limit
	}
	if d := next - 1 - k.cycle; d > 0 {
		k.cycle += d
		k.skipped += d
		k.skips++
	}
}

// Run advances the simulation by n cycles, or until Stop is called.
// Provably idle spans are fast-forwarded; the end cycle is exact.
func (k *Kernel) Run(n int64) {
	k.stopped = false
	end := k.cycle + n
	for k.cycle < end && !k.stopped {
		k.advanceTo(end)
		k.Step()
	}
}

// RunUntil advances the simulation until the predicate returns true or
// the cycle budget is exhausted, honoring Stop like Run does. It
// reports whether the predicate fired.
//
// With skipping enabled the predicate is evaluated at every cycle where
// simulation activity can occur (and at the budget boundary). Since no
// component state changes inside a skipped span, predicates over
// simulation state observe every transition they could under per-cycle
// stepping; a predicate that depends only on Now() may observe a later
// cycle than the first one satisfying it.
func (k *Kernel) RunUntil(pred func() bool, budget int64) bool {
	k.stopped = false
	end := k.cycle + budget
	for k.cycle < end && !k.stopped {
		if pred() {
			return true
		}
		k.advanceTo(end)
		k.Step()
	}
	return pred()
}

// NSToCycles converts a nanosecond duration to cycles, rounding up.
func NSToCycles(ns int64) int64 {
	return (ns + CycleNS - 1) / CycleNS
}

// String describes the kernel state, mostly for test failure messages.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{cycle=%d tickers=%d timers=%d skipped=%d}", k.cycle, len(k.tickers), len(k.timers), k.skipped)
}
