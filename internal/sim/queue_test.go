package sim

import "testing"

// TestQueueScanAcrossCompaction drives head past the compaction
// threshold (head > 64 with a dominating dead prefix) and checks that
// Scan still visits exactly the live elements, in order, before and
// after the buffer shifts down.
func TestQueueScanAcrossCompaction(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 200; i++ {
		q.Push(i)
	}
	// Pop 100: the compaction branch fires on the 100th pop
	// (head=100, len=200 → head*2 >= len).
	for i := 0; i < 100; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
	want := 100
	q.Scan(func(v *int) bool {
		if *v != want {
			t.Fatalf("scan saw %d, want %d", *v, want)
		}
		want++
		return true
	})
	if want != 200 {
		t.Fatalf("scan visited %d elements, want 100", want-100)
	}
	// Mutation through Scan must survive compaction and reach Pop.
	q.Scan(func(v *int) bool {
		if *v == 150 {
			*v = -150
			return false
		}
		return true
	})
	for i := 100; i < 200; i++ {
		v, ok := q.Pop()
		wantV := i
		if i == 150 {
			wantV = -150
		}
		if !ok || v != wantV {
			t.Fatalf("pop = %d,%v want %d", v, ok, wantV)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: len=%d", q.Len())
	}
}

// TestQueueResetReuse checks Reset with a non-zero head restores a
// clean FIFO that still enforces its capacity.
func TestQueueResetReuse(t *testing.T) {
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Pop()
	q.Reset()
	if q.Len() != 0 || !q.Empty() {
		t.Fatalf("after reset: len=%d", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from reset queue succeeded")
	}
	for i := 10; i < 14; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected after reset", i)
		}
	}
	if q.Push(99) {
		t.Fatal("capacity not enforced after reset")
	}
	for i := 10; i < 14; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
}

// TestQueueVsOracle drives the queue through a long deterministic
// random op sequence against a plain-slice oracle, over capacities that
// exercise the bounded, small and unbounded paths.
func TestQueueVsOracle(t *testing.T) {
	for _, capacity := range []int{0, 1, 5, 64} {
		r := NewRand(uint64(1000 + capacity))
		q := NewQueue[int](capacity)
		var oracle []int
		next := 0
		for op := 0; op < 20000; op++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3: // push
				v := next
				next++
				accepted := q.Push(v)
				wantAccept := capacity == 0 || len(oracle) < capacity
				if accepted != wantAccept {
					t.Fatalf("cap=%d op=%d: push accepted=%v want %v", capacity, op, accepted, wantAccept)
				}
				if accepted {
					oracle = append(oracle, v)
				}
			case 4, 5, 6: // pop
				v, ok := q.Pop()
				if ok != (len(oracle) > 0) {
					t.Fatalf("cap=%d op=%d: pop ok=%v oracle len=%d", capacity, op, ok, len(oracle))
				}
				if ok {
					if v != oracle[0] {
						t.Fatalf("cap=%d op=%d: pop=%d want %d", capacity, op, v, oracle[0])
					}
					oracle = oracle[1:]
				}
			case 7: // peek
				v, ok := q.Peek()
				if ok != (len(oracle) > 0) || (ok && v != oracle[0]) {
					t.Fatalf("cap=%d op=%d: peek=%d,%v oracle=%v", capacity, op, v, ok, oracle)
				}
			case 8: // scan a random prefix, occasionally mutating
				limit := 0
				if len(oracle) > 0 {
					limit = r.Intn(len(oracle) + 1)
				}
				seen := 0
				q.Scan(func(p *int) bool {
					if seen >= limit {
						return false
					}
					if *p != oracle[seen] {
						t.Fatalf("cap=%d op=%d: scan[%d]=%d want %d", capacity, op, seen, *p, oracle[seen])
					}
					if *p%7 == 0 {
						*p = -*p
						oracle[seen] = -oracle[seen]
					}
					seen++
					return true
				})
			case 9: // occasional full checks; rare reset
				if q.Len() != len(oracle) || q.Empty() != (len(oracle) == 0) {
					t.Fatalf("cap=%d op=%d: len=%d oracle=%d", capacity, op, q.Len(), len(oracle))
				}
				if r.Intn(50) == 0 {
					q.Reset()
					oracle = oracle[:0]
				}
			}
		}
		// Drain and compare the tail.
		for len(oracle) > 0 {
			v, ok := q.Pop()
			if !ok || v != oracle[0] {
				t.Fatalf("cap=%d drain: pop=%d,%v want %d", capacity, v, ok, oracle[0])
			}
			oracle = oracle[1:]
		}
		if _, ok := q.Pop(); ok {
			t.Fatalf("cap=%d: queue longer than oracle", capacity)
		}
	}
}
