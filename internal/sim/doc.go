// Package sim provides the deterministic discrete-time simulation kernel
// used by every F4T model: a 250 MHz tick clock, component registry,
// cycle-resolution timers, seeded randomness and rate limiters.
//
// All simulated hardware advances in units of one engine clock cycle
// (4 ns at 250 MHz). Components implement Ticker and are stepped once per
// cycle in registration order, which keeps runs bit-for-bit reproducible.
//
// # Quiescence skipping
//
// The kernel is idle-aware: a component that also implements Sleeper
// reports, via NextWork, the earliest future cycle at which it could
// possibly act (or Dormant when only an external stimulus can revive
// it). When every registered ticker is a Sleeper and all of them report
// a future cycle, Run/RunUntil jump the clock directly to
//
//	min(earliest NextWork, earliest Wake hint, next kernel timer)
//
// instead of stepping through the gap one cycle at a time. The skipped
// cycles are credited to Now(), so everything keyed off absolute cycle
// numbers — ByteRate reservations, timer deadlines, CPU busy-until
// times, latency histograms — observes exactly the same values as under
// naive stepping.
//
// Why this preserves cycle accuracy: during a skipped span no component
// code runs at all, so skipping from cycle N to cycle M is sound exactly
// when ticking every component at N+1..M-1 would have been a pure no-op.
// NextWork contracts guarantee that: a component may only report a
// future cycle when its Tick is side-effect-free (no queue movement, no
// counter increments, no state change) until that cycle. Work that
// arrives from outside a component's own view — packet delivery, DMA
// completion, TCB migration landing — is injected through kernel timers
// (Kernel.At), which bound every skip, or signalled explicitly with
// Wake/WakeAt at the injection point (doorbell posts, packet arrival).
// Any registered ticker that does not implement Sleeper pins the kernel
// to per-cycle stepping, so partial retrofits stay conservative rather
// than wrong.
//
// SetSkipping(false) (or NewShadow) restores the historical always-step
// loop; the differential tests in internal/exp run identical rigs under
// both modes and assert bit-for-bit identical cycle-stamped counter
// streams.
package sim
