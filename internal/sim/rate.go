package sim

// ByteRate models a serial resource with fixed byte bandwidth — an
// Ethernet link, a PCIe direction, or a DRAM channel. It answers "at which
// cycle will a transfer of n bytes that starts now finish?", keeping the
// resource busy in between so back-to-back transfers serialize.
//
// Bandwidth is expressed in bytes per cycle as a rational num/den so that
// rates like 100 Gbps (50 B per 4 ns cycle) or 38 GB/s (152 B/cycle) are
// exact.
type ByteRate struct {
	num, den int64 // bytes per cycle = num/den
	freeAt   int64 // first cycle at which the resource is idle
	busy     int64 // total busy cycles accumulated (for utilization stats)
}

// NewByteRate returns a rate limiter delivering num/den bytes per cycle.
func NewByteRate(num, den int64) *ByteRate {
	if num <= 0 || den <= 0 {
		panic("sim: ByteRate requires positive num/den")
	}
	return &ByteRate{num: num, den: den}
}

// GbpsRate returns a ByteRate for a link of the given gigabits per second.
// 100 Gbps = 12.5 GB/s = 50 bytes per 4 ns cycle.
func GbpsRate(gbps int64) *ByteRate {
	// bytes/cycle = gbps * 1e9 / 8 [B/s] * 4e-9 [s/cycle] = gbps / 2.
	return NewByteRate(gbps, 2)
}

// GBpsRate returns a ByteRate for a memory channel of the given gigabytes
// per second. 38 GB/s = 152 bytes per 4 ns cycle.
func GBpsRate(gbytes int64) *ByteRate {
	return NewByteRate(gbytes*4, 1)
}

// CyclesFor returns how many cycles a transfer of n bytes occupies the
// resource (at least 1 for n > 0).
func (b *ByteRate) CyclesFor(n int64) int64 {
	if n <= 0 {
		return 0
	}
	c := (n*b.den + b.num - 1) / b.num
	if c < 1 {
		c = 1
	}
	return c
}

// Reserve books a transfer of n bytes starting no earlier than now and
// returns the cycle at which it completes. Transfers serialize: if the
// resource is busy, the transfer queues behind it.
func (b *ByteRate) Reserve(now, n int64) int64 {
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	dur := b.CyclesFor(n)
	b.freeAt = start + dur
	b.busy += dur
	return b.freeAt
}

// Backlog returns how many cycles of already-reserved work remain at the
// given cycle. Zero means the resource is idle.
func (b *ByteRate) Backlog(now int64) int64 {
	if b.freeAt <= now {
		return 0
	}
	return b.freeAt - now
}

// BusyCycles returns the total number of cycles the resource has been
// reserved for since creation.
func (b *ByteRate) BusyCycles() int64 { return b.busy }

// Reset clears all reservations and accounting.
func (b *ByteRate) Reset() { b.freeAt, b.busy = 0, 0 }
