package sim

import "math"

// Rand is a small, fast, deterministic PRNG (xorshift64*), used instead of
// math/rand so that every component can own an independent stream whose
// output depends only on its seed, never on global state or call order
// elsewhere in the program.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with the given value. A zero seed is
// remapped to a fixed non-zero constant because xorshift has a zero
// fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Pareto draws from a Pareto distribution with scale xm (the minimum
// value) and shape alpha via inverse-transform sampling. Small alpha
// (≈1) gives the heavy tail that makes connection-lifetime churn hard:
// most draws near xm, a few enormous. Callers truncate if they need a
// bounded tail.
func (r *Rand) Pareto(xm float64, alpha float64) float64 {
	// 1-Float64() is in (0, 1], so the pow never divides by zero.
	u := 1 - r.Float64()
	return xm * math.Pow(u, -1/alpha)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
