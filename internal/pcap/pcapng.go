// Package pcap captures frames from the simulated network into pcapng
// files that Wireshark/tshark open directly. Taps hook the decision
// points of netsim elements (pipe sends, router-port dequeues, drops,
// CE marks) and record kernel-cycle-derived nanosecond timestamps, so
// a capture is as deterministic as the simulation that produced it:
// the same seed yields a byte-identical file.
//
// The format is pcapng (the current libpcap container): one Section
// Header Block, one Interface Description Block per tap point (named,
// nanosecond resolution), and one Enhanced Packet Block per frame with
// the tap's annotations (drop cause, ECN mark, reorder, duplicate)
// attached as a packet comment.
package pcap

import (
	"bufio"
	"encoding/binary"
	"io"
)

// pcapng block type codes.
const (
	blockSHB = 0x0A0D0D0A
	blockIDB = 0x00000001
	blockEPB = 0x00000006

	byteOrderMagic = 0x1A2B3C4D
	linkEthernet   = 1

	optEndOfOpt = 0
	optComment  = 1
	optIfName   = 2
	optIfTsRes  = 9
)

// writer emits pcapng blocks. All multi-byte fields are little-endian
// (the byte-order magic tells readers which was used).
type writer struct {
	w   *bufio.Writer
	err error
	buf []byte
}

func newWriter(w io.Writer) *writer {
	pw := &writer{w: bufio.NewWriter(w)}
	pw.sectionHeader()
	return pw
}

func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// option appends one option record (code, length, value, pad-to-4).
func (w *writer) option(code uint16, val []byte) {
	w.u16(code)
	w.u16(uint16(len(val)))
	w.buf = append(w.buf, val...)
	for len(w.buf)%4 != 0 {
		w.buf = append(w.buf, 0)
	}
}

// flushBlock writes the staged block body wrapped with its type and
// total-length fields (the trailing copy lets readers walk backwards).
func (w *writer) flushBlock(blockType uint32) {
	if w.err != nil {
		w.buf = w.buf[:0]
		return
	}
	total := uint32(len(w.buf) + 12)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], blockType)
	binary.LittleEndian.PutUint32(hdr[4:], total)
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
	}
	if _, err := w.w.Write(w.buf); err != nil && w.err == nil {
		w.err = err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], total)
	if _, err := w.w.Write(tail[:]); err != nil && w.err == nil {
		w.err = err
	}
	w.buf = w.buf[:0]
}

// sectionHeader emits the SHB that opens the (single) section.
func (w *writer) sectionHeader() {
	w.u32(byteOrderMagic)
	w.u16(1) // version major
	w.u16(0) // version minor
	w.u64(0xFFFFFFFFFFFFFFFF) // section length unknown
	w.flushBlock(blockSHB)
}

// interfaceBlock emits one IDB: Ethernet link type, nanosecond
// timestamp resolution, and the tap's name. Interfaces are numbered in
// emission order starting at 0.
func (w *writer) interfaceBlock(name string) {
	w.u16(linkEthernet)
	w.u16(0) // reserved
	w.u32(0) // snaplen: unlimited
	if name != "" {
		w.option(optIfName, []byte(name))
	}
	w.option(optIfTsRes, []byte{9}) // 10^-9 s
	w.option(optEndOfOpt, nil)
	w.flushBlock(blockIDB)
}

// packetBlock emits one EPB for a captured frame.
func (w *writer) packetBlock(ifIdx uint32, tsNS int64, frame []byte, comment string) {
	w.u32(ifIdx)
	ts := uint64(tsNS)
	w.u32(uint32(ts >> 32))
	w.u32(uint32(ts))
	w.u32(uint32(len(frame)))
	w.u32(uint32(len(frame)))
	w.buf = append(w.buf, frame...)
	for len(w.buf)%4 != 0 {
		w.buf = append(w.buf, 0)
	}
	if comment != "" {
		w.option(optComment, []byte(comment))
		w.option(optEndOfOpt, nil)
	}
	w.flushBlock(blockEPB)
}

func (w *writer) flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}
