package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame is one decoded Enhanced Packet Block.
type Frame struct {
	Interface string // if_name of the tap the frame was captured on
	TsNS      int64
	Data      []byte
	Comment   string // drop/mark annotation ("" for a plain send)
}

// ReadFile decodes a pcapng capture written by this package (or any
// single-section little-endian pcapng file) into its frames. It exists
// so tests can verify captures frame-for-frame without external tools;
// tshark remains the cross-check for interoperability.
func ReadFile(r io.Reader) ([]Frame, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var (
		frames []Frame
		ifaces []string
		off    int
	)
	for off+12 <= len(data) {
		blockType := binary.LittleEndian.Uint32(data[off:])
		total := int(binary.LittleEndian.Uint32(data[off+4:]))
		if total < 12 || total%4 != 0 || off+total > len(data) {
			return nil, fmt.Errorf("pcap: bad block length %d at offset %d", total, off)
		}
		body := data[off+8 : off+total-4]
		tail := int(binary.LittleEndian.Uint32(data[off+total-4:]))
		if tail != total {
			return nil, fmt.Errorf("pcap: trailing length mismatch at offset %d", off)
		}
		switch blockType {
		case blockSHB:
			if len(body) < 4 || binary.LittleEndian.Uint32(body) != byteOrderMagic {
				return nil, fmt.Errorf("pcap: big-endian or corrupt section header")
			}
		case blockIDB:
			if len(body) < 8 {
				return nil, fmt.Errorf("pcap: short interface block")
			}
			name, _ := findOption(body[8:], optIfName)
			ifaces = append(ifaces, string(name))
		case blockEPB:
			if len(body) < 20 {
				return nil, fmt.Errorf("pcap: short packet block")
			}
			ifIdx := binary.LittleEndian.Uint32(body)
			ts := int64(binary.LittleEndian.Uint32(body[4:]))<<32 |
				int64(binary.LittleEndian.Uint32(body[8:]))
			capLen := int(binary.LittleEndian.Uint32(body[12:]))
			if 20+capLen > len(body) {
				return nil, fmt.Errorf("pcap: packet data overruns block")
			}
			f := Frame{
				TsNS: ts,
				Data: body[20 : 20+capLen],
			}
			if int(ifIdx) < len(ifaces) {
				f.Interface = ifaces[ifIdx]
			}
			optOff := 20 + capLen
			for optOff%4 != 0 {
				optOff++
			}
			if optOff < len(body) {
				if c, ok := findOption(body[optOff:], optComment); ok {
					f.Comment = string(c)
				}
			}
			frames = append(frames, f)
		}
		off += total
	}
	if off != len(data) {
		return nil, fmt.Errorf("pcap: %d trailing bytes after last block", len(data)-off)
	}
	return frames, nil
}

// findOption scans a pcapng option list for the first option with the
// given code.
func findOption(opts []byte, code uint16) ([]byte, bool) {
	for len(opts) >= 4 {
		c := binary.LittleEndian.Uint16(opts)
		l := int(binary.LittleEndian.Uint16(opts[2:]))
		if c == optEndOfOpt {
			return nil, false
		}
		if 4+l > len(opts) {
			return nil, false
		}
		if c == code {
			return opts[4 : 4+l], true
		}
		adv := 4 + l
		for adv%4 != 0 {
			adv++
		}
		if adv > len(opts) {
			return nil, false
		}
		opts = opts[adv:]
	}
	return nil, false
}
