package pcap

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/stack"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

var update = flag.Bool("update", false, "rewrite golden pcap fixtures")

// echoCapture runs a fixed-seed client/server echo exchange over one
// link with a capture tapping both directions, and returns the capture.
// Everything is seeded, so the capture bytes are reproducible.
func echoCapture(t *testing.T, faults netsim.Faults) *Capture {
	t.Helper()
	k := sim.New()
	link := netsim.NewLink(k, 100, 600, 42)
	cap0 := New()
	cap0.TapLink(link, "link0")
	link.AtoB.SetFaults(faults)

	optA := stack.Options{
		IP: wire.MakeAddr(10, 0, 0, 1), MAC: wire.MAC{2, 0, 0, 0, 0, 1},
		Cfg: tcpproc.DefaultConfig(), Alg: "newreno", CarryBytes: true, Seed: 1,
	}
	optB := stack.Options{
		IP: wire.MakeAddr(10, 0, 0, 2), MAC: wire.MAC{2, 0, 0, 0, 0, 2},
		Cfg: tcpproc.DefaultConfig(), Alg: "newreno", CarryBytes: true, Seed: 2,
	}
	a := stack.New(k, optA, link.AtoB.Send)
	b := stack.New(k, optB, link.BtoA.Send)
	link.AtoB.SetSink(func(p *wire.Packet) { b.HandlePacket(p) })
	link.BtoA.SetSink(func(p *wire.Packet) { a.HandlePacket(p) })
	k.Register(a)
	k.Register(b)

	msg := []byte("f4t pcap golden fixture: the quick brown fox jumps over the lazy dog")
	var srv *stack.Conn
	var echoed []byte
	b.Listen(80, func(c *stack.Conn) {
		srv = c
		c.OnData = func() {
			got, n := c.Recv(1024)
			if n > 0 {
				c.Send(got[:n])
			}
		}
	})
	cli := a.Dial(optB.IP, 80)
	cli.OnData = func() {
		got, n := cli.Recv(1024)
		echoed = append(echoed, got[:n]...)
	}
	cli.OnEstablished = func() { cli.Send(msg) }

	done := func() bool { return len(echoed) >= len(msg) }
	if !k.RunUntil(done, 5_000_000) {
		t.Fatalf("echo did not complete: got %d of %d bytes (srv=%v)", len(echoed), len(msg), srv != nil)
	}
	if !bytes.Equal(echoed, msg) {
		t.Fatalf("echoed bytes differ from sent message")
	}
	// Orderly teardown so the capture includes FIN exchanges.
	cli.Close()
	k.RunUntil(func() bool { return cli.Closed && srv.Closed }, 5_000_000)
	return cap0
}

// TestCaptureRoundTrip writes a capture and re-reads it with the
// package's own reader, checking structure and frame integrity.
func TestCaptureRoundTrip(t *testing.T) {
	cap0 := echoCapture(t, netsim.Faults{})
	if cap0.Frames() == 0 {
		t.Fatalf("capture is empty")
	}
	if cap0.MarshalErrs() != 0 {
		t.Fatalf("marshal errors: %d", cap0.MarshalErrs())
	}
	var buf bytes.Buffer
	if err := cap0.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	frames, err := ReadFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(frames) != cap0.Frames() {
		t.Fatalf("reader found %d frames, capture recorded %d", len(frames), cap0.Frames())
	}
	lastTS := int64(-1)
	for i, f := range frames {
		if f.Interface != "link0.ab" && f.Interface != "link0.ba" {
			t.Fatalf("frame %d: unexpected interface %q", i, f.Interface)
		}
		if f.TsNS < lastTS {
			t.Fatalf("frame %d: timestamp went backwards (%d after %d)", i, f.TsNS, lastTS)
		}
		lastTS = f.TsNS
		if _, err := wire.Unmarshal(f.Data); err != nil {
			t.Fatalf("frame %d: does not parse as a wire frame: %v", i, err)
		}
	}
}

// TestCaptureGolden pins the exact capture bytes of the fixed-seed
// echo exchange against a checked-in fixture. Any change to the stack,
// the link model, or the pcapng encoding shows up as a diff here; run
// with -update to accept intentional changes.
func TestCaptureGolden(t *testing.T) {
	cap0 := echoCapture(t, netsim.Faults{})
	var buf bytes.Buffer
	if err := cap0.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	golden := filepath.Join("testdata", "echo.pcapng")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		// Decode both sides for a legible failure before the byte diff.
		gotF, gerr := ReadFile(bytes.NewReader(buf.Bytes()))
		wantF, werr := ReadFile(bytes.NewReader(want))
		t.Fatalf("capture differs from golden fixture: got %d bytes/%d frames (err=%v), want %d bytes/%d frames (err=%v); run 'go test ./internal/pcap -update' if intentional",
			buf.Len(), len(gotF), gerr, len(want), len(wantF), werr)
	}
}

// TestCaptureAnnotatesDrops checks fault drops carry their comment.
// DropOnce=3 kills the client's first data segment (SYN, handshake
// ACK, then data), forcing an RTO retransmission the capture shows.
func TestCaptureAnnotatesDrops(t *testing.T) {
	cap0 := echoCapture(t, netsim.Faults{DropOnce: 3})
	var buf bytes.Buffer
	if err := cap0.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	frames, err := ReadFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	drops := 0
	for _, f := range frames {
		if f.Comment == "drop=fault" {
			drops++
		}
	}
	if drops != 1 {
		t.Fatalf("want exactly 1 drop=fault annotation in %d frames, got %d", len(frames), drops)
	}
}

// TestTsharkInterop cross-checks the capture with tshark when it is
// installed (it usually is not in CI; the golden fixture and the
// package reader are the gating checks).
func TestTsharkInterop(t *testing.T) {
	tsharkPath, err := exec.LookPath("tshark")
	if err != nil {
		t.Skip("tshark not installed; skipping interop cross-check")
	}
	cap0 := echoCapture(t, netsim.Faults{})
	dir := t.TempDir()
	path := filepath.Join(dir, "echo.pcapng")
	if err := cap0.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	out, err := exec.Command(tsharkPath, "-r", path, "-T", "fields", "-e", "frame.number").Output()
	if err != nil {
		t.Fatalf("tshark failed to read the capture: %v", err)
	}
	lines := bytes.Count(bytes.TrimSpace(out), []byte("\n")) + 1
	if lines != cap0.Frames() {
		t.Fatalf("tshark saw %d frames, capture recorded %d", lines, cap0.Frames())
	}
}
