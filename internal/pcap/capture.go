package pcap

import (
	"os"
	"sort"

	"f4t/internal/netsim"
	"f4t/internal/wire"
)

// rec is one captured frame on one tap.
type rec struct {
	tsNS  int64
	frame []byte
	note  netsim.TapNote
}

// tapBuf accumulates one tap point's frames. A tap closure runs
// synchronously inside its element's execution context, so under a
// sharded fabric each tapBuf is only ever touched by the island that
// owns its element — no locking is needed, and captures stay
// deterministic because each buffer preserves its element's own
// event order.
type tapBuf struct {
	name string
	recs []rec
	errs int // frames skipped because Marshal failed
}

// Capture collects frames from any number of tap points and writes a
// single merged pcapng file. Install taps during rig construction,
// run the simulation, then call WriteTo/WriteFile after the fabric's
// Run has returned (island goroutines joined) — writing mid-run would
// race the taps.
type Capture struct {
	taps []*tapBuf
}

// New returns an empty capture.
func New() *Capture { return &Capture{} }

// newTap registers a named tap point (one pcapng interface) and
// returns the closure to install on a netsim element.
func (c *Capture) newTap(name string) netsim.Tap {
	tb := &tapBuf{name: name}
	c.taps = append(c.taps, tb)
	return func(nowNS int64, pkt *wire.Packet, note netsim.TapNote) {
		frame, err := pkt.Marshal()
		if err != nil {
			tb.errs++
			return
		}
		tb.recs = append(tb.recs, rec{tsNS: nowNS, frame: frame, note: note})
	}
}

// TapPipe captures one pipe direction under the given interface name.
func (c *Capture) TapPipe(p *netsim.Pipe, name string) {
	p.SetTap(c.newTap(name))
}

// TapLink captures both directions of a duplex link as two interfaces
// (name.ab / name.ba).
func (c *Capture) TapLink(l *netsim.Link, name string) {
	c.TapPipe(l.AtoB, name+".ab")
	c.TapPipe(l.BtoA, name+".ba")
}

// TapPort captures one router egress port.
func (c *Capture) TapPort(p *netsim.RouterPort, name string) {
	p.SetTap(c.newTap(name))
}

// TapRouter captures every egress port of a router, named
// prefix.<portname>.
func (c *Capture) TapRouter(r *netsim.Router, prefix string) {
	for _, p := range r.Ports() {
		c.TapPort(p, prefix+"."+p.Name)
	}
}

// Frames returns the total captured frame count across all taps.
func (c *Capture) Frames() int {
	n := 0
	for _, tb := range c.taps {
		n += len(tb.recs)
	}
	return n
}

// MarshalErrs returns how many frames were skipped because they could
// not be encoded (should be zero in any healthy rig).
func (c *Capture) MarshalErrs() int {
	n := 0
	for _, tb := range c.taps {
		n += tb.errs
	}
	return n
}

// annotation renders the tap note as the EPB comment. A plain send has
// no comment; everything unusual is spelled out for display filters
// (Wireshark: pkt_comment contains "drop").
func annotation(note netsim.TapNote) string {
	s := ""
	add := func(tag string) {
		if s != "" {
			s += " "
		}
		s += tag
	}
	switch {
	case note&netsim.TapDropFault != 0:
		add("drop=fault")
	case note&netsim.TapDropTail != 0:
		add("drop=tail")
	case note&netsim.TapDropAQM != 0:
		add("drop=aqm")
	}
	if note&netsim.TapMarkCE != 0 {
		add("ce")
	}
	if note&netsim.TapReorder != 0 {
		add("reorder")
	}
	if note&netsim.TapDup != 0 {
		add("dup")
	}
	return s
}

// WriteTo writes the merged capture as pcapng. Frames from all taps
// are interleaved by (timestamp, tap registration order, per-tap
// sequence) — a total order that is a pure function of simulation
// state, so the emitted bytes are reproducible run to run.
func (c *Capture) WriteTo(w0 interface{ Write([]byte) (int, error) }) error {
	w := newWriter(w0)
	for _, tb := range c.taps {
		w.interfaceBlock(tb.name)
	}
	type key struct {
		tap, idx int
	}
	order := make([]key, 0, c.Frames())
	for ti, tb := range c.taps {
		for ri := range tb.recs {
			order = append(order, key{ti, ri})
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		ta, tb2 := c.taps[a.tap].recs[a.idx].tsNS, c.taps[b.tap].recs[b.idx].tsNS
		if ta != tb2 {
			return ta < tb2
		}
		if a.tap != b.tap {
			return a.tap < b.tap
		}
		return a.idx < b.idx
	})
	for _, k := range order {
		r := &c.taps[k.tap].recs[k.idx]
		w.packetBlock(uint32(k.tap), r.tsNS, r.frame, annotation(r.note))
	}
	return w.flush()
}

// WriteFile writes the capture to path (creating or truncating it).
func (c *Capture) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
