package seqnum

import (
	"testing"
	"testing/quick"
)

func TestWraparoundComparisons(t *testing.T) {
	cases := []struct {
		a, b Value
		less bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0xFFFFFFFF, 0, true},  // wrap: max < 0
		{0, 0xFFFFFFFF, false}, // and not the reverse
		{0x7FFFFFFF, 0x80000000, true},
		{100, 100, false},
	}
	for _, c := range cases {
		if got := c.a.LessThan(c.b); got != c.less {
			t.Errorf("%d < %d = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	err := quick.Check(func(v uint32, s uint32) bool {
		val := Value(v)
		sz := Size(s)
		return val.Add(sz).Sub(sz) == val
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// Within half the sequence space, Add must preserve order — the RFC 793
// validity condition.
func TestAddPreservesOrderWithinWindow(t *testing.T) {
	err := quick.Check(func(v uint32, delta uint32) bool {
		d := Size(delta % 0x7FFFFFFF)
		if d == 0 {
			return true
		}
		val := Value(v)
		return val.Add(d).GreaterThan(val) && val.LessThan(val.Add(d))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestInWindow(t *testing.T) {
	if !Value(10).InWindow(5, 10) {
		t.Error("10 should be in [5,15)")
	}
	if Value(15).InWindow(5, 10) {
		t.Error("15 should not be in [5,15)")
	}
	if !Value(2).InWindow(0xFFFFFFF0, 32) {
		t.Error("2 should be in the wrapped window [0xFFFFFFF0, 0x10)")
	}
	if Value(0xFFFFFFEF).InWindow(0xFFFFFFF0, 32) {
		t.Error("value before the window start accepted")
	}
}

func TestDistance(t *testing.T) {
	if d := Value(100).DistanceFrom(60); d != 40 {
		t.Errorf("distance = %d, want 40", d)
	}
	if d := Value(5).DistanceFrom(0xFFFFFFFB); d != 10 {
		t.Errorf("wrapped distance = %d, want 10", d)
	}
}

func TestMinMax(t *testing.T) {
	if Max(Value(0xFFFFFFFF), Value(3)) != 3 {
		t.Error("modular max across wrap")
	}
	if Min(Value(0xFFFFFFFF), Value(3)) != 0xFFFFFFFF {
		t.Error("modular min across wrap")
	}
}

// Trichotomy: exactly one of <, ==, > holds for values within half the
// space of each other.
func TestTrichotomy(t *testing.T) {
	err := quick.Check(func(a uint32, deltaRaw uint32) bool {
		delta := deltaRaw % 0x7FFFFFFF
		x, y := Value(a), Value(a+delta)
		lt, gt, eq := x.LessThan(y), x.GreaterThan(y), x == y
		n := 0
		for _, b := range []bool{lt, gt, eq} {
			if b {
				n++
			}
		}
		return n == 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
