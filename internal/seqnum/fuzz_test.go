package seqnum

import "testing"

// FuzzSeqnum checks the algebraic laws of RFC 793 modular sequence
// arithmetic on arbitrary triples, including (by construction of the
// corpus) values straddling the 2^32 wrap. Every property is phrased so
// it holds for all inputs within the half-space validity window the
// package documents.
func FuzzSeqnum(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0))
	f.Add(uint32(0xFFFFFFFF), uint32(1), uint32(10))          // wrap at add
	f.Add(uint32(0xFFFFFFF0), uint32(0x10), uint32(0x100))    // window across wrap
	f.Add(uint32(0x7FFFFFFF), uint32(0x80000000), uint32(1))  // half-space edge
	f.Add(uint32(1), uint32(0xFFFFFFFF), uint32(0x7FFFFFFF))  // reversed pair
	f.Add(uint32(0x80000000), uint32(0), uint32(0x7FFFFFFF))  // opposite poles
	f.Add(uint32(12345), uint32(54321), uint32(1460))         // mundane
	f.Fuzz(func(t *testing.T, a, b, s uint32) {
		v, w, sz := Value(a), Value(b), Size(s)

		// Add/Sub are inverses and match plain uint32 wrap.
		if got := v.Add(sz).Sub(sz); got != v {
			t.Errorf("Add/Sub not inverse: (%d+%d-%d) = %d", v, sz, sz, got)
		}
		if got := v.Add(sz); uint32(got) != a+s {
			t.Errorf("Add(%d,%d) = %d, want %d", a, s, got, a+s)
		}

		// Trichotomy: exactly one of <, ==, > unless the values are
		// antipodal (v-w == 2^31), where RFC 793 comparison is undefined;
		// the int32 convention makes both directions report "less than"
		// (int32(2^31) is negative) — pin that so a refactor can't
		// silently change tie-breaking.
		lt, gt, eq := v.LessThan(w), v.GreaterThan(w), v == w
		if a-b == 0x80000000 {
			if !lt || gt || eq || !w.LessThan(v) || w.GreaterThan(v) {
				t.Errorf("antipodal %d,%d: lt=%v gt=%v eq=%v wltv=%v wgtv=%v, want lt only (both directions)",
					a, b, lt, gt, eq, w.LessThan(v), w.GreaterThan(v))
			}
		} else {
			n := 0
			for _, c := range []bool{lt, gt, eq} {
				if c {
					n++
				}
			}
			if n != 1 {
				t.Errorf("trichotomy violated for %d,%d: lt=%v gt=%v eq=%v", a, b, lt, gt, eq)
			}
		}

		// Antisymmetry (skipping the antipodal point): v<w ⟺ w>v.
		if a-b != 0x80000000 {
			if v.LessThan(w) != w.GreaterThan(v) {
				t.Errorf("antisymmetry violated for %d,%d", a, b)
			}
			if v.LessThanEq(w) != w.GreaterThanEq(v) {
				t.Errorf("eq-antisymmetry violated for %d,%d", a, b)
			}
		}

		// Shift invariance: comparisons are unchanged by advancing both
		// operands the same distance — the property that makes the whole
		// scheme work across the wrap.
		if v.LessThan(w) != v.Add(sz).LessThan(w.Add(sz)) {
			t.Errorf("LessThan not shift invariant: %d,%d shift %d", a, b, s)
		}

		// Window membership: v ∈ [v, v+sz) whenever the window is
		// non-empty and within the valid half-space.
		if s > 0 && s <= 0x7FFFFFFF {
			if !v.InWindow(v, sz) {
				t.Errorf("%d not in its own window of size %d", a, s)
			}
			if v.InWindow(v.Add(sz), sz) && s != 0 {
				// [v+sz, v+2sz) can only contain v if 2sz wraps past v,
				// impossible for sz <= 2^31-1 ... except sz exactly 2^31-1
				// twice is 2^32-2, still short of the wrap. So: never.
				t.Errorf("%d in the disjoint following window (start %d size %d)", a, uint32(v.Add(sz)), s)
			}
			// Window shift invariance.
			if v.InWindow(w, sz) != v.Add(1).InWindow(w.Add(1), sz) {
				t.Errorf("InWindow not shift invariant: %d in [%d,+%d)", a, b, s)
			}
		}

		// DistanceFrom is the exact inverse of Add.
		if got := w.Add(v.DistanceFrom(w)); got != v {
			t.Errorf("Add(DistanceFrom) != identity: %d,%d -> %d", a, b, got)
		}

		// Max/Min agree with the comparisons and pick from {v, w}.
		mx, mn := Max(v, w), Min(v, w)
		if mx != v && mx != w {
			t.Errorf("Max(%d,%d) = %d not an operand", a, b, mx)
		}
		if mn != v && mn != w {
			t.Errorf("Min(%d,%d) = %d not an operand", a, b, mn)
		}
		if a-b != 0x80000000 {
			if mn.GreaterThan(mx) {
				t.Errorf("Min(%d,%d)=%d > Max=%d", a, b, mn, mx)
			}
			if v != w && !(mx == Max(w, v) && mn == Min(w, v)) {
				t.Errorf("Max/Min not symmetric for %d,%d", a, b)
			}
		}
	})
}
