// Package seqnum implements RFC 793 TCP sequence-number arithmetic:
// 32-bit values compared modulo 2^32, valid whenever the compared values
// are within half the sequence space of each other.
package seqnum

// Value is a TCP sequence number.
type Value uint32

// Size is a length in the sequence space.
type Size uint32

// Add returns v advanced by s, wrapping modulo 2^32.
func (v Value) Add(s Size) Value { return v + Value(s) }

// Sub returns v moved back by s, wrapping modulo 2^32.
func (v Value) Sub(s Size) Value { return v - Value(s) }

// LessThan reports v < w in modular arithmetic.
func (v Value) LessThan(w Value) bool { return int32(v-w) < 0 }

// LessThanEq reports v <= w in modular arithmetic.
func (v Value) LessThanEq(w Value) bool { return v == w || v.LessThan(w) }

// GreaterThan reports v > w in modular arithmetic.
func (v Value) GreaterThan(w Value) bool { return int32(v-w) > 0 }

// GreaterThanEq reports v >= w in modular arithmetic.
func (v Value) GreaterThanEq(w Value) bool { return v == w || v.GreaterThan(w) }

// InWindow reports whether v lies in [first, first+size).
func (v Value) InWindow(first Value, size Size) bool {
	return v.GreaterThanEq(first) && v.LessThan(first.Add(size))
}

// DistanceFrom returns the number of bytes from w to v (v - w). The result
// is meaningful when v >= w in modular order.
func (v Value) DistanceFrom(w Value) Size { return Size(v - w) }

// Max returns the modular maximum of v and w.
func Max(v, w Value) Value {
	if v.GreaterThan(w) {
		return v
	}
	return w
}

// Min returns the modular minimum of v and w.
func Min(v, w Value) Value {
	if v.LessThan(w) {
		return v
	}
	return w
}
