package apps

import "f4t/internal/host"

// connSet is an insertion-ordered set of connections. Apps track
// connections with pending work in one; plain map iteration would make
// runs non-deterministic.
type connSet struct {
	list []host.Conn
	idx  map[host.Conn]int
	snap []host.Conn // Each's reusable snapshot buffer
}

func newConnSet() *connSet {
	return &connSet{idx: make(map[host.Conn]int)}
}

func (s *connSet) Add(c host.Conn) {
	if _, ok := s.idx[c]; ok {
		return
	}
	s.idx[c] = len(s.list)
	s.list = append(s.list, c)
}

func (s *connSet) Remove(c host.Conn) {
	i, ok := s.idx[c]
	if !ok {
		return
	}
	last := len(s.list) - 1
	s.list[i] = s.list[last]
	s.idx[s.list[i]] = i
	s.list = s.list[:last]
	delete(s.idx, c)
}

func (s *connSet) Len() int { return len(s.list) }

// Each visits every member in a stable order; the callback may Remove
// members (including the current one) or Add new ones (visited on the
// next Each). The snapshot buffer is reused across calls — Each runs
// every app tick, and a fresh copy per tick would dominate app-side
// allocation. Each does not nest (apps drive it from a single thread
// loop).
func (s *connSet) Each(fn func(c host.Conn)) {
	snapshot := append(s.snap[:0], s.list...)
	s.snap = snapshot
	for _, c := range snapshot {
		if _, ok := s.idx[c]; ok {
			fn(c)
		}
	}
}
