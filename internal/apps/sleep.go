package apps

import (
	"f4t/internal/cpu"
	"f4t/internal/host"
)

// This file holds the shared plumbing behind the apps' NextWork methods
// (sim.Sleeper). Each workload reports the earliest future cycle it
// could act — readiness events awaiting Poll, or buffered work gated on
// its thread's core — so the kernel can skip the quiescent spans in
// between (RTT waits in ping-pong workloads, mostly).
//
// The contract that keeps skipping exact: an app may only report a
// future cycle when its Tick would be a no-op (no counter increments,
// no externally visible state change) at every cycle before it. State
// the apps react to — connection establishment, readiness events,
// received bytes — only flips while a machine or engine ticks, and a
// ticking component pins those cycles as stepped, so the app observes
// every transition on the same cycle it would have without skipping.

// eventsPending is implemented by host threads that can report whether
// readiness events are waiting for the next Poll (both built-in hosts
// do). It is probed by type assertion so test stubs implementing only
// host.Thread keep working.
type eventsPending interface {
	EventsPending() bool
}

// threadPending reports whether a thread has readiness events queued
// for its next Poll. Unknown thread implementations conservatively
// report true, which pins per-cycle stepping and stays correct.
func threadPending(th host.Thread) bool {
	if p, ok := th.(eventsPending); ok {
		return p.EventsPending()
	}
	return true
}

// coreWake folds a core-gated wake into next: the thread has work right
// now but must wait for its core to free up. It returns the updated
// minimum and whether the caller can stop scanning because the very
// next cycle is already reached.
func coreWake(next int64, core *cpu.Core, now int64) (int64, bool) {
	w := core.NextFree(now)
	if w <= now+1 {
		return now + 1, true
	}
	if w < next {
		next = w
	}
	return next, false
}
