package apps

import (
	"testing"

	"f4t/internal/cpu"
	"f4t/internal/host"
	"f4t/internal/sim"
)

// fakeConn is an in-memory loopback connection pair for app unit tests:
// bytes sent on one side become available on the other immediately.
type fakeConn struct {
	peer        *fakeConn
	established bool
	avail       int
	sendSpace   int
	events      *[]host.ConnEvent
	closed      bool
}

func (c *fakeConn) TrySend(n int, _ []byte) int { return c.SendQueued(n, nil) }
func (c *fakeConn) SendQueued(n int, _ []byte) int {
	if !c.established || c.closed {
		return 0
	}
	if n > c.sendSpace {
		n = c.sendSpace
	}
	if n <= 0 {
		return 0
	}
	c.sendSpace -= n
	c.peer.avail += n
	if c.peer.events != nil {
		*c.peer.events = append(*c.peer.events, host.ConnEvent{Kind: host.EvReadable, Conn: c.peer})
	}
	return n
}
func (c *fakeConn) TryRecv(max int) int { return c.RecvQueued(max) }
func (c *fakeConn) RecvQueued(max int) int {
	n := c.avail
	if n > max {
		n = max
	}
	c.avail -= n
	return n
}
func (c *fakeConn) Available() int    { return c.avail }
func (c *fakeConn) SendSpace() int    { return c.sendSpace }
func (c *fakeConn) Close()            { c.closed = true }
func (c *fakeConn) Established() bool { return c.established }
func (c *fakeConn) PeerClosed() bool  { return false }
func (c *fakeConn) Closed() bool      { return c.closed }

// fakeThread implements host.Thread over fakeConns; Dial connects to the
// fake server thread and fires the accept/connect events.
type fakeThread struct {
	k      *sim.Kernel
	core   *cpu.Core
	events []host.ConnEvent
	server *fakeThread
	// dialGate lets tests simulate full command queues (Dial → nil).
	dialGate func() bool
}

func newFakeThread(k *sim.Kernel, server *fakeThread) *fakeThread {
	return &fakeThread{k: k, core: cpu.NewCore(k), server: server}
}

func (t *fakeThread) Core() *cpu.Core { return t.core }
func (t *fakeThread) Listen(uint16)   {}
func (t *fakeThread) Dial(int, uint16) host.Conn {
	if t.dialGate != nil && !t.dialGate() {
		return nil
	}
	cli := &fakeConn{established: true, sendSpace: 1 << 20, events: &t.events}
	srv := &fakeConn{established: true, sendSpace: 1 << 20, peer: cli}
	cli.peer = srv
	if t.server != nil {
		srv.events = &t.server.events
		t.server.events = append(t.server.events, host.ConnEvent{Kind: host.EvAccepted, Conn: srv})
	}
	t.events = append(t.events, host.ConnEvent{Kind: host.EvConnected, Conn: cli})
	return cli
}
func (t *fakeThread) Poll() []host.ConnEvent {
	out := t.events
	t.events = nil
	return out
}

func TestEchoAppsRoundTrip(t *testing.T) {
	k := sim.New()
	server := newFakeThread(k, nil)
	client := newFakeThread(k, server)

	srv := NewEchoServer([]host.Thread{server}, 9001, 128)
	cli := NewEchoClient(k, []host.Thread{client}, 0, 9001, 128, 4)
	k.Register(srv)
	k.Register(cli)
	k.Run(10_000)
	if !cli.Ready() {
		t.Fatalf("echo client not ready: %d established", cli.Established())
	}
	if cli.Requests.Total() == 0 {
		t.Fatal("no echo round trips completed")
	}
	if cli.Latency.Count() == 0 {
		t.Fatal("no latencies recorded")
	}
}

func TestHTTPServerServesWrk(t *testing.T) {
	k := sim.New()
	serverTh := newFakeThread(k, nil)
	clientTh := newFakeThread(k, serverTh)
	costs := cpu.DefaultCosts()

	srv := NewHTTPServer([]host.Thread{serverTh}, 80, 128, 256, costs)
	wrk := NewWrk(k, []host.Thread{clientTh}, 0, 80, 128, 256, 8, costs)
	k.Register(srv)
	k.Register(wrk)
	k.Run(200_000)
	if srv.Requests.Total() == 0 || wrk.Responses.Total() == 0 {
		t.Fatalf("srv=%d wrk=%d", srv.Requests.Total(), wrk.Responses.Total())
	}
	// Closed loop: responses cannot exceed requests served.
	if wrk.Responses.Total() > srv.Requests.Total() {
		t.Fatal("more responses than served requests")
	}
	// The server charged app + kernel work.
	if serverTh.core.Spent(cpu.CatApp) == 0 || serverTh.core.Spent(cpu.CatKernel) == 0 {
		t.Fatal("HTTP server charged no app/kernel work")
	}
}

func TestBulkSenderPushes(t *testing.T) {
	k := sim.New()
	serverTh := newFakeThread(k, nil)
	clientTh := newFakeThread(k, serverTh)
	sink := NewSink([]host.Thread{serverTh}, 5001)
	b := NewBulkSender([]host.Thread{clientTh}, 0, 5001, 128)
	k.Register(sink)
	k.Register(b)
	k.Run(10_000)
	if b.Requests.Total() == 0 || sink.Delivered.Total() == 0 {
		t.Fatalf("requests=%d delivered=%d", b.Requests.Total(), sink.Delivered.Total())
	}
	if sink.Delivered.Total() != b.Bytes.Total() {
		t.Fatalf("byte conservation: sent %d, delivered %d", b.Bytes.Total(), sink.Delivered.Total())
	}
}

func TestRoundRobinRotation(t *testing.T) {
	k := sim.New()
	serverTh := newFakeThread(k, nil)
	clientTh := newFakeThread(k, serverTh)
	sink := NewSink([]host.Thread{serverTh}, 5001)
	rr := NewRoundRobinSender([]host.Thread{clientTh}, 0, 5001, 128, 16)
	k.Register(sink)
	k.Register(rr)
	k.Run(10_000)
	if !rr.Ready() {
		t.Fatal("rotation flows not established")
	}
	if rr.Requests.Total() == 0 {
		t.Fatal("no requests sent")
	}
}

func TestDialerRampWindow(t *testing.T) {
	k := sim.New()
	th := newFakeThread(k, nil)
	// Gate dials so connections never establish... they establish
	// immediately in the fake, so instead verify the want count and
	// pacing bound: with dialsPerTick=2 the dialer needs want/2 ticks.
	d := newDialer([]host.Thread{th}, 0, 1, 10, nil)
	if d.tick() {
		t.Fatal("done after one tick with want=10, pace=2")
	}
	for i := 0; i < 4; i++ {
		d.tick()
	}
	if !d.allEstablished() || d.established() != 10 {
		t.Fatalf("established = %d", d.established())
	}
}

func TestDialerRetriesNilDials(t *testing.T) {
	k := sim.New()
	th := newFakeThread(k, nil)
	allow := false
	th.dialGate = func() bool { return allow }
	d := newDialer([]host.Thread{th}, 0, 1, 3, nil)
	for i := 0; i < 5; i++ {
		if d.tick() {
			t.Fatal("done while dials are refused")
		}
	}
	allow = true
	d.tick()
	d.tick()
	if !d.allEstablished() {
		t.Fatal("dialer did not recover once dials were accepted")
	}
}

func TestConnSetSemantics(t *testing.T) {
	s := newConnSet()
	a := &fakeConn{}
	b := &fakeConn{}
	s.Add(a)
	s.Add(b)
	s.Add(a) // idempotent
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	visited := 0
	s.Each(func(c host.Conn) {
		visited++
		s.Remove(c) // removal during iteration is allowed
	})
	if visited != 2 || s.Len() != 0 {
		t.Fatalf("visited=%d len=%d", visited, s.Len())
	}
}
