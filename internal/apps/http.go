package apps

import (
	"f4t/internal/cpu"
	"f4t/internal/host"
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// HTTPServer is the Nginx stand-in of §5.2: per request it parses the
// HTTP header (app work), fetches the HTML from the filesystem
// (vfs_read — kernel bucket, the residual kernel time of Fig 11),
// renders the response header (app work) and sends a fixed-size
// response (256 B in the paper: header + HTML payload).
type HTTPServer struct {
	threads  []host.Thread
	reqSize  int
	respSize int
	costs    cpu.Costs

	ready   map[host.Conn]int // buffered request bytes per connection
	queued  map[host.Conn]bool
	pending []*sim.Queue[host.Conn] // per-thread round-robin service queues

	// Requests counts responses sent (Fig 10's metric, server side).
	Requests sim.Counter
}

// NewHTTPServer listens on port with every thread.
func NewHTTPServer(threads []host.Thread, port uint16, reqSize, respSize int, costs cpu.Costs) *HTTPServer {
	s := &HTTPServer{
		threads:  threads,
		reqSize:  reqSize,
		respSize: respSize,
		costs:    costs,
		ready:    make(map[host.Conn]int),
		queued:   make(map[host.Conn]bool),
	}
	for _, th := range threads {
		th.Listen(port)
		s.pending = append(s.pending, sim.NewQueue[host.Conn](0))
	}
	return s
}

func (s *HTTPServer) enqueue(i int, c host.Conn) {
	if s.queued[c] {
		return
	}
	s.queued[c] = true
	s.pending[i].Push(c)
}

// Tick implements sim.Ticker: each thread serves as many buffered
// requests as its core allows this cycle.
func (s *HTTPServer) Tick(int64) {
	for i, th := range s.threads {
		pend := s.pending[i]
		for _, ev := range th.Poll() {
			switch ev.Kind {
			case host.EvReadable:
				s.enqueue(i, ev.Conn)
			case host.EvHangup:
				delete(s.ready, ev.Conn)
				delete(s.queued, ev.Conn)
			}
		}
		// Round-robin service: one request per connection per turn, so
		// no connection starves behind a busy one (epoll fairness).
		core := th.Core()
		for core.Free() {
			c, ok := pend.Pop()
			if !ok {
				break
			}
			if !s.queued[c] {
				continue // hung up while queued
			}
			s.queued[c] = false
			served := s.serveOne(th, c)
			if c.Available()+s.ready[c] >= s.reqSize || (!served && s.ready[c] > 0) {
				s.enqueue(i, c)
			} else if s.ready[c] == 0 && c.Available() == 0 {
				delete(s.ready, c)
			}
		}
	}
}

// NextWork implements sim.Sleeper: queued connections wait for the
// thread's core; everything else arrives as readiness events.
func (s *HTTPServer) NextWork(now int64) int64 {
	next := sim.Dormant
	for i, th := range s.threads {
		if threadPending(th) {
			return now + 1
		}
		if s.pending[i].Len() > 0 {
			var stop bool
			if next, stop = coreWake(next, th.Core(), now); stop {
				return now + 1
			}
		}
	}
	return next
}

// serveOne handles one complete request if present: socket read, HTTP
// parse, file fetch, response render, socket write — each charged to its
// CPU category.
func (s *HTTPServer) serveOne(th host.Thread, c host.Conn) bool {
	core := th.Core()
	if s.ready[c] < s.reqSize {
		got := c.RecvQueued(c.Available())
		if got == 0 {
			return false
		}
		s.ready[c] += got
	}
	if s.ready[c] < s.reqSize {
		return false
	}
	s.ready[c] -= s.reqSize
	core.RunQueued(cpu.CatApp, s.costs.AppParseRequest)
	core.RunQueued(cpu.CatKernel, s.costs.VfsRead)
	core.RunQueued(cpu.CatApp, s.costs.AppBuildResponse)
	if c.SendQueued(s.respSize, nil) == 0 {
		// Response buffer full: requeue the request for a later turn.
		s.ready[c] += s.reqSize
		return false
	}
	s.Requests.Inc()
	return true
}

// Wrk is the HTTP load generator of §5.2: keepalive connections that
// each send a fixed-size request, wait for the full response, record
// the latency, and immediately issue the next request.
type Wrk struct {
	k        *sim.Kernel
	threads  []host.Thread
	d        *dialer
	flows    [][]*wrkFlow
	reqSize  int
	respSize int
	costs    cpu.Costs

	// Responses counts completed request/response pairs.
	Responses sim.Counter
	// Latency records request→response times (Fig 12).
	Latency sim.Histogram

	// Telemetry (nil when disabled; see telemetry.go).
	latHist *telemetry.Histogram
}

type wrkFlow struct {
	conn     host.Conn
	awaiting bool
	sentAt   int64
	got      int
}

// NewWrk opens flowsPerThread keepalive connections per thread (paced).
func NewWrk(k *sim.Kernel, threads []host.Thread, remoteIdx int, port uint16, reqSize, respSize, flowsPerThread int, costs cpu.Costs) *Wrk {
	w := &Wrk{k: k, threads: threads, reqSize: reqSize, respSize: respSize, costs: costs, flows: make([][]*wrkFlow, len(threads))}
	w.d = newDialer(threads, remoteIdx, port, flowsPerThread, func(i int, conn host.Conn) {
		w.flows[i] = append(w.flows[i], &wrkFlow{conn: conn})
	})
	return w
}

// Ready reports whether every connection established.
func (w *Wrk) Ready() bool { return w.d.allEstablished() }

// Tick implements sim.Ticker.
func (w *Wrk) Tick(int64) {
	w.d.tick()
	now := w.k.NowNS()
	for i, th := range w.threads {
		th.Poll()
		core := th.Core()
		for _, f := range w.flows[i] {
			if !f.conn.Established() {
				continue
			}
			if f.awaiting {
				if f.conn.Available() > 0 && core.Free() {
					f.got += f.conn.TryRecv(w.respSize - f.got)
					if f.got >= w.respSize {
						f.awaiting = false
						f.got = 0
						w.Responses.Inc()
						w.Latency.Observe(now - f.sentAt)
						w.latHist.Observe(now - f.sentAt)
					}
				}
				continue
			}
			if !core.Free() {
				break
			}
			core.Run(cpu.CatApp, w.costs.GenRequest)
			if f.conn.SendQueued(w.reqSize, nil) > 0 {
				f.awaiting = true
				f.sentAt = now
			}
		}
	}
}

// NextWork implements sim.Sleeper. A flow awaiting its response with no
// bytes available needs nothing until the network delivers (which wakes
// the machine, then surfaces here as a pending event); any other
// established flow is core-gated work.
func (w *Wrk) NextWork(now int64) int64 {
	if !w.d.complete() {
		return now + 1
	}
	next := sim.Dormant
	for i, th := range w.threads {
		if threadPending(th) {
			return now + 1
		}
		for _, f := range w.flows[i] {
			if !f.conn.Established() || (f.awaiting && f.conn.Available() == 0) {
				continue
			}
			var stop bool
			if next, stop = coreWake(next, th.Core(), now); stop {
				return now + 1
			}
			break // the shared core is the gate; one flow suffices
		}
	}
	return next
}
