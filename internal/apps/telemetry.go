package apps

import "f4t/internal/telemetry"

// Instrument registers the sender's request/byte counters under prefix.
// Safe on a nil registry.
func (b *BulkSender) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".requests", &b.Requests)
	reg.Counter(prefix+".bytes", &b.Bytes)
}

// Instrument registers the sender's request/byte counters under prefix.
func (r *RoundRobinSender) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".requests", &r.Requests)
	reg.Counter(prefix+".bytes", &r.Bytes)
}

// Instrument registers delivered payload bytes under prefix.
func (s *Sink) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".delivered", &s.Delivered)
}

// Instrument registers responses sent under prefix.
func (s *HTTPServer) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".requests", &s.Requests)
}

// Instrument registers completed round trips under prefix, plus a
// log-bucketed RTT histogram fed alongside the exact sim.Histogram.
func (c *EchoClient) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".requests", &c.Requests)
	c.rttHist = reg.NewHistogram(prefix + ".rtt_ns")
}

// SetTracer attaches a trace ring; every completed round trip emits an
// "rtt" span on virtual thread tid covering request send → echo receipt,
// with the message size as argument.
func (c *EchoClient) SetTracer(trc *telemetry.Trace, tid int32) {
	c.trc = trc
	c.tid = tid
}

// Instrument registers completed request/response pairs under prefix,
// plus a log-bucketed latency histogram.
func (w *Wrk) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".responses", &w.Responses)
	w.latHist = reg.NewHistogram(prefix + ".latency_ns")
}
