// Package apps implements the evaluation workloads of §5 against the
// stack-agnostic host interface, so each runs unchanged on the Linux
// software stack and on F4T: a bulk sender (iPerf, §5.1), a round-robin
// requester (§5.1), a 128 B echo (§5.3), an HTTP server standing in for
// Nginx, and a wrk-style HTTP load generator (§5.2).
package apps

import (
	"f4t/internal/host"
	"f4t/internal/sim"
)

// BulkSender is the iPerf workload of Fig 8a/Fig 9: each thread drives
// one flow with back-to-back send requests of a fixed size.
type BulkSender struct {
	threads []host.Thread
	d       *dialer
	reqSize int

	// Requests counts accepted send()s (the Mrps metric of Fig 9b).
	Requests sim.Counter
	// Bytes counts accepted payload bytes.
	Bytes sim.Counter
}

// NewBulkSender prepares one flow per thread toward the peer's port;
// dialing proceeds over the first simulated cycles.
func NewBulkSender(threads []host.Thread, remoteIdx int, port uint16, reqSize int) *BulkSender {
	return &BulkSender{
		threads: threads,
		d:       newDialer(threads, remoteIdx, port, 1, nil),
		reqSize: reqSize,
	}
}

// Ready reports whether every flow finished its handshake.
func (b *BulkSender) Ready() bool { return b.d.allEstablished() }

// Tick implements sim.Ticker: every thread pushes as many requests as
// its core and buffers allow this cycle.
func (b *BulkSender) Tick(int64) {
	b.d.tick()
	for i, th := range b.threads {
		th.Poll() // consume readiness events (free buffer space signals)
		if len(b.d.conns[i]) == 0 {
			continue
		}
		c := b.d.conns[i][0]
		if !c.Established() {
			continue
		}
		for {
			n := c.TrySend(b.reqSize, nil)
			if n == 0 {
				break
			}
			b.Requests.Inc()
			b.Bytes.Add(int64(n))
		}
	}
}

// NextWork implements sim.Sleeper. A sender with an established flow is
// perpetually busy modulo its core — TrySend charges the core even when
// the send buffer is full — so idleness only comes from the dial ramp
// and handshake waits.
func (b *BulkSender) NextWork(now int64) int64 {
	if !b.d.complete() {
		return now + 1
	}
	next := sim.Dormant
	for i, th := range b.threads {
		if threadPending(th) {
			return now + 1
		}
		if len(b.d.conns[i]) > 0 && b.d.conns[i][0].Established() {
			var stop bool
			if next, stop = coreWake(next, th.Core(), now); stop {
				return now + 1
			}
		}
	}
	return next
}

// RoundRobinSender is the low-locality workload of Fig 8b: each thread
// cycles over a distinct set of flows, sending one fixed-size request to
// each in turn ("each CPU core generates send requests in a round-robin
// manner for 16 flows", §5.1).
type RoundRobinSender struct {
	threads []host.Thread
	d       *dialer
	next    []int
	reqSize int

	Requests sim.Counter
	Bytes    sim.Counter
}

// NewRoundRobinSender prepares flowsPerThread flows per thread.
func NewRoundRobinSender(threads []host.Thread, remoteIdx int, port uint16, reqSize, flowsPerThread int) *RoundRobinSender {
	return &RoundRobinSender{
		threads: threads,
		d:       newDialer(threads, remoteIdx, port, flowsPerThread, nil),
		next:    make([]int, len(threads)),
		reqSize: reqSize,
	}
}

// Ready reports whether every flow finished its handshake.
func (r *RoundRobinSender) Ready() bool { return r.d.allEstablished() }

// Tick implements sim.Ticker.
func (r *RoundRobinSender) Tick(int64) {
	r.d.tick()
	for i, th := range r.threads {
		th.Poll()
		cs := r.d.conns[i]
		if len(cs) == 0 {
			continue
		}
		// Strict rotation: a blocked flow stalls the rotation briefly but
		// the next cycle retries — matching the benchmark's round-robin.
		for tries := 0; tries < len(cs); tries++ {
			c := cs[r.next[i]%len(cs)]
			if !c.Established() {
				r.next[i]++
				continue
			}
			n := c.TrySend(r.reqSize, nil)
			if n == 0 {
				break
			}
			r.next[i]++
			r.Requests.Inc()
			r.Bytes.Add(int64(n))
		}
	}
}

// NextWork implements sim.Sleeper: like BulkSender, any established
// flow keeps the thread core-gated busy. Rotation past unestablished
// flows is idempotent (it lands on the first established entry, and no
// flow changes state while the kernel skips), so it is safe to defer.
func (r *RoundRobinSender) NextWork(now int64) int64 {
	if !r.d.complete() {
		return now + 1
	}
	next := sim.Dormant
	for i, th := range r.threads {
		if threadPending(th) {
			return now + 1
		}
		for _, c := range r.d.conns[i] {
			if !c.Established() {
				continue
			}
			var stop bool
			if next, stop = coreWake(next, th.Core(), now); stop {
				return now + 1
			}
			break // the shared core is the gate; one flow suffices
		}
	}
	return next
}

// Sink is the receive side of the transfer workloads: it accepts
// connections and consumes everything that arrives, counting goodput.
// Connections with data left over (core busy, more data than one recv)
// stay on a pending list and are retried every cycle.
type Sink struct {
	threads []host.Thread
	pending []*connSet // per thread

	Delivered sim.Counter // payload bytes consumed
}

// NewSink listens on the port with every thread (SO_REUSEPORT).
func NewSink(threads []host.Thread, port uint16) *Sink {
	s := &Sink{threads: threads}
	for _, th := range threads {
		th.Listen(port)
		s.pending = append(s.pending, newConnSet())
	}
	return s
}

// Tick implements sim.Ticker: drain readable connections.
func (s *Sink) Tick(int64) {
	for i, th := range s.threads {
		pend := s.pending[i]
		for _, ev := range th.Poll() {
			switch ev.Kind {
			case host.EvReadable:
				pend.Add(ev.Conn)
			case host.EvHangup:
				pend.Remove(ev.Conn)
			}
		}
		pend.Each(func(c host.Conn) {
			for {
				n := c.TryRecv(1 << 20)
				if n == 0 {
					break
				}
				s.Delivered.Add(int64(n))
			}
			if c.Available() == 0 {
				pend.Remove(c)
			}
		})
	}
}

// NextWork implements sim.Sleeper. Pending connections always hold
// unconsumed bytes between ticks (a fully drained connection is removed
// the same cycle), so the only wait is for the thread's core.
func (s *Sink) NextWork(now int64) int64 {
	next := sim.Dormant
	for i, th := range s.threads {
		if threadPending(th) {
			return now + 1
		}
		if s.pending[i].Len() > 0 {
			var stop bool
			if next, stop = coreWake(next, th.Core(), now); stop {
				return now + 1
			}
		}
	}
	return next
}
