package apps

import "f4t/internal/host"

// dialer opens a target number of connections per thread at a bounded
// pace (a few per thread per cycle) so command queues never overflow —
// the way a real load generator ramps connections up.
type dialer struct {
	threads   []host.Thread
	remoteIdx int
	port      uint16
	want      int // connections per thread
	conns     [][]host.Conn
	estPtr    []int // prefix of conns known established (ramp window)
	onOpen    func(threadIdx int, c host.Conn)
}

// dialsPerTick bounds connection-establishment pace per thread.
const dialsPerTick = 2

// maxOutstandingDials caps un-established connections per thread so a
// 64K-connection ramp doesn't flood the network with simultaneous
// handshakes and collapse into SYN-retransmission storms — real load
// generators ramp the same way.
const maxOutstandingDials = 96

func newDialer(threads []host.Thread, remoteIdx int, port uint16, perThread int, onOpen func(int, host.Conn)) *dialer {
	d := &dialer{
		threads:   threads,
		remoteIdx: remoteIdx,
		port:      port,
		want:      perThread,
		conns:     make([][]host.Conn, len(threads)),
		estPtr:    make([]int, len(threads)),
		onOpen:    onOpen,
	}
	return d
}

// tick opens missing connections; returns true when all are dialed.
func (d *dialer) tick() bool {
	done := true
	for i, th := range d.threads {
		// Connections establish roughly in dial order; advance the
		// established prefix to measure the outstanding window cheaply.
		for d.estPtr[i] < len(d.conns[i]) && d.conns[i][d.estPtr[i]].Established() {
			d.estPtr[i]++
		}
		for n := 0; n < dialsPerTick && len(d.conns[i]) < d.want; n++ {
			if len(d.conns[i])-d.estPtr[i] >= maxOutstandingDials {
				break // ramp window full: wait for handshakes to land
			}
			c := th.Dial(d.remoteIdx, d.port)
			if c == nil {
				break // queue full: retry next cycle
			}
			d.conns[i] = append(d.conns[i], c)
			if d.onOpen != nil {
				d.onOpen(i, c)
			}
		}
		if len(d.conns[i]) < d.want {
			done = false
		}
	}
	return done
}

// complete reports whether every wanted connection has been dialed
// (established or not). Until then tick actively opens connections
// every cycle, so the owning app must report itself busy.
func (d *dialer) complete() bool {
	for i := range d.conns {
		if len(d.conns[i]) < d.want {
			return false
		}
	}
	return true
}

// allEstablished reports whether every wanted connection exists and
// finished its handshake.
func (d *dialer) allEstablished() bool {
	for i := range d.threads {
		if len(d.conns[i]) < d.want {
			return false
		}
		for _, c := range d.conns[i] {
			if !c.Established() {
				return false
			}
		}
	}
	return true
}

// established counts handshaken connections.
func (d *dialer) established() int {
	n := 0
	for i := range d.conns {
		for _, c := range d.conns[i] {
			if c.Established() {
				n++
			}
		}
	}
	return n
}
