package apps

import (
	"f4t/internal/host"
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// EchoServer bounces every received message back (the "echoing
// benchmark" server of §5.3).
type EchoServer struct {
	threads []host.Thread
	msgSize int
}

// NewEchoServer listens on the port with every thread.
func NewEchoServer(threads []host.Thread, port uint16, msgSize int) *EchoServer {
	s := &EchoServer{threads: threads, msgSize: msgSize}
	for _, th := range threads {
		th.Listen(port)
	}
	return s
}

// Tick implements sim.Ticker.
func (s *EchoServer) Tick(int64) {
	for _, th := range s.threads {
		for _, ev := range th.Poll() {
			if ev.Kind != host.EvReadable {
				continue
			}
			for ev.Conn.Available() >= s.msgSize {
				if ev.Conn.RecvQueued(s.msgSize) == 0 {
					break
				}
				ev.Conn.SendQueued(s.msgSize, nil)
			}
		}
	}
}

// NextWork implements sim.Sleeper: the server is purely event-driven
// (RecvQueued/SendQueued never gate on the core up front), so it only
// acts on readiness events.
func (s *EchoServer) NextWork(now int64) int64 {
	for _, th := range s.threads {
		if threadPending(th) {
			return now + 1
		}
	}
	return sim.Dormant
}

// EchoClient runs the ping-pong side: every flow sends one fixed-size
// message and waits for the echo before sending the next — the
// worst-case TCB locality pattern of Fig 13 ("each flow has to wait for
// a response to send the next message").
//
// The client is event-driven: per cycle it only touches flows whose
// state changed, so cost scales with activity, not with the number of
// open connections (which reaches 65,536 in the sweep).
type EchoClient struct {
	threads []host.Thread
	d       *dialer
	byConn  []map[host.Conn]*echoFlow
	ready   []*sim.Queue[*echoFlow] // flows needing an action, per thread
	msgSize int

	// Requests counts completed round trips (the rps metric of Fig 13).
	Requests sim.Counter
	// Latency records round-trip times in nanoseconds.
	Latency sim.Histogram

	// Telemetry (nil when disabled; see telemetry.go).
	rttHist *telemetry.Histogram
	trc     *telemetry.Trace
	tid     int32

	k *sim.Kernel
}

type echoFlow struct {
	conn     host.Conn
	awaiting bool
	queued   bool
	sentAt   int64
}

// NewEchoClient opens flowsPerThread flows per thread (paced over the
// first simulated cycles).
func NewEchoClient(k *sim.Kernel, threads []host.Thread, remoteIdx int, port uint16, msgSize, flowsPerThread int) *EchoClient {
	c := &EchoClient{
		k:       k,
		threads: threads,
		msgSize: msgSize,
		byConn:  make([]map[host.Conn]*echoFlow, len(threads)),
		ready:   make([]*sim.Queue[*echoFlow], len(threads)),
	}
	for i := range threads {
		c.byConn[i] = make(map[host.Conn]*echoFlow, flowsPerThread)
		c.ready[i] = sim.NewQueue[*echoFlow](0)
	}
	c.d = newDialer(threads, remoteIdx, port, flowsPerThread, func(i int, conn host.Conn) {
		c.byConn[i][conn] = &echoFlow{conn: conn}
	})
	return c
}

// Ready reports whether every flow finished its handshake.
func (c *EchoClient) Ready() bool { return c.d.allEstablished() }

// Established counts handshaken flows (ramp diagnostics).
func (c *EchoClient) Established() int { return c.d.established() }

func (c *EchoClient) enqueue(i int, f *echoFlow) {
	if f == nil || f.queued {
		return
	}
	f.queued = true
	c.ready[i].Push(f)
}

// Tick implements sim.Ticker.
func (c *EchoClient) Tick(int64) {
	c.d.tick()
	now := c.k.NowNS()
	for i, th := range c.threads {
		for _, ev := range th.Poll() {
			switch ev.Kind {
			case host.EvConnected:
				c.enqueue(i, c.byConn[i][ev.Conn])
			case host.EvReadable:
				c.enqueue(i, c.byConn[i][ev.Conn])
			}
		}
		q := c.ready[i]
		for n := q.Len(); n > 0; n-- {
			f, _ := q.Peek()
			if f.awaiting {
				if f.conn.Available() < c.msgSize {
					q.Pop()
					f.queued = false // spurious wakeup; next event re-arms
					continue
				}
				if f.conn.TryRecv(c.msgSize) == 0 {
					break // core busy: retry next cycle, keep order
				}
				f.awaiting = false
				c.Requests.Inc()
				c.Latency.Observe(now - f.sentAt)
				if c.rttHist != nil || c.trc != nil {
					c.rttHist.Observe(now - f.sentAt)
					c.trc.Span("app", "rtt", c.tid, f.sentAt, now, int64(c.msgSize))
				}
				// Fall through to send the next request immediately.
			}
			if f.conn.TrySend(c.msgSize, nil) == 0 {
				break // buffer or core busy: keep queued
			}
			f.awaiting = true
			f.sentAt = now
			q.Pop()
			f.queued = false
		}
	}
}

// NextWork implements sim.Sleeper. With every flow in flight (awaiting
// its echo) and no events pending, the client is dormant for a full
// round trip — the dominant state of Fig 13's latency-bound sweeps and
// the big cycle-skipping win.
func (c *EchoClient) NextWork(now int64) int64 {
	if !c.d.complete() {
		return now + 1
	}
	for i, th := range c.threads {
		if threadPending(th) || c.ready[i].Len() > 0 {
			return now + 1
		}
	}
	return sim.Dormant
}
