package apps

import (
	"f4t/internal/host"
	"f4t/internal/sim"
)

// FanClient is the RPC fan-out/fan-in workload of the topology rigs:
// each thread holds one connection to every server in a set, and each
// round sends a small request to all of them, then waits for every
// (typically larger) response before starting the next round — the
// partition/aggregate pattern whose synchronized response burst is the
// classic incast microburst at the client's downlink queue.
type FanClient struct {
	threads  []host.Thread
	remotes  []int // remote indices to fan over
	port     uint16
	reqSize  int
	respSize int

	conns   [][]host.Conn // per thread, one per remote
	sendRem [][]int       // request bytes still to push, per conn
	recvRem [][]int       // response bytes still awaited, per conn
	startNS []int64       // round start, per thread

	// Rounds counts completed fan-in rounds; Latency records each
	// round's duration (request out → last response byte) in ns.
	Rounds  sim.Counter
	Latency sim.Histogram

	k *sim.Kernel
}

// NewFanClient prepares one connection per (thread, remote). Dialing is
// paced over the first simulated cycles like every other workload.
func NewFanClient(k *sim.Kernel, threads []host.Thread, remotes []int, port uint16, reqSize, respSize int) *FanClient {
	c := &FanClient{
		k: k, threads: threads, remotes: remotes, port: port,
		reqSize: reqSize, respSize: respSize,
		conns:   make([][]host.Conn, len(threads)),
		sendRem: make([][]int, len(threads)),
		recvRem: make([][]int, len(threads)),
		startNS: make([]int64, len(threads)),
	}
	for i := range threads {
		c.sendRem[i] = make([]int, len(remotes))
		c.recvRem[i] = make([]int, len(remotes))
	}
	return c
}

// Ready reports whether every connection finished its handshake.
func (c *FanClient) Ready() bool {
	for i := range c.threads {
		if len(c.conns[i]) < len(c.remotes) {
			return false
		}
		for _, cn := range c.conns[i] {
			if !cn.Established() {
				return false
			}
		}
	}
	return true
}

// dial opens missing connections at the shared dialer pace.
func (c *FanClient) dial(i int, th host.Thread) {
	for n := 0; n < dialsPerTick && len(c.conns[i]) < len(c.remotes); n++ {
		cn := th.Dial(c.remotes[len(c.conns[i])], c.port)
		if cn == nil {
			return // command queue full: retry next cycle
		}
		c.conns[i] = append(c.conns[i], cn)
	}
}

// startRound arms a fresh fan-out on thread i.
func (c *FanClient) startRound(i int) {
	for j := range c.conns[i] {
		c.sendRem[i][j] = c.reqSize
		c.recvRem[i][j] = c.respSize
	}
	c.startNS[i] = c.k.NowNS()
}

// Tick implements sim.Ticker.
func (c *FanClient) Tick(int64) {
	for i, th := range c.threads {
		th.Poll() // consume readiness events; state below is polled directly
		if len(c.conns[i]) < len(c.remotes) {
			c.dial(i, th)
			continue
		}
		if !allEstablished(c.conns[i]) {
			continue
		}
		if c.roundDone(i) {
			if c.startNS[i] != 0 {
				c.Rounds.Inc()
				c.Latency.Observe(c.k.NowNS() - c.startNS[i])
			}
			c.startRound(i)
		}
		for j, cn := range c.conns[i] {
			for c.sendRem[i][j] > 0 {
				n := cn.TrySend(c.sendRem[i][j], nil)
				if n == 0 {
					break // core or buffer busy: events/Next cycle retry
				}
				c.sendRem[i][j] -= n
			}
			for c.recvRem[i][j] > 0 && cn.Available() > 0 {
				n := cn.TryRecv(c.recvRem[i][j])
				if n == 0 {
					break
				}
				c.recvRem[i][j] -= n
			}
		}
		if c.roundDone(i) {
			// Complete the round this same cycle so latency excludes an
			// artificial one-tick tail; the next Tick re-arms.
			c.Rounds.Inc()
			c.Latency.Observe(c.k.NowNS() - c.startNS[i])
			c.startRound(i)
		}
	}
}

// roundDone reports whether thread i's fan-in completed (or never ran).
func (c *FanClient) roundDone(i int) bool {
	for j := range c.conns[i] {
		if c.sendRem[i][j] > 0 || c.recvRem[i][j] > 0 {
			return false
		}
	}
	return true
}

func allEstablished(cs []host.Conn) bool {
	for _, cn := range cs {
		if !cn.Established() {
			return false
		}
	}
	return true
}

// NextWork implements sim.Sleeper. A thread purely awaiting responses
// (requests all accepted, no readable bytes) is dormant until a
// readiness event; anything else — dial ramp, blocked sends, unread
// bytes, a round to re-arm — keeps it scheduled.
func (c *FanClient) NextWork(now int64) int64 {
	next := sim.Dormant
	for i, th := range c.threads {
		if len(c.conns[i]) < len(c.remotes) {
			return now + 1
		}
		if threadPending(th) {
			return now + 1
		}
		if !allEstablished(c.conns[i]) {
			continue // handshake completion arrives as an event
		}
		active := c.roundDone(i) // a finished round re-arms next Tick
		for j, cn := range c.conns[i] {
			if active {
				break
			}
			if c.sendRem[i][j] > 0 && cn.SendSpace() > 0 {
				active = true // core-gated send retry
			}
			if c.recvRem[i][j] > 0 && cn.Available() > 0 {
				active = true // core-gated recv retry
			}
		}
		if active {
			var stop bool
			if next, stop = coreWake(next, th.Core(), now); stop {
				return now + 1
			}
		}
	}
	return next
}

// RPCServer answers fixed-size requests with fixed-size responses (the
// asymmetric cousin of EchoServer): every reqSize bytes received on a
// connection trigger respSize bytes back. Responses that do not fit the
// send buffer are carried over and retried, so a congested client
// cannot wedge the server.
type RPCServer struct {
	threads  []host.Thread
	reqSize  int
	respSize int

	pend []*connSet          // connections owing response bytes, per thread
	owed []map[host.Conn]int // response bytes not yet buffered

	// Served counts fully answered requests.
	Served sim.Counter
}

// NewRPCServer listens on the port with every thread.
func NewRPCServer(threads []host.Thread, port uint16, reqSize, respSize int) *RPCServer {
	s := &RPCServer{threads: threads, reqSize: reqSize, respSize: respSize}
	for _, th := range threads {
		th.Listen(port)
		s.pend = append(s.pend, newConnSet())
		s.owed = append(s.owed, make(map[host.Conn]int))
	}
	return s
}

// Tick implements sim.Ticker. Pending responses drain in connSet order
// (insertion order), never map order — determinism (see connSet).
func (s *RPCServer) Tick(int64) {
	for i, th := range s.threads {
		pend, owed := s.pend[i], s.owed[i]
		for _, ev := range th.Poll() {
			switch ev.Kind {
			case host.EvReadable:
				for ev.Conn.Available() >= s.reqSize {
					if ev.Conn.RecvQueued(s.reqSize) == 0 {
						break
					}
					owed[ev.Conn] += s.respSize
					pend.Add(ev.Conn)
					s.Served.Inc()
				}
			case host.EvHangup:
				pend.Remove(ev.Conn)
				delete(owed, ev.Conn)
			}
		}
		pend.Each(func(cn host.Conn) {
			if cn.SendSpace() == 0 {
				return // full buffer: retrying would only burn CPU cost
			}
			rem := owed[cn]
			n := cn.SendQueued(rem, nil)
			if n >= rem {
				pend.Remove(cn)
				delete(owed, cn)
			} else {
				owed[cn] = rem - n
			}
		})
	}
}

// NextWork implements sim.Sleeper: event-driven except while a pending
// response could make progress into freed send-buffer space (a full
// buffer only ever frees via an EvWritable event, which pins stepping
// through threadPending).
func (s *RPCServer) NextWork(now int64) int64 {
	for i, th := range s.threads {
		if threadPending(th) {
			return now + 1
		}
		for _, cn := range s.pend[i].list {
			if cn.SendSpace() > 0 {
				return now + 1
			}
		}
	}
	return sim.Dormant
}
