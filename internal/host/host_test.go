package host

import (
	"testing"

	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/netsim"
	"f4t/internal/sim"
	"f4t/internal/stack"
	"f4t/internal/tcpproc"
	"f4t/internal/wire"
)

var (
	addrA = wire.MakeAddr(10, 9, 0, 1)
	addrB = wire.MakeAddr(10, 9, 0, 2)
	macA  = wire.MAC{2, 9, 0, 0, 0, 1}
	macB  = wire.MAC{2, 9, 0, 0, 0, 2}
)

func linuxPair(coresA, coresB int) (*sim.Kernel, *LinuxMachine, *LinuxMachine) {
	k := sim.New()
	link := netsim.NewLink(k, 100, 600, 5)
	costs := cpu.DefaultCosts()
	optA := stack.Options{IP: addrA, MAC: macA, Cfg: tcpproc.DefaultConfig(), Seed: 1}
	optB := stack.Options{IP: addrB, MAC: macB, Cfg: tcpproc.DefaultConfig(), Seed: 2}
	a := NewLinuxMachine(k, optA, coresA, costs, []wire.Addr{addrB}, link.AtoB.Send)
	b := NewLinuxMachine(k, optB, coresB, costs, []wire.Addr{addrA}, link.BtoA.Send)
	a.Endpoint().LearnPeer(addrB, macB)
	b.Endpoint().LearnPeer(addrA, macA)
	link.AtoB.SetSink(b.DeliverPacket)
	link.BtoA.SetSink(a.DeliverPacket)
	k.Register(sim.TickerFunc(a.Tick))
	k.Register(sim.TickerFunc(b.Tick))
	return k, a, b
}

func f4tPair(coresA, coresB int) (*sim.Kernel, *F4TMachine, *F4TMachine) {
	k := sim.New()
	link := netsim.NewLink(k, 100, 600, 6)
	costs := cpu.DefaultCosts()
	cfgA := engine.DefaultConfig()
	cfgA.IP, cfgA.MAC, cfgA.Channels, cfgA.Seed = addrA, macA, coresA, 1
	cfgB := engine.DefaultConfig()
	cfgB.IP, cfgB.MAC, cfgB.Channels, cfgB.Seed = addrB, macB, coresB, 2
	ea := engine.New(k, cfgA, link.AtoB.Send)
	eb := engine.New(k, cfgB, link.BtoA.Send)
	ea.LearnPeer(addrB, macB)
	eb.LearnPeer(addrA, macA)
	link.AtoB.SetSink(eb.DeliverPacket)
	link.BtoA.SetSink(ea.DeliverPacket)
	a := NewF4TMachine(k, ea, coresA, costs, []wire.Addr{addrB})
	b := NewF4TMachine(k, eb, coresB, costs, []wire.Addr{addrA})
	k.Register(sim.TickerFunc(ea.Tick))
	k.Register(sim.TickerFunc(eb.Tick))
	k.Register(sim.TickerFunc(a.Tick))
	k.Register(sim.TickerFunc(b.Tick))
	return k, a, b
}

// exercisePair runs the same app logic over either machine pair.
func exercisePair(t *testing.T, k *sim.Kernel, a, b Machine) {
	t.Helper()
	server := b.Threads()[0]
	server.Listen(80)
	k.Run(3_000)

	client := a.Threads()[0]
	conn := client.Dial(0, 80)
	if conn == nil {
		t.Fatal("dial returned nil on an empty queue")
	}
	if !k.RunUntil(conn.Established, 3_000_000) {
		t.Fatal("handshake timed out")
	}

	// Transfer 64 KB; both sides pump via readiness.
	const total = 64 * 1024
	sent, received := 0, 0
	var srvConn Conn
	ok := k.RunUntil(func() bool {
		for _, ev := range server.Poll() {
			switch ev.Kind {
			case EvAccepted:
				srvConn = ev.Conn
			case EvReadable:
				received += ev.Conn.TryRecv(1 << 20)
			}
		}
		if srvConn != nil {
			received += srvConn.TryRecv(1 << 20)
		}
		client.Poll()
		if sent < total {
			sent += conn.TrySend(total-sent, nil)
		}
		return received >= total
	}, 30_000_000)
	if !ok {
		t.Fatalf("transfer stalled: sent=%d received=%d", sent, received)
	}

	// CPU time must have been charged on both sides.
	var spentA, spentB int64
	for c := cpu.CatApp; c < cpu.CatIdle; c++ {
		spentA += a.Pool().SpentTotal(c)
		spentB += b.Pool().SpentTotal(c)
	}
	if spentA == 0 || spentB == 0 {
		t.Fatalf("no CPU accounting: a=%d b=%d", spentA, spentB)
	}

	// Orderly shutdown: the client closes; the server answers the FIN
	// with its own close; both sides must reach CLOSED.
	conn.Close()
	serverClosed := false
	if !k.RunUntil(func() bool {
		for _, ev := range server.Poll() {
			if ev.Kind == EvHangup && !serverClosed {
				serverClosed = true
				srvConn.Close()
			}
		}
		client.Poll()
		return conn.Closed()
	}, 60_000_000) {
		t.Fatal("close timed out")
	}
}

func TestLinuxMachineEndToEnd(t *testing.T) {
	k, a, b := linuxPair(2, 2)
	exercisePair(t, k, a, b)
	// The Linux path charges TCP and kernel buckets distinctly.
	if a.Pool().SpentTotal(cpu.CatTCP) == 0 || a.Pool().SpentTotal(cpu.CatKernel) == 0 {
		t.Fatal("Linux cost split missing a bucket")
	}
	if a.Pool().SpentTotal(cpu.CatF4TLib) != 0 {
		t.Fatal("Linux machine charged the F4T bucket")
	}
}

func TestF4TMachineEndToEnd(t *testing.T) {
	k, a, b := f4tPair(2, 2)
	exercisePair(t, k, a, b)
	if a.Pool().SpentTotal(cpu.CatF4TLib) == 0 {
		t.Fatal("F4T machine charged nothing to the library bucket")
	}
	if a.Pool().SpentTotal(cpu.CatTCP) != 0 {
		t.Fatal("F4T machine charged TCP cycles — the offload removed those")
	}
}

func TestF4TSendCheaperThanLinux(t *testing.T) {
	// The core claim: per accepted byte, the F4T host spends far fewer
	// CPU cycles than the Linux host.
	perByte := func(mk func(int, int) (*sim.Kernel, Machine, Machine)) float64 {
		k, a, b := mkPair(mk)
		server := b.Threads()[0]
		server.Listen(80)
		k.Run(3_000)
		client := a.Threads()[0]
		conn := client.Dial(0, 80)
		k.RunUntil(conn.Established, 3_000_000)
		sent := 0
		k.RunUntil(func() bool {
			client.Poll()
			for _, ev := range server.Poll() {
				if ev.Kind == EvReadable {
					ev.Conn.TryRecv(1 << 20)
				}
			}
			sent += conn.TrySend(128, nil)
			return sent >= 100_000
		}, 50_000_000)
		var spent int64
		for c := cpu.CatApp; c < cpu.CatIdle; c++ {
			spent += a.Pool().SpentTotal(c)
		}
		return float64(spent) / float64(sent)
	}
	linux := perByte(func(ca, cb int) (*sim.Kernel, Machine, Machine) {
		k, a, b := linuxPair(ca, cb)
		return k, a, b
	})
	f4t := perByte(func(ca, cb int) (*sim.Kernel, Machine, Machine) {
		k, a, b := f4tPair(ca, cb)
		return k, a, b
	})
	if f4t*5 > linux {
		t.Fatalf("F4T per-byte cost %.1f not ≪ Linux %.1f", f4t, linux)
	}
}

func mkPair(mk func(int, int) (*sim.Kernel, Machine, Machine)) (*sim.Kernel, Machine, Machine) {
	return mk(1, 2)
}

func TestGROTable(t *testing.T) {
	var g groTable
	tup := func(i int) wire.FourTuple { return wire.FourTuple{LocalPort: uint16(i)} }
	if g.hit(tup(1)) {
		t.Fatal("first touch hit")
	}
	if !g.hit(tup(1)) {
		t.Fatal("second touch missed")
	}
	// Fill beyond capacity: the first entry eventually evicts.
	for i := 2; i <= 9; i++ {
		g.hit(tup(i))
	}
	if g.hit(tup(1)) {
		t.Fatal("evicted entry still hits")
	}
}

func TestRSSDistributesFlows(t *testing.T) {
	k, a, b := linuxPair(4, 4)
	server := b.Threads()[0]
	server.Listen(80)
	k.Run(3_000)
	conns := make([]Conn, 32)
	for i := range conns {
		conns[i] = a.Threads()[i%4].Dial(0, 80)
	}
	ok := k.RunUntil(func() bool {
		for _, th := range b.Threads() {
			th.Poll()
		}
		for _, c := range conns {
			if !c.Established() {
				return false
			}
		}
		return true
	}, 20_000_000)
	if !ok {
		t.Fatal("handshakes timed out")
	}
	// RX packets hashed across the receiver's queues: more than one core
	// must have charged softirq time.
	busy := 0
	for _, core := range b.Pool().Cores {
		if core.Spent(cpu.CatTCP) > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("RSS concentrated all RX on %d core(s)", busy)
	}
}
