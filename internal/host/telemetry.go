package host

import (
	"fmt"

	"f4t/internal/telemetry"
)

// Instrument registers each thread's F4T library accounting under prefix
// (e.g. "mach_a"). The engine itself is instrumented separately via
// Engine.Instrument. Safe on a nil registry.
func (m *F4TMachine) Instrument(reg *telemetry.Registry, prefix string) {
	for i, th := range m.threads {
		th.lib.Instrument(reg, fmt.Sprintf("%s.t%d.lib", prefix, i))
	}
}
