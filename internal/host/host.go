// Package host provides the application-facing view of a machine: CPU
// cores running application threads that reach the network through
// either the Linux software TCP stack or the F4T library. Applications
// (internal/apps) are written once against Thread/Conn and run unchanged
// on both stacks — the reproduction's equivalent of F4T's unmodified-
// application property (§4.1.1).
//
// Every socket operation is gated on the thread's CPU core and charged
// per the calibrated cost table, so throughput differences between the
// stacks emerge from cycle accounting, not from hard-coded ratios.
package host

import "f4t/internal/cpu"

// ConnEventKind is a readiness notification delivered to the app.
type ConnEventKind uint8

// Readiness events.
const (
	EvConnected ConnEventKind = iota
	EvAccepted
	EvReadable
	EvWritable
	EvHangup
)

// ConnEvent pairs an event with its connection.
type ConnEvent struct {
	Kind ConnEventKind
	Conn Conn
}

// Conn is one connection as the application sees it. TrySend/TryRecv
// charge CPU cost on the owning thread's core and fail (return 0) when
// the core is busy, the buffer is full, or the command queue is full —
// the app retries on its next scheduling opportunity, exactly like a
// non-blocking socket loop.
type Conn interface {
	// TrySend queues up to n bytes (payload may be nil for modelled
	// transfers) and returns the bytes accepted, charging CPU cost.
	TrySend(n int, payload []byte) int
	// TryRecv consumes up to max received bytes, charging CPU cost, and
	// returns the bytes consumed (payload retrieval is modelled).
	TryRecv(max int) int
	// SendQueued is TrySend for work that continues a burst the app has
	// already begun on its core: the cost queues behind the core's
	// current work instead of failing (e.g. the response send at the end
	// of one HTTP request's handling).
	SendQueued(n int, payload []byte) int
	// RecvQueued is TryRecv with queued-cost semantics.
	RecvQueued(max int) int
	// Available returns in-order bytes ready to consume (no CPU charge —
	// the app already knows from the readiness event).
	Available() int
	// SendSpace returns free send-buffer bytes.
	SendSpace() int
	// Close starts an orderly shutdown (charges CPU cost when possible).
	Close()
	// Established reports handshake completion.
	Established() bool
	// PeerClosed reports a received FIN.
	PeerClosed() bool
	// Closed reports full termination.
	Closed() bool
}

// Thread is one application thread pinned to one core with its own
// channel to the stack (per-thread command queues, SO_REUSEPORT — §4.6).
type Thread interface {
	// Core returns the CPU core this thread runs on; apps charge their
	// own application-level work here.
	Core() *cpu.Core
	// Dial starts an active open (charges connection-setup cost). It may
	// return nil when the stack cannot accept a new connection right now
	// (full command queue); callers retry on a later cycle.
	Dial(remoteIdx int, port uint16) Conn
	// Listen registers this thread as an acceptor for the port.
	Listen(port uint16)
	// Poll delivers pending readiness events, charging per-event cost.
	// The returned slice is valid until the next call.
	Poll() []ConnEvent
}

// Machine is one host: a set of threads (one per core) on one stack.
type Machine interface {
	Threads() []Thread
	// Pool exposes the CPU pool for utilization accounting.
	Pool() *cpu.Pool
}
