package host

import (
	"f4t/internal/cpu"
	"f4t/internal/sim"
	"f4t/internal/stack"
	"f4t/internal/wire"
)

// LinuxMachine is the baseline comparator (§2.2): the software TCP stack
// executing on the host cores. Every syscall, packet and byte charges
// CPU cycles from the calibrated table; RX packets distribute over cores
// by flow hash (RSS) and wait for their core like softirq work.
type LinuxMachine struct {
	k     *sim.Kernel
	ep    *stack.Endpoint
	pool  *cpu.Pool
	costs cpu.Costs

	threads []*linuxThread
	rxq     []*sim.Queue[*wire.Packet] // per-core NIC queues (RSS)
	gro     []groTable                 // per-queue GRO flow tables
	remotes []wire.Addr
	rng     *sim.Rand // kernel-path timing jitter (Fig 12 tail)

	RxDroppedFull int64
}

// NewLinuxMachine builds a host with n cores/threads over the software
// stack. remotes maps Dial's remoteIdx to peer addresses.
func NewLinuxMachine(k *sim.Kernel, opt stack.Options, n int, costs cpu.Costs, remotes []wire.Addr, tx func(*wire.Packet)) *LinuxMachine {
	m := &LinuxMachine{
		k:       k,
		ep:      stack.New(k, opt, tx),
		pool:    cpu.NewPool(k, n),
		costs:   costs,
		rxq:     make([]*sim.Queue[*wire.Packet], n),
		remotes: remotes,
		rng:     sim.NewRand(opt.Seed + 77),
	}
	m.gro = make([]groTable, n)
	for i := 0; i < n; i++ {
		th := &linuxThread{m: m, idx: i, core: m.pool.Cores[i]}
		m.threads = append(m.threads, th)
		m.rxq[i] = sim.NewQueue[*wire.Packet](4096)
	}
	return m
}

// jitter applies the Linux path's timing variance: ±JitterPct plus rare
// preemption/softirq spikes — the source of the tail in Fig 12.
func (m *LinuxMachine) jitter(cost int64) int64 {
	j := m.costs.JitterPct
	if j > 0 {
		span := 2 * j
		cost = cost * (100 - j + m.rng.Int63n(span+1)) / 100
	}
	if m.costs.SpikeProb > 0 && m.rng.Bool(m.costs.SpikeProb) {
		cost += m.costs.SpikeCycles
	}
	return cost
}

// shellCost is the syscall shell, plus half the cold-flow cache penalty
// (the other half lands inside the TCP stack traversal).
func (m *LinuxMachine) shellCost(cold bool) int64 {
	c := m.costs.Syscall
	if cold {
		c += m.costs.FlowSwitch / 2
	}
	return c
}

// Endpoint exposes the underlying stack (tests).
func (m *LinuxMachine) Endpoint() *stack.Endpoint { return m.ep }

// Pool implements Machine.
func (m *LinuxMachine) Pool() *cpu.Pool { return m.pool }

// Threads implements Machine.
func (m *LinuxMachine) Threads() []Thread {
	out := make([]Thread, len(m.threads))
	for i, t := range m.threads {
		out[i] = t
	}
	return out
}

// DeliverPacket is the NIC RX entry (attach as the link sink): packets
// hash to a core's queue and wait for CPU time.
func (m *LinuxMachine) DeliverPacket(pkt *wire.Packet) {
	idx := 0
	if pkt.Kind == wire.KindTCP {
		idx = int(pkt.Tuple().Hash() % uint64(len(m.rxq)))
	}
	if !m.rxq[idx].Push(pkt) {
		m.RxDroppedFull++
	}
	m.k.Wake(m) // packet arrival revives a quiescent machine
}

// Tick advances the machine: each free core drains its RX queue
// (charging softirq cost per packet) and timers fire.
func (m *LinuxMachine) Tick(cycle int64) {
	for i, q := range m.rxq {
		core := m.pool.Cores[i]
		for core.Free() {
			pkt, ok := q.Pop()
			if !ok {
				break
			}
			cost := m.costs.TCPRxPacket
			if pkt.Kind == wire.KindTCP {
				// GRO: packets of recently seen flows merge in the
				// driver and share the stack traversal [Corbet 2009].
				if m.gro[i].hit(pkt.Tuple()) {
					cost = m.costs.TCPRxPacketGRO
				}
				if pkt.PayloadLen > 0 {
					cost += int64((pkt.PayloadLen+63)/64) * m.costs.SkbPerByte
				}
			}
			core.Run(cpu.CatTCP, m.jitter(cost))
			m.ep.HandlePacket(pkt)
		}
	}
	m.ep.ExpireTimers()
}

// NextWork implements sim.Sleeper: queued RX packets wait for their
// core; stack timers fire at their deadline cycle. Packets in flight on
// the link arrive via kernel timers (DeliverPacket then wakes the
// machine), and socket calls run synchronously on app ticks, so neither
// needs an entry here.
func (m *LinuxMachine) NextWork(now int64) int64 {
	next := sim.Dormant
	for i, q := range m.rxq {
		if q.Len() == 0 {
			continue
		}
		w := m.pool.Cores[i].NextFree(now)
		if w <= now+1 {
			return now + 1
		}
		if w < next {
			next = w
		}
	}
	if d := m.ep.NextTimerNS(); d > 0 {
		if c := sim.NSToCycles(d); c < next {
			next = c
		}
	}
	if next <= now {
		return now + 1 // stale timer head: one tick pops it
	}
	return next
}

// groTable is a small per-queue LRU of recently merged flows, matching
// the GRO flow lists NAPI keeps per softirq batch.
type groTable struct {
	flows [8]wire.FourTuple
	used  [8]bool
	clock int
}

// hit reports whether the tuple is in the table, inserting it (LRU-ish
// round-robin replacement) when absent.
func (g *groTable) hit(t wire.FourTuple) bool {
	for i := range g.flows {
		if g.used[i] && g.flows[i] == t {
			return true
		}
	}
	g.flows[g.clock] = t
	g.used[g.clock] = true
	g.clock = (g.clock + 1) % len(g.flows)
	return false
}

// linuxThread is one app thread on the Linux stack.
type linuxThread struct {
	m    *LinuxMachine
	idx  int
	core *cpu.Core

	events   []ConnEvent
	lastConn *linuxConn // flow-locality tracking (bulk vs cold sends)
}

// Core implements Thread.
func (t *linuxThread) Core() *cpu.Core { return t.core }

// EventsPending reports readiness events awaiting the app's Poll (the
// apps' idleness probe; see apps.threadPending).
func (t *linuxThread) EventsPending() bool { return len(t.events) > 0 }

// Dial implements Thread.
func (t *linuxThread) Dial(remoteIdx int, port uint16) Conn {
	t.core.RunQueued(cpu.CatTCP, t.m.costs.TCPConnSetup)
	c := &linuxConn{th: t}
	c.inner = t.m.ep.Dial(t.m.remotes[remoteIdx], port)
	c.hook()
	return c
}

// Listen implements Thread.
func (t *linuxThread) Listen(port uint16) {
	th := t
	t.m.ep.Listen(port, func(sc *stack.Conn) {
		// SO_REUSEPORT-style distribution: the accepting thread is chosen
		// by flow hash so load spreads over listeners.
		target := th.m.threads[sc.TCB.Tuple.Hash()%uint64(len(th.m.threads))]
		c := &linuxConn{th: target, inner: sc}
		c.hook()
		target.core.RunQueued(cpu.CatTCP, th.m.costs.TCPConnSetup)
		target.events = append(target.events, ConnEvent{Kind: EvAccepted, Conn: c})
	})
}

// Poll implements Thread: returning events charges the epoll_wait +
// wakeup path to the kernel bucket.
func (t *linuxThread) Poll() []ConnEvent {
	out := t.events
	t.events = nil
	if len(out) > 0 {
		t.core.RunQueued(cpu.CatKernel, t.m.jitter(t.m.costs.EpollWait))
	}
	return out
}

// linuxConn adapts stack.Conn with CPU cost gating.
type linuxConn struct {
	th    *linuxThread
	inner *stack.Conn
}

func (c *linuxConn) hook() {
	c.inner.OnEstablished = func() {
		c.th.events = append(c.th.events, ConnEvent{Kind: EvConnected, Conn: c})
	}
	c.inner.OnData = func() {
		c.th.events = append(c.th.events, ConnEvent{Kind: EvReadable, Conn: c})
	}
	c.inner.OnAcked = func() {
		c.th.events = append(c.th.events, ConnEvent{Kind: EvWritable, Conn: c})
	}
	c.inner.OnPeerClosed = func() {
		c.th.events = append(c.th.events, ConnEvent{Kind: EvHangup, Conn: c})
	}
	c.inner.OnClosed = func() {
		c.th.events = append(c.th.events, ConnEvent{Kind: EvHangup, Conn: c})
	}
}

// TrySend implements Conn: a send() syscall through the kernel stack.
// The syscall shell bills the kernel bucket; the TCP TX work bills the
// TCP bucket (the split of Figs 1a/11).
func (c *linuxConn) TrySend(n int, payload []byte) int {
	if !c.th.core.Free() {
		return 0
	}
	cold := c.th.lastConn != c
	c.th.core.Run(cpu.CatKernel, c.th.m.jitter(c.th.m.shellCost(cold)))
	c.th.core.RunQueued(cpu.CatTCP, c.th.m.jitter(c.th.m.costs.LinuxSendTCPCost(n, !cold, cold)))
	c.th.lastConn = c
	if payload != nil {
		return c.inner.Send(payload[:n])
	}
	return c.inner.SendModelled(n, nil, nil)
}

// SendQueued implements Conn: the syscall queues behind current work.
func (c *linuxConn) SendQueued(n int, payload []byte) int {
	cold := c.th.lastConn != c
	c.th.core.RunQueued(cpu.CatKernel, c.th.m.jitter(c.th.m.shellCost(cold)))
	c.th.core.RunQueued(cpu.CatTCP, c.th.m.jitter(c.th.m.costs.LinuxSendTCPCost(n, !cold, cold)))
	c.th.lastConn = c
	if payload != nil {
		return c.inner.Send(payload[:n])
	}
	return c.inner.SendModelled(n, nil, nil)
}

// RecvQueued implements Conn.
func (c *linuxConn) RecvQueued(max int) int {
	n := c.inner.Available()
	if n > max {
		n = max
	}
	if n <= 0 {
		return 0
	}
	cold := c.th.lastConn != c
	c.th.core.RunQueued(cpu.CatKernel, c.th.m.jitter(c.th.m.shellCost(cold)))
	c.th.core.RunQueued(cpu.CatTCP, c.th.m.jitter(c.th.m.costs.LinuxRecvTCPCost(n, cold)))
	c.th.lastConn = c
	_, got := c.inner.Recv(n)
	return got
}

// TryRecv implements Conn.
func (c *linuxConn) TryRecv(max int) int {
	n := c.inner.Available()
	if n > max {
		n = max
	}
	if n <= 0 {
		return 0
	}
	if !c.th.core.Free() {
		return 0
	}
	cold := c.th.lastConn != c
	c.th.core.Run(cpu.CatKernel, c.th.m.jitter(c.th.m.shellCost(cold)))
	c.th.core.RunQueued(cpu.CatTCP, c.th.m.jitter(c.th.m.costs.LinuxRecvTCPCost(n, cold)))
	c.th.lastConn = c
	_, got := c.inner.Recv(n)
	return got
}

// Available implements Conn.
func (c *linuxConn) Available() int { return c.inner.Available() }

// SendSpace implements Conn.
func (c *linuxConn) SendSpace() int { return c.inner.SendSpace() }

// Close implements Conn.
func (c *linuxConn) Close() {
	c.th.core.RunQueued(cpu.CatTCP, c.th.m.costs.Syscall)
	c.inner.Close()
}

// Established implements Conn.
func (c *linuxConn) Established() bool { return c.inner.Established }

// PeerClosed implements Conn.
func (c *linuxConn) PeerClosed() bool { return c.inner.PeerClosed }

// Closed implements Conn.
func (c *linuxConn) Closed() bool { return c.inner.Closed }
