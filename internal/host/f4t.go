package host

import (
	"f4t/internal/cpu"
	"f4t/internal/engine"
	"f4t/internal/sim"
	"f4t/internal/softstack"
	"f4t/internal/wire"
)

// F4TMachine is a host whose threads reach the network through the F4T
// library: socket calls are function calls that write 16 B commands
// (§4.6), and the only recurring CPU work is posting commands and
// draining completions.
type F4TMachine struct {
	k     *sim.Kernel
	eng   *engine.Engine
	pool  *cpu.Pool
	costs cpu.Costs

	threads []*f4tThread
	remotes []wire.Addr
}

// NewF4TMachine builds a host with one thread per engine channel. The
// engine must have been configured with Channels == cores.
func NewF4TMachine(k *sim.Kernel, eng *engine.Engine, cores int, costs cpu.Costs, remotes []wire.Addr) *F4TMachine {
	m := &F4TMachine{
		k:       k,
		eng:     eng,
		pool:    cpu.NewPool(k, cores),
		costs:   costs,
		remotes: remotes,
	}
	for i := 0; i < cores; i++ {
		th := &f4tThread{
			m:     m,
			idx:   i,
			core:  m.pool.Cores[i],
			lib:   softstack.NewLib(k, eng, i),
			conns: make(map[*softstack.Socket]*f4tConn),
		}
		m.threads = append(m.threads, th)
	}
	return m
}

// Engine exposes the device (tests).
func (m *F4TMachine) Engine() *engine.Engine { return m.eng }

// Pool implements Machine.
func (m *F4TMachine) Pool() *cpu.Pool { return m.pool }

// Threads implements Machine.
func (m *F4TMachine) Threads() []Thread {
	out := make([]Thread, len(m.threads))
	for i, t := range m.threads {
		out[i] = t
	}
	return out
}

// Tick drains each thread's completion queue, charging per-completion
// library cost on its core (polling the software doorbell, §4.6).
func (m *F4TMachine) Tick(cycle int64) {
	for _, th := range m.threads {
		for th.lib.PendingCompletions() > 0 && th.core.Free() {
			th.core.Run(cpu.CatF4TLib, m.costs.F4TCompletion)
			th.lib.PollOne()
		}
	}
}

// NextWork implements sim.Sleeper: the machine only acts when a thread
// has completions to drain, and then only once its core frees up.
// Completions arrive via PCIe DMA kernel timers, which bound any skip.
func (m *F4TMachine) NextWork(now int64) int64 {
	next := sim.Dormant
	for _, th := range m.threads {
		if th.lib.PendingCompletions() == 0 {
			continue
		}
		w := th.core.NextFree(now)
		if w <= now+1 {
			return now + 1
		}
		if w < next {
			next = w
		}
	}
	return next
}

// f4tThread is one application thread over the F4T library.
type f4tThread struct {
	m     *F4TMachine
	idx   int
	core  *cpu.Core
	lib   *softstack.Lib
	conns map[*softstack.Socket]*f4tConn

	listening map[uint16]bool

	evScratch []ConnEvent // Poll's reusable translation buffer
}

// Core implements Thread.
func (t *f4tThread) Core() *cpu.Core { return t.core }

// EventsPending reports readiness events awaiting the app's Poll (the
// apps' idleness probe; see apps.threadPending).
func (t *f4tThread) EventsPending() bool { return t.lib.PendingEvents() > 0 }

// Dial implements Thread. It returns nil when the command queue is full
// (retry later).
func (t *f4tThread) Dial(remoteIdx int, port uint16) Conn {
	t.core.RunQueued(cpu.CatF4TLib, t.m.costs.F4TSendCost())
	s := t.lib.Dial(t.m.remotes[remoteIdx], port)
	if s == nil {
		return nil
	}
	c := &f4tConn{th: t, sock: s}
	t.conns[s] = c
	return c
}

// Listen implements Thread.
func (t *f4tThread) Listen(port uint16) {
	t.core.RunQueued(cpu.CatF4TLib, t.m.costs.F4TSendCost())
	t.lib.Listen(port)
}

// Poll implements Thread: map the library's readiness events (already
// paid for when drained) to the app-facing form. The returned slice is
// reused by the next Poll; apps consume events before polling again.
func (t *f4tThread) Poll() []ConnEvent {
	evs := t.lib.TakeEvents()
	if len(evs) == 0 {
		return nil
	}
	out := t.evScratch[:0]
	for _, ev := range evs {
		c := t.conns[ev.Sock]
		if c == nil {
			c = &f4tConn{th: t, sock: ev.Sock}
			t.conns[ev.Sock] = c
		}
		var kind ConnEventKind
		switch ev.Kind {
		case softstack.EvConnected:
			kind = EvConnected
		case softstack.EvAccepted:
			kind = EvAccepted
		case softstack.EvReadable:
			kind = EvReadable
		case softstack.EvWritable:
			kind = EvWritable
		case softstack.EvHangup:
			kind = EvHangup
			delete(t.conns, ev.Sock)
		}
		out = append(out, ConnEvent{Kind: kind, Conn: c})
	}
	t.evScratch = out
	return out
}

// f4tConn adapts softstack.Socket with CPU cost gating.
type f4tConn struct {
	th   *f4tThread
	sock *softstack.Socket
}

// TrySend implements Conn: one 16 B command, one amortized doorbell.
func (c *f4tConn) TrySend(n int, payload []byte) int {
	if !c.th.core.Run(cpu.CatF4TLib, c.th.m.costs.F4TSendCost()) {
		return 0
	}
	if payload != nil {
		return c.sock.Send(payload[:n])
	}
	return c.sock.SendModelled(n)
}

// SendQueued implements Conn.
func (c *f4tConn) SendQueued(n int, payload []byte) int {
	c.th.core.RunQueued(cpu.CatF4TLib, c.th.m.costs.F4TSendCost())
	if payload != nil {
		return c.sock.Send(payload[:n])
	}
	return c.sock.SendModelled(n)
}

// RecvQueued implements Conn.
func (c *f4tConn) RecvQueued(max int) int {
	n := c.sock.Available()
	if n > max {
		n = max
	}
	if n <= 0 {
		return 0
	}
	c.th.core.RunQueued(cpu.CatF4TLib, c.th.m.costs.F4TSendCost())
	_, got := c.sock.Recv(n)
	return got
}

// TryRecv implements Conn: advance the consumed pointer with one command.
func (c *f4tConn) TryRecv(max int) int {
	n := c.sock.Available()
	if n > max {
		n = max
	}
	if n <= 0 {
		return 0
	}
	if !c.th.core.Run(cpu.CatF4TLib, c.th.m.costs.F4TSendCost()) {
		return 0
	}
	_, got := c.sock.Recv(n)
	return got
}

// Available implements Conn.
func (c *f4tConn) Available() int { return c.sock.Available() }

// SendSpace implements Conn.
func (c *f4tConn) SendSpace() int { return c.sock.SendSpace() }

// Close implements Conn.
func (c *f4tConn) Close() {
	c.th.core.RunQueued(cpu.CatF4TLib, c.th.m.costs.F4TSendCost())
	c.sock.Close()
}

// Established implements Conn.
func (c *f4tConn) Established() bool { return c.sock.Established }

// PeerClosed implements Conn.
func (c *f4tConn) PeerClosed() bool { return c.sock.PeerClosed }

// Closed implements Conn.
func (c *f4tConn) Closed() bool { return c.sock.Closed }
