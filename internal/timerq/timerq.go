// Package timerq implements the timer module of §4.1.2 ③: per-flow timer
// deadlines generating timeout events. It is a lazy-deletion min-heap —
// re-arming pushes a new entry and stale pops are validated against the
// TCB's current deadline, which keeps Arm O(log n) with no cancel path,
// the same trade a hardware timer wheel makes.
package timerq

import (
	"container/heap"

	"f4t/internal/flow"
)

// entry is one scheduled expiry.
type entry struct {
	at   int64 // ns deadline
	id   flow.ID
	kind uint8 // flow.TO* bit
}

type entryHeap []entry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Queue holds pending timer deadlines for many flows.
type Queue struct {
	h entryHeap
}

// New returns an empty timer queue.
func New() *Queue { return &Queue{} }

// Len returns the number of pending (possibly stale) entries.
func (q *Queue) Len() int { return len(q.h) }

// Arm schedules a timeout of the given kind for the flow at ns deadline
// `at` (ignored when 0 = disarmed).
func (q *Queue) Arm(id flow.ID, kind uint8, at int64) {
	if at <= 0 {
		return
	}
	heap.Push(&q.h, entry{at: at, id: id, kind: kind})
}

// SyncFromTCB arms entries for every non-zero deadline in the TCB. Call
// after a processing pass; stale earlier entries are filtered at expiry.
func (q *Queue) SyncFromTCB(t *flow.TCB) {
	q.Arm(t.FlowID, flow.TORetrans, t.RetransAt)
	q.Arm(t.FlowID, flow.TOProbe, t.ProbeAt)
	q.Arm(t.FlowID, flow.TODelAck, t.DelAckAt)
	q.Arm(t.FlowID, flow.TOTimeWait, t.TimeWaitAt)
	q.Arm(t.FlowID, flow.TOKeepalive, t.KeepaliveAt)
}

// Expire pops every entry due at or before nowNS, validates it against
// the flow's current deadline via lookup, and invokes fire for the live
// ones. lookup returns nil for freed flows (entries are discarded).
func (q *Queue) Expire(nowNS int64, lookup func(flow.ID) *flow.TCB, fire func(id flow.ID, kind uint8)) {
	for len(q.h) > 0 && q.h[0].at <= nowNS {
		e := heap.Pop(&q.h).(entry)
		t := lookup(e.id)
		if t == nil {
			continue
		}
		var current int64
		switch e.kind {
		case flow.TORetrans:
			current = t.RetransAt
		case flow.TOProbe:
			current = t.ProbeAt
		case flow.TODelAck:
			current = t.DelAckAt
		case flow.TOTimeWait:
			current = t.TimeWaitAt
		case flow.TOKeepalive:
			current = t.KeepaliveAt
		}
		// Stale when the deadline moved or was disarmed since this entry
		// was pushed.
		if current == 0 || current > nowNS {
			continue
		}
		fire(e.id, e.kind)
	}
}

// NextDeadline returns the earliest pending deadline, or 0 when empty.
func (q *Queue) NextDeadline() int64 {
	if len(q.h) == 0 {
		return 0
	}
	return q.h[0].at
}
