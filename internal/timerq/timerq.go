// Package timerq implements the timer module of §4.1.2 ③: per-flow timer
// deadlines generating timeout events. Arming is lazy — re-arming pushes
// a new entry with no cancel path, and stale entries are validated
// against the TCB's current deadline at expiry — the same trade a
// hardware timer wheel makes.
//
// The store is a hierarchical timer wheel (the classic Varghese/Lauck
// scheme, and the shape of the paper's hardware timer module): three
// levels of 256 slots at 2^10, 2^18, and 2^26 ns granularity, plus an
// overflow list for deadlines beyond the ~17 s horizon. Arm is O(1);
// advancing collects only the slots the clock actually crossed, and an
// entry cascades through at most numLevels-1 refits over its lifetime.
// It replaced a lazy-deletion min-heap whose O(log n) churn and
// container/heap boxing dominated timer cost at high flow counts; the
// heap survives as the in-package reference oracle (heapref.go) for the
// differential property tests.
package timerq

import (
	"math/bits"

	"f4t/internal/flow"
)

const (
	slotBits  = 8
	numSlots  = 1 << slotBits // 256 slots per level
	slotMask  = numSlots - 1
	numLevels = 3

	// l0Shift sets level-0 granularity: 2^10 ns ≈ 1 µs per slot, 256 µs
	// per revolution — finer than any protocol timer (min delayed-ACK and
	// retransmission timeouts are hundreds of µs to ms), so a timer's
	// firing cycle is never quantized: entries are collected by slot but
	// fired only when their exact ns deadline has passed.
	l0Shift = 10
	// topShift is the coarsest level's granularity (2^26 ns ≈ 67 ms per
	// slot). Deadlines more than 256 top-level slots out (~17 s) go to
	// the overflow list, which is refitted once per top-level slot
	// crossing — long before any of its entries can come due.
	topShift = l0Shift + (numLevels-1)*slotBits
)

// entry is one scheduled expiry. seq is the global arm sequence number:
// the deterministic tie-break that makes same-deadline fire order
// insertion order.
type entry struct {
	at   int64 // ns deadline
	seq  uint64
	id   flow.ID
	kind uint8 // flow.TO* bit
}

type level struct {
	slots [numSlots][]entry
	// mins caches each slot's earliest deadline (valid while the slot is
	// occupied) and occ is the slot-occupancy bitmap. Together they make
	// NextDeadline O(levels) instead of a per-entry scan — the engine
	// polls it every stepped cycle — and let the every-call level-0
	// sweep skip slots holding only future entries.
	mins [numSlots]int64
	occ  [numSlots / 64]uint64
}

func (l *level) setOcc(idx int)   { l.occ[idx>>6] |= 1 << uint(idx&63) }
func (l *level) clearOcc(idx int) { l.occ[idx>>6] &^= 1 << uint(idx&63) }

// firstOccupied returns the first occupied slot at or after ring
// position `from` (wrapping), or -1 when the level is empty.
func (l *level) firstOccupied(from int) int {
	const words = numSlots / 64
	w0 := from >> 6
	if b := l.occ[w0] & (^uint64(0) << uint(from&63)); b != 0 {
		return w0<<6 + bits.TrailingZeros64(b)
	}
	for i := 1; i < words; i++ {
		w := (w0 + i) & (words - 1)
		if b := l.occ[w]; b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
	}
	if b := l.occ[w0] &^ (^uint64(0) << uint(from&63)); b != 0 {
		return w0<<6 + bits.TrailingZeros64(b)
	}
	return -1
}

// Queue holds pending timer deadlines for many flows.
type Queue struct {
	now  int64 // wheel time: the nowNS of the most recent Expire
	lv   [numLevels]level
	over []entry // deadlines beyond the wheel horizon
	ovMn int64   // earliest at in over; 0 when over is empty

	n   int
	seq uint64

	// Cached earliest pending deadline. Arm keeps it fresh (a new
	// earlier deadline just lowers it); any removal invalidates it and
	// NextDeadline recomputes from the wheel.
	minAt    int64
	minValid bool

	scratch []entry // due-entry collection buffer, reused across Expires

	// freeArrs recycles the backing arrays of emptied slots. Without it
	// the wheel never reaches an allocation-free steady state: timer
	// deadlines drift in phase relative to the 256-slot rings, so arms
	// keep landing in never-before-occupied slots (a fresh append-growth
	// each time) even after millions of cycles. A swept-empty slot
	// donates its array here; insert adopts one for a bare slot.
	freeArrs [][]entry
}

// New returns an empty timer queue.
func New() *Queue { return &Queue{} }

// Len returns the number of pending (possibly stale) entries.
func (q *Queue) Len() int { return q.n }

func shift(l int) uint { return uint(l0Shift + l*slotBits) }

// Arm schedules a timeout of the given kind for the flow at ns deadline
// `at` (ignored when 0 = disarmed).
func (q *Queue) Arm(id flow.ID, kind uint8, at int64) {
	if at <= 0 {
		return
	}
	q.seq++
	q.insert(entry{at: at, seq: q.seq, id: id, kind: kind})
	q.n++
	if q.minValid && at < q.minAt {
		q.minAt = at
	}
}

// SyncFromTCB arms entries for every non-zero deadline in the TCB. Call
// after a processing pass; stale earlier entries are filtered at expiry.
func (q *Queue) SyncFromTCB(t *flow.TCB) {
	q.Arm(t.FlowID, flow.TORetrans, t.RetransAt)
	q.Arm(t.FlowID, flow.TOProbe, t.ProbeAt)
	q.Arm(t.FlowID, flow.TODelAck, t.DelAckAt)
	q.Arm(t.FlowID, flow.TOTimeWait, t.TimeWaitAt)
	q.Arm(t.FlowID, flow.TOKeepalive, t.KeepaliveAt)
}

// insert places the entry in the finest level whose window covers its
// deadline, or the overflow list beyond the wheel horizon. Overdue
// deadlines are clamped into the current slot so the next Expire
// collects them.
func (q *Queue) insert(e entry) {
	at := e.at
	if at < q.now {
		at = q.now
	}
	for l := 0; l < numLevels; l++ {
		sh := shift(l)
		if (at>>sh)-(q.now>>sh) < numSlots {
			lv := &q.lv[l]
			idx := int((at >> sh) & slotMask)
			if len(lv.slots[idx]) == 0 {
				lv.setOcc(idx)
				lv.mins[idx] = e.at
				if cap(lv.slots[idx]) == 0 {
					if k := len(q.freeArrs) - 1; k >= 0 {
						lv.slots[idx] = q.freeArrs[k]
						q.freeArrs[k] = nil
						q.freeArrs = q.freeArrs[:k]
					}
				}
			} else if e.at < lv.mins[idx] {
				lv.mins[idx] = e.at
			}
			lv.slots[idx] = append(lv.slots[idx], e)
			return
		}
	}
	if q.ovMn == 0 || e.at < q.ovMn {
		q.ovMn = e.at
	}
	q.over = append(q.over, e)
}

// Expire advances the wheel to nowNS, pops every entry due at or before
// it, validates each against the flow's current deadline via lookup, and
// invokes fire for the live ones in (deadline, arm-order) order. lookup
// returns nil for freed flows (entries are discarded).
func (q *Queue) Expire(nowNS int64, lookup func(flow.ID) *flow.TCB, fire func(id flow.ID, kind uint8)) {
	prev := q.now
	q.now = nowNS
	if q.n == 0 {
		return
	}
	due := q.scratch[:0]

	// Overflow: refit once per top-level slot crossing (entries re-enter
	// the wheel long before they come due), plus a safety net for an
	// advance that overshoots the horizon in one jump.
	if len(q.over) > 0 && (prev>>topShift != nowNS>>topShift || q.ovMn <= nowNS) {
		due = q.refitOverflow(nowNS, due)
	}

	// Upper levels cascade only when their cursor moved: an entry parked
	// there cannot come due before the cursor crosses into its slot, and
	// a crossed entry with a future deadline always refits into a finer
	// level (its distance has shrunk below the finer window).
	for l := numLevels - 1; l >= 1; l-- {
		if prev>>shift(l) != nowNS>>shift(l) {
			due = q.sweep(l, prev, nowNS, due)
		}
	}
	// Level 0 is swept every call: its current slot may hold entries
	// whose exact deadline passed inside the slot's 1 µs span.
	due = q.sweep(0, prev, nowNS, due)

	q.scratch = due[:0] // keep the backing array for the next Expire
	if len(due) == 0 {
		return
	}
	q.n -= len(due)
	q.minValid = false
	sortDue(due)
	for i := range due {
		e := &due[i]
		t := lookup(e.id)
		if t == nil {
			continue
		}
		var current int64
		switch e.kind {
		case flow.TORetrans:
			current = t.RetransAt
		case flow.TOProbe:
			current = t.ProbeAt
		case flow.TODelAck:
			current = t.DelAckAt
		case flow.TOTimeWait:
			current = t.TimeWaitAt
		case flow.TOKeepalive:
			current = t.KeepaliveAt
		}
		// Stale when the deadline moved or was disarmed since this entry
		// was pushed.
		if current == 0 || current > nowNS {
			continue
		}
		fire(e.id, e.kind)
	}
}

// sweep visits the level's slots crossed between prev and now (capped at
// one full revolution — a longer jump meets every slot once), collecting
// due entries and refitting future ones into finer levels.
func (q *Queue) sweep(l int, prev, now int64, due []entry) []entry {
	sh := shift(l)
	first := prev >> sh
	span := now>>sh - first
	if span > numSlots-1 {
		span = numSlots - 1
	}
	lv := &q.lv[l]
	for s := int64(0); s <= span; s++ {
		idx := int((first + s) & slotMask)
		slot := lv.slots[idx]
		if len(slot) == 0 {
			continue
		}
		if l == 0 && lv.mins[idx] > now {
			// Nothing in this slot is due yet, and level-0 entries never
			// refit — skip the compaction. This matters because level 0
			// is swept every Expire: without the check, a busy engine
			// re-copies the current slot's pending entries each tick.
			continue
		}
		kept := slot[:0]
		var kmin int64
		for _, e := range slot {
			switch {
			case e.at <= now:
				due = append(due, e)
			case l > 0 && e.at>>sh <= now>>sh:
				// The cursor entered the entry's own slot, so it fits a
				// finer level now (within one coarse slot, the finer-level
				// distance is < numSlots); insert never re-targets the
				// slot being swept.
				q.insert(e)
			default:
				// Future deadline — including an entry that merely shares
				// this ring position while sitting a full revolution
				// ahead; it stays until the cursor reaches its absolute
				// slot.
				if kmin == 0 || e.at < kmin {
					kmin = e.at
				}
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			lv.clearOcc(idx)
			// Donate the emptied slot's array so the next bare slot —
			// likely at a different ring position — reuses it instead of
			// growing from nil.
			lv.slots[idx] = nil
			if cap(kept) > 0 {
				q.freeArrs = append(q.freeArrs, kept)
			}
		} else {
			lv.slots[idx] = kept
			lv.mins[idx] = kmin
		}
	}
	return due
}

// refitOverflow drains overflow entries back into the wheel (or the due
// list); entries still beyond the horizon are kept and ovMn recomputed.
func (q *Queue) refitOverflow(now int64, due []entry) []entry {
	kept := q.over[:0]
	q.ovMn = 0
	for _, e := range q.over {
		switch {
		case e.at <= now:
			due = append(due, e)
		case (e.at>>topShift)-(now>>topShift) < numSlots:
			q.insert(e) // fits the top level now, never re-overflows
		default:
			if q.ovMn == 0 || e.at < q.ovMn {
				q.ovMn = e.at
			}
			kept = append(kept, e)
		}
	}
	q.over = kept
	return due
}

// sortDue orders the due list by (deadline, arm sequence) — insertion
// sort, since an advance rarely collects more than a handful of entries,
// and sort.Slice would allocate on this per-tick path.
func sortDue(s []entry) {
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i - 1
		for j >= 0 && (s[j].at > e.at || (s[j].at == e.at && s[j].seq > e.seq)) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = e
	}
}

// NextDeadline returns the earliest pending deadline, or 0 when empty.
// The value is exact (not a slot-granularity bound): the engine's
// NextWork idle promise depends on it, and an over-estimate would let
// the skipping kernel sleep past a timer the shadow kernel fires.
func (q *Queue) NextDeadline() int64 {
	if q.n == 0 {
		return 0
	}
	if !q.minValid {
		q.minAt = q.computeMin()
		q.minValid = true
	}
	return q.minAt
}

// computeMin takes each level's first occupied slot at or after its
// cursor — within a level, slots partition disjoint deadline ranges in
// ring order, so the first occupied one contains that level's earliest
// entry, and its cached slot-min gives the exact deadline. The global
// minimum can live in any level (a coarse entry armed long ago may
// precede everything currently in level 0), hence the min across all of
// them plus the overflow. Bitmap scan + cached mins keep this O(levels):
// it runs on nearly every stepped cycle under load, since any collecting
// Expire invalidates the cache and the engine's NextWork polls it.
func (q *Queue) computeMin() int64 {
	var min int64
	for l := 0; l < numLevels; l++ {
		lv := &q.lv[l]
		cursor := int((q.now >> shift(l)) & slotMask)
		if idx := lv.firstOccupied(cursor); idx >= 0 {
			if m := lv.mins[idx]; min == 0 || m < min {
				min = m
			}
		}
	}
	if q.ovMn != 0 && (min == 0 || q.ovMn < min) {
		min = q.ovMn
	}
	return min
}
