package timerq

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"f4t/internal/flow"
)

// timerStore is the surface shared by the wheel and the heap oracle.
type timerStore interface {
	Len() int
	Arm(id flow.ID, kind uint8, at int64)
	SyncFromTCB(t *flow.TCB)
	Expire(nowNS int64, lookup func(flow.ID) *flow.TCB, fire func(id flow.ID, kind uint8))
	NextDeadline() int64
}

// TestWheelMatchesHeap drives the wheel and the reference heap through
// identical randomized arm/re-arm/advance schedules and asserts they
// fire the same (id, kind) sets at the same deadlines, report the same
// NextDeadline, and hold the same number of pending entries throughout.
func TestWheelMatchesHeap(t *testing.T) {
	kinds := []uint8{flow.TORetrans, flow.TOProbe, flow.TODelAck, flow.TOTimeWait, flow.TOKeepalive}
	setDeadline := func(tcb *flow.TCB, kind uint8, at int64) {
		switch kind {
		case flow.TORetrans:
			tcb.RetransAt = at
		case flow.TOProbe:
			tcb.ProbeAt = at
		case flow.TODelAck:
			tcb.DelAckAt = at
		case flow.TOTimeWait:
			tcb.TimeWaitAt = at
		case flow.TOKeepalive:
			tcb.KeepaliveAt = at
		}
	}
	// Deltas span every wheel level: sub-slot, level 0/1/2, and past the
	// ~17 s horizon into the overflow list.
	deltas := []int64{200, 900, 40_000, 3_000_000, 900_000_000, 20_000_000_000}

	for _, seed := range []int64{1, 7, 23, 99} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const flows = 64
			tcbs := make([]flow.TCB, flows)
			for i := range tcbs {
				tcbs[i].FlowID = flow.ID(i)
			}
			lookup := func(id flow.ID) *flow.TCB {
				if rng.Intn(50) == 0 {
					return nil // occasionally "freed" — both sides must agree
				}
				return &tcbs[id]
			}
			_ = lookup

			wheel := New()
			oracle := newHeapQueue()
			now := int64(0)

			for step := 0; step < 4000; step++ {
				switch rng.Intn(4) {
				case 0, 1: // re-arm a random subset of one flow's deadlines
					tcb := &tcbs[rng.Intn(flows)]
					for _, k := range kinds {
						switch rng.Intn(3) {
						case 0:
							setDeadline(tcb, k, now+deltas[rng.Intn(len(deltas))]+int64(rng.Intn(1000)))
						case 1:
							setDeadline(tcb, k, 0) // disarm
						}
					}
					wheel.SyncFromTCB(tcb)
					oracle.SyncFromTCB(tcb)
				case 2: // direct Arm, including already-due deadlines
					id := flow.ID(rng.Intn(flows))
					k := kinds[rng.Intn(len(kinds))]
					at := now - 500 + int64(rng.Intn(2000))
					setDeadline(&tcbs[id], k, at)
					wheel.Arm(id, k, at)
					oracle.Arm(id, k, at)
				case 3: // advance time and expire on both
					now += deltas[rng.Intn(len(deltas))] / int64(1+rng.Intn(100))
					look := func(id flow.ID) *flow.TCB { return &tcbs[id] }
					var wf, of []string
					wheel.Expire(now, look, func(id flow.ID, kind uint8) {
						wf = append(wf, fmt.Sprintf("%d/%d", id, kind))
					})
					oracle.Expire(now, look, func(id flow.ID, kind uint8) {
						of = append(of, fmt.Sprintf("%d/%d", id, kind))
					})
					sort.Strings(wf)
					sort.Strings(of)
					if fmt.Sprint(wf) != fmt.Sprint(of) {
						t.Fatalf("step %d now=%d: wheel fired %v, heap fired %v", step, now, wf, of)
					}
				}
				if w, o := wheel.NextDeadline(), oracle.NextDeadline(); w != o {
					t.Fatalf("step %d now=%d: wheel NextDeadline=%d, heap=%d", step, now, w, o)
				}
				if w, o := wheel.Len(), oracle.Len(); w != o {
					t.Fatalf("step %d now=%d: wheel Len=%d, heap Len=%d", step, now, w, o)
				}
			}
		})
	}
}

// TestWheelOverflowHorizon pins the overflow path: a deadline past the
// ~17 s wheel horizon is reported exactly by NextDeadline, survives the
// cascade back into the wheel, and fires exactly once at its deadline.
func TestWheelOverflowHorizon(t *testing.T) {
	q := New()
	const deadline = int64(30_000_000_000) // 30 s
	tcb := &flow.TCB{FlowID: 5, KeepaliveAt: deadline}
	look := func(id flow.ID) *flow.TCB { return tcb }
	q.SyncFromTCB(tcb)
	if got := q.NextDeadline(); got != deadline {
		t.Fatalf("NextDeadline = %d, want %d", got, deadline)
	}
	var fired int
	for now := int64(0); now <= deadline+1_000_000_000; now += 250_000_000 {
		q.Expire(now, look, func(id flow.ID, kind uint8) {
			fired++
			if now < deadline {
				t.Fatalf("fired at %d, before deadline %d", now, deadline)
			}
			if id != 5 || kind != flow.TOKeepalive {
				t.Fatalf("fired (%d, %d)", id, kind)
			}
		})
		if fired == 0 {
			if got := q.NextDeadline(); got != deadline {
				t.Fatalf("now=%d: NextDeadline = %d, want %d", now, got, deadline)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
}

// TestWheelFireOrderDeterministic pins the wheel's tie-break: entries
// collected by one advance fire in (deadline, arm-order) order.
func TestWheelFireOrderDeterministic(t *testing.T) {
	q := New()
	tcb := &flow.TCB{FlowID: 1, RetransAt: 100, ProbeAt: 100, DelAckAt: 50}
	look := func(id flow.ID) *flow.TCB { return tcb }
	q.Arm(1, flow.TORetrans, 100)
	q.Arm(1, flow.TOProbe, 100)
	q.Arm(1, flow.TODelAck, 50)
	var got []uint8
	q.Expire(200, look, func(id flow.ID, kind uint8) { got = append(got, kind) })
	want := []uint8{flow.TODelAck, flow.TORetrans, flow.TOProbe}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// benchmarkChurn measures steady-state arm/re-arm churn: every iteration
// re-arms one flow's retransmission deadline, and periodic Expire calls
// advance the clock, firing and re-arming due entries — the access
// pattern the engine's fireTimers/SyncFromTCB path produces at scale.
func benchmarkChurn(b *testing.B, q timerStore, flows int) {
	tcbs := make([]flow.TCB, flows)
	look := func(id flow.ID) *flow.TCB { return &tcbs[id] }
	now := int64(0)
	for i := range tcbs {
		tcbs[i].FlowID = flow.ID(i)
		tcbs[i].RetransAt = int64(200_000 + i*37)
		q.Arm(flow.ID(i), flow.TORetrans, tcbs[i].RetransAt)
	}
	fire := func(id flow.ID, kind uint8) {
		t := &tcbs[id]
		t.RetransAt = now + 200_000 + int64(id%1024)*17
		q.Arm(id, kind, t.RetransAt)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := flow.ID(i % flows)
		now += 400
		t := &tcbs[id]
		t.RetransAt = now + 150_000 + int64(i%97)*1000
		q.Arm(id, flow.TORetrans, t.RetransAt)
		if i%64 == 0 {
			q.Expire(now, look, fire)
		}
	}
}

func BenchmarkWheelChurn1k(b *testing.B)  { benchmarkChurn(b, New(), 1_000) }
func BenchmarkWheelChurn64k(b *testing.B) { benchmarkChurn(b, New(), 64_000) }
func BenchmarkWheelChurn1M(b *testing.B)  { benchmarkChurn(b, New(), 1_000_000) }
func BenchmarkHeapChurn1k(b *testing.B)   { benchmarkChurn(b, newHeapQueue(), 1_000) }
func BenchmarkHeapChurn64k(b *testing.B)  { benchmarkChurn(b, newHeapQueue(), 64_000) }
func BenchmarkHeapChurn1M(b *testing.B)   { benchmarkChurn(b, newHeapQueue(), 1_000_000) }
