package timerq

import "f4t/internal/flow"

// heapQueue is the lazy-deletion min-heap the wheel replaced, kept as
// the in-package reference oracle: the differential property tests
// assert that wheel and heap fire identical (id, kind) sets at identical
// deadlines under randomized arm/advance schedules, and the benchmarks
// measure the swap. Semantics match Queue exactly; only the fire order
// of same-advance entries differs (the heap's at-ties are unspecified,
// the wheel's are arm-order).
type heapQueue struct {
	h []entry
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (q *heapQueue) Len() int { return len(q.h) }

func (q *heapQueue) Arm(id flow.ID, kind uint8, at int64) {
	if at <= 0 {
		return
	}
	q.push(entry{at: at, id: id, kind: kind})
}

func (q *heapQueue) SyncFromTCB(t *flow.TCB) {
	q.Arm(t.FlowID, flow.TORetrans, t.RetransAt)
	q.Arm(t.FlowID, flow.TOProbe, t.ProbeAt)
	q.Arm(t.FlowID, flow.TODelAck, t.DelAckAt)
	q.Arm(t.FlowID, flow.TOTimeWait, t.TimeWaitAt)
	q.Arm(t.FlowID, flow.TOKeepalive, t.KeepaliveAt)
}

func (q *heapQueue) Expire(nowNS int64, lookup func(flow.ID) *flow.TCB, fire func(id flow.ID, kind uint8)) {
	for len(q.h) > 0 && q.h[0].at <= nowNS {
		e := q.pop()
		t := lookup(e.id)
		if t == nil {
			continue
		}
		var current int64
		switch e.kind {
		case flow.TORetrans:
			current = t.RetransAt
		case flow.TOProbe:
			current = t.ProbeAt
		case flow.TODelAck:
			current = t.DelAckAt
		case flow.TOTimeWait:
			current = t.TimeWaitAt
		case flow.TOKeepalive:
			current = t.KeepaliveAt
		}
		if current == 0 || current > nowNS {
			continue
		}
		fire(e.id, e.kind)
	}
}

func (q *heapQueue) NextDeadline() int64 {
	if len(q.h) == 0 {
		return 0
	}
	return q.h[0].at
}

func (q *heapQueue) push(e entry) {
	q.h = append(q.h, e)
	s := q.h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].at <= s[i].at {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (q *heapQueue) pop() entry {
	s := q.h
	n := len(s) - 1
	e := s[0]
	s[0] = s[n]
	s = s[:n]
	q.h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l].at < s[min].at {
			min = l
		}
		if r < n && s[r].at < s[min].at {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return e
}
