package timerq

import (
	"testing"

	"f4t/internal/flow"
)

func lookup(tcbs map[flow.ID]*flow.TCB) func(flow.ID) *flow.TCB {
	return func(id flow.ID) *flow.TCB { return tcbs[id] }
}

func TestExpireFiresDueTimers(t *testing.T) {
	q := New()
	tcb := &flow.TCB{FlowID: 1, RetransAt: 100}
	tcbs := map[flow.ID]*flow.TCB{1: tcb}
	q.SyncFromTCB(tcb)

	var fired []uint8
	q.Expire(50, lookup(tcbs), func(id flow.ID, kind uint8) { fired = append(fired, kind) })
	if len(fired) != 0 {
		t.Fatal("fired before the deadline")
	}
	q.Expire(100, lookup(tcbs), func(id flow.ID, kind uint8) { fired = append(fired, kind) })
	if len(fired) != 1 || fired[0] != flow.TORetrans {
		t.Fatalf("fired = %v", fired)
	}
}

func TestStaleEntriesFiltered(t *testing.T) {
	q := New()
	tcb := &flow.TCB{FlowID: 1, RetransAt: 100}
	tcbs := map[flow.ID]*flow.TCB{1: tcb}
	q.SyncFromTCB(tcb)
	// The deadline moves later (re-arm) — the stale heap entry must not fire.
	tcb.RetransAt = 500
	q.SyncFromTCB(tcb)

	var fired int
	q.Expire(200, lookup(tcbs), func(flow.ID, uint8) { fired++ })
	if fired != 0 {
		t.Fatal("stale entry fired")
	}
	q.Expire(500, lookup(tcbs), func(flow.ID, uint8) { fired++ })
	if fired != 1 {
		t.Fatalf("re-armed entry fired %d times", fired)
	}
}

func TestDisarmedTimerNeverFires(t *testing.T) {
	q := New()
	tcb := &flow.TCB{FlowID: 1, ProbeAt: 100}
	tcbs := map[flow.ID]*flow.TCB{1: tcb}
	q.SyncFromTCB(tcb)
	tcb.ProbeAt = 0 // disarmed
	var fired int
	q.Expire(1000, lookup(tcbs), func(flow.ID, uint8) { fired++ })
	if fired != 0 {
		t.Fatal("disarmed timer fired")
	}
}

func TestFreedFlowEntriesDropped(t *testing.T) {
	q := New()
	tcb := &flow.TCB{FlowID: 1, RetransAt: 100, DelAckAt: 150}
	q.SyncFromTCB(tcb)
	var fired int
	q.Expire(1000, func(flow.ID) *flow.TCB { return nil }, func(flow.ID, uint8) { fired++ })
	if fired != 0 || q.Len() != 0 {
		t.Fatalf("freed-flow entries: fired=%d len=%d", fired, q.Len())
	}
}

func TestAllKindsSync(t *testing.T) {
	q := New()
	tcb := &flow.TCB{FlowID: 3, RetransAt: 10, ProbeAt: 20, DelAckAt: 30, TimeWaitAt: 40}
	tcbs := map[flow.ID]*flow.TCB{3: tcb}
	q.SyncFromTCB(tcb)
	var kinds []uint8
	q.Expire(100, lookup(tcbs), func(id flow.ID, kind uint8) { kinds = append(kinds, kind) })
	want := []uint8{flow.TORetrans, flow.TOProbe, flow.TODelAck, flow.TOTimeWait}
	if len(kinds) != 4 {
		t.Fatalf("kinds = %v", kinds)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("order: %v want %v", kinds, want)
		}
	}
}

func TestNextDeadline(t *testing.T) {
	q := New()
	if q.NextDeadline() != 0 {
		t.Fatal("empty queue deadline")
	}
	q.Arm(1, flow.TORetrans, 500)
	q.Arm(2, flow.TOProbe, 300)
	if q.NextDeadline() != 300 {
		t.Fatalf("next = %d", q.NextDeadline())
	}
}
