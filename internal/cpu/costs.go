// Package cpu models the host processor of the evaluation testbed: Xeon
// Gold 5118 cores at 2.3 GHz executing work items with calibrated
// per-operation costs, and cycle accounting by category for the CPU
// utilization breakdowns (Figs 1a, 11).
//
// Every constant below is derived from a number the paper itself reports
// (or a measurement the paper cites); the figures are then *emergent*
// from simulation — the model fixes per-operation costs, not ratios.
package cpu

// CoreHz is the evaluation CPU frequency (§5: Xeon Gold 5118, 2.3 GHz).
const CoreHz = 2_300_000_000

// CyclesToNS converts CPU cycles to nanoseconds (rounded up).
func CyclesToNS(cycles int64) int64 {
	return (cycles*1_000_000_000 + CoreHz - 1) / CoreHz
}

// Category buckets CPU time for the utilization breakdowns.
type Category uint8

// Accounting categories matching Fig 1a / Fig 11.
const (
	CatApp    Category = iota // application work (Nginx request handling)
	CatTCP                    // TCP/IP stack processing
	CatKernel                 // other kernel work (syscall shell, vfs, scheduling)
	CatF4TLib                 // F4T library (command posting, completion polling)
	CatIdle
	numCategories
)

// Names for reporting.
var categoryNames = [...]string{"app", "tcp", "kernel-other", "f4t-lib", "idle"}

// Name returns the category label used in the breakdown tables.
func (c Category) Name() string { return categoryNames[c] }

// Costs is the calibrated per-operation cost table, in CPU cycles.
//
// Calibration anchors (all from the paper):
//   - Fig 8a: Linux bulk 128 B with 8 cores reaches 8.3 Gbps ⇒
//     ~1.01 Mrps/core ⇒ ~2,270 cycles per send() incl. TCP TX work.
//   - Fig 8b: Linux round-robin (16 flows/core) reaches 0.126 Gbps on one
//     core ⇒ ~0.123 Mrps ⇒ ~18,700 cycles/request: losing TSO batching
//     and flow locality multiplies per-request work ~8× (per-packet
//     sk_buff/qdisc/driver work plus cold-cache flow state).
//   - §1: 104 cores saturate 100 Gbps at 128 B ⇒ ~0.93 Mrps/core, which
//     cross-checks the bulk figure (the 128 B wire-rate is 60.7 Mpps).
//   - Fig 8a: F4T reaches 45 Gbps (44 Mrps) at 128 B on ONE core ⇒
//     ~52 cycles per request in the F4T library (queue write + amortized
//     MMIO doorbell).
//   - Fig 8b: F4T round-robin one core = 34 Mrps ⇒ ~68 cycles/request —
//     the extra ~16 cycles are the additional per-packet completions.
//   - Fig 1a: Nginx on Linux spends 37 % of cycles in TCP; with the
//     TCP cost fixed above, AppRequestWork + kernel-other are sized so
//     the share lands there (≈256 B responses, vfs_read in the kernel
//     bucket per Fig 11's observation).
type Costs struct {
	// Linux software stack path.
	Syscall        int64 // mode switch in/out (kept even with TSO on)
	TCPTxBulk      int64 // per send() TCP TX work with TSO+flow locality
	TCPTxSmall     int64 // per send() without batching (round-robin traffic)
	TCPRxPacket    int64 // softirq RX path per packet (ACK or data)
	TCPRxPacketGRO int64 // per additional packet merged by GRO [22]
	TCPConnSetup   int64 // handshake processing per connection
	SkbPerByte     int64 // copy+checksum cost per 64 payload bytes
	FlowSwitch     int64 // cache/TLB penalty when touching a cold flow

	// F4T library path (§4.6).
	F4TPostCmd     int64 // build 16 B command + queue write
	F4TDoorbell    int64 // MMIO write, amortized over the batch
	F4TDoorbellBatch int64 // commands per doorbell (MMIO batching)
	F4TCompletion  int64 // poll + apply one completion
	F4TPollMiss    int64 // one empty poll iteration

	// Application (Nginx model) work per HTTP request.
	AppParseRequest int64 // HTTP parse + route
	AppBuildResponse int64 // header render + logging
	VfsRead         int64 // file fetch from page cache (kernel bucket, Fig 11)
	EpollWait       int64 // epoll_wait + wakeup amortized per event batch

	// Linux-path timing jitter (deterministic, seeded): every kernel
	// operation varies by ±JitterPct, and SpikeProb of them hit a
	// SpikeCycles preemption/softirq stall — the source of the Linux
	// tail in Fig 12.
	JitterPct   int64
	SpikeProb   float64
	SpikeCycles int64

	// wrk-style load generator per request (client side).
	GenRequest int64
}

// DefaultCosts returns the calibrated table (see the type comment for the
// derivation of each anchor).
func DefaultCosts() Costs {
	return Costs{
		Syscall:      900,
		TCPTxBulk:    1500,
		TCPTxSmall:   11000,
		TCPRxPacket:  2800,
		TCPRxPacketGRO: 400,
		TCPConnSetup: 12000,
		SkbPerByte:   10, // per 64 B chunk
		FlowSwitch:   2400,

		F4TPostCmd:       40,
		F4TDoorbell:      300,
		F4TDoorbellBatch: 32,
		F4TCompletion:    35,
		F4TPollMiss:      20,

		AppParseRequest:  2300,
		AppBuildResponse: 1800,
		VfsRead:          1050,
		EpollWait:        900,

		JitterPct:   15,
		SpikeProb:   0.0001,
		SpikeCycles: 2_500_000, // ~1.1 ms involuntary preemption / softirq storm

		GenRequest: 800,
	}
}

// LinuxSendTCPCost returns the TCP-stack cycles of one send() of n
// bytes (the syscall shell is charged separately to the kernel bucket).
// bulk selects the TSO/flow-locality fast path; cold adds the
// flow-switch penalty.
func (c *Costs) LinuxSendTCPCost(n int, bulk, cold bool) int64 {
	var cost int64
	if bulk {
		cost += c.TCPTxBulk
	} else {
		cost += c.TCPTxSmall
	}
	cost += int64((n+63)/64) * c.SkbPerByte
	if cold {
		cost += c.FlowSwitch
	}
	return cost
}

// LinuxRecvTCPCost returns the TCP-stack cycles of one recv() consuming
// n bytes (copy out of the socket buffer), excluding the syscall shell.
func (c *Costs) LinuxRecvTCPCost(n int, cold bool) int64 {
	cost := int64((n+63)/64) * c.SkbPerByte
	if cold {
		cost += c.FlowSwitch / 2 // the other half hits the kernel shell
	}
	return cost
}

// F4TSendCost returns the cycles one F4T-library send() costs: a plain
// function call that writes a 16 B command, with the doorbell MMIO
// amortized across the batch (§4.6).
func (c *Costs) F4TSendCost() int64 {
	return c.F4TPostCmd + c.F4TDoorbell/c.F4TDoorbellBatch
}
