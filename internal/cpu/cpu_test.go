package cpu

import (
	"testing"

	"f4t/internal/sim"
)

func TestCoreSerializesWork(t *testing.T) {
	k := sim.New()
	c := NewCore(k)
	if !c.Run(CatApp, 2300) { // 2300 CPU cycles = 1 us = 250 sim cycles
		t.Fatal("idle core refused work")
	}
	if c.Run(CatApp, 100) {
		t.Fatal("busy core accepted work")
	}
	k.Run(249)
	if c.Free() {
		t.Fatal("core free too early")
	}
	k.Run(2)
	if !c.Free() {
		t.Fatal("core still busy after the work duration")
	}
}

func TestRunQueuedExtends(t *testing.T) {
	k := sim.New()
	c := NewCore(k)
	c.Run(CatApp, 2300)
	first := c.BusyUntil()
	done := c.RunQueued(CatTCP, 2300)
	if done <= first {
		t.Fatal("queued work did not extend the busy period")
	}
	if c.Spent(CatApp) != 2300 || c.Spent(CatTCP) != 2300 {
		t.Fatalf("accounting: app=%d tcp=%d", c.Spent(CatApp), c.Spent(CatTCP))
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	k := sim.New()
	c := NewCore(k)
	// Half the time busy on app work.
	for i := 0; i < 10; i++ {
		c.RunQueued(CatApp, 2300) // 1 us each
	}
	k.Run(5000) // 20 us elapsed, 10 us busy
	b := c.Breakdown()
	var sum float64
	for _, v := range b {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("breakdown sums to %.3f: %v", sum, b)
	}
	if b["app"] < 0.45 || b["app"] > 0.55 {
		t.Fatalf("app share = %.2f, want ~0.5", b["app"])
	}
	if b["idle"] < 0.45 || b["idle"] > 0.55 {
		t.Fatalf("idle share = %.2f, want ~0.5", b["idle"])
	}
}

func TestResetAccounting(t *testing.T) {
	k := sim.New()
	c := NewCore(k)
	c.RunQueued(CatTCP, 9999)
	c.ResetAccounting()
	if c.Spent(CatTCP) != 0 {
		t.Fatal("reset did not clear accounting")
	}
}

func TestCostAnchorsFromPaper(t *testing.T) {
	costs := DefaultCosts()
	// Fig 8a anchor: Linux bulk send ≈ 2.3k cycles ⇒ ~1 Mrps/core.
	bulk := costs.Syscall + costs.LinuxSendTCPCost(128, true, false)
	rps := float64(CoreHz) / float64(bulk)
	if rps < 0.8e6 || rps > 1.3e6 {
		t.Errorf("Linux bulk send rate/core = %.2f Mrps, paper anchor ~1", rps/1e6)
	}
	// Fig 8b anchor: cold small send ≈ 15-20k cycles ⇒ ~0.12-0.16 Mrps/core.
	small := costs.Syscall + costs.FlowSwitch/2 + costs.LinuxSendTCPCost(128, false, true)
	rps = float64(CoreHz) / float64(small)
	if rps < 0.1e6 || rps > 0.25e6 {
		t.Errorf("Linux cold send rate/core = %.2f Mrps, paper anchor ~0.12", rps/1e6)
	}
	// Fig 8a anchor: F4T library send ≈ 50 cycles ⇒ ~45 Mrps/core.
	f4t := costs.F4TSendCost()
	rps = float64(CoreHz) / float64(f4t)
	if rps < 35e6 || rps > 55e6 {
		t.Errorf("F4T send rate/core = %.1f Mrps, paper anchor ~44", rps/1e6)
	}
}

func TestCyclesToNS(t *testing.T) {
	if CyclesToNS(2300) != 1000 {
		t.Fatalf("2300 cycles at 2.3 GHz = %d ns, want 1000", CyclesToNS(2300))
	}
	if CyclesToNS(1) != 1 {
		t.Fatal("sub-ns work must round up to 1 ns")
	}
}

func TestPoolAggregation(t *testing.T) {
	k := sim.New()
	p := NewPool(k, 4)
	for _, c := range p.Cores {
		c.RunQueued(CatTCP, 1000)
	}
	if p.SpentTotal(CatTCP) != 4000 {
		t.Fatalf("pool total = %d", p.SpentTotal(CatTCP))
	}
	p.ResetAccounting()
	if p.SpentTotal(CatTCP) != 0 {
		t.Fatal("pool reset failed")
	}
}
