package cpu

import "f4t/internal/sim"

// Core models one CPU core in simulated time: callers attempt operations
// with known cycle costs; the core serializes them and accounts each to
// a category. Time is the engine kernel's (4 ns cycles); CPU cycles
// convert through the 2.3 GHz clock.
type Core struct {
	k          *sim.Kernel
	busyUntil  int64 // engine-kernel cycle when the core frees up
	accounting [numCategories]int64 // CPU cycles per category
	started    int64
}

// NewCore returns an idle core.
func NewCore(k *sim.Kernel) *Core {
	return &Core{k: k, started: k.Now()}
}

// Free reports whether the core can start new work now.
func (c *Core) Free() bool { return c.k.Now() >= c.busyUntil }

// BusyUntil returns the cycle the current work finishes.
func (c *Core) BusyUntil() int64 { return c.busyUntil }

// NextFree returns the earliest cycle > now at which the core can start
// new work — a component's contribution to sim.Sleeper.NextWork when it
// has work queued behind this core.
func (c *Core) NextFree(now int64) int64 {
	if c.busyUntil > now {
		return c.busyUntil
	}
	return now + 1
}

// Run executes an operation of the given CPU-cycle cost if the core is
// free, charging it to the category. It reports whether it ran.
func (c *Core) Run(cat Category, cpuCycles int64) bool {
	if !c.Free() {
		return false
	}
	c.accounting[cat] += cpuCycles
	dur := sim.NSToCycles(CyclesToNS(cpuCycles))
	if dur < 1 {
		dur = 1
	}
	c.busyUntil = c.k.Now() + dur
	return true
}

// RunQueued executes the operation as soon as the core frees up,
// regardless of current state (work that must not be dropped). It
// returns the completion cycle.
func (c *Core) RunQueued(cat Category, cpuCycles int64) int64 {
	start := c.k.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.accounting[cat] += cpuCycles
	dur := sim.NSToCycles(CyclesToNS(cpuCycles))
	if dur < 1 {
		dur = 1
	}
	c.busyUntil = start + dur
	return c.busyUntil
}

// Spent returns the CPU cycles charged to a category.
func (c *Core) Spent(cat Category) int64 { return c.accounting[cat] }

// Breakdown returns the utilization fractions per category over the
// core's lifetime, with the remainder reported as idle.
func (c *Core) Breakdown() map[string]float64 {
	elapsed := c.k.Now() - c.started
	if elapsed <= 0 {
		return nil
	}
	// Total CPU cycles available over the elapsed sim time.
	avail := float64(elapsed) * sim.CycleNS * float64(CoreHz) / 1e9
	out := make(map[string]float64, int(numCategories))
	var used float64
	for cat := CatApp; cat < CatIdle; cat++ {
		f := float64(c.accounting[cat]) / avail
		out[cat.Name()] = f
		used += f
	}
	idle := 1 - used
	if idle < 0 {
		idle = 0
	}
	out[CatIdle.Name()] = idle
	return out
}

// ResetAccounting zeroes the per-category counters (post-warmup).
func (c *Core) ResetAccounting() {
	for i := range c.accounting {
		c.accounting[i] = 0
	}
	c.started = c.k.Now()
}

// Pool is a set of cores with helpers for "any free core" scheduling.
type Pool struct {
	Cores []*Core
}

// NewPool allocates n cores.
func NewPool(k *sim.Kernel, n int) *Pool {
	p := &Pool{Cores: make([]*Core, n)}
	for i := range p.Cores {
		p.Cores[i] = NewCore(k)
	}
	return p
}

// SpentTotal sums a category across the pool.
func (p *Pool) SpentTotal(cat Category) int64 {
	var s int64
	for _, c := range p.Cores {
		s += c.Spent(cat)
	}
	return s
}

// ResetAccounting resets every core.
func (p *Pool) ResetAccounting() {
	for _, c := range p.Cores {
		c.ResetAccounting()
	}
}
