package netsim

import (
	"f4t/internal/sim"
	"f4t/internal/telemetry"
)

// Instrument registers one pipe direction's packet/byte counts, fault
// statistics and live serialization backlog under prefix (e.g.
// "link.a_to_b"). Safe on a nil registry.
func (p *Pipe) Instrument(reg *telemetry.Registry, prefix string) {
	reg.Gauge(prefix+".sent_pkts", func() int64 { return p.SentPkts })
	reg.Gauge(prefix+".sent_bytes", func() int64 { return p.SentBytes })
	reg.Gauge(prefix+".dropped_pkts", func() int64 { return p.DroppedPkts })
	reg.Gauge(prefix+".dup_pkts", func() int64 { return p.DupPkts })
	reg.Gauge(prefix+".reorder_pkts", func() int64 { return p.ReorderPkts })
	reg.Gauge(prefix+".marked_pkts", func() int64 { return p.MarkedPkts })
	reg.Gauge(prefix+".backlog_cycles", func() int64 { return p.Backlog() })
}

// Instrument registers both directions of the link.
func (l *Link) Instrument(reg *telemetry.Registry, prefix string) {
	l.AtoB.Instrument(reg, prefix+".a_to_b")
	l.BtoA.Instrument(reg, prefix+".b_to_a")
}

// SetTracer attaches a trace ring; every packet emits a span on virtual
// thread tid covering send → delivery (queueing + serialization +
// propagation) with the wire length as argument, and faults emit
// instants (pkt.drop, pkt.mark, pkt.reorder, pkt.dup) carrying the
// packet ordinal.
func (p *Pipe) SetTracer(trc *telemetry.Trace, tid int32) {
	p.trc = trc
	p.tid = tid
}

// traceSend records one delivered packet's span. Called only with a
// tracer attached.
func (p *Pipe) traceSend(startCycle, deliverCycle, wireLen int64) {
	p.trc.Span("net", "pkt", p.tid, startCycle*sim.CycleNS, deliverCycle*sim.CycleNS, wireLen)
}

// traceFault records one fault-injection instant.
func (p *Pipe) traceFault(name string) {
	p.trc.Instant("net", name, p.tid, p.k.NowNS(), p.SentPkts)
}
